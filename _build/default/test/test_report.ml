(* Chart rendering and the propagation-bound study. *)

module Chart = Moard_report.Chart

let chart_tests =
  [
    Alcotest.test_case "bar width and fill" `Quick (fun () ->
        Alcotest.(check int) "width" 40 (String.length (Chart.bar 0.5));
        Alcotest.(check string) "empty" (String.make 10 ' ')
          (Chart.bar ~width:10 0.0);
        Alcotest.(check string) "full" (String.make 10 '#')
          (Chart.bar ~width:10 1.0);
        Alcotest.(check string) "clamped" (String.make 10 '#')
          (Chart.bar ~width:10 7.0));
    Alcotest.test_case "stacked respects segment glyphs" `Quick (fun () ->
        let s = Chart.stacked ~width:10 [ ('a', 0.5); ('b', 0.3) ] in
        Alcotest.(check string) "aaaaabbb  " "aaaaabbb  " s);
    Alcotest.test_case "stacked never overflows" `Quick (fun () ->
        let s = Chart.stacked ~width:10 [ ('a', 0.9); ('b', 0.9) ] in
        Alcotest.(check int) "width" 10 (String.length s));
    Alcotest.test_case "row formatting" `Quick (fun () ->
        let s = Chart.row ~label:"x" ~value:0.25 (Chart.bar ~width:4 0.25) in
        assert (String.length s > 10);
        assert (String.contains s '|'));
    Alcotest.test_case "whisker contains center and bounds" `Quick
      (fun () ->
        let s = Chart.whisker ~width:20 ~center:0.5 ~margin:0.2 () in
        Alcotest.(check int) "width" 20 (String.length s);
        assert (String.contains s '#');
        assert (String.contains s '-'));
  ]

let bound_tests =
  [
    Alcotest.test_case "bound study on the synthetic workload" `Slow
      (fun () ->
        let w =
          let open Moard_lang.Ast.Dsl in
          Tutil.workload_of ~targets:[ "a" ]
            [ garr_f64_init "a" [| 1.0; 2.0; 3.0; 4.0 |]; garr_f64 "out" 1 ]
            [
              fn "main"
                [
                  flt_ "s" (f 0.0);
                  for_ "k" (i 0) (i 4) [ "s" <-- v "s" + "a".%(v "k") ];
                  ("out".%(i 0) <- v "s");
                  ret_void;
                ];
            ]
            "bound-synthetic"
        in
        let ctx = Moard_inject.Context.make w in
        let points =
          Moard_core.Bound.study ~samples:40 ~k_values:[ 2; 50 ] ctx
            ~object_name:"a"
        in
        List.iter
          (fun (p : Moard_core.Bound.point) ->
            Alcotest.(check int) "partition" p.Moard_core.Bound.sampled
              (p.Moard_core.Bound.masked_within_k + p.Moard_core.Bound.survivors);
            assert (p.Moard_core.Bound.fraction_incorrect >= 0.0
                    && p.Moard_core.Bound.fraction_incorrect <= 1.0))
          points;
        (* a longer window can only mask more *)
        match points with
        | [ p2; p50 ] ->
          assert (p50.Moard_core.Bound.masked_within_k
                  >= p2.Moard_core.Bound.masked_within_k)
        | _ -> Alcotest.fail "two points expected");
  ]

let suite = [ ("report.chart", chart_tests); ("core.bound", bound_tests) ]
