(* Trace infrastructure: data objects, tape liveness, consumption rules. *)

module DO = Moard_trace.Data_object
module Reg = Moard_trace.Registry
module Tape = Moard_trace.Tape
module Consume = Moard_trace.Consume
module Event = Moard_trace.Event
module Machine = Moard_vm.Machine
module T = Moard_ir.Types
module Ast = Moard_lang.Ast

let obj = DO.make ~name:"a" ~base:256 ~elems:4 ~ty:T.F64

let data_object_tests =
  [
    Alcotest.test_case "geometry" `Quick (fun () ->
        Alcotest.(check int) "bytes" 32 (DO.bytes obj);
        Alcotest.(check int) "elem size" 8 (DO.elem_size obj);
        assert (DO.contains obj 256);
        assert (DO.contains obj 287);
        assert (not (DO.contains obj 288));
        assert (not (DO.contains obj 255)));
    Alcotest.test_case "element addressing" `Quick (fun () ->
        assert (DO.elem_of_addr obj 272 = Some 2);
        assert (DO.elem_of_addr obj 273 = None);
        assert (DO.elem_of_addr obj 1000 = None);
        Alcotest.(check int) "addr of elem" 280 (DO.addr_of_elem obj 3);
        Alcotest.check_raises "oob elem"
          (Invalid_argument "Data_object.addr_of_elem") (fun () ->
            ignore (DO.addr_of_elem obj 4)));
    Alcotest.test_case "registry rejects overlaps and duplicates" `Quick
      (fun () ->
        let o2 = DO.make ~name:"b" ~base:280 ~elems:2 ~ty:T.F64 in
        (match Reg.of_objects [ obj; o2 ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "overlap accepted");
        match Reg.of_objects [ obj; { obj with DO.base = 512 } ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "duplicate name accepted");
    Alcotest.test_case "owner lookup" `Quick (fun () ->
        let o2 = DO.make ~name:"b" ~base:512 ~elems:2 ~ty:T.I32 in
        let reg = Reg.of_objects [ obj; o2 ] in
        assert (Reg.owner reg 260 = Some obj);
        assert (Reg.owner reg 513 = Some o2);
        assert (Reg.owner reg 4096 = None));
  ]

(* A workload exercising every consumption rule. *)
let traced () =
  let open Ast.Dsl in
  let prog =
    Moard_lang.Compile.program
      {
        Ast.globals =
          [
            garr_f64_init "a" [| 1.0; 2.0; 3.0; 4.0 |];
            garr_i64_init "ix" [| 2L |];
            garr_f64 "out" 1;
          ];
        funs =
          [
            fn "helper" ~params:[ ("x", Ast.Tf64) ] ~ret:Ast.Tf64
              [ ret (v "x" * f 2.0) ];
            fn "main"
              [
                flt_ "t" ("a".%(i 0));          (* load + mov: pure copies *)
                flt_ "u" (v "t" + f 1.0);       (* fadd consumes a[0] *)
                ("a".%(i 1) <- v "u");          (* store-dest consumption *)
                flt_ "w" (call "helper" [ "a".%(i 2) ]);  (* consumed inside *)
                ("out".%(i 0) <- v "w" + "a".%("ix".%(i 0)));
                ret_void;
              ];
          ];
      }
  in
  let m = Machine.load prog in
  let _, tape = Machine.trace m ~entry:"main" in
  (m, tape)

let consume_tests =
  [
    Alcotest.test_case "pure copies are not consumptions" `Quick (fun () ->
        let m, tape = traced () in
        let a = Machine.object_of m "a" in
        let sites = Consume.of_tape tape a in
        (* a[0] via fadd, a[1] store-dest, a[2] inside helper (fmul),
           a[2]-argument is a copy, a[ix[0]] via the final fadd. *)
        List.iter
          (fun (s : Consume.t) ->
            let e = Tape.get tape s.Consume.event_idx in
            assert (Consume.consuming_event e
                    || s.Consume.kind = Consume.Store_dest))
          sites;
        Alcotest.(check int) "consumption count" 4 (List.length sites));
    Alcotest.test_case "elements and kinds are right" `Quick (fun () ->
        let m, tape = traced () in
        let a = Machine.object_of m "a" in
        let sites = Consume.of_tape tape a in
        let elems =
          List.map
            (fun (s : Consume.t) ->
              ( s.Consume.elem,
                match s.Consume.kind with
                | Consume.Read _ -> `R
                | Consume.Store_dest -> `W ))
            sites
        in
        assert (List.mem (0, `R) elems);
        assert (List.mem (1, `W) elems);
        assert (List.mem (2, `R) elems);
        assert (List.mem (2, `R) elems));
    Alcotest.test_case "segment filter drops helper consumptions" `Quick
      (fun () ->
        let m, tape = traced () in
        let a = Machine.object_of m "a" in
        let only_main = Consume.of_tape ~segment:(String.equal "main") tape a in
        Alcotest.(check int) "main only" 3 (List.length only_main));
    Alcotest.test_case "integer index array consumed by address math" `Quick
      (fun () ->
        let m, tape = traced () in
        let ix = Machine.object_of m "ix" in
        let sites = Consume.of_tape tape ix in
        (* ix[0] feeds a gep *)
        assert (List.length sites >= 1);
        List.iter
          (fun (s : Consume.t) ->
            assert (s.Consume.width = Moard_bits.Bitval.W64))
          sites);
    Alcotest.test_case "patterns match site width" `Quick (fun () ->
        let m, tape = traced () in
        let a = Machine.object_of m "a" in
        List.iter
          (fun (s : Consume.t) ->
            Alcotest.(check int) "64 patterns" 64
              (List.length (Consume.patterns s)))
          (Consume.of_tape tape a));
  ]

let tape_tests =
  [
    Alcotest.test_case "get bounds" `Quick (fun () ->
        let _, tape = traced () in
        Alcotest.check_raises "oob" (Invalid_argument "Tape.get") (fun () ->
            ignore (Tape.get tape (Tape.length tape))));
    Alcotest.test_case "liveness: registers die at their last read" `Quick
      (fun () ->
        let _, tape = traced () in
        (* For every event reading a register, last_reg_read >= its idx. *)
        Tape.iter
          (fun e ->
            List.iteri
              (fun _slot op ->
                match (op : Moard_ir.Instr.operand) with
                | Moard_ir.Instr.Reg r ->
                  assert (
                    Tape.last_reg_read tape ~frame:e.Event.frame ~reg:r
                    >= e.Event.idx)
                | _ -> ())
              (Moard_ir.Instr.reads e.Event.instr))
          tape);
    Alcotest.test_case "liveness: unknown register reads -1" `Quick
      (fun () ->
        let _, tape = traced () in
        Alcotest.(check int) "never read" (-1)
          (Tape.last_reg_read tape ~frame:9999 ~reg:0));
    Alcotest.test_case "liveness: memory reads tracked" `Quick (fun () ->
        let m, tape = traced () in
        let base = Machine.base_of m "a" in
        assert (Tape.last_mem_read tape ~addr:base >= 0);
        Alcotest.(check int) "never loaded addr" (-1)
          (Tape.last_mem_read tape ~addr:4));
    Alcotest.test_case "iteri_from covers a suffix in order" `Quick
      (fun () ->
        let _, tape = traced () in
        let seen = ref [] in
        Tape.iteri_from 5 (fun idx e ->
            assert (idx = e.Event.idx);
            seen := idx :: !seen) tape;
        assert (List.rev !seen
                = List.init (Tape.length tape - 5) (fun k -> k + 5)));
    Alcotest.test_case "fold counts events" `Quick (fun () ->
        let _, tape = traced () in
        assert (Tape.fold (fun acc _ -> acc + 1) 0 tape = Tape.length tape));
  ]

let suite =
  [
    ("trace.data-object", data_object_tests);
    ("trace.consume", consume_tests);
    ("trace.tape", tape_tests);
  ]
