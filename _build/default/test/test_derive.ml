(* The read-modify-write rule against the paper's three §III-B statements:
   A: sum[m] = 0.0             -> plain overwrite, masks
   B: sum[m] = sum[m] + x      -> RMW, does not mask by itself
   C: sum[m] = sqrt(sum[m]/n)  -> the deriving sqrt does not read sum[m]
                                  directly, so the store masks (the paper
                                  counts C's assignment as overwriting) *)

module Derive = Moard_core.Derive
module Consume = Moard_trace.Consume
module Ast = Moard_lang.Ast
open Tutil

let prog () =
  let open Ast.Dsl in
  trace_program
    [ garr_f64_init "sum" [| 4.0; 9.0; 16.0 |]; garr_f64 "out" 1 ]
    [
      fn "main"
        [
          ("sum".%(i 0) <- f 0.0);                       (* statement A *)
          ("sum".%(i 1) <- "sum".%(i 1) + f 2.0);        (* statement B *)
          ("sum".%(i 2) <- sqrt_ ("sum".%(i 2) / f 4.0)); (* statement C *)
          ("out".%(i 0) <- "sum".%(i 0) + "sum".%(i 1) + "sum".%(i 2));
          ret_void;
        ];
    ]

let store_of tape m elem =
  site_on m tape "sum" (fun s -> is_store s && s.Consume.elem = elem)

let rmw tape m elem =
  Derive.store_rmw_source ~tape (event_of tape (store_of tape m elem))

let tests =
  [
    Alcotest.test_case "statement A: constant store is not RMW" `Quick
      (fun () ->
        let m, tape = prog () in
        assert (rmw tape m 0 = None));
    Alcotest.test_case "statement B: accumulate is RMW onto the fadd"
      `Quick (fun () ->
        let m, tape = prog () in
        match rmw tape m 1 with
        | Some (idx, slot) -> (
          let e = Moard_trace.Tape.get tape idx in
          match e.Moard_trace.Event.instr with
          | Moard_ir.Instr.Fbin (_, Moard_ir.Instr.Fadd, _, _) ->
            Alcotest.(check int) "slot consuming sum[1]" 0 slot
          | _ -> Alcotest.fail "expected the fadd as the deriving event")
        | None -> Alcotest.fail "statement B must be RMW");
    Alcotest.test_case "statement C: sqrt chain is not RMW" `Quick (fun () ->
        let m, tape = prog () in
        assert (rmw tape m 2 = None));
    Alcotest.test_case "model: A and C mask, B shares the fadd verdict"
      `Quick (fun () ->
        let m, tape = prog () in
        ignore m;
        ignore tape;
        let w =
          let open Ast.Dsl in
          workload_of ~targets:[ "sum" ]
            [ garr_f64_init "sum" [| 4.0; 9.0; 16.0 |]; garr_f64 "out" 1 ]
            [
              fn "main"
                [
                  ("sum".%(i 0) <- f 0.0);
                  ("sum".%(i 1) <- "sum".%(i 1) + f 2.0);
                  ("sum".%(i 2) <- sqrt_ ("sum".%(i 2) / f 4.0));
                  ("out".%(i 0) <-
                   "sum".%(i 0) + "sum".%(i 1) + "sum".%(i 2));
                  ret_void;
                ];
            ]
            "statements"
        in
        let ctx = Moard_inject.Context.make w in
        let r = Moard_core.Model.analyze ctx ~object_name:"sum" in
        (* overwriting contributes: statements A and C at least *)
        assert (r.Moard_core.Advf.by_kind.(0) > 0.0);
        assert (r.Moard_core.Advf.advf > 0.0 && r.Moard_core.Advf.advf < 1.0));
    Alcotest.test_case "TMR-protected colidx reaches full resilience" `Slow
      (fun () ->
        let advf tmr =
          let w =
            Moard_kernels.Cg.workload ~n:8 ~iters:2 ~tmr_colidx:tmr ()
          in
          let ctx = Moard_inject.Context.make w in
          (Moard_core.Model.analyze ctx ~object_name:"colidx")
            .Moard_core.Advf.advf
        in
        let plain = advf false and tmr = advf true in
        assert (plain < 0.3);
        assert (tmr > 0.9));
  ]

let suite = [ ("core.derive", tests) ]
