(* The virtual machine: memory, traps, determinism, fault application. *)

module Machine = Moard_vm.Machine
module Memory = Moard_vm.Memory
module Fault = Moard_vm.Fault
module Trap = Moard_vm.Trap
module I = Moard_ir.Instr
module T = Moard_ir.Types
module P = Moard_ir.Program
module Bld = Moard_ir.Builder
module B = Moard_bits.Bitval
module Ast = Moard_lang.Ast

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let memory_tests =
  [
    Alcotest.test_case "round trips at every width" `Quick (fun () ->
        let m = Memory.create ~bytes:4096 in
        Memory.store_exn m T.F64 512 (B.of_float 2.75);
        Memory.store_exn m T.I32 520 (B.of_int32 (-7l));
        Memory.store_exn m T.I1 524 (B.of_bool true);
        assert (Float.equal (B.to_float (Memory.load_exn m T.F64 512)) 2.75);
        assert (Int64.equal (B.to_int64 (Memory.load_exn m T.I32 520)) (-7L));
        assert (B.to_bool (Memory.load_exn m T.I1 524)));
    Alcotest.test_case "null guard traps" `Quick (fun () ->
        let m = Memory.create ~bytes:4096 in
        (match Memory.load m T.F64 0 with
        | Error (Trap.Out_of_bounds _) -> ()
        | _ -> Alcotest.fail "null load must trap");
        match Memory.store m T.I32 100 (B.of_int32 1l) with
        | Error (Trap.Out_of_bounds _) -> ()
        | _ -> Alcotest.fail "null store must trap");
    Alcotest.test_case "end-of-memory traps" `Quick (fun () ->
        let m = Memory.create ~bytes:4096 in
        (match Memory.load m T.F64 4089 with
        | Error (Trap.Out_of_bounds _) -> ()
        | _ -> Alcotest.fail "partial oob load must trap");
        match Memory.load m T.F64 4088 with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "last full word must load");
    Alcotest.test_case "unaligned access allowed" `Quick (fun () ->
        let m = Memory.create ~bytes:4096 in
        Memory.store_exn m T.I64 1001 (B.of_int64 0x1122334455667788L);
        assert (Int64.equal
                  (B.to_int64 (Memory.load_exn m T.I64 1001))
                  0x1122334455667788L));
    Alcotest.test_case "copy is a snapshot" `Quick (fun () ->
        let m = Memory.create ~bytes:4096 in
        Memory.store_exn m T.I64 512 (B.of_int64 5L);
        let m' = Memory.copy m in
        Memory.store_exn m T.I64 512 (B.of_int64 9L);
        assert (Int64.equal (B.to_int64 (Memory.load_exn m' T.I64 512)) 5L));
    qtest "store/load identity at random addresses"
      QCheck2.Gen.(pair (int_range 256 4000) int64)
      (fun (addr, x) ->
        let m = Memory.create ~bytes:8192 in
        Memory.store_exn m T.I64 addr (B.of_int64 x);
        Int64.equal (B.to_int64 (Memory.load_exn m T.I64 addr)) x);
  ]

(* A tiny hand-built IR program: out[0] = a[0] + a[1] *)
let sum_program () =
  let b = Bld.create ~name:"main" ~nparams:0 in
  let a0 = Bld.load b T.F64 (I.Glob "a") in
  let p1 = Bld.gep b ~base:(I.Glob "a") ~index:(I.Imm (B.of_int64 1L)) ~scale:8 in
  let a1 = Bld.load b T.F64 (I.Reg p1) in
  let s = Bld.fbin b I.Fadd (I.Reg a0) (I.Reg a1) in
  Bld.store b T.F64 ~value:(I.Reg s) ~addr:(I.Glob "out");
  Bld.ret b (Some (I.Reg s));
  {
    P.globals =
      [
        { P.gname = "a"; gty = T.F64; gelems = 2;
          ginit = P.Floats [| 1.5; 2.25 |] };
        { P.gname = "out"; gty = T.F64; gelems = 1; ginit = P.Zeros };
      ];
    funcs = [ Bld.finish b ];
  }

let machine_tests =
  [
    Alcotest.test_case "hand-built program runs" `Quick (fun () ->
        let m = Machine.load (sum_program ()) in
        let r = Machine.run m ~entry:"main" in
        (match r.Machine.outcome with
        | Machine.Finished (Some v) ->
          assert (Float.equal (B.to_float v) 3.75)
        | _ -> Alcotest.fail "bad outcome");
        let out = Machine.read_f64s m r.Machine.mem "out" in
        assert (Float.equal out.(0) 3.75));
    Alcotest.test_case "runs are independent (memory reset)" `Quick
      (fun () ->
        let m = Machine.load (sum_program ()) in
        let r1 = Machine.run m ~entry:"main" in
        let r2 = Machine.run m ~entry:"main" in
        assert (r1.Machine.steps = r2.Machine.steps);
        assert (Float.equal
                  (Machine.read_f64s m r1.Machine.mem "out").(0)
                  (Machine.read_f64s m r2.Machine.mem "out").(0)));
    Alcotest.test_case "registry exposes objects with disjoint ranges" `Quick
      (fun () ->
        let m = Machine.load (sum_program ()) in
        let reg = Machine.registry m in
        let a = Moard_trace.Registry.find reg "a" in
        let out = Moard_trace.Registry.find reg "out" in
        assert (a.Moard_trace.Data_object.elems = 2);
        assert (Moard_trace.Registry.owner reg a.Moard_trace.Data_object.base
                = Some a);
        assert (not (Moard_trace.Data_object.contains a
                       out.Moard_trace.Data_object.base)));
    Alcotest.test_case "unknown entry traps cleanly" `Quick (fun () ->
        let m = Machine.load (sum_program ()) in
        match (Machine.run m ~entry:"ghost").Machine.outcome with
        | Machine.Trapped (Trap.No_function "ghost") -> ()
        | _ -> Alcotest.fail "expected no-function trap");
    Alcotest.test_case "step limit traps" `Quick (fun () ->
        let open Ast.Dsl in
        let prog =
          Moard_lang.Compile.program
            { Ast.globals = [];
              funs = [ fn "main" [ while_ (b true) []; ret_void ] ] }
        in
        let m = Machine.load prog in
        match (Machine.run ~step_limit:1000 m ~entry:"main").Machine.outcome with
        | Machine.Trapped (Trap.Step_limit 1000) -> ()
        | _ -> Alcotest.fail "expected step-limit trap");
    Alcotest.test_case "division by zero traps" `Quick (fun () ->
        let open Ast.Dsl in
        let prog =
          Moard_lang.Compile.program
            { Ast.globals = [ garr_i64_init "z" [| 0L |] ];
              funs =
                [ fn "main" ~ret:Ast.Tf64
                    [ ret (to_f (i 5 / "z".%(i 0))) ] ] }
        in
        let m = Machine.load prog in
        match (Machine.run m ~entry:"main").Machine.outcome with
        | Machine.Trapped Trap.Div_by_zero -> ()
        | _ -> Alcotest.fail "expected div-by-zero");
    Alcotest.test_case "out-of-bounds index traps" `Quick (fun () ->
        let open Ast.Dsl in
        let prog =
          Moard_lang.Compile.program
            { Ast.globals = [ garr_f64 "a" 2 ];
              funs =
                [ fn "main" ~ret:Ast.Tf64 [ ret ("a".%(i 1000000)) ] ] }
        in
        let m = Machine.load prog in
        match (Machine.run m ~entry:"main").Machine.outcome with
        | Machine.Trapped (Trap.Out_of_bounds _) -> ()
        | _ -> Alcotest.fail "expected oob");
    Alcotest.test_case "call depth limit" `Quick (fun () ->
        let b = Bld.create ~name:"rec" ~nparams:0 in
        Bld.call_void b "rec" [];
        Bld.ret b None;
        let f = Bld.finish b in
        let bm = Bld.create ~name:"main" ~nparams:0 in
        Bld.call_void bm "rec" [];
        Bld.ret bm None;
        let p = { P.globals = []; funcs = [ f; Bld.finish bm ] } in
        let m = Machine.load p in
        match (Machine.run m ~entry:"main").Machine.outcome with
        | Machine.Trapped (Trap.Call_depth _) -> ()
        | _ -> Alcotest.fail "expected call-depth trap");
  ]

let fault_tests =
  [
    Alcotest.test_case "read fault corrupts one operand use" `Quick (fun () ->
        (* Event order: load a0; gep; load a1; fadd; store; ret.
           Flip bit 62 of fadd's slot 0 (a[0] = 1.5): exponent bit. *)
        let m = Machine.load (sum_program ()) in
        let fault = Fault.read ~idx:3 ~slot:0 (Moard_bits.Pattern.Single 62) in
        let r = Machine.run ~fault m ~entry:"main" in
        let corrupted = B.to_float (B.flip_bit (B.of_float 1.5) 62) in
        match r.Machine.outcome with
        | Machine.Finished (Some v) ->
          Alcotest.check (Alcotest.float 1e-9) "corrupted sum"
            (corrupted +. 2.25) (B.to_float v)
        | _ -> Alcotest.fail "should finish");
    Alcotest.test_case "store-destination fault is overwritten" `Quick
      (fun () ->
        let m = Machine.load (sum_program ()) in
        let fault = Fault.store_dest ~idx:4 (Moard_bits.Pattern.Single 13) in
        let r = Machine.run ~fault m ~entry:"main" in
        match r.Machine.outcome with
        | Machine.Finished (Some v) ->
          assert (Float.equal (B.to_float v) 3.75);
          assert (Float.equal (Machine.read_f64s m r.Machine.mem "out").(0) 3.75)
        | _ -> Alcotest.fail "should finish");
    Alcotest.test_case "same fault twice gives identical outcomes" `Quick
      (fun () ->
        let m = Machine.load (sum_program ()) in
        let fault = Fault.read ~idx:3 ~slot:1 (Moard_bits.Pattern.Single 51) in
        let v r =
          match r.Machine.outcome with
          | Machine.Finished (Some v) -> B.to_float v
          | _ -> Float.nan
        in
        let a = v (Machine.run ~fault m ~entry:"main") in
        let b = v (Machine.run ~fault m ~entry:"main") in
        assert (Float.equal a b));
    Alcotest.test_case "fault on non-matching index is inert" `Quick
      (fun () ->
        let m = Machine.load (sum_program ()) in
        let fault = Fault.read ~idx:999 ~slot:0 (Moard_bits.Pattern.Single 1) in
        match (Machine.run ~fault m ~entry:"main").Machine.outcome with
        | Machine.Finished (Some v) -> assert (Float.equal (B.to_float v) 3.75)
        | _ -> Alcotest.fail "should finish clean");
  ]

let trace_consistency =
  [
    Alcotest.test_case "trace matches step count and indexes" `Quick
      (fun () ->
        let m = Machine.load (sum_program ()) in
        let r, tape = Machine.trace m ~entry:"main" in
        assert (Moard_trace.Tape.length tape = r.Machine.steps);
        Moard_trace.Tape.iter
          (let next = ref 0 in
           fun e ->
             assert (e.Moard_trace.Event.idx = !next);
             incr next)
          tape);
    Alcotest.test_case "load events carry provenance" `Quick (fun () ->
        let m = Machine.load (sum_program ()) in
        let _, tape = Machine.trace m ~entry:"main" in
        let fadd = Moard_trace.Tape.get tape 3 in
        (match fadd.Moard_trace.Event.instr with
        | I.Fbin (_, I.Fadd, _, _) -> ()
        | _ -> Alcotest.fail "expected the fadd at index 3");
        let base = Machine.base_of m "a" in
        assert (fadd.Moard_trace.Event.reads.(0).Moard_trace.Event.prov = base);
        assert (fadd.Moard_trace.Event.reads.(1).Moard_trace.Event.prov
                = base + 8));
  ]

let suite =
  [
    ("vm.memory", memory_tests);
    ("vm.machine", machine_tests);
    ("vm.faults", fault_tests);
    ("vm.trace", trace_consistency);
  ]
