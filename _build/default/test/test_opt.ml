(* The optimizer: pass-level unit tests plus differential execution over
   every benchmark (optimized programs must behave identically). *)

module Passes = Moard_opt.Passes
module I = Moard_ir.Instr
module T = Moard_ir.Types
module P = Moard_ir.Program
module B = Moard_ir.Builder
module Machine = Moard_vm.Machine
module Bitval = Moard_bits.Bitval

let imm n = I.Imm (Bitval.of_int64 n)
let fimm x = I.Imm (Bitval.of_float x)

let count_instrs (fn : P.func) =
  Array.fold_left (fun acc b -> acc + Array.length b) 0 fn.P.blocks

let find_instr (fn : P.func) pred =
  Array.exists (Array.exists pred) fn.P.blocks

let mk body nregs =
  { P.fname = "f"; nparams = 0; nregs; blocks = [| Array.of_list body |] }

let pass_tests =
  [
    Alcotest.test_case "const_fold evaluates immediate arithmetic" `Quick
      (fun () ->
        let fn =
          mk [ I.Ibin (0, I.Add, T.I64, imm 2L, imm 3L); I.Ret (Some (I.Reg 0)) ] 1
        in
        let fn' = Passes.const_fold fn in
        assert (find_instr fn' (function
          | I.Mov (0, I.Imm v) -> Int64.equal (Bitval.to_int64 v) 5L
          | _ -> false)));
    Alcotest.test_case "const_fold keeps trapping division" `Quick (fun () ->
        let fn =
          mk [ I.Ibin (0, I.Sdiv, T.I64, imm 2L, imm 0L); I.Ret None ] 1
        in
        let fn' = Passes.const_fold fn in
        assert (find_instr fn' (function I.Ibin (_, I.Sdiv, _, _, _) -> true | _ -> false)));
    Alcotest.test_case "const_fold folds float compares and selects" `Quick
      (fun () ->
        let fn =
          mk
            [
              I.Fcmp (0, I.Folt, fimm 1.0, fimm 2.0);
              I.Select (1, imm 1L, fimm 7.0, fimm 9.0);
              I.Ret (Some (I.Reg 1));
            ]
            2
        in
        let fn' = Passes.const_fold fn in
        assert (find_instr fn' (function
          | I.Mov (1, I.Imm v) -> Float.equal (Bitval.to_float v) 7.0
          | _ -> false)));
    Alcotest.test_case "copy_prop forwards moves into uses" `Quick (fun () ->
        let fn =
          mk
            [
              I.Mov (0, imm 4L);
              I.Ibin (1, I.Add, T.I64, I.Reg 0, imm 1L);
              I.Ret (Some (I.Reg 1));
            ]
            2
        in
        let fn' = Passes.copy_prop fn in
        assert (find_instr fn' (function
          | I.Ibin (1, I.Add, _, I.Imm _, _) -> true
          | _ -> false)));
    Alcotest.test_case "copy_prop invalidates on redefinition" `Quick
      (fun () ->
        let fn =
          mk
            [
              I.Mov (0, imm 4L);
              I.Mov (0, imm 9L);
              I.Ibin (1, I.Add, T.I64, I.Reg 0, imm 1L);
              I.Ret (Some (I.Reg 1));
            ]
            2
        in
        let fn' = Passes.copy_prop fn in
        assert (find_instr fn' (function
          | I.Ibin (1, I.Add, _, I.Imm v, _) ->
            Int64.equal (Bitval.to_int64 v) 9L
          | _ -> false)));
    Alcotest.test_case "branch_simplify rewrites constant conditions" `Quick
      (fun () ->
        let fn =
          {
            P.fname = "f"; nparams = 0; nregs = 0;
            blocks =
              [|
                [| I.Cbr (I.Imm (Bitval.of_bool true), 1, 2) |];
                [| I.Ret None |];
                [| I.Ret None |];
              |];
          }
        in
        let fn' = Passes.branch_simplify fn in
        assert (find_instr fn' (function I.Br 1 -> true | _ -> false)));
    Alcotest.test_case "dce removes dead pure chains" `Quick (fun () ->
        let fn =
          mk
            [
              I.Ibin (0, I.Add, T.I64, imm 1L, imm 2L);  (* dead *)
              I.Ibin (1, I.Mul, T.I64, I.Reg 0, imm 3L); (* dead *)
              I.Ret None;
            ]
            2
        in
        let fn' = Passes.dce fn in
        Alcotest.(check int) "only ret remains" 1 (count_instrs fn'));
    Alcotest.test_case "dce keeps stores, calls and traps" `Quick (fun () ->
        let fn =
          mk
            [
              I.Store (T.F64, fimm 1.0, imm 512L);
              I.Call (Some 0, "sqrt", [ fimm 4.0 ]); (* dest dead, call kept *)
              I.Ibin (1, I.Sdiv, T.I64, imm 1L, imm 0L); (* may trap *)
              I.Ret None;
            ]
            2
        in
        let fn' = Passes.dce fn in
        Alcotest.(check int) "all kept" 4 (count_instrs fn'));
    Alcotest.test_case "optimize_func reaches a fixpoint" `Quick (fun () ->
        let fn =
          mk
            [
              I.Ibin (0, I.Add, T.I64, imm 2L, imm 3L);
              I.Ibin (1, I.Mul, T.I64, I.Reg 0, imm 4L);
              I.Mov (2, I.Reg 1);
              I.Ret (Some (I.Reg 2));
            ]
            3
        in
        let fn' = Passes.optimize_func fn in
        (* everything folds into returning the immediate 20 *)
        assert (count_instrs fn' <= 2);
        assert (find_instr fn' (function
          | I.Ret (Some (I.Imm v)) -> Int64.equal (Bitval.to_int64 v) 20L
          | I.Ret (Some (I.Reg _)) -> true
          | _ -> false)));
  ]

(* Differential execution: every benchmark behaves identically at -O2. *)
let differential_tests =
  [
    Alcotest.test_case "optimized benchmarks produce identical outputs"
      `Slow (fun () ->
        List.iter
          (fun (e : Moard_kernels.Registry.entry) ->
            let w = e.Moard_kernels.Registry.workload () in
            let run prog =
              let m = Machine.load prog in
              let r = Machine.run m ~entry:w.Moard_inject.Workload.entry in
              match r.Machine.outcome with
              | Machine.Finished _ ->
                List.concat_map
                  (fun name ->
                    match
                      (P.global prog name).P.gty
                    with
                    | T.F64 ->
                      Array.to_list
                        (Array.map Int64.bits_of_float
                           (Machine.read_f64s m r.Machine.mem name))
                    | _ ->
                      Array.to_list (Machine.read_i64s m r.Machine.mem name))
                  w.Moard_inject.Workload.outputs
              | Machine.Trapped t ->
                Alcotest.failf "%s trapped: %s" e.Moard_kernels.Registry.benchmark
                  (Moard_vm.Trap.to_string t)
            in
            let plain = run w.Moard_inject.Workload.program in
            let opt = run (Passes.optimize w.Moard_inject.Workload.program) in
            if plain <> opt then
              Alcotest.failf "%s: optimized outputs differ"
                e.Moard_kernels.Registry.benchmark)
          Moard_kernels.Registry.all);
    Alcotest.test_case "optimization shortens traces" `Quick (fun () ->
        let w = Moard_kernels.Lulesh.workload () in
        let steps prog =
          let m = Machine.load prog in
          (Machine.run m ~entry:"main").Machine.steps
        in
        let before = steps w.Moard_inject.Workload.program in
        let after = steps (Passes.optimize w.Moard_inject.Workload.program) in
        assert (after <= before));
    Alcotest.test_case "optimized programs still validate" `Quick (fun () ->
        List.iter
          (fun (e : Moard_kernels.Registry.entry) ->
            let w = e.Moard_kernels.Registry.workload () in
            let p = Passes.optimize w.Moard_inject.Workload.program in
            match
              Moard_ir.Validate.check_program
                ~intrinsics:Moard_vm.Semantics.intrinsics p
            with
            | Ok () -> ()
            | Error msg -> Alcotest.fail msg)
          Moard_kernels.Registry.all);
  ]

let suite =
  [ ("opt.passes", pass_tests); ("opt.differential", differential_tests) ]
