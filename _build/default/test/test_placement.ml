(* Protection placement: greedy plan properties. *)

module Placement = Moard_core.Placement
module Advf = Moard_core.Advf

let report name ~involvements ~advf =
  {
    Advf.object_name = name;
    involvements;
    masking_events = advf *. float_of_int involvements;
    advf;
    by_level = [| advf; 0.0; 0.0 |];
    by_kind = [| advf; 0.0; 0.0; 0.0 |];
    patterns_analyzed = involvements * 64;
    op_resolved = 0;
    prop_resolved = 0;
    fi_resolved = 0;
    unresolved = 0;
    fi_runs = 0;
    fi_cache_hits = 0;
    verdict_cache_hits = 0;
  }

let vulnerable = report "colidx" ~involvements:100 ~advf:0.05
let resilient = report "r" ~involvements:100 ~advf:0.95
let medium = report "rowstr" ~involvements:50 ~advf:0.5

let close = Alcotest.float 1e-9

let tests =
  [
    Alcotest.test_case "budget 1 picks the vulnerable object" `Quick
      (fun () ->
        let plan =
          Placement.plan ~budget:1.0
            [
              Placement.candidate vulnerable;
              Placement.candidate resilient;
              Placement.candidate medium;
            ]
        in
        let chosen =
          List.filter (fun d -> d.Placement.chosen) plan.Placement.decisions
        in
        Alcotest.(check (list string)) "chosen" [ "colidx" ]
          (List.map (fun d -> d.Placement.object_name) chosen));
    Alcotest.test_case "risk accounting is conserved" `Quick (fun () ->
        let plan =
          Placement.plan ~budget:2.0
            [
              Placement.candidate vulnerable;
              Placement.candidate resilient;
              Placement.candidate medium;
            ]
        in
        let removed =
          List.fold_left
            (fun acc d -> acc +. d.Placement.risk_removed)
            0.0 plan.Placement.decisions
        in
        Alcotest.check close "baseline - removed = residual"
          plan.Placement.residual_risk
          (plan.Placement.baseline_risk -. removed);
        assert (plan.Placement.residual_risk >= 0.0));
    Alcotest.test_case "zero budget protects nothing" `Quick (fun () ->
        let plan =
          Placement.plan ~budget:0.0 [ Placement.candidate vulnerable ]
        in
        Alcotest.check close "residual = baseline"
          plan.Placement.baseline_risk plan.Placement.residual_risk;
        Alcotest.check close "no cost" 0.0 plan.Placement.total_cost);
    Alcotest.test_case "partial effectiveness removes a fraction" `Quick
      (fun () ->
        let plan =
          Placement.plan ~budget:1.0
            [ Placement.candidate ~effectiveness:0.5 vulnerable ]
        in
        Alcotest.check close "half removed"
          (plan.Placement.baseline_risk /. 2.0)
          plan.Placement.residual_risk);
    Alcotest.test_case "cost-aware greedy prefers better value" `Quick
      (fun () ->
        (* medium removes less risk but is 10x cheaper than vulnerable *)
        let plan =
          Placement.plan ~budget:0.1
            [
              Placement.candidate ~cost:1.0 vulnerable;
              Placement.candidate ~cost:0.1 medium;
            ]
        in
        let chosen =
          List.filter (fun d -> d.Placement.chosen) plan.Placement.decisions
        in
        Alcotest.(check (list string)) "chosen" [ "rowstr" ]
          (List.map (fun d -> d.Placement.object_name) chosen));
    Alcotest.test_case "input validation" `Quick (fun () ->
        (match Placement.plan ~budget:1.0 [] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "empty accepted");
        match
          Placement.plan ~budget:1.0
            [ Placement.candidate ~cost:(-1.0) vulnerable ]
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "negative cost accepted");
    Alcotest.test_case "plan renders" `Quick (fun () ->
        let plan =
          Placement.plan ~budget:1.0
            [ Placement.candidate vulnerable; Placement.candidate resilient ]
        in
        let s = Format.asprintf "%a" Placement.pp_plan plan in
        assert (String.length s > 40));
  ]

let suite = [ ("core.placement", tests) ]
