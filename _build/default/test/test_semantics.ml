(* Pure instruction semantics, shared by the interpreter and the model. *)

module S = Moard_vm.Semantics
module I = Moard_ir.Instr
module T = Moard_ir.Types
module B = Moard_bits.Bitval

let i64 = B.of_int64
let f64 = B.of_float

let ibin_ok op ty a b =
  match S.ibin op ty a b with
  | Ok v -> v
  | Error t -> Alcotest.failf "unexpected trap %s" (Moard_vm.Trap.to_string t)

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let integer_tests =
  [
    Alcotest.test_case "wrapping add" `Quick (fun () ->
        let v = ibin_ok I.Add T.I64 (i64 Int64.max_int) (i64 1L) in
        assert (Int64.equal (B.to_int64 v) Int64.min_int));
    Alcotest.test_case "i32 truncation" `Quick (fun () ->
        let v = ibin_ok I.Add T.I32 (i64 0x7FFF_FFFFL) (i64 1L) in
        assert (Int64.equal (B.to_int64 v) (-0x8000_0000L)));
    Alcotest.test_case "division traps on zero" `Quick (fun () ->
        (match S.ibin I.Sdiv T.I64 (i64 5L) (i64 0L) with
        | Error Moard_vm.Trap.Div_by_zero -> ()
        | _ -> Alcotest.fail "expected div-by-zero");
        match S.ibin I.Srem T.I64 (i64 5L) (i64 0L) with
        | Error Moard_vm.Trap.Div_by_zero -> ()
        | _ -> Alcotest.fail "expected rem-by-zero");
    Alcotest.test_case "min_int / -1 does not trap" `Quick (fun () ->
        let v = ibin_ok I.Sdiv T.I64 (i64 Int64.min_int) (i64 (-1L)) in
        assert (Int64.equal (B.to_int64 v) Int64.min_int);
        let r = ibin_ok I.Srem T.I64 (i64 Int64.min_int) (i64 (-1L)) in
        assert (Int64.equal (B.to_int64 r) 0L));
    Alcotest.test_case "shift by width or more yields 0" `Quick (fun () ->
        let v = ibin_ok I.Shl T.I64 (i64 1L) (i64 64L) in
        assert (B.is_zero v);
        let v = ibin_ok I.Lshr T.I64 (i64 (-1L)) (i64 100L) in
        assert (B.is_zero v));
    Alcotest.test_case "ashr out of range keeps sign" `Quick (fun () ->
        let v = ibin_ok I.Ashr T.I64 (i64 (-8L)) (i64 99L) in
        assert (Int64.equal (B.to_int64 v) (-1L));
        let v = ibin_ok I.Ashr T.I64 (i64 8L) (i64 99L) in
        assert (B.is_zero v));
    Alcotest.test_case "lshr on i32 is logical within 32 bits" `Quick
      (fun () ->
        let v = ibin_ok I.Lshr T.I32 (B.of_int32 (-1l)) (i64 1L) in
        assert (Int64.equal (v : B.t).bits 0x7FFF_FFFFL));
    Alcotest.test_case "negative shift amount is out of range" `Quick
      (fun () ->
        let v = ibin_ok I.Shl T.I64 (i64 1L) (i64 (-1L)) in
        assert (B.is_zero v));
    Alcotest.test_case "logic ops" `Quick (fun () ->
        assert (Int64.equal
                  (B.to_int64 (ibin_ok I.And T.I64 (i64 0xF0L) (i64 0x3CL)))
                  0x30L);
        assert (Int64.equal
                  (B.to_int64 (ibin_ok I.Or T.I64 (i64 0xF0L) (i64 0x0FL)))
                  0xFFL);
        assert (Int64.equal
                  (B.to_int64 (ibin_ok I.Xor T.I64 (i64 0xFFL) (i64 0x0FL)))
                  0xF0L));
  ]

let float_tests =
  [
    Alcotest.test_case "fbin basics" `Quick (fun () ->
        assert (Float.equal (B.to_float (S.fbin I.Fadd (f64 1.5) (f64 2.5))) 4.0);
        assert (Float.equal (B.to_float (S.fbin I.Fdiv (f64 1.0) (f64 0.0)))
                  Float.infinity));
    Alcotest.test_case "fcmp with nan is unordered" `Quick (fun () ->
        let nan = f64 Float.nan and one = f64 1.0 in
        assert (not (B.to_bool (S.fcmp I.Foeq nan nan)));
        assert (not (B.to_bool (S.fcmp I.Folt nan one)));
        assert (not (B.to_bool (S.fcmp I.Foge one nan)));
        assert (not (B.to_bool (S.fcmp I.Fone nan one))));
    Alcotest.test_case "fcmp ordered cases" `Quick (fun () ->
        assert (B.to_bool (S.fcmp I.Folt (f64 1.0) (f64 2.0)));
        assert (B.to_bool (S.fcmp I.Fone (f64 1.0) (f64 2.0)));
        assert (B.to_bool (S.fcmp I.Foeq (f64 2.0) (f64 2.0))));
  ]

let cast_tests =
  [
    Alcotest.test_case "trunc drops high bits" `Quick (fun () ->
        let v = S.cast I.Trunc_to_i32 (i64 0x1_2345_6789L) in
        assert (Int64.equal (v : B.t).bits 0x2345_6789L));
    Alcotest.test_case "sext vs zext" `Quick (fun () ->
        let m1 = B.of_int32 (-1l) in
        assert (Int64.equal (B.to_int64 (S.cast I.Sext_to_i64 m1)) (-1L));
        assert (Int64.equal (B.to_int64 (S.cast I.Zext_to_i64 m1))
                  0xFFFF_FFFFL));
    Alcotest.test_case "fp_to_si saturates and maps nan to 0" `Quick
      (fun () ->
        assert (Int64.equal (B.to_int64 (S.cast I.Fp_to_si (f64 Float.nan))) 0L);
        assert (Int64.equal
                  (B.to_int64 (S.cast I.Fp_to_si (f64 1e30)))
                  Int64.max_int);
        assert (Int64.equal
                  (B.to_int64 (S.cast I.Fp_to_si (f64 (-1e30))))
                  Int64.min_int);
        assert (Int64.equal (B.to_int64 (S.cast I.Fp_to_si (f64 (-2.9)))) (-2L)));
    Alcotest.test_case "bitcasts preserve images" `Quick (fun () ->
        let v = f64 3.25 in
        let i = S.cast I.Bitcast_f_to_i v in
        let back = S.cast I.Bitcast_i_to_f i in
        assert (B.equal (B.of_int64 (v : B.t).bits) i);
        assert (Float.equal (B.to_float back) 3.25));
  ]

let misc_tests =
  [
    Alcotest.test_case "gep arithmetic" `Quick (fun () ->
        let v = S.gep (i64 1000L) (i64 3L) 8 in
        assert (Int64.equal (B.to_int64 v) 1024L));
    Alcotest.test_case "select" `Quick (fun () ->
        assert (B.equal (S.select (B.of_bool true) (i64 1L) (i64 2L)) (i64 1L));
        assert (B.equal (S.select (B.of_bool false) (i64 1L) (i64 2L)) (i64 2L)));
    Alcotest.test_case "intrinsics table" `Quick (fun () ->
        assert (S.intrinsic_arity "sqrt" = Some 1);
        assert (S.intrinsic_arity "pow" = Some 2);
        assert (S.intrinsic_arity "nope" = None);
        assert (List.length S.intrinsics = 10));
    Alcotest.test_case "intrinsic arity mismatch traps" `Quick (fun () ->
        match S.intrinsic "sqrt" [ f64 1.0; f64 2.0 ] with
        | Error (Moard_vm.Trap.Arity _) -> ()
        | _ -> Alcotest.fail "expected arity trap");
    Alcotest.test_case "intrinsic evaluation" `Quick (fun () ->
        (match S.intrinsic "pow" [ f64 2.0; f64 10.0 ] with
        | Ok v -> assert (Float.equal (B.to_float v) 1024.0)
        | Error _ -> Alcotest.fail "pow");
        match S.intrinsic "fmin" [ f64 2.0; f64 (-1.0) ] with
        | Ok v -> assert (Float.equal (B.to_float v) (-1.0))
        | Error _ -> Alcotest.fail "fmin");
  ]

let props =
  [
    qtest "icmp agrees with Int64.compare"
      QCheck2.Gen.(pair int64 int64)
      (fun (a, b) ->
        let c = Int64.compare a b in
        B.to_bool (S.icmp I.Islt (i64 a) (i64 b)) = (c < 0)
        && B.to_bool (S.icmp I.Ieq (i64 a) (i64 b)) = (c = 0)
        && B.to_bool (S.icmp I.Isge (i64 a) (i64 b)) = (c >= 0));
    qtest "integer add commutes"
      QCheck2.Gen.(pair int64 int64)
      (fun (a, b) ->
        B.equal (ibin_ok I.Add T.I64 (i64 a) (i64 b))
          (ibin_ok I.Add T.I64 (i64 b) (i64 a)));
    qtest "xor with self is zero" QCheck2.Gen.int64 (fun a ->
        B.is_zero (ibin_ok I.Xor T.I64 (i64 a) (i64 a)));
    qtest "fadd matches OCaml"
      QCheck2.Gen.(pair float float)
      (fun (a, b) ->
        let got = B.to_float (S.fbin I.Fadd (f64 a) (f64 b)) in
        let want = a +. b in
        (Float.is_nan got && Float.is_nan want) || Float.equal got want);
    qtest "shift within range matches Int64"
      QCheck2.Gen.(pair int64 (int_bound 63))
      (fun (a, s) ->
        Int64.equal
          (B.to_int64 (ibin_ok I.Shl T.I64 (i64 a) (i64 (Int64.of_int s))))
          (Int64.shift_left a s));
  ]

let suite =
  [
    ("semantics.integer", integer_tests);
    ("semantics.float", float_tests);
    ("semantics.cast", cast_tests);
    ("semantics.misc", misc_tests);
    ("semantics.properties", props);
  ]
