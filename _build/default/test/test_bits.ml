(* Bit-image values and error patterns. *)

open Moard_bits
module B = Bitval

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let bitval_unit =
  [
    Alcotest.test_case "widths" `Quick (fun () ->
        check tint "w1" 1 (B.bits_in B.W1);
        check tint "w32" 32 (B.bits_in B.W32);
        check tint "w64" 64 (B.bits_in B.W64);
        check tint "b1" 1 (B.bytes_in B.W1);
        check tint "b32" 4 (B.bytes_in B.W32);
        check tint "b64" 8 (B.bytes_in B.W64));
    Alcotest.test_case "make truncates to width" `Quick (fun () ->
        let v = B.make B.W32 0xFFFF_FFFF_FFFFL in
        check (Alcotest.int64 : int64 Alcotest.testable) "low 32 bits kept"
          0xFFFF_FFFFL (v : B.t).bits);
    Alcotest.test_case "bool round trip" `Quick (fun () ->
        check tbool "true" true (B.to_bool (B.of_bool true));
        check tbool "false" false (B.to_bool (B.of_bool false)));
    Alcotest.test_case "i32 sign extension" `Quick (fun () ->
        check (Alcotest.int64) "negative" (-1L)
          (B.to_int64 (B.of_int32 (-1l)));
        check (Alcotest.int64) "positive" 5L (B.to_int64 (B.of_int32 5l)));
    Alcotest.test_case "float image round trip" `Quick (fun () ->
        let v = B.of_float (-0.1) in
        check (Alcotest.float 0.0) "exact" (-0.1) (B.to_float v));
    Alcotest.test_case "to_float rejects narrow widths" `Quick (fun () ->
        Alcotest.check_raises "w32" (Invalid_argument "Bitval.to_float: width < 64")
          (fun () -> ignore (B.to_float (B.of_int32 1l))));
    Alcotest.test_case "flip_bit out of range" `Quick (fun () ->
        Alcotest.check_raises "bit 32 of w32" (Invalid_argument "Bitval.flip_bit")
          (fun () -> ignore (B.flip_bit (B.of_int32 0l) 32)));
    Alcotest.test_case "flip changes exactly one bit" `Quick (fun () ->
        let v = B.of_int64 0x0FF0L in
        let v' = B.flip_bit v 4 in
        check tint "popcount delta" 1
          (abs (B.popcount v' - B.popcount v));
        check tbool "bit toggled" (not (B.get_bit v 4)) (B.get_bit v' 4));
    Alcotest.test_case "zero / is_zero" `Quick (fun () ->
        check tbool "zero" true (B.is_zero (B.zero B.W64));
        check tbool "nonzero" false (B.is_zero (B.of_int64 1L)));
    Alcotest.test_case "of_float nan image" `Quick (fun () ->
        let v = B.of_float Float.nan in
        check tbool "nan back" true (Float.is_nan (B.to_float v)));
  ]

let gen_w64 = QCheck2.Gen.(map B.of_int64 int64)
let gen_bit = QCheck2.Gen.(int_bound 63)

let bitval_prop =
  [
    qtest "flip_bit is an involution"
      QCheck2.Gen.(pair gen_w64 gen_bit)
      (fun (v, b) -> B.equal v (B.flip_bit (B.flip_bit v b) b));
    qtest "flip_bit never equals original"
      QCheck2.Gen.(pair gen_w64 gen_bit)
      (fun (v, b) -> not (B.equal v (B.flip_bit v b)));
    qtest "popcount within width"
      gen_w64
      (fun v -> B.popcount v >= 0 && B.popcount v <= 64);
    qtest "to_int64 of of_int64 is identity" QCheck2.Gen.int64 (fun x ->
        Int64.equal x (B.to_int64 (B.of_int64 x)));
    qtest "float image preserved" QCheck2.Gen.float (fun x ->
        let y = B.to_float (B.of_float x) in
        (Float.is_nan x && Float.is_nan y) || Float.equal x y);
    qtest "hash respects equal" QCheck2.Gen.int64 (fun x ->
        B.hash (B.of_int64 x) = B.hash (B.of_int64 x));
  ]

let pattern_unit =
  [
    Alcotest.test_case "singles counts per width" `Quick (fun () ->
        check tint "w64" 64 (List.length (Pattern.singles B.W64));
        check tint "w32" 32 (List.length (Pattern.singles B.W32));
        check tint "w1" 1 (List.length (Pattern.singles B.W1)));
    Alcotest.test_case "bursts stay in width" `Quick (fun () ->
        let bs = Pattern.bursts ~len:3 B.W32 in
        check tint "count" 30 (List.length bs);
        List.iter (fun p -> assert (Pattern.fits p B.W32)) bs);
    Alcotest.test_case "pairs with separation" `Quick (fun () ->
        let ps = Pattern.pairs ~sep:4 B.W32 in
        check tint "count" 28 (List.length ps);
        List.iter (fun p -> assert (Pattern.fits p B.W32)) ps);
    Alcotest.test_case "burst flips contiguous bits" `Quick (fun () ->
        let v = Pattern.apply (Pattern.Burst (8, 4)) (B.zero B.W64) in
        check (Alcotest.int64) "0xF00" 0xF00L (v : B.t).bits);
    Alcotest.test_case "pair flips two bits" `Quick (fun () ->
        let v = Pattern.apply (Pattern.Pair (0, 8)) (B.zero B.W64) in
        check (Alcotest.int64) "0x101" 0x101L (v : B.t).bits);
    Alcotest.test_case "enumerate adds multi families" `Quick (fun () ->
        let ps =
          Pattern.enumerate ~multi:[ `Burst 2; `Pair 4 ] B.W32
        in
        check tint "32 + 31 + 28" 91 (List.length ps));
    Alcotest.test_case "apply out of width raises" `Quick (fun () ->
        Alcotest.check_raises "bit 40 of w32"
          (Invalid_argument "Bitval.flip_bit") (fun () ->
            ignore (Pattern.apply (Pattern.Single 40) (B.of_int32 0l))));
    Alcotest.test_case "bits_of ascending" `Quick (fun () ->
        check (Alcotest.list tint) "burst" [ 3; 4; 5 ]
          (Pattern.bits_of (Pattern.Burst (3, 3)));
        check (Alcotest.list tint) "pair" [ 2; 9 ]
          (Pattern.bits_of (Pattern.Pair (2, 7))));
  ]

let pattern_prop =
  [
    qtest "single apply is involutive"
      QCheck2.Gen.(pair gen_w64 gen_bit)
      (fun (v, b) ->
        let p = Pattern.Single b in
        B.equal v (Pattern.apply p (Pattern.apply p v)));
    qtest "burst apply is involutive"
      QCheck2.Gen.(triple gen_w64 (int_bound 60) (int_range 1 4))
      (fun (v, start, len) ->
        QCheck2.assume (start + len <= 64);
        let p = Pattern.Burst (start, len) in
        B.equal v (Pattern.apply p (Pattern.apply p v)));
    qtest "burst changes popcount by at most len"
      QCheck2.Gen.(triple gen_w64 (int_bound 60) (int_range 1 4))
      (fun (v, start, len) ->
        QCheck2.assume (start + len <= 64);
        let v' = Pattern.apply (Pattern.Burst (start, len)) v in
        abs (B.popcount v' - B.popcount v) <= len);
  ]

let suite =
  [
    ("bits.bitval", bitval_unit);
    ("bits.bitval.properties", bitval_prop);
    ("bits.pattern", pattern_unit);
    ("bits.pattern.properties", pattern_prop);
  ]
