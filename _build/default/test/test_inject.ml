(* Fault-injection machinery: outcome classification, campaigns, caching. *)

module Context = Moard_inject.Context
module Outcome = Moard_inject.Outcome
module Workload = Moard_inject.Workload
module Fault = Moard_vm.Fault
module Pattern = Moard_bits.Pattern
module Ast = Moard_lang.Ast

(* out[0] = a[0] + a[1] scaled by an integer division through d[0];
   loose acceptance so all four outcome classes are reachable by choosing
   the flipped bit. *)
let workload ?(accept = Workload.rel_err_accept 1e-3) () =
  let open Ast.Dsl in
  Tutil.workload_of ~targets:[ "a" ] ~accept
    [ garr_f64_init "a" [| 1.0; 1000.0 |]; garr_i64_init "d" [| 1L |];
      garr_f64 "out" 1 ]
    [
      fn "main"
        [
          int_ "scale" (i 100 / "d".%(i 0));
          ("out".%(i 0) <- ("a".%(i 0) * to_f (v "scale") / f 100.0)
                           + "a".%(i 1));
          ret_void;
        ];
    ]
    "inject-test"

let ctx = lazy (Context.make (workload ()))

let classify_tests =
  [
    Alcotest.test_case "golden context basics" `Quick (fun () ->
        let c = Lazy.force ctx in
        assert (Context.golden_steps c > 0);
        assert (Moard_trace.Tape.length (Context.tape c)
                = Context.golden_steps c);
        Alcotest.(check (float 1e-9)) "output" 1001.0
          (Context.golden_floats c).(0));
    Alcotest.test_case "inert fault classifies as Same" `Quick (fun () ->
        let c = Lazy.force ctx in
        let o = Context.inject c (Fault.read ~idx:999 ~slot:0 (Pattern.Single 0)) in
        assert (Outcome.equal o Outcome.Same));
    Alcotest.test_case "tiny corruption is Acceptable" `Quick (fun () ->
        (* flip a low mantissa bit of a[1]=1000 as consumed by the fadd *)
        let c = Lazy.force ctx in
        let tape = Context.tape c in
        let site =
          Tutil.site_on
            (Context.machine c)
            tape "a"
            (fun s ->
              Tutil.is_read s
              && s.Moard_trace.Consume.elem = 1)
        in
        let o = Context.inject_at ~use_cache:false c site (Pattern.Single 2) in
        assert (Outcome.equal o Outcome.Acceptable));
    Alcotest.test_case "large corruption is Incorrect" `Quick (fun () ->
        let c = Lazy.force ctx in
        let site =
          Tutil.site_on
            (Context.machine c)
            (Context.tape c) "a"
            (fun s -> Tutil.is_read s && s.Moard_trace.Consume.elem = 1)
        in
        let o = Context.inject_at ~use_cache:false c site (Pattern.Single 62) in
        assert (Outcome.equal o Outcome.Incorrect));
    Alcotest.test_case "divisor zeroed is Crashed" `Quick (fun () ->
        let c = Lazy.force ctx in
        let site =
          Tutil.site_on
            (Context.machine c)
            (Context.tape c) "d" Tutil.is_read
        in
        match Context.inject_at ~use_cache:false c site (Pattern.Single 0) with
        | Outcome.Crashed Moard_vm.Trap.Div_by_zero -> ()
        | o -> Alcotest.failf "expected crash, got %s" (Outcome.to_string o));
    Alcotest.test_case "success covers Same and Acceptable only" `Quick
      (fun () ->
        assert (Outcome.success Outcome.Same);
        assert (Outcome.success Outcome.Acceptable);
        assert (not (Outcome.success Outcome.Incorrect));
        assert (not (Outcome.success (Outcome.Crashed Moard_vm.Trap.Div_by_zero))));
    Alcotest.test_case "workload validation catches bad globals" `Quick
      (fun () ->
        let w = workload () in
        let bad = { w with Workload.targets = [ "ghost" ] } in
        match Context.make bad with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "unknown target accepted");
  ]

let cache_tests =
  [
    Alcotest.test_case "cache hit returns without a new run" `Quick
      (fun () ->
        let c = Context.make (workload ()) in
        let site =
          Tutil.site_on (Context.machine c) (Context.tape c) "a"
            (fun s -> Tutil.is_read s && s.Moard_trace.Consume.elem = 0)
        in
        let o1 = Context.inject_at c site (Pattern.Single 10) in
        let runs = Context.runs c in
        let o2 = Context.inject_at c site (Pattern.Single 10) in
        assert (Outcome.equal o1 o2);
        Alcotest.(check int) "no extra run" runs (Context.runs c);
        Alcotest.(check int) "one hit" 1 (Context.cache_hits c));
    Alcotest.test_case "cache respects the pattern" `Quick (fun () ->
        let c = Context.make (workload ()) in
        let site =
          Tutil.site_on (Context.machine c) (Context.tape c) "a"
            (fun s -> Tutil.is_read s && s.Moard_trace.Consume.elem = 0)
        in
        ignore (Context.inject_at c site (Pattern.Single 10));
        let runs = Context.runs c in
        ignore (Context.inject_at c site (Pattern.Single 11));
        Alcotest.(check int) "new pattern runs" (runs + 1) (Context.runs c));
  ]

let campaign_tests =
  [
    Alcotest.test_case "exhaustive accounts for every operand bit" `Quick
      (fun () ->
        let c = Context.make (workload ()) in
        let r = Moard_inject.Exhaustive.campaign c ~object_name:"a" in
        (* a[0] consumed by the division, a[1] by the addition: 2 sites *)
        Alcotest.(check int) "sites" 2 r.Moard_inject.Exhaustive.sites;
        Alcotest.(check int) "injections" 128 r.Moard_inject.Exhaustive.injections;
        Alcotest.(check int)
          "classes partition the campaign"
          r.Moard_inject.Exhaustive.injections
          (r.Moard_inject.Exhaustive.same + r.Moard_inject.Exhaustive.acceptable
         + r.Moard_inject.Exhaustive.incorrect + r.Moard_inject.Exhaustive.crashed);
        assert (r.Moard_inject.Exhaustive.success_rate > 0.0
                && r.Moard_inject.Exhaustive.success_rate < 1.0));
    Alcotest.test_case "pattern stride samples the space" `Quick (fun () ->
        let c = Context.make (workload ()) in
        let r = Moard_inject.Exhaustive.campaign ~pattern_stride:8 c ~object_name:"a" in
        Alcotest.(check int) "injections" 16 r.Moard_inject.Exhaustive.injections);
    Alcotest.test_case "random campaign is seed-deterministic" `Quick
      (fun () ->
        let c = Context.make (workload ()) in
        let r1 =
          Moard_inject.Random_fi.campaign ~use_cache:true ~seed:7 ~tests:64 c
            ~object_name:"a"
        in
        let r2 =
          Moard_inject.Random_fi.campaign ~use_cache:true ~seed:7 ~tests:64 c
            ~object_name:"a"
        in
        assert (r1.Moard_inject.Random_fi.successes
                = r2.Moard_inject.Random_fi.successes));
    Alcotest.test_case "different seeds usually differ" `Quick (fun () ->
        let c = Context.make (workload ()) in
        let succ seed =
          (Moard_inject.Random_fi.campaign ~use_cache:true ~seed ~tests:64 c
             ~object_name:"a")
            .Moard_inject.Random_fi.successes
        in
        let all_same =
          List.for_all (fun s -> succ s = succ 1) [ 2; 3; 4; 5; 6 ]
        in
        assert (not all_same));
    Alcotest.test_case "margin follows the binomial formula" `Quick
      (fun () ->
        let c = Context.make (workload ()) in
        let r =
          Moard_inject.Random_fi.campaign ~use_cache:true ~seed:3 ~tests:100 c
            ~object_name:"a"
        in
        let expect =
          Moard_stats.Confidence.margin ~n:100 r.Moard_inject.Random_fi.success_rate
        in
        Alcotest.(check (float 1e-12)) "margin" expect
          r.Moard_inject.Random_fi.margin_95);
  ]

let accept_tests =
  [
    Alcotest.test_case "rel_err_accept basics" `Quick (fun () ->
        let acc = Workload.rel_err_accept 1e-3 in
        assert (acc ~golden:[| 100.0 |] ~faulty:[| 100.05 |]);
        assert (not (acc ~golden:[| 100.0 |] ~faulty:[| 101.0 |]));
        assert (not (acc ~golden:[| 1.0 |] ~faulty:[| Float.nan |]));
        assert (not (acc ~golden:[| 1.0 |] ~faulty:[| Float.infinity |]));
        assert (not (acc ~golden:[| 1.0 |] ~faulty:[| 1.0; 2.0 |])));
  ]

let suite =
  [
    ("inject.classify", classify_tests);
    ("inject.cache", cache_tests);
    ("inject.campaigns", campaign_tests);
    ("inject.accept", accept_tests);
  ]
