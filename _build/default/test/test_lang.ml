(* MiniC front end: typing and lowering, validated by executing compiled
   programs and comparing with host-computed expectations. *)

module Ast = Moard_lang.Ast
module Compile = Moard_lang.Compile
module Machine = Moard_vm.Machine
module B = Moard_bits.Bitval

let run_main ?(globals = []) body =
  let prog =
    Compile.program
      { Ast.globals; funs = [ Ast.Dsl.fn "main" ~ret:Ast.Tf64 body ] }
  in
  let m = Machine.load prog in
  let r = Machine.run m ~entry:"main" in
  match r.Machine.outcome with
  | Machine.Finished (Some v) -> (m, r, B.to_float v)
  | Machine.Finished None -> Alcotest.fail "no return value"
  | Machine.Trapped t -> Alcotest.failf "trapped: %s" (Moard_vm.Trap.to_string t)

let ret_float = Alcotest.float 1e-12

let expr_tests =
  let open Ast.Dsl in
  [
    Alcotest.test_case "float arithmetic" `Quick (fun () ->
        let _, _, v = run_main [ ret ((f 3.0 * f 4.0) - (f 2.0 / f 8.0)) ] in
        Alcotest.check ret_float "12 - 0.25" 11.75 v);
    Alcotest.test_case "integer arithmetic through cast" `Quick (fun () ->
        let _, _, v =
          run_main [ ret (to_f (((i 7 * i 3) % i 5) + (i 100 / i 7))) ] in
        Alcotest.check ret_float "1 + 14" 15.0 v);
    Alcotest.test_case "unary negation" `Quick (fun () ->
        let _, _, v = run_main [ ret (neg (f 2.5) + to_f (neg (i 3))) ] in
        Alcotest.check ret_float "-5.5" (-5.5) v);
    Alcotest.test_case "bit operations" `Quick (fun () ->
        let _, _, v =
          run_main
            [ ret (to_f (((i 0xF0 land i 0x3C) lor i 1) lxor i 2)) ]
        in
        Alcotest.check ret_float "0x33" 51.0 v);
    Alcotest.test_case "shifts" `Quick (fun () ->
        let _, _, v =
          run_main [ ret (to_f ((i 1 lsl i 10) + (i 1024 lsr i 3)
                                + (neg (i 16) asr i 2))) ]
        in
        Alcotest.check ret_float "1024+128-4" 1148.0 v);
    Alcotest.test_case "comparisons and not" `Quick (fun () ->
        let _, _, v =
          run_main
            [
              flt_ "acc" (f 0.0);
              when_ (i 1 < i 2) [ "acc" <-- v "acc" + f 1.0 ];
              when_ (f 2.0 >= f 2.0) [ "acc" <-- v "acc" + f 10.0 ];
              when_ (not_ (i 3 == i 4)) [ "acc" <-- v "acc" + f 100.0 ];
              when_ (i 3 != i 4) [ "acc" <-- v "acc" + f 1000.0 ];
              ret (v "acc");
            ]
        in
        Alcotest.check ret_float "all true" 1111.0 v);
    Alcotest.test_case "short-circuit and/or skip side conditions" `Quick
      (fun () ->
        (* (false && 1/0 == 0) must not trap; (true || 1/0 == 0) too *)
        let _, _, v =
          run_main
            [
              flt_ "acc" (f 0.0);
              when_ (b false && (i 1 / i 0) == i 0) [ "acc" <-- f 99.0 ];
              when_ (b true || (i 1 / i 0) == i 0)
                [ "acc" <-- v "acc" + f 1.0 ];
              ret (v "acc");
            ]
        in
        Alcotest.check ret_float "guarded" 1.0 v);
    Alcotest.test_case "intrinsic calls" `Quick (fun () ->
        let _, _, v = run_main [ ret (sqrt_ (f 16.0) + fabs_ (f (-2.0))) ] in
        Alcotest.check ret_float "6" 6.0 v);
  ]

let stmt_tests =
  let open Ast.Dsl in
  [
    Alcotest.test_case "for loop sums" `Quick (fun () ->
        let _, _, v =
          run_main
            [
              flt_ "s" (f 0.0);
              for_ "k" (i 0) (i 10) [ "s" <-- v "s" + to_f (v "k") ];
              ret (v "s");
            ]
        in
        Alcotest.check ret_float "0..9" 45.0 v);
    Alcotest.test_case "while with break" `Quick (fun () ->
        let _, _, v =
          run_main
            [
              int_ "k" (i 0);
              while_ (b true)
                [
                  "k" <-- v "k" + i 1;
                  when_ (v "k" >= i 7) [ break_ ];
                ];
              ret (to_f (v "k"));
            ]
        in
        Alcotest.check ret_float "7" 7.0 v);
    Alcotest.test_case "nested loops and redeclared temps" `Quick (fun () ->
        let _, _, v =
          run_main
            [
              flt_ "s" (f 0.0);
              for_ "a" (i 0) (i 3)
                [
                  flt_ "t" (to_f (v "a"));
                  for_ "c" (i 0) (i 3) [ "s" <-- v "s" + v "t" ];
                ];
              for_ "a" (i 0) (i 2)
                [ flt_ "t" (f 10.0); "s" <-- v "s" + v "t" ];
              ret (v "s");
            ]
        in
        Alcotest.check ret_float "9 + 20" 29.0 v);
    Alcotest.test_case "if/else branches" `Quick (fun () ->
        let _, _, v =
          run_main
            [
              flt_ "s" (f 0.0);
              if_ (i 1 > i 2) [ "s" <-- f 1.0 ] [ "s" <-- f 2.0 ];
              ret (v "s");
            ]
        in
        Alcotest.check ret_float "else" 2.0 v);
    Alcotest.test_case "early return" `Quick (fun () ->
        let _, _, v =
          run_main [ ret (f 5.0); ret (f 9.0) ] in
        Alcotest.check ret_float "first" 5.0 v);
    Alcotest.test_case "arrays: store, load, i32 widening" `Quick (fun () ->
        let open Ast.Dsl in
        let _, _, v =
          run_main
            ~globals:
              [ garr_f64 "a" 4; garr_i32_init "idx" [| 3l; 2l; 1l; 0l |] ]
            [
              for_ "k" (i 0) (i 4) [ "a".%(v "k") <- to_f (v "k" * v "k") ];
              flt_ "s" (f 0.0);
              for_ "k" (i 0) (i 4) [ "s" <-- v "s" + "a".%("idx".%(v "k")) ];
              ret (v "s");
            ]
        in
        Alcotest.check ret_float "permuted sum" 14.0 v);
    Alcotest.test_case "i32 store truncates" `Quick (fun () ->
        let _, _, v =
          run_main
            ~globals:[ garr_i32 "x" 1 ]
            [
              ("x".%(i 0) <- i 0x1_0000_0005);
              ret (to_f ("x".%(i 0)));
            ]
        in
        Alcotest.check ret_float "5" 5.0 v);
    Alcotest.test_case "user functions with params and returns" `Quick
      (fun () ->
        let prog =
          Compile.program
            {
              Ast.globals = [];
              funs =
                [
                  Ast.Dsl.fn "poly"
                    ~params:[ ("x", Ast.Tf64); ("k", Ast.Ti64) ]
                    ~ret:Ast.Tf64
                    Ast.Dsl.[ ret ((v "x" * v "x") + to_f (v "k")) ];
                  Ast.Dsl.fn "main" ~ret:Ast.Tf64
                    Ast.Dsl.[ ret (call "poly" [ f 3.0; i 4 ]) ];
                ];
            }
        in
        let m = Machine.load prog in
        match (Machine.run m ~entry:"main").Machine.outcome with
        | Machine.Finished (Some v) ->
          Alcotest.check ret_float "13" 13.0 (B.to_float v)
        | _ -> Alcotest.fail "bad outcome");
  ]

let type_error_tests =
  let open Ast.Dsl in
  let expect_type_error ?(globals = []) ?(funs = []) body =
    match
      Compile.check
        { Ast.globals;
          funs = funs @ [ fn "main" ~ret:Ast.Tf64 body ] }
    with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "expected a type error"
  in
  [
    Alcotest.test_case "mixed int/float arithmetic" `Quick (fun () ->
        expect_type_error [ ret (f 1.0 + i 1) ]);
    Alcotest.test_case "float index" `Quick (fun () ->
        expect_type_error ~globals:[ garr_f64 "a" 2 ] [ ret ("a".%(f 1.0)) ]);
    Alcotest.test_case "unknown variable" `Quick (fun () ->
        expect_type_error [ ret (v "ghost") ]);
    Alcotest.test_case "unknown array" `Quick (fun () ->
        expect_type_error [ ret ("ghost".%(i 0)) ]);
    Alcotest.test_case "unknown function" `Quick (fun () ->
        expect_type_error [ ret (call "ghost" []) ]);
    Alcotest.test_case "if on non-bool" `Quick (fun () ->
        expect_type_error [ when_ (i 1) [ ]; ret (f 0.0) ]);
    Alcotest.test_case "break outside loop" `Quick (fun () ->
        expect_type_error [ break_; ret (f 0.0) ]);
    Alcotest.test_case "redeclared at different type" `Quick (fun () ->
        expect_type_error
          [ flt_ "x" (f 1.0); int_ "x" (i 1); ret (v "x") ]);
    Alcotest.test_case "assigning wrong type" `Quick (fun () ->
        expect_type_error [ flt_ "x" (f 1.0); "x" <-- i 3; ret (v "x") ]);
    Alcotest.test_case "float loop bound" `Quick (fun () ->
        expect_type_error [ for_ "k" (i 0) (f 3.0) []; ret (f 0.0) ]);
    Alcotest.test_case "wrong return type" `Quick (fun () ->
        expect_type_error [ ret (to_i (f 0.0)) |> fun _ -> ret (i 3) ]);
    Alcotest.test_case "intrinsic wrong arity" `Quick (fun () ->
        expect_type_error [ ret (call "sqrt" [ f 1.0; f 2.0 ]) ]);
    Alcotest.test_case "duplicate function names" `Quick (fun () ->
        match
          Compile.check
            {
              Ast.globals = [];
              funs =
                [
                  fn "f" [ ret_void ]; fn "f" [ ret_void ];
                  fn "main" ~ret:Ast.Tf64 [ ret (f 0.0) ];
                ];
            }
        with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected duplicate-function error");
  ]

(* Differential property: random integer expressions evaluated by the
   compiled VM match a host evaluator over the same AST. *)
let rec host_eval env (e : Ast.expr) : int64 =
  let open Ast in
  match e with
  | Ei64 n -> n
  | Evar x -> List.assoc x env
  | Ebin (op, a, b) ->
    let x = host_eval env a and y = host_eval env b in
    (match op with
    | Badd -> Int64.add x y
    | Bsub -> Int64.sub x y
    | Bmul -> Int64.mul x y
    | Bland -> Int64.logand x y
    | Blor -> Int64.logor x y
    | Blxor -> Int64.logxor x y
    | _ -> assert false)
  | Eneg a -> Int64.neg (host_eval env a)
  | _ -> assert false

let gen_int_expr =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Ast.Ei64 (Int64.of_int n)) (int_range (-1000) 1000);
        oneofl [ Ast.Evar "x"; Ast.Evar "y" ];
      ]
  in
  let node self =
    let sub = self in
    oneof
      [
        map2
          (fun op (a, b) -> Ast.Ebin (op, a, b))
          (oneofl Ast.[ Badd; Bsub; Bmul; Bland; Blor; Blxor ])
          (pair sub sub);
        map (fun a -> Ast.Eneg a) sub;
      ]
  in
  sized
    (fun n ->
      fix
        (fun self n -> if n <= 0 then leaf else oneof [ leaf; node (self (n / 2)) ])
        (min n 6))

let differential =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:120 ~name:"compiled = host on int exprs"
         QCheck2.Gen.(triple gen_int_expr (int_range (-50) 50) (int_range (-50) 50))
         (fun (e, xv, yv) ->
           let open Ast.Dsl in
           let body =
             [
               int_ "x" (i xv);
               int_ "y" (i yv);
               Ast.Sreturn (Some (Ast.Ecast (Ast.Tf64, e)));
             ]
           in
           let _, _, got = run_main body in
           let want =
             Int64.to_float
               (host_eval [ ("x", Int64.of_int xv); ("y", Int64.of_int yv) ] e)
           in
           Float.equal got want));
  ]

let suite =
  [
    ("lang.expr", expr_tests);
    ("lang.stmt", stmt_tests);
    ("lang.type-errors", type_error_tests);
    ("lang.differential", differential);
  ]
