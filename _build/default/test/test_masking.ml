(* Operation-level masking analysis (paper §III-C) and the
   read-modify-write store rule (§III-B). *)

module Masking = Moard_core.Masking
module Derive = Moard_core.Derive
module Verdict = Moard_core.Verdict
module Consume = Moard_trace.Consume
module Pattern = Moard_bits.Pattern
module Ast = Moard_lang.Ast
open Tutil

let open_dsl = Ast.Dsl.fn (* keep namespace handy *)
let _ = open_dsl

(* One program covering the §III-C cases. *)
let prog () =
  let open Ast.Dsl in
  trace_program
    [
      garr_f64_init "a" [| 1.5; -3.0; 0.25; 8.0 |];
      garr_i64_init "n" [| 12L; 3L |];
      garr_f64_init "big" [| 1e18 |];
      garr_f64 "out" 4;
    ]
    [
      fn "main"
        [
          (* value overwriting: plain store over a[0] *)
          ("a".%(i 0) <- f 7.0);
          (* logic: AND with a mask that zeroes low bits *)
          int_ "masked" ("n".%(i 0) land i 0xF00);
          (* shifting: corrupted low bits of n[0] are shifted away *)
          int_ "shifted" ("n".%(i 0) lsr i 8);
          (* comparison: n[0]=12 > 1 regardless of low-bit flips *)
          flt_ "flag" (f 0.0);
          when_ ("n".%(i 0) > i 1) [ "flag" <-- f 1.0 ];
          (* overshadowing: tiny a[2] added to 1e18 *)
          flt_ "os" ("big".%(i 0) + "a".%(i 2));
          (* read-modify-write: a[3] = a[3] + 1 *)
          ("a".%(i 3) <- "a".%(i 3) + f 1.0);
          ("out".%(i 0) <- v "os");
          ("out".%(i 1) <- to_f (v "masked" + v "shifted"));
          ("out".%(i 2) <- v "flag");
          ("out".%(i 3) <- "a".%(i 3));
          ret_void;
        ];
    ]

let analyze tape site pattern =
  Masking.analyze (event_of tape site) site.Consume.kind pattern

let overwrite_tests =
  [
    Alcotest.test_case "plain store destination masks every bit" `Quick
      (fun () ->
        let m, tape = prog () in
        let s =
          site_on m tape "a" (fun s -> is_store s && s.Consume.elem = 0)
        in
        List.iter
          (fun p ->
            match analyze tape s p with
            | Masking.Masked Verdict.Overwrite -> ()
            | _ -> Alcotest.fail "store must mask by overwriting")
          (Consume.patterns s));
    Alcotest.test_case "rmw store is recognized by Derive" `Quick (fun () ->
        let m, tape = prog () in
        let s =
          site_on m tape "a" (fun s -> is_store s && s.Consume.elem = 3)
        in
        match Derive.store_rmw_source ~tape (event_of tape s) with
        | Some (idx, _slot) -> assert (idx < s.Consume.event_idx)
        | None -> Alcotest.fail "a[3] = a[3] + 1 must be flagged as RMW");
    Alcotest.test_case "plain store is not flagged as RMW" `Quick (fun () ->
        let m, tape = prog () in
        let s =
          site_on m tape "a" (fun s -> is_store s && s.Consume.elem = 0)
        in
        assert (Derive.store_rmw_source ~tape (event_of tape s) = None));
  ]

let logic_tests =
  [
    Alcotest.test_case "AND masks the bits the mask clears" `Quick (fun () ->
        let m, tape = prog () in
        let s =
          site_on m tape "n" (fun s ->
              is_read s
              &&
              match (event_of tape s).Moard_trace.Event.instr with
              | Moard_ir.Instr.Ibin (_, Moard_ir.Instr.And, _, _, _) -> true
              | _ -> false)
        in
        (* mask 0xF00: flips outside bits 8..11 are masked *)
        (match analyze tape s (Pattern.Single 0) with
        | Masking.Masked Verdict.Logic_cmp -> ()
        | _ -> Alcotest.fail "bit 0 must be masked by AND");
        match analyze tape s (Pattern.Single 9) with
        | Masking.Masked _ -> Alcotest.fail "bit 9 must pass through"
        | _ -> ());
    Alcotest.test_case "shift discards low bits (overwrite class)" `Quick
      (fun () ->
        let m, tape = prog () in
        let s =
          site_on m tape "n" (fun s ->
              is_read s
              &&
              match (event_of tape s).Moard_trace.Event.instr with
              | Moard_ir.Instr.Ibin (_, Moard_ir.Instr.Lshr, _, _, _) ->
                s.Consume.kind = Consume.Read { slot = 0 }
              | _ -> false)
        in
        (match analyze tape s (Pattern.Single 3) with
        | Masking.Masked Verdict.Overwrite -> ()
        | _ -> Alcotest.fail "bit 3 is shifted away by >> 8");
        match analyze tape s (Pattern.Single 20) with
        | Masking.Masked _ -> Alcotest.fail "bit 20 survives >> 8"
        | _ -> ());
    Alcotest.test_case "comparison with unchanged verdict masks" `Quick
      (fun () ->
        let m, tape = prog () in
        let s =
          site_on m tape "n" (fun s ->
              is_read s
              &&
              match (event_of tape s).Moard_trace.Event.instr with
              | Moard_ir.Instr.Icmp (_, Moard_ir.Instr.Isgt, _, _, _) -> true
              | _ -> false)
        in
        (* n[0] = 12 > 1: flipping bit 1 gives 14 > 1, still true *)
        (match analyze tape s (Pattern.Single 1) with
        | Masking.Masked Verdict.Logic_cmp -> ()
        | _ -> Alcotest.fail "12->14 keeps the comparison true");
        (* flipping bit 63 makes it hugely negative: comparison flips *)
        match analyze tape s (Pattern.Single 63) with
        | Masking.Masked _ -> Alcotest.fail "sign flip changes the verdict"
        | _ -> ());
  ]

let overshadow_tests =
  [
    Alcotest.test_case "exact absorption masks as overshadowing" `Quick
      (fun () ->
        let m, tape = prog () in
        let s =
          site_on m tape "a" (fun s -> is_read s && s.Consume.elem = 2)
        in
        (* 0.25 + 1e18: low-order mantissa flips vanish in rounding *)
        match analyze tape s (Pattern.Single 0) with
        | Masking.Masked Verdict.Overshadow -> ()
        | _ -> Alcotest.fail "low mantissa bit must be absorbed by 1e18");
    Alcotest.test_case "candidate flag set when magnitude stays below" `Quick
      (fun () ->
        let m, tape = prog () in
        let s =
          site_on m tape "a" (fun s -> is_read s && s.Consume.elem = 2)
        in
        (* exponent flip that still keeps |a[2]'| < 1e18 *)
        match analyze tape s (Pattern.Single 55) with
        | Masking.Changed { overshadow; _ } -> assert overshadow
        | Masking.Masked _ -> () (* absorbed exactly is fine too *)
        | _ -> Alcotest.fail "unexpected verdict");
    Alcotest.test_case "candidate flag clear when magnitude explodes" `Quick
      (fun () ->
        let m, tape = prog () in
        let s =
          site_on m tape "a" (fun s -> is_read s && s.Consume.elem = 2)
        in
        (* flipping the top exponent bit of 0.25 gives a huge magnitude *)
        match analyze tape s (Pattern.Single 62) with
        | Masking.Changed { overshadow; _ } -> assert (not overshadow)
        | _ -> Alcotest.fail "expected a changed verdict");
  ]

let crash_divergence_tests =
  [
    Alcotest.test_case "corrupted divisor that becomes zero is a certain \
                        crash" `Quick (fun () ->
        let m, tape =
          let open Ast.Dsl in
          trace_program
            [ garr_i64_init "d" [| 1L |]; garr_f64 "out" 1 ]
            [
              fn "main"
                [
                  ("out".%(i 0) <- to_f (i 100 / "d".%(i 0)));
                  ret_void;
                ];
            ]
        in
        let s = site_on m tape "d" is_read in
        match analyze tape s (Pattern.Single 0) with
        | Masking.Crash_certain Moard_vm.Trap.Div_by_zero -> ()
        | _ -> Alcotest.fail "1 -> 0 divisor must be a certain crash");
    Alcotest.test_case "corrupted branch condition diverges" `Quick
      (fun () ->
        let m, tape =
          let open Ast.Dsl in
          trace_program
            [ garr_i64_init "n" [| 5L |]; garr_f64 "out" 1 ]
            [
              fn "main"
                [
                  flt_ "acc" (f 0.0);
                  when_ ("n".%(i 0) == i 5) [ "acc" <-- f 1.0 ];
                  ("out".%(i 0) <- v "acc");
                  ret_void;
                ];
            ]
        in
        let s =
          site_on m tape "n" (fun s ->
              is_read s
              &&
              match (event_of tape s).Moard_trace.Event.instr with
              | Moard_ir.Instr.Icmp _ -> true
              | _ -> false)
        in
        (* any flip of 5 breaks equality -> branch flips downstream, but
           the icmp itself reports the changed verdict *)
        match analyze tape s (Pattern.Single 1) with
        | Masking.Masked _ -> Alcotest.fail "equality must break"
        | _ -> ());
  ]

let suite =
  [
    ("masking.overwrite", overwrite_tests);
    ("masking.logic", logic_tests);
    ("masking.overshadow", overshadow_tests);
    ("masking.crash-divergence", crash_divergence_tests);
  ]
