(* Error-propagation replay (paper §III-D): contamination tracking,
   masking, divergence, window behaviour. *)

module Prop = Moard_core.Propagation
module Masking = Moard_core.Masking
module Verdict = Moard_core.Verdict
module Consume = Moard_trace.Consume
module Pattern = Moard_bits.Pattern
module Machine = Moard_vm.Machine
module Ast = Moard_lang.Ast
open Tutil

let replay ?(k = 50) ?(outputs = []) m tape site pattern =
  let e = event_of tape site in
  match Masking.analyze e site.Consume.kind pattern with
  | Masking.Changed { out; _ } ->
    let init =
      match out with
      | Masking.To_reg { frame; reg; value } ->
        Prop.From_reg { frame; reg; value }
      | Masking.To_mem { addr; value; ty } -> Prop.From_mem { addr; value; ty }
    in
    let outputs = List.map (Machine.object_of m) outputs in
    Prop.replay ~tape ~k ~shadow_cap:256 ~outputs
      ~start:site.Consume.event_idx ~init
  | _ -> Alcotest.fail "expected an unmasked, changed operation"

let tests =
  [
    Alcotest.test_case "clean overwrite kills contamination" `Quick
      (fun () ->
        (* t = a[0] * 2 (consumed); t is then overwritten before use *)
        let open Ast.Dsl in
        let m, tape =
          trace_program
            [ garr_f64_init "a" [| 2.0 |]; garr_f64 "out" 1 ]
            [
              fn "main"
                [
                  flt_ "t" ("a".%(i 0) * f 2.0);
                  "t" <-- f 5.0;
                  ("out".%(i 0) <- v "t");
                  ret_void;
                ];
            ]
        in
        let s = site_on m tape "a" is_read in
        match replay ~outputs:[ "out" ] m tape s (Pattern.Single 40) with
        | Prop.Masked Verdict.Overwrite -> ()
        | v ->
          Alcotest.failf "expected overwrite masking, got %s"
            (match v with
            | Prop.Masked k -> "masked/" ^ Verdict.kind_name k
            | Prop.Crash_certain _ -> "crash"
            | Prop.Unresolved r -> Prop.reason_name r));
    Alcotest.test_case "dead contamination is dropped" `Quick (fun () ->
        (* the corrupted product is never read again *)
        let open Ast.Dsl in
        let m, tape =
          trace_program
            [ garr_f64_init "a" [| 2.0 |]; garr_f64 "scratch" 1; garr_f64 "out" 1 ]
            [
              fn "main"
                [
                  ("scratch".%(i 0) <- "a".%(i 0) * f 2.0);
                  ("out".%(i 0) <- f 1.0);
                  ret_void;
                ];
            ]
        in
        let s = site_on m tape "a" is_read in
        match replay ~outputs:[ "out" ] m tape s (Pattern.Single 40) with
        | Prop.Masked _ -> ()
        | _ -> Alcotest.fail "never-consumed contamination must be masked");
    Alcotest.test_case "contaminated output cell is unresolved" `Quick
      (fun () ->
        let open Ast.Dsl in
        let m, tape =
          trace_program
            [ garr_f64_init "a" [| 2.0 |]; garr_f64 "out" 1 ]
            [
              fn "main"
                [ ("out".%(i 0) <- "a".%(i 0) * f 2.0); ret_void ];
            ]
        in
        let s = site_on m tape "a" is_read in
        match replay ~outputs:[ "out" ] m tape s (Pattern.Single 40) with
        | Prop.Unresolved
            (Prop.Output_contaminated | Prop.Window_exhausted) -> ()
        | _ -> Alcotest.fail "corrupted output must need fault injection");
    Alcotest.test_case "branch flip is control divergence" `Quick (fun () ->
        let open Ast.Dsl in
        let m, tape =
          trace_program
            [ garr_f64_init "a" [| 2.0 |]; garr_f64 "out" 1 ]
            [
              fn "main"
                [
                  flt_ "t" ("a".%(i 0) * f 1.0);
                  flt_ "r" (f 0.0);
                  when_ (v "t" > f 100.0) [ "r" <-- f 1.0 ];
                  ("out".%(i 0) <- v "r");
                  ret_void;
                ];
            ]
        in
        let s = site_on m tape "a" is_read in
        (* flipping a zero exponent bit of 2.0 sends t far above 100 *)
        match replay ~outputs:[ "out" ] m tape s (Pattern.Single 61) with
        | Prop.Unresolved Prop.Control_divergence -> ()
        | _ -> Alcotest.fail "expected control divergence");
    Alcotest.test_case "branch not flipped continues and masks" `Quick
      (fun () ->
        let open Ast.Dsl in
        let m, tape =
          trace_program
            [ garr_f64_init "a" [| 2.0 |]; garr_f64 "out" 1 ]
            [
              fn "main"
                [
                  flt_ "t" ("a".%(i 0) * f 1.0);
                  flt_ "r" (f 0.0);
                  when_ (v "t" > f 100.0) [ "r" <-- f 1.0 ];
                  ("out".%(i 0) <- v "r");
                  ret_void;
                ];
            ]
        in
        let s = site_on m tape "a" is_read in
        (* low-bit flip keeps t < 100: the compare masks, r stays clean *)
        match replay ~outputs:[ "out" ] m tape s (Pattern.Single 2) with
        | Prop.Masked _ -> ()
        | _ -> Alcotest.fail "low-bit flip should die at the comparison");
    Alcotest.test_case "contamination crossing a call is tracked" `Quick
      (fun () ->
        let open Ast.Dsl in
        let m, tape =
          trace_program
            [ garr_f64_init "a" [| 2.0 |]; garr_f64 "out" 1 ]
            [
              fn "scale" ~params:[ ("x", Ast.Tf64) ] ~ret:Ast.Tf64
                [ flt_ "y" (v "x" * f 3.0); "y" <-- f 1.0; ret (v "y") ];
              fn "main"
                [
                  flt_ "t" ("a".%(i 0) + f 1.0);
                  ("out".%(i 0) <- call "scale" [ v "t" ]);
                  ret_void;
                ];
            ]
        in
        let s = site_on m tape "a" is_read in
        (* t is contaminated, passed into scale, used to build y, but y is
           overwritten with a clean constant before being returned *)
        match replay ~outputs:[ "out" ] m tape s (Pattern.Single 30) with
        | Prop.Masked _ -> ()
        | v ->
          Alcotest.failf "expected masking through the call, got %s"
            (match v with
            | Prop.Unresolved r -> Prop.reason_name r
            | Prop.Crash_certain _ -> "crash"
            | Prop.Masked _ -> assert false));
    Alcotest.test_case "contaminated return value reaches the caller" `Quick
      (fun () ->
        let open Ast.Dsl in
        let m, tape =
          trace_program
            [ garr_f64_init "a" [| 2.0 |]; garr_f64 "out" 1 ]
            [
              fn "id" ~params:[ ("x", Ast.Tf64) ] ~ret:Ast.Tf64
                [ ret (v "x" * f 1.0) ];
              fn "main"
                [
                  flt_ "t" ("a".%(i 0) + f 1.0);
                  ("out".%(i 0) <- call "id" [ v "t" ]);
                  ret_void;
                ];
            ]
        in
        let s = site_on m tape "a" is_read in
        match replay ~outputs:[ "out" ] m tape s (Pattern.Single 30) with
        | Prop.Unresolved
            (Prop.Output_contaminated | Prop.Window_exhausted) -> ()
        | _ -> Alcotest.fail "the corrupted value flows to the output");
    Alcotest.test_case "short window gives up where a long one masks" `Quick
      (fun () ->
        let open Ast.Dsl in
        let m, tape =
          trace_program
            [ garr_f64_init "a" [| 2.0 |]; garr_f64 "buf" 1; garr_f64 "out" 1 ]
            [
              fn "main"
                [
                  ("buf".%(i 0) <- "a".%(i 0) * f 2.0);
                  (* filler that does not touch buf *)
                  flt_ "w" (f 0.0);
                  for_ "k" (i 0) (i 12) [ "w" <-- v "w" + f 1.0 ];
                  (* the contaminated cell is finally overwritten clean *)
                  ("buf".%(i 0) <- v "w");
                  ("out".%(i 0) <- "buf".%(i 0));
                  ret_void;
                ];
            ]
        in
        let s = site_on m tape "a" is_read in
        (match replay ~k:5 ~outputs:[ "out" ] m tape s (Pattern.Single 40) with
        | Prop.Unresolved Prop.Window_exhausted -> ()
        | _ -> Alcotest.fail "k=5 must give up");
        match replay ~k:200 ~outputs:[ "out" ] m tape s (Pattern.Single 40) with
        | Prop.Masked Verdict.Overwrite -> ()
        | _ -> Alcotest.fail "k=200 must see the clean overwrite");
    Alcotest.test_case "wild store address is unresolved" `Quick (fun () ->
        let open Ast.Dsl in
        let m, tape =
          trace_program
            [ garr_i64_init "ix" [| 1L |]; garr_f64 "buf" 4; garr_f64 "out" 1 ]
            [
              fn "main"
                [
                  int_ "j" ("ix".%(i 0) + i 1);
                  ("buf".%(v "j") <- f 3.0);
                  ("out".%(i 0) <- "buf".%(i 2));
                  ret_void;
                ];
            ]
        in
        let s = site_on m tape "ix" is_read in
        (* corrupted index -> the store goes somewhere else *)
        match replay ~outputs:[ "out" ] m tape s (Pattern.Single 5) with
        | Prop.Unresolved Prop.Wild_access -> ()
        | v ->
          Alcotest.failf "expected wild access, got %s"
            (match v with
            | Prop.Unresolved r -> Prop.reason_name r
            | Prop.Masked k -> "masked/" ^ Verdict.kind_name k
            | Prop.Crash_certain _ -> "crash"));
    Alcotest.test_case "certain crash via corrupted divisor downstream"
      `Quick (fun () ->
        let open Ast.Dsl in
        let m, tape =
          trace_program
            [ garr_i64_init "d" [| 3L |]; garr_f64 "out" 1 ]
            [
              fn "main"
                [
                  int_ "t" ("d".%(i 0) - i 1);  (* consumed here: t = 2 *)
                  ("out".%(i 0) <- to_f (i 100 / v "t"));
                  ret_void;
                ];
            ]
        in
        let s = site_on m tape "d" is_read in
        (* 3 ^ bit0 = 2 -> t = 1? no: flip bit 0 of 3 gives 2, t=1, fine.
           flip bit 1: 3 -> 1, t = 0 -> division by zero downstream *)
        match replay ~outputs:[ "out" ] m tape s (Pattern.Single 1) with
        | Prop.Crash_certain Moard_vm.Trap.Div_by_zero -> ()
        | _ -> Alcotest.fail "expected certain crash");
  ]

let suite = [ ("propagation.replay", tests) ]
