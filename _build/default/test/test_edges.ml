(* Edge cases across modules that the main suites do not reach. *)

module Machine = Moard_vm.Machine
module Prop = Moard_core.Propagation
module Ast = Moard_lang.Ast
module B = Moard_bits.Bitval
open Tutil

let machine_edges =
  [
    Alcotest.test_case "entry arguments land in parameter registers" `Quick
      (fun () ->
        let prog =
          Moard_lang.Compile.program
            {
              Ast.globals = [];
              funs =
                [
                  Ast.Dsl.fn "main"
                    ~params:[ ("x", Ast.Tf64); ("k", Ast.Ti64) ]
                    ~ret:Ast.Tf64
                    Ast.Dsl.[ ret (v "x" * to_f (v "k")) ];
                ];
            }
        in
        let m = Machine.load prog in
        let r =
          Machine.run m ~entry:"main"
            ~args:[ B.of_float 2.5; B.of_int64 4L ]
        in
        match r.Machine.outcome with
        | Machine.Finished (Some v) ->
          Alcotest.(check (float 1e-12)) "10.0" 10.0 (B.to_float v)
        | _ -> Alcotest.fail "should finish");
    Alcotest.test_case "wrong entry arity traps" `Quick (fun () ->
        let prog =
          Moard_lang.Compile.program
            { Ast.globals = [];
              funs = [ Ast.Dsl.fn "main" ~params:[ ("x", Ast.Tf64) ]
                         Ast.Dsl.[ ret_void ] ] }
        in
        let m = Machine.load prog in
        match (Machine.run m ~entry:"main").Machine.outcome with
        | Machine.Trapped (Moard_vm.Trap.Arity _) -> ()
        | _ -> Alcotest.fail "expected arity trap");
    Alcotest.test_case "mem_bytes too small is rejected at load" `Quick
      (fun () ->
        let prog =
          Moard_lang.Compile.program
            { Ast.globals = [ Ast.Dsl.garr_f64 "big" 10_000 ];
              funs = [ Ast.Dsl.fn "main" [ Ast.Dsl.ret_void ] ] }
        in
        match Machine.load ~mem_bytes:1024 prog with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "tiny memory accepted");
  ]

let propagation_edges =
  [
    Alcotest.test_case "contamination explosion aborts to the injector"
      `Quick (fun () ->
        (* one corrupted value fans out into many cells *)
        let open Ast.Dsl in
        let m, tape =
          trace_program
            [ garr_f64_init "a" [| 2.0 |]; garr_f64 "fan" 64; garr_f64 "out" 1 ]
            [
              fn "main"
                [
                  flt_ "t" ("a".%(i 0) * f 2.0);
                  for_ "k" (i 0) (i 64) [ ("fan".%(v "k") <- v "t" + to_f (v "k")) ];
                  flt_ "s" (f 0.0);
                  for_ "k" (i 0) (i 64) [ "s" <-- v "s" + "fan".%(v "k") ];
                  ("out".%(i 0) <- v "s");
                  ret_void;
                ];
            ]
        in
        let site = site_on m tape "a" is_read in
        let e = event_of tape site in
        match
          Moard_core.Masking.analyze e site.Moard_trace.Consume.kind
            (Moard_bits.Pattern.Single 40)
        with
        | Moard_core.Masking.Changed { out; _ } ->
          let init =
            match out with
            | Moard_core.Masking.To_reg { frame; reg; value } ->
              Prop.From_reg { frame; reg; value }
            | Moard_core.Masking.To_mem { addr; value; ty } ->
              Prop.From_mem { addr; value; ty }
          in
          (match
             Prop.replay ~tape ~k:1000 ~shadow_cap:8 ~outputs:[]
               ~start:site.Moard_trace.Consume.event_idx ~init
           with
          | Prop.Unresolved Prop.Explosion -> ()
          | _ -> Alcotest.fail "expected explosion with shadow_cap 8")
        | _ -> Alcotest.fail "expected a changed verdict");
  ]

let workload_edges =
  [
    Alcotest.test_case "segment membership" `Quick (fun () ->
        let w = Moard_kernels.Cg.workload () in
        assert (Moard_inject.Workload.in_segment w "conj_grad");
        assert (not (Moard_inject.Workload.in_segment w "main"));
        let all =
          { w with Moard_inject.Workload.segment = [] }
        in
        assert (Moard_inject.Workload.in_segment all "anything"));
    Alcotest.test_case "golden trap rejected at context creation" `Quick
      (fun () ->
        let open Ast.Dsl in
        let w =
          workload_of ~targets:[ "z" ]
            [ garr_i64_init "z" [| 0L |]; garr_f64 "out" 1 ]
            [
              fn "main"
                [ ("out".%(i 0) <- to_f (i 1 / "z".%(i 0))); ret_void ];
            ]
            "trapping"
        in
        match Moard_inject.Context.make w with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "trapping golden run accepted");
  ]

let chart_edges =
  [
    Alcotest.test_case "stacked with no segments is blank" `Quick (fun () ->
        Alcotest.(check string) "blank" (String.make 8 ' ')
          (Moard_report.Chart.stacked ~width:8 []));
    Alcotest.test_case "whisker clamps out-of-range margins" `Quick
      (fun () ->
        let s =
          Moard_report.Chart.whisker ~width:12 ~center:0.9 ~margin:0.5 ()
        in
        Alcotest.(check int) "width" 12 (String.length s));
  ]

let opt_edges =
  [
    Alcotest.test_case "optimize level 0 is the identity" `Quick (fun () ->
        let w = Moard_kernels.Ft.workload () in
        let p = w.Moard_inject.Workload.program in
        assert (Moard_opt.Passes.optimize ~level:0 p == p));
    Alcotest.test_case "optimize level 1 folds but keeps copies" `Quick
      (fun () ->
        let w = Moard_kernels.Ft.workload () in
        let p = w.Moard_inject.Workload.program in
        let p1 = Moard_opt.Passes.optimize ~level:1 p in
        (* still executable and equivalent *)
        let run prog =
          let m = Machine.load prog in
          (Machine.run m ~entry:"main").Machine.steps
        in
        assert (run p1 > 0));
  ]

let suite =
  [
    ("edges.machine", machine_edges);
    ("edges.propagation", propagation_edges);
    ("edges.workload", workload_edges);
    ("edges.chart", chart_edges);
    ("edges.opt", opt_edges);
  ]
