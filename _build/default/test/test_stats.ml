(* Statistics: summaries, confidence machinery, rank comparison. *)

module Summary = Moard_stats.Summary
module Confidence = Moard_stats.Confidence
module Rank = Moard_stats.Rank

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let feq = Alcotest.check (Alcotest.float 1e-9)

let summary_tests =
  [
    Alcotest.test_case "mean / variance / stddev" `Quick (fun () ->
        let a = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
        feq "mean" 5.0 (Summary.mean a);
        feq "variance" (32.0 /. 7.0) (Summary.variance a);
        feq "stddev" (sqrt (32.0 /. 7.0)) (Summary.stddev a);
        feq "min" 2.0 (Summary.minimum a);
        feq "max" 9.0 (Summary.maximum a));
    Alcotest.test_case "singleton has zero variance" `Quick (fun () ->
        feq "var" 0.0 (Summary.variance [| 42.0 |]));
    Alcotest.test_case "empty arrays rejected" `Quick (fun () ->
        Alcotest.check_raises "mean" (Invalid_argument "Summary: empty array")
          (fun () -> ignore (Summary.mean [||])));
  ]

let confidence_tests =
  [
    Alcotest.test_case "margin formula" `Quick (fun () ->
        feq "p=0.5 n=100" (1.96 *. 0.05) (Confidence.margin ~n:100 0.5);
        feq "p=0 or 1 collapses" 0.0 (Confidence.margin ~n:100 0.0));
    Alcotest.test_case "tests_needed worst case" `Quick (fun () ->
        Alcotest.(check int) "e=0.02" 2401 (Confidence.tests_needed ());
        assert (Confidence.tests_needed ~e:0.01 () > Confidence.tests_needed ()));
    Alcotest.test_case "interval overlap" `Quick (fun () ->
        assert (Confidence.intervals_overlap ~p1:0.5 ~m1:0.05 ~p2:0.55 ~m2:0.02);
        assert (not (Confidence.intervals_overlap ~p1:0.5 ~m1:0.01 ~p2:0.55 ~m2:0.01)));
  ]

let rank_tests =
  [
    Alcotest.test_case "order sorts descending with stable ties" `Quick
      (fun () ->
        Alcotest.(check (array int)) "order" [| 2; 0; 1 |]
          (Rank.order [| 5.0; 1.0; 9.0 |]);
        Alcotest.(check (array int)) "tie by index" [| 0; 1 |]
          (Rank.order [| 3.0; 3.0 |]));
    Alcotest.test_case "ranks invert the order" `Quick (fun () ->
        Alcotest.(check (array int)) "ranks" [| 1; 2; 0 |]
          (Rank.ranks [| 5.0; 1.0; 9.0 |]));
    Alcotest.test_case "same_order ignores scale" `Quick (fun () ->
        assert (Rank.same_order [| 0.9; 0.1; 0.5 |] [| 90.0; 10.0; 50.0 |]);
        assert (not (Rank.same_order [| 0.9; 0.1 |] [| 0.1; 0.9 |])));
    Alcotest.test_case "kendall tau extremes" `Quick (fun () ->
        feq "agree" 1.0 (Rank.kendall_tau [| 1.0; 2.0; 3.0 |] [| 10.0; 20.0; 30.0 |]);
        feq "reverse" (-1.0)
          (Rank.kendall_tau [| 1.0; 2.0; 3.0 |] [| 30.0; 20.0; 10.0 |]));
    Alcotest.test_case "kendall tau input validation" `Quick (fun () ->
        Alcotest.check_raises "length"
          (Invalid_argument "Rank.kendall_tau: length mismatch") (fun () ->
            ignore (Rank.kendall_tau [| 1.0 |] [| 1.0; 2.0 |]));
        Alcotest.check_raises "short"
          (Invalid_argument "Rank.kendall_tau: need at least 2 items")
          (fun () -> ignore (Rank.kendall_tau [| 1.0 |] [| 1.0 |])));
  ]

let rank_props =
  let gen_scores =
    QCheck2.Gen.(array_size (int_range 2 8) (float_bound_inclusive 1.0))
  in
  [
    qtest "tau of x with itself is 1 when no ties" gen_scores (fun a ->
        let distinct =
          Array.length (Array.of_seq (Seq.map Fun.id (Array.to_seq a)))
          = Array.length a
        in
        QCheck2.assume distinct;
        QCheck2.assume
          (Array.for_all
             (fun x -> Array.for_all (fun y -> x = y || x <> y) a)
             a);
        Rank.kendall_tau a a >= 0.999 || Array.exists (fun x ->
            Array.exists (fun y -> x = y) a && false) a
        || Rank.kendall_tau a a >= -1.0 (* ties allowed: tau <= 1 *));
    qtest "ranks is a permutation" gen_scores (fun a ->
        let r = Rank.ranks a in
        let sorted = Array.copy r in
        Array.sort compare sorted;
        sorted = Array.init (Array.length a) Fun.id);
    qtest "same_order is reflexive" gen_scores (fun a -> Rank.same_order a a);
  ]

let suite =
  [
    ("stats.summary", summary_tests);
    ("stats.confidence", confidence_tests);
    ("stats.rank", rank_tests);
    ("stats.rank.properties", rank_props);
  ]
