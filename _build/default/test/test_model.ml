(* The model driver: aDVF invariants, determinism, caching, budgets,
   agreement with exhaustive injection on a controlled workload. *)

module Model = Moard_core.Model
module Advf = Moard_core.Advf
module Context = Moard_inject.Context
module Ast = Moard_lang.Ast

let synthetic () =
  let open Ast.Dsl in
  Tutil.workload_of
    ~targets:[ "a"; "b"; "idx" ]
    [
      garr_f64 "a" 4;
      garr_f64_init "b" [| 1.0; 2.0; 3.0; 4.0 |];
      garr_i64_init "idx" [| 3L; 2L; 1L; 0L |];
      garr_f64 "out" 1;
    ]
    [
      fn "main"
        [
          for_ "k" (i 0) (i 4) [ ("a".%(v "k") <- f 7.5) ];
          flt_ "s" (f 1.0e18);
          for_ "k" (i 0) (i 4) [ "s" <-- v "s" + "b".%(v "k") ];
          flt_ "t" (f 0.0);
          for_ "k" (i 0) (i 4) [ "t" <-- v "t" + "a".%("idx".%(v "k")) ];
          ("out".%(i 0) <- v "s" + v "t");
          ret_void;
        ];
    ]
    "synthetic"

let shared = lazy (Context.make (synthetic ()))

let report obj = Model.analyze (Lazy.force shared) ~object_name:obj

let invariant_tests =
  [
    Alcotest.test_case "aDVF lies in [0,1] and sums decompose" `Quick
      (fun () ->
        List.iter
          (fun obj ->
            let r = report obj in
            assert (r.Advf.advf >= 0.0 && r.Advf.advf <= 1.0);
            let by_level =
              r.Advf.by_level.(0) +. r.Advf.by_level.(1) +. r.Advf.by_level.(2)
            in
            Alcotest.check (Alcotest.float 1e-9) "levels sum to aDVF"
              r.Advf.advf by_level;
            (* kinds cover the op+prop levels exactly *)
            let by_kind = Array.fold_left ( +. ) 0.0 r.Advf.by_kind in
            Alcotest.check (Alcotest.float 1e-9) "kinds sum to op+prop"
              (r.Advf.by_level.(0) +. r.Advf.by_level.(1))
              by_kind)
          [ "a"; "b"; "idx" ]);
    Alcotest.test_case "masking events never exceed involvements" `Quick
      (fun () ->
        List.iter
          (fun obj ->
            let r = report obj in
            assert (r.Advf.masking_events
                    <= float_of_int r.Advf.involvements +. 1e-9))
          [ "a"; "b"; "idx" ]);
    Alcotest.test_case "expected shapes on the synthetic workload" `Quick
      (fun () ->
        let a = report "a" and b = report "b" and idx = report "idx" in
        assert (a.Advf.advf > 0.9);
        assert (b.Advf.advf > 0.9);
        assert (idx.Advf.advf < 0.5);
        (* b's masking is overshadowing against the 1e18 accumulator *)
        assert (b.Advf.by_kind.(2) > 0.8);
        (* a is dominated by overwriting *)
        assert (a.Advf.by_kind.(0) > 0.3));
    Alcotest.test_case "analyze_targets covers the declared objects" `Quick
      (fun () ->
        let rs = Model.analyze_targets (Lazy.force shared) in
        Alcotest.(check (list string))
          "object names"
          [ "a"; "b"; "idx" ]
          (List.map (fun r -> r.Advf.object_name) rs));
    Alcotest.test_case "unknown object raises" `Quick (fun () ->
        match report "ghost" with
        | exception Not_found -> ()
        | _ -> Alcotest.fail "expected Not_found");
  ]

let determinism_tests =
  [
    Alcotest.test_case "two analyses of one context agree exactly" `Quick
      (fun () ->
        let r1 = report "idx" and r2 = report "idx" in
        assert (Float.equal r1.Advf.advf r2.Advf.advf);
        assert (r1.Advf.involvements = r2.Advf.involvements));
    Alcotest.test_case "fresh contexts agree exactly" `Quick (fun () ->
        let c1 = Context.make (synthetic ()) in
        let c2 = Context.make (synthetic ()) in
        let a1 = Model.analyze c1 ~object_name:"b" in
        let a2 = Model.analyze c2 ~object_name:"b" in
        assert (Float.equal a1.Advf.advf a2.Advf.advf));
    Alcotest.test_case "cache does not change the result" `Quick (fun () ->
        let ctx = Context.make (synthetic ()) in
        let cached = Model.analyze ctx ~object_name:"idx" in
        let uncached =
          Model.analyze
            ~options:{ Model.default_options with use_cache = false }
            ctx ~object_name:"idx"
        in
        Alcotest.check (Alcotest.float 1e-12) "same aDVF" cached.Advf.advf
          uncached.Advf.advf);
  ]

let budget_tests =
  [
    Alcotest.test_case "zero fault-injection budget counts unresolved"
      `Quick (fun () ->
        let ctx = Context.make (synthetic ()) in
        let r =
          Model.analyze
            ~options:
              { Model.default_options with fi_budget = 0; use_cache = false }
            ctx ~object_name:"idx"
        in
        assert (r.Advf.fi_runs = 0);
        assert (r.Advf.unresolved > 0);
        (* conservative: unresolved counts as not masked *)
        let full = report "idx" in
        assert (r.Advf.advf <= full.Advf.advf +. 1e-9));
    Alcotest.test_case "smaller k only moves masking toward fi" `Quick
      (fun () ->
        let ctx = Context.make (synthetic ()) in
        let at k =
          Model.analyze
            ~options:{ Model.default_options with k }
            ctx ~object_name:"a"
        in
        let k5 = at 5 and k100 = at 100 in
        (* the total is stable; only the resolution stage shifts *)
        Alcotest.check (Alcotest.float 0.02) "aDVF stable under k"
          k100.Advf.advf k5.Advf.advf);
  ]

let agreement_tests =
  [
    Alcotest.test_case "aDVF ranks objects like exhaustive injection" `Quick
      (fun () ->
        let ctx = Context.make (synthetic ()) in
        let objs = [ "a"; "b"; "idx" ] in
        let advfs =
          Array.of_list
            (List.map
               (fun o -> (Model.analyze ctx ~object_name:o).Advf.advf)
               objs)
        in
        let exs =
          Array.of_list
            (List.map
               (fun o ->
                 (Moard_inject.Exhaustive.campaign ctx ~object_name:o)
                   .Moard_inject.Exhaustive.success_rate)
               objs)
        in
        (* a and b are a near-tie by construction; require agreement on
           the clearly-separated vulnerable object and overall positive
           correlation (the paper compares rank orders the same way). *)
        let ra = Moard_stats.Rank.ranks advfs
        and re = Moard_stats.Rank.ranks exs in
        assert (ra.(2) = 2 && re.(2) = 2);
        assert (Moard_stats.Rank.kendall_tau advfs exs > 0.3));
  ]

let multi_bit_tests =
  [
    Alcotest.test_case "multi-bit pattern families are analyzable" `Quick
      (fun () ->
        let ctx = Context.make (synthetic ()) in
        let r =
          Model.analyze
            ~options:
              { Model.default_options with multi = [ `Burst 2; `Pair 8 ] }
            ctx ~object_name:"a"
        in
        assert (r.Advf.advf >= 0.0 && r.Advf.advf <= 1.0);
        (* store overwrites mask any pattern, so a stays highly resilient *)
        assert (r.Advf.advf > 0.8));
  ]

let suite =
  [
    ("model.invariants", invariant_tests);
    ("model.determinism", determinism_tests);
    ("model.budget", budget_tests);
    ("model.agreement", agreement_tests);
    ("model.multi-bit", multi_bit_tests);
  ]
