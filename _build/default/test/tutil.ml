(* Shared helpers for model-level tests: build a MiniC workload, trace it,
   and locate consumption sites of an object. *)

module Ast = Moard_lang.Ast
module Machine = Moard_vm.Machine
module Tape = Moard_trace.Tape
module Consume = Moard_trace.Consume

let trace_program ?(entry = "main") globals funs =
  let prog = Moard_lang.Compile.program { Ast.globals; funs } in
  let m = Machine.load prog in
  let _, tape = Machine.trace m ~entry in
  (m, tape)

let sites m tape gname =
  Consume.of_tape tape (Machine.object_of m gname)

let site_on m tape gname pred =
  match List.filter pred (sites m tape gname) with
  | s :: _ -> s
  | [] -> Alcotest.fail ("no matching consumption site for " ^ gname)

let is_read (s : Consume.t) =
  match s.Consume.kind with Consume.Read _ -> true | _ -> false

let is_store (s : Consume.t) =
  match s.Consume.kind with Consume.Store_dest -> true | _ -> false

let event_of tape (s : Consume.t) = Tape.get tape s.Consume.event_idx

let workload_of ?(targets = []) ?(outputs = [ "out" ]) ?accept ?segment
    globals funs name =
  let prog = Moard_lang.Compile.program { Ast.globals; funs } in
  Moard_inject.Workload.make ~name ~program:prog ?segment ~targets ~outputs ?accept
    ()
