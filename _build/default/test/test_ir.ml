(* IR structure: instructions, builder, validator, static identities. *)

module I = Moard_ir.Instr
module T = Moard_ir.Types
module P = Moard_ir.Program
module B = Moard_ir.Builder
module Iid = Moard_ir.Iid
module Bitval = Moard_bits.Bitval

let check = Alcotest.check
let tint = Alcotest.int

let imm n = I.Imm (Bitval.of_int64 n)

let types_tests =
  [
    Alcotest.test_case "sizes" `Quick (fun () ->
        check tint "i1" 1 (T.size T.I1);
        check tint "i32" 4 (T.size T.I32);
        check tint "i64" 8 (T.size T.I64);
        check tint "f64" 8 (T.size T.F64);
        check tint "ptr" 8 (T.size T.Ptr));
    Alcotest.test_case "is_float" `Quick (fun () ->
        assert (T.is_float T.F64);
        assert (not (T.is_float T.I64)));
    Alcotest.test_case "width mapping" `Quick (fun () ->
        assert (T.width T.I32 = Bitval.W32);
        assert (T.width T.Ptr = Bitval.W64));
  ]

let instr_tests =
  [
    Alcotest.test_case "reads in slot order" `Quick (fun () ->
        check tint "store has 2 slots" 2
          (List.length (I.reads (I.Store (T.F64, imm 1L, imm 2L))));
        check tint "select has 3" 3
          (List.length (I.reads (I.Select (0, imm 0L, imm 1L, imm 2L))));
        check tint "ret none has 0" 0 (List.length (I.reads (I.Ret None)));
        check tint "mov has 1" 1 (List.length (I.reads (I.Mov (0, imm 1L)))));
    Alcotest.test_case "writes" `Quick (fun () ->
        assert (I.writes (I.Store (T.F64, imm 1L, imm 2L)) = None);
        assert (I.writes (I.Load (3, T.F64, imm 0L)) = Some 3);
        assert (I.writes (I.Call (Some 7, "f", [])) = Some 7);
        assert (I.writes (I.Br 0) = None));
    Alcotest.test_case "terminators" `Quick (fun () ->
        assert (I.is_terminator (I.Br 0));
        assert (I.is_terminator (I.Cbr (imm 1L, 0, 1)));
        assert (I.is_terminator (I.Ret None));
        assert (not (I.is_terminator (I.Mov (0, imm 1L)))));
    Alcotest.test_case "pretty printing is total" `Quick (fun () ->
        let instrs =
          [
            I.Mov (0, imm 1L);
            I.Ibin (1, I.Add, T.I64, imm 1L, I.Reg 0);
            I.Fbin (2, I.Fmul, I.Reg 1, I.Reg 1);
            I.Icmp (3, I.Islt, T.I64, I.Reg 0, imm 9L);
            I.Fcmp (4, I.Foeq, I.Reg 2, I.Reg 2);
            I.Cast (5, I.Sext_to_i64, I.Reg 0);
            I.Load (6, T.F64, I.Glob "a");
            I.Store (T.F64, I.Reg 2, I.Glob "a");
            I.Gep (7, I.Glob "a", I.Reg 0, 8);
            I.Select (8, I.Reg 3, imm 0L, imm 1L);
            I.Call (Some 9, "sqrt", [ I.Reg 2 ]);
            I.Call (None, "p", []);
            I.Br 1;
            I.Cbr (I.Reg 3, 0, 1);
            I.Ret (Some (I.Reg 9));
            I.Ret None;
          ]
        in
        List.iter
          (fun i -> assert (String.length (Format.asprintf "%a" I.pp i) > 0))
          instrs);
  ]

let builder_tests =
  [
    Alcotest.test_case "straight-line function" `Quick (fun () ->
        let b = B.create ~name:"f" ~nparams:1 in
        let r = B.ibin b I.Add T.I64 (I.Reg 0) (imm 1L) in
        B.ret b (Some (I.Reg r));
        let fn = B.finish b in
        check tint "blocks" 1 (Array.length fn.P.blocks);
        check tint "instrs" 2 (Array.length fn.P.blocks.(0));
        check tint "regs" 2 fn.P.nregs);
    Alcotest.test_case "missing terminator rejected" `Quick (fun () ->
        let b = B.create ~name:"g" ~nparams:0 in
        B.mov b (B.fresh b) (imm 0L);
        match B.finish b with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected Failure");
    Alcotest.test_case "switch_to bad block" `Quick (fun () ->
        let b = B.create ~name:"g" ~nparams:0 in
        Alcotest.check_raises "oob" (Invalid_argument "Builder.switch_to")
          (fun () -> B.switch_to b 3));
    Alcotest.test_case "many blocks grow" `Quick (fun () ->
        let b = B.create ~name:"g" ~nparams:0 in
        let labels = List.init 20 (fun _ -> B.new_block b) in
        B.br b (List.hd labels);
        List.iter
          (fun l ->
            B.switch_to b l;
            B.ret b None)
          labels;
        let fn = B.finish b in
        check tint "21 blocks" 21 (Array.length fn.P.blocks));
  ]

let good_func () =
  let b = B.create ~name:"f" ~nparams:0 in
  B.ret b None;
  B.finish b

let validate_tests =
  let known = fun _ -> true in
  [
    Alcotest.test_case "valid function accepted" `Quick (fun () ->
        match Moard_ir.Validate.check_func ~known (good_func ()) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "register out of range" `Quick (fun () ->
        let fn =
          { P.fname = "f"; nparams = 0; nregs = 1;
            blocks = [| [| I.Mov (0, I.Reg 5); I.Ret None |] |] }
        in
        assert (Result.is_error (Moard_ir.Validate.check_func ~known fn)));
    Alcotest.test_case "branch target out of range" `Quick (fun () ->
        let fn =
          { P.fname = "f"; nparams = 0; nregs = 0; blocks = [| [| I.Br 7 |] |] }
        in
        assert (Result.is_error (Moard_ir.Validate.check_func ~known fn)));
    Alcotest.test_case "mid-block terminator rejected" `Quick (fun () ->
        let fn =
          { P.fname = "f"; nparams = 0; nregs = 0;
            blocks = [| [| I.Ret None; I.Ret None |] |] }
        in
        assert (Result.is_error (Moard_ir.Validate.check_func ~known fn)));
    Alcotest.test_case "unknown callee rejected" `Quick (fun () ->
        let fn =
          { P.fname = "f"; nparams = 0; nregs = 0;
            blocks = [| [| I.Call (None, "nope", []); I.Ret None |] |] }
        in
        assert (Result.is_error
                  (Moard_ir.Validate.check_func ~known:(fun _ -> false) fn)));
    Alcotest.test_case "duplicate globals rejected" `Quick (fun () ->
        let g = { P.gname = "x"; gty = T.F64; gelems = 1; ginit = P.Zeros } in
        let p = { P.globals = [ g; g ]; funcs = [ good_func () ] } in
        assert (Result.is_error
                  (Moard_ir.Validate.check_program ~intrinsics:[] p)));
    Alcotest.test_case "unknown global operand rejected" `Quick (fun () ->
        let b = B.create ~name:"f" ~nparams:0 in
        let _ = B.load b T.F64 (I.Glob "missing") in
        B.ret b None;
        let p = { P.globals = []; funcs = [ B.finish b ] } in
        assert (Result.is_error
                  (Moard_ir.Validate.check_program ~intrinsics:[] p)));
    Alcotest.test_case "non-positive gep scale rejected" `Quick (fun () ->
        let fn =
          { P.fname = "f"; nparams = 0; nregs = 1;
            blocks = [| [| I.Gep (0, imm 0L, imm 0L, 0); I.Ret None |] |] }
        in
        assert (Result.is_error (Moard_ir.Validate.check_func ~known fn)));
  ]

let iid_tests =
  [
    Alcotest.test_case "equal and hash agree" `Quick (fun () ->
        let a = Iid.make ~fn:"f" ~blk:1 ~ip:2 in
        let b = Iid.make ~fn:"f" ~blk:1 ~ip:2 in
        assert (Iid.equal a b);
        assert (Iid.hash a = Iid.hash b));
    Alcotest.test_case "compare orders by fn, blk, ip" `Quick (fun () ->
        let mk fn blk ip = Iid.make ~fn ~blk ~ip in
        assert (Iid.compare (mk "a" 0 0) (mk "b" 0 0) < 0);
        assert (Iid.compare (mk "a" 1 0) (mk "a" 0 9) > 0);
        assert (Iid.compare (mk "a" 1 1) (mk "a" 1 2) < 0));
    Alcotest.test_case "map and table usable" `Quick (fun () ->
        let a = Iid.make ~fn:"f" ~blk:0 ~ip:0 in
        let m = Iid.Map.add a 1 Iid.Map.empty in
        assert (Iid.Map.find a m = 1);
        let t = Iid.Tbl.create 4 in
        Iid.Tbl.replace t a 2;
        assert (Iid.Tbl.find t a = 2));
  ]

let suite =
  [
    ("ir.types", types_tests);
    ("ir.instr", instr_tests);
    ("ir.builder", builder_tests);
    ("ir.validate", validate_tests);
    ("ir.iid", iid_tests);
  ]
