test/test_text.ml: Alcotest Array Float Instr Int64 List Moard_bits Moard_inject Moard_ir Moard_kernels Moard_vm
