test/test_propagation.ml: Alcotest List Moard_bits Moard_core Moard_lang Moard_trace Moard_vm Tutil
