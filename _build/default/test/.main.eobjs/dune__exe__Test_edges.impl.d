test/test_edges.ml: Alcotest Moard_bits Moard_core Moard_inject Moard_kernels Moard_lang Moard_opt Moard_report Moard_trace Moard_vm String Tutil
