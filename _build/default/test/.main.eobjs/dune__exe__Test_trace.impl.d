test/test_trace.ml: Alcotest List Moard_bits Moard_ir Moard_lang Moard_trace Moard_vm String
