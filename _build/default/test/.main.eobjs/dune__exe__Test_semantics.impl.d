test/test_semantics.ml: Alcotest Float Int64 List Moard_bits Moard_ir Moard_vm QCheck2 QCheck_alcotest
