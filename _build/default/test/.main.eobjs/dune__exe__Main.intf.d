test/main.mli:
