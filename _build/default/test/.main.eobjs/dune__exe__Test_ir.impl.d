test/test_ir.ml: Alcotest Array Format List Moard_bits Moard_ir Result String
