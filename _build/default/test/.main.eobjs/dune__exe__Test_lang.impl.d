test/test_lang.ml: Alcotest Float Int64 List Moard_bits Moard_lang Moard_vm QCheck2 QCheck_alcotest
