test/test_model.ml: Alcotest Array Float Lazy List Moard_core Moard_inject Moard_lang Moard_stats Tutil
