test/test_parallel.ml: Alcotest Array Moard_core Moard_inject Moard_kernels Moard_parallel
