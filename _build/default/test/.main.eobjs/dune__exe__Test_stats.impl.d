test/test_stats.ml: Alcotest Array Fun Moard_stats QCheck2 QCheck_alcotest Seq
