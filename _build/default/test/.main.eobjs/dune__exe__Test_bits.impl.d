test/test_bits.ml: Alcotest Bitval Float Int64 List Moard_bits Pattern QCheck2 QCheck_alcotest
