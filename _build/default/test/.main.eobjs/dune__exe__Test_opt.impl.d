test/test_opt.ml: Alcotest Array Float Int64 List Moard_bits Moard_inject Moard_ir Moard_kernels Moard_opt Moard_vm
