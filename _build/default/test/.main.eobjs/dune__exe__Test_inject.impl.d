test/test_inject.ml: Alcotest Array Float Lazy List Moard_bits Moard_inject Moard_lang Moard_stats Moard_trace Moard_vm Tutil
