test/test_kernels.ml: Alcotest Array Float Format List Moard_bits Moard_core Moard_inject Moard_kernels Moard_trace Moard_vm Printf String Tutil
