test/test_vm.ml: Alcotest Array Float Int64 Moard_bits Moard_ir Moard_lang Moard_trace Moard_vm QCheck2 QCheck_alcotest
