test/tutil.ml: Alcotest List Moard_inject Moard_lang Moard_trace Moard_vm
