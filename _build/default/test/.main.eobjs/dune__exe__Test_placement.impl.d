test/test_placement.ml: Alcotest Format List Moard_core String
