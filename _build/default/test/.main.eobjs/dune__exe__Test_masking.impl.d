test/test_masking.ml: Alcotest List Moard_bits Moard_core Moard_ir Moard_lang Moard_trace Moard_vm Tutil
