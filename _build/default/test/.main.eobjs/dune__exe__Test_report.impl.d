test/test_report.ml: Alcotest List Moard_core Moard_inject Moard_lang Moard_report String Tutil
