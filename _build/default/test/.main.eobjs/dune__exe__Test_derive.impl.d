test/test_derive.ml: Alcotest Array Moard_core Moard_inject Moard_ir Moard_kernels Moard_lang Moard_trace Tutil
