(* Benchmark kernels: golden correctness against host references, and the
   qualitative resilience shapes the paper's evaluation reports. *)

module Context = Moard_inject.Context
module Machine = Moard_vm.Machine
module K = Moard_kernels

let golden w =
  let ctx = Context.make w in
  (ctx, Context.golden_floats ctx)

let finite = Array.for_all Float.is_finite

let golden_tests =
  [
    Alcotest.test_case "every registry workload runs to completion" `Slow
      (fun () ->
        List.iter
          (fun (e : K.Registry.entry) ->
            let ctx, g = golden (e.K.Registry.workload ()) in
            assert (finite g);
            assert (Context.golden_steps ctx > 100);
            (* target objects really exist *)
            List.iter
              (fun o -> ignore (Context.object_of ctx o))
              e.K.Registry.objects)
          K.Registry.all);
    Alcotest.test_case "CG converges" `Quick (fun () ->
        let _, g = golden (K.Cg.workload ()) in
        (* residual (out[0]) well below the initial norm *)
        assert (g.(0) < 1.0));
    Alcotest.test_case "MG reduces the residual" `Quick (fun () ->
        let _, g = golden (K.Mg.workload ()) in
        assert (g.(0) < 0.5));
    Alcotest.test_case "AMG converges" `Quick (fun () ->
        let _, g = golden (K.Amg.workload ()) in
        assert (g.(0) < 0.05));
    Alcotest.test_case "PF tracks the observations" `Quick (fun () ->
        let _, g = golden (K.Particle_filter.workload ()) in
        (* rms error out[0] below half an observation step *)
        assert (g.(0) < 0.5));
    Alcotest.test_case "CG matrix is symmetric positive-ish" `Quick
      (fun () ->
        (* different seeds still converge: the generator keeps the matrix
           diagonally dominant *)
        List.iter
          (fun seed ->
            let _, g = golden (K.Cg.workload ~seed ()) in
            assert (g.(0) < 1.0))
          [ 1; 2; 3 ]);
    Alcotest.test_case "workload sizes are configurable" `Quick (fun () ->
        let c1, _ = golden (K.Cg.workload ~n:8 ~iters:2 ()) in
        let c2, _ = golden (K.Cg.workload ~n:16 ~iters:4 ()) in
        assert (Context.golden_steps c1 < Context.golden_steps c2));
  ]

(* FT checked against a naive host DFT. *)
let ft_reference_test =
  Alcotest.test_case "FT matches a naive host DFT" `Quick (fun () ->
      let n = 8 and seed = 11 in
      let rng = K.Util.Rng.make seed in
      let init =
        Array.init (2 * n * n) (fun _ -> K.Util.Rng.float rng 2.0 -. 1.0)
      in
      let re = Array.init n (fun r -> Array.init n (fun c -> init.(2 * ((r * n) + c)))) in
      let im =
        Array.init n (fun r -> Array.init n (fun c -> init.(2 * ((r * n) + c) + 1)))
      in
      let dft_rows re im =
        let re' = Array.map Array.copy re and im' = Array.map Array.copy im in
        for r = 0 to n - 1 do
          for k = 0 to n - 1 do
            let sr = ref 0.0 and si = ref 0.0 in
            for j = 0 to n - 1 do
              let th =
                -2.0 *. Float.pi *. float_of_int (k * j) /. float_of_int n
              in
              sr := !sr +. (re.(r).(j) *. cos th) -. (im.(r).(j) *. sin th);
              si := !si +. (re.(r).(j) *. sin th) +. (im.(r).(j) *. cos th)
            done;
            re'.(r).(k) <- !sr;
            im'.(r).(k) <- !si
          done
        done;
        (re', im')
      in
      let transpose m = Array.init n (fun r -> Array.init n (fun c -> m.(c).(r))) in
      let re1, im1 = dft_rows re im in
      let re3, im3 = dft_rows (transpose re1) (transpose im1) in
      let cr = ref 0.0 and ci = ref 0.0 in
      for j = 0 to (n * n) - 1 do
        if j mod 3 = 0 then begin
          cr := !cr +. re3.(j / n).(j mod n);
          ci := !ci +. im3.(j / n).(j mod n)
        end
      done;
      let _, g = golden (K.Ft.workload ~n ~seed ()) in
      Alcotest.(check (float 1e-8)) "re checksum" !cr g.(0);
      Alcotest.(check (float 1e-8)) "im checksum" !ci g.(1))

(* MM checked against a host matrix product; ABFT must not perturb it. *)
let mm_reference_test =
  Alcotest.test_case "MM matches the host product; ABFT is transparent"
    `Quick (fun () ->
      let n = 6 and seed = 61 in
      let rng = K.Util.Rng.make seed in
      let a = Array.init (n * n) (fun _ -> 0.5 +. K.Util.Rng.float rng 1.0) in
      let b = Array.init (n * n) (fun _ -> 0.5 +. K.Util.Rng.float rng 1.0) in
      let expect r c =
        let s = ref 0.0 in
        for k = 0 to n - 1 do
          s := !s +. (a.((r * n) + k) *. b.((k * n) + c))
        done;
        !s
      in
      let _, g_plain = golden (K.Abft_mm.workload ~n ~seed ()) in
      let _, g_abft = golden (K.Abft_mm.workload ~n ~seed ~abft:true ()) in
      for r = 0 to n - 1 do
        for c = 0 to n - 1 do
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "C[%d][%d]" r c)
            (expect r c)
            g_plain.((r * n) + c)
        done
      done;
      Alcotest.(check (array (float 1e-12))) "abft outputs identical" g_plain
        g_abft)

(* The ABFT verification really corrects injected corruption. *)
let abft_behaviour_test =
  Alcotest.test_case "ABFT corrects a corrupted product element" `Quick
    (fun () ->
      let ctx = Context.make (K.Abft_mm.workload ~abft:true ()) in
      let tape = Context.tape ctx in
      let obj = Context.object_of ctx "C" in
      (* find a read of a data element of C inside mm's accumulation *)
      let sites =
        Moard_trace.Consume.of_tape ~segment:(Context.segment ctx) tape obj
        |> List.filter Tutil.is_read
      in
      let site = List.nth sites (List.length sites / 2) in
      (* a high-magnitude flip that the checksums will catch *)
      let out =
        Context.inject_at ~use_cache:false ctx site
          (Moard_bits.Pattern.Single 60)
      in
      assert (Moard_inject.Outcome.equal out Moard_inject.Outcome.Same))

let lulesh_tests =
  [
    Alcotest.test_case "LULESH viscosity is zero for expanding elements"
      `Quick (fun () ->
        let ctx = Context.make (K.Lulesh.workload ()) in
        let m = Context.machine ctx in
        let r = Machine.run m ~entry:"main" in
        let delv = Machine.read_f64s m r.Machine.mem "m_delv_zeta" in
        let qq = Machine.read_f64s m r.Machine.mem "qq" in
        Array.iteri
          (fun ie d -> if d >= 0.0 then assert (Float.equal qq.(ie) 0.0))
          delv);
    Alcotest.test_case "boundary flags keep neighbour loads in range" `Quick
      (fun () ->
        (* would trap on m_delv_zeta[-1] without the elemBC branches *)
        let _, g = golden (K.Lulesh.workload ~nelem:4 ()) in
        assert (finite g));
  ]

(* Qualitative shapes from the paper's evaluation, on the cheapest
   kernels (the full sweep lives in the bench harness). *)
let shape_tests =
  [
    Alcotest.test_case "CG: r resilient, colidx vulnerable, colidx masking \
                        is algorithm-level" `Slow (fun () ->
        let ctx = Context.make (K.Cg.workload ~n:10 ~iters:2 ()) in
        let r = Moard_core.Model.analyze ctx ~object_name:"r" in
        let c = Moard_core.Model.analyze ctx ~object_name:"colidx" in
        assert (r.Moard_core.Advf.advf > 0.5);
        assert (c.Moard_core.Advf.advf < 0.3);
        assert (r.Moard_core.Advf.advf > c.Moard_core.Advf.advf);
        (* colidx's little masking comes from the algorithm level *)
        assert (c.Moard_core.Advf.by_level.(2)
                >= c.Moard_core.Advf.by_level.(0)));
    Alcotest.test_case "ABFT helps C in MM but not xe in PF" `Slow (fun () ->
        let advf w o =
          (Moard_core.Model.analyze (Context.make w) ~object_name:o)
            .Moard_core.Advf.advf
        in
        let mm = advf (K.Abft_mm.workload ~n:4 ()) "C" in
        let mm' = advf (K.Abft_mm.workload ~n:4 ~abft:true ()) "C" in
        assert (mm' > mm +. 0.2);
        let pf = advf (K.Particle_filter.workload ~particles:8 ~steps:3 ()) "xe" in
        let pf' =
          advf (K.Particle_filter.workload ~particles:8 ~steps:3 ~abft:true ()) "xe"
        in
        assert (Float.abs (pf' -. pf) < 0.1));
  ]

let registry_tests =
  [
    Alcotest.test_case "Table I has the paper's eight benchmarks" `Quick
      (fun () ->
        Alcotest.(check (list string))
          "names"
          [ "CG"; "MG"; "FT"; "BT"; "SP"; "LU"; "LULESH"; "AMG" ]
          (List.map (fun e -> e.K.Registry.benchmark) K.Registry.table1));
    Alcotest.test_case "find is case-insensitive" `Quick (fun () ->
        assert ((K.Registry.find "lulesh").K.Registry.benchmark = "LULESH");
        match K.Registry.find "nope" with
        | exception Not_found -> ()
        | _ -> Alcotest.fail "expected Not_found");
    Alcotest.test_case "table renders" `Quick (fun () ->
        let s = Format.asprintf "%a" K.Registry.pp_table1 () in
        assert (String.length s > 400));
  ]

let suite =
  [
    ("kernels.golden", golden_tests);
    ("kernels.references", [ ft_reference_test; mm_reference_test;
                             abft_behaviour_test ]);
    ("kernels.lulesh", lulesh_tests);
    ("kernels.shapes", shape_tests);
    ("kernels.registry", registry_tests);
  ]
