(* Textual IR: parsing, printing, and print/parse round trips over every
   compiled benchmark. *)

module Text = Moard_ir.Text
module P = Moard_ir.Program
module Machine = Moard_vm.Machine

let sample =
  {|
; a tiny hand-written program
global @a : f64[2] = { 1.5, 2.25 }
global @n : i64[1] = { 7 }
global @flags : i32[2] = { 3, -1 }
global @out : f64[1]

fn main(params 0, regs 6) {
L0:
  %r0 = load.f64 @a
  %r1 = gep @a + i64:0x1 * 8
  %r2 = load.f64 %r1
  %r3 = fadd %r0, %r2
  %r4 = fcmp.olt %r3, f64:100.
  cbr %r4, L1, L2
L1:
  store.f64 %r3 -> @out
  ret
L2:
  %r5 = call sqrt(%r3)
  store.f64 %r5 -> @out
  ret
}
|}

let parse_tests =
  [
    Alcotest.test_case "hand-written program parses and runs" `Quick
      (fun () ->
        let p = Text.parse_program sample in
        Alcotest.(check int) "globals" 4 (List.length p.P.globals);
        Alcotest.(check int) "funcs" 1 (List.length p.P.funcs);
        let m = Machine.load p in
        let r = Machine.run m ~entry:"main" in
        (match r.Machine.outcome with
        | Machine.Finished _ -> ()
        | Machine.Trapped t ->
          Alcotest.failf "trapped: %s" (Moard_vm.Trap.to_string t));
        Alcotest.(check (float 1e-12)) "out" 3.75
          (Machine.read_f64s m r.Machine.mem "out").(0));
    Alcotest.test_case "initializers parse at every type" `Quick (fun () ->
        let p = Text.parse_program sample in
        (match (P.global p "a").P.ginit with
        | P.Floats [| 1.5; 2.25 |] -> ()
        | _ -> Alcotest.fail "float init");
        (match (P.global p "n").P.ginit with
        | P.I64s [| 7L |] -> ()
        | _ -> Alcotest.fail "i64 init");
        match (P.global p "flags").P.ginit with
        | P.I32s [| 3l; -1l |] -> ()
        | _ -> Alcotest.fail "i32 init");
    Alcotest.test_case "parse errors carry line numbers" `Quick (fun () ->
        (match Text.parse_program "fn broken(params 0, regs 1) {\nL0:\n  %r0 = frobnicate %r0\n}" with
        | exception Text.Parse_error { line = 3; _ } -> ()
        | exception Text.Parse_error { line; _ } ->
          Alcotest.failf "wrong line %d" line
        | _ -> Alcotest.fail "expected a parse error");
        match Text.parse_program "  %r0 = mov i64:0x1" with
        | exception Text.Parse_error _ -> ()
        | _ -> Alcotest.fail "instruction outside a function accepted");
  ]

let roundtrip_tests =
  [
    Alcotest.test_case "every benchmark round-trips through text" `Quick
      (fun () ->
        List.iter
          (fun (e : Moard_kernels.Registry.entry) ->
            let w = e.Moard_kernels.Registry.workload () in
            let p = w.Moard_inject.Workload.program in
            let p' = Text.parse_program (Text.to_string p) in
            if p <> p' then
              Alcotest.failf "%s: text round trip is not the identity"
                e.Moard_kernels.Registry.benchmark)
          Moard_kernels.Registry.all);
    Alcotest.test_case "round trip preserves special float images" `Quick
      (fun () ->
        let open Moard_ir in
        let mk bits =
          {
            P.globals = [];
            funcs =
              [
                {
                  P.fname = "f"; nparams = 0; nregs = 1;
                  blocks =
                    [|
                      [|
                        Instr.Mov (0, Instr.Imm (Moard_bits.Bitval.of_int64 bits));
                        Instr.Ret (Some (Instr.Reg 0));
                      |];
                    |];
                };
              ];
          }
        in
        List.iter
          (fun bits ->
            let p = mk bits in
            assert (Text.parse_program (Text.to_string p) = p))
          [
            Int64.bits_of_float Float.nan;
            Int64.bits_of_float Float.infinity;
            Int64.bits_of_float (-0.0);
            Int64.bits_of_float 0.1;
            Int64.bits_of_float Float.min_float;
            0x7FF0000000000001L (* signaling nan image *);
            Int64.min_int;
          ]);
  ]

let suite = [ ("ir.text.parse", parse_tests); ("ir.text.roundtrip", roundtrip_tests) ]
