(** Static instruction identity: which instruction of which block of which
    function. Dynamic trace events carry their static identity so that the
    error-equivalence cache (paper §IV, after Relyzer/GangES) can recognize
    repeated occurrences of the same instruction with the same operand
    values and reuse masking verdicts. *)

type t = { fn : string; blk : int; ip : int }

val make : fn:string -> blk:int -> ip:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
