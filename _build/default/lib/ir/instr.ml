type reg = int

type operand =
  | Reg of reg
  | Imm of Moard_bits.Bitval.t
  | Glob of string

type ibin =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor
  | Shl | Lshr | Ashr

type fbin = Fadd | Fsub | Fmul | Fdiv

type icmp = Ieq | Ine | Islt | Isle | Isgt | Isge

type fcmp = Foeq | Fone | Folt | Fole | Fogt | Foge

type cast =
  | Trunc_to_i32
  | Sext_to_i64
  | Zext_to_i64
  | Fp_to_si
  | Si_to_fp
  | Bitcast_f_to_i
  | Bitcast_i_to_f

type t =
  | Mov of reg * operand
  | Ibin of reg * ibin * Types.t * operand * operand
  | Fbin of reg * fbin * operand * operand
  | Icmp of reg * icmp * Types.t * operand * operand
  | Fcmp of reg * fcmp * operand * operand
  | Cast of reg * cast * operand
  | Load of reg * Types.t * operand
  | Store of Types.t * operand * operand
  | Gep of reg * operand * operand * int
  | Select of reg * operand * operand * operand
  | Call of reg option * string * operand list
  | Br of int
  | Cbr of operand * int * int
  | Ret of operand option

let reads = function
  | Mov (_, a) -> [ a ]
  | Ibin (_, _, _, a, b) | Fbin (_, _, a, b)
  | Icmp (_, _, _, a, b) | Fcmp (_, _, a, b) -> [ a; b ]
  | Cast (_, _, a) | Load (_, _, a) -> [ a ]
  | Store (_, v, addr) -> [ v; addr ]
  | Gep (_, base, idx, _) -> [ base; idx ]
  | Select (_, c, x, y) -> [ c; x; y ]
  | Call (_, _, args) -> args
  | Br _ -> []
  | Cbr (c, _, _) -> [ c ]
  | Ret (Some v) -> [ v ]
  | Ret None -> []

let writes = function
  | Mov (d, _)
  | Ibin (d, _, _, _, _) | Fbin (d, _, _, _)
  | Icmp (d, _, _, _, _) | Fcmp (d, _, _, _)
  | Cast (d, _, _) | Load (d, _, _)
  | Gep (d, _, _, _) | Select (d, _, _, _) -> Some d
  | Call (d, _, _) -> d
  | Store _ | Br _ | Cbr _ | Ret _ -> None

let is_terminator = function
  | Br _ | Cbr _ | Ret _ -> true
  | _ -> false

let string_of_ibin = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Srem -> "srem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let string_of_fbin = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let string_of_icmp = function
  | Ieq -> "eq" | Ine -> "ne" | Islt -> "slt" | Isle -> "sle"
  | Isgt -> "sgt" | Isge -> "sge"

let string_of_fcmp = function
  | Foeq -> "oeq" | Fone -> "one" | Folt -> "olt" | Fole -> "ole"
  | Fogt -> "ogt" | Foge -> "oge"

let string_of_cast = function
  | Trunc_to_i32 -> "trunc.i32"
  | Sext_to_i64 -> "sext.i64"
  | Zext_to_i64 -> "zext.i64"
  | Fp_to_si -> "fptosi"
  | Si_to_fp -> "sitofp"
  | Bitcast_f_to_i -> "bitcast.f2i"
  | Bitcast_i_to_f -> "bitcast.i2f"

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "%%r%d" r
  | Imm v -> Moard_bits.Bitval.pp ppf v
  | Glob g -> Format.fprintf ppf "@%s" g

let pp ppf instr =
  let op = pp_operand in
  match instr with
  | Mov (d, a) -> Format.fprintf ppf "%%r%d = mov %a" d op a
  | Ibin (d, o, ty, a, b) ->
    Format.fprintf ppf "%%r%d = %s.%a %a, %a" d (string_of_ibin o)
      Types.pp ty op a op b
  | Fbin (d, o, a, b) ->
    Format.fprintf ppf "%%r%d = %s %a, %a" d (string_of_fbin o) op a op b
  | Icmp (d, o, ty, a, b) ->
    Format.fprintf ppf "%%r%d = icmp.%s.%a %a, %a" d (string_of_icmp o)
      Types.pp ty op a op b
  | Fcmp (d, o, a, b) ->
    Format.fprintf ppf "%%r%d = fcmp.%s %a, %a" d (string_of_fcmp o) op a op b
  | Cast (d, c, a) ->
    Format.fprintf ppf "%%r%d = %s %a" d (string_of_cast c) op a
  | Load (d, ty, a) ->
    Format.fprintf ppf "%%r%d = load.%a %a" d Types.pp ty op a
  | Store (ty, v, a) ->
    Format.fprintf ppf "store.%a %a -> %a" Types.pp ty op v op a
  | Gep (d, base, idx, scale) ->
    Format.fprintf ppf "%%r%d = gep %a + %a * %d" d op base op idx scale
  | Select (d, c, x, y) ->
    Format.fprintf ppf "%%r%d = select %a ? %a : %a" d op c op x op y
  | Call (Some d, f, args) ->
    Format.fprintf ppf "%%r%d = call %s(%a)" d f
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") op)
      args
  | Call (None, f, args) ->
    Format.fprintf ppf "call %s(%a)" f
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") op)
      args
  | Br l -> Format.fprintf ppf "br L%d" l
  | Cbr (c, l1, l2) -> Format.fprintf ppf "cbr %a, L%d, L%d" op c l1 l2
  | Ret (Some v) -> Format.fprintf ppf "ret %a" op v
  | Ret None -> Format.fprintf ppf "ret"
