module Bitval = Moard_bits.Bitval

exception Parse_error of { line : int; message : string }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let string_of_ibin = function
  | Instr.Add -> "add" | Instr.Sub -> "sub" | Instr.Mul -> "mul"
  | Instr.Sdiv -> "sdiv" | Instr.Srem -> "srem" | Instr.And -> "and"
  | Instr.Or -> "or" | Instr.Xor -> "xor" | Instr.Shl -> "shl"
  | Instr.Lshr -> "lshr" | Instr.Ashr -> "ashr"

let string_of_icmp = function
  | Instr.Ieq -> "eq" | Instr.Ine -> "ne" | Instr.Islt -> "slt"
  | Instr.Isle -> "sle" | Instr.Isgt -> "sgt" | Instr.Isge -> "sge"

let string_of_fcmp = function
  | Instr.Foeq -> "oeq" | Instr.Fone -> "one" | Instr.Folt -> "olt"
  | Instr.Fole -> "ole" | Instr.Fogt -> "ogt" | Instr.Foge -> "oge"

let string_of_cast = function
  | Instr.Trunc_to_i32 -> "trunc.i32"
  | Instr.Sext_to_i64 -> "sext.i64"
  | Instr.Zext_to_i64 -> "zext.i64"
  | Instr.Fp_to_si -> "fptosi"
  | Instr.Si_to_fp -> "sitofp"
  | Instr.Bitcast_f_to_i -> "bitcast.f2i"
  | Instr.Bitcast_i_to_f -> "bitcast.i2f"

let string_of_operand = function
  | Instr.Reg r -> Printf.sprintf "%%r%d" r
  | Instr.Glob g -> "@" ^ g
  | Instr.Imm v -> (
    match (v : Bitval.t).width with
    | Bitval.W1 -> Printf.sprintf "i1:%Ld" v.bits
    | Bitval.W32 -> Printf.sprintf "i32:0x%Lx" v.bits
    | Bitval.W64 ->
      (* Small images are almost always integer constants (indexes, loop
         bounds); render them in decimal. Anything else that is a finite,
         round-tripping double renders as a hexadecimal float. *)
      if Int64.abs v.bits < 0x100_0000_0000L then
        Printf.sprintf "i64:%Ld" v.bits
      else
        let f = Int64.float_of_bits v.bits in
        if Float.is_finite f && Int64.equal (Int64.bits_of_float f) v.bits
        then Printf.sprintf "f64:%h" f
        else Printf.sprintf "i64:0x%Lx" v.bits)

let string_of_instr instr =
  let op = string_of_operand in
  match instr with
  | Instr.Mov (d, a) -> Printf.sprintf "%%r%d = mov %s" d (op a)
  | Instr.Ibin (d, o, ty, a, b) ->
    Printf.sprintf "%%r%d = %s.%s %s, %s" d (string_of_ibin o)
      (Types.to_string ty) (op a) (op b)
  | Instr.Fbin (d, o, a, b) ->
    let name =
      match o with
      | Instr.Fadd -> "fadd" | Instr.Fsub -> "fsub"
      | Instr.Fmul -> "fmul" | Instr.Fdiv -> "fdiv"
    in
    Printf.sprintf "%%r%d = %s %s, %s" d name (op a) (op b)
  | Instr.Icmp (d, o, ty, a, b) ->
    Printf.sprintf "%%r%d = icmp.%s.%s %s, %s" d (string_of_icmp o)
      (Types.to_string ty) (op a) (op b)
  | Instr.Fcmp (d, o, a, b) ->
    Printf.sprintf "%%r%d = fcmp.%s %s, %s" d (string_of_fcmp o) (op a) (op b)
  | Instr.Cast (d, c, a) ->
    Printf.sprintf "%%r%d = %s %s" d (string_of_cast c) (op a)
  | Instr.Load (d, ty, a) ->
    Printf.sprintf "%%r%d = load.%s %s" d (Types.to_string ty) (op a)
  | Instr.Store (ty, v, a) ->
    Printf.sprintf "store.%s %s -> %s" (Types.to_string ty) (op v) (op a)
  | Instr.Gep (d, base, index, scale) ->
    Printf.sprintf "%%r%d = gep %s + %s * %d" d (op base) (op index) scale
  | Instr.Select (d, c, x, y) ->
    Printf.sprintf "%%r%d = select %s ? %s : %s" d (op c) (op x) (op y)
  | Instr.Call (Some d, f, args) ->
    Printf.sprintf "%%r%d = call %s(%s)" d f
      (String.concat ", " (List.map op args))
  | Instr.Call (None, f, args) ->
    Printf.sprintf "call %s(%s)" f (String.concat ", " (List.map op args))
  | Instr.Br l -> Printf.sprintf "br L%d" l
  | Instr.Cbr (c, l1, l2) -> Printf.sprintf "cbr %s, L%d, L%d" (op c) l1 l2
  | Instr.Ret (Some v) -> Printf.sprintf "ret %s" (op v)
  | Instr.Ret None -> "ret"

let print_global ppf (g : Program.global) =
  Format.fprintf ppf "global @@%s : %s[%d]" g.Program.gname
    (Types.to_string g.Program.gty) g.Program.gelems;
  (match g.Program.ginit with
  | Program.Zeros -> ()
  | Program.Floats a ->
    Format.fprintf ppf " = { %s }"
      (String.concat ", "
         (Array.to_list (Array.map (Printf.sprintf "%h") a)))
  | Program.I64s a ->
    Format.fprintf ppf " = { %s }"
      (String.concat ", " (Array.to_list (Array.map Int64.to_string a)))
  | Program.I32s a ->
    Format.fprintf ppf " = { %s }"
      (String.concat ", " (Array.to_list (Array.map Int32.to_string a))));
  Format.fprintf ppf "@."

let print_program ppf (p : Program.t) =
  List.iter (print_global ppf) p.Program.globals;
  List.iter
    (fun (fn : Program.func) ->
      Format.fprintf ppf "@.fn %s(params %d, regs %d) {@." fn.Program.fname
        fn.Program.nparams fn.Program.nregs;
      Array.iteri
        (fun bi block ->
          Format.fprintf ppf "L%d:@." bi;
          Array.iter
            (fun instr -> Format.fprintf ppf "  %s@." (string_of_instr instr))
            block)
        fn.Program.blocks;
      Format.fprintf ppf "}@.")
    p.Program.funcs

let to_string p = Format.asprintf "%a" print_program p

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type state = { mutable lineno : int }

let fail st fmt =
  Format.kasprintf
    (fun message -> raise (Parse_error { line = st.lineno; message }))
    fmt

(* Split a line into tokens: words plus the punctuation , ( ) ? : -> + *.
   '=' is kept as a token; names keep their sigils (%rN, @g, L3, f64:..). *)
let tokenize st line =
  let n = String.length line in
  let toks = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    (match c with
    | ' ' | '\t' -> flush ()
    | ',' | '(' | ')' | '?' | '{' | '}' ->
      flush ();
      toks := String.make 1 c :: !toks
    | ':' ->
      (* part of an immediate tag (i64:...) or a label definition; keep it
         attached if the buffer holds a width tag *)
      let b = Buffer.contents buf in
      if b = "i1" || b = "i32" || b = "i64" || b = "f64" then
        Buffer.add_char buf c
      else begin
        flush ();
        toks := ":" :: !toks
      end
    | '-' when !i + 1 < n && line.[!i + 1] = '>' ->
      flush ();
      toks := "->" :: !toks;
      incr i
    | '=' when Buffer.length buf = 0 && !i + 1 < n && line.[!i + 1] = ' ' ->
      toks := "=" :: !toks
    | _ -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  ignore st;
  List.rev !toks

let parse_int st s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail st "expected an integer, got %S" s

let parse_reg st s =
  if String.length s > 2 && s.[0] = '%' && s.[1] = 'r' then
    parse_int st (String.sub s 2 (String.length s - 2))
  else fail st "expected a register, got %S" s

let parse_label st s =
  if String.length s > 1 && s.[0] = 'L' then
    parse_int st (String.sub s 1 (String.length s - 1))
  else fail st "expected a label, got %S" s

let parse_operand st s =
  if String.length s = 0 then fail st "empty operand"
  else if s.[0] = '%' then Instr.Reg (parse_reg st s)
  else if s.[0] = '@' then Instr.Glob (String.sub s 1 (String.length s - 1))
  else
    let tagged prefix =
      if String.length s > String.length prefix
         && String.sub s 0 (String.length prefix) = prefix
      then Some (String.sub s (String.length prefix)
                   (String.length s - String.length prefix))
      else None
    in
    match tagged "i1:" with
    | Some body -> Instr.Imm (Bitval.make Bitval.W1 (Int64.of_string body))
    | None -> (
      match tagged "i32:" with
      | Some body -> Instr.Imm (Bitval.make Bitval.W32 (Int64.of_string body))
      | None -> (
        match tagged "i64:" with
        | Some body -> Instr.Imm (Bitval.of_int64 (Int64.of_string body))
        | None -> (
          match tagged "f64:" with
          | Some body -> (
            match float_of_string_opt body with
            | Some f -> Instr.Imm (Bitval.of_float f)
            | None -> fail st "bad float immediate %S" s)
          | None -> fail st "unrecognized operand %S" s)))

let ibin_of_name = function
  | "add" -> Some Instr.Add | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul | "sdiv" -> Some Instr.Sdiv
  | "srem" -> Some Instr.Srem | "and" -> Some Instr.And
  | "or" -> Some Instr.Or | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl | "lshr" -> Some Instr.Lshr
  | "ashr" -> Some Instr.Ashr | _ -> None

let fbin_of_name = function
  | "fadd" -> Some Instr.Fadd | "fsub" -> Some Instr.Fsub
  | "fmul" -> Some Instr.Fmul | "fdiv" -> Some Instr.Fdiv
  | _ -> None

let icmp_of_name = function
  | "eq" -> Some Instr.Ieq | "ne" -> Some Instr.Ine
  | "slt" -> Some Instr.Islt | "sle" -> Some Instr.Isle
  | "sgt" -> Some Instr.Isgt | "sge" -> Some Instr.Isge
  | _ -> None

let fcmp_of_name = function
  | "oeq" -> Some Instr.Foeq | "one" -> Some Instr.Fone
  | "olt" -> Some Instr.Folt | "ole" -> Some Instr.Fole
  | "ogt" -> Some Instr.Fogt | "oge" -> Some Instr.Foge
  | _ -> None

let cast_of_name = function
  | "trunc.i32" -> Some Instr.Trunc_to_i32
  | "sext.i64" -> Some Instr.Sext_to_i64
  | "zext.i64" -> Some Instr.Zext_to_i64
  | "fptosi" -> Some Instr.Fp_to_si
  | "sitofp" -> Some Instr.Si_to_fp
  | "bitcast.f2i" -> Some Instr.Bitcast_f_to_i
  | "bitcast.i2f" -> Some Instr.Bitcast_i_to_f
  | _ -> None

let ty_of_name st = function
  | "i1" -> Types.I1 | "i32" -> Types.I32 | "i64" -> Types.I64
  | "f64" -> Types.F64 | "ptr" -> Types.Ptr
  | s -> fail st "unknown type %S" s

let split_dot s =
  match String.index_opt s '.' with
  | Some k ->
    (String.sub s 0 k, Some (String.sub s (k + 1) (String.length s - k - 1)))
  | None -> (s, None)

(* Parse an argument list already tokenized as  "(" arg , arg ")" . *)
let parse_args st toks =
  match toks with
  | "(" :: rest ->
    let rec go acc = function
      | [ ")" ] -> List.rev acc
      | "," :: rest -> go acc rest
      | tok :: rest -> go (parse_operand st tok :: acc) rest
      | [] -> fail st "unterminated argument list"
    in
    go [] rest
  | _ -> fail st "expected an argument list"

let parse_rhs st d toks =
  match toks with
  | [ "mov"; a ] -> Instr.Mov (d, parse_operand st a)
  | [ op; a; ","; b ] -> (
    let name, suffix = split_dot op in
    match (ibin_of_name name, suffix) with
    | Some ib, Some ty ->
      Instr.Ibin (d, ib, ty_of_name st ty, parse_operand st a, parse_operand st b)
    | _ -> (
      match fbin_of_name op with
      | Some fb -> Instr.Fbin (d, fb, parse_operand st a, parse_operand st b)
      | None -> (
        match String.split_on_char '.' op with
        | [ "icmp"; pred; ty ] -> (
          match icmp_of_name pred with
          | Some p ->
            Instr.Icmp (d, p, ty_of_name st ty, parse_operand st a,
                        parse_operand st b)
          | None -> fail st "unknown icmp predicate %S" pred)
        | [ "fcmp"; pred ] -> (
          match fcmp_of_name pred with
          | Some p -> Instr.Fcmp (d, p, parse_operand st a, parse_operand st b)
          | None -> fail st "unknown fcmp predicate %S" pred)
        | _ -> fail st "unknown binary operation %S" op)))
  | [ op; a ] -> (
    match cast_of_name op with
    | Some c -> Instr.Cast (d, c, parse_operand st a)
    | None -> (
      let name, suffix = split_dot op in
      match (name, suffix) with
      | "load", Some ty -> Instr.Load (d, ty_of_name st ty, parse_operand st a)
      | _ -> fail st "unknown unary operation %S" op))
  | [ "gep"; base; "+"; index; "*"; scale ] ->
    Instr.Gep (d, parse_operand st base, parse_operand st index,
               parse_int st scale)
  | [ "select"; c; "?"; x; ":"; y ] ->
    Instr.Select (d, parse_operand st c, parse_operand st x, parse_operand st y)
  | "call" :: fname :: rest ->
    Instr.Call (Some d, fname, parse_args st rest)
  | _ -> fail st "cannot parse instruction right-hand side"

let parse_instr st toks =
  match toks with
  | dst :: "=" :: rhs when String.length dst > 0 && dst.[0] = '%' ->
    parse_rhs st (parse_reg st dst) rhs
  | [ store; v; "->"; a ] -> (
    match split_dot store with
    | "store", Some ty ->
      Instr.Store (ty_of_name st ty, parse_operand st v, parse_operand st a)
    | _ -> fail st "expected a store")
  | "call" :: fname :: rest -> Instr.Call (None, fname, parse_args st rest)
  | [ "br"; l ] -> Instr.Br (parse_label st l)
  | [ "cbr"; c; ","; l1; ","; l2 ] ->
    Instr.Cbr (parse_operand st c, parse_label st l1, parse_label st l2)
  | [ "ret" ] -> Instr.Ret None
  | [ "ret"; v ] -> Instr.Ret (Some (parse_operand st v))
  | toks -> fail st "cannot parse instruction: %s" (String.concat " " toks)

let parse_init_values st (ty : Types.t) body =
  let parts =
    String.split_on_char ',' body
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match ty with
  | Types.F64 ->
    Program.Floats
      (Array.of_list
         (List.map
            (fun s ->
              match float_of_string_opt s with
              | Some f -> f
              | None -> fail st "bad float initializer %S" s)
            parts))
  | Types.I64 | Types.Ptr ->
    Program.I64s
      (Array.of_list
         (List.map
            (fun s ->
              match Int64.of_string_opt s with
              | Some n -> n
              | None -> fail st "bad i64 initializer %S" s)
            parts))
  | Types.I32 | Types.I1 ->
    Program.I32s
      (Array.of_list
         (List.map
            (fun s ->
              match Int32.of_string_opt s with
              | Some n -> n
              | None -> fail st "bad i32 initializer %S" s)
            parts))

(* "global @name : ty[len]" optionally followed by "= { v, v, ... }" *)
let parse_global st line =
  let scan_header h =
    try Scanf.sscanf h " global @%s@ : %s@[%d]" (fun n ty len -> (n, ty, len))
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      fail st "malformed global declaration"
  in
  match String.index_opt line '=' with
  | None ->
    let name, ty, len = scan_header line in
    let name = String.trim name and ty = String.trim ty in
    { Program.gname = name; gty = ty_of_name st ty; gelems = len;
      ginit = Program.Zeros }
  | Some k ->
    let header = String.sub line 0 k in
    let name, ty, len = scan_header header in
    let name = String.trim name and ty = String.trim ty in
    let rest = String.sub line (k + 1) (String.length line - k - 1) in
    let body =
      match (String.index_opt rest '{', String.rindex_opt rest '}') with
      | Some a, Some b when b > a -> String.sub rest (a + 1) (b - a - 1)
      | _ -> fail st "malformed initializer"
    in
    let gty = ty_of_name st ty in
    { Program.gname = name; gty; gelems = len;
      ginit = parse_init_values st gty body }

let parse_program text =
  let st = { lineno = 0 } in
  let lines = String.split_on_char '\n' text in
  let globals = ref [] in
  let funcs = ref [] in
  (* current function state *)
  let cur = ref None in
  let finish_fn () =
    match !cur with
    | None -> ()
    | Some (name, nparams, nregs, blocks, cur_block) ->
      let blocks =
        List.rev
          (match cur_block with
          | [] -> blocks
          | instrs -> Array.of_list (List.rev instrs) :: blocks)
      in
      funcs :=
        { Program.fname = name; nparams; nregs; blocks = Array.of_list blocks }
        :: !funcs;
      cur := None
  in
  List.iter
    (fun raw ->
      st.lineno <- st.lineno + 1;
      let line = String.trim raw in
      if line = "" || (String.length line >= 1 && line.[0] = ';') then ()
      else if String.length line > 7 && String.sub line 0 7 = "global " then
        globals := parse_global st line :: !globals
      else if String.length line > 3 && String.sub line 0 3 = "fn " then begin
        finish_fn ();
        let name, nparams, nregs =
          try
            Scanf.sscanf line "fn %s@(params %d, regs %d)" (fun n p r ->
                (String.trim n, p, r))
          with Scanf.Scan_failure _ | Failure _ | End_of_file ->
            fail st "malformed function header"
        in
        cur := Some (name, nparams, nregs, [], [])
      end
      else if line = "}" then finish_fn ()
      else if String.length line > 1 && line.[0] = 'L'
              && String.length line > 0
              && line.[String.length line - 1] = ':' then (
        match !cur with
        | None -> fail st "label outside a function"
        | Some (name, np, nr, blocks, cur_block) ->
          let blocks =
            match cur_block with
            | [] when blocks = [] -> blocks
            | instrs -> Array.of_list (List.rev instrs) :: blocks
          in
          cur := Some (name, np, nr, blocks, []))
      else
        match !cur with
        | None -> fail st "instruction outside a function"
        | Some (name, np, nr, blocks, cur_block) ->
          let instr = parse_instr st (tokenize st line) in
          cur := Some (name, np, nr, blocks, instr :: cur_block))
    lines;
  finish_fn ();
  { Program.globals = List.rev !globals; funcs = List.rev !funcs }
