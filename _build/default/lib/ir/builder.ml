type t = {
  name : string;
  nparams : int;
  mutable nregs : int;
  mutable blocks : Instr.t list ref array;  (* reversed instruction lists *)
  mutable nblocks : int;
  mutable cur : int;
}

let create ~name ~nparams =
  let blocks = Array.make 8 (ref []) in
  blocks.(0) <- ref [];
  { name; nparams; nregs = nparams; blocks; nblocks = 1; cur = 0 }

let fresh b =
  let r = b.nregs in
  b.nregs <- r + 1;
  r

let grow b =
  if b.nblocks = Array.length b.blocks then begin
    let bigger = Array.make (2 * b.nblocks) (ref []) in
    Array.blit b.blocks 0 bigger 0 b.nblocks;
    b.blocks <- bigger
  end

let new_block b =
  grow b;
  let l = b.nblocks in
  b.blocks.(l) <- ref [];
  b.nblocks <- l + 1;
  l

let switch_to b l =
  if l < 0 || l >= b.nblocks then invalid_arg "Builder.switch_to";
  b.cur <- l

let current_block b = b.cur

let emit b i =
  let cell = b.blocks.(b.cur) in
  cell := i :: !cell

let mov b d x = emit b (Instr.Mov (d, x))

let ibin b op ty x y =
  let d = fresh b in
  emit b (Instr.Ibin (d, op, ty, x, y));
  d

let fbin b op x y =
  let d = fresh b in
  emit b (Instr.Fbin (d, op, x, y));
  d

let icmp b op ty x y =
  let d = fresh b in
  emit b (Instr.Icmp (d, op, ty, x, y));
  d

let fcmp b op x y =
  let d = fresh b in
  emit b (Instr.Fcmp (d, op, x, y));
  d

let cast b c x =
  let d = fresh b in
  emit b (Instr.Cast (d, c, x));
  d

let load b ty addr =
  let d = fresh b in
  emit b (Instr.Load (d, ty, addr));
  d

let store b ty ~value ~addr = emit b (Instr.Store (ty, value, addr))

let gep b ~base ~index ~scale =
  let d = fresh b in
  emit b (Instr.Gep (d, base, index, scale));
  d

let select b c x y =
  let d = fresh b in
  emit b (Instr.Select (d, c, x, y));
  d

let call b f args =
  let d = fresh b in
  emit b (Instr.Call (Some d, f, args));
  d

let call_void b f args = emit b (Instr.Call (None, f, args))

let br b l = emit b (Instr.Br l)
let cbr b c l1 l2 = emit b (Instr.Cbr (c, l1, l2))
let ret b v = emit b (Instr.Ret v)

let finish b =
  let blocks =
    Array.init b.nblocks (fun i ->
        Array.of_list (List.rev !(b.blocks.(i))))
  in
  Array.iteri
    (fun i block ->
      let n = Array.length block in
      if n = 0 || not (Instr.is_terminator block.(n - 1)) then
        failwith
          (Printf.sprintf "Builder.finish: block L%d of %s lacks a terminator"
             i b.name))
    blocks;
  { Program.fname = b.name; nparams = b.nparams; nregs = b.nregs; blocks }
