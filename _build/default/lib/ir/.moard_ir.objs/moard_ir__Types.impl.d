lib/ir/types.ml: Format Moard_bits
