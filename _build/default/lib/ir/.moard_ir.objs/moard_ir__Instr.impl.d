lib/ir/instr.ml: Format Moard_bits Types
