lib/ir/builder.mli: Instr Program Types
