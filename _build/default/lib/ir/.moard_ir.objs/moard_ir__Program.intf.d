lib/ir/program.mli: Format Instr Types
