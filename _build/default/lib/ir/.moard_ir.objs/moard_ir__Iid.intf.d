lib/ir/iid.mli: Format Hashtbl Map
