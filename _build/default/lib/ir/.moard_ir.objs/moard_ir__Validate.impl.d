lib/ir/validate.ml: Array Format Instr List Program Result
