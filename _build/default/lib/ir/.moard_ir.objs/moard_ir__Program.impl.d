lib/ir/program.ml: Array Format Instr List String Types
