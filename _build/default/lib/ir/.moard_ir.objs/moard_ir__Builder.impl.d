lib/ir/builder.ml: Array Instr List Printf Program
