lib/ir/iid.ml: Format Hashtbl Int Map String
