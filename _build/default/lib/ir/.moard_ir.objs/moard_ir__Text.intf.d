lib/ir/text.mli: Format Program
