lib/ir/instr.mli: Format Moard_bits Types
