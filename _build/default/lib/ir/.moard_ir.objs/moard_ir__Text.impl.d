lib/ir/text.ml: Array Buffer Float Format Instr Int32 Int64 List Moard_bits Printf Program Scanf String Types
