lib/ir/types.mli: Format Moard_bits
