(** Whole-program structure: globals, functions, entry point.

    Data objects live in globals. The MiniC front end promotes every array —
    including function-local ones — to a global, so each data object of a
    workload has a fixed address range once the program is loaded, which is
    what lets the trace analysis associate memory traffic with data objects
    by address (the paper's "data semantics"). *)

type init =
  | Zeros
  | Floats of float array
  | I64s of int64 array
  | I32s of int32 array

type global = {
  gname : string;
  gty : Types.t;      (** element type *)
  gelems : int;       (** number of elements *)
  ginit : init;
}

type func = {
  fname : string;
  nparams : int;      (** parameters arrive in registers 0..nparams-1 *)
  nregs : int;        (** total virtual registers of the frame *)
  blocks : Instr.t array array;  (** block [0] is the entry block *)
}

type t = {
  globals : global list;
  funcs : func list;
}

val func : t -> string -> func
(** @raise Not_found if the program has no such function. *)

val global : t -> string -> global
(** @raise Not_found *)

val has_func : t -> string -> bool

val global_bytes : global -> int
(** Footprint of a global in bytes. *)

val pp : Format.formatter -> t -> unit
(** Human-readable listing of the whole program. *)
