type t = { fn : string; blk : int; ip : int }

let make ~fn ~blk ~ip = { fn; blk; ip }

let equal a b = a.blk = b.blk && a.ip = b.ip && String.equal a.fn b.fn

let compare a b =
  match String.compare a.fn b.fn with
  | 0 -> ( match Int.compare a.blk b.blk with 0 -> Int.compare a.ip b.ip | c -> c)
  | c -> c

let hash t = Hashtbl.hash (t.fn, t.blk, t.ip)

let pp ppf t = Format.fprintf ppf "%s.L%d.%d" t.fn t.blk t.ip

module Ord = struct
  type nonrec t = t
  let compare = compare
end

module Map = Map.Make (Ord)

module Hashed = struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Hashed)
