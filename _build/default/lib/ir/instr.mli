(** The MOARD instruction set.

    Instructions are register-machine operations over virtual registers:
    unlike LLVM the IR is not in SSA form (registers may be redefined),
    which keeps lowering from the MiniC front end simple while preserving
    everything the resilience model needs — each dynamic instruction is one
    "operation" in the sense of the paper (arithmetic, assignment, logical,
    comparison, or a call). *)

type reg = int
(** Virtual register index, local to a function invocation. *)

type operand =
  | Reg of reg
  | Imm of Moard_bits.Bitval.t   (** constant, already truncated to width *)
  | Glob of string               (** address of a global, resolved at load *)

type ibin =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor
  | Shl | Lshr | Ashr

type fbin = Fadd | Fsub | Fmul | Fdiv

type icmp = Ieq | Ine | Islt | Isle | Isgt | Isge

type fcmp = Foeq | Fone | Folt | Fole | Fogt | Foge

type cast =
  | Trunc_to_i32   (** i64 -> i32, drops the high 32 bits *)
  | Sext_to_i64    (** i32 -> i64, sign extension *)
  | Zext_to_i64    (** i1/i32 -> i64, zero extension *)
  | Fp_to_si       (** f64 -> i64, truncation toward zero *)
  | Si_to_fp       (** i64 -> f64 *)
  | Bitcast_f_to_i (** f64 -> i64, image preserved *)
  | Bitcast_i_to_f (** i64 -> f64, image preserved *)

type t =
  | Mov of reg * operand
      (** register copy; preserves the bit image and the provenance *)
  | Ibin of reg * ibin * Types.t * operand * operand
      (** integer arithmetic/logic at I32 or I64 *)
  | Fbin of reg * fbin * operand * operand
  | Icmp of reg * icmp * Types.t * operand * operand
  | Fcmp of reg * fcmp * operand * operand
  | Cast of reg * cast * operand
  | Load of reg * Types.t * operand     (** [Load (dst, ty, addr)] *)
  | Store of Types.t * operand * operand
      (** [Store (ty, value, addr)] — the assignment operation *)
  | Gep of reg * operand * operand * int
      (** [Gep (dst, base, index, scale)]: dst = base + index * scale *)
  | Select of reg * operand * operand * operand
      (** [Select (dst, cond, if_true, if_false)] *)
  | Call of reg option * string * operand list
      (** user function or math intrinsic, resolved by name at run time *)
  | Br of int                            (** unconditional jump to block *)
  | Cbr of operand * int * int           (** conditional jump *)
  | Ret of operand option

val reads : t -> operand list
(** Operands the instruction consumes, in slot order. Slot numbering is the
    position in this list; it is how analyses and fault specs name an input
    of a dynamic instruction. *)

val writes : t -> reg option
(** Destination register, if any. *)

val is_terminator : t -> bool

val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit
