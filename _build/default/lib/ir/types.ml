type t = I1 | I32 | I64 | F64 | Ptr

let width = function
  | I1 -> Moard_bits.Bitval.W1
  | I32 -> Moard_bits.Bitval.W32
  | I64 | F64 | Ptr -> Moard_bits.Bitval.W64

let size = function I1 -> 1 | I32 -> 4 | I64 | F64 | Ptr -> 8

let is_float = function F64 -> true | I1 | I32 | I64 | Ptr -> false

let equal (a : t) (b : t) = a = b

let to_string = function
  | I1 -> "i1"
  | I32 -> "i32"
  | I64 -> "i64"
  | F64 -> "f64"
  | Ptr -> "ptr"

let pp ppf t = Format.pp_print_string ppf (to_string t)
