let ( let* ) = Result.bind

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let check_operand ~fname ~nregs ~globals op =
  match (op : Instr.operand) with
  | Instr.Reg r ->
    if r < 0 || r >= nregs then
      err "%s: register %%r%d out of range (nregs=%d)" fname r nregs
    else Ok ()
  | Instr.Imm _ -> Ok ()
  | Instr.Glob g ->
    if List.mem g globals then Ok ()
    else err "%s: unknown global @%s" fname g

let check_instr ~fname ~nregs ~nblocks ~globals ~known instr =
  let check_ops ops =
    List.fold_left
      (fun acc op ->
        let* () = acc in
        check_operand ~fname ~nregs ~globals op)
      (Ok ()) ops
  in
  let check_label l =
    if l < 0 || l >= nblocks then
      err "%s: branch target L%d out of range" fname l
    else Ok ()
  in
  let* () = check_ops (Instr.reads instr) in
  let* () =
    match Instr.writes instr with
    | Some d when d < 0 || d >= nregs ->
      err "%s: destination %%r%d out of range" fname d
    | _ -> Ok ()
  in
  match instr with
  | Instr.Gep (_, _, _, scale) when scale <= 0 ->
    err "%s: non-positive gep scale %d" fname scale
  | Instr.Br l -> check_label l
  | Instr.Cbr (_, l1, l2) ->
    let* () = check_label l1 in
    check_label l2
  | Instr.Call (_, callee, _) ->
    if known callee then Ok () else err "%s: unknown callee %s" fname callee
  | _ -> Ok ()

let check_func ?(globals = []) ~known (f : Program.func) =
  let fname = f.fname in
  if f.nparams < 0 || f.nparams > f.nregs then
    err "%s: nparams %d exceeds nregs %d" fname f.nparams f.nregs
  else
    let nblocks = Array.length f.blocks in
    let check_block bi block =
      let n = Array.length block in
      if n = 0 then err "%s: empty block L%d" fname bi
      else if not (Instr.is_terminator block.(n - 1)) then
        err "%s: block L%d does not end in a terminator" fname bi
      else
        let rec go i =
          if i >= n then Ok ()
          else if i < n - 1 && Instr.is_terminator block.(i) then
            err "%s: terminator in the middle of block L%d" fname bi
          else
            let* () =
              check_instr ~fname ~nregs:f.nregs ~nblocks ~globals ~known
                block.(i)
            in
            go (i + 1)
        in
        go 0
    in
    let rec blocks bi =
      if bi >= nblocks then Ok ()
      else
        let* () = check_block bi f.blocks.(bi) in
        blocks (bi + 1)
    in
    blocks 0

(* Full program check re-validates operands with the real global list. *)
let check_program ~intrinsics (p : Program.t) =
  let names = List.map (fun g -> g.Program.gname) p.globals in
  let rec uniq = function
    | [] -> Ok ()
    | g :: rest ->
      if List.mem g rest then err "duplicate global @%s" g else uniq rest
  in
  let* () = uniq names in
  let* () =
    List.fold_left
      (fun acc g ->
        let* () = acc in
        if g.Program.gelems <= 0 then
          err "global @%s has non-positive size" g.Program.gname
        else Ok ())
      (Ok ()) p.globals
  in
  let known callee =
    Program.has_func p callee || List.mem callee intrinsics
  in
  List.fold_left
    (fun acc (f : Program.func) ->
      let* () = acc in
      check_func ~globals:names ~known f)
    (Ok ()) p.funcs

let check_exn ~intrinsics p =
  match check_program ~intrinsics p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Validate: " ^ msg)
