(** Textual IR: a round-trippable serialization of programs.

    Lets users inspect compiled kernels ([moard trace], [moard dump-ir]),
    store them, and hand-write IR test programs without going through the
    MiniC front end. The grammar is line-oriented:

    {v
    global @a : f64[4] = { 1.5, -3.0, 0.25, 8.0 }
    global @out : f64[1]

    fn main(params 0, regs 3) {
    L0:
      %r0 = load.f64 @a
      %r1 = fadd %r0, f64:2.5
      store.f64 %r1 -> @out
      ret
    }
    v}

    Immediates are written with a width tag and either a hexadecimal image
    ([i64:0x3ff0000000000000]) or, for f64 convenience, a decimal float
    ([f64:1.5]); the printer emits floats where the image is a finite
    double that round-trips. *)

val print_program : Format.formatter -> Program.t -> unit
val to_string : Program.t -> string

exception Parse_error of { line : int; message : string }

val parse_program : string -> Program.t
(** @raise Parse_error with a 1-based line number on malformed input. *)
