type init =
  | Zeros
  | Floats of float array
  | I64s of int64 array
  | I32s of int32 array

type global = {
  gname : string;
  gty : Types.t;
  gelems : int;
  ginit : init;
}

type func = {
  fname : string;
  nparams : int;
  nregs : int;
  blocks : Instr.t array array;
}

type t = {
  globals : global list;
  funcs : func list;
}

let func t name = List.find (fun f -> String.equal f.fname name) t.funcs

let global t name = List.find (fun g -> String.equal g.gname name) t.globals

let has_func t name = List.exists (fun f -> String.equal f.fname name) t.funcs

let global_bytes g = g.gelems * Types.size g.gty

let pp_func ppf f =
  Format.fprintf ppf "@[<v>fn %s(%d params, %d regs):@," f.fname f.nparams
    f.nregs;
  Array.iteri
    (fun bi block ->
      Format.fprintf ppf "L%d:@," bi;
      Array.iter (fun i -> Format.fprintf ppf "  %a@," Instr.pp i) block)
    f.blocks;
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun g ->
      Format.fprintf ppf "global @%s : %a[%d]@," g.gname Types.pp g.gty
        g.gelems)
    t.globals;
  List.iter (fun f -> Format.fprintf ppf "%a@," pp_func f) t.funcs;
  Format.fprintf ppf "@]"
