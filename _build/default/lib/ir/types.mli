(** Value types of the MOARD intermediate representation.

    The IR is architecture independent, in the spirit of LLVM IR: what the
    resilience model consumes is a dynamic trace of these instructions, so
    the type system is kept to the types the paper's analysis distinguishes
    (booleans, 32/64-bit integers, IEEE-754 doubles, and pointers). *)

type t =
  | I1   (** boolean / comparison result *)
  | I32  (** 32-bit signed integer *)
  | I64  (** 64-bit signed integer *)
  | F64  (** IEEE-754 double *)
  | Ptr  (** byte address into the VM's flat memory (64-bit image) *)

val width : t -> Moard_bits.Bitval.width
(** Width of the bit image carrying a value of this type. *)

val size : t -> int
(** Storage footprint in bytes when loaded from / stored to memory. *)

val is_float : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
