(** Imperative construction of IR functions.

    Used by the MiniC compiler and by tests that hand-write IR. Blocks are
    created on demand; the builder checks on [finish] that every block is
    properly terminated. *)

type t

val create : name:string -> nparams:int -> t
(** New builder. Registers [0 .. nparams-1] are the parameters; the entry
    block (label 0) is created and selected. *)

val fresh : t -> Instr.reg
(** Allocate a fresh virtual register. *)

val new_block : t -> int
(** Create an empty block and return its label (does not select it). *)

val switch_to : t -> int -> unit
(** Select the block that subsequent [emit]s append to. *)

val current_block : t -> int

val emit : t -> Instr.t -> unit

(** Convenience emitters returning the destination register. *)

val mov : t -> Instr.reg -> Instr.operand -> unit
(** Copy into an existing register (used for mutable MiniC locals). *)

val ibin : t -> Instr.ibin -> Types.t -> Instr.operand -> Instr.operand -> Instr.reg
val fbin : t -> Instr.fbin -> Instr.operand -> Instr.operand -> Instr.reg
val icmp : t -> Instr.icmp -> Types.t -> Instr.operand -> Instr.operand -> Instr.reg
val fcmp : t -> Instr.fcmp -> Instr.operand -> Instr.operand -> Instr.reg
val cast : t -> Instr.cast -> Instr.operand -> Instr.reg
val load : t -> Types.t -> Instr.operand -> Instr.reg
val store : t -> Types.t -> value:Instr.operand -> addr:Instr.operand -> unit
val gep : t -> base:Instr.operand -> index:Instr.operand -> scale:int -> Instr.reg
val select : t -> Instr.operand -> Instr.operand -> Instr.operand -> Instr.reg
val call : t -> string -> Instr.operand list -> Instr.reg
val call_void : t -> string -> Instr.operand list -> unit
val br : t -> int -> unit
val cbr : t -> Instr.operand -> int -> int -> unit
val ret : t -> Instr.operand option -> unit

val finish : t -> Program.func
(** Freeze into a function.
    @raise Failure if a reachable block lacks a terminator. *)
