(** Structural well-formedness checks for IR programs.

    Run before execution so that interpreter failures always mean workload
    traps (the faults we model), never malformed code. *)

val check_func :
  ?globals:string list -> known:(string -> bool) -> Program.func ->
  (unit, string) result
(** [known] says whether a callee name resolves (user function or
    intrinsic). Checks: register indices in range, branch targets in range,
    every block non-empty and ending in its only terminator, positive Gep
    scales, arity of param registers. *)

val check_program : intrinsics:string list -> Program.t -> (unit, string) result
(** Checks every function, that global names are unique and positively
    sized, and that referenced globals exist. *)

val check_exn : intrinsics:string list -> Program.t -> unit
(** @raise Invalid_argument with the first error found. *)
