(** Confidence machinery for fault-injection campaigns, after the
    statistical fault-injection methodology the paper cites [26]. *)

val margin : ?z:float -> n:int -> float -> float
(** [margin ~n p]: half-width of the binomial confidence interval for
    success rate [p] over [n] trials; [z] defaults to 1.96 (95%). *)

val tests_needed : ?z:float -> ?e:float -> ?p:float -> unit -> int
(** Number of fault-injection tests for margin [e] (default 0.02) at the
    given confidence, worst case [p] = 0.5. *)

val intervals_overlap : p1:float -> m1:float -> p2:float -> m2:float -> bool
(** Whether two estimates are statistically indistinguishable. *)
