(** Basic descriptive statistics used by the evaluation harness. *)

val mean : float array -> float
(** @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Sample variance (n-1 denominator); 0 for singletons. *)

val stddev : float array -> float
val minimum : float array -> float
val maximum : float array -> float
