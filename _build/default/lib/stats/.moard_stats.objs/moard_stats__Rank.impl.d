lib/stats/rank.ml: Array Float Fun Int
