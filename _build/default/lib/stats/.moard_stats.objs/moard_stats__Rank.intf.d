lib/stats/rank.mli:
