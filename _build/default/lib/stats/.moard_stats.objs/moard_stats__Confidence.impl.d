lib/stats/confidence.ml: Float
