lib/stats/summary.mli:
