lib/stats/confidence.mli:
