(** Rank-order comparison, used to validate that aDVF orders data objects
    the same way exhaustive fault injection does (paper §V-B, Fig. 6). *)

val order : float array -> int array
(** Indices sorted by descending value: [order a].(0) is the index of the
    largest element. Ties broken by index for determinism. *)

val ranks : float array -> int array
(** [ranks a].(i) is the 0-based rank of element i (0 = largest). *)

val same_order : float array -> float array -> bool
(** Whether two score vectors rank the items identically. *)

val kendall_tau : float array -> float array -> float
(** Kendall rank-correlation coefficient in [-1, 1].
    @raise Invalid_argument on length mismatch or fewer than 2 items. *)
