let margin ?(z = 1.96) ~n p =
  if n <= 0 then invalid_arg "Confidence.margin: n";
  z *. sqrt (p *. (1.0 -. p) /. float_of_int n)

let tests_needed ?(z = 1.96) ?(e = 0.02) ?(p = 0.5) () =
  if e <= 0.0 then invalid_arg "Confidence.tests_needed: e";
  int_of_float (Float.ceil (z *. z *. p *. (1.0 -. p) /. (e *. e)))

let intervals_overlap ~p1 ~m1 ~p2 ~m2 =
  Float.abs (p1 -. p2) <= m1 +. m2
