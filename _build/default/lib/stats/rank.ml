let order a =
  let idx = Array.init (Array.length a) Fun.id in
  Array.sort
    (fun i j ->
      match Float.compare a.(j) a.(i) with 0 -> Int.compare i j | c -> c)
    idx;
  idx

let ranks a =
  let ord = order a in
  let r = Array.make (Array.length a) 0 in
  Array.iteri (fun rank i -> r.(i) <- rank) ord;
  r

let same_order a b = ranks a = ranks b

let kendall_tau a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Rank.kendall_tau: length mismatch";
  if n < 2 then invalid_arg "Rank.kendall_tau: need at least 2 items";
  let concordant = ref 0 and discordant = ref 0 in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      let x = Float.compare a.(i) a.(j) and y = Float.compare b.(i) b.(j) in
      if x * y > 0 then incr concordant
      else if x * y < 0 then incr discordant
    done
  done;
  let pairs = float_of_int (n * (n - 1) / 2) in
  float_of_int (!concordant - !discordant) /. pairs
