let check a = if Array.length a = 0 then invalid_arg "Summary: empty array"

let mean a =
  check a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  check a;
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a
    /. float_of_int (n - 1)

let stddev a = sqrt (variance a)

let minimum a =
  check a;
  Array.fold_left Float.min a.(0) a

let maximum a =
  check a;
  Array.fold_left Float.max a.(0) a
