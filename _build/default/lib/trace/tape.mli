(** A growable dynamic-instruction trace, plus the index structures the
    propagation analysis needs (liveness: the last dynamic position at which
    each register or memory cell is still consumed). *)

type t

val create : ?capacity:int -> unit -> t
val append : t -> Event.t -> unit
val length : t -> int
val get : t -> int -> Event.t
(** @raise Invalid_argument if out of range. *)

val iter : (Event.t -> unit) -> t -> unit
val iteri_from : int -> (int -> Event.t -> unit) -> t -> unit
(** [iteri_from i f t] applies [f] to events [i .. length-1] in order. *)

val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

(** {2 Liveness indexes}

    Built lazily on first query, in one backward pass over the tape. *)

val last_reg_read : t -> frame:int -> reg:int -> int
(** Largest event index at which register [reg] of invocation [frame] is
    consumed (read as an operand, directly or as a call argument);
    [-1] if never read. *)

val last_mem_read : t -> addr:int -> int
(** Largest event index at which the memory cell at [addr] is loaded;
    [-1] if never loaded. *)
