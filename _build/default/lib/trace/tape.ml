type t = {
  mutable events : Event.t array;
  mutable len : int;
  mutable live : live option;
}

and live = {
  reg_last : (int * int, int) Hashtbl.t;  (* (frame, reg) -> last read idx *)
  mem_last : (int, int) Hashtbl.t;        (* addr -> last load idx *)
}

let dummy : Event.t =
  {
    idx = -1;
    frame = -1;
    iid = Moard_ir.Iid.make ~fn:"" ~blk:0 ~ip:0;
    instr = Moard_ir.Instr.Ret None;
    reads = [||];
    write = Event.Wnone;
    load_addr = -1;
    callee_frame = -1;
    ret_to_frame = -1;
    ret_to_reg = -1;
    taken = -1;
  }

let create ?(capacity = 4096) () =
  { events = Array.make (max capacity 16) dummy; len = 0; live = None }

let append t e =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- e;
  t.len <- t.len + 1;
  t.live <- None

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Tape.get";
  t.events.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

let iteri_from start f t =
  for i = max 0 start to t.len - 1 do
    f i t.events.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.events.(i)
  done;
  !acc

let build_live t =
  let reg_last = Hashtbl.create 1024 in
  let mem_last = Hashtbl.create 1024 in
  (* One forward pass suffices: later updates overwrite earlier ones. *)
  for i = 0 to t.len - 1 do
    let e = t.events.(i) in
    List.iter
      (fun op ->
        match (op : Moard_ir.Instr.operand) with
        | Moard_ir.Instr.Reg r -> Hashtbl.replace reg_last (e.Event.frame, r) i
        | Moard_ir.Instr.Imm _ | Moard_ir.Instr.Glob _ -> ())
      (Moard_ir.Instr.reads e.Event.instr);
    if e.Event.load_addr >= 0 then Hashtbl.replace mem_last e.Event.load_addr i
  done;
  { reg_last; mem_last }

let live t =
  match t.live with
  | Some l -> l
  | None ->
    let l = build_live t in
    t.live <- Some l;
    l

let last_reg_read t ~frame ~reg =
  match Hashtbl.find_opt (live t).reg_last (frame, reg) with
  | Some i -> i
  | None -> -1

let last_mem_read t ~addr =
  match Hashtbl.find_opt (live t).mem_last addr with
  | Some i -> i
  | None -> -1
