type t = {
  name : string;
  base : int;
  elems : int;
  ty : Moard_ir.Types.t;
}

let make ~name ~base ~elems ~ty =
  if elems <= 0 then invalid_arg "Data_object.make: elems";
  { name; base; elems; ty }

let elem_size t = Moard_ir.Types.size t.ty
let bytes t = t.elems * elem_size t

let contains t addr = addr >= t.base && addr < t.base + bytes t

let elem_of_addr t addr =
  if not (contains t addr) then None
  else
    let off = addr - t.base in
    let sz = elem_size t in
    if off mod sz = 0 then Some (off / sz) else None

let addr_of_elem t i =
  if i < 0 || i >= t.elems then invalid_arg "Data_object.addr_of_elem";
  t.base + (i * elem_size t)

let pp ppf t =
  Format.fprintf ppf "%s [%d..%d] : %a[%d]" t.name t.base
    (t.base + bytes t - 1)
    Moard_ir.Types.pp t.ty t.elems
