lib/trace/event.ml: Array Format Moard_bits Moard_ir
