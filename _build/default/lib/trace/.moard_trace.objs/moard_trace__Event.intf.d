lib/trace/event.mli: Format Moard_bits Moard_ir
