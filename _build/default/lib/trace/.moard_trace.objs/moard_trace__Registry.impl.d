lib/trace/registry.ml: Data_object Format List Printf String
