lib/trace/tape.ml: Array Event Hashtbl List Moard_ir
