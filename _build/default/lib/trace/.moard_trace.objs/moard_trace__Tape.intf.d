lib/trace/tape.mli: Event
