lib/trace/data_object.ml: Format Moard_ir
