lib/trace/consume.mli: Data_object Event Moard_bits Tape
