lib/trace/registry.mli: Data_object Format
