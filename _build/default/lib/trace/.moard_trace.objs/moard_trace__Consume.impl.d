lib/trace/consume.ml: Array Data_object Event List Moard_bits Moard_ir Tape
