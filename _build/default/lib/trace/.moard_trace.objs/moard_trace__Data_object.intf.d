lib/trace/data_object.mli: Format Moard_ir
