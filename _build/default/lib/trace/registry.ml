type t = { objects : Data_object.t list }

let overlap (a : Data_object.t) (b : Data_object.t) =
  a.base < b.base + Data_object.bytes b && b.base < a.base + Data_object.bytes a

let of_objects objects =
  let rec check = function
    | [] -> ()
    | (o : Data_object.t) :: rest ->
      if List.exists (fun (o' : Data_object.t) -> String.equal o.name o'.name) rest
      then invalid_arg ("Registry: duplicate data object " ^ o.name);
      (match List.find_opt (overlap o) rest with
      | Some o' ->
        invalid_arg
          (Printf.sprintf "Registry: %s overlaps %s" o.name o'.Data_object.name)
      | None -> ());
      check rest
  in
  check objects;
  { objects }

let find t name =
  List.find (fun (o : Data_object.t) -> String.equal o.name name) t.objects

let find_opt t name =
  List.find_opt (fun (o : Data_object.t) -> String.equal o.name name) t.objects

let owner t addr = List.find_opt (fun o -> Data_object.contains o addr) t.objects

let objects t = t.objects

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Data_object.pp)
    t.objects
