(** A data object: a named, contiguous array of elements at a known address
    range — what aDVF is computed for. *)

type t = {
  name : string;
  base : int;           (** byte address of element 0 *)
  elems : int;
  ty : Moard_ir.Types.t; (** element type *)
}

val make : name:string -> base:int -> elems:int -> ty:Moard_ir.Types.t -> t

val bytes : t -> int
val elem_size : t -> int

val contains : t -> int -> bool
(** Whether a byte address falls inside the object. *)

val elem_of_addr : t -> int -> int option
(** Element index an address points at (must be element-aligned),
    [None] if outside or misaligned. *)

val addr_of_elem : t -> int -> int
(** Byte address of element [i]. @raise Invalid_argument if out of range. *)

val pp : Format.formatter -> t -> unit
