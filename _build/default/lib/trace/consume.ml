module I = Moard_ir.Instr

type kind =
  | Read of { slot : int }
  | Store_dest

type t = {
  event_idx : int;
  kind : kind;
  addr : int;
  elem : int;
  width : Moard_bits.Bitval.width;
}

let consuming_event (e : Event.t) =
  match e.instr with
  | I.Mov _ | I.Load _ | I.Br _ | I.Ret _ -> false
  | I.Call _ -> e.callee_frame < 0  (* intrinsics consume, user calls copy *)
  | I.Ibin _ | I.Fbin _ | I.Icmp _ | I.Fcmp _ | I.Cast _ | I.Store _
  | I.Gep _ | I.Select _ | I.Cbr _ -> true

let of_event obj (e : Event.t) =
  let reads =
    if not (consuming_event e) then []
    else
      Array.to_list
        (Array.mapi
           (fun slot (r : Event.read) ->
             match Data_object.elem_of_addr obj r.prov with
             | Some elem when r.prov >= 0 ->
               [
                 {
                   event_idx = e.idx;
                   kind = Read { slot };
                   addr = r.prov;
                   elem;
                   width = (r.value : Moard_bits.Bitval.t).width;
                 };
               ]
             | _ -> [])
           e.reads)
      |> List.concat
  in
  let dest =
    match e.instr with
    | I.Store (ty, _, _) -> (
      match e.write with
      | Event.Wmem { addr; _ } -> (
        match Data_object.elem_of_addr obj addr with
        | Some elem ->
          [
            {
              event_idx = e.idx;
              kind = Store_dest;
              addr;
              elem;
              width = Moard_ir.Types.width ty;
            };
          ]
        | None -> [])
      | _ -> [])
    | _ -> []
  in
  reads @ dest

let of_tape ?(segment = fun _ -> true) tape obj =
  let acc = ref [] in
  Tape.iter
    (fun e ->
      if segment e.Event.iid.Moard_ir.Iid.fn then
        List.iter (fun c -> acc := c :: !acc) (of_event obj e))
    tape;
  List.rev !acc

let patterns t = Moard_bits.Pattern.singles t.width
