(** The set of data objects of a loaded workload, resolvable by name or by
    address — the carrier of "data semantics" during trace analysis. *)

type t

val of_objects : Data_object.t list -> t
(** @raise Invalid_argument on duplicate names or overlapping ranges. *)

val find : t -> string -> Data_object.t
(** @raise Not_found *)

val find_opt : t -> string -> Data_object.t option

val owner : t -> int -> Data_object.t option
(** Data object whose range contains a byte address. *)

val objects : t -> Data_object.t list

val pp : Format.formatter -> t -> unit
