(** Raw bit-level images of runtime values.

    Every value flowing through the MOARD virtual machine is carried as a
    fixed-width bit image. This is what makes exact bit-flip faults possible:
    a transient fault on a data element is a flip of one (or more) bits of
    its image, exactly as it would be in a register or a DRAM word. *)

type width = W1 | W32 | W64

(** A value image: [bits] holds the value in the low [width] bits; any bits
    above the width are guaranteed to be zero. W64 images may represent
    either a 64-bit integer or an IEEE-754 double, depending on how the
    consuming instruction interprets them. *)
type t = private { width : width; bits : int64 }

val bits_in : width -> int
(** Number of bits in a width: 1, 32 or 64. *)

val bytes_in : width -> int
(** Storage footprint in bytes: 1, 4 or 8. *)

val make : width -> int64 -> t
(** [make w bits] truncates [bits] to [w] and builds an image. *)

val of_bool : bool -> t
val of_int32 : int32 -> t
val of_int64 : int64 -> t
val of_int : width -> int -> t
val of_float : float -> t

val to_bool : t -> bool
(** Nonzero test on the image (any width). *)

val to_int64 : t -> int64
(** Signed value: W32 images are sign-extended, W64 returned as is,
    W1 gives 0 or 1. *)

val to_float : t -> float
(** Reinterprets a W64 image as an IEEE-754 double.
    @raise Invalid_argument on narrower widths. *)

val zero : width -> t
val is_zero : t -> bool

val flip_bit : t -> int -> t
(** [flip_bit v i] flips bit [i] (0 = least significant).
    @raise Invalid_argument if [i] is outside the width. *)

val get_bit : t -> int -> bool
val popcount : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [i64:0x3ff0000000000000]. *)
