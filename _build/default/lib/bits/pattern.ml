type t =
  | Single of int
  | Burst of int * int
  | Pair of int * int

let bits_of = function
  | Single i -> [ i ]
  | Burst (i, n) -> List.init n (fun k -> i + k)
  | Pair (i, sep) -> [ i; i + sep ]

let fits p width =
  let hi = Bitval.bits_in width in
  List.for_all (fun b -> b >= 0 && b < hi) (bits_of p)

let apply p v = List.fold_left Bitval.flip_bit v (bits_of p)

let singles width = List.init (Bitval.bits_in width) (fun i -> Single i)

let bursts ~len width =
  if len < 1 then invalid_arg "Pattern.bursts";
  let hi = Bitval.bits_in width in
  if len > hi then []
  else List.init (hi - len + 1) (fun i -> Burst (i, len))

let pairs ~sep width =
  if sep < 1 then invalid_arg "Pattern.pairs";
  let hi = Bitval.bits_in width in
  if sep >= hi then []
  else List.init (hi - sep) (fun i -> Pair (i, sep))

let enumerate ?(multi = []) width =
  let extra =
    List.concat_map
      (function
        | `Burst len -> bursts ~len width
        | `Pair sep -> pairs ~sep width)
      multi
  in
  singles width @ extra

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | Single i -> Format.fprintf ppf "bit[%d]" i
  | Burst (i, n) -> Format.fprintf ppf "burst[%d..%d]" i (i + n - 1)
  | Pair (i, sep) -> Format.fprintf ppf "pair[%d,%d]" i (i + sep)
