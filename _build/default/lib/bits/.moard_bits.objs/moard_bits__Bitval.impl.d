lib/bits/bitval.ml: Format Hashtbl Int64 Stdlib
