lib/bits/pattern.mli: Bitval Format
