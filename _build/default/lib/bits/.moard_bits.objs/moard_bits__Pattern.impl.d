lib/bits/pattern.ml: Bitval Format List
