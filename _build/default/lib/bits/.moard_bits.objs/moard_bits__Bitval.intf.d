lib/bits/bitval.mli: Format
