(** Error patterns: how erroneous bits are distributed within a corrupted
    data element (paper §III-C).

    The default campaign uses all single-bit patterns, matching the paper's
    evaluation. Multi-bit patterns (spatially contiguous bursts and
    fixed-separation pairs) implement the §VII-B extension. *)

type t =
  | Single of int  (** flip of bit [i] *)
  | Burst of int * int
      (** [Burst (i, n)]: flip of [n] contiguous bits starting at bit [i] *)
  | Pair of int * int
      (** [Pair (i, sep)]: flips of bits [i] and [i + sep] *)

val apply : t -> Bitval.t -> Bitval.t
(** Corrupt a value image with the pattern. Applying the same pattern twice
    restores the original value (flips are involutive).
    @raise Invalid_argument if any flipped bit falls outside the width. *)

val bits_of : t -> int list
(** Bit indices the pattern flips, ascending. *)

val fits : t -> Bitval.width -> bool
(** Whether every flipped bit lies inside the width. *)

val singles : Bitval.width -> t list
(** All single-bit patterns for a width (the paper's default space). *)

val bursts : len:int -> Bitval.width -> t list
(** All contiguous [len]-bit burst patterns that fit in the width. *)

val pairs : sep:int -> Bitval.width -> t list
(** All two-bit patterns with fixed spatial separation [sep]. *)

val enumerate : ?multi:[ `Burst of int | `Pair of int ] list ->
  Bitval.width -> t list
(** Single-bit patterns plus any requested multi-bit families. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
