type width = W1 | W32 | W64

type t = { width : width; bits : int64 }

let bits_in = function W1 -> 1 | W32 -> 32 | W64 -> 64

let bytes_in = function W1 -> 1 | W32 -> 4 | W64 -> 8

let mask_of = function
  | W1 -> 1L
  | W32 -> 0xFFFF_FFFFL
  | W64 -> -1L

let make width bits = { width; bits = Int64.logand bits (mask_of width) }

let of_bool b = { width = W1; bits = (if b then 1L else 0L) }
let of_int32 i = make W32 (Int64.of_int32 i)
let of_int64 i = { width = W64; bits = i }
let of_int w i = make w (Int64.of_int i)
let of_float f = { width = W64; bits = Int64.bits_of_float f }

let to_bool v = not (Int64.equal v.bits 0L)

let to_int64 v =
  match v.width with
  | W64 -> v.bits
  | W1 -> v.bits
  | W32 ->
    (* Sign-extend from bit 31. *)
    Int64.shift_right (Int64.shift_left v.bits 32) 32

let to_float v =
  match v.width with
  | W64 -> Int64.float_of_bits v.bits
  | W1 | W32 -> invalid_arg "Bitval.to_float: width < 64"

let zero width = { width; bits = 0L }
let is_zero v = Int64.equal v.bits 0L

let flip_bit v i =
  if i < 0 || i >= bits_in v.width then invalid_arg "Bitval.flip_bit"
  else { v with bits = Int64.logxor v.bits (Int64.shift_left 1L i) }

let get_bit v i =
  if i < 0 || i >= bits_in v.width then invalid_arg "Bitval.get_bit"
  else not (Int64.equal (Int64.logand v.bits (Int64.shift_left 1L i)) 0L)

let popcount v =
  let rec go acc b =
    if Int64.equal b 0L then acc
    else go (acc + 1) (Int64.logand b (Int64.sub b 1L))
  in
  go 0 v.bits

let equal a b = a.width = b.width && Int64.equal a.bits b.bits
let compare a b =
  match Stdlib.compare a.width b.width with
  | 0 -> Int64.compare a.bits b.bits
  | c -> c
let hash v = Hashtbl.hash (v.width, v.bits)

let pp ppf v =
  let tag = match v.width with W1 -> "i1" | W32 -> "i32" | W64 -> "i64" in
  Format.fprintf ppf "%s:0x%Lx" tag v.bits
