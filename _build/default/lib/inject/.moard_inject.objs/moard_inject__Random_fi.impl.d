lib/inject/random_fi.ml: Array Context Format List Moard_bits Moard_trace Outcome Random
