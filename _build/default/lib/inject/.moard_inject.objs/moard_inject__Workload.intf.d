lib/inject/workload.mli: Moard_ir
