lib/inject/random_fi.mli: Context Format
