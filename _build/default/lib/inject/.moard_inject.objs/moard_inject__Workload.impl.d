lib/inject/workload.ml: Array Float List Moard_ir
