lib/inject/context.ml: Array Hashtbl Int32 Int64 List Moard_bits Moard_ir Moard_trace Moard_vm Outcome Printf Workload
