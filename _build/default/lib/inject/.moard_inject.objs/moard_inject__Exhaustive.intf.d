lib/inject/exhaustive.mli: Context Format
