lib/inject/exhaustive.ml: Context Format List Moard_trace Outcome
