lib/inject/outcome.ml: Format Moard_vm
