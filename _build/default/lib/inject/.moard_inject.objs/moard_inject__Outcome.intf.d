lib/inject/outcome.mli: Format Moard_vm
