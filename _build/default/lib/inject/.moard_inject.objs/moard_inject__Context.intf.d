lib/inject/context.mli: Moard_bits Moard_trace Moard_vm Outcome Workload
