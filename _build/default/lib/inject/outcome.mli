(** Classification of a fault-injection run against the golden run. *)

type t =
  | Same        (** outputs bit-identical to the golden run *)
  | Acceptable  (** numerically different, accepted by algorithm semantics *)
  | Incorrect   (** finished, but outcome rejected *)
  | Crashed of Moard_vm.Trap.t
      (** segmentation-error class: OOB access, division trap, runaway loop *)

val success : t -> bool
(** [Same] or [Acceptable] — the fault was tolerated. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
