type t =
  | Same
  | Acceptable
  | Incorrect
  | Crashed of Moard_vm.Trap.t

let success = function Same | Acceptable -> true | Incorrect | Crashed _ -> false

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | Same -> Format.pp_print_string ppf "same"
  | Acceptable -> Format.pp_print_string ppf "acceptable"
  | Incorrect -> Format.pp_print_string ppf "incorrect"
  | Crashed trap -> Format.fprintf ppf "crashed (%a)" Moard_vm.Trap.pp trap

let to_string t = Format.asprintf "%a" pp t
