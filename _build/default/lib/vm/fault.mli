(** Deterministic fault specification: which dynamic instruction, which
    consumption site, which error pattern (paper §IV: "dynamic instruction
    IDs, IDs of the operands ... and the bit locations").

    [Read] flips the operand value as consumed by that one dynamic
    instruction — the register copy of the data element, exactly what the
    paper's LLVM-level injector flips. [Store_dest] flips the destination
    memory cell immediately before the store overwrites it. *)

type site =
  | Read of { idx : int; slot : int }
      (** [idx]: dynamic instruction index; [slot]: operand position *)
  | Store_dest of { idx : int }

type t = { site : site; pattern : Moard_bits.Pattern.t }

val read : idx:int -> slot:int -> Moard_bits.Pattern.t -> t
val store_dest : idx:int -> Moard_bits.Pattern.t -> t
val idx : t -> int
val pp : Format.formatter -> t -> unit
