module Bitval = Moard_bits.Bitval

type t = { data : Bytes.t }

let null_guard = 256

let create ~bytes =
  if bytes <= null_guard then invalid_arg "Memory.create: too small";
  { data = Bytes.make bytes '\000' }

let size t = Bytes.length t.data

let copy t = { data = Bytes.copy t.data }

let in_range t addr size =
  addr >= null_guard && addr + size <= Bytes.length t.data

let load t ty addr =
  let sz = Moard_ir.Types.size ty in
  if not (in_range t addr sz) then Error (Trap.Out_of_bounds { addr; size = sz })
  else
    let bits =
      match sz with
      | 1 -> Int64.of_int (Char.code (Bytes.get t.data addr))
      | 4 -> Int64.of_int32 (Bytes.get_int32_le t.data addr)
      | _ -> Bytes.get_int64_le t.data addr
    in
    Ok (Bitval.make (Moard_ir.Types.width ty) bits)

let store t ty addr v =
  let sz = Moard_ir.Types.size ty in
  if not (in_range t addr sz) then Error (Trap.Out_of_bounds { addr; size = sz })
  else begin
    let bits = (v : Bitval.t).bits in
    (match sz with
    | 1 -> Bytes.set t.data addr (Char.chr (Int64.to_int bits land 0xFF))
    | 4 -> Bytes.set_int32_le t.data addr (Int64.to_int32 bits)
    | _ -> Bytes.set_int64_le t.data addr bits);
    Ok ()
  end

let load_exn t ty addr =
  match load t ty addr with
  | Ok v -> v
  | Error trap -> invalid_arg ("Memory.load_exn: " ^ Trap.to_string trap)

let store_exn t ty addr v =
  match store t ty addr v with
  | Ok () -> ()
  | Error trap -> invalid_arg ("Memory.store_exn: " ^ Trap.to_string trap)
