(** Runtime traps. In the fault model these are the "segmentation error"
    class of outcomes: a corrupted value drives the machine into an invalid
    state that the platform catches. *)

type t =
  | Out_of_bounds of { addr : int; size : int }
  | Div_by_zero
  | Step_limit of int      (** runaway execution (e.g. corrupted loop bound) *)
  | Call_depth of int
  | No_function of string
  | Arity of { callee : string; expected : int; got : int }

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
