type t =
  | Out_of_bounds of { addr : int; size : int }
  | Div_by_zero
  | Step_limit of int
  | Call_depth of int
  | No_function of string
  | Arity of { callee : string; expected : int; got : int }

let pp ppf = function
  | Out_of_bounds { addr; size } ->
    Format.fprintf ppf "out-of-bounds access of %d bytes at address %d" size addr
  | Div_by_zero -> Format.fprintf ppf "integer division by zero"
  | Step_limit n -> Format.fprintf ppf "step limit of %d exceeded" n
  | Call_depth n -> Format.fprintf ppf "call depth limit of %d exceeded" n
  | No_function f -> Format.fprintf ppf "no function or intrinsic named %s" f
  | Arity { callee; expected; got } ->
    Format.fprintf ppf "%s expects %d arguments, got %d" callee expected got

let to_string t = Format.asprintf "%a" pp t

let equal (a : t) (b : t) = a = b
