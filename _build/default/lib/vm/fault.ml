type site =
  | Read of { idx : int; slot : int }
  | Store_dest of { idx : int }

type t = { site : site; pattern : Moard_bits.Pattern.t }

let read ~idx ~slot pattern = { site = Read { idx; slot }; pattern }
let store_dest ~idx pattern = { site = Store_dest { idx }; pattern }

let idx t = match t.site with Read { idx; _ } | Store_dest { idx } -> idx

let pp ppf t =
  match t.site with
  | Read { idx; slot } ->
    Format.fprintf ppf "flip %a of slot %d at #%d" Moard_bits.Pattern.pp
      t.pattern slot idx
  | Store_dest { idx } ->
    Format.fprintf ppf "flip %a of store destination at #%d"
      Moard_bits.Pattern.pp t.pattern idx
