lib/vm/machine.ml: Array Fault Hashtbl Int64 List Memory Moard_bits Moard_ir Moard_trace Semantics Trap
