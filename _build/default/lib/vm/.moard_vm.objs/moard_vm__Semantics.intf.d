lib/vm/semantics.mli: Bitval Moard_bits Moard_ir Trap
