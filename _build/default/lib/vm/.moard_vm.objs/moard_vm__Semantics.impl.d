lib/vm/semantics.ml: Array Bitval Float Int64 List Moard_bits Moard_ir Option Trap
