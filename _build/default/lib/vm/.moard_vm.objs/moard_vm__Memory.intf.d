lib/vm/memory.mli: Moard_bits Moard_ir Trap
