lib/vm/memory.ml: Bytes Char Int64 Moard_bits Moard_ir Trap
