lib/vm/machine.mli: Fault Memory Moard_bits Moard_ir Moard_trace Trap
