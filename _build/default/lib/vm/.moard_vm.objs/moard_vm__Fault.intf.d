lib/vm/fault.mli: Format Moard_bits
