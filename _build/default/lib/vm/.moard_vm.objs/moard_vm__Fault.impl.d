lib/vm/fault.ml: Format Moard_bits
