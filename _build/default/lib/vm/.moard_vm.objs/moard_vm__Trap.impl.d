lib/vm/trap.ml: Format
