(** Flat byte-addressable memory.

    Addresses below [null_guard] trap, so corrupted pointers that land near
    zero behave like the segmentation faults the paper's injector observes.
    Unaligned access is permitted (a corrupted index can produce any byte
    address); out-of-range access traps. *)

type t

val null_guard : int

val create : bytes:int -> t
(** Fresh zeroed memory of [bytes] bytes. *)

val size : t -> int

val copy : t -> t
(** Snapshot, used to reset between runs of the same workload. *)

val load : t -> Moard_ir.Types.t -> int -> (Moard_bits.Bitval.t, Trap.t) result
val store : t -> Moard_ir.Types.t -> int -> Moard_bits.Bitval.t -> (unit, Trap.t) result

val load_exn : t -> Moard_ir.Types.t -> int -> Moard_bits.Bitval.t
(** For initialization and observation code where the address is trusted.
    @raise Invalid_argument on a trap. *)

val store_exn : t -> Moard_ir.Types.t -> int -> Moard_bits.Bitval.t -> unit
