let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let bar ?(width = 40) value =
  let n = int_of_float (Float.round (clamp01 value *. float_of_int width)) in
  String.make n '#' ^ String.make (width - n) ' '

let stacked ?(width = 40) segments =
  let buf = Buffer.create width in
  let used = ref 0 in
  List.iter
    (fun (glyph, value) ->
      let n =
        int_of_float (Float.round (clamp01 value *. float_of_int width))
      in
      let n = min n (width - !used) in
      Buffer.add_string buf (String.make n glyph);
      used := !used + n)
    segments;
  Buffer.add_string buf (String.make (max 0 (width - !used)) ' ');
  Buffer.contents buf

let row ?(label_width = 16) ~label ~value body =
  Printf.sprintf "%-*s %6.4f |%s|" label_width label value body

let whisker ?(width = 40) ~center ~margin () =
  let pos x = int_of_float (Float.round (clamp01 x *. float_of_int (width - 1))) in
  let lo = pos (center -. margin)
  and hi = pos (center +. margin)
  and c = pos center in
  String.init width (fun t ->
      if t = c then '#'
      else if t >= lo && t <= hi then '-'
      else ' ')
