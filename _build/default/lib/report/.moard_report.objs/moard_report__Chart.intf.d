lib/report/chart.mli:
