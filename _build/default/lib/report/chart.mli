(** Text rendering of the evaluation figures: stacked horizontal bars for
    the aDVF breakdowns, grouped bars with error whiskers for the RFI
    comparison. *)

val bar : ?width:int -> float -> string
(** A unit-interval bar, e.g. [0.62] over width 40. *)

val stacked : ?width:int -> (char * float) list -> string
(** A stacked unit-interval bar; each segment drawn with its own glyph. *)

val row :
  ?label_width:int -> label:string -> value:float -> string -> string
(** ["label  0.6234 |######    |"]. *)

val whisker : ?width:int -> center:float -> margin:float -> unit -> string
(** A bar with a ±margin whisker for confidence intervals. *)
