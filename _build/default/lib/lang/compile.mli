(** Lowering MiniC to the IR.

    Typing is performed during lowering: expressions are typed bottom-up,
    32-bit array loads are widened to i64 through an explicit [sext]
    instruction (the widening cast is then the operation that consumes the
    element, with 32 single-bit error patterns — exactly how an LLVM front
    end compiles C [int] arrays), and type clashes raise {!Type_error}. *)

exception Type_error of string

val program : Ast.program -> Moard_ir.Program.t
(** @raise Type_error on any ill-typed construct. *)

val check : Ast.program -> (unit, string) result
(** Type-check without keeping the compiled program. *)
