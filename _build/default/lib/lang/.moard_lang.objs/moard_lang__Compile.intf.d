lib/lang/compile.mli: Ast Moard_ir
