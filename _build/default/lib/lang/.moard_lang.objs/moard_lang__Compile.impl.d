lib/lang/compile.ml: Ast Format Hashtbl List Moard_bits Moard_ir Moard_vm
