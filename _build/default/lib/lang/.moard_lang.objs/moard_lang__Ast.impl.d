lib/lang/ast.ml: Array Int64 Moard_ir
