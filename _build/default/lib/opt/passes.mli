(** Classic scalar optimizations over the IR.

    These exist for the paper's §VII-A study: compiler optimization changes
    the operation mix and the lifetimes of values, and therefore changes a
    data object's aDVF — the same program can be more or less resilient
    after optimization. The passes preserve observable behaviour (final
    memory, return value, traps), which the test suite checks by
    differential execution.

    All passes are intraprocedural and conservative: loads, stores, calls
    and terminators are never removed or reordered. *)

val const_fold : Moard_ir.Program.func -> Moard_ir.Program.func
(** Evaluates operations whose operands are all immediates, using the very
    {!Moard_vm.Semantics} the interpreter runs on. Operations that would
    trap (division by an immediate zero) are left in place. *)

val copy_prop : Moard_ir.Program.func -> Moard_ir.Program.func
(** Within each block, forwards the sources of [Mov] instructions and of
    immediate-valued definitions into later operand uses, invalidating on
    redefinition. *)

val branch_simplify : Moard_ir.Program.func -> Moard_ir.Program.func
(** Rewrites [Cbr] on an immediate condition into [Br]. *)

val dce : Moard_ir.Program.func -> Moard_ir.Program.func
(** Deletes pure instructions whose destination register is never read
    afterwards (whole-function, flow-insensitive use counting; iterates to
    a fixpoint). Loads are considered pure and removable — a dead load
    cannot affect the outcome, though removing it removes a latent-error
    site, which is precisely the §VII-A effect under study. *)

val optimize_func :
  ?passes:(Moard_ir.Program.func -> Moard_ir.Program.func) list ->
  Moard_ir.Program.func -> Moard_ir.Program.func
(** Applies the pass list (default: all of the above) to a fixpoint,
    bounded at 8 rounds. *)

val optimize : ?level:int -> Moard_ir.Program.t -> Moard_ir.Program.t
(** Optimizes every function. [level] 0 = identity, 1 = const-fold +
    branch-simplify, 2 (default) = everything. *)
