module I = Moard_ir.Instr
module P = Moard_ir.Program
module S = Moard_vm.Semantics
module Bitval = Moard_bits.Bitval

let map_blocks f (fn : P.func) =
  { fn with P.blocks = Array.map f fn.P.blocks }

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)

let imm_of = function I.Imm v -> Some v | I.Reg _ | I.Glob _ -> None

let fold_instr instr =
  let imm2 a b k =
    match (imm_of a, imm_of b) with
    | Some x, Some y -> k x y
    | _ -> None
  in
  match instr with
  | I.Ibin (d, op, ty, a, b) ->
    imm2 a b (fun x y ->
        match S.ibin op ty x y with
        | Ok r -> Some (I.Mov (d, I.Imm r))
        | Error _ -> None)
  | I.Fbin (d, op, a, b) ->
    imm2 a b (fun x y -> Some (I.Mov (d, I.Imm (S.fbin op x y))))
  | I.Icmp (d, op, _, a, b) ->
    imm2 a b (fun x y -> Some (I.Mov (d, I.Imm (S.icmp op x y))))
  | I.Fcmp (d, op, a, b) ->
    imm2 a b (fun x y -> Some (I.Mov (d, I.Imm (S.fcmp op x y))))
  | I.Cast (d, c, a) ->
    Option.map (fun x -> I.Mov (d, I.Imm (S.cast c x))) (imm_of a)
  | I.Gep (d, base, index, scale) ->
    imm2 base index (fun x y -> Some (I.Mov (d, I.Imm (S.gep x y scale))))
  | I.Select (d, c, x, y) ->
    Option.map
      (fun cv -> I.Mov (d, if Bitval.to_bool cv then x else y))
      (imm_of c)
  | _ -> None

let const_fold fn =
  map_blocks
    (Array.map (fun instr ->
         match fold_instr instr with Some instr' -> instr' | None -> instr))
    fn

(* ------------------------------------------------------------------ *)
(* Local copy propagation                                              *)

(* Map register -> known operand value (another register or an immediate).
   Invalidated when either side is redefined. *)
let copy_prop fn =
  map_blocks
    (fun block ->
      let known : (int, I.operand) Hashtbl.t = Hashtbl.create 8 in
      let invalidate r =
        Hashtbl.remove known r;
        Hashtbl.iter
          (fun k src ->
            match src with
            | I.Reg r' when r' = r -> Hashtbl.remove known k
            | _ -> ())
          (Hashtbl.copy known)
      in
      let subst op =
        match op with
        | I.Reg r -> (
          match Hashtbl.find_opt known r with Some src -> src | None -> op)
        | _ -> op
      in
      Array.map
        (fun instr ->
          let instr' =
            match instr with
            | I.Mov (d, a) -> I.Mov (d, subst a)
            | I.Ibin (d, op, ty, a, b) -> I.Ibin (d, op, ty, subst a, subst b)
            | I.Fbin (d, op, a, b) -> I.Fbin (d, op, subst a, subst b)
            | I.Icmp (d, op, ty, a, b) -> I.Icmp (d, op, ty, subst a, subst b)
            | I.Fcmp (d, op, a, b) -> I.Fcmp (d, op, subst a, subst b)
            | I.Cast (d, c, a) -> I.Cast (d, c, subst a)
            | I.Load (d, ty, a) -> I.Load (d, ty, subst a)
            | I.Store (ty, v, a) -> I.Store (ty, subst v, subst a)
            | I.Gep (d, b, ix, s) -> I.Gep (d, subst b, subst ix, s)
            | I.Select (d, c, x, y) -> I.Select (d, subst c, subst x, subst y)
            | I.Call (d, f, args) -> I.Call (d, f, List.map subst args)
            | I.Br _ -> instr
            | I.Cbr (c, l1, l2) -> I.Cbr (subst c, l1, l2)
            | I.Ret (Some v) -> I.Ret (Some (subst v))
            | I.Ret None -> instr
          in
          (match I.writes instr' with
          | Some d ->
            invalidate d;
            (match instr' with
            | I.Mov (d, (I.Imm _ as src)) -> Hashtbl.replace known d src
            | I.Mov (d, (I.Reg r as src)) when r <> d ->
              Hashtbl.replace known d src
            | _ -> ())
          | None -> ());
          instr')
        block)
    fn

(* ------------------------------------------------------------------ *)
(* Branch simplification                                               *)

let branch_simplify fn =
  map_blocks
    (Array.map (function
      | I.Cbr (I.Imm c, l1, l2) ->
        I.Br (if Bitval.to_bool c then l1 else l2)
      | instr -> instr))
    fn

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                               *)

let has_side_effect = function
  | I.Store _ | I.Call _ | I.Br _ | I.Cbr _ | I.Ret _ -> true
  | I.Ibin (_, (I.Sdiv | I.Srem), _, _, _) -> true (* may trap *)
  | I.Load _ ->
    (* A dead load cannot change the outcome (it may at most hide an
       out-of-bounds trap for an address the program computes but never
       uses; MiniC-generated code never does that). *)
    false
  | _ -> false

let dce fn =
  let changed = ref true in
  let blocks = ref fn.P.blocks in
  while !changed do
    changed := false;
    let used = Array.make fn.P.nregs false in
    Array.iter
      (Array.iter (fun instr ->
           List.iter
             (function I.Reg r -> used.(r) <- true | _ -> ())
             (I.reads instr)))
      !blocks;
    blocks :=
      Array.map
        (fun block ->
          Array.to_list block
          |> List.filter (fun instr ->
                 let keep =
                   has_side_effect instr
                   ||
                   match I.writes instr with
                   | Some d -> used.(d)
                   | None -> true
                 in
                 if not keep then changed := true;
                 keep)
          |> Array.of_list)
        !blocks
  done;
  { fn with P.blocks = !blocks }

(* ------------------------------------------------------------------ *)

let default_passes = [ const_fold; copy_prop; branch_simplify; dce ]

let optimize_func ?(passes = default_passes) fn =
  let round fn = List.fold_left (fun fn pass -> pass fn) fn passes in
  let rec go fn n =
    if n = 0 then fn
    else
      let fn' = round fn in
      if fn' = fn then fn else go fn' (n - 1)
  in
  go fn 8

let optimize ?(level = 2) (p : P.t) =
  let passes =
    match level with
    | 0 -> []
    | 1 -> [ const_fold; branch_simplify ]
    | _ -> default_passes
  in
  if passes = [] then p
  else { p with P.funcs = List.map (optimize_func ~passes) p.P.funcs }
