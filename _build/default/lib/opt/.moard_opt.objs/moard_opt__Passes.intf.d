lib/opt/passes.mli: Moard_ir
