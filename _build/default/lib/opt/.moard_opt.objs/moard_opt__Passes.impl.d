lib/opt/passes.ml: Array Hashtbl List Moard_bits Moard_ir Moard_vm Option
