(** Multicore aDVF analysis.

    The paper leans on a 256-core cluster to make the analysis practical
    ("MOARD allows a user to easily leverage hardware resource to
    parallelize the analysis"); this is the shared-memory version on
    OCaml 5 domains. Consumption sites of the target object are dealt
    round-robin to [domains] workers; each worker builds its own private
    context (the golden run is deterministic, so every worker sees the
    identical trace) and resolves its share with its own caches; the
    per-subset reports are merged with {!Moard_core.Advf.merge}.

    Results are bit-identical to the sequential analysis — verdicts are
    deterministic and site subsets are disjoint — except for the cache-hit
    counters, which depend on the partition. *)

val analyze :
  ?options:Moard_core.Model.options ->
  ?domains:int ->
  workload:(unit -> Moard_inject.Workload.t) ->
  object_name:string ->
  unit ->
  Moard_core.Advf.report
(** [domains] defaults to [Domain.recommended_domain_count ()], capped at
    8. [workload] is called once per worker; it must build the same
    workload every time (all registry constructors do). *)

val analyze_targets :
  ?options:Moard_core.Model.options ->
  ?domains:int ->
  workload:(unit -> Moard_inject.Workload.t) ->
  unit ->
  Moard_core.Advf.report list
(** Parallel {!analyze} for every declared target object, one after the
    other (parallelism is within each object's site set). *)
