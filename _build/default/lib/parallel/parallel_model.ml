module Model = Moard_core.Model
module Advf = Moard_core.Advf
module Context = Moard_inject.Context

let default_domains () = min 8 (Domain.recommended_domain_count ())

let analyze ?options ?domains ~workload ~object_name () =
  let n = match domains with Some d -> max 1 d | None -> default_domains () in
  if n = 1 then
    Model.analyze ?options (Context.make (workload ())) ~object_name
  else
    let worker w =
      Domain.spawn (fun () ->
          (* Each domain owns a full private context: machine, golden run,
             trace and caches. Nothing is shared, so no synchronization is
             needed and determinism is preserved. *)
          let ctx = Context.make (workload ()) in
          Model.analyze ?options
            ~site_filter:(fun i -> i mod n = w)
            ctx ~object_name)
    in
    let handles = List.init n worker in
    Advf.merge (List.map Domain.join handles)

let analyze_targets ?options ?domains ~workload () =
  let targets = (workload ()).Moard_inject.Workload.targets in
  List.map
    (fun object_name -> analyze ?options ?domains ~workload ~object_name ())
    targets
