lib/parallel/parallel_model.mli: Moard_core Moard_inject
