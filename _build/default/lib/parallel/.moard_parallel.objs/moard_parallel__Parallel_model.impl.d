lib/parallel/parallel_model.ml: Domain List Moard_core Moard_inject
