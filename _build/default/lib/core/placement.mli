(** Protection placement driven by aDVF.

    The reason to quantify per-object resilience (paper §I, §VI and the
    strategic-placement line of work it cites [9]) is to decide *which*
    data objects a fault-tolerance mechanism should cover when covering
    everything is too expensive. This module turns a set of aDVF reports
    into such a plan.

    The expected-failure model: faults land on data objects proportionally
    to their consumption footprint (involvements), and a fault on object X
    goes unmasked with probability (1 - aDVF(X)). Protecting X with a
    mechanism of effectiveness e removes a fraction e of its unmasked
    faults at the mechanism's relative cost. The planner greedily picks
    the best risk-removed-per-cost object until the budget is spent —
    optimal for this additive model when costs are uniform, and the usual
    knapsack heuristic otherwise. *)

type candidate = {
  report : Advf.report;
  cost : float;
      (** relative overhead of protecting this object (e.g. expected
          slowdown fraction); must be positive *)
  effectiveness : float;
      (** fraction of the object's unmasked faults the mechanism removes,
          in [0, 1] (1.0 = perfect protection such as TMR-with-vote) *)
}

type decision = {
  object_name : string;
  risk : float;          (** expected unmasked-fault share, unprotected *)
  risk_removed : float;  (** share removed by protecting it *)
  cost : float;
  chosen : bool;
}

type plan = {
  decisions : decision list;  (** all candidates, highest risk first *)
  total_cost : float;         (** cost of the chosen set *)
  residual_risk : float;      (** unmasked-fault share left after the plan *)
  baseline_risk : float;      (** unmasked-fault share with no protection *)
}

val candidate : ?cost:float -> ?effectiveness:float -> Advf.report -> candidate
(** Defaults: cost 1.0, effectiveness 1.0. *)

val plan : budget:float -> candidate list -> plan
(** Greedy selection under [budget] (total allowed cost).
    @raise Invalid_argument on non-positive costs or an empty list. *)

val pp_plan : Format.formatter -> plan -> unit
