lib/core/advf.ml: Array Format List String Verdict
