lib/core/propagation.ml: Array Hashtbl List Moard_bits Moard_ir Moard_trace Moard_vm Option Reexec Verdict
