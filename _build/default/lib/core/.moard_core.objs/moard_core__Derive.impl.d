lib/core/derive.ml: Array List Moard_ir Moard_trace Option
