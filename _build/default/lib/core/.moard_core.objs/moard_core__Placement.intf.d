lib/core/placement.mli: Advf Format
