lib/core/derive.mli: Moard_trace
