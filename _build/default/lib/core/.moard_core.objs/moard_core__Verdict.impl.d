lib/core/verdict.ml: Format
