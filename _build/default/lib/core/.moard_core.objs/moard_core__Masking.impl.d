lib/core/masking.ml: Array Moard_bits Moard_ir Moard_trace Moard_vm Reexec Verdict
