lib/core/bound.mli: Moard_inject
