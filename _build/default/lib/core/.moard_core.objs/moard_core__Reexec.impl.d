lib/core/reexec.ml: Array Float Int64 Moard_bits Moard_ir Moard_trace Moard_vm Verdict
