lib/core/advf.mli: Format Verdict
