lib/core/bound.ml: Array List Masking Moard_bits Moard_inject Moard_trace Propagation Random
