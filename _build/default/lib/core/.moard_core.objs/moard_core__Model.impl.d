lib/core/model.ml: Advf Array Derive Hashtbl List Masking Moard_bits Moard_inject Moard_ir Moard_trace Option Propagation Verdict
