lib/core/masking.mli: Moard_bits Moard_ir Moard_trace Moard_vm Verdict
