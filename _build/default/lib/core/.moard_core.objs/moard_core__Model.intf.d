lib/core/model.mli: Advf Moard_inject
