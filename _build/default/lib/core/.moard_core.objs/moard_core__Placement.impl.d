lib/core/placement.ml: Advf Float Format Hashtbl List
