type candidate = {
  report : Advf.report;
  cost : float;
  effectiveness : float;
}

type decision = {
  object_name : string;
  risk : float;
  risk_removed : float;
  cost : float;
  chosen : bool;
}

type plan = {
  decisions : decision list;
  total_cost : float;
  residual_risk : float;
  baseline_risk : float;
}

let candidate ?(cost = 1.0) ?(effectiveness = 1.0) report =
  { report; cost; effectiveness }

let plan ~budget (candidates : candidate list) =
  if candidates = [] then invalid_arg "Placement.plan: no candidates";
  List.iter
    (fun (c : candidate) ->
      if c.cost <= 0.0 then invalid_arg "Placement.plan: non-positive cost";
      if c.effectiveness < 0.0 || c.effectiveness > 1.0 then
        invalid_arg "Placement.plan: effectiveness out of [0,1]")
    candidates;
  (* Faults land on objects proportionally to their involvement counts. *)
  let total_inv =
    List.fold_left
      (fun acc c -> acc + c.report.Advf.involvements)
      0 candidates
  in
  let weight (c : candidate) =
    float_of_int c.report.Advf.involvements /. float_of_int (max total_inv 1)
  in
  let risk c = weight c *. (1.0 -. c.report.Advf.advf) in
  let gain (c : candidate) = risk c *. c.effectiveness in
  (* Greedy by risk removed per unit cost. *)
  let order =
    List.sort
      (fun (a : candidate) (b : candidate) ->
        Float.compare (gain b /. b.cost) (gain a /. a.cost))
      candidates
  in
  let chosen = Hashtbl.create 8 in
  let spent = ref 0.0 in
  List.iter
    (fun (c : candidate) ->
      if !spent +. c.cost <= budget +. 1e-12 && gain c > 0.0 then begin
        Hashtbl.replace chosen c.report.Advf.object_name ();
        spent := !spent +. c.cost
      end)
    order;
  let baseline_risk = List.fold_left (fun acc c -> acc +. risk c) 0.0 candidates in
  let residual_risk =
    List.fold_left
      (fun acc c ->
        acc
        +.
        if Hashtbl.mem chosen c.report.Advf.object_name then
          risk c -. gain c
        else risk c)
      0.0 candidates
  in
  let decisions =
    List.sort
      (fun (a : candidate) (b : candidate) ->
        Float.compare (risk b) (risk a))
      candidates
    |> List.map (fun c ->
           {
             object_name = c.report.Advf.object_name;
             risk = risk c;
             risk_removed =
               (if Hashtbl.mem chosen c.report.Advf.object_name then gain c
                else 0.0);
             cost = c.cost;
             chosen = Hashtbl.mem chosen c.report.Advf.object_name;
           })
  in
  { decisions; total_cost = !spent; residual_risk; baseline_risk }

let pp_plan ppf plan =
  Format.fprintf ppf "@[<v>%-16s %-10s %-10s %-8s %s@," "object" "risk"
    "removed" "cost" "protect?";
  List.iter
    (fun d ->
      Format.fprintf ppf "%-16s %-10.4f %-10.4f %-8.2f %s@," d.object_name
        d.risk d.risk_removed d.cost
        (if d.chosen then "YES" else "no"))
    plan.decisions;
  Format.fprintf ppf "cost %.2f; unmasked-fault share %.4f -> %.4f@]"
    plan.total_cost plan.baseline_risk plan.residual_risk
