(** The propagation-bound study behind §III-D's optimization.

    The paper justifies cutting propagation tracking at k operations with
    an observation from 1000 random fault-injection tests: 87% of the
    faults not masked within 10 operations, and 100% of those not masked
    within 50, end in numerically incorrect outcomes — i.e. further
    propagation almost never masks what the window did not. This module
    regenerates that observation. *)

type point = {
  k : int;
  sampled : int;            (** faults examined *)
  masked_within_k : int;    (** settled by the op-level or window analysis *)
  survivors : int;          (** not masked within the window *)
  incorrect_of_survivors : int;
      (** survivors whose injected run is numerically different *)
  fraction_incorrect : float;
}

val study :
  ?seed:int -> ?samples:int -> k_values:int list ->
  Moard_inject.Context.t -> object_name:string -> point list
(** [samples] random single-bit faults per object (default 125, so eight
    benchmarks give the paper's 1000). *)
