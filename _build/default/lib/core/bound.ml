module Context = Moard_inject.Context
module Consume = Moard_trace.Consume
module Bitval = Moard_bits.Bitval
module Pattern = Moard_bits.Pattern
module Outcome = Moard_inject.Outcome

type point = {
  k : int;
  sampled : int;
  masked_within_k : int;
  survivors : int;
  incorrect_of_survivors : int;
  fraction_incorrect : float;
}

let study ?(seed = 2019) ?(samples = 125) ~k_values ctx ~object_name =
  let tape = Context.tape ctx in
  let w = Context.workload ctx in
  let obj = Context.object_of ctx object_name in
  let outputs =
    List.map (Context.object_of ctx) w.Moard_inject.Workload.outputs
  in
  let sites =
    Consume.of_tape ~segment:(Context.segment ctx) tape obj
    |> List.filter (fun s ->
           match s.Consume.kind with
           | Consume.Read _ -> true
           | Consume.Store_dest -> false)
    |> Array.of_list
  in
  if Array.length sites = 0 then
    invalid_arg ("Bound.study: no fault sites for " ^ object_name);
  let rng = Random.State.make [| seed |] in
  let picks =
    Array.init samples (fun _ ->
        let site = sites.(Random.State.int rng (Array.length sites)) in
        let bit = Random.State.int rng (Bitval.bits_in site.Consume.width) in
        (site, Pattern.Single bit))
  in
  List.map
    (fun k ->
      let masked = ref 0 and survivors = ref 0 and incorrect = ref 0 in
      Array.iter
        (fun ((site : Consume.t), pattern) ->
          let e = Moard_trace.Tape.get tape site.Consume.event_idx in
          let survived =
            match Masking.analyze e site.Consume.kind pattern with
            | Masking.Masked _ -> false
            | Masking.Crash_certain _ | Masking.Divergent -> true
            | Masking.Changed { out; _ } -> (
              let init =
                match out with
                | Masking.To_reg { frame; reg; value } ->
                  Propagation.From_reg { frame; reg; value }
                | Masking.To_mem { addr; value; ty } ->
                  Propagation.From_mem { addr; value; ty }
              in
              match
                Propagation.replay ~tape ~k ~shadow_cap:256 ~outputs
                  ~start:site.Consume.event_idx ~init
              with
              | Propagation.Masked _ -> false
              | Propagation.Crash_certain _ | Propagation.Unresolved _ -> true)
          in
          if survived then begin
            incr survivors;
            match Context.inject_at ctx site pattern with
            | Outcome.Same -> ()
            | Outcome.Acceptable | Outcome.Incorrect | Outcome.Crashed _ ->
              incr incorrect
          end
          else incr masked)
        picks;
      {
        k;
        sampled = samples;
        masked_within_k = !masked;
        survivors = !survivors;
        incorrect_of_survivors = !incorrect;
        fraction_incorrect =
          (if !survivors = 0 then 1.0
           else float_of_int !incorrect /. float_of_int !survivors);
      })
    k_values
