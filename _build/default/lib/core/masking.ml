module Bitval = Moard_bits.Bitval
module Pattern = Moard_bits.Pattern
module Event = Moard_trace.Event
module Consume = Moard_trace.Consume

type t =
  | Masked of Verdict.kind
  | Changed of { out : changed_out; overshadow : bool }
  | Crash_certain of Moard_vm.Trap.t
  | Divergent

and changed_out =
  | To_reg of { frame : int; reg : int; value : Moard_bits.Bitval.t }
  | To_mem of { addr : int; value : Moard_bits.Bitval.t; ty : Moard_ir.Types.t }

let analyze (e : Event.t) kind pattern =
  match (kind : Consume.kind) with
  | Consume.Store_dest ->
    (* The store writes a new value over the corrupted element: value
       overwriting, whatever the corrupted bit (paper §III-C (1)).
       Read-modify-write stores never reach this case — the model
       delegates them to the statement's deriving read (see {!Derive}). *)
    Masked Verdict.Overwrite
  | Consume.Read { slot } -> (
    if not (Consume.consuming_event e) then
      invalid_arg "Masking.analyze: not a consuming operation";
    if slot < 0 || slot >= Array.length e.reads then
      invalid_arg "Masking.analyze: slot out of range";
    let values = Array.map (fun (r : Event.read) -> r.value) e.reads in
    let corrupt = Pattern.apply pattern values.(slot) in
    values.(slot) <- corrupt;
    let overshadow = Reexec.overshadow_candidate e ~slot ~corrupt in
    match (Reexec.recompute e values, Reexec.clean_out e) with
    | Reexec.Rtrap trap, _ -> Crash_certain trap
    | Reexec.Rctl taken', Reexec.Rctl taken ->
      if taken = taken' then Masked Verdict.Logic_cmp else Divergent
    | Reexec.Rreg v', Reexec.Rreg v ->
      if Bitval.equal v' v then Masked (Reexec.exact_mask_kind e.instr ~slot)
      else (
        match e.write with
        | Event.Wreg { frame; reg; _ } ->
          Changed { out = To_reg { frame; reg; value = v' }; overshadow }
        | Event.Wmem _ | Event.Wnone ->
          invalid_arg "Masking.analyze: register result without a register write")
    | Reexec.Rmem (addr', v', ty), Reexec.Rmem (addr, v, _) ->
      if addr' <> addr then
        (* Only possible when the address operand itself carried the
           element; treat as a wild store needing ground truth. *)
        Divergent
      else if Bitval.equal v' v then
        Masked (Reexec.exact_mask_kind e.instr ~slot)
      else Changed { out = To_mem { addr; value = v'; ty }; overshadow }
    | (Reexec.Rload _ | Reexec.Rcall | Reexec.Rret _ | Reexec.Rnone), _ ->
      invalid_arg "Masking.analyze: not a consuming operation"
    | _, _ -> invalid_arg "Masking.analyze: output shape mismatch")
