(** Operation-level error-masking analysis (paper §III-C).

    Given a consumption site of the target data object and an error
    pattern, decide — from operation semantics alone, without running the
    application — whether the error is masked by the consuming operation,
    and if not, what corrupted value it hands to error propagation. *)

type t =
  | Masked of Verdict.kind
      (** the operation's result is unchanged by the corruption *)
  | Changed of {
      out : changed_out;
      overshadow : bool;
          (** the corrupted operand of an add/sub stays smaller in magnitude
              than the other operand: any eventual masking is attributed to
              operation-level value overshadowing (paper §III-C) *)
    }
  | Crash_certain of Moard_vm.Trap.t
      (** the corrupted operand makes the operation itself trap *)
  | Divergent
      (** the corruption flips the consuming branch: needs fault injection *)

and changed_out =
  | To_reg of { frame : int; reg : int; value : Moard_bits.Bitval.t }
  | To_mem of { addr : int; value : Moard_bits.Bitval.t; ty : Moard_ir.Types.t }

val analyze :
  Moard_trace.Event.t -> Moard_trace.Consume.kind -> Moard_bits.Pattern.t -> t
(** Read-modify-write store destinations must be delegated by the caller
    to the statement's deriving read via {!Derive.store_rmw_source} before
    calling this (the model does).
    @raise Invalid_argument if the site is not a consumption of the event
    (e.g. a slot of a pure copy). *)
