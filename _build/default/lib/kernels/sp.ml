module Ast = Moard_lang.Ast

let ast ~n ~u0 ~rhoi0 =
  let n3 = n * n * n in
  let open Moard_lang.Ast.Dsl in
  let cell ek ej ei = ((ek * v "g1") + ej) * v "g0" + ei in
  let at arr ek ej ei = arr.%(cell ek ej ei) in
  let set arr ek ej ei e = Ast.Sstore (arr, cell ek ej ei, e) in
  let gp d = "grid_points".%(i d) in
  let x_solve =
    fn "x_solve"
      [
        int_ "g0" (gp 0);
        int_ "g1" (gp 1);
        int_ "nx" (v "g0");
        int_ "jmax" (v "g1" - i 1);
        int_ "kmax" (gp 2 - i 1);
        for_ "k" (i 1) (v "kmax")
          [
            for_ "j" (i 1) (v "jmax")
              [
                (* assemble the 5 bands from rhoi and the rhs from u *)
                for_ "t" (i 0) (v "nx")
                  [
                    flt_ "ri" (at "rhoi" (v "k") (v "j") (v "t"));
                    ("bd".%(v "t") <- f 3.0 + v "ri");
                    ("ba".%(v "t") <- f (-0.8) * v "ri");
                    ("bc".%(v "t") <- f (-0.8) * v "ri");
                    ("be".%(v "t") <- f (-0.2) * v "ri");
                    ("bf".%(v "t") <- f (-0.2) * v "ri");
                    ("rh".%(v "t") <- at "u" (v "k") (v "j") (v "t"));
                  ];
                (* forward sweep: eliminate the two subdiagonals *)
                for_ "t" (i 0)
                  (v "nx" - i 2)
                  [
                    flt_ "fac" (f 1.0 / "bd".%(v "t"));
                    flt_ "m1" ("ba".%(v "t" + i 1) * v "fac");
                    ("bd".%(v "t" + i 1) <-
                     "bd".%(v "t" + i 1) - (v "m1" * "bc".%(v "t")));
                    ("bc".%(v "t" + i 1) <-
                     "bc".%(v "t" + i 1) - (v "m1" * "bf".%(v "t")));
                    ("rh".%(v "t" + i 1) <-
                     "rh".%(v "t" + i 1) - (v "m1" * "rh".%(v "t")));
                    when_
                      (v "t" + i 2 < v "nx")
                      [
                        flt_ "m2" ("be".%(v "t" + i 2) * v "fac");
                        ("ba".%(v "t" + i 2) <-
                         "ba".%(v "t" + i 2) - (v "m2" * "bc".%(v "t")));
                        ("bd".%(v "t" + i 2) <-
                         "bd".%(v "t" + i 2) - (v "m2" * "bf".%(v "t")));
                        ("rh".%(v "t" + i 2) <-
                         "rh".%(v "t" + i 2) - (v "m2" * "rh".%(v "t")));
                      ];
                  ];
                (* last pair *)
                flt_ "m3" ("ba".%(v "nx" - i 1) / "bd".%(v "nx" - i 2));
                ("bd".%(v "nx" - i 1) <-
                 "bd".%(v "nx" - i 1) - (v "m3" * "bc".%(v "nx" - i 2)));
                ("rh".%(v "nx" - i 1) <-
                 "rh".%(v "nx" - i 1) - (v "m3" * "rh".%(v "nx" - i 2)));
                (* back substitution into u *)
                set "u" (v "k") (v "j")
                  (v "nx" - i 1)
                  ("rh".%(v "nx" - i 1) / "bd".%(v "nx" - i 1));
                set "u" (v "k") (v "j")
                  (v "nx" - i 2)
                  (("rh".%(v "nx" - i 2)
                    - ("bc".%(v "nx" - i 2)
                       * at "u" (v "k") (v "j") (v "nx" - i 1)))
                   / "bd".%(v "nx" - i 2));
                int_ "t2" (v "nx" - i 3);
                while_
                  (v "t2" >= i 0)
                  [
                    set "u" (v "k") (v "j") (v "t2")
                      (("rh".%(v "t2")
                        - ("bc".%(v "t2") * at "u" (v "k") (v "j") (v "t2" + i 1))
                        - ("bf".%(v "t2") * at "u" (v "k") (v "j") (v "t2" + i 2)))
                       / "bd".%(v "t2"));
                    "t2" <-- v "t2" - i 1;
                  ];
              ];
          ];
        flt_ "us" (f 0.0);
        int_ "t" (i 0);
        while_
          (v "t" < i n3)
          [ ("us" <-- v "us" + "u".%(v "t")); ("t" <-- v "t" + i 2) ];
        ("out".%(i 0) <- v "us");
        ret_void;
      ]
  in
  let main = fn "main" [ do_ (call "x_solve" []); ret_void ] in
  {
    Ast.globals =
      [
        garr_i32_init "grid_points"
          [| Int32.of_int n; Int32.of_int n; Int32.of_int n |];
        garr_f64_init "u" u0;
        garr_f64_init "rhoi" rhoi0;
        garr_f64 "bd" n;
        garr_f64 "ba" n;
        garr_f64 "bc" n;
        garr_f64 "be" n;
        garr_f64 "bf" n;
        garr_f64 "rh" n;
        garr_f64 "out" 1;
      ];
    funs = [ x_solve; main ];
  }

let workload ?(n = 5) ?(seed = 37) () =
  if n < 5 then invalid_arg "Sp.workload: n >= 5";
  let rng = Util.Rng.make seed in
  let n3 = n * n * n in
  let u0 = Array.init n3 (fun _ -> 0.5 +. Util.Rng.float rng 1.0) in
  let rhoi0 = Array.init n3 (fun _ -> 0.5 +. Util.Rng.float rng 0.5) in
  let program = Moard_lang.Compile.program (ast ~n ~u0 ~rhoi0) in
  Moard_inject.Workload.make ~name:"SP" ~program ~segment:[ "x_solve" ]
    ~targets:[ "rhoi"; "grid_points" ] ~outputs:[ "out" ]
    ~accept:(Moard_inject.Workload.rel_err_accept 1e-3)
    ()
