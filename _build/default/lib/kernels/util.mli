(** Shared helpers for kernel construction: deterministic host-side data
    generation (problem inputs are precomputed into global initializers so
    the analyzed trace contains only the evaluated routine, like the
    paper's per-routine code segments) and multi-dimensional indexing. *)

(** Deterministic splitmix-style generator for reproducible inputs. *)
module Rng : sig
  type t
  val make : int -> t
  val float : t -> float -> float
  (** [float t bound]: uniform in [0, bound). *)

  val int : t -> int -> int
  (** [int t bound]: uniform in [0, bound). *)
end

val idx2 : int -> Moard_lang.Ast.expr -> Moard_lang.Ast.expr -> Moard_lang.Ast.expr
(** [idx2 ncols i j] = [i*ncols + j] as a MiniC expression. *)

val idx3 :
  int -> int ->
  Moard_lang.Ast.expr -> Moard_lang.Ast.expr -> Moard_lang.Ast.expr ->
  Moard_lang.Ast.expr
(** [idx3 n2 n3 i j k] = [(i*n2 + j)*n3 + k]. *)

val idx4 :
  int -> int -> int ->
  Moard_lang.Ast.expr -> Moard_lang.Ast.expr -> Moard_lang.Ast.expr ->
  Moard_lang.Ast.expr -> Moard_lang.Ast.expr
