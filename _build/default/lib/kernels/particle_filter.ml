module Ast = Moard_lang.Ast

let ast ~np ~steps ~abft ~obs =
  let np2 = np / 2 in
  let npm1 = np - 1 in
  let open Moard_lang.Ast.Dsl in
  (* Uniform variate in [0, 1) from the in-program LCG (so randomness is
     part of the trace, as in the Rodinia code). *)
  let lcg =
    fn "randu" ~ret:Ast.Tf64
      [
        ("seed".%(i 0) <-
         ("seed".%(i 0) * i64 6364136223846793005L) + i64 1442695040888963407L);
        ret (to_f ("seed".%(i 0) lsr i 11) * f (1.0 /. 9007199254740992.0));
      ]
  in
  let estimate_body =
    if abft then
      [
        (* ABFT: checksummed halves of the dot product; a disagreement
           with the full sum locates an error and the recomputed value
           overwrites xe (the verification phase of [28]). *)
        flt_ "h1" (f 0.0);
        flt_ "h2" (f 0.0);
        for_ "p" (i 0) (i np2)
          [ "h1" <-- v "h1" + ("wgt".%(v "p") * "ax".%(v "p")) ];
        for_ "p" (i np2) (i np)
          [ "h2" <-- v "h2" + ("wgt".%(v "p") * "ax".%(v "p")) ];
        when_
          (fabs_ ("xe".%(i 0) - (v "h1" + v "h2")) > f 1e-9)
          [ ("xe".%(i 0) <- v "h1" + v "h2") ];
      ]
    else []
  in
  let pf =
    fn "particle_filter"
      ([
         flt_ "err" (f 0.0);
         for_ "t" (i 0) (i steps)
           ([
              (* predict: drift toward the previous estimate plus noise *)
              for_ "p" (i 0) (i np)
                [
                  ("ax".%(v "p") <-
                   "ax".%(v "p") + f 1.0
                   + (f 0.1 * ("xe".%(i 0) - "ax".%(v "p")))
                   + (f 0.4 * (call "randu" [] - f 0.5)));
                ];
              (* weight against the observation *)
              flt_ "ob" ("obs".%(v "t"));
              flt_ "sw" (f 0.0);
              for_ "p" (i 0) (i np)
                [
                  flt_ "d" ("ax".%(v "p") - v "ob");
                  ("wgt".%(v "p") <-
                   "wgt".%(v "p") * exp_ (f (-0.5) * v "d" * v "d"));
                  "sw" <-- v "sw" + "wgt".%(v "p");
                ];
              for_ "p" (i 0) (i np)
                [ ("wgt".%(v "p") <- "wgt".%(v "p") / v "sw") ];
              (* the vector multiplication into xe *)
              flt_ "acc" (f 0.0);
              for_ "p" (i 0) (i np)
                [ "acc" <-- v "acc" + ("wgt".%(v "p") * "ax".%(v "p")) ];
              ("xe".%(i 0) <- v "acc");
            ]
           @ estimate_body
           @ [
               (* consume xe: tracking error and trajectory *)
               flt_ "d2" ("xe".%(i 0) - v "ob");
               ("err" <-- v "err" + (v "d2" * v "d2"));
               ("xeh".%(v "t") <- "xe".%(i 0));
               (* systematic resampling *)
               flt_ "u0" (call "randu" [] / f (float_of_int np));
               for_ "p" (i 0) (i np)
                 [
                   flt_ "uu"
                     (v "u0" + (to_f (v "p") / f (float_of_int np)));
                   flt_ "csum" (f 0.0);
                   int_ "pick" (i 0);
                   for_ "q" (i 0) (i np)
                     [
                       "csum" <-- v "csum" + "wgt".%(v "q");
                       when_ (v "csum" < v "uu") [ "pick" <-- v "q" + i 1 ];
                     ];
                   when_ (v "pick" >= i np) [ "pick" <-- i npm1 ];
                   ("nx".%(v "p") <- "ax".%(v "pick"));
                 ];
               for_ "p" (i 0) (i np)
                 [
                   ("ax".%(v "p") <- "nx".%(v "p"));
                   ("wgt".%(v "p") <- f (1.0 /. float_of_int np));
                 ];
             ]);
         ("out".%(i 0) <- sqrt_ (v "err" / f (float_of_int steps)));
         ret_void;
       ])
  in
  let main = fn "main" [ do_ (call "particle_filter" []); ret_void ] in
  {
    Ast.globals =
      [
        garr_f64 "ax" np;
        garr_f64_init "wgt" (Array.make np (1.0 /. float_of_int np));
        garr_f64 "nx" np;
        garr_f64 "xe" 1;
        garr_f64 "xeh" steps;
        garr_f64_init "obs" obs;
        garr_i64_init "seed" [| 88172645463325252L |];
        garr_f64 "out" 1;
      ];
    funs = [ lcg; pf; main ];
  }

let workload ?(particles = 16) ?(steps = 4) ?(abft = false) ?(seed = 71) () =
  if particles < 4 || particles mod 2 <> 0 then
    invalid_arg "Particle_filter.workload: particles";
  let rng = Util.Rng.make seed in
  let obs =
    Array.init steps (fun t ->
        float_of_int (t + 1) +. (0.2 *. (Util.Rng.float rng 1.0 -. 0.5)))
  in
  let program = Moard_lang.Compile.program (ast ~np:particles ~steps ~abft ~obs) in
  (* PF's fidelity notion, as in the Rodinia verification: the estimate
     trajectory must match the golden one to high precision. *)
  Moard_inject.Workload.make
    ~name:(if abft then "ABFT_PF" else "PF")
    ~program
    ~segment:[ "particle_filter"; "randu" ]
    ~targets:[ "xe" ] ~outputs:[ "out"; "xeh" ]
    ~accept:(Moard_inject.Workload.rel_err_accept 1e-6)
    ()
