type entry = {
  benchmark : string;
  description : string;
  routine : string;
  objects : string list;
  workload : unit -> Moard_inject.Workload.t;
}

let table1 =
  [
    {
      benchmark = "CG";
      description = "Conjugate Gradient, irregular memory access";
      routine = "conj_grad";
      objects = [ "r"; "colidx" ];
      workload = (fun () -> Cg.workload ());
    };
    {
      benchmark = "MG";
      description = "Multi-Grid on a sequence of meshes";
      routine = "mg3P";
      objects = [ "u"; "r" ];
      workload = (fun () -> Mg.workload ());
    };
    {
      benchmark = "FT";
      description = "Discrete Fourier Transform";
      routine = "fftXYZ";
      objects = [ "plane"; "exp1" ];
      workload = (fun () -> Ft.workload ());
    };
    {
      benchmark = "BT";
      description = "Block Tri-diagonal solver";
      routine = "x_solve";
      objects = [ "grid_points"; "u" ];
      workload = (fun () -> Bt.workload ());
    };
    {
      benchmark = "SP";
      description = "Scalar Penta-diagonal solver";
      routine = "x_solve";
      objects = [ "rhoi"; "grid_points" ];
      workload = (fun () -> Sp.workload ());
    };
    {
      benchmark = "LU";
      description = "Lower-Upper Gauss-Seidel solver";
      routine = "ssor";
      objects = [ "u"; "rsd" ];
      workload = (fun () -> Lu.workload ());
    };
    {
      benchmark = "LULESH";
      description = "Unstructured Lagrangian explicit shock hydrodynamics";
      routine = "CalcMonotonicQRegionForElems";
      objects = [ "m_elemBC"; "m_delv_zeta" ];
      workload = (fun () -> Lulesh.workload ());
    };
    {
      benchmark = "AMG";
      description = "Algebraic multigrid solver (GMRES with AMG smoothing)";
      routine = "hypre_GMRESSolve";
      objects = [ "ipiv"; "A" ];
      workload = (fun () -> Amg.workload ());
    };
  ]

let case_studies =
  [
    {
      benchmark = "MM";
      description = "Matrix multiplication, no protection";
      routine = "mm";
      objects = [ "C" ];
      workload = (fun () -> Abft_mm.workload ());
    };
    {
      benchmark = "ABFT_MM";
      description = "Matrix multiplication with checksum ABFT";
      routine = "mm+verify";
      objects = [ "C" ];
      workload = (fun () -> Abft_mm.workload ~abft:true ());
    };
    {
      benchmark = "PF";
      description = "Particle Filter (Rodinia), no protection";
      routine = "particle_filter";
      objects = [ "xe" ];
      workload = (fun () -> Particle_filter.workload ());
    };
    {
      benchmark = "ABFT_PF";
      description = "Particle Filter with ABFT on xe";
      routine = "particle_filter+verify";
      objects = [ "xe" ];
      workload = (fun () -> Particle_filter.workload ~abft:true ());
    };
  ]

let all = table1 @ case_studies

let find name =
  let lname = String.lowercase_ascii name in
  List.find
    (fun e -> String.equal (String.lowercase_ascii e.benchmark) lname)
    all

let pp_table1 ppf () =
  Format.fprintf ppf "@[<v>%-8s %-55s %-30s %s@,%s@,"
    "Name" "Benchmark description" "Code segment" "Target data objects"
    (String.make 110 '-');
  List.iter
    (fun e ->
      Format.fprintf ppf "%-8s %-55s %-30s %s@," e.benchmark e.description
        e.routine
        (String.concat ", " e.objects))
    table1;
  Format.fprintf ppf "@]"
