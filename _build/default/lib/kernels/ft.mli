(** NPB FT miniature: discrete Fourier transform (Table I: routine
    [fftXYZ]; target data objects [plane] — the complex working grid — and
    [exp1] — the precomputed twiddle-factor table).

    The paper's 3D FFT is reduced to a 2D transform of an n x n complex
    grid: radix-2 1D FFTs along rows, a transpose, and a second row pass —
    keeping the transpose + repeated-1D-FFT structure the paper credits for
    plane's algorithm-level masking. Complex values are interleaved
    (re, im) in [plane]; [exp1] holds the n/2 complex roots of unity. *)

val workload : ?n:int -> ?seed:int -> unit -> Moard_inject.Workload.t
(** [n]: FFT size, a power of two (default 8). Outputs: the NPB-style
    checksum (sum of re, sum of im over scattered points) and total
    energy; acceptance is 0.1% relative agreement — the averaging of a
    single corruption across the checksum is FT's own fidelity notion. *)
