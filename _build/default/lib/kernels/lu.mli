(** NPB LU miniature: SSOR-style lower-upper solver (Table I: routine
    [ssor]; target data objects [u] — the solution — and [rsd] — the
    steady-state residual).

    Each pseudo-time step computes the residual of a 7-point stencil over
    a 3D grid with 5 components per cell, runs the forward and backward
    triangular sweeps over [rsd] (the blts/buts roles), relaxes [u] by the
    SSOR factor, and ends with the paper's Listing-2 [l2norm] over
    [sum\[5\]] (zeroing loop, accumulation loop, sqrt loop — the code the
    aDVF walkthrough in §III-B is computed on). *)

val workload : ?n:int -> ?itmax:int -> ?seed:int -> unit ->
  Moard_inject.Workload.t
(** [n]: grid points per dimension (default 4); [itmax]: SSOR iterations
    (default 2). *)
