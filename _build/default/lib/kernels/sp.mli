(** NPB SP miniature: scalar pentadiagonal solver along x-lines (Table I:
    routine [x_solve]; target data objects [rhoi] — the reciprocal-density
    array the lhs coefficients are built from — and [grid_points]).

    Each (k, j) line assembles a diagonally dominant 5-band system whose
    couplings scale with [rhoi], eliminates the two subdiagonals in the
    SP forward-sweep pattern, and back-substitutes into [u]. *)

val workload : ?n:int -> ?seed:int -> unit -> Moard_inject.Workload.t
(** [n]: grid points per dimension (default 5; lines need n >= 5). *)
