(** Case study (paper §VI, Fig. 9): Particle Filter from Rodinia, with
    the critical variable [xe] — repeatedly overwritten with vector
    multiplication results (the weighted state estimate) — as the target
    data object.

    Each timestep: predict particle states with an in-program LCG,
    re-weight against a noisy observation, normalize, compute
    [xe = sum w_i x_i] (the vector multiplication), use [xe] to steer the
    proposal and accumulate the tracking error, and resample
    systematically. The ABFT variant re-computes the dot product as two
    checksummed halves and corrects [xe] on mismatch before it is
    consumed — the vector form of the matrix-multiply ABFT [28]. *)

val workload :
  ?particles:int -> ?steps:int -> ?abft:bool -> ?seed:int -> unit ->
  Moard_inject.Workload.t
(** [particles] (default 16), [steps] (default 4), [abft] (default
    false). *)
