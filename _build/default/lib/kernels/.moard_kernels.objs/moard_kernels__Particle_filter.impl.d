lib/kernels/particle_filter.ml: Array Moard_inject Moard_lang Util
