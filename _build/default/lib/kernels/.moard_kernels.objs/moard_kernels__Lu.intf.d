lib/kernels/lu.mli: Moard_inject
