lib/kernels/util.ml: Int64 Moard_lang
