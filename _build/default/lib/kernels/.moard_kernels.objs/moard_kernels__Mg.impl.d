lib/kernels/mg.ml: Array Float List Moard_inject Moard_lang Stdlib Util
