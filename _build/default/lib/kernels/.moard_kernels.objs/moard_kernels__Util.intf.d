lib/kernels/util.mli: Moard_lang
