lib/kernels/amg.ml: Array Float Int32 Int64 List Moard_inject Moard_lang Stdlib Util
