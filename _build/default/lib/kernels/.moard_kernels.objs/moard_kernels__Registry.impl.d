lib/kernels/registry.ml: Abft_mm Amg Bt Cg Format Ft List Lu Lulesh Mg Moard_inject Particle_filter Sp String
