lib/kernels/abft_mm.mli: Moard_inject
