lib/kernels/sp.ml: Array Int32 Moard_inject Moard_lang Util
