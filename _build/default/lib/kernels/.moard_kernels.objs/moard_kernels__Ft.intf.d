lib/kernels/ft.mli: Moard_inject
