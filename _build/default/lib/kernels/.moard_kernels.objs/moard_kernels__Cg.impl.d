lib/kernels/cg.ml: Array Float Int32 Int64 List Moard_inject Moard_lang Util
