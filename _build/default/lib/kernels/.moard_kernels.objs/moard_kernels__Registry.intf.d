lib/kernels/registry.mli: Format Moard_inject
