lib/kernels/bt.mli: Moard_inject
