lib/kernels/ft.ml: Array Float Int64 List Moard_inject Moard_lang Util
