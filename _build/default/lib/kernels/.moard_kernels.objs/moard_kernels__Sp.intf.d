lib/kernels/sp.mli: Moard_inject
