lib/kernels/lu.ml: Array Moard_inject Moard_lang Util
