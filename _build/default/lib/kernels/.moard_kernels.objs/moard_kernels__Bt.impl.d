lib/kernels/bt.ml: Array Int32 Moard_inject Moard_lang Util
