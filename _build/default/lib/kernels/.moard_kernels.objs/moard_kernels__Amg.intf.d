lib/kernels/amg.mli: Moard_inject
