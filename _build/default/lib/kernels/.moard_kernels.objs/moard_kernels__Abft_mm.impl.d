lib/kernels/abft_mm.ml: Array Moard_inject Moard_lang Stdlib Util
