lib/kernels/cg.mli: Moard_inject
