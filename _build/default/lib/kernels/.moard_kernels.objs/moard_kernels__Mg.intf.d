lib/kernels/mg.mli: Moard_inject
