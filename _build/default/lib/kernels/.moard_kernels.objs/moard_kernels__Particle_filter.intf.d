lib/kernels/particle_filter.mli: Moard_inject
