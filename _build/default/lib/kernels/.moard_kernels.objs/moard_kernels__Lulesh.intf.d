lib/kernels/lulesh.mli: Moard_inject
