module Rng = struct
  type t = { mutable state : int64 }

  let make seed = { state = Int64.of_int (seed * 2654435761 + 1) }

  let next t =
    (* splitmix64 *)
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let float t bound =
    let u = Int64.shift_right_logical (next t) 11 in
    Int64.to_float u /. 9007199254740992.0 *. bound

  let int t bound =
    if bound <= 0 then invalid_arg "Rng.int";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1)
        (Int64.of_int bound))
end

open Moard_lang.Ast.Dsl

let idx2 ncols ei ej = (ei * i ncols) + ej

let idx3 n2 n3 ei ej ek = (((ei * i n2) + ej) * i n3) + ek

let idx4 n2 n3 n4 ei ej ek el = ((((ei * i n2) + ej) * i n3 + ek) * i n4) + el
