(** The benchmark inventory — Table I of the paper, plus the §VI case
    studies. Each entry names the evaluated routine and the target data
    objects, and builds the workload at its default miniature size. *)

type entry = {
  benchmark : string;
  description : string;
  routine : string;           (** the code segment of Table I *)
  objects : string list;      (** target data objects *)
  workload : unit -> Moard_inject.Workload.t;
}

val table1 : entry list
(** CG, MG, FT, BT, SP, LU, LULESH, AMG — in the paper's order. *)

val case_studies : entry list
(** MM, ABFT_MM, PF, ABFT_PF (§VI). *)

val all : entry list

val find : string -> entry
(** Look up by benchmark name (case-insensitive). @raise Not_found *)

val pp_table1 : Format.formatter -> unit -> unit
(** Render Table I. *)
