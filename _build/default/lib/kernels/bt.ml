module Ast = Moard_lang.Ast

let ast ~n ~u0 =
  let nm = n * n * n * 5 in
  let open Moard_lang.Ast.Dsl in
  (* Indexes are computed from the problem dimensions held in registers,
     as the compiled benchmark does: u[((k*g1 + j)*g0 + i)*5 + m]. *)
  let idx ek ej ei em = ((((ek * v "g1") + ej) * v "g0" + ei) * i 5) + em in
  let at arr ek ej ei em = arr.%(idx ek ej ei em) in
  let set arr ek ej ei em e = Ast.Sstore (arr, idx ek ej ei em, e) in
  let gp d = "grid_points".%(i d) in
  (* Thomas solve along the x-line (k, j) for component m. Coefficients
     couple neighbouring cells through u, as BT's lhs does. *)
  let x_solve =
    fn "x_solve"
      [
        (* The dimensions are read once and kept in registers (the
           compiler hoists them), so a corrupted value poisons the whole
           solve -- the "input problem definition" role of Table I. *)
        int_ "g0" (gp 0);
        int_ "g1" (gp 1);
        int_ "nx" (v "g0");
        int_ "jmax" (v "g1" - i 1);
        int_ "kmax" (gp 2 - i 1);
        (* BT validates the problem dimensions before solving, as the NPB
           source does; these comparisons tolerate most bit flips. *)
        when_
          (("grid_points".%(i 0) > i 2)
           && ("grid_points".%(i 1) > i 2)
           && ("grid_points".%(i 2) > i 2))
          [
        for_ "k" (i 1) (v "kmax")
          [
            for_ "j" (i 1) (v "jmax")
              [
                for_ "m" (i 0) (i 5)
                  [
                    (* assemble: diag[] strictly dominant, rhs from u *)
                    for_ "t" (i 0) (v "nx")
                      [
                        ("diag".%(v "t") <-
                         f 2.5 + (f 0.1 * at "u" (v "k") (v "j") (v "t") (v "m")));
                        ("rhsv".%(v "t") <- at "u" (v "k") (v "j") (v "t") (v "m"));
                        ("cp".%(v "t") <- f (-1.0));
                      ];
                    (* forward elimination *)
                    ("cp".%(i 0) <- "cp".%(i 0) / "diag".%(i 0));
                    ("rhsv".%(i 0) <- "rhsv".%(i 0) / "diag".%(i 0));
                    for_ "t" (i 1) (v "nx")
                      [
                        flt_ "den"
                          ("diag".%(v "t") + "cp".%(v "t" - i 1));
                        ("cp".%(v "t") <- "cp".%(v "t") / v "den");
                        ("rhsv".%(v "t") <-
                         ("rhsv".%(v "t") + "rhsv".%(v "t" - i 1)) / v "den");
                      ];
                    (* back substitution, writing the line back into u *)
                    set "u" (v "k") (v "j") (v "nx" - i 1) (v "m")
                      ("rhsv".%(v "nx" - i 1));
                    int_ "t2" (v "nx" - i 2);
                    while_
                      (v "t2" >= i 0)
                      [
                        set "u" (v "k") (v "j") (v "t2") (v "m")
                          ("rhsv".%(v "t2")
                           - ("cp".%(v "t2")
                              * at "u" (v "k") (v "j") (v "t2" + i 1) (v "m")));
                        "t2" <-- v "t2" - i 1;
                      ];
                  ];
              ];
          ];
          ];
        (* observe *)
        flt_ "us" (f 0.0);
        int_ "t" (i 0);
        while_
          (v "t" < i nm)
          [ ("us" <-- v "us" + "u".%(v "t")); ("t" <-- v "t" + i 3) ];
        ("out".%(i 0) <- v "us");
        ret_void;
      ]
  in
  let main = fn "main" [ do_ (call "x_solve" []); ret_void ] in
  {
    Ast.globals =
      [
        garr_i32_init "grid_points"
          [| Int32.of_int n; Int32.of_int n; Int32.of_int n |];
        garr_f64_init "u" u0;
        garr_f64 "diag" n;
        garr_f64 "cp" n;
        garr_f64 "rhsv" n;
        garr_f64 "out" 1;
      ];
    funs = [ x_solve; main ];
  }

let workload ?(n = 5) ?(seed = 31) () =
  if n < 4 then invalid_arg "Bt.workload: n";
  let rng = Util.Rng.make seed in
  let nm = n * n * n * 5 in
  let u0 = Array.init nm (fun _ -> 0.5 +. Util.Rng.float rng 1.0) in
  let program = Moard_lang.Compile.program (ast ~n ~u0) in
  Moard_inject.Workload.make ~name:"BT" ~program ~segment:[ "x_solve" ]
    ~targets:[ "grid_points"; "u" ] ~outputs:[ "out" ]
    ~accept:(Moard_inject.Workload.rel_err_accept 1e-3)
    ()
