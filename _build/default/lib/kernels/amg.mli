(** AMG2013 miniature: GMRES(m) with a multigrid-smoother preconditioner
    on an anisotropic grid problem (Table I: routine [hypre_GMRESSolve],
    input matrix aniso; target data objects [ipiv] — the integer pivot
    array of the dense least-squares solve — and [A] — the sparse matrix
    values).

    The matrix is the 5-point stencil of an anisotropic 2D Laplacian in
    CSR form. Each GMRES cycle runs Arnoldi with modified Gram-Schmidt
    (preconditioning each Krylov vector with weighted-Jacobi sweeps, the
    smoother at the heart of the AMG preconditioner), then solves the
    small projected system by normal equations with partially pivoted
    dense LU — the ipiv-consuming phase. *)

val workload :
  ?grid:int -> ?restart:int -> ?cycles:int -> ?seed:int -> unit ->
  Moard_inject.Workload.t
(** [grid]: grid side (default 3, i.e. 9 unknowns); [restart]: Krylov
    dimension m (default 4); [cycles]: GMRES restarts (default 1). *)
