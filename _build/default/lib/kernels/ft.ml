module Ast = Moard_lang.Ast

let log2 n =
  let rec go acc m = if m <= 1 then acc else go (acc + 1) (m asr 1) in
  go 0 n

let bitrev ~bits j =
  let r = ref 0 in
  for b = 0 to bits - 1 do
    if j land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
  done;
  !r

let ast ~n ~init =
  let bits = log2 n in
  let brev = Array.init n (fun j -> Int64.of_int (bitrev ~bits j)) in
  let n2 = 2 * n in
  let nn = n * n in
  let exp1 =
    Array.concat
      (List.init (n / 2) (fun k ->
           let th = -2.0 *. Float.pi *. float_of_int k /. float_of_int n in
           [| cos th; sin th |]))
  in
  let open Moard_lang.Ast.Dsl in
  (* In-place radix-2 FFT of row [row] of the n x n grid: bit-reversal
     permutation, then butterfly stages with twiddles from exp1. *)
  let fft1d =
    fn "fft1d"
      ~params:[ ("row", Ast.Ti64) ]
      [
        int_ "base" (v "row" * i n2);
        (* bit-reversal permutation *)
        for_ "j" (i 0) (i n)
          [
            int_ "rj" ("brev".%(v "j"));
            when_
              (v "j" < v "rj")
              [
                flt_ "tr" ("plane".%(v "base" + (i 2 * v "j")));
                flt_ "ti" ("plane".%(v "base" + (i 2 * v "j") + i 1));
                ("plane".%(v "base" + (i 2 * v "j")) <-
                 "plane".%(v "base" + (i 2 * v "rj")));
                ("plane".%(v "base" + (i 2 * v "j") + i 1) <-
                 "plane".%(v "base" + (i 2 * v "rj") + i 1));
                ("plane".%(v "base" + (i 2 * v "rj")) <- v "tr");
                ("plane".%(v "base" + (i 2 * v "rj") + i 1) <- v "ti");
              ];
          ];
        (* butterfly stages *)
        int_ "len" (i 2);
        while_
          (v "len" <= i n)
          [
            int_ "half" (v "len" / i 2);
            int_ "step" (i n / v "len");
            int_ "start" (i 0);
            while_
              (v "start" < i n)
              [
                for_ "k" (i 0) (v "half")
                  [
                    int_ "tw" (i 2 * (v "k" * v "step"));
                    flt_ "wr" ("exp1".%(v "tw"));
                    flt_ "wi" ("exp1".%(v "tw" + i 1));
                    int_ "p" (v "base" + (i 2 * (v "start" + v "k")));
                    int_ "q" (v "p" + (i 2 * v "half"));
                    flt_ "xr" ("plane".%(v "q"));
                    flt_ "xi" ("plane".%(v "q" + i 1));
                    flt_ "tr2" ((v "wr" * v "xr") - (v "wi" * v "xi"));
                    flt_ "ti2" ((v "wr" * v "xi") + (v "wi" * v "xr"));
                    flt_ "ur" ("plane".%(v "p"));
                    flt_ "ui" ("plane".%(v "p" + i 1));
                    ("plane".%(v "p") <- v "ur" + v "tr2");
                    ("plane".%(v "p" + i 1) <- v "ui" + v "ti2");
                    ("plane".%(v "q") <- v "ur" - v "tr2");
                    ("plane".%(v "q" + i 1) <- v "ui" - v "ti2");
                  ];
                "start" <-- v "start" + v "len";
              ];
            "len" <-- v "len" * i 2;
          ];
        ret_void;
      ]
  in
  let transpose =
    fn "transpose"
      [
        for_ "a" (i 0) (i n)
          [
            for_ "c" (v "a" + i 1) (i n)
              [
                int_ "p" (i 2 * ((v "a" * i n) + v "c"));
                int_ "q" (i 2 * ((v "c" * i n) + v "a"));
                flt_ "tr" ("plane".%(v "p"));
                flt_ "ti" ("plane".%(v "p" + i 1));
                ("plane".%(v "p") <- "plane".%(v "q"));
                ("plane".%(v "p" + i 1) <- "plane".%(v "q" + i 1));
                ("plane".%(v "q") <- v "tr");
                ("plane".%(v "q" + i 1) <- v "ti");
              ];
          ];
        ret_void;
      ]
  in
  let fft_xyz =
    fn "fftXYZ"
      [
        for_ "row" (i 0) (i n) [ do_ (call "fft1d" [ v "row" ]) ];
        do_ (call "transpose" []);
        for_ "row" (i 0) (i n) [ do_ (call "fft1d" [ v "row" ]) ];
        (* NPB-style checksum over scattered points + total energy *)
        flt_ "cr" (f 0.0);
        flt_ "ci" (f 0.0);
        flt_ "en" (f 0.0);
        for_ "j" (i 0) (i nn)
          [
            when_
              (v "j" % i 3 == i 0)
              [
                "cr" <-- v "cr" + "plane".%(i 2 * v "j");
                "ci" <-- v "ci" + "plane".%((i 2 * v "j") + i 1);
              ];
            "en" <--
            v "en"
            + ("plane".%(i 2 * v "j") * "plane".%(i 2 * v "j"))
            + ("plane".%((i 2 * v "j") + i 1) * "plane".%((i 2 * v "j") + i 1));
          ];
        ("out".%(i 0) <- v "cr");
        ("out".%(i 1) <- v "ci");
        ("out".%(i 2) <- v "en");
        ret_void;
      ]
  in
  let main = fn "main" [ do_ (call "fftXYZ" []); ret_void ] in
  {
    Ast.globals =
      [
        garr_f64_init "plane" init;
        garr_f64_init "exp1" exp1;
        garr_i64_init "brev" brev;
        garr_f64 "out" 3;
      ];
    funs = [ fft1d; transpose; fft_xyz; main ];
  }

let workload ?(n = 8) ?(seed = 11) () =
  if n land (n - 1) <> 0 || n < 4 then invalid_arg "Ft.workload: n";
  let rng = Util.Rng.make seed in
  let init =
    Array.init (2 * n * n) (fun _ -> Util.Rng.float rng 2.0 -. 1.0)
  in
  let program = Moard_lang.Compile.program (ast ~n ~init) in
  Moard_inject.Workload.make ~name:"FT" ~program
    ~segment:[ "fftXYZ"; "fft1d"; "transpose" ]
    ~targets:[ "plane"; "exp1" ] ~outputs:[ "out" ]
    ~accept:(Moard_inject.Workload.rel_err_accept 1e-3)
    ()
