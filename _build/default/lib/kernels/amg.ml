module Ast = Moard_lang.Ast

(* 5-point anisotropic Laplacian (eps in y) on a g x g grid, CSR. *)
let build_matrix ~g ~eps =
  let n = g * g in
  let rows = Array.make n [] in
  let idx r c = (r * g) + c in
  for r = 0 to g - 1 do
    for c = 0 to g - 1 do
      let me = idx r c in
      let add j v = rows.(me) <- (j, v) :: rows.(me) in
      add me (2.0 +. (2.0 *. eps));
      if c > 0 then add (idx r (c - 1)) (-1.0);
      if c < g - 1 then add (idx r (c + 1)) (-1.0);
      if r > 0 then add (idx (r - 1) c) (-.eps);
      if r < g - 1 then add (idx (r + 1) c) (-.eps)
    done
  done;
  let arow = Array.make (n + 1) 0L in
  let acol = ref [] and avals = ref [] in
  let pos = ref 0 in
  for j = 0 to n - 1 do
    arow.(j) <- Int64.of_int !pos;
    List.iter
      (fun (c, v) ->
        acol := Int32.of_int c :: !acol;
        avals := v :: !avals;
        incr pos)
      (List.sort compare rows.(j))
  done;
  arow.(n) <- Int64.of_int !pos;
  (arow, Array.of_list (List.rev !acol), Array.of_list (List.rev !avals))

let ast ~n ~m ~cycles ~arow ~acol ~avals ~adiag ~rhs =
  let jacobi_sweeps = 2 in
  let m1 = m + 1 in
  let open Moard_lang.Ast.Dsl in
  let spmv name src_stmt =
    (* w[row] = sum_k A[k] * src[acol[k]] where src access is produced by
       [src_stmt col_expr]. *)
    fn name
      ~params:[ ("joff", Ast.Ti64) ]
      [
        for_ "row" (i 0) (i n)
          [
            flt_ "acc" (f 0.0);
            for_ "k"
              ("arow".%(v "row"))
              ("arow".%(v "row" + i 1))
              [ "acc" <-- v "acc" + ("A".%(v "k") * src_stmt ("acol".%(v "k"))) ];
            ("w".%(v "row") <- v "acc");
          ];
        ret_void;
      ]
  in
  let matvec_v = spmv "matvec_v" (fun col -> "V".%(v "joff" + col)) in
  let matvec_x = spmv "matvec_x" (fun col -> "x".%(col)) in
  (* z = M^-1 w by weighted-Jacobi sweeps (the AMG smoother). *)
  let precond =
    fn "precond"
      [
        for_ "t" (i 0) (i n) [ ("z".%(v "t") <- f 0.0) ];
        for_ "s" (i 0) (i jacobi_sweeps)
          [
            for_ "row" (i 0) (i n)
              [
                flt_ "acc" (f 0.0);
                for_ "k"
                  ("arow".%(v "row"))
                  ("arow".%(v "row" + i 1))
                  [
                    "acc" <-- v "acc" + ("A".%(v "k") * "z".%("acol".%(v "k")));
                  ];
                ("r2".%(v "row") <-
                 ("w".%(v "row") - v "acc") / "adiag".%(v "row"));
              ];
            for_ "row" (i 0) (i n)
              [
                ("z".%(v "row") <-
                 "z".%(v "row") + (f 0.8 * "r2".%(v "row")));
              ];
          ];
        ret_void;
      ]
  in
  (* Dense LU factorization with partial pivoting of G (jdim x jdim,
     leading dimension m), recording pivots in ipiv — the dgetrf role. *)
  let ludcmp =
    fn "ludcmp"
      ~params:[ ("jdim", Ast.Ti64) ]
      [
        for_ "col" (i 0) (v "jdim")
          [
            int_ "piv" (v "col");
            flt_ "amax" (fabs_ ("G".%((v "col" * i m) + v "col")));
            for_ "rr" (v "col" + i 1) (v "jdim")
              [
                when_
                  (fabs_ ("G".%((v "rr" * i m) + v "col")) > v "amax")
                  [
                    "amax" <-- fabs_ ("G".%((v "rr" * i m) + v "col"));
                    "piv" <-- v "rr";
                  ];
              ];
            ("ipiv".%(v "col") <- v "piv");
            when_
              (v "piv" != v "col")
              [
                for_ "cc" (i 0) (i m)
                  [
                    flt_ "tmp" ("G".%((v "col" * i m) + v "cc"));
                    ("G".%((v "col" * i m) + v "cc") <-
                     "G".%((v "piv" * i m) + v "cc"));
                    ("G".%((v "piv" * i m) + v "cc") <- v "tmp");
                  ];
              ];
            for_ "rr" (v "col" + i 1) (v "jdim")
              [
                flt_ "fac"
                  ("G".%((v "rr" * i m) + v "col")
                   / "G".%((v "col" * i m) + v "col"));
                ("G".%((v "rr" * i m) + v "col") <- v "fac");
                for_ "cc" (v "col" + i 1) (v "jdim")
                  [
                    ("G".%((v "rr" * i m) + v "cc") <-
                     "G".%((v "rr" * i m) + v "cc")
                     - (v "fac" * "G".%((v "col" * i m) + v "cc")));
                  ];
              ];
          ];
        ret_void;
      ]
  in
  (* Solve using the factors and ipiv (the dgetrs role): permute gv,
     forward-substitute with the stored multipliers, back-substitute. *)
  let lusolve =
    fn "lusolve"
      ~params:[ ("jdim", Ast.Ti64) ]
      [
        for_ "col" (i 0) (v "jdim")
          [
            int_ "piv" ("ipiv".%(v "col"));
            when_
              (v "piv" != v "col")
              [
                flt_ "tmp" ("gv".%(v "col"));
                ("gv".%(v "col") <- "gv".%(v "piv"));
                ("gv".%(v "piv") <- v "tmp");
              ];
          ];
        for_ "rr" (i 1) (v "jdim")
          [
            for_ "cc" (i 0) (v "rr")
              [
                ("gv".%(v "rr") <-
                 "gv".%(v "rr") - ("G".%((v "rr" * i m) + v "cc") * "gv".%(v "cc")));
              ];
          ];
        int_ "rr2" (v "jdim" - i 1);
        while_
          (v "rr2" >= i 0)
          [
            flt_ "acc" ("gv".%(v "rr2"));
            for_ "cc" (v "rr2" + i 1) (v "jdim")
              [
                "acc" <--
                v "acc" - ("G".%((v "rr2" * i m) + v "cc") * "y".%(v "cc"));
              ];
            ("y".%(v "rr2") <- v "acc" / "G".%((v "rr2" * i m) + v "rr2"));
            "rr2" <-- v "rr2" - i 1;
          ];
        ret_void;
      ]
  in
  let gmres =
    fn "hypre_GMRESSolve"
      [
        for_ "cyc" (i 0) (i cycles)
          [
            (* r = M^-1 (b - A x) *)
            do_ (call "matvec_x" [ i 0 ]);
            for_ "t" (i 0) (i n) [ ("w".%(v "t") <- "b".%(v "t") - "w".%(v "t")) ];
            do_ (call "precond" []);
            flt_ "beta" (f 0.0);
            for_ "t" (i 0) (i n)
              [ "beta" <-- v "beta" + ("z".%(v "t") * "z".%(v "t")) ];
            ("beta" <-- sqrt_ (v "beta"));
            when_
              (v "beta" > f 1e-12)
              [
                for_ "t" (i 0) (i n) [ ("V".%(v "t") <- "z".%(v "t") / v "beta") ];
                (* Arnoldi with modified Gram-Schmidt *)
                for_ "j" (i 0) (i m)
                  [
                    do_ (call "matvec_v" [ v "j" * i n ]);
                    do_ (call "precond" []);
                    for_ "t" (i 0) (i n) [ ("w".%(v "t") <- "z".%(v "t")) ];
                    for_ "tt" (i 0)
                      (v "j" + i 1)
                      [
                        flt_ "hij" (f 0.0);
                        for_ "t" (i 0) (i n)
                          [
                            "hij" <--
                            v "hij" + ("w".%(v "t") * "V".%((v "tt" * i n) + v "t"));
                          ];
                        ("hh".%((v "tt" * i m) + v "j") <- v "hij");
                        for_ "t" (i 0) (i n)
                          [
                            ("w".%(v "t") <-
                             "w".%(v "t") - (v "hij" * "V".%((v "tt" * i n) + v "t")));
                          ];
                      ];
                    flt_ "hn" (f 0.0);
                    for_ "t" (i 0) (i n)
                      [ "hn" <-- v "hn" + ("w".%(v "t") * "w".%(v "t")) ];
                    ("hn" <-- sqrt_ (v "hn"));
                    ("hh".%(((v "j" + i 1) * i m) + v "j") <- v "hn");
                    when_
                      (v "hn" > f 1e-14)
                      [
                        for_ "t" (i 0) (i n)
                          [
                            ("V".%(((v "j" + i 1) * i n) + v "t") <-
                             "w".%(v "t") / v "hn");
                          ];
                      ];
                  ];
                (* normal equations G y = gv of the projected LS problem *)
                for_ "rr" (i 0) (i m)
                  [
                    ("gv".%(v "rr") <- v "beta" * "hh".%(v "rr"));
                    for_ "cc" (i 0) (i m)
                      [
                        flt_ "acc" (f 0.0);
                        for_ "t" (i 0) (i m1)
                          [
                            "acc" <--
                            v "acc"
                            + ("hh".%((v "t" * i m) + v "rr")
                               * "hh".%((v "t" * i m) + v "cc"));
                          ];
                        ("G".%((v "rr" * i m) + v "cc") <- v "acc");
                      ];
                  ];
                do_ (call "ludcmp" [ i m ]);
                do_ (call "lusolve" [ i m ]);
                (* x += V y *)
                for_ "t" (i 0) (i n)
                  [
                    flt_ "acc" (f 0.0);
                    for_ "j" (i 0) (i m)
                      [
                        "acc" <--
                        v "acc" + ("y".%(v "j") * "V".%((v "j" * i n) + v "t"));
                      ];
                    ("x".%(v "t") <- "x".%(v "t") + v "acc");
                  ];
              ];
          ];
        (* final true residual *)
        do_ (call "matvec_x" [ i 0 ]);
        flt_ "rn" (f 0.0);
        flt_ "xs" (f 0.0);
        for_ "t" (i 0) (i n)
          [
            flt_ "d" ("b".%(v "t") - "w".%(v "t"));
            "rn" <-- v "rn" + (v "d" * v "d");
            "xs" <-- v "xs" + "x".%(v "t");
          ];
        ("out".%(i 0) <- sqrt_ (v "rn"));
        ("out".%(i 1) <- v "xs");
        ret_void;
      ]
  in
  let main = fn "main" [ do_ (call "hypre_GMRESSolve" []); ret_void ] in
  {
    Ast.globals =
      [
        garr_i64_init "arow" arow;
        garr_i32_init "acol" acol;
        garr_f64_init "A" avals;
        garr_f64_init "adiag" adiag;
        garr_f64_init "b" rhs;
        garr_f64 "x" n;
        garr_f64 "w" n;
        garr_f64 "z" n;
        garr_f64 "r2" n;
        garr_f64 "V" (Stdlib.( * ) m1 n);
        garr_f64 "hh" (Stdlib.( * ) m1 m);
        garr_f64 "G" (Stdlib.( * ) m m);
        garr_f64 "gv" m;
        garr_f64 "y" m;
        garr_i32 "ipiv" m;
        garr_f64 "out" 2;
      ];
    funs = [ matvec_v; matvec_x; precond; ludcmp; lusolve; gmres; main ];
  }

let workload ?(grid = 3) ?(restart = 4) ?(cycles = 1) ?(seed = 53) () =
  if grid < 3 then invalid_arg "Amg.workload: grid";
  let n = grid * grid in
  let arow, acol, avals = build_matrix ~g:grid ~eps:0.1 in
  let adiag = Array.make n (2.0 +. 0.2) in
  let rng = Util.Rng.make seed in
  let rhs = Array.init n (fun _ -> Util.Rng.float rng 1.0 +. 0.1) in
  let program =
    Moard_lang.Compile.program
      (ast ~n ~m:restart ~cycles ~arow ~acol ~avals ~adiag ~rhs)
  in
  (* Accept when the run still converged (residual within 4x golden) and
     the solution checksum agrees to 2%. *)
  let accept ~golden ~faulty =
    Array.length faulty = 2
    && Float.is_finite faulty.(0)
    && Float.is_finite faulty.(1)
    && faulty.(0) <= Float.max (4.0 *. golden.(0)) 1e-8
    && Float.abs (faulty.(1) -. golden.(1))
       <= 0.02 *. Float.max (Float.abs golden.(1)) 1e-30
  in
  Moard_inject.Workload.make ~name:"AMG" ~program
    ~segment:
      [ "hypre_GMRESSolve"; "matvec_v"; "matvec_x"; "precond"; "ludcmp";
        "lusolve" ]
    ~targets:[ "ipiv"; "A" ] ~outputs:[ "out" ] ~accept ()
