module Ast = Moard_lang.Ast

(* Packed level offsets: level l occupies [off.(l) .. off.(l) + n_l] with
   n_l = n lsr l (points 0..n_l, Dirichlet ends pinned to zero). *)
let layout ~n ~levels =
  let off = Array.make levels 0 in
  let size = Array.make levels 0 in
  let pos = ref 0 in
  for l = 0 to levels - 1 do
    off.(l) <- !pos;
    size.(l) <- n lsr l;
    pos := !pos + (n lsr l) + 1
  done;
  (off, size, !pos)

let ast ~n ~levels ~cycles ~rhs0 =
  let off, size, total = layout ~n ~levels in
  let sizes_p1 = Array.map succ size in
  let open Moard_lang.Ast.Dsl in
  let coarse_sweeps = 6 and fine_sweeps = 2 in
  let omega = 2.0 /. 3.0 in
  (* r[orr + j] = rhs[orhs + j] - (2 u[ou+j] - u[ou+j-1] - u[ou+j+1]) *)
  let resid =
    fn "resid"
      ~params:[ ("ou", Ast.Ti64); ("orhs", Ast.Ti64); ("orr", Ast.Ti64);
                ("m", Ast.Ti64) ]
      [
        for_ "j" (i 1) (v "m")
          [
            ("r".%(v "orr" + v "j") <-
             "rhs".%(v "orhs" + v "j")
             - ((f 2.0 * "u".%(v "ou" + v "j"))
                - "u".%(v "ou" + v "j" - i 1)
                - "u".%(v "ou" + v "j" + i 1)));
          ];
        ret_void;
      ]
  in
  (* Weighted-Jacobi smoothing: u += omega/2 * (rhs - A u), using r as the
     scratch residual (the NPB psinv role). *)
  let psinv =
    fn "psinv"
      ~params:[ ("ou", Ast.Ti64); ("orhs", Ast.Ti64); ("orr", Ast.Ti64);
                ("m", Ast.Ti64); ("sweeps", Ast.Ti64) ]
      [
        for_ "s" (i 0) (v "sweeps")
          [
            do_ (call "resid" [ v "ou"; v "orhs"; v "orr"; v "m" ]);
            for_ "j" (i 1) (v "m")
              [
                ("u".%(v "ou" + v "j") <-
                 "u".%(v "ou" + v "j")
                 + (f (omega /. 2.0) * "r".%(v "orr" + v "j")));
              ];
          ];
        ret_void;
      ]
  in
  (* rhs_{l+1} = full-weighting restriction of r_l. *)
  let rprj3 =
    fn "rprj3"
      ~params:[ ("orr", Ast.Ti64); ("orhs", Ast.Ti64); ("mc", Ast.Ti64) ]
      [
        for_ "j" (i 1) (v "mc")
          [
            (* Full weighting carrying the coarse-grid h^2 rescaling of the
               unscaled stencil (weights sum to 4 = (h_c/h_f)^2 * 1). *)
            ("rhs".%(v "orhs" + v "j") <-
             "r".%(v "orr" + (i 2 * v "j") - i 1)
             + (f 2.0 * "r".%(v "orr" + (i 2 * v "j")))
             + "r".%(v "orr" + (i 2 * v "j") + i 1));
          ];
        ret_void;
      ]
  in
  (* u_l += linear interpolation of the coarse correction u_{l+1}. *)
  let interp =
    fn "interp"
      ~params:[ ("ouf", Ast.Ti64); ("ouc", Ast.Ti64); ("mc", Ast.Ti64) ]
      [
        for_ "j" (i 0) (v "mc")
          [
            ("u".%(v "ouf" + (i 2 * v "j")) <-
             "u".%(v "ouf" + (i 2 * v "j")) + "u".%(v "ouc" + v "j"));
            ("u".%(v "ouf" + (i 2 * v "j") + i 1) <-
             "u".%(v "ouf" + (i 2 * v "j") + i 1)
             + (f 0.5 * ("u".%(v "ouc" + v "j") + "u".%(v "ouc" + v "j" + i 1))));
          ];
        ret_void;
      ]
  in
  (* The V-cycle is laid out explicitly per level (offsets are compile-time
     constants, as in the NPB source where the level arrays are distinct). *)
  let vcycle =
    let stmts = ref [] in
    let push s = stmts := s :: !stmts in
    (* down sweep *)
    push (do_ (call "resid" [ i off.(0); i off.(0); i off.(0); i size.(0) ]));
    for l = 0 to Stdlib.(levels - 2) do
      push (do_ (call "rprj3" [ i off.(l); i off.(succ l); i size.(succ l) ]));
      (* zero the coarse solution *)
      push
        (for_ "j" (i 0)
           (i sizes_p1.(succ l))
           [ ("u".%(i off.(succ l) + v "j") <- f 0.0) ]);
      if Stdlib.(l + 1 < levels - 1) then
        push
          (do_
             (call "resid"
                [ i off.(succ l); i off.(succ l); i off.(succ l); i size.(succ l) ]))
    done;
    (* coarsest solve *)
    let lc = Stdlib.(levels - 1) in
    push
      (do_
         (call "psinv"
            [ i off.(lc); i off.(lc); i off.(lc); i size.(lc); i coarse_sweeps ]));
    (* up sweep *)
    for l = Stdlib.(levels - 2) downto 0 do
      push (do_ (call "interp" [ i off.(l); i off.(succ l); i size.(succ l) ]));
      push
        (do_
           (call "psinv"
              [ i off.(l); i off.(l); i off.(l); i size.(l); i fine_sweeps ]))
    done;
    List.rev !stmts
  in
  let mg3p =
    fn "mg3P"
      ([ int_ "cyc" (i 0) ]
      @ [ while_ (v "cyc" < i cycles)
            (vcycle @ [ "cyc" <-- v "cyc" + i 1 ]) ]
      @ [
          do_ (call "resid" [ i off.(0); i off.(0); i off.(0); i size.(0) ]);
          flt_ "rn" (f 0.0);
          flt_ "us" (f 0.0);
          for_ "j" (i 1) (i size.(0))
            [
              "rn" <-- v "rn" + ("r".%(v "j") * "r".%(v "j"));
              "us" <-- v "us" + "u".%(v "j");
            ];
          ("out".%(i 0) <- sqrt_ (v "rn"));
          ("out".%(i 1) <- v "us");
          ret_void;
        ])
  in
  let main = fn "main" [ do_ (call "mg3P" []); ret_void ] in
  {
    Ast.globals =
      [
        garr_f64 "u" total;
        garr_f64 "r" total;
        garr_f64_init "rhs"
          (Array.append rhs0 (Array.make Stdlib.(total - Array.length rhs0) 0.0));
        garr_f64 "out" 2;
      ];
    funs = [ resid; psinv; rprj3; interp; mg3p; main ];
  }

let workload ?(n = 16) ?(levels = 3) ?(cycles = 2) ?(seed = 7) () =
  if n lsr (levels - 1) < 2 then invalid_arg "Mg.workload: too many levels";
  let rng = Util.Rng.make seed in
  let rhs0 =
    Array.init (n + 1) (fun j ->
        if j = 0 || j = n then 0.0
        else
          sin (Float.pi *. float_of_int j /. float_of_int n)
          +. (0.1 *. Util.Rng.float rng 1.0))
  in
  let program = Moard_lang.Compile.program (ast ~n ~levels ~cycles ~rhs0) in
  (* The residual norm is near zero, so relative comparison on it is
     meaningless; accept when the faulty run still reduced the residual to
     within 4x the golden one and the solution checksum agrees to 2%. *)
  let accept ~golden ~faulty =
    Array.length faulty = 2
    && Float.is_finite faulty.(0)
    && Float.is_finite faulty.(1)
    && faulty.(0) <= Float.max (4.0 *. golden.(0)) 1e-6
    && Float.abs (faulty.(1) -. golden.(1))
       <= 0.02 *. Float.max (Float.abs golden.(1)) 1e-30
  in
  Moard_inject.Workload.make ~name:"MG" ~program
    ~segment:[ "mg3P"; "resid"; "psinv"; "rprj3"; "interp" ]
    ~targets:[ "u"; "r" ] ~outputs:[ "out" ] ~accept ()
