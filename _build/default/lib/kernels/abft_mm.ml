module Ast = Moard_lang.Ast

let ast ~n ~abft ~a0 ~b0 =
  (* With ABFT the working dimension includes the checksum row/column. *)
  let d = if abft then n + 1 else n in
  let dd = d * d in
  let neg1 = -1 in
  let open Moard_lang.Ast.Dsl in
  let at arr er ec = arr.%(Util.idx2 d er ec) in
  let set arr er ec e = Ast.Sstore (arr, Util.idx2 d er ec, e) in
  let encode =
    (* Fill A's checksum row (column sums) and B's checksum column. *)
    fn "encode"
      [
        for_ "c" (i 0) (i n)
          [
            flt_ "s" (f 0.0);
            for_ "r" (i 0) (i n) [ "s" <-- v "s" + at "Am" (v "r") (v "c") ];
            set "Am" (i n) (v "c") (v "s");
          ];
        for_ "r" (i 0) (i n)
          [
            flt_ "s" (f 0.0);
            for_ "c" (i 0) (i n) [ "s" <-- v "s" + at "Bm" (v "r") (v "c") ];
            set "Bm" (v "r") (i n) (v "s");
          ];
        ret_void;
      ]
  in
  let init_c =
    fn "init_c" [ for_ "t" (i 0) (i dd) [ ("C".%(v "t") <- f 0.0) ]; ret_void ]
  in
  let mm =
    (* Accumulation directly in C, as in the reference triple loop: every
       k-step is a read-modify-write of the product element. *)
    fn "mm"
      [
        for_ "r" (i 0) (i d)
          [
            for_ "k" (i 0) (i d)
              [
                flt_ "arK" (at "Am" (v "r") (v "k"));
                for_ "c" (i 0) (i d)
                  [
                    set "C" (v "r") (v "c")
                      (at "C" (v "r") (v "c")
                       + (v "arK" * at "Bm" (v "k") (v "c")));
                  ];
              ];
          ];
        ret_void;
      ]
  in
  (* Verification: a row and a column whose sums disagree with their
     checksums locate a single corrupted element; the checksum residue
     corrects it (Wu et al. [28]). *)
  let verify =
    fn "verify"
      [
        int_ "badr" (i neg1);
        for_ "r" (i 0) (i n)
          [
            flt_ "s" (f 0.0);
            for_ "c" (i 0) (i n) [ "s" <-- v "s" + at "C" (v "r") (v "c") ];
            when_
              (fabs_ (at "C" (v "r") (i n) - v "s") > f 1e-13)
              [ "badr" <-- v "r" ];
          ];
        int_ "badc" (i neg1);
        for_ "c" (i 0) (i n)
          [
            flt_ "s" (f 0.0);
            for_ "r" (i 0) (i n) [ "s" <-- v "s" + at "C" (v "r") (v "c") ];
            when_
              (fabs_ (at "C" (i n) (v "c") - v "s") > f 1e-13)
              [ "badc" <-- v "c" ];
          ];
        when_
          ((v "badr" >= i 0) && (v "badc" >= i 0))
          [
            (* Correct by recomputing the located element in the original
               accumulation order: bit-identical to the fault-free value. *)
            flt_ "s" (f 0.0);
            for_ "k" (i 0) (i d)
              [
                "s" <--
                v "s" + (at "Am" (v "badr") (v "k") * at "Bm" (v "k") (v "badc"));
              ];
            set "C" (v "badr") (v "badc") (v "s");
          ];
        ret_void;
      ]
  in
  let observe =
    (* The application outcome is the data part of the product itself
       (elementwise numerical integrity), plus a checksum for reporting. *)
    fn "observe"
      [
        flt_ "cs" (f 0.0);
        for_ "r" (i 0) (i n)
          [
            for_ "c" (i 0) (i n)
              [
                ("Cout".%(Util.idx2 n (v "r") (v "c")) <-
                 at "C" (v "r") (v "c"));
                "cs" <-- v "cs" + at "C" (v "r") (v "c");
              ];
          ];
        ("out".%(i 0) <- v "cs");
        ret_void;
      ]
  in
  let main_body =
    if abft then
      [ do_ (call "init_c" []); do_ (call "encode" []); do_ (call "mm" []);
        do_ (call "verify" []); do_ (call "observe" []); ret_void ]
    else
      [ do_ (call "init_c" []); do_ (call "mm" []); do_ (call "observe" []);
        ret_void ]
  in
  let main = fn "main" main_body in
  let pad m0 =
    (* Host matrices are n x n; embed into d x d working arrays. *)
    Array.init dd (fun t ->
        let r = Stdlib.( / ) t d and c = Stdlib.(mod) t d in
        if Stdlib.(r < n && c < n) then m0.(Stdlib.(r * n + c)) else 0.0)
  in

  {
    Ast.globals =
      [
        garr_f64_init "Am" (pad a0);
        garr_f64_init "Bm" (pad b0);
        garr_f64 "C" dd;
        garr_f64 "Cout" (Stdlib.( * ) n n);
        garr_f64 "out" 1;
      ];
    funs =
      (if abft then [ init_c; encode; mm; verify; observe; main ]
       else [ init_c; mm; observe; main ]);
  }

let workload ?(n = 6) ?(abft = false) ?(seed = 61) () =
  if n < 2 then invalid_arg "Abft_mm.workload: n";
  let rng = Util.Rng.make seed in
  let a0 = Array.init (n * n) (fun _ -> 0.5 +. Util.Rng.float rng 1.0) in
  let b0 = Array.init (n * n) (fun _ -> 0.5 +. Util.Rng.float rng 1.0) in
  let program = Moard_lang.Compile.program (ast ~n ~abft ~a0 ~b0) in
  let segment =
    if abft then [ "mm"; "verify"; "observe" ] else [ "mm"; "observe" ]
  in
  (* Matrix multiplication's correctness notion is precise numerical
     integrity (paper §II-A): only a bit-identical product is correct, so
     acceptance adds nothing beyond the numerically-same check. *)
  Moard_inject.Workload.make
    ~name:(if abft then "ABFT_MM" else "MM")
    ~program ~segment ~targets:[ "C" ] ~outputs:[ "Cout"; "out" ]
    ~accept:(fun ~golden:_ ~faulty:_ -> false)
    ()
