(** NPB CG miniature: conjugate gradient with irregular memory access over
    a CSR sparse matrix (Table I: routine [conj_grad] in the main loop;
    target data objects [r] (f64 residual vector) and [colidx] (i32 column
    index array)). *)

val workload :
  ?n:int -> ?row_nnz:int -> ?iters:int -> ?seed:int -> ?tmr_colidx:bool ->
  unit -> Moard_inject.Workload.t
(** [n]: unknowns (default 18), [row_nnz]: off-diagonal entries per row
    (default 3), [iters]: CG iterations (default 4). The matrix is
    symmetric positive definite (diagonally dominant). Outputs: the final
    residual norm and the solution self-product; acceptance tolerates 1%
    relative deviation, the iterative solver's own fidelity notion.

    [tmr_colidx] replicates the vulnerable column-index array three times
    and majority-votes every access — the selective protection an aDVF
    analysis directs you to (the intro's motivating use case). *)
