module Ast = Moard_lang.Ast

let ast ~n ~itmax ~u0 ~frct =
  let nm = n * n * n * 5 in
  let nm1 = n - 1 in
  let nm2 = n - 2 in
  let interior = float_of_int ((n - 2) * (n - 2) * (n - 2)) in
  let omega = 1.2 in
  let open Moard_lang.Ast.Dsl in
  let at arr ek ej ei em = arr.%(Util.idx4 n n 5 ek ej ei em) in
  let set arr ek ej ei em e = Ast.Sstore (arr, Util.idx4 n n 5 ek ej ei em, e) in
  (* The paper's Listing 2: l2norm of rsd into sum[5]. *)
  let l2norm =
    fn "l2norm"
      [
        for_ "m" (i 0) (i 5) [ ("sum".%(v "m") <- f 0.0) ];
        for_ "k" (i 1)
          (i nm1)
          [
            for_ "j" (i 1)
              (i nm1)
              [
                for_ "i" (i 1)
                  (i nm1)
                  [
                    for_ "m" (i 0) (i 5)
                      [
                        ("sum".%(v "m") <-
                         "sum".%(v "m")
                         + (at "rsd" (v "k") (v "j") (v "i") (v "m")
                            * at "rsd" (v "k") (v "j") (v "i") (v "m")));
                      ];
                  ];
              ];
          ];
        for_ "m" (i 0) (i 5)
          [
            ("sum".%(v "m") <-
             sqrt_ ("sum".%(v "m") / f interior));
          ];
        ret_void;
      ]
  in
  (* Residual of the 7-point coupling: rsd = frct - (c1 u - c2 sum(neighbors)). *)
  let rhs =
    fn "rhs"
      [
        for_ "k" (i 1)
          (i nm1)
          [
            for_ "j" (i 1)
              (i nm1)
              [
                for_ "i" (i 1)
                  (i nm1)
                  [
                    for_ "m" (i 0) (i 5)
                      [
                        set "rsd" (v "k") (v "j") (v "i") (v "m")
                          (at "frct" (v "k") (v "j") (v "i") (v "m")
                         - ((f 2.2 * at "u" (v "k") (v "j") (v "i") (v "m"))
                            - (f 0.3
                               * (at "u" (v "k" - i 1) (v "j") (v "i") (v "m")
                                  + at "u" (v "k" + i 1) (v "j") (v "i") (v "m")
                                  + at "u" (v "k") (v "j" - i 1) (v "i") (v "m")
                                  + at "u" (v "k") (v "j" + i 1) (v "i") (v "m")
                                  + at "u" (v "k") (v "j") (v "i" - i 1) (v "m")
                                  + at "u" (v "k") (v "j") (v "i" + i 1) (v "m")))));
                      ];
                  ];
              ];
          ];
        ret_void;
      ]
  in
  (* Forward triangular sweep (the blts role): ascending Gauss-Seidel
     over the lower couplings, updating rsd in place. *)
  let blts =
    fn "blts"
      [
        for_ "k" (i 1) (i nm1)
          [
            for_ "j" (i 1) (i nm1)
              [
                for_ "i" (i 1) (i nm1)
                  [
                    for_ "m" (i 0) (i 5)
                      [
                        set "rsd" (v "k") (v "j") (v "i") (v "m")
                          ((at "rsd" (v "k") (v "j") (v "i") (v "m")
                            + (f 0.3
                               * (at "rsd" (v "k" - i 1) (v "j") (v "i") (v "m")
                                  + at "rsd" (v "k") (v "j" - i 1) (v "i") (v "m")
                                  + at "rsd" (v "k") (v "j") (v "i" - i 1) (v "m"))))
                           / f 2.2);
                      ];
                  ];
              ];
          ];
        ret_void;
      ]
  in
  (* Backward triangular sweep (the buts role): descending over the upper
     couplings. *)
  let buts =
    fn "buts"
      [
        int_ "k" (i nm2);
        while_
          (v "k" >= i 1)
          [
            int_ "j" (i nm2);
            while_
              (v "j" >= i 1)
              [
                int_ "i2" (i nm2);
                while_
                  (v "i2" >= i 1)
                  [
                    for_ "m" (i 0) (i 5)
                      [
                        set "rsd" (v "k") (v "j") (v "i2") (v "m")
                          (at "rsd" (v "k") (v "j") (v "i2") (v "m")
                           + (f (0.3 /. 2.2)
                              * (at "rsd" (v "k" + i 1) (v "j") (v "i2") (v "m")
                                 + at "rsd" (v "k") (v "j" + i 1) (v "i2") (v "m")
                                 + at "rsd" (v "k") (v "j") (v "i2" + i 1) (v "m"))));
                      ];
                    "i2" <-- v "i2" - i 1;
                  ];
                "j" <-- v "j" - i 1;
              ];
            "k" <-- v "k" - i 1;
          ];
        ret_void;
      ]
  in
  let ssor =
    fn "ssor"
      [
        for_ "istep" (i 0) (i itmax)
          [
            do_ (call "rhs" []);
            do_ (call "blts" []);
            do_ (call "buts" []);
            (* u += omega * the doubly-swept correction *)
            for_ "k" (i 1)
              (i nm1)
              [
                for_ "j" (i 1)
                  (i nm1)
                  [
                    for_ "i" (i 1)
                      (i nm1)
                      [
                        for_ "m" (i 0) (i 5)
                          [
                            set "u" (v "k") (v "j") (v "i") (v "m")
                              (at "u" (v "k") (v "j") (v "i") (v "m")
                               + (f omega
                                  * at "rsd" (v "k") (v "j") (v "i") (v "m")));
                          ];
                      ];
                  ];
              ];
            do_ (call "l2norm" []);
          ];
        flt_ "us" (f 0.0);
        int_ "t" (i 0);
        while_
          (v "t" < i nm)
          [ ("us" <-- v "us" + "u".%(v "t")); ("t" <-- v "t" + i 7) ];
        for_ "m" (i 0) (i 5) [ ("out".%(v "m") <- "sum".%(v "m")) ];
        ("out".%(i 5) <- v "us");
        ret_void;
      ]
  in
  let main = fn "main" [ do_ (call "ssor" []); ret_void ] in
  {
    Ast.globals =
      [
        garr_f64_init "u" u0;
        garr_f64 "rsd" nm;
        garr_f64_init "frct" frct;
        garr_f64 "sum" 5;
        garr_f64 "out" 6;
      ];
    funs = [ l2norm; rhs; blts; buts; ssor; main ];
  }

let workload ?(n = 4) ?(itmax = 2) ?(seed = 23) () =
  if n < 4 then invalid_arg "Lu.workload: n";
  let rng = Util.Rng.make seed in
  let nm = n * n * n * 5 in
  let u0 = Array.init nm (fun _ -> Util.Rng.float rng 1.0) in
  let frct = Array.init nm (fun _ -> Util.Rng.float rng 0.5) in
  let program = Moard_lang.Compile.program (ast ~n ~itmax ~u0 ~frct) in
  Moard_inject.Workload.make ~name:"LU" ~program
    ~segment:[ "ssor"; "rhs"; "blts"; "buts"; "l2norm" ]
    ~targets:[ "u"; "rsd" ] ~outputs:[ "out" ]
    ~accept:(Moard_inject.Workload.rel_err_accept 1e-2)
    ()
