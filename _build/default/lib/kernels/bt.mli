(** NPB BT miniature: tridiagonal solver along x-lines of a 3D grid
    (Table I: routine [x_solve]; target data objects [grid_points] — the
    i32 array of problem dimensions that drives every loop bound — and
    [u], the 5-component solution array).

    Each (k, j) line assembles tridiagonal coefficients from [u] and
    solves by the Thomas algorithm, writing the solution back into [u].
    [grid_points] defines the input problem exactly as in BT, which is why
    its corruption causes the major computation changes the paper observes
    (aDVF 0.38). *)

val workload : ?n:int -> ?seed:int -> unit -> Moard_inject.Workload.t
(** [n]: grid points per dimension (default 5). *)
