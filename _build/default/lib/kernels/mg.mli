(** NPB MG miniature: V-cycle multigrid on a sequence of meshes (Table I:
    routine [mg3P]; target data objects [u] and [r], both f64).

    The paper's 3D grid is reduced to 1D Poisson with the same multilevel
    structure — restriction, coarse smoothing, interpolation, fine
    smoothing — because the averaging across levels is what gives MG its
    algorithm-level masking (19% of u's aDVF in the paper). All levels of
    [u], [r] and the per-level right-hand sides live packed in single
    arrays, as in NPB. *)

val workload :
  ?n:int -> ?levels:int -> ?cycles:int -> ?seed:int -> unit ->
  Moard_inject.Workload.t
(** [n]: finest interior size, a power of two (default 16); [levels]
    (default 3); [cycles]: V-cycles (default 2). *)
