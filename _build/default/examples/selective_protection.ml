(* Selective protection directed by aDVF — the workflow the paper's
   introduction motivates: quantify per-object resilience, protect only
   what needs it, and verify the protection with the same model.

   CG's colidx (sparse-matrix column indexes) is the vulnerable object;
   the protection is triple modular redundancy with a bitwise majority
   vote at every access.

     dune exec examples/selective_protection.exe *)

let analyze ?(tmr = false) obj =
  let w = Moard_kernels.Cg.workload ~n:12 ~iters:3 ~tmr_colidx:tmr () in
  let ctx = Moard_inject.Context.make w in
  let r = Moard_core.Model.analyze ctx ~object_name:obj in
  (r, Moard_inject.Context.golden_steps ctx)

let () =
  (* 1. Triage: which CG object needs protection? *)
  let r_rep, base_steps = analyze "r" in
  let c_rep, _ = analyze "colidx" in
  Printf.printf "unprotected CG:   r aDVF %.4f   colidx aDVF %.4f\n"
    r_rep.Moard_core.Advf.advf c_rep.Moard_core.Advf.advf;
  Printf.printf "=> colidx is the object worth paying for.\n\n";

  (* 2. Protect colidx with TMR + majority vote, re-run the analysis. *)
  let c_tmr, tmr_steps = analyze ~tmr:true "colidx" in
  let r_tmr, _ = analyze ~tmr:true "r" in
  Printf.printf "with TMR colidx:  r aDVF %.4f   colidx aDVF %.4f\n"
    r_tmr.Moard_core.Advf.advf c_tmr.Moard_core.Advf.advf;

  (* 3. The model verifies the mechanism and prices it. *)
  Printf.printf
    "\nTMR lifts colidx from %.4f to %.4f at %+.1f%% dynamic instructions\n\
     (r is untouched) -- protection applied exactly where aDVF said.\n"
    c_rep.Moard_core.Advf.advf c_tmr.Moard_core.Advf.advf
    (100.0
     *. (float_of_int tmr_steps -. float_of_int base_steps)
     /. float_of_int base_steps);
  assert (c_tmr.Moard_core.Advf.advf > c_rep.Moard_core.Advf.advf +. 0.3)
