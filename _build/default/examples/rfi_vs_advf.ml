(* Why aDVF instead of random fault injection (paper §V-C): RFI estimates
   move with the campaign size and flip rank orders between equal-sized
   data objects; the model's answer never changes.

     dune exec examples/rfi_vs_advf.exe *)

let () =
  let ctx = Moard_inject.Context.make (Moard_kernels.Lulesh.workload ()) in
  let objs = [ "m_x"; "m_y"; "m_z" ] in
  Printf.printf "%-8s %s\n" "tests"
    (String.concat "  " (List.map (Printf.sprintf "%-16s") objs));
  List.iteri
    (fun si tests ->
      Printf.printf "%-8d" tests;
      List.iteri
        (fun oi obj ->
          let r =
            Moard_inject.Random_fi.campaign ~use_cache:true
              ~seed:(77 + (si * 3) + oi)
              ~tests ctx ~object_name:obj
          in
          Printf.printf " %6.3f +/- %5.3f  "
            r.Moard_inject.Random_fi.success_rate
            r.Moard_inject.Random_fi.margin_95)
        objs;
      print_newline ())
    [ 250; 500; 1000 ];
  Printf.printf "%-8s" "aDVF";
  List.iter
    (fun obj ->
      let r = Moard_core.Model.analyze ctx ~object_name:obj in
      Printf.printf " %6.3f (exact)   " r.Moard_core.Advf.advf)
    objs;
  print_newline ();
  Printf.printf
    "\nEvery aDVF row is identical on every rerun; the RFI rows are not.\n"
