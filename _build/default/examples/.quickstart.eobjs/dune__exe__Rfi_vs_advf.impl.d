examples/rfi_vs_advf.ml: List Moard_core Moard_inject Moard_kernels Printf String
