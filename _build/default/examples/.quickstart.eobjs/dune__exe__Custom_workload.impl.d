examples/custom_workload.ml: Array Format Moard_core Moard_inject Moard_lang Printf
