examples/protection_triage.mli:
