examples/protection_triage.ml: Format List Moard_core Moard_inject Moard_kernels Printf String
