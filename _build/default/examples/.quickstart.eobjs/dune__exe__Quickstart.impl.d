examples/quickstart.ml: Format List Moard_core Moard_inject Moard_kernels Printf
