examples/rfi_vs_advf.mli:
