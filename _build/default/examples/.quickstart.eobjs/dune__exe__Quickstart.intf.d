examples/quickstart.mli:
