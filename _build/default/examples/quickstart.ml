(* Quickstart: compute aDVF for the two CG data objects of Table I.

     dune exec examples/quickstart.exe

   The flow mirrors the paper's Figure 3: build a workload, perform the
   golden (traced) run, then let the model classify every error pattern at
   every consumption site of the target data object, falling back to the
   deterministic fault injector for what static analysis cannot settle. *)

let () =
  (* 1. A workload: the CG miniature with its Table-I target objects. *)
  let workload = Moard_kernels.Cg.workload () in

  (* 2. The context loads the program, runs it once (golden run) and keeps
        the dynamic trace plus the outputs to compare injections against. *)
  let ctx = Moard_inject.Context.make workload in
  Printf.printf "golden run: %d dynamic instructions\n\n"
    (Moard_inject.Context.golden_steps ctx);

  (* 3. aDVF for each target object. *)
  List.iter
    (fun r -> Format.printf "%a@.@." Moard_core.Advf.pp_report r)
    (Moard_core.Model.analyze_targets ctx);

  (* 4. The actionable conclusion, as in the paper's intro: objects with
        low aDVF are the ones worth paying for protection. *)
  let advf name =
    (Moard_core.Model.analyze ctx ~object_name:name).Moard_core.Advf.advf
  in
  let r = advf "r" and colidx = advf "colidx" in
  Printf.printf
    "r tolerates %.0f%% of single-bit faults, colidx only %.0f%% --\n\
     protect colidx first.\n"
    (100.0 *. r) (100.0 *. colidx)
