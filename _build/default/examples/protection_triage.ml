(* Protection triage: the paper's §VI question — "is this fault-tolerance
   mechanism worth its overhead for this data object?" — answered for both
   case studies with one aDVF analysis each.

     dune exec examples/protection_triage.exe *)

module Advf = Moard_core.Advf

let advf workload =
  let ctx = Moard_inject.Context.make workload in
  List.hd (Moard_core.Model.analyze_targets ctx)

let verdict ~name ~(plain : Advf.report) ~(protected_ : Advf.report) =
  let gain = protected_.Advf.advf -. plain.Advf.advf in
  Printf.printf "%-28s %.4f -> %.4f  (%+.4f)   %s\n" name plain.Advf.advf
    protected_.Advf.advf gain
    (if gain > 0.1 then "WORTH PROTECTING" else "NOT WORTH THE OVERHEAD")

(* Budgeted protection planning over a whole application's objects. *)
let plan_cg () =
  let ctx = Moard_inject.Context.make (Moard_kernels.Cg.workload ~n:12 ~iters:3 ()) in
  let reports =
    List.map
      (fun o -> Moard_core.Model.analyze ctx ~object_name:o)
      [ "r"; "colidx"; "rowstr"; "a" ]
  in
  let plan =
    Moard_core.Placement.plan ~budget:2.0
      (List.map (Moard_core.Placement.candidate ~cost:1.0) reports)
  in
  Printf.printf "\nCG protection plan under a budget of 2 mechanisms:\n";
  Format.printf "%a@." Moard_core.Placement.pp_plan plan

let () =
  Printf.printf "%-28s %-22s verdict\n" "mechanism / object"
    "aDVF without -> with";
  print_endline (String.make 78 '-');
  (* ABFT on the product matrix of MM: checksums detect and a targeted
     recomputation corrects corrupted elements. *)
  verdict ~name:"ABFT on C (matrix multiply)"
    ~plain:(advf (Moard_kernels.Abft_mm.workload ()))
    ~protected_:(advf (Moard_kernels.Abft_mm.workload ~abft:true ()));
  (* The same ABFT idea applied to the xe estimate of the Particle Filter:
     the application already tolerates those faults, so the model says the
     35%-class overhead of ABFT buys nothing (paper Fig. 9). *)
  verdict ~name:"ABFT on xe (particle filter)"
    ~plain:(advf (Moard_kernels.Particle_filter.workload ()))
    ~protected_:(advf (Moard_kernels.Particle_filter.workload ~abft:true ()));
  plan_cg ()
