(* Bringing your own application to MOARD: write the kernel in the MiniC
   DSL, declare the data objects and the acceptance criterion, analyze.

   The kernel below is the paper's motivating example (Listing 1): an
   array is pre-processed (overwrite, multiply, compare, bit shift) and
   then handed to an iterative solver.

     dune exec examples/custom_workload.exe *)

module Ast = Moard_lang.Ast

let n = 8
let nm1 = n - 1

let program =
  let open Ast.Dsl in
  let func =
    (* void func(double *par_A): pre-processing of Listing 1, with the
       solver role played by a few Jacobi sweeps over par_A. *)
    fn "func"
      [
        (* par_A[0] = sqrt(initInfo);      -- error overwriting *)
        ("par_A".%(i 0) <- sqrt_ ("init_info".%(i 0)));
        (* c = par_A[2] * 2;               -- propagation to c *)
        flt_ "c" ("par_A".%(i 2) * f 2.0);
        (* if (c > THR) par_A[4] = (int)c >> bits;  -- bit shifting *)
        when_
          (v "c" > f 1.5)
          [ ("par_A".%(i 4) <- to_f (to_i (v "c") asr i 2)) ];
        (* AMG_Solver(par_A, ...) stand-in: damped Jacobi averaging *)
        for_ "sweep" (i 0) (i 6)
          [
            for_ "j" (i 1)
              (i nm1)
              [
                ("par_A".%(v "j") <-
                 (f 0.5 * "par_A".%(v "j"))
                 + (f 0.25 * ("par_A".%(v "j" - i 1) + "par_A".%(v "j" + i 1))));
              ];
          ];
        flt_ "s" (f 0.0);
        for_ "j" (i 0) (i n) [ "s" <-- v "s" + "par_A".%(v "j") ];
        ("out".%(i 0) <- v "s");
        ret_void;
      ]
  in
  Moard_lang.Compile.program
    {
      Ast.globals =
        [
          garr_f64_init "par_A" (Array.init n (fun j -> 1.0 +. float_of_int j));
          garr_f64_init "init_info" [| 4.0 |];
          garr_f64 "out" 1;
        ];
      funs = [ func; fn "main" [ do_ (call "func" []); ret_void ] ];
    }

let () =
  let workload =
    Moard_inject.Workload.make ~name:"listing1" ~program ~segment:[ "func" ]
      ~targets:[ "par_A" ] ~outputs:[ "out" ]
      ~accept:(Moard_inject.Workload.rel_err_accept 1e-2)
      ()
  in
  let ctx = Moard_inject.Context.make workload in
  let r = Moard_core.Model.analyze ctx ~object_name:"par_A" in
  Format.printf "%a@." Moard_core.Advf.pp_report r;
  Printf.printf
    "\nThe overwrite at par_A[0], the shift masking at (int)c >> 2 and the\n\
     averaging of the solver all show up in the breakdown above.\n"
