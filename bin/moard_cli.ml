(* The MOARD command-line tool.

     moard list                          -- benchmark inventory (Table I)
     moard analyze CG -o r -o colidx     -- aDVF analysis of data objects
     moard exhaustive LULESH -o m_x      -- exhaustive fault injection
     moard rfi LULESH -o m_x -n 1000     -- random fault injection campaign
     moard trace CG --limit 40           -- dump the dynamic IR trace
     moard objects CG                    -- data objects and address ranges
     moard serve                         -- the moardd analysis daemon
     moard query advf CG -o r            -- cached query (daemon or offline)
     moard predict CG -o r --target 24    -- cross-input-size extrapolation
     moard advise MM                     -- protection plans + residual aDVF
     moard store stat|gc|fsck            -- result-store maintenance
     moard campaign fsck --journal J     -- verify a journal offline
     moard parallel MM --harts 4         -- serial vs SPMD-port resilience
     moard chaos --seed 7                -- fault-inject the daemon itself

   Exit codes: 0 success; 1 runtime error (analysis failure, I/O, a
   daemon that is not there); 2 usage error (unknown command, bad
   arguments, conflicting options). *)

open Cmdliner
module Registry = Moard_kernels.Registry
module Context = Moard_inject.Context
module Errmodel = Moard_bits.Errmodel
module Model = Moard_core.Model
module Advf = Moard_core.Advf
module Store = Moard_store.Store
module Query = Moard_store.Query
module Key = Moard_store.Key
module Daemon = Moard_server.Daemon
module Client = Moard_server.Client
module Jsonx = Moard_server.Jsonx

(* A usage error discovered after parsing (e.g. conflicting options):
   reported like cmdliner's own and exits 2, where runtime failures
   exit 1. *)
exception Usage of string

let usage fmt = Printf.ksprintf (fun s -> raise (Usage s)) fmt

let entry_conv =
  let parse s =
    match Registry.find s with
    | e -> Ok e
    | exception Not_found ->
      Error
        (`Msg
           (Printf.sprintf "unknown benchmark %S (try: %s)" s
              (String.concat ", "
                 (List.map
                    (fun e -> e.Registry.benchmark)
                    Registry.all))))
  in
  let print ppf e = Format.pp_print_string ppf e.Registry.benchmark in
  Arg.conv (parse, print)

let bench_arg =
  Arg.(
    required
    & pos 0 (some entry_conv) None
    & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name from the registry.")

let objects_arg =
  Arg.(
    value & opt_all string []
    & info [ "o"; "object" ] ~docv:"NAME"
        ~doc:"Target data object (repeatable; default: the benchmark's \
              Table-I objects).")

let setup_logs =
  let setup style_renderer level =
    Fmt_tty.setup_std_outputs ?style_renderer ();
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level level
  in
  Term.(const setup $ Fmt_cli.style_renderer () $ Logs_cli.level ())

let pick_objects (e : Registry.entry) = function
  | [] -> e.Registry.objects
  | objs -> objs

let errmodel_conv =
  let parse s =
    match Errmodel.of_string s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  let print ppf m = Format.pp_print_string ppf (Errmodel.to_string m) in
  Arg.conv (parse, print)

let error_model_arg =
  Arg.(
    value
    & opt errmodel_conv Errmodel.Single_bit
    & info [ "error-model" ] ~docv:"MODEL"
        ~doc:"Error model whose patterns are swept per fault site: \
              $(i,single-bit) (default, one flipped bit), $(i,double-bit) \
              (adjacent pair), $(i,byte-burst) (aligned 8-bit burst) or \
              $(i,whole-word) (every bit). Non-default models get their \
              own store keys, journal headers and report labels.")

let no_batch_flag =
  Arg.(
    value & flag
    & info [ "no-batch" ]
        ~doc:"Disable the bit-parallel masking kernel and resolve every \
              error pattern individually (the scalar oracle). Results -- \
              reports, payloads, store keys -- are byte-identical with or \
              without this flag; only wall-clock time changes. Escape \
              hatch and differential-testing aid.")

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Format.printf "%a@." Registry.pp_table1 ();
    Format.printf "Case studies: %s@."
      (String.concat ", "
         (List.map (fun e -> e.Registry.benchmark) Registry.case_studies))
  in
  Cmd.v (Cmd.info "list" ~doc:"Show the benchmark inventory (Table I).")
    Term.(const run $ setup_logs)

let optimize_flag =
  Arg.(
    value & flag
    & info [ "optimize"; "O2" ]
        ~doc:"Optimize the program (const-fold, copy-prop, DCE) before the \
              analysis -- the SVII-A code-optimization study.")

let parallel_ports =
  List.filter_map
    (fun e ->
      Option.map (fun _ -> e.Registry.benchmark) e.Registry.parallel_at)
    Registry.all

(* The registry workload at a hart count: 1 is the serial program;
   anything above needs the benchmark's SPMD port — asking for harts on a
   kernel without one is a usage error (exit 2), never a silent serial
   run. *)
let workload_for (e : Registry.entry) ~harts =
  if harts = 1 then e.Registry.workload ()
  else if harts < 1 || harts > Moard_vm.Machine.max_harts then
    usage "--harts %d: expected a count between 1 and %d" harts
      Moard_vm.Machine.max_harts
  else
    match e.Registry.parallel_at with
    | Some port -> port ~harts e.Registry.default_size
    | None ->
      usage "%s has no parallel port; --harts above 1 needs one of: %s"
        e.Registry.benchmark
        (String.concat ", " parallel_ports)

let harts_arg =
  Arg.(
    value & opt int 1
    & info [ "harts" ] ~docv:"N"
        ~doc:"Execute the benchmark's SPMD parallel port on $(docv) \
              cooperative harts (deterministic round-robin schedule, \
              shared memory, explicit barriers). Only benchmarks with a \
              parallel port accept $(docv) > 1 -- anywhere else it is a \
              usage error (exit 2). Default 1: the serial program.")

let make_ctx ?(harts = 1) (e : Registry.entry) ~optimize =
  let w = workload_for e ~harts in
  let w =
    if optimize then
      { w with
        Moard_inject.Workload.program =
          Moard_opt.Passes.optimize w.Moard_inject.Workload.program }
    else w
  in
  Context.make w

let analyze_cmd =
  let run () e objs k fi_budget no_cache optimize jobs no_batch model harts =
    let options =
      { Model.default_options with k; fi_budget; use_cache = not no_cache;
        batch = not no_batch; model }
    in
    (* One context -- and therefore one golden execution -- no matter how
       many objects or domains. *)
    let ctx = make_ctx ~harts e ~optimize in
    let tape = Context.tape ctx in
    Logs.info (fun m ->
        m "golden tape: %d events, %d bytes packed (%d golden execution%s)"
          (Moard_trace.Tape.length tape)
          (Moard_trace.Tape.packed_bytes tape)
          (Context.golden_executions ())
          (if Context.golden_executions () = 1 then "" else "s"));
    List.iter
      (fun obj ->
        let r =
          if jobs > 1 then
            Moard_parallel.Parallel_model.analyze_ctx ~options ~domains:jobs
              ctx ~object_name:obj
          else Model.analyze ~options ctx ~object_name:obj
        in
        Format.printf "%a@.@." Advf.pp_report r)
      (pick_objects e objs)
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs"; "domains" ] ~docv:"N"
          ~doc:"Analyze consumption sites on this many domains in parallel \
                (the golden run is still executed and traced only once).")
  in
  let k_arg =
    Arg.(
      value & opt int 50
      & info [ "k" ] ~doc:"Error-propagation window (paper: 50).")
  in
  let budget_arg =
    Arg.(
      value & opt int (-1)
      & info [ "fi-budget" ]
          ~doc:"Max deterministic fault-injection runs (-1 = unlimited).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Disable the error-equivalence cache.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Compute aDVF for data objects of a benchmark (the model).")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ k_arg $ budget_arg
      $ no_cache $ optimize_flag $ jobs_arg $ no_batch_flag $ error_model_arg
      $ harts_arg)

let exhaustive_cmd =
  let run () e objs stride no_batch model harts =
    let ctx = Context.make (workload_for e ~harts) in
    List.iter
      (fun obj ->
        let r =
          Moard_inject.Exhaustive.campaign ~model ~pattern_stride:stride
            ~batch:(not no_batch) ctx ~object_name:obj
        in
        Format.printf "%a@." Moard_inject.Exhaustive.pp_result r)
      (pick_objects e objs)
  in
  let stride =
    Arg.(
      value & opt int 1
      & info [ "stride" ]
          ~doc:"Sample every Nth bit position (1 = truly exhaustive).")
  in
  Cmd.v
    (Cmd.info "exhaustive"
       ~doc:"Exhaustive fault injection over all valid fault sites.")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ stride
      $ no_batch_flag $ error_model_arg $ harts_arg)

let rfi_cmd =
  let run () e objs tests seed =
    let ctx = Context.make (e.Registry.workload ()) in
    List.iter
      (fun obj ->
        let r =
          Moard_inject.Random_fi.campaign ~seed ~tests ctx ~object_name:obj
        in
        Format.printf "%a@." Moard_inject.Random_fi.pp_result r)
      (pick_objects e objs)
  in
  let tests =
    Arg.(
      value & opt int 1000
      & info [ "n"; "tests" ] ~doc:"Number of fault-injection tests.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  Cmd.v
    (Cmd.info "rfi" ~doc:"Traditional random fault injection (the baseline).")
    Term.(const run $ setup_logs $ bench_arg $ objects_arg $ tests $ seed)

let trace_cmd =
  let run () e limit offset =
    let ctx = Context.make (e.Registry.workload ()) in
    let tape = Context.tape ctx in
    let n = Moard_trace.Tape.length tape in
    Format.printf "golden trace: %d dynamic instructions@." n;
    let stop = match limit with 0 -> n | l -> min n (offset + l) in
    for t = offset to stop - 1 do
      Format.printf "%a@." Moard_trace.Event.pp (Moard_trace.Tape.get tape t)
    done
  in
  let limit =
    Arg.(
      value & opt int 50
      & info [ "limit" ] ~doc:"Events to print (0 = all).")
  in
  let offset =
    Arg.(value & opt int 0 & info [ "offset" ] ~doc:"First event to print.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump the dynamic IR trace of the golden run.")
    Term.(const run $ setup_logs $ bench_arg $ limit $ offset)

let dump_ir_cmd =
  let run () e optimize =
    let w = e.Registry.workload () in
    let p = w.Moard_inject.Workload.program in
    let p = if optimize then Moard_opt.Passes.optimize p else p in
    print_string (Moard_ir.Text.to_string p)
  in
  Cmd.v
    (Cmd.info "dump-ir"
       ~doc:"Print a benchmark's program in the textual IR format.")
    Term.(const run $ setup_logs $ bench_arg $ optimize_flag)

let bound_cmd =
  let run () e objs samples =
    let ctx = Context.make (e.Registry.workload ()) in
    List.iter
      (fun obj ->
        Format.printf "%s:@." obj;
        List.iter
          (fun (p : Moard_core.Bound.point) ->
            Format.printf
              "  k=%-4d masked %d / survivors %d -> %.3f incorrect@."
              p.Moard_core.Bound.k p.Moard_core.Bound.masked_within_k
              p.Moard_core.Bound.survivors p.Moard_core.Bound.fraction_incorrect)
          (Moard_core.Bound.study ~samples ~k_values:[ 5; 10; 20; 50 ] ctx
             ~object_name:obj))
      (pick_objects e objs)
  in
  let samples =
    Arg.(
      value & opt int 125
      & info [ "samples" ] ~doc:"Random faults to examine per object.")
  in
  Cmd.v
    (Cmd.info "bound"
       ~doc:"The SIII-D propagation-bound study for a benchmark.")
    Term.(const run $ setup_logs $ bench_arg $ objects_arg $ samples)

let plan_cmd =
  let run () e budget fi_budget =
    let ctx = Context.make (e.Registry.workload ()) in
    let options = { Model.default_options with fi_budget } in
    let reports =
      List.map
        (fun o -> Model.analyze ~options ctx ~object_name:o)
        e.Registry.objects
    in
    let plan =
      Moard_core.Placement.plan ~budget
        (List.map (Moard_core.Placement.candidate ~cost:1.0) reports)
    in
    Format.printf "%a@." Moard_core.Placement.pp_plan plan
  in
  let budget =
    Arg.(
      value & opt float 1.0
      & info [ "budget" ]
          ~doc:"Total protection budget (each object costs 1.0).")
  in
  let fi_budget =
    Arg.(
      value & opt int 30_000
      & info [ "fi-budget" ] ~doc:"Fault-injection budget for the analysis.")
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Analyze a benchmark's target objects and plan which to \
             protect under a budget.")
    Term.(const run $ setup_logs $ bench_arg $ budget $ fi_budget)

(* ------------------------------------------------------------------ *)

module Plan = Moard_campaign.Plan
module Engine = Moard_campaign.Engine
module Journal = Moard_campaign.Journal
module Campaign_report = Moard_report.Campaign_report
module Predict = Moard_predict.Predict
module Predict_report = Moard_report.Predict_report
module Advise = Moard_advise.Advise
module Advise_report = Moard_report.Advise_report

let store_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:"Content-addressed result store directory.")

let open_store dir = Store.open_store ~dir ()

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed.")

let ci_width_arg =
  Arg.(
    value & opt float 0.02
    & info [ "ci-width" ] ~docv:"W"
        ~doc:"Target half-width of the confidence interval around each \
              object's masking estimate (the stopping rule).")

let confidence_arg =
  Arg.(
    value & opt float 0.95
    & info [ "confidence" ]
        ~doc:"Confidence level (0.80, 0.90, 0.95, 0.98 or 0.99).")

let batch_arg =
  Arg.(
    value & opt int 64
    & info [ "batch" ] ~doc:"Samples resolved between stopping checks.")

let max_samples_arg =
  Arg.(
    value & opt int (-1)
    & info [ "max-samples" ]
        ~doc:"Per-object sample cap (-1 = none; the population itself \
              always bounds the campaign).")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "domains" ] ~docv:"N"
        ~doc:"Resolve each batch's distinct injections on this many \
              domains. Reports are bit-identical for any value.")

let journal_arg =
  Arg.(
    value & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:"Journal file: every committed batch lands here, and a \
              killed campaign resumes from it with $(b,campaign resume).")

let out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "out" ] ~docv:"PATH"
        ~doc:"Write the machine-readable JSON report here.")

let stable_flag =
  Arg.(
    value & flag
    & info [ "stable" ]
        ~doc:"Strip the performance section from the JSON report, leaving \
              only the deterministic part (for golden-snapshot diffing).")

let campaign_plan ctx e objs ~model ~seed ~confidence ~ci_width ~batch
    ~max_samples =
  ignore e;
  Plan.make ~model ~seed ~confidence ~ci_width ~batch ~max_samples ctx
    ~objects:objs

let emit_report r ~out ~stable =
  (match out with
  | Some path ->
    let oc = open_out path in
    output_string oc
      (if stable then Campaign_report.stable_json r else Campaign_report.json r);
    close_out oc
  | None -> ());
  Format.printf "%a@." Campaign_report.pp r

let campaign_plan_cmd =
  let run () e objs seed confidence ci_width batch max_samples model harts =
    let ctx = Context.make (workload_for e ~harts) in
    let plan =
      campaign_plan ctx e (pick_objects e objs) ~model ~seed ~confidence
        ~ci_width ~batch ~max_samples
    in
    Format.printf
      "plan %s: workload %s%s%s, seed %d, confidence %g, target halfwidth \
       %g, batch %d@."
      (Plan.hash plan) plan.Plan.workload_name
      (if plan.Plan.model <> Errmodel.Single_bit then
         ", error model " ^ Errmodel.to_string plan.Plan.model
       else "")
      (if plan.Plan.harts <> 1 then
         Printf.sprintf " on %d harts" plan.Plan.harts
       else "")
      plan.Plan.seed
      plan.Plan.confidence plan.Plan.ci_width plan.Plan.batch;
    Array.iter
      (fun (o : Plan.objective) ->
        Format.printf "@.%s: population %d over %d sites@." o.Plan.object_name
          o.Plan.population (Array.length o.Plan.sites);
        Array.iter
          (fun (s : Plan.stratum) ->
            if s.Plan.population > 0 then
              Format.printf "  %-22s %d@." s.Plan.label s.Plan.population)
          o.Plan.strata)
      plan.Plan.objectives;
    Format.printf
      "@.worst-case samples to halfwidth %g at %g confidence: %d per object \
       (population permitting)@."
      plan.Plan.ci_width plan.Plan.confidence
      (Moard_stats.Confidence.tests_needed ~z:plan.Plan.z ~e:plan.Plan.ci_width
         ())
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Enumerate and stratify the fault-site population; print the \
             campaign design without running it.")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ seed_arg
      $ confidence_arg $ ci_width_arg $ batch_arg $ max_samples_arg
      $ error_model_arg $ harts_arg)

let campaign_run_cmd =
  let run () e objs seed confidence ci_width batch max_samples domains journal
      store_dir out stable no_batch model harts =
    (match (journal, store_dir) with
    | Some _, Some _ ->
      usage
        "campaign run: --journal conflicts with --store (the store keeps \
         its own per-plan journal under <store>/journals)"
    | _ -> ());
    let w = workload_for e ~harts in
    let ctx = Context.make w in
    let plan =
      campaign_plan ctx e (pick_objects e objs) ~model ~seed ~confidence
        ~ci_width ~batch ~max_samples
    in
    (* The journal must rebuild the same workload on resume; the default
       is left implicit so pre-existing journals keep resolving. *)
    let journal_meta =
      ("benchmark", e.Registry.benchmark)
      :: (if harts = 1 then [] else [ ("harts", string_of_int harts) ])
    in
    match store_dir with
    | Some dir ->
      let payload, status, r =
        Query.campaign (open_store dir) ~domains ~batch:(not no_batch)
          ~journal_meta
          ~ctx:(fun () -> ctx)
          ~program:w.Moard_inject.Workload.program ~plan ()
      in
      Logs.app (fun m ->
          m "campaign %s: %s (store %s)" (Plan.hash plan)
            (Query.status_name status) dir);
      (match r with
      | Some r -> emit_report r ~out ~stable
      | None ->
        (* Served straight from the store: the stored payload is the
           stable JSON (no perf section to print). *)
        (match out with
        | Some path ->
          let oc = open_out path in
          output_string oc payload;
          close_out oc
        | None -> print_string payload))
    | None ->
      let r =
        Engine.run ~domains ~batch:(not no_batch) ?journal ~journal_meta
          ctx plan
      in
      emit_report r ~out ~stable
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a statistical fault-injection campaign: stratified \
             sampling without replacement, confidence-driven stopping, \
             parallel batches over one golden run. With $(b,--store) the \
             report is served from the result store when already known, \
             and stored (keyed by plan hash) when computed.")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ seed_arg
      $ confidence_arg $ ci_width_arg $ batch_arg $ max_samples_arg
      $ domains_arg $ journal_arg $ store_dir_arg $ out_arg $ stable_flag
      $ no_batch_flag $ error_model_arg $ harts_arg)

let required_journal =
  Arg.(
    required
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH" ~doc:"Journal of the campaign.")

(* Rebuild context and plan from a journal's meta header. *)
let setup_from_journal path =
  let meta = Journal.read_meta ~path () in
  let get k =
    match List.assoc_opt k meta with
    | Some v -> v
    | None -> failwith ("journal is missing meta key " ^ k)
  in
  let e = Registry.find (get "benchmark") in
  (* pre-parallel journals have no "harts" key: serial *)
  let harts =
    match List.assoc_opt "harts" meta with
    | None -> 1
    | Some s -> int_of_string s
  in
  let w = workload_for e ~harts in
  let ctx = Context.make w in
  let objects = String.split_on_char ',' (get "objects") in
  (* pre-model journals have no "model" key: single-bit *)
  let model =
    match List.assoc_opt "model" meta with
    | None -> Errmodel.Single_bit
    | Some s -> (
      match Errmodel.of_string s with
      | Ok m -> m
      | Error msg -> failwith ("journal meta: " ^ msg))
  in
  let plan =
    Plan.make ~model
      ~seed:(int_of_string (get "seed"))
      ~confidence:(float_of_string (get "confidence"))
      ~ci_width:(float_of_string (get "ci_width"))
      ~batch:(int_of_string (get "batch"))
      ~max_samples:(int_of_string (get "max_samples"))
      ctx ~objects
  in
  (ctx, plan, w.Moard_inject.Workload.program)

let campaign_resume_cmd =
  let run () journal domains store_dir out stable no_batch =
    let ctx, plan, program = setup_from_journal journal in
    let r = Engine.resume ~domains ~batch:(not no_batch) ~journal ctx plan in
    (match store_dir with
    | Some dir ->
      let complete =
        Array.for_all
          (fun (o : Engine.object_result) ->
            o.Engine.stopped <> Engine.Interrupted)
          r.Engine.objects
      in
      if complete then begin
        Store.put (open_store dir)
          ~key:(Key.campaign ~program ~plan)
          ~kind:Moard_store.Record.Campaign
          (Query.campaign_payload r);
        Logs.app (fun m -> m "stored campaign %s in %s" (Plan.hash plan) dir)
      end
      else
        Logs.warn (fun m ->
            m "campaign %s still interrupted; not stored" (Plan.hash plan))
    | None -> ());
    emit_report r ~out ~stable
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:"Resume a killed campaign from its journal. The final report \
             is bit-identical to an uninterrupted run of the same plan. \
             With $(b,--store) the completed report is written to the \
             result store.")
    Term.(
      const run $ setup_logs $ required_journal $ domains_arg $ store_dir_arg
      $ out_arg $ stable_flag $ no_batch_flag)

let campaign_report_cmd =
  let run () journal out stable =
    let ctx, plan, _program = setup_from_journal journal in
    (* replay only: zero further batches *)
    let r = Engine.resume ~max_batches:0 ~journal ctx plan in
    emit_report r ~out ~stable
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Report the current state of a campaign from its journal, \
             without injecting anything.")
    Term.(const run $ setup_logs $ required_journal $ out_arg $ stable_flag)

let campaign_fsck_cmd =
  let run () journal =
    let r = Journal.fsck ~path:journal () in
    Format.printf "journal %s@." r.Journal.path;
    Format.printf "  header %s@."
      (if r.Journal.header_ok then
         Printf.sprintf "ok (schema v%d)" Journal.schema_version
       else "DAMAGED");
    (match r.Journal.plan_hash with
    | Some h -> Format.printf "  plan %s@." h
    | None -> ());
    List.iter (fun (k, v) -> Format.printf "  meta %s=%s@." k v) r.Journal.meta;
    Format.printf "  %d committed batch%s, %d record%s@." r.Journal.batches
      (if r.Journal.batches = 1 then "" else "es")
      r.Journal.records
      (if r.Journal.records = 1 then "" else "s");
    if r.Journal.torn_tail then
      Format.printf
        "  torn tail: trailing uncommitted bytes (a resume ignores them)@.";
    (match r.Journal.bad_line with
    | Some n ->
      Format.printf
        "  DAMAGED at line %d: replay trusts only the batches before it@." n
    | None -> ());
    if not r.Journal.header_ok || r.Journal.bad_line <> None then exit 1
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Verify a campaign journal offline -- header, per-batch \
             checksums, torn tail -- without injecting or recomputing \
             anything. Exits 1 if any committed batch fails its checksum.")
    Term.(const run $ setup_logs $ required_journal)

let parallel_cmd =
  let run () e objs harts k fi_budget out =
    if harts < 2 then
      usage "parallel: --harts must be at least 2 (got %d); harts=1 is \
             computed alongside for the comparison"
        harts;
    let port =
      match e.Registry.parallel_at with
      | Some port -> port
      | None ->
        usage "%s has no parallel port; try one of: %s" e.Registry.benchmark
          (String.concat ", " parallel_ports)
    in
    let options = { Model.default_options with k; fi_budget } in
    let objects = pick_objects e objs in
    (* Three golden runs: the serial kernel, the SPMD port at one hart
       (differentially equal to serial for the ported kernels), and the
       SPMD port at N harts, whose tape classifies shared state. *)
    let serial_ctx = Context.make (e.Registry.workload ()) in
    let par1_ctx = Context.make (port ~harts:1 e.Registry.default_size) in
    let parn_ctx = Context.make (port ~harts e.Registry.default_size) in
    let sharing = Moard_trace.Sharing.of_tape (Context.tape parn_ctx) in
    let rows =
      List.map
        (fun obj ->
          {
            Moard_report.Parallel_report.object_name = obj;
            serial = Model.analyze ~options serial_ctx ~object_name:obj;
            par1 = Model.analyze ~options par1_ctx ~object_name:obj;
            parn =
              Moard_core.Hart_split.analyze ~options parn_ctx
                ~object_name:obj;
          })
        objects
    in
    let t =
      {
        Moard_report.Parallel_report.benchmark = e.Registry.benchmark;
        harts;
        cells = Moard_trace.Sharing.cells sharing;
        shared_cells = Moard_trace.Sharing.shared_cells sharing;
        rows;
      }
    in
    (match out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Moard_report.Parallel_report.json t);
      close_out oc
    | None -> ());
    Format.printf "%a@." Moard_report.Parallel_report.pp t
  in
  let harts =
    Arg.(
      value & opt int 2
      & info [ "harts" ] ~docv:"N"
          ~doc:"Hart count of the parallel configuration (at least 2; the \
                serial and one-hart columns are always computed).")
  in
  let k_arg =
    Arg.(
      value & opt int 50
      & info [ "k" ] ~doc:"Error-propagation window (paper: 50).")
  in
  let budget_arg =
    Arg.(
      value & opt int (-1)
      & info [ "fi-budget" ]
          ~doc:"Max deterministic fault-injection runs (-1 = unlimited).")
  in
  Cmd.v
    (Cmd.info "parallel"
       ~doc:"Compare a kernel's resilience serial vs its SPMD port: aDVF \
             per data object at harts=1 and harts=N, split into shared \
             and hart-private state on the N-hart golden tape.")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ harts $ k_arg
      $ budget_arg $ out_arg)

let campaign_cmd =
  Cmd.group
    (Cmd.info "campaign"
       ~doc:"Statistical fault-injection campaigns: parallel, resumable, \
             reproducible, with confidence-driven stopping (paper SV).")
    [ campaign_plan_cmd; campaign_run_cmd; campaign_resume_cmd;
      campaign_report_cmd; campaign_fsck_cmd ]

(* ------------------------------------------------------------------ *)
(* The serving stack: the moardd daemon, cached queries and result-store
   maintenance. *)

let socket_arg =
  Arg.(
    value
    & opt string Daemon.default_config.Daemon.socket
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket of the moardd daemon.")

let serve_cmd =
  let run () socket store_dir workers queue timeout no_batch =
    let cfg =
      {
        Daemon.default_config with
        Daemon.socket;
        store_dir =
          Option.value ~default:Daemon.default_config.Daemon.store_dir
            store_dir;
        workers;
        queue;
        timeout_s = timeout;
        batch = not no_batch;
      }
    in
    Logs.app (fun m ->
        m "moardd %s listening on %s (store %s, %d workers, queue %d)"
          Moard_server.Version.version cfg.Daemon.socket
          cfg.Daemon.store_dir cfg.Daemon.workers cfg.Daemon.queue);
    Daemon.run cfg;
    Logs.app (fun m -> m "moardd drained and stopped")
  in
  let workers =
    Arg.(
      value
      & opt int Daemon.default_config.Daemon.workers
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains resolving queries in parallel.")
  in
  let queue =
    Arg.(
      value
      & opt int Daemon.default_config.Daemon.queue
      & info [ "queue" ] ~docv:"N"
          ~doc:"Bounded request queue: beyond this many pending requests \
                the daemon answers $(i,overloaded) instead of queueing \
                (explicit backpressure, no silent drops).")
  in
  let timeout =
    Arg.(
      value
      & opt float Daemon.default_config.Daemon.timeout_s
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-request timeout. A timed-out request still completes \
                in the background and warms the store.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run moardd: the concurrent analysis daemon serving cached \
             aDVF and campaign queries over a Unix socket. SIGTERM \
             drains gracefully (in-flight campaign batches are committed \
             to their journals before exit).")
    Term.(
      const run $ setup_logs $ socket_arg $ store_dir_arg $ workers $ queue
      $ timeout $ no_batch_flag)

(* ---- query ---- *)

let offline_flag =
  Arg.(
    value & flag
    & info [ "offline" ]
        ~doc:"Compute locally instead of asking a daemon. With $(b,--store) \
              the local store caches the result; the printed payload is \
              byte-identical either way.")

let meta_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "meta" ] ~docv:"PATH"
        ~doc:"Write the response header (JSON: cache status, key, server) \
              here — the payload on stdout stays clean for diffing.")

let write_meta meta header =
  match meta with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Jsonx.to_string header);
    output_char oc '\n';
    close_out oc

let rpc_payload ~socket req ~meta =
  let header, payload = Client.rpc ~socket req in
  (match Client.error_of header with
  | Some (code, msg) -> failwith (Printf.sprintf "daemon: %s: %s" code msg)
  | None -> ());
  write_meta meta header;
  match payload with
  | Some p -> p
  | None -> failwith "daemon: response carried no payload"

let offline_header ~op ~key ~status extra =
  Jsonx.Obj
    ([
       ("status", Jsonx.Str "ok");
       ("op", Jsonx.Str op);
       ("key", Jsonx.Str (Key.to_hex key));
       ("served", Jsonx.Str (Query.status_name status));
       ("cached", Jsonx.Bool (Query.is_hit status));
       ("offline", Jsonx.Bool true);
     ]
    @ extra)

(* present only for non-default models, so daemon request bytes (and the
   daemon's derived keys) stay identical for single-bit queries *)
let model_fields model =
  if model <> Errmodel.Single_bit then
    [ ("error_model", Jsonx.Str (Errmodel.to_string model)) ]
  else []

(* The query commands are constructors over the socket argument: the
   same terms serve both [moard query] (daemon socket default) and
   [moard cluster query] (proxy socket default) — same bytes either
   way, which is the point. *)
let query_advf_cmd_with socket_arg =
  let run () e objs k fi_budget socket offline store_dir meta no_batch model =
    let options =
      { Model.default_options with k; fi_budget; batch = not no_batch; model }
    in
    let objs = pick_objects e objs in
    if offline then begin
      let program = (e.Registry.workload ()).Moard_inject.Workload.program in
      let ctx = lazy (make_ctx e ~optimize:false) in
      List.iter
        (fun obj ->
          let payload, status =
            match store_dir with
            | Some dir ->
              Query.advf (open_store dir) ~options
                ~ctx:(fun () -> Lazy.force ctx)
                ~program ~object_name:obj ()
            | None ->
              (Query.advf_payload ~options (Lazy.force ctx) ~object_name:obj,
               Query.Computed)
          in
          write_meta meta
            (offline_header ~op:"advf"
               ~key:(Key.advf ~program ~object_name:obj ~options)
               ~status
               [ ("object", Jsonx.Str obj) ]);
          print_string payload)
        objs
    end
    else
      List.iter
        (fun obj ->
          let req =
            Jsonx.Obj
              ([
                 ("op", Jsonx.Str "advf");
                 ("benchmark", Jsonx.Str e.Registry.benchmark);
                 ("object", Jsonx.Str obj);
                 ("k", Jsonx.Int options.Model.k);
                 ("fi_budget", Jsonx.Int options.Model.fi_budget);
               ]
              @ model_fields model)
          in
          print_string (rpc_payload ~socket req ~meta))
        objs
  in
  let k_arg =
    Arg.(
      value & opt int Model.default_options.Model.k
      & info [ "k" ] ~doc:"Error-propagation window.")
  in
  let budget_arg =
    Arg.(
      value
      & opt int Model.default_options.Model.fi_budget
      & info [ "fi-budget" ] ~doc:"Max fault-injection runs (-1 unlimited).")
  in
  Cmd.v
    (Cmd.info "advf"
       ~doc:"Query an aDVF summary (canonical JSON payload on stdout). \
             Against a daemon the result is served from the store when \
             warm; $(b,--offline) computes the byte-identical payload \
             locally.")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ k_arg $ budget_arg
      $ socket_arg $ offline_flag $ store_dir_arg $ meta_arg $ no_batch_flag
      $ error_model_arg)

let query_campaign_cmd_with socket_arg =
  let run () e objs seed confidence ci_width batch max_samples socket offline
      store_dir meta no_batch model =
    let objs = pick_objects e objs in
    if offline then begin
      let ctx = make_ctx e ~optimize:false in
      let program = (e.Registry.workload ()).Moard_inject.Workload.program in
      let plan =
        campaign_plan ctx e objs ~model ~seed ~confidence ~ci_width ~batch
          ~max_samples
      in
      let payload, status =
        match store_dir with
        | Some dir ->
          let payload, status, _ =
            Query.campaign (open_store dir) ~batch:(not no_batch)
              ~journal_meta:[ ("benchmark", e.Registry.benchmark) ]
              ~ctx:(fun () -> ctx)
              ~program ~plan ()
          in
          (payload, status)
        | None ->
          ( Query.campaign_payload
              (Engine.run ~batch:(not no_batch) ctx plan),
            Query.Computed )
      in
      write_meta meta
        (offline_header ~op:"campaign"
           ~key:(Key.campaign ~program ~plan)
           ~status []);
      print_string payload
    end
    else begin
      let req =
        Jsonx.Obj
          ([
             ("op", Jsonx.Str "campaign");
             ("benchmark", Jsonx.Str e.Registry.benchmark);
             ("objects", Jsonx.Arr (List.map (fun o -> Jsonx.Str o) objs));
             ("seed", Jsonx.Int seed);
             ("confidence", Jsonx.Float confidence);
             ("ci_width", Jsonx.Float ci_width);
             ("batch", Jsonx.Int batch);
             ("max_samples", Jsonx.Int max_samples);
           ]
          @ model_fields model)
      in
      print_string (rpc_payload ~socket req ~meta)
    end
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Query a campaign report (the stable JSON payload on stdout): \
             run by the daemon and cached by plan hash, or computed \
             $(b,--offline).")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ seed_arg
      $ confidence_arg $ ci_width_arg $ batch_arg $ max_samples_arg
      $ socket_arg $ offline_flag $ store_dir_arg $ meta_arg $ no_batch_flag
      $ error_model_arg)

(* ---- predict ---- *)

let sizes_arg =
  Arg.(
    value & opt (list int) []
    & info [ "sizes" ] ~docv:"N,N,..."
        ~doc:"Training input sizes: a campaign runs at each (comma \
              separated; default: the benchmark's registered training \
              sizes). Order and duplicates are canonicalized away.")

let target_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "target" ] ~docv:"N"
        ~doc:"Input size to extrapolate to (default: the benchmark's \
              registered holdout size). No injection runs at this size.")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Print the stable JSON payload on stdout instead of the \
              human report (byte-identical to daemon and store answers).")

let predict_sizes e = function
  | [] -> Registry.training_sizes e
  | sizes -> sizes

let predict_target e = function
  | Some t -> t
  | None -> Registry.holdout_size e

let predict_cmd =
  let run () e objs sizes target seed confidence ci_width max_samples domains
      store_dir out json no_batch model =
    let objs = pick_objects e objs in
    let sizes = predict_sizes e sizes in
    let target = predict_target e target in
    let emit payload =
      (match out with
      | Some path ->
        let oc = open_out path in
        output_string oc payload;
        close_out oc
      | None -> ());
      if json then print_string payload
    in
    List.iter
      (fun obj ->
        match store_dir with
        | Some dir ->
          let payload, status, p =
            Query.predict (open_store dir) ~model ~seed ~confidence ~ci_width
              ~max_samples ~domains ~batch:(not no_batch)
              ~workload_at:e.Registry.workload_at ~object_name:obj ~sizes
              ~target ()
          in
          Logs.app (fun m ->
              m "predict %s/%s: %s (store %s)" e.Registry.benchmark obj
                (Query.status_name status) dir);
          emit payload;
          if not json then (
            match p with
            | Some p -> Format.printf "%a@." Predict_report.pp p
            | None ->
              (* served from the store: only the stable payload exists *)
              print_string payload)
        | None ->
          let sizes = Predict.canonical_sizes sizes in
          let workloads =
            List.map (fun n -> (n, e.Registry.workload_at n)) sizes
          in
          let p =
            Predict.run ~model ~seed ~confidence ~ci_width ~max_samples
              ~domains ~batch:(not no_batch) ~workloads ~object_name:obj
              ~target ()
          in
          emit (Predict_report.stable_json p);
          if not json then Format.printf "%a@." Predict_report.pp p)
      objs
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Extrapolate an object's aDVF to an input size never \
             fault-injected: fit per-stratum outcome rates from campaigns \
             at small training sizes (level 1), fit each stratum's \
             population growth across those sizes (level 2), and combine \
             at the target with propagated confidence intervals. With \
             $(b,--store) the prediction is cached by its training \
             programs and parameters.")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ sizes_arg
      $ target_arg $ seed_arg $ confidence_arg $ ci_width_arg
      $ max_samples_arg $ domains_arg $ store_dir_arg $ out_arg $ json_flag
      $ no_batch_flag $ error_model_arg)

let query_predict_cmd_with socket_arg =
  let run () e objs sizes target seed confidence ci_width max_samples socket
      offline store_dir meta no_batch model =
    let objs = pick_objects e objs in
    let sizes = predict_sizes e sizes in
    let target = predict_target e target in
    if offline then
      List.iter
        (fun obj ->
          let sizes = Predict.canonical_sizes sizes in
          let workloads =
            List.map (fun n -> (n, e.Registry.workload_at n)) sizes
          in
          let programs =
            List.map
              (fun (n, w) -> (n, w.Moard_inject.Workload.program))
              workloads
          in
          let key =
            Key.predict ~programs ~object_name:obj ~model ~seed ~confidence
              ~ci_width ~max_samples ~target
          in
          let payload, status =
            match store_dir with
            | Some dir ->
              let payload, status, _ =
                Query.predict (open_store dir) ~model ~seed ~confidence
                  ~ci_width ~max_samples ~batch:(not no_batch)
                  ~workload_at:e.Registry.workload_at ~object_name:obj ~sizes
                  ~target ()
              in
              (payload, status)
            | None ->
              ( Query.predict_payload
                  (Predict.run ~model ~seed ~confidence ~ci_width ~max_samples
                     ~batch:(not no_batch) ~workloads ~object_name:obj ~target
                     ()),
                Query.Computed )
          in
          write_meta meta
            (offline_header ~op:"predict" ~key ~status
               [ ("object", Jsonx.Str obj); ("target", Jsonx.Int target) ]);
          print_string payload)
        objs
    else
      List.iter
        (fun obj ->
          let req =
            Jsonx.Obj
              ([
                 ("op", Jsonx.Str "predict");
                 ("benchmark", Jsonx.Str e.Registry.benchmark);
                 ("object", Jsonx.Str obj);
                 ("sizes", Jsonx.Arr (List.map (fun n -> Jsonx.Int n) sizes));
                 ("target", Jsonx.Int target);
                 ("seed", Jsonx.Int seed);
                 ("confidence", Jsonx.Float confidence);
                 ("ci_width", Jsonx.Float ci_width);
                 ("max_samples", Jsonx.Int max_samples);
               ]
              @ model_fields model)
          in
          print_string (rpc_payload ~socket req ~meta))
        objs
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Query a cross-input-size prediction (the stable JSON payload \
             on stdout): computed and cached by the daemon, or \
             $(b,--offline) with identical bytes.")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ sizes_arg
      $ target_arg $ seed_arg $ confidence_arg $ ci_width_arg
      $ max_samples_arg $ socket_arg $ offline_flag $ store_dir_arg $ meta_arg
      $ no_batch_flag $ error_model_arg)

(* ---- advise ---- *)

let advise_cmd =
  let run () e objs seed confidence ci_width max_samples domains store_dir out
      json no_batch model =
    let objects = pick_objects e objs in
    let wl = e.Registry.workload () in
    let emit payload =
      (match out with
      | Some path ->
        let oc = open_out path in
        output_string oc payload;
        close_out oc
      | None -> ());
      if json then print_string payload
    in
    match store_dir with
    | Some dir ->
      let payload, status =
        Query.advise (open_store dir) ~model ~seed ~confidence ~ci_width
          ~max_samples ~domains ~batch:(not no_batch) ~workload:wl ~objects ()
      in
      Logs.app (fun m ->
          m "advise %s: %s (store %s)" e.Registry.benchmark
            (Query.status_name status) dir);
      emit payload;
      if not json then print_string payload
    | None ->
      let r =
        Advise.run ~model ~seed ~confidence ~ci_width ~max_samples ~domains
          ~batch:(not no_batch) ~objects wl
      in
      emit (Advise_report.stable_json r);
      if not json then Format.printf "%a@." Advise_report.pp r
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"The resilience advisor: rank the benchmark's data objects by \
             expected SDC contribution ((1 - aDVF) x size x access rate), \
             apply every applicable protection transform (ABFT checksums, \
             duplication with compare, address clamps) as a \
             behaviour-preserving IR rewrite, and re-measure each \
             protected variant under the same seeded campaign. Emits a \
             per-object Pareto front over (residual vulnerability, \
             instruction overhead) with a recommended plan. With \
             $(b,--store) the report is cached by program, objects and \
             campaign parameters.")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ seed_arg
      $ confidence_arg $ ci_width_arg $ max_samples_arg $ domains_arg
      $ store_dir_arg $ out_arg $ json_flag $ no_batch_flag
      $ error_model_arg)

let query_advise_cmd_with socket_arg =
  let run () e objs seed confidence ci_width max_samples socket offline
      store_dir meta no_batch model =
    let objects = pick_objects e objs in
    if offline then begin
      let wl = e.Registry.workload () in
      let key =
        Key.advise ~program:wl.Moard_inject.Workload.program ~objects ~model
          ~seed ~confidence ~ci_width ~max_samples
      in
      let payload, status =
        match store_dir with
        | Some dir ->
          Query.advise (open_store dir) ~model ~seed ~confidence ~ci_width
            ~max_samples ~batch:(not no_batch) ~workload:wl ~objects ()
        | None ->
          ( Query.advise_payload ~model ~seed ~confidence ~ci_width
              ~max_samples ~batch:(not no_batch) ~objects wl,
            Query.Computed )
      in
      write_meta meta (offline_header ~op:"advise" ~key ~status []);
      print_string payload
    end
    else
      let req =
        Jsonx.Obj
          ([
             ("op", Jsonx.Str "advise");
             ("benchmark", Jsonx.Str e.Registry.benchmark);
             ( "objects",
               Jsonx.Arr (List.map (fun o -> Jsonx.Str o) objects) );
             ("seed", Jsonx.Int seed);
             ("confidence", Jsonx.Float confidence);
             ("ci_width", Jsonx.Float ci_width);
             ("max_samples", Jsonx.Int max_samples);
           ]
          @ model_fields model)
      in
      print_string (rpc_payload ~socket req ~meta)
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"Query a resilience-advisor report (the stable JSON payload on \
             stdout): computed and cached by the daemon, or $(b,--offline) \
             with identical bytes.")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ seed_arg
      $ confidence_arg $ ci_width_arg $ max_samples_arg $ socket_arg
      $ offline_flag $ store_dir_arg $ meta_arg $ no_batch_flag
      $ error_model_arg)

let query_stat_cmd_with socket_arg =
  let run () socket =
    let header, _ = Client.rpc ~socket (Jsonx.Obj [ ("op", Jsonx.Str "stat") ]) in
    (match Client.error_of header with
    | Some (code, msg) -> failwith (Printf.sprintf "daemon: %s: %s" code msg)
    | None -> ());
    print_endline (Jsonx.to_string header)
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:"Daemon and store statistics (one JSON object on stdout).")
    Term.(const run $ setup_logs $ socket_arg)

let query_cmd =
  Cmd.group
    (Cmd.info "query"
       ~doc:"Cached queries against a moardd daemon (or $(b,--offline)): \
             identical bytes either way, so the two modes can be diffed.")
    [
      query_advf_cmd_with socket_arg;
      query_campaign_cmd_with socket_arg;
      query_predict_cmd_with socket_arg;
      query_advise_cmd_with socket_arg;
      query_stat_cmd_with socket_arg;
    ]

(* ---- store maintenance ---- *)

let required_store =
  Arg.(
    required
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR" ~doc:"Result-store directory.")

let store_stat_cmd =
  let run () dir =
    Format.printf "%a@." Store.pp_stats (Store.stat (open_store dir))
  in
  Cmd.v
    (Cmd.info "stat" ~doc:"Entry counts, bytes and hit/corruption counters.")
    Term.(const run $ setup_logs $ required_store)

let store_gc_cmd =
  let run () dir max_age =
    let removed = Store.gc (open_store dir) ?max_age_s:max_age () in
    Format.printf "removed %d file%s@." removed
      (if removed = 1 then "" else "s")
  in
  let max_age =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-age" ] ~docv:"SECONDS"
          ~doc:"Also remove entries older than this. Without it, gc only \
                sweeps torn temporary files and undecodable names. \
                Entries touched by a live handle are never removed.")
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:"Sweep the store: torn writes always; cold entries with \
             $(b,--max-age).")
    Term.(const run $ setup_logs $ required_store $ max_age)

let store_fsck_cmd =
  let run () dir quarantine =
    let r = Store.fsck ~quarantine (open_store dir) in
    Format.printf "scanned %d record%s: %d valid, %d damaged, %d quarantined@."
      r.Store.scanned
      (if r.Store.scanned = 1 then "" else "s")
      r.Store.valid
      (List.length r.Store.damaged)
      r.Store.moved;
    List.iter
      (fun (key, why) -> Format.printf "  %s: %s@." key why)
      r.Store.damaged;
    if r.Store.damaged <> [] then exit 1
  in
  let quarantine =
    Arg.(
      value & flag
      & info [ "quarantine" ]
          ~doc:"Move damaged record files to $(i,<store>/quarantine/) \
                instead of leaving them in place.")
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Verify every record on disk offline (decode + checksum, no \
             recomputation). Exits 1 if any record is damaged.")
    Term.(const run $ setup_logs $ required_store $ quarantine)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:"Maintenance of the content-addressed result store.")
    [ store_stat_cmd; store_gc_cmd; store_fsck_cmd ]

(* ---- the chaos harness ---- *)

let chaos_cmd =
  let module Harness = Moard_server.Chaos_harness in
  let run () seed rounds rate classes benchmark ci_width store_dir =
    let r =
      Harness.run ~seed ~rounds ~rate
        ?classes:(match classes with [] -> None | l -> Some l)
        ~benchmark ~ci_width ?store_dir ()
    in
    print_endline (Jsonx.to_string (Harness.to_json r));
    if not r.Harness.survived then begin
      Logs.err (fun m ->
          m "chaos: invariant violated (diverged %d, hung %d)"
            r.Harness.diverged r.Harness.hung);
      exit 1
    end
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Chaos-plan seed.")
  in
  let rounds =
    Arg.(
      value & opt int 3
      & info [ "rounds" ]
          ~doc:"Rounds of advf/campaign/report/stat requests to issue.")
  in
  let rate =
    Arg.(
      value & opt float 0.08
      & info [ "rate" ] ~docv:"P"
          ~doc:"Fault probability per shimmed operation.")
  in
  let classes =
    Arg.(
      value & opt_all string []
      & info [ "class" ] ~docv:"NAME"
          ~doc:"Fault class to enable: $(i,store), $(i,journal), \
                $(i,protocol) or $(i,pool) (repeatable; default: all \
                four).")
  in
  let benchmark =
    Arg.(
      value & pos 0 string "MM"
      & info [] ~docv:"BENCHMARK"
          ~doc:"Benchmark the chaos requests target (default MM, the \
                smallest).")
  in
  let ci_width =
    Arg.(
      value & opt float 0.05
      & info [ "ci-width" ] ~docv:"W"
          ~doc:"Campaign stopping half-width used by the chaos requests.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Turn the fault injector on the serving stack itself: run a \
             seeded, reproducible fault-injection campaign against an \
             in-process moardd (faulty disk, faulty sockets, raising and \
             slow jobs) and verify that every response is either a typed \
             error or byte-identical to the fault-free baseline. Prints \
             the survival report as JSON; exits 1 if the invariant broke. \
             With $(b,--store) the daemon's store directory is kept for \
             post-mortem.")
    Term.(
      const run $ setup_logs $ seed $ rounds $ rate $ classes $ benchmark
      $ ci_width $ store_dir_arg)

(* ---- cluster serving ---- *)

module Cluster_proxy = Moard_cluster.Proxy
module Cluster_local = Moard_cluster.Local

let cluster_socket_arg =
  Arg.(
    value
    & opt string (Cluster_proxy.default_config ~shards:[]).Cluster_proxy.socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix socket of the cluster proxy.")

let cluster_serve_cmd =
  let run () socket joins shards root replication vnodes hedge_after warm_off
      workers queue timeout =
    let tune cfg =
      {
        cfg with
        Cluster_proxy.socket;
        replication;
        vnodes;
        hedge_after_s = hedge_after;
        warm_auto = not warm_off;
      }
    in
    match joins with
    | _ :: _ ->
      if shards <> None then
        usage "cluster serve: --shards and --join are mutually exclusive";
      let shard_list =
        List.map (fun (name, socket) -> { Cluster_proxy.name; socket }) joins
      in
      Logs.app (fun m ->
          m "moard cluster %s listening on %s (%d joined shards, R=%d)"
            Moard_server.Version.version socket (List.length shard_list)
            replication);
      Cluster_proxy.run
        (tune (Cluster_proxy.default_config ~shards:shard_list));
      Logs.app (fun m -> m "cluster proxy drained and stopped")
    | [] ->
      let shards = Option.value ~default:2 shards in
      let c =
        Cluster_local.start ~workers ~queue ~timeout_s:timeout ~root ~shards
          ~tune ()
      in
      Logs.app (fun m ->
          m "moard cluster %s listening on %s (%d local shards under %s, R=%d)"
            Moard_server.Version.version
            (Cluster_local.socket c)
            shards root replication);
      let stop_flag = Atomic.make false in
      let quit _ = Atomic.set stop_flag true in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
      Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
      while not (Atomic.get stop_flag) do
        Thread.delay 0.2
      done;
      Cluster_local.stop c;
      Logs.app (fun m -> m "cluster drained and stopped")
  in
  let joins =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string string) []
      & info [ "join" ] ~docv:"NAME=SOCKET"
          ~doc:"Serve over an externally started moardd shard (repeatable). \
                Without any, the command starts $(b,--shards) local shard \
                daemons itself.")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:"Local shard daemons to start (default 2); conflicts with \
                $(b,--join).")
  in
  let root =
    Arg.(
      value & opt string "moard-cluster"
      & info [ "root" ] ~docv:"DIR"
          ~doc:"Directory for local shard sockets and stores.")
  in
  let replication =
    Arg.(
      value & opt int 2
      & info [ "replication" ] ~docv:"R"
          ~doc:"Length of each key's owner chain on the hash ring: a dead \
                or partitioned shard degrades to recompute on the next \
                replica, never to a wrong answer.")
  in
  let vnodes =
    Arg.(
      value & opt int 64
      & info [ "vnodes" ] ~docv:"N"
          ~doc:"Virtual nodes per shard on the consistent-hash ring.")
  in
  let hedge_after =
    Arg.(
      value
      & opt (some float) None
      & info [ "hedge-after" ] ~docv:"SECONDS"
          ~doc:"Fixed hedging deadline: an idempotent forward slower than \
                this is raced against the replica. Default: adaptive, 2x \
                the p95 of recent forward latencies.")
  in
  let warm_off =
    Arg.(
      value & flag
      & info [ "no-warm" ]
          ~doc:"Disable auto-warming of sibling registry objects after a \
                computed aDVF response.")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains per local shard daemon.")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:"Bounded request queue per local shard daemon.")
  in
  let timeout =
    Arg.(
      value & opt float 600.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-request timeout on local shard daemons.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the cluster: N sharded moardd instances behind a \
             consistent-hash proxy speaking the moardd protocol. The \
             proxy coalesces identical concurrent requests, hedges slow \
             forwards onto the replica, fails over around dead shards and \
             warms hot objects in idle slots; every served payload is \
             byte-identical to the offline CLI or a typed error. SIGTERM \
             drains gracefully.")
    Term.(
      const run $ setup_logs $ cluster_socket_arg $ joins $ shards $ root
      $ replication $ vnodes $ hedge_after $ warm_off $ workers $ queue
      $ timeout)

let cluster_stat_cmd =
  let run () socket =
    let header, _ =
      Client.rpc ~socket (Jsonx.Obj [ ("op", Jsonx.Str "stat") ])
    in
    (match Client.error_of header with
    | Some (code, msg) -> failwith (Printf.sprintf "cluster: %s: %s" code msg)
    | None -> ());
    print_endline (Jsonx.to_string header)
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:"Cluster statistics (one JSON object on stdout): ring layout, \
             proxy counters — forwards, coalesced, hedged, hedge wins, \
             failovers, retries, warming — and each shard's own stat or \
             its unreachability.")
    Term.(const run $ setup_logs $ cluster_socket_arg)

let cluster_warm_cmd =
  let run () socket e objs =
    let objs = pick_objects e objs in
    List.iter
      (fun obj ->
        let header, _ =
          Client.rpc ~socket
            (Jsonx.Obj
               [
                 ("op", Jsonx.Str "warm");
                 ("benchmark", Jsonx.Str e.Registry.benchmark);
                 ("object", Jsonx.Str obj);
               ])
        in
        (match Client.error_of header with
        | Some (code, msg) ->
          failwith (Printf.sprintf "cluster: %s: %s" code msg)
        | None -> ());
        print_endline (Jsonx.to_string header))
      objs
  in
  Cmd.v
    (Cmd.info "warm"
       ~doc:"Queue aDVF precomputation of a benchmark's objects on their \
             owning shards (acknowledged immediately; shards compute in \
             idle slots). $(b,cluster stat) shows queue drain.")
    Term.(const run $ setup_logs $ cluster_socket_arg $ bench_arg $ objects_arg)

let cluster_chaos_cmd =
  let module Harness = Moard_cluster.Cluster_harness in
  let run () seed rounds rate shards benchmark ci_width downtime =
    let r =
      Harness.run ~seed ~rounds ~rate ~shards ~benchmark ~ci_width
        ~crash_downtime:downtime ()
    in
    print_endline (Jsonx.to_string (Harness.to_json r));
    if not r.Harness.survived then begin
      Logs.err (fun m ->
          m "cluster chaos: invariant violated (diverged %d, hung %d)"
            r.Harness.diverged r.Harness.hung);
      exit 1
    end
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Chaos-plan seed.")
  in
  let rounds =
    Arg.(
      value & opt int 2
      & info [ "rounds" ]
          ~doc:"Rounds of advf/campaign/report/stat requests to issue.")
  in
  let rate =
    Arg.(
      value & opt float 0.08
      & info [ "rate" ] ~docv:"P"
          ~doc:"Fault probability per inter-node operation, and per \
                request for shard-crash and partition trials.")
  in
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Shard count.")
  in
  let benchmark =
    Arg.(
      value & pos 0 string "MM"
      & info [] ~docv:"BENCHMARK"
          ~doc:"Benchmark the chaos requests target (default MM, the \
                smallest).")
  in
  let ci_width =
    Arg.(
      value & opt float 0.2
      & info [ "ci-width" ] ~docv:"W"
          ~doc:"Campaign stopping half-width used by the chaos requests.")
  in
  let downtime =
    Arg.(
      value & opt int 3
      & info [ "crash-downtime" ] ~docv:"N"
          ~doc:"Requests a crashed shard stays down before restarting.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Turn the fault injector on the cluster: corrupted inter-node \
             frames, shard crash-stops with later restarts, and \
             proxy-shard partitions, against an in-process cluster. \
             Verifies that every response is a typed error or \
             byte-identical to the fault-free baseline; the report \
             (printed as JSON) is deterministic per seed. Exits 1 if the \
             invariant broke.")
    Term.(
      const run $ setup_logs $ seed $ rounds $ rate $ shards $ benchmark
      $ ci_width $ downtime)

let cluster_cmd =
  Cmd.group
    (Cmd.info "cluster"
       ~doc:"Sharded moardd serving: consistent-hash routing with \
             replication, request coalescing, hedged requests and \
             background store warming behind one proxy socket.")
    [
      cluster_serve_cmd;
      Cmd.group
        (Cmd.info "query"
           ~doc:"The moardd query commands pointed at the cluster proxy: \
                 same protocol, same bytes, sharded serving.")
        [
          query_advf_cmd_with cluster_socket_arg;
          query_campaign_cmd_with cluster_socket_arg;
          query_predict_cmd_with cluster_socket_arg;
          query_advise_cmd_with cluster_socket_arg;
          query_stat_cmd_with cluster_socket_arg;
        ];
      cluster_stat_cmd;
      cluster_warm_cmd;
      cluster_chaos_cmd;
    ]

let objects_cmd =
  let run () e =
    let ctx = Context.make (e.Registry.workload ()) in
    Format.printf "%a@." Moard_trace.Registry.pp
      (Moard_vm.Machine.registry (Context.machine ctx));
    Format.printf "targets: %s@."
      (String.concat ", " e.Registry.objects)
  in
  Cmd.v
    (Cmd.info "objects"
       ~doc:"List every data object of a benchmark with its address range.")
    Term.(const run $ setup_logs $ bench_arg)

(* One exit-code convention for every command, documented in --help:
   0 success, 1 runtime error, 2 usage error. cmdliner handles parse
   errors (2); everything raised at run time funnels through here. *)
let exits =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info 1
      ~doc:
        "on runtime errors: analysis failures, I/O errors, a rejected \
         journal, a daemon that is not there.";
    Cmd.Exit.info 2
      ~doc:
        "on usage errors: unknown commands, bad arguments, conflicting \
         options.";
  ]

let main =
  Cmd.group
    (Cmd.info "moard" ~version:Moard_server.Version.version ~exits
       ~doc:
         "MOARD: modeling application resilience to transient faults on \
          data objects (IPDPS'19 reproduction).")
    [
      list_cmd; analyze_cmd; exhaustive_cmd; rfi_cmd; trace_cmd; objects_cmd;
      dump_ir_cmd; bound_cmd; plan_cmd; campaign_cmd; parallel_cmd;
      predict_cmd; advise_cmd; serve_cmd; query_cmd; store_cmd; chaos_cmd;
      cluster_cmd;
    ]

let () =
  match Cmd.eval_value ~catch:false main with
  | Ok (`Ok ()) | Ok `Version | Ok `Help -> exit 0
  (* Our terms never evaluate to [Error `Term] themselves (runtime
     failures raise, and [~catch:false] lets them through), so both
     cmdliner error variants are command-line problems. *)
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 1
  | exception Usage msg ->
    Printf.eprintf "moard: %s\n%!" msg;
    exit 2
  | exception e ->
    let msg =
      match e with
      | Failure m -> m
      | Not_found ->
        "not found — check the data-object name (`moard objects BENCHMARK` \
         lists them)"
      | Sys_error m -> m
      | Invalid_argument m -> m
      | Journal.Rejected m -> "journal rejected: " ^ m
      | Predict.Refused r ->
        "prediction refused: " ^ Predict.refusal_message r
      | Moard_server.Protocol.Protocol_error m -> "protocol error: " ^ m
      | Unix.Unix_error (err, fn, arg) ->
        Printf.sprintf "%s%s: %s" fn
          (if arg = "" then "" else " " ^ arg)
          (Unix.error_message err)
      | e -> Printexc.to_string e
    in
    Printf.eprintf "moard: error: %s\n%!" msg;
    exit 1
