(* The MOARD command-line tool.

     moard list                          -- benchmark inventory (Table I)
     moard analyze CG -o r -o colidx     -- aDVF analysis of data objects
     moard exhaustive LULESH -o m_x      -- exhaustive fault injection
     moard rfi LULESH -o m_x -n 1000     -- random fault injection campaign
     moard trace CG --limit 40           -- dump the dynamic IR trace
     moard objects CG                    -- data objects and address ranges *)

open Cmdliner
module Registry = Moard_kernels.Registry
module Context = Moard_inject.Context
module Model = Moard_core.Model
module Advf = Moard_core.Advf

let entry_conv =
  let parse s =
    match Registry.find s with
    | e -> Ok e
    | exception Not_found ->
      Error
        (`Msg
           (Printf.sprintf "unknown benchmark %S (try: %s)" s
              (String.concat ", "
                 (List.map
                    (fun e -> e.Registry.benchmark)
                    Registry.all))))
  in
  let print ppf e = Format.pp_print_string ppf e.Registry.benchmark in
  Arg.conv (parse, print)

let bench_arg =
  Arg.(
    required
    & pos 0 (some entry_conv) None
    & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name from the registry.")

let objects_arg =
  Arg.(
    value & opt_all string []
    & info [ "o"; "object" ] ~docv:"NAME"
        ~doc:"Target data object (repeatable; default: the benchmark's \
              Table-I objects).")

let setup_logs =
  let setup style_renderer level =
    Fmt_tty.setup_std_outputs ?style_renderer ();
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level level
  in
  Term.(const setup $ Fmt_cli.style_renderer () $ Logs_cli.level ())

let pick_objects (e : Registry.entry) = function
  | [] -> e.Registry.objects
  | objs -> objs

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Format.printf "%a@." Registry.pp_table1 ();
    Format.printf "Case studies: %s@."
      (String.concat ", "
         (List.map (fun e -> e.Registry.benchmark) Registry.case_studies))
  in
  Cmd.v (Cmd.info "list" ~doc:"Show the benchmark inventory (Table I).")
    Term.(const run $ setup_logs)

let optimize_flag =
  Arg.(
    value & flag
    & info [ "optimize"; "O2" ]
        ~doc:"Optimize the program (const-fold, copy-prop, DCE) before the \
              analysis -- the SVII-A code-optimization study.")

let make_ctx (e : Registry.entry) ~optimize =
  let w = e.Registry.workload () in
  let w =
    if optimize then
      { w with
        Moard_inject.Workload.program =
          Moard_opt.Passes.optimize w.Moard_inject.Workload.program }
    else w
  in
  Context.make w

let analyze_cmd =
  let run () e objs k fi_budget no_cache optimize jobs =
    let options =
      { Model.default_options with k; fi_budget; use_cache = not no_cache }
    in
    (* One context -- and therefore one golden execution -- no matter how
       many objects or domains. *)
    let ctx = make_ctx e ~optimize in
    let tape = Context.tape ctx in
    Logs.info (fun m ->
        m "golden tape: %d events, %d bytes packed (%d golden execution%s)"
          (Moard_trace.Tape.length tape)
          (Moard_trace.Tape.packed_bytes tape)
          (Context.golden_executions ())
          (if Context.golden_executions () = 1 then "" else "s"));
    List.iter
      (fun obj ->
        let r =
          if jobs > 1 then
            Moard_parallel.Parallel_model.analyze_ctx ~options ~domains:jobs
              ctx ~object_name:obj
          else Model.analyze ~options ctx ~object_name:obj
        in
        Format.printf "%a@.@." Advf.pp_report r)
      (pick_objects e objs)
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs"; "domains" ] ~docv:"N"
          ~doc:"Analyze consumption sites on this many domains in parallel \
                (the golden run is still executed and traced only once).")
  in
  let k_arg =
    Arg.(
      value & opt int 50
      & info [ "k" ] ~doc:"Error-propagation window (paper: 50).")
  in
  let budget_arg =
    Arg.(
      value & opt int (-1)
      & info [ "fi-budget" ]
          ~doc:"Max deterministic fault-injection runs (-1 = unlimited).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Disable the error-equivalence cache.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Compute aDVF for data objects of a benchmark (the model).")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ k_arg $ budget_arg
      $ no_cache $ optimize_flag $ jobs_arg)

let exhaustive_cmd =
  let run () e objs stride =
    let ctx = Context.make (e.Registry.workload ()) in
    List.iter
      (fun obj ->
        let r =
          Moard_inject.Exhaustive.campaign ~pattern_stride:stride ctx
            ~object_name:obj
        in
        Format.printf "%a@." Moard_inject.Exhaustive.pp_result r)
      (pick_objects e objs)
  in
  let stride =
    Arg.(
      value & opt int 1
      & info [ "stride" ]
          ~doc:"Sample every Nth bit position (1 = truly exhaustive).")
  in
  Cmd.v
    (Cmd.info "exhaustive"
       ~doc:"Exhaustive fault injection over all valid fault sites.")
    Term.(const run $ setup_logs $ bench_arg $ objects_arg $ stride)

let rfi_cmd =
  let run () e objs tests seed =
    let ctx = Context.make (e.Registry.workload ()) in
    List.iter
      (fun obj ->
        let r =
          Moard_inject.Random_fi.campaign ~seed ~tests ctx ~object_name:obj
        in
        Format.printf "%a@." Moard_inject.Random_fi.pp_result r)
      (pick_objects e objs)
  in
  let tests =
    Arg.(
      value & opt int 1000
      & info [ "n"; "tests" ] ~doc:"Number of fault-injection tests.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  Cmd.v
    (Cmd.info "rfi" ~doc:"Traditional random fault injection (the baseline).")
    Term.(const run $ setup_logs $ bench_arg $ objects_arg $ tests $ seed)

let trace_cmd =
  let run () e limit offset =
    let ctx = Context.make (e.Registry.workload ()) in
    let tape = Context.tape ctx in
    let n = Moard_trace.Tape.length tape in
    Format.printf "golden trace: %d dynamic instructions@." n;
    let stop = match limit with 0 -> n | l -> min n (offset + l) in
    for t = offset to stop - 1 do
      Format.printf "%a@." Moard_trace.Event.pp (Moard_trace.Tape.get tape t)
    done
  in
  let limit =
    Arg.(
      value & opt int 50
      & info [ "limit" ] ~doc:"Events to print (0 = all).")
  in
  let offset =
    Arg.(value & opt int 0 & info [ "offset" ] ~doc:"First event to print.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump the dynamic IR trace of the golden run.")
    Term.(const run $ setup_logs $ bench_arg $ limit $ offset)

let dump_ir_cmd =
  let run () e optimize =
    let w = e.Registry.workload () in
    let p = w.Moard_inject.Workload.program in
    let p = if optimize then Moard_opt.Passes.optimize p else p in
    print_string (Moard_ir.Text.to_string p)
  in
  Cmd.v
    (Cmd.info "dump-ir"
       ~doc:"Print a benchmark's program in the textual IR format.")
    Term.(const run $ setup_logs $ bench_arg $ optimize_flag)

let bound_cmd =
  let run () e objs samples =
    let ctx = Context.make (e.Registry.workload ()) in
    List.iter
      (fun obj ->
        Format.printf "%s:@." obj;
        List.iter
          (fun (p : Moard_core.Bound.point) ->
            Format.printf
              "  k=%-4d masked %d / survivors %d -> %.3f incorrect@."
              p.Moard_core.Bound.k p.Moard_core.Bound.masked_within_k
              p.Moard_core.Bound.survivors p.Moard_core.Bound.fraction_incorrect)
          (Moard_core.Bound.study ~samples ~k_values:[ 5; 10; 20; 50 ] ctx
             ~object_name:obj))
      (pick_objects e objs)
  in
  let samples =
    Arg.(
      value & opt int 125
      & info [ "samples" ] ~doc:"Random faults to examine per object.")
  in
  Cmd.v
    (Cmd.info "bound"
       ~doc:"The SIII-D propagation-bound study for a benchmark.")
    Term.(const run $ setup_logs $ bench_arg $ objects_arg $ samples)

let plan_cmd =
  let run () e budget fi_budget =
    let ctx = Context.make (e.Registry.workload ()) in
    let options = { Model.default_options with fi_budget } in
    let reports =
      List.map
        (fun o -> Model.analyze ~options ctx ~object_name:o)
        e.Registry.objects
    in
    let plan =
      Moard_core.Placement.plan ~budget
        (List.map (Moard_core.Placement.candidate ~cost:1.0) reports)
    in
    Format.printf "%a@." Moard_core.Placement.pp_plan plan
  in
  let budget =
    Arg.(
      value & opt float 1.0
      & info [ "budget" ]
          ~doc:"Total protection budget (each object costs 1.0).")
  in
  let fi_budget =
    Arg.(
      value & opt int 30_000
      & info [ "fi-budget" ] ~doc:"Fault-injection budget for the analysis.")
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Analyze a benchmark's target objects and plan which to \
             protect under a budget.")
    Term.(const run $ setup_logs $ bench_arg $ budget $ fi_budget)

(* ------------------------------------------------------------------ *)

module Plan = Moard_campaign.Plan
module Engine = Moard_campaign.Engine
module Journal = Moard_campaign.Journal
module Campaign_report = Moard_report.Campaign_report

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed.")

let ci_width_arg =
  Arg.(
    value & opt float 0.02
    & info [ "ci-width" ] ~docv:"W"
        ~doc:"Target half-width of the confidence interval around each \
              object's masking estimate (the stopping rule).")

let confidence_arg =
  Arg.(
    value & opt float 0.95
    & info [ "confidence" ]
        ~doc:"Confidence level (0.80, 0.90, 0.95, 0.98 or 0.99).")

let batch_arg =
  Arg.(
    value & opt int 64
    & info [ "batch" ] ~doc:"Samples resolved between stopping checks.")

let max_samples_arg =
  Arg.(
    value & opt int (-1)
    & info [ "max-samples" ]
        ~doc:"Per-object sample cap (-1 = none; the population itself \
              always bounds the campaign).")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "domains" ] ~docv:"N"
        ~doc:"Resolve each batch's distinct injections on this many \
              domains. Reports are bit-identical for any value.")

let journal_arg =
  Arg.(
    value & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:"Journal file: every committed batch lands here, and a \
              killed campaign resumes from it with $(b,campaign resume).")

let out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "out" ] ~docv:"PATH"
        ~doc:"Write the machine-readable JSON report here.")

let stable_flag =
  Arg.(
    value & flag
    & info [ "stable" ]
        ~doc:"Strip the performance section from the JSON report, leaving \
              only the deterministic part (for golden-snapshot diffing).")

let campaign_plan ctx e objs ~seed ~confidence ~ci_width ~batch ~max_samples =
  ignore e;
  Plan.make ~seed ~confidence ~ci_width ~batch ~max_samples ctx ~objects:objs

let emit_report r ~out ~stable =
  (match out with
  | Some path ->
    let oc = open_out path in
    output_string oc
      (if stable then Campaign_report.stable_json r else Campaign_report.json r);
    close_out oc
  | None -> ());
  Format.printf "%a@." Campaign_report.pp r

let campaign_plan_cmd =
  let run () e objs seed confidence ci_width batch max_samples =
    let ctx = Context.make (e.Registry.workload ()) in
    let plan =
      campaign_plan ctx e (pick_objects e objs) ~seed ~confidence ~ci_width
        ~batch ~max_samples
    in
    Format.printf
      "plan %s: workload %s, seed %d, confidence %g, target halfwidth %g, \
       batch %d@."
      (Plan.hash plan) plan.Plan.workload_name plan.Plan.seed
      plan.Plan.confidence plan.Plan.ci_width plan.Plan.batch;
    Array.iter
      (fun (o : Plan.objective) ->
        Format.printf "@.%s: population %d over %d sites@." o.Plan.object_name
          o.Plan.population (Array.length o.Plan.sites);
        Array.iter
          (fun (s : Plan.stratum) ->
            if s.Plan.population > 0 then
              Format.printf "  %-22s %d@." s.Plan.label s.Plan.population)
          o.Plan.strata)
      plan.Plan.objectives;
    Format.printf
      "@.worst-case samples to halfwidth %g at %g confidence: %d per object \
       (population permitting)@."
      plan.Plan.ci_width plan.Plan.confidence
      (Moard_stats.Confidence.tests_needed ~z:plan.Plan.z ~e:plan.Plan.ci_width
         ())
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Enumerate and stratify the fault-site population; print the \
             campaign design without running it.")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ seed_arg
      $ confidence_arg $ ci_width_arg $ batch_arg $ max_samples_arg)

let campaign_run_cmd =
  let run () e objs seed confidence ci_width batch max_samples domains journal
      out stable =
    let ctx = Context.make (e.Registry.workload ()) in
    let plan =
      campaign_plan ctx e (pick_objects e objs) ~seed ~confidence ~ci_width
        ~batch ~max_samples
    in
    let r =
      Engine.run ~domains ?journal
        ~journal_meta:[ ("benchmark", e.Registry.benchmark) ]
        ctx plan
    in
    emit_report r ~out ~stable
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a statistical fault-injection campaign: stratified \
             sampling without replacement, confidence-driven stopping, \
             parallel batches over one golden run.")
    Term.(
      const run $ setup_logs $ bench_arg $ objects_arg $ seed_arg
      $ confidence_arg $ ci_width_arg $ batch_arg $ max_samples_arg
      $ domains_arg $ journal_arg $ out_arg $ stable_flag)

let required_journal =
  Arg.(
    required
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH" ~doc:"Journal of the campaign.")

(* Rebuild context and plan from a journal's meta header. *)
let setup_from_journal path =
  let meta = Journal.read_meta ~path in
  let get k =
    match List.assoc_opt k meta with
    | Some v -> v
    | None -> failwith ("journal is missing meta key " ^ k)
  in
  let e = Registry.find (get "benchmark") in
  let ctx = Context.make (e.Registry.workload ()) in
  let objects = String.split_on_char ',' (get "objects") in
  let plan =
    Plan.make
      ~seed:(int_of_string (get "seed"))
      ~confidence:(float_of_string (get "confidence"))
      ~ci_width:(float_of_string (get "ci_width"))
      ~batch:(int_of_string (get "batch"))
      ~max_samples:(int_of_string (get "max_samples"))
      ctx ~objects
  in
  (ctx, plan)

let campaign_resume_cmd =
  let run () journal domains out stable =
    let ctx, plan = setup_from_journal journal in
    let r = Engine.resume ~domains ~journal ctx plan in
    emit_report r ~out ~stable
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:"Resume a killed campaign from its journal. The final report \
             is bit-identical to an uninterrupted run of the same plan.")
    Term.(
      const run $ setup_logs $ required_journal $ domains_arg $ out_arg
      $ stable_flag)

let campaign_report_cmd =
  let run () journal out stable =
    let ctx, plan = setup_from_journal journal in
    (* replay only: zero further batches *)
    let r = Engine.resume ~max_batches:0 ~journal ctx plan in
    emit_report r ~out ~stable
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Report the current state of a campaign from its journal, \
             without injecting anything.")
    Term.(const run $ setup_logs $ required_journal $ out_arg $ stable_flag)

let campaign_cmd =
  Cmd.group
    (Cmd.info "campaign"
       ~doc:"Statistical fault-injection campaigns: parallel, resumable, \
             reproducible, with confidence-driven stopping (paper SV).")
    [ campaign_plan_cmd; campaign_run_cmd; campaign_resume_cmd;
      campaign_report_cmd ]

let objects_cmd =
  let run () e =
    let ctx = Context.make (e.Registry.workload ()) in
    Format.printf "%a@." Moard_trace.Registry.pp
      (Moard_vm.Machine.registry (Context.machine ctx));
    Format.printf "targets: %s@."
      (String.concat ", " e.Registry.objects)
  in
  Cmd.v
    (Cmd.info "objects"
       ~doc:"List every data object of a benchmark with its address range.")
    Term.(const run $ setup_logs $ bench_arg)

let main =
  Cmd.group
    (Cmd.info "moard" ~version:"1.0.0"
       ~doc:
         "MOARD: modeling application resilience to transient faults on \
          data objects (IPDPS'19 reproduction).")
    [
      list_cmd; analyze_cmd; exhaustive_cmd; rfi_cmd; trace_cmd; objects_cmd;
      dump_ir_cmd; bound_cmd; plan_cmd; campaign_cmd;
    ]

let () = exit (Cmd.eval main)
