(* Talking to moardd from OCaml: start a daemon (here in-process; in
   production `moard serve` runs it), send length-prefixed JSON requests
   over its Unix socket, and read cached results back.

   The serving contract on display: the first query computes and stores,
   the repeat is a cache hit, and both carry byte-identical payloads —
   the same bytes `moard query advf CG -o r --offline` prints.

     dune exec examples/daemon_client.exe *)

module Daemon = Moard_server.Daemon
module Client = Moard_server.Client
module Jsonx = Moard_server.Jsonx

let () =
  (* a private socket and store for the demo *)
  let dir = Filename.temp_file "moard_example_store" "" in
  Sys.remove dir;
  let socket = Filename.temp_file "moardd_example" ".sock" in
  Sys.remove socket;
  let daemon =
    Daemon.start
      { Daemon.default_config with Daemon.socket; store_dir = dir }
  in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) @@ fun () ->
  (* one connection, several requests: Client.request keeps it open;
     Client.rpc is the connect-request-close shorthand *)
  let c = Client.connect ~socket () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let field name header = Jsonx.str (Jsonx.member name header) in
  let show what header =
    Printf.printf "%-14s served=%s\n" what
      (Option.value ~default:"?" (field "served" header))
  in

  (* an aDVF query: the response header carries cache status, the
     payload frame carries the canonical JSON report *)
  let advf_req =
    Jsonx.Obj
      [
        ("op", Jsonx.Str "advf");
        ("benchmark", Jsonx.Str "CG");
        ("object", Jsonx.Str "r");
      ]
  in
  let h1, p1 = Client.request c advf_req in
  show "first query" h1;
  let h2, p2 = Client.request c advf_req in
  show "repeat query" h2;
  Printf.printf "payloads byte-identical: %b\n\n"
    (Option.is_some p1 && p1 = p2);
  print_string (Option.value ~default:"" p2);

  (* a campaign query: cached under the plan hash, so any client asking
     for the same design gets the stored report *)
  let h, _ =
    Client.request c
      (Jsonx.Obj
         [
           ("op", Jsonx.Str "campaign");
           ("benchmark", Jsonx.Str "LULESH");
           ("objects", Jsonx.Arr [ Jsonx.Str "m_elemBC" ]);
           ("seed", Jsonx.Int 42);
           ("ci_width", Jsonx.Float 0.05);
         ])
  in
  show "\ncampaign" h;

  (* daemon statistics: one JSON object, no payload *)
  let stat, _ = Client.request c (Jsonx.Obj [ ("op", Jsonx.Str "stat") ]) in
  Printf.printf "\nstat: %s\n" (Jsonx.to_string stat)
