(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (Table I, Figures 4-9, and the SIII-D propagation
   bound observation), then times the model's phases with Bechamel.

     dune exec bench/main.exe                -- everything
     dune exec bench/main.exe -- fig4 fig8   -- selected experiments
     dune exec bench/main.exe -- timing      -- Bechamel timing only

   Absolute numbers differ from the paper (miniature inputs on a from-
   scratch VM rather than class-S benchmarks on LLVM), but each experiment
   prints the property the paper's figure establishes. *)

module Model = Moard_core.Model
module Advf = Moard_core.Advf
module Context = Moard_inject.Context
module Registry = Moard_kernels.Registry
module Chart = Moard_report.Chart

let section title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

let t0 = Unix.gettimeofday ()
let elapsed () = Unix.gettimeofday () -. t0

let note fmt =
  Printf.ksprintf (fun s -> Printf.printf "  [%6.1fs] %s\n%!" (elapsed ()) s) fmt

(* Contexts are shared across experiments (the golden run and the
   error-equivalence caches are per-workload). *)
let ctx_cache : (string, Context.t) Hashtbl.t = Hashtbl.create 16

let ctx_of (e : Registry.entry) =
  match Hashtbl.find_opt ctx_cache e.Registry.benchmark with
  | Some ctx -> ctx
  | None ->
    let ctx = Context.make (e.Registry.workload ()) in
    Hashtbl.replace ctx_cache e.Registry.benchmark ctx;
    ctx

let options = { Model.default_options with fi_budget = 60_000 }

let advf_cache : (string * string, Advf.report) Hashtbl.t = Hashtbl.create 32

let advf (e : Registry.entry) obj =
  match Hashtbl.find_opt advf_cache (e.Registry.benchmark, obj) with
  | Some r -> r
  | None ->
    let r = Model.analyze ~options (ctx_of e) ~object_name:obj in
    Hashtbl.replace advf_cache (e.Registry.benchmark, obj) r;
    note "aDVF %s/%s = %.4f (%d fi runs)" e.Registry.benchmark obj r.Advf.advf
      r.Advf.fi_runs;
    r

(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table I: benchmarks and target data objects";
  Format.printf "%a@." Registry.pp_table1 ()

let fig4_objects () =
  List.concat_map
    (fun (e : Registry.entry) ->
      List.map (fun obj -> (e, obj)) e.Registry.objects)
    Registry.table1

let fig4 () =
  section
    "Figure 4: aDVF per data object, broken down by analysis level\n\
     (#=operation  o=error propagation  .=algorithm)";
  List.iter
    (fun ((e : Registry.entry), obj) ->
      let r = advf e obj in
      let label = Printf.sprintf "%s %s" e.Registry.benchmark obj in
      print_endline
        (Chart.row ~label_width:22 ~label ~value:r.Advf.advf
           (Chart.stacked
              [
                ('#', r.Advf.by_level.(0));
                ('o', r.Advf.by_level.(1));
                ('.', r.Advf.by_level.(2));
              ])))
    (fig4_objects ());
  (* Evaluation conclusion 2: masking-event counts alone mislead. *)
  let cg = Registry.find "CG" in
  let r_r = advf cg "r" and r_c = advf cg "colidx" in
  Printf.printf
    "\n\
     Conclusion-2 check (CG): r has %.1f masking events vs %.1f for colidx\n\
     over %d vs %d involvements; only the ratio (aDVF %.4f vs %.4f) ranks\n\
     the objects correctly -- event counts alone are not a resilience \
     measure.\n"
    r_r.Advf.masking_events r_c.Advf.masking_events r_r.Advf.involvements
    r_c.Advf.involvements r_r.Advf.advf r_c.Advf.advf

let fig5 () =
  section
    "Figure 5: aDVF breakdown by masking kind at the operation and\n\
     propagation levels (w=overwriting  s=overshadowing  l=logic/compare  \
     x=other)";
  List.iter
    (fun ((e : Registry.entry), obj) ->
      let r = advf e obj in
      let label = Printf.sprintf "%s %s" e.Registry.benchmark obj in
      print_endline
        (Chart.row ~label_width:22 ~label
           ~value:(r.Advf.by_level.(0) +. r.Advf.by_level.(1))
           (Chart.stacked
              [
                ('w', r.Advf.by_kind.(0));
                ('s', r.Advf.by_kind.(2));
                ('l', r.Advf.by_kind.(1));
                ('x', r.Advf.by_kind.(3));
              ])))
    (fig4_objects ())

let fig6 () =
  section
    "Figure 6: model validation -- aDVF vs exhaustive fault injection\n\
     (rank orders must agree; success-rate scale differs by definition)";
  let study name objs =
    let e = Registry.find name in
    let ctx = ctx_of e in
    let advfs =
      Array.of_list
        (List.map
           (fun o -> (Model.analyze ~options ctx ~object_name:o).Advf.advf)
           objs)
    in
    let exs =
      Array.of_list
        (List.map
           (fun o ->
             let r =
               Moard_inject.Exhaustive.campaign ctx ~object_name:o
             in
             note "exhaustive %s/%s = %.4f (%d injections, %d runs)" name o
               r.Moard_inject.Exhaustive.success_rate
               r.Moard_inject.Exhaustive.injections
               r.Moard_inject.Exhaustive.runs;
             r.Moard_inject.Exhaustive.success_rate)
           objs)
    in
    Printf.printf "\n%s (%s):\n" name e.Registry.routine;
    List.iteri
      (fun t o ->
        Printf.printf "  %-14s aDVF %6.4f |%s|   exhaustive %6.4f |%s|\n" o
          advfs.(t)
          (Chart.bar ~width:24 advfs.(t))
          exs.(t)
          (Chart.bar ~width:24 exs.(t)))
      objs;
    let tau = Moard_stats.Rank.kendall_tau advfs exs in
    Printf.printf "  rank order agreement: %s (Kendall tau %.2f)\n"
      (if Moard_stats.Rank.same_order advfs exs then "EXACT" else "partial")
      tau
  in
  study "CG" [ "r"; "colidx"; "a"; "rowstr" ];
  study "LULESH" [ "m_delv_zeta"; "m_elemBC"; "m_x"; "m_y"; "m_z" ]

let fig7 () =
  section
    "Figure 7: random fault injection (500..3500 tests, 95% margins) vs\n\
     aDVF for LULESH m_x / m_y / m_z";
  let e = Registry.find "LULESH" in
  let ctx = ctx_of e in
  let objs = [ "m_x"; "m_y"; "m_z" ] in
  let sizes = [ 500; 1000; 1500; 2000; 2500; 3000; 3500 ] in
  Printf.printf "%-8s" "tests";
  List.iter (fun o -> Printf.printf "  %-18s" o) objs;
  Printf.printf " rank(mx,my,mz)\n";
  let rank_strings = ref [] in
  List.iteri
    (fun si tests ->
      Printf.printf "%-8d" tests;
      let rates =
        List.mapi
          (fun oi o ->
            let r =
              Moard_inject.Random_fi.campaign ~use_cache:true
                ~seed:(1000 + (si * 10) + oi)
                ~tests ctx ~object_name:o
            in
            Printf.printf "  %5.3f +/- %5.3f   "
              r.Moard_inject.Random_fi.success_rate
              r.Moard_inject.Random_fi.margin_95;
            r.Moard_inject.Random_fi.success_rate)
          objs
      in
      let rank = Moard_stats.Rank.ranks (Array.of_list rates) in
      let rs =
        String.concat "," (Array.to_list (Array.map string_of_int rank))
      in
      rank_strings := rs :: !rank_strings;
      Printf.printf " %s\n%!" rs)
    sizes;
  let advfs =
    List.map
      (fun o -> (Model.analyze ~options ctx ~object_name:o).Advf.advf)
      objs
  in
  Printf.printf "%-8s" "aDVF";
  List.iter (fun a -> Printf.printf "  %5.3f (exact)      " a) advfs;
  let arank = Moard_stats.Rank.ranks (Array.of_list advfs) in
  Printf.printf " %s\n"
    (String.concat "," (Array.to_list (Array.map string_of_int arank)));
  let distinct = List.sort_uniq compare !rank_strings in
  Printf.printf
    "\n\
     RFI produced %d distinct rank order(s) across campaign sizes; aDVF is\n\
     deterministic, so its ranking never varies (evaluation conclusion 4).\n"
    (List.length distinct)

let case_study name =
  let e = Registry.find name in
  let obj = List.hd e.Registry.objects in
  let r = advf e obj in
  Printf.printf
    "  %-12s aDVF %6.4f |%s|  (op %.3f, propagation %.3f, algorithm %.3f)\n"
    (Printf.sprintf "%s[%s]" name obj)
    r.Advf.advf
    (Chart.bar ~width:30 r.Advf.advf)
    r.Advf.by_level.(0) r.Advf.by_level.(1) r.Advf.by_level.(2);
  r.Advf.advf

let fig8 () =
  section "Figure 8: aDVF of C in matrix multiplication, without / with ABFT";
  let plain = case_study "MM" in
  let abft = case_study "ABFT_MM" in
  Printf.printf
    "ABFT raises aDVF of C from %.4f to %.4f (%.1fx) -- the checksum\n\
     verification corrects corrupted elements during error propagation.\n"
    plain abft
    (abft /. Float.max plain 1e-9)

let fig9 () =
  section "Figure 9: aDVF of xe in Particle Filter, without / with ABFT";
  let plain = case_study "PF" in
  let abft = case_study "ABFT_PF" in
  Printf.printf
    "ABFT changes aDVF of xe only marginally (%.4f vs %.4f): operation-level\n\
     masking dominates and PF itself tolerates what ABFT would correct --\n\
     the model shows this protection is not worth its overhead.\n"
    plain abft

let bound () =
  section
    "Propagation bound (SIII-D): faults not masked within k operations\n\
     that end in numerically different outcomes";
  let ks = [ 5; 10; 20; 50 ] in
  let totals = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace totals k (0, 0)) ks;
  List.iter
    (fun (e : Registry.entry) ->
      let ctx = ctx_of e in
      List.iter
        (fun obj ->
          let points =
            Moard_core.Bound.study ~samples:63 ~k_values:ks ctx
              ~object_name:obj
          in
          List.iter
            (fun (p : Moard_core.Bound.point) ->
              let s, i = Hashtbl.find totals p.Moard_core.Bound.k in
              Hashtbl.replace totals p.Moard_core.Bound.k
                ( s + p.Moard_core.Bound.survivors,
                  i + p.Moard_core.Bound.incorrect_of_survivors ))
            points)
        e.Registry.objects;
      note "bound study: %s done" e.Registry.benchmark)
    Registry.table1;
  Printf.printf "\n%-6s %-12s %-12s %s\n" "k" "survivors" "incorrect"
    "fraction incorrect";
  List.iter
    (fun k ->
      let s, i = Hashtbl.find totals k in
      Printf.printf "%-6d %-12d %-12d %.3f\n" k s i
        (if s = 0 then 1.0 else float_of_int i /. float_of_int s))
    ks;
  Printf.printf
    "\n\
     The fraction rises toward 1.0 with k: errors that survive the window\n\
     almost never get masked by further propagation, which justifies\n\
     bounding the analysis at k=50.\n"

(* ------------------------------------------------------------------ *)

(* The §VII discussion studies: code optimization, algorithm choice, input
   dependence, and multi-bit error patterns all change aDVF — each gets an
   ablation that shows the effect. *)
let ablation () =
  section
    "Ablations (SVII): optimization, algorithm choice, inputs, multi-bit";
  let advf_of ?(options = options) w obj =
    (Model.analyze ~options (Context.make w) ~object_name:obj).Advf.advf
  in
  (* SVII-A code optimization: optimization changes the operation mix on a
     data object and with it the aDVF. The demo kernel computes a dead
     diagnostic expression over x (removed by DCE) and an always-true
     guard (folded away): at -O2 both consumption classes disappear. The
     Table-I kernels, whose compiled code is already tight, bound the
     effect from below. *)
  let opt_demo =
    let open Moard_lang.Ast.Dsl in
    let n = 12 in
    Moard_inject.Workload.make ~name:"opt-demo"
      ~program:
        (Moard_lang.Compile.program
           {
             Moard_lang.Ast.globals =
               [ garr_f64_init "x"
                   (Array.init n (fun j -> 1.0 +. float_of_int j));
                 garr_f64 "out" 1 ];
             funs =
               [
                 fn "main"
                   [
                     flt_ "s" (f 0.0);
                     for_ "k" (i 0) (i n)
                       [
                         (* dead diagnostic: removed by DCE at -O2 *)
                         flt_ "dead" ((v "s" - "x".%(v "k")) * f 3.0);
                         (* constant guard: folded away at -O2 *)
                         when_
                           (f 1.0 < f 2.0)
                           [ "s" <-- v "s" + "x".%(v "k") ];
                       ];
                     ("out".%(i 0) <- v "s");
                     ret_void;
                   ];
               ];
           })
      ~targets:[ "x" ] ~outputs:[ "out" ]
      ~accept:(Moard_inject.Workload.rel_err_accept 1e-6)
      ()
  in
  Printf.printf "\n[code optimization] aDVF before/after -O2:\n";
  List.iter
    (fun (name, w, obj) ->
      let before = advf_of w obj in
      let after =
        advf_of
          { w with
            Moard_inject.Workload.program =
              Moard_opt.Passes.optimize w.Moard_inject.Workload.program }
          obj
      in
      Printf.printf "  %-22s %-12s O0 %.4f -> O2 %.4f (%+.4f)\n%!" name obj
        before after (after -. before))
    [
      ("opt-demo", opt_demo, "x");
      ("LULESH", Moard_kernels.Lulesh.workload (), "m_delv_zeta");
      ("MM", Moard_kernels.Abft_mm.workload (), "C");
    ];
  (* SVII-A algorithm choice: Poisson relaxation as pure Jacobi (1 level)
     vs multigrid (3 levels). *)
  Printf.printf "\n[algorithm choice] u in MG, Jacobi vs multigrid:\n";
  let jacobi = advf_of (Moard_kernels.Mg.workload ~levels:1 ~cycles:4 ()) "u" in
  let multigrid = advf_of (Moard_kernels.Mg.workload ()) "u" in
  Printf.printf
    "  pure Jacobi %.4f vs V-cycle multigrid %.4f -- the multilevel\n\
     averaging changes how much corruption u tolerates.\n%!"
    jacobi multigrid;
  (* SVII-C input dependence: same CG code, different input problems. *)
  Printf.printf "\n[input dependence] CG aDVF across input problems:\n";
  List.iter
    (fun seed ->
      let w = Moard_kernels.Cg.workload ~seed () in
      Printf.printf "  seed %-4d r %.4f   colidx %.4f\n%!" seed
        (advf_of w "r") (advf_of w "colidx"))
    [ 42; 43; 44 ];
  Printf.printf
    "  (values move with the input, so the analysis must be redone per\n\
     input problem -- the paper's SVII-C limitation)\n";
  (* SVII-B multi-bit error patterns. *)
  Printf.printf "\n[multi-bit patterns] LULESH, single vs burst-2 vs pair-8:\n";
  let lulesh = Registry.find "LULESH" in
  let ctx = ctx_of lulesh in
  List.iter
    (fun obj ->
      let with_multi multi =
        (Model.analyze ~options:{ options with Model.multi } ctx
           ~object_name:obj)
          .Advf.advf
      in
      Printf.printf "  %-14s single %.4f   +burst2 %.4f   +pair8 %.4f\n%!"
        obj (with_multi []) (with_multi [ `Burst 2 ]) (with_multi [ `Pair 8 ]))
    [ "m_delv_zeta"; "m_elemBC" ]

let timing () =
  section "Bechamel timing of the model's phases (one test per experiment)";
  let open Bechamel in
  let cg = Registry.find "CG" in
  let lulesh = Registry.find "LULESH" in
  let mm = Registry.find "MM" in
  let ctx = ctx_of lulesh in
  let small_options = { options with fi_budget = 500 } in
  let tests =
    [
      Test.make ~name:"table1:registry-render"
        (Staged.stage (fun () ->
             ignore (Format.asprintf "%a" Registry.pp_table1 ())));
      Test.make ~name:"fig4:advf-analysis(LULESH delv_zeta)"
        (Staged.stage (fun () ->
             ignore
               (Model.analyze ~options:small_options ctx
                  ~object_name:"m_delv_zeta")));
      Test.make ~name:"fig5:kind-breakdown(LULESH elemBC)"
        (Staged.stage (fun () ->
             ignore
               (Model.analyze ~options:small_options ctx
                  ~object_name:"m_elemBC")));
      Test.make ~name:"fig6:exhaustive-fi(LULESH m_x, stride 16)"
        (Staged.stage (fun () ->
             ignore
               (Moard_inject.Exhaustive.campaign ~pattern_stride:16 ctx
                  ~object_name:"m_x")));
      Test.make ~name:"fig7:random-fi(LULESH m_y, 100 tests)"
        (Staged.stage
           (let seed = ref 0 in
            fun () ->
              incr seed;
              ignore
                (Moard_inject.Random_fi.campaign ~use_cache:true ~seed:!seed
                   ~tests:100 ctx ~object_name:"m_y")));
      Test.make ~name:"fig8:golden-run(MM)"
        (Staged.stage (fun () ->
             ignore (Moard_vm.Machine.run (Context.machine (ctx_of mm)) ~entry:"main")));
      Test.make ~name:"fig9:golden-trace(CG)"
        (Staged.stage (fun () ->
             ignore (Moard_vm.Machine.trace (Context.machine (ctx_of cg)) ~entry:"main")));
      Test.make ~name:"bound:propagation-replay(LULESH m_z, k=50)"
        (Staged.stage (fun () ->
             ignore
               (Moard_core.Bound.study ~samples:8 ~k_values:[ 50 ] ctx
                  ~object_name:"m_z")));
    ]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~quota:(Time.second 0.5) ~limit:200 () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ clock ] test in
      Hashtbl.iter
        (fun name (b : Benchmark.t) ->
          let times =
            Array.map
              (fun m ->
                Measurement_raw.get ~label:(Measure.label clock) m
                /. Float.max 1.0 (Measurement_raw.run m))
              b.Benchmark.lr
          in
          if Array.length times > 0 then
            Printf.printf "  %-45s %12.0f ns/run (%d samples)\n%!" name
              (Moard_stats.Summary.mean times)
              (Array.length times))
        results)
    tests

(* ------------------------------------------------------------------ *)

(* The streaming-pipeline benchmark: tracing throughput into the packed
   tape, its footprint against the boxed representation it replaced, and
   domain scaling of the analysis over one shared golden run. Writes
   BENCH_pipeline.json (full mode only; --quick is the CI smoke test). *)

let quick = ref false

(* Domain scaling degrades to the sequential schedule on a single-core
   host — every count measures noise, not speedup — so every bench
   target with a domain-scaling table skips the table there and
   annotates its JSON with the same key. *)
let host_cores () = Domain.recommended_domain_count ()
let single_core () = host_cores () = 1
let domains_skip_reason = "host has 1 recommended domain"

let scaling_domains () =
  if single_core () then [ 1 ] else if !quick then [ 1; 2 ] else [ 1; 2; 4 ]

(* Writes the domain-scaling array as the final key of the JSON object,
   or the uniform skip annotation on a single-core host. [runs] pairs a
   domain count with its wall clock; [t1] is the one-domain clock. *)
let emit_domains_json oc ~key ~t1 runs =
  if single_core () then
    Printf.fprintf oc "  %S: [],\n  \"campaign_domains_skipped\": %S\n" key
      domains_skip_reason
  else begin
    Printf.fprintf oc "  %S: [\n" key;
    List.iteri
      (fun i (d, s) ->
        Printf.fprintf oc
          "    { \"domains\": %d, \"seconds\": %.4f, \"speedup\": %.3f }%s\n"
          d s (t1 /. s)
          (if i = List.length runs - 1 then "" else ","))
      runs;
    Printf.fprintf oc "  ]\n"
  end

let pipeline () =
  section
    "Streaming trace pipeline: packed tape, shared golden run, domain \
     scaling (AMG)";
  let e = Registry.find "AMG" in
  let obj = "ipiv" in
  let g0 = Context.golden_executions () in
  let ctx = Context.make (e.Registry.workload ()) in
  let machine = Context.machine ctx in
  let entry = (Context.workload ctx).Moard_inject.Workload.entry in
  let tape = Context.tape ctx in
  let events = Moard_trace.Tape.length tape in
  (* Tracing throughput: golden run + packed emission, best of N. *)
  let reps = if !quick then 1 else 3 in
  let trace_s = ref infinity in
  for _ = 1 to reps do
    let t = Unix.gettimeofday () in
    ignore (Moard_vm.Machine.trace machine ~entry);
    trace_s := Float.min !trace_s (Unix.gettimeofday () -. t)
  done;
  let events_per_sec = float_of_int events /. !trace_s in
  note "tracing: %d events in %.4fs (%.0f events/sec)" events !trace_s
    events_per_sec;
  (* Footprint: packed store vs the boxed tape it replaced. *)
  let packed = Moard_trace.Tape.packed_bytes tape in
  let boxed = Moard_trace.Tape.boxed_bytes_estimate tape in
  let reduction = float_of_int boxed /. float_of_int packed in
  note "tape footprint: %d bytes packed vs %d boxed (%.2fx reduction)" packed
    boxed reduction;
  (* Domain scaling over the one frozen tape. Each measurement analyzes on
     a fresh context shard, with the error-equivalence cache off: cached
     verdict reuse is partition-dependent (the equivalence key is a
     heuristic), so only the uncached analysis is bit-identical across
     domain counts. *)
  let host_cores = host_cores () in
  let domain_counts = scaling_domains () in
  let options = { Model.default_options with use_cache = false } in
  let runs =
    List.map
      (fun d ->
        let t = Unix.gettimeofday () in
        let r =
          Moard_parallel.Parallel_model.analyze_ctx ~options ~domains:d
            (Context.shard ctx) ~object_name:obj
        in
        let s = Unix.gettimeofday () -. t in
        note "analyze %s/%s on %d domain(s): %.3fs (aDVF %.6f)"
          e.Registry.benchmark obj d s r.Advf.advf;
        (d, s, r))
      domain_counts
  in
  let _, t1, r1 = List.hd runs in
  let identical =
    List.for_all (fun (_, _, r) -> r.Advf.advf = r1.Advf.advf) runs
  in
  let goldens = Context.golden_executions () - g0 in
  Printf.printf
    "\n\
     golden executions for the whole pipeline: %d (shared by tracing, \n\
     site enumeration and all %d analysis configurations)\n\
     aDVF bit-identical across domain counts: %b\n"
    goldens (List.length runs) identical;
  List.iter
    (fun (d, s, _) ->
      Printf.printf "  %d domain(s): %7.3fs  speedup %.2fx\n" d s (t1 /. s))
    runs;
  if host_cores < List.fold_left (fun a (d, _, _) -> max a d) 1 runs then
    Printf.printf
      "  (host has %d core(s): domains beyond that only measure \
       synchronization overhead, not speedup)\n"
      host_cores;
  if goldens <> 1 then failwith "pipeline: golden run executed more than once";
  if not identical then failwith "pipeline: aDVF drifted across domains";
  if !quick then note "quick mode: not writing BENCH_pipeline.json"
  else begin
    let oc = open_out "BENCH_pipeline.json" in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": %S,\n\
      \  \"object\": %S,\n\
      \  \"events\": %d,\n\
      \  \"trace_seconds\": %.6f,\n\
      \  \"events_per_sec\": %.0f,\n\
      \  \"packed_bytes\": %d,\n\
      \  \"boxed_bytes_estimate\": %d,\n\
      \  \"packing_reduction\": %.3f,\n\
      \  \"golden_executions\": %d,\n\
      \  \"use_cache\": false,\n\
      \  \"host_cores\": %d,\n\
      \  \"advf\": \"%h\",\n\
      \  \"advf_decimal\": %.17g,\n\
      \  \"advf_bit_identical_across_domains\": %b,\n"
      e.Registry.benchmark obj events !trace_s events_per_sec packed boxed
      reduction goldens host_cores r1.Advf.advf r1.Advf.advf identical;
    emit_domains_json oc ~key:"domains" ~t1
      (List.map (fun (d, s, _) -> (d, s)) runs);
    Printf.fprintf oc "}\n";
    close_out oc;
    note "wrote BENCH_pipeline.json"
  end

(* ------------------------------------------------------------------ *)

(* The campaign benchmark: statistical fault injection against the
   exhaustive sweep on the same object. Establishes the paper-SV economics
   (target interval reached with a fraction of the exhaustive injections),
   checks the CI covers the exhaustive truth, and proves the report is
   bit-identical across domain counts. Writes BENCH_campaign.json (full
   mode only; --quick is the CI smoke test). *)

let campaign () =
  let module Plan = Moard_campaign.Plan in
  let module Engine = Moard_campaign.Engine in
  let bench, obj, ci_width =
    if !quick then ("LULESH", "m_elemBC", 0.02) else ("MM", "C", 0.02)
  in
  section
    (Printf.sprintf
       "Statistical campaign vs exhaustive sweep (%s/%s, target halfwidth \
        %g)"
       bench obj ci_width);
  let e = Registry.find bench in
  let ctx = ctx_of e in
  let t = Unix.gettimeofday () in
  let truth = Moard_inject.Exhaustive.campaign ctx ~object_name:obj in
  let sweep_s = Unix.gettimeofday () -. t in
  note "exhaustive: %d injections (%d runs) in %.3fs -> rate %.6f"
    truth.Moard_inject.Exhaustive.injections
    truth.Moard_inject.Exhaustive.runs sweep_s
    truth.Moard_inject.Exhaustive.success_rate;
  let plan = Plan.make ~seed:42 ~ci_width ctx ~objects:[ obj ] in
  let domain_counts = scaling_domains () in
  let runs =
    List.map
      (fun d ->
        let t = Unix.gettimeofday () in
        let r = Engine.run ~domains:d ctx plan in
        let s = Unix.gettimeofday () -. t in
        let o = r.Engine.objects.(0) in
        note
          "campaign on %d domain(s): %.3fs, %d samples (%d runs, %d cache \
           hits), [%.4f, %.4f] %s"
          d s o.Engine.samples o.Engine.runs o.Engine.cache_hits o.Engine.lo
          o.Engine.hi
          (Engine.stop_reason_name o.Engine.stopped);
        (d, s, r))
      domain_counts
  in
  let _, t1, r1 = List.hd runs in
  let stable = Moard_report.Campaign_report.stable_json r1 in
  let identical =
    List.for_all
      (fun (_, _, r) -> Moard_report.Campaign_report.stable_json r = stable)
      runs
  in
  let o = r1.Engine.objects.(0) in
  let exact = truth.Moard_inject.Exhaustive.success_rate in
  let covered = o.Engine.lo -. 1e-12 <= exact && exact <= o.Engine.hi +. 1e-12 in
  let savings =
    float_of_int truth.Moard_inject.Exhaustive.injections
    /. float_of_int (max 1 o.Engine.samples)
  in
  Printf.printf
    "\n\
     report bit-identical across domain counts: %b\n\
     exhaustive rate %.6f inside campaign CI [%.6f, %.6f]: %b\n\
     injection economy: %d samples for a population of %d (%.1fx fewer)\n"
    identical exact o.Engine.lo o.Engine.hi covered o.Engine.samples
    o.Engine.population savings;
  if not identical then failwith "campaign: report drifted across domains";
  if not covered then failwith "campaign: CI missed the exhaustive rate";
  if o.Engine.stopped = Engine.Ci_target && o.Engine.samples >= o.Engine.population
  then failwith "campaign: no injection savings over the sweep";
  if !quick then note "quick mode: not writing BENCH_campaign.json"
  else begin
    let oc = open_out "BENCH_campaign.json" in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": %S,\n\
      \  \"object\": %S,\n\
      \  \"seed\": %d,\n\
      \  \"ci_width_target\": %g,\n\
      \  \"population\": %d,\n\
      \  \"exhaustive_rate\": \"%h\",\n\
      \  \"exhaustive_rate_decimal\": %.17g,\n\
      \  \"exhaustive_injections\": %d,\n\
      \  \"exhaustive_seconds\": %.4f,\n\
      \  \"campaign_samples\": %d,\n\
      \  \"campaign_runs\": %d,\n\
      \  \"campaign_cache_hits\": %d,\n\
      \  \"campaign_estimate\": \"%h\",\n\
      \  \"campaign_estimate_decimal\": %.17g,\n\
      \  \"campaign_ci\": [\"%h\", \"%h\"],\n\
      \  \"campaign_ci_decimal\": [%.17g, %.17g],\n\
      \  \"stopped\": %S,\n\
      \  \"ci_covers_exhaustive\": %b,\n\
      \  \"injection_savings\": %.3f,\n\
      \  \"report_bit_identical_across_domains\": %b,\n"
      bench obj plan.Plan.seed ci_width o.Engine.population exact exact
      truth.Moard_inject.Exhaustive.injections sweep_s o.Engine.samples
      o.Engine.runs o.Engine.cache_hits o.Engine.estimate o.Engine.estimate
      o.Engine.lo o.Engine.hi o.Engine.lo o.Engine.hi
      (Engine.stop_reason_name o.Engine.stopped)
      covered savings identical;
    emit_domains_json oc ~key:"domains" ~t1
      (List.map (fun (d, s, _) -> (d, s)) runs);
    Printf.fprintf oc "}\n";
    close_out oc;
    note "wrote BENCH_campaign.json"
  end

(* ------------------------------------------------------------------ *)

(* The result-store benchmark: moardd on a Unix socket over a cold
   content-addressed store. Measures the cold compute-and-store path
   against warm cache hits for one probe query (asserting the payloads
   are byte-identical to an offline computation), then drives a zipf-ish
   request mix over the 16 registry objects and reports the hit ratio.
   Writes BENCH_store.json (full mode only; --quick is the CI smoke
   test). *)

let store_bench () =
  let module Daemon = Moard_server.Daemon in
  let module Client = Moard_server.Client in
  let module Jsonx = Moard_server.Jsonx in
  let module Query = Moard_store.Query in
  section
    "Result store + moardd: cold vs warm query latency, hit ratio under a \
     zipf-ish mix";
  let dir = Filename.temp_file "moard_bench_store" "" in
  Sys.remove dir;
  let socket = Filename.temp_file "moardd_bench" ".sock" in
  Sys.remove socket;
  let cfg =
    {
      Daemon.default_config with
      Daemon.socket;
      store_dir = dir;
      workers = 2;
      timeout_s = 600.0;
    }
  in
  let d = Daemon.start cfg in
  Fun.protect ~finally:(fun () -> Daemon.stop d) @@ fun () ->
  let rpc req = Client.rpc ~socket req in
  let advf_req ?fi_budget bench obj =
    Jsonx.Obj
      ([
         ("op", Jsonx.Str "advf");
         ("benchmark", Jsonx.Str bench);
         ("object", Jsonx.Str obj);
       ]
      @
      match fi_budget with
      | Some b -> [ ("fi_budget", Jsonx.Int b) ]
      | None -> [])
  in
  let served h =
    Option.value ~default:"?" (Jsonx.str (Jsonx.member "served" h))
  in
  let is_hit h =
    match served h with "memory-hit" | "disk-hit" -> true | _ -> false
  in
  (* cold vs warm on one probe query *)
  let probe_bench, probe_obj = ("LULESH", "m_elemBC") in
  let t = Unix.gettimeofday () in
  let h1, p1 = rpc (advf_req probe_bench probe_obj) in
  let cold_s = Unix.gettimeofday () -. t in
  note "cold %s/%s: %.4fs (%s)" probe_bench probe_obj cold_s (served h1);
  let warm_reps = if !quick then 10 else 50 in
  let warm_s = ref infinity in
  let warm_ok = ref true in
  for _ = 1 to warm_reps do
    let t = Unix.gettimeofday () in
    let h, p = rpc (advf_req probe_bench probe_obj) in
    warm_s := Float.min !warm_s (Unix.gettimeofday () -. t);
    if not (is_hit h && p = p1) then warm_ok := false
  done;
  let offline =
    Query.advf_payload
      (ctx_of (Registry.find probe_bench))
      ~object_name:probe_obj
  in
  let identical = p1 = Some offline && !warm_ok in
  let speedup = cold_s /. !warm_s in
  note "warm (best of %d): %.6fs -- %.0fx over cold" warm_reps !warm_s speedup;
  note "daemon payload byte-identical to offline computation: %b" identical;
  if not identical then
    failwith "store: daemon payload differs from the offline computation";
  if speedup < 10.0 then
    failwith "store: warm query not at least 10x faster than cold";
  (* zipf-ish mix over the registry objects: rank i drawn with weight
     1/(i+1), deterministic LCG so the mix is reproducible (and so the
     cluster phase below can replay the identical request schedule) *)
  let mix =
    if !quick then [| ("LULESH", "m_elemBC"); ("LULESH", "m_delv_zeta") |]
    else
      Array.of_list
        (List.map
           (fun ((e : Registry.entry), obj) -> (e.Registry.benchmark, obj))
           (fig4_objects ()))
  in
  let n = Array.length mix in
  let make_lcg () =
    let state = ref 0x2545F491 in
    fun () ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      float_of_int !state /. 1073741824.0
  in
  let make_zipf arr =
    let n = Array.length arr in
    let weights = Array.init n (fun i -> 1.0 /. float_of_int (i + 1)) in
    let total_w = Array.fold_left ( +. ) 0.0 weights in
    fun next_float ->
      let x = next_float () *. total_w in
      let rec go i acc =
        if i = n - 1 then i
        else if acc +. weights.(i) >= x then i
        else go (i + 1) (acc +. weights.(i))
      in
      go 0 0.0
  in
  let pick = make_zipf mix in
  let draws = if !quick then 40 else 400 in
  (* latency per served-status: an aggregate q/s hides that the mix is
     bimodal (sub-ms hits vs ~minute cold computes) *)
  let percentile sorted q =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))
  in
  let note_lat lats served s =
    let r =
      match Hashtbl.find_opt lats served with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace lats served r;
        r
    in
    r := s :: !r
  in
  let lat_summary lats =
    List.map
      (fun (srv, r) ->
        let a = Array.of_list !r in
        Array.sort compare a;
        (srv, Array.length a, percentile a 0.5, percentile a 0.95,
         percentile a 0.99))
      (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) lats []))
  in
  let note_lat_rows rows =
    List.iter
      (fun (srv, cnt, p50, p95, p99) ->
        note "  %-11s %4d draws  p50 %.4fs  p95 %.4fs  p99 %.4fs" srv cnt p50
          p95 p99)
      rows
  in
  let emit_latency oc ~indent rows =
    Printf.fprintf oc "%s\"latency\": {\n" indent;
    List.iteri
      (fun i (srv, cnt, p50, p95, p99) ->
        Printf.fprintf oc
          "%s  %S: { \"draws\": %d, \"p50_s\": %.6f, \"p95_s\": %.6f, \
           \"p99_s\": %.6f }%s\n"
          indent srv cnt p50 p95 p99
          (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.fprintf oc "%s}" indent
  in
  let payloads : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let lats = Hashtbl.create 8 in
  let hits = ref 0 in
  let lcg = make_lcg () in
  let t = Unix.gettimeofday () in
  for _ = 1 to draws do
    let bench, obj = mix.(pick lcg) in
    let t1 = Unix.gettimeofday () in
    let h, p = rpc (advf_req ~fi_budget:60_000 bench obj) in
    note_lat lats (served h) (Unix.gettimeofday () -. t1);
    if is_hit h then incr hits;
    match p with
    | None -> failwith ("store: no payload for " ^ bench ^ "/" ^ obj)
    | Some p -> Hashtbl.replace payloads (bench ^ "/" ^ obj) p
  done;
  let mix_s = Unix.gettimeofday () -. t in
  let hit_ratio = float_of_int !hits /. float_of_int draws in
  let serial_lat = lat_summary lats in
  note "zipf mix: %d draws over %d objects in %.3fs (%.1f q/s, hit ratio \
        %.3f)"
    draws n mix_s
    (float_of_int draws /. mix_s)
    hit_ratio;
  note_lat_rows serial_lat;
  (* the cluster phase: the identical request schedule through two
     sharded daemons behind the consistent-hash proxy, after warming
     every object of the mix through the background warming queues.
     Every payload must be byte-identical to the single-daemon run (and
     a spot object to a direct offline computation); warm serving has
     to clear 3 q/s where the cold serial mix managed ~0.3. *)
  let module Local = Moard_cluster.Local in
  let cmix, cdraws = if !quick then ([| ("MM", "C") |], 10) else (mix, draws) in
  let cpick = make_zipf cmix in
  let offline_advf bench obj =
    Query.advf_payload
      ~options:
        { Model.default_options with Model.fi_budget = 60_000; batch = true }
      (ctx_of (Registry.find bench))
      ~object_name:obj
  in
  let expected =
    let offline_cache = Hashtbl.create 4 in
    fun bench obj ->
      let key = bench ^ "/" ^ obj in
      match Hashtbl.find_opt payloads key with
      | Some p -> p
      | None -> (
        match Hashtbl.find_opt offline_cache key with
        | Some p -> p
        | None ->
          let p = offline_advf bench obj in
          Hashtbl.replace offline_cache key p;
          p)
  in
  let croot = Filename.temp_file "moard_bench_cluster" "" in
  Sys.remove croot;
  let cluster = Local.start ~root:croot ~shards:2 ~workers:1 () in
  Fun.protect ~finally:(fun () -> Local.stop cluster) @@ fun () ->
  let psock = Local.socket cluster in
  let crpc req = Client.rpc ~socket:psock req in
  let jget path h =
    List.fold_left (fun v k -> Option.bind v (Jsonx.member k)) (Some h) path
  in
  let t = Unix.gettimeofday () in
  Array.iter
    (fun (bench, obj) ->
      let h, _ =
        crpc
          (Jsonx.Obj
             [
               ("op", Jsonx.Str "warm");
               ("benchmark", Jsonx.Str bench);
               ("object", Jsonx.Str obj);
               ("fi_budget", Jsonx.Int 60_000);
             ])
      in
      match Client.error_of h with
      | Some (code, msg) ->
        failwith (Printf.sprintf "cluster warm %s/%s: %s: %s" bench obj code msg)
      | None -> ())
    cmix;
  (* block until both warming layers drain: proxy queue pushed out, every
     shard's queue computed, shard pools idle *)
  let drained () =
    let h, _ = crpc (Jsonx.Obj [ ("op", Jsonx.Str "stat") ]) in
    let queued p = Option.value ~default:1 (Jsonx.int (jget p h)) in
    queued [ "proxy"; "warming"; "queued" ] = 0
    && Option.value ~default:[] (Jsonx.list (jget [ "shards" ] h))
       |> List.for_all (fun s ->
              let i p = Option.value ~default:1 (Jsonx.int (jget p s)) in
              Jsonx.bool (jget [ "alive" ] s) = Some true
              && i [ "stat"; "warming"; "queued" ] = 0
              && Jsonx.bool (jget [ "stat"; "warming"; "busy" ] s) = Some false
              && i [ "stat"; "pool"; "queued" ] = 0
              && i [ "stat"; "pool"; "running" ] = 0)
  in
  let deadline = Unix.gettimeofday () +. 3600. in
  while (not (drained ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 1.0
  done;
  let cwarm_s = Unix.gettimeofday () -. t in
  if not (drained ()) then failwith "cluster: warming did not drain in 3600s";
  (* a drained queue is not a warmed store: a failed warm drains too.
     Demand every queued object actually computed, with the full stat
     on failure so a miss is diagnosable instead of a qps shortfall. *)
  (let h, _ = crpc (Jsonx.Obj [ ("op", Jsonx.Str "stat") ]) in
   let i path node = Option.value ~default:(-1) (Jsonx.int (jget path node)) in
   let forwarded = i [ "proxy"; "warming"; "warmed" ] h
   and fwd_errors = i [ "proxy"; "warming"; "errors" ] h in
   let shards = Option.value ~default:[] (Jsonx.list (jget [ "shards" ] h)) in
   let computed =
     List.fold_left (fun a s -> a + i [ "stat"; "warming"; "warmed" ] s) 0 shards
   and comp_errors =
     List.fold_left (fun a s -> a + i [ "stat"; "warming"; "errors" ] s) 0 shards
   in
   let n = Array.length cmix in
   if forwarded <> n || fwd_errors <> 0 || computed <> n || comp_errors <> 0
   then
     failwith
       (Printf.sprintf
          "cluster: warming incomplete (forwarded %d/%d err %d, computed \
           %d/%d err %d): %s"
          forwarded n fwd_errors computed n comp_errors (Jsonx.to_string h)));
  note "cluster: warmed %d objects across 2 shards in %.1fs" (Array.length cmix)
    cwarm_s;
  (* force every baseline before the clock starts: cache misses here are
     offline computes that would otherwise bill the serving loop *)
  Array.iter (fun (bench, obj) -> ignore (expected bench obj)) cmix;
  let clats = Hashtbl.create 8 in
  let chits = ref 0 in
  let cident = ref true in
  let lcg = make_lcg () in
  let t = Unix.gettimeofday () in
  for _ = 1 to cdraws do
    let bench, obj = cmix.(cpick lcg) in
    let t1 = Unix.gettimeofday () in
    let h, p = crpc (advf_req ~fi_budget:60_000 bench obj) in
    note_lat clats (served h) (Unix.gettimeofday () -. t1);
    if is_hit h then incr chits;
    match p with
    | None -> failwith ("cluster: no payload for " ^ bench ^ "/" ^ obj)
    | Some p -> if p <> expected bench obj then cident := false
  done;
  let cmix_s = Unix.gettimeofday () -. t in
  let cqps = float_of_int cdraws /. cmix_s in
  let spot_bench, spot_obj = cmix.(0) in
  let spot_ok =
    let _, p = crpc (advf_req ~fi_budget:60_000 spot_bench spot_obj) in
    p = Some (offline_advf spot_bench spot_obj)
  in
  let cident = !cident && spot_ok in
  let cluster_lat = lat_summary clats in
  note "cluster zipf mix: %d draws in %.3fs (%.1f q/s, hit ratio %.3f), \
        byte-identical to offline: %b"
    cdraws cmix_s cqps
    (float_of_int !chits /. float_of_int cdraws)
    cident;
  note_lat_rows cluster_lat;
  if not cident then
    failwith "cluster: payload differs from the single-daemon/offline bytes";
  if (not !quick) && cqps < 3.0 then
    failwith
      (Printf.sprintf "cluster: %.1f q/s on the warmed mix, need >= 3" cqps);
  if !quick then note "quick mode: not writing BENCH_store.json"
  else begin
    let oc = open_out "BENCH_store.json" in
    Printf.fprintf oc
      "{\n\
      \  \"probe\": { \"benchmark\": %S, \"object\": %S },\n\
      \  \"cold_seconds\": %.6f,\n\
      \  \"warm_seconds\": %.6f,\n\
      \  \"warm_speedup\": %.1f,\n\
      \  \"byte_identical_to_offline\": %b,\n\
      \  \"zipf\": {\n\
      \    \"objects\": %d,\n\
      \    \"draws\": %d,\n\
      \    \"hits\": %d,\n\
      \    \"hit_ratio\": %.4f,\n\
      \    \"seconds\": %.4f,\n\
      \    \"queries_per_sec\": %.1f,\n"
      probe_bench probe_obj cold_s !warm_s speedup identical n draws !hits
      hit_ratio mix_s
      (float_of_int draws /. mix_s);
    emit_latency oc ~indent:"    " serial_lat;
    Printf.fprintf oc
      "\n\
      \  },\n\
      \  \"cluster\": {\n\
      \    \"shards\": 2,\n\
      \    \"replication\": 2,\n\
      \    \"draws\": %d,\n\
      \    \"hits\": %d,\n\
      \    \"hit_ratio\": %.4f,\n\
      \    \"warm_seconds\": %.4f,\n\
      \    \"seconds\": %.4f,\n\
      \    \"queries_per_sec\": %.1f,\n\
      \    \"byte_identical_to_offline\": %b,\n"
      cdraws !chits
      (float_of_int !chits /. float_of_int cdraws)
      cwarm_s cmix_s cqps cident;
    emit_latency oc ~indent:"    " cluster_lat;
    Printf.fprintf oc "\n  }\n}\n";
    close_out oc;
    note "wrote BENCH_store.json"
  end

(* ------------------------------------------------------------------ *)

(* The masking-kernel benchmark: the bit-parallel exhaustive sweep against
   the scalar per-pattern walk on the same objects, plus the campaign
   engine across domain counts with the kernel on. Each sweep runs on a
   fresh context so neither mode inherits the other's warm
   error-equivalence cache. Writes BENCH_kernel.json (full mode only;
   --quick is the CI smoke test). *)

let kernel_bench () =
  section
    "Bit-parallel masking kernel: batched vs scalar exhaustive sweep, \
     domain scaling";
  let pairs =
    if !quick then [ ("LULESH", "m_elemBC") ]
    else [ ("MM", "C"); ("AMG", "ipiv") ]
  in
  let scan0 = Moard_analysis.Masking.scan_executions () in
  let sweep ~batch bench obj =
    let e = Registry.find bench in
    (* fresh context: a shared outcome cache would let whichever mode runs
       second ride on the first one's executions *)
    let ctx = Context.make (e.Registry.workload ()) in
    let t = Unix.gettimeofday () in
    let r = Moard_inject.Exhaustive.campaign ~batch ctx ~object_name:obj in
    let s = Unix.gettimeofday () -. t in
    note "%s %s/%s: %d sites, %d injections, %d runs in %.3fs (%.0f sites/s)"
      (if batch then "batched" else "scalar ")
      bench obj r.Moard_inject.Exhaustive.sites
      r.Moard_inject.Exhaustive.injections r.Moard_inject.Exhaustive.runs s
      (float_of_int r.Moard_inject.Exhaustive.sites /. s);
    (r, s, Context.inject_steps ctx)
  in
  let rows =
    List.map
      (fun (bench, obj) ->
        let sr, ss, ssteps = sweep ~batch:false bench obj in
        let br, bs, bsteps = sweep ~batch:true bench obj in
        let open Moard_inject.Exhaustive in
        if
          (sr.sites, sr.injections, sr.same, sr.acceptable, sr.incorrect,
           sr.crashed)
          <> (br.sites, br.injections, br.same, br.acceptable, br.incorrect,
              br.crashed)
        then failwith ("kernel: outcome counts drifted on " ^ bench);
        let speedup = ss /. bs in
        Printf.printf
          "  %s/%s: %.3fs scalar -> %.3fs batched (%.1fx); executions %d -> \
           %d; injected steps %d -> %d\n%!"
          bench obj ss bs speedup sr.runs br.runs ssteps bsteps;
        (bench, obj, sr, ss, ssteps, br, bs, bsteps, speedup))
      pairs
  in
  (* The whole point of the kernel: most patterns never reach the VM.
     Every pair must clear 5x; the address-arithmetic object (AMG's ipiv
     pivot indices, whose corrupted lanes redirect later loads and stores)
     must clear 10x — the golden-memory replay resolves redirected
     addresses analytically instead of falling through to injection. *)
  let scan_execs = Moard_analysis.Masking.scan_executions () - scan0 in
  if scan_execs <> 0 then
    failwith
      (Printf.sprintf
         "kernel: %d scalar-walk executions under single-bit (want 0)"
         scan_execs);
  List.iter
    (fun (bench, obj, sr, _, ssteps, br, _, bsteps, speedup) ->
      let open Moard_inject.Exhaustive in
      (* Savings show up as avoided executions (analytically decided
         lanes) or, where every lane genuinely needs ground truth, as
         avoided dynamic instructions (checkpoint-resumed suffixes). *)
      if br.runs >= sr.runs && 2 * bsteps >= ssteps then
        failwith ("kernel: no execution savings on " ^ bench);
      let floor = if bench = "AMG" && obj = "ipiv" then 10.0 else 5.0 in
      if (not !quick) && speedup < floor then
        failwith
          (Printf.sprintf "kernel: batched sweep %.1fx on %s/%s (want %.0fx)"
             speedup bench obj floor))
    rows;
  (* campaign engine across requested domain counts, kernel on: capping at
     the host's recommended count means oversubscription degrades to the
     sequential schedule instead of a slower convoy. On a single-core host
     every count degrades to the sequential schedule, so the scaling table
     would only measure noise — skip it and annotate the JSON instead. *)
  let bench, obj = List.hd pairs in
  let e = Registry.find bench in
  let ctx = ctx_of e in
  let module Plan = Moard_campaign.Plan in
  let module Engine = Moard_campaign.Engine in
  let plan = Plan.make ~seed:42 ~ci_width:0.02 ctx ~objects:[ obj ] in
  let host_cores = host_cores () in
  let single_core = single_core () in
  let domain_counts = scaling_domains () in
  let druns =
    List.map
      (fun d ->
        let t = Unix.gettimeofday () in
        let r = Engine.run ~domains:d ctx plan in
        let s = Unix.gettimeofday () -. t in
        note "campaign %s/%s on %d domain(s): %.3fs" bench obj d s;
        (d, s, Moard_report.Campaign_report.stable_json r))
      domain_counts
  in
  let _, t1, j1 = List.hd druns in
  if not (List.for_all (fun (_, _, j) -> j = j1) druns) then
    failwith "kernel: campaign report drifted across domain counts";
  let _, tmax, _ = List.nth druns (List.length druns - 1) in
  if single_core then
    Printf.printf
      "\n\
       campaign domain-scaling table skipped: host has 1 recommended \
       domain (nothing to scale over)\n"
  else begin
    Printf.printf
      "\n\
       campaign report bit-identical across domain counts: true\n\
       domains=%d vs domains=1 wall clock: %.3fs vs %.3fs (no \
       oversubscription penalty)\n"
      (List.nth domain_counts (List.length domain_counts - 1))
      tmax t1;
    if tmax > t1 *. 1.5 +. 0.05 then
      failwith "kernel: oversubscribed domains slower than sequential"
  end;
  if !quick then note "quick mode: not writing BENCH_kernel.json"
  else begin
    let oc = open_out "BENCH_kernel.json" in
    Printf.fprintf oc
      "{\n\
      \  \"host_cores\": %d,\n\
      \  \"scan_executions\": %d,\n\
      \  \"sweeps\": [\n"
      host_cores scan_execs;
    List.iteri
      (fun i (bench, obj, sr, ss, ssteps, br, bs, bsteps, speedup) ->
        let open Moard_inject.Exhaustive in
        Printf.fprintf oc
          "    { \"benchmark\": %S, \"object\": %S, \"sites\": %d,\n\
          \      \"injections\": %d, \"success_rate\": \"%h\",\n\
          \      \"success_rate_decimal\": %.17g,\n\
          \      \"scalar\": { \"seconds\": %.4f, \"runs\": %d, \
           \"injected_steps\": %d, \"sites_per_sec\": %.1f },\n\
          \      \"batched\": { \"seconds\": %.4f, \"runs\": %d, \
           \"injected_steps\": %d, \"sites_per_sec\": %.1f },\n\
          \      \"speedup\": %.2f }%s\n"
          bench obj sr.sites sr.injections sr.success_rate sr.success_rate ss
          sr.runs ssteps
          (float_of_int sr.sites /. ss)
          bs br.runs bsteps
          (float_of_int br.sites /. bs)
          speedup
          (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.fprintf oc "  ],\n";
    emit_domains_json oc ~key:"campaign_domains" ~t1
      (List.map (fun (d, s, _) -> (d, s)) druns);
    Printf.fprintf oc "}\n";
    close_out oc;
    note "wrote BENCH_kernel.json"
  end

let chaos_bench () =
  section "Chaos: survival economy of the serving stack under injected faults";
  (* the cost of resilience: sweep the per-operation fault rate and
     measure what the serving stack pays — retries, recomputes,
     quarantines — to keep every surviving response byte-identical.
     rate 0 is the control: the shims are in place but silent, so its
     wall clock is the harness overhead floor *)
  let module Harness = Moard_server.Chaos_harness in
  let rates = if !quick then [ 0.08 ] else [ 0.0; 0.08; 0.25 ] in
  let rounds = if !quick then 1 else 2 in
  let runs =
    List.map
      (fun rate ->
        let t = Unix.gettimeofday () in
        let r = Harness.run ~seed:7 ~rounds ~rate () in
        let s = Unix.gettimeofday () -. t in
        let injected =
          List.fold_left (fun a (_, _, i) -> a + i) 0 r.Harness.fault_stats
        in
        note
          "rate %.2f: %d requests, %d identical, %d typed, %d transport, %d \
           faults injected, survived %b (%.1fs)"
          rate r.Harness.requests r.Harness.identical
          (List.fold_left (fun a (_, n) -> a + n) 0 r.Harness.typed_errors)
          r.Harness.transport_failures injected r.Harness.survived s;
        if not r.Harness.survived then
          failwith (Printf.sprintf "chaos: rate %.2f did not survive" rate);
        (rate, s, injected, r))
      rates
  in
  Printf.printf "\nall %d chaos rates survived: true\n" (List.length runs);
  if !quick then note "quick mode: not writing BENCH_chaos.json"
  else begin
    let oc = open_out "BENCH_chaos.json" in
    Printf.fprintf oc "{\n  \"seed\": 7,\n  \"rounds\": %d,\n  \"rates\": [\n"
      rounds;
    List.iteri
      (fun i (rate, s, injected, r) ->
        Printf.fprintf oc
          "    { \"rate\": %.2f, \"seconds\": %.2f, \"requests\": %d,\n\
          \      \"identical\": %d, \"transport_failures\": %d,\n\
          \      \"faults_injected\": %d, \"quarantined\": %d,\n\
          \      \"schedule_hash\": %S, \"survived\": %b }%s\n"
          rate s r.Harness.requests r.Harness.identical
          r.Harness.transport_failures injected r.Harness.store_quarantined
          r.Harness.schedule_hash r.Harness.survived
          (if i = List.length runs - 1 then "" else ","))
      runs;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    note "wrote BENCH_chaos.json"
  end

(* ------------------------------------------------------------------ *)

(* The cross-input-size predictor against holdout ground truth: fit on
   the registry's training sizes, extrapolate to the holdout size, then
   pay for the campaign the predictor avoided and compare. Reports the
   wall-clock of fit+predict against the holdout campaign and the
   per-object absolute error. Writes BENCH_predict.json (full mode only;
   --quick is the CI smoke test). *)

let predict_bench () =
  let module Predict = Moard_predict.Predict in
  let module Plan = Moard_campaign.Plan in
  let module Engine = Moard_campaign.Engine in
  let cases =
    if !quick then [ ("MM", "C") ]
    else
      [
        ("MM", "C");
        ("ABFT_MM", "C");
        ("PF", "xe");
        ("ABFT_PF", "xe");
        ("BT", "grid_points");
        ("BT", "u");
        ("SP", "rhoi");
        ("SP", "grid_points");
        ("LU", "u");
        ("LU", "rsd");
        ("LULESH", "m_elemBC");
        ("LULESH", "m_delv_zeta");
      ]
  in
  section "Cross-input-size prediction vs holdout campaign";
  let rows =
    List.map
      (fun (bench, obj) ->
        let e = Registry.find bench in
        let sizes = Registry.training_sizes e in
        let target = Registry.holdout_size e in
        let t = Unix.gettimeofday () in
        let p =
          Predict.run
            ~workloads:(List.map (fun n -> (n, e.Registry.workload_at n)) sizes)
            ~object_name:obj ~target ()
        in
        let predict_s = Unix.gettimeofday () -. t in
        let t = Unix.gettimeofday () in
        let ctx = Context.make (e.Registry.workload_at target) in
        let plan = Plan.make ctx ~objects:[ obj ] in
        let r = Engine.run ctx plan in
        let truth_s = Unix.gettimeofday () -. t in
        let o = r.Engine.objects.(0) in
        let truth = o.Engine.estimate in
        let err = Float.abs (p.Predict.advf -. truth) in
        let covered =
          p.Predict.advf_ci.Moard_stats.Confidence.lo <= truth
          && truth <= p.Predict.advf_ci.Moard_stats.Confidence.hi
        in
        note
          "%s/%s @%d: predicted %.4f [%.4f, %.4f] in %.2fs, truth %.4f in \
           %.2fs -> |err| %.4f%s (%.1fx faster)"
          bench obj target p.Predict.advf
          p.Predict.advf_ci.Moard_stats.Confidence.lo
          p.Predict.advf_ci.Moard_stats.Confidence.hi predict_s truth truth_s
          err
          (if covered then ", covered" else ", MISSED")
          (truth_s /. Float.max 1e-9 predict_s);
        (bench, obj, target, p, predict_s, truth, truth_s, err, covered))
      cases
  in
  let worst =
    List.fold_left (fun a (_, _, _, _, _, _, _, e, _) -> Float.max a e) 0.0 rows
  in
  let covered_n =
    List.length (List.filter (fun (_, _, _, _, _, _, _, _, c) -> c) rows)
  in
  Printf.printf "\nworst |err| %.4f; CI covered truth for %d/%d objects\n"
    worst covered_n (List.length rows);
  if !quick then note "quick mode: not writing BENCH_predict.json"
  else begin
    let oc = open_out "BENCH_predict.json" in
    Printf.fprintf oc
      "{\n\
      \  \"worst_abs_error\": %.17g,\n\
      \  \"ci_covered\": %d,\n\
      \  \"objects\": [\n"
      worst covered_n;
    List.iteri
      (fun i (bench, obj, target, p, predict_s, truth, truth_s, err, covered) ->
        Printf.fprintf oc
          "    { \"benchmark\": %S, \"object\": %S, \"target\": %d, \
           \"training_sizes\": [%s], \"predicted\": %.17g, \"ci\": [%.17g, \
           %.17g], \"truth\": %.17g, \"abs_error\": %.17g, \"covered\": %b, \
           \"predict_seconds\": %.4f, \"truth_seconds\": %.4f, \"speedup\": \
           %.3f }%s\n"
          bench obj target
          (String.concat ", " (List.map string_of_int p.Predict.sizes))
          p.Predict.advf p.Predict.advf_ci.Moard_stats.Confidence.lo
          p.Predict.advf_ci.Moard_stats.Confidence.hi truth err covered
          predict_s truth_s
          (truth_s /. Float.max 1e-9 predict_s)
          (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    note "wrote BENCH_predict.json"
  end

(* ------------------------------------------------------------------ *)

(* The resilience-advisor benchmark: run the full advisor pipeline
   (rank, protect, re-measure) per benchmark, assert a second run is
   byte-identical, and report each object's Pareto front of protection
   plans — residual vulnerability against instruction overhead. Writes
   BENCH_advise.json (full mode only; --quick is the CI smoke test). *)

let advise_bench () =
  let module Advise = Moard_advise.Advise in
  let module Advise_report = Moard_report.Advise_report in
  let cases = if !quick then [ "MM" ] else [ "MM"; "CG" ] in
  section "Resilience advisor: protection plans and residual aDVF";
  let rows =
    List.map
      (fun bench ->
        let e = Registry.find bench in
        let w = e.Registry.workload () in
        let t = Unix.gettimeofday () in
        let r = Advise.run w in
        let advise_s = Unix.gettimeofday () -. t in
        let payload = Advise_report.stable_json r in
        let again = Advise_report.stable_json (Advise.run w) in
        if payload <> again then failwith "advise: report drifted on re-run";
        List.iter
          (fun (o : Advise.object_advice) ->
            note "%s/%s: vuln %.4f, contribution %.3g%s" bench
              o.Advise.object_name o.Advise.vulnerability
              o.Advise.contribution
              (match o.Advise.recommended with
              | None -> " (no plan recommended)"
              | Some id -> " -> " ^ id);
            List.iter
              (fun (p : Advise.plan_outcome) ->
                note "  %-18s residual %.4f reduction %8.1fx overhead %.2fx%s"
                  p.Advise.id p.Advise.vulnerability p.Advise.reduction
                  p.Advise.overhead
                  (if p.Advise.pareto then " [pareto]" else ""))
              o.Advise.plans)
          r.Advise.objects;
        note "%s advised in %.2fs (x2 for the determinism check)" bench
          advise_s;
        (bench, r, advise_s))
      cases
  in
  if !quick then note "quick mode: not writing BENCH_advise.json"
  else begin
    let oc = open_out "BENCH_advise.json" in
    Printf.fprintf oc "{\n  \"benchmarks\": [\n";
    List.iteri
      (fun i (bench, (r : Advise.t), advise_s) ->
        Printf.fprintf oc
          "    { \"benchmark\": %S, \"seconds\": %.4f, \"golden_steps\": %d, \
           \"objects\": [\n"
          bench advise_s r.Advise.base_steps;
        List.iteri
          (fun j (o : Advise.object_advice) ->
            Printf.fprintf oc
              "      { \"object\": %S, \"vulnerability\": %.17g, \
               \"contribution\": %.17g, \"recommended\": %s, \"plans\": [\n"
              o.Advise.object_name o.Advise.vulnerability
              o.Advise.contribution
              (match o.Advise.recommended with
              | None -> "null"
              | Some id -> Printf.sprintf "%S" id);
            List.iteri
              (fun k (p : Advise.plan_outcome) ->
                Printf.fprintf oc
                  "        { \"plan\": %S, \"residual_vulnerability\": \
                   %.17g, \"reduction\": %.17g, \"overhead\": %.17g, \
                   \"pareto\": %b }%s\n"
                  p.Advise.id p.Advise.vulnerability p.Advise.reduction
                  p.Advise.overhead p.Advise.pareto
                  (if k = List.length o.Advise.plans - 1 then "" else ","))
              o.Advise.plans;
            Printf.fprintf oc "      ] }%s\n"
              (if j = List.length r.Advise.objects - 1 then "" else ","))
          r.Advise.objects;
        Printf.fprintf oc "    ] }%s\n"
          (if i = List.length rows - 1 then "" else ",")
      )
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    note "wrote BENCH_advise.json"
  end

(* The parallel-resilience benchmark: for every kernel with an SPMD port
   (MM, CG, LULESH), time the serial aDVF analysis against the port at
   one hart and at N harts, assert the one-hart port is bit-identical to
   serial, and report the shared vs hart-private split with its delta
   against the serial figure — the `moard parallel` comparison as a
   benchmark. Writes BENCH_parallel.json (full mode only; --quick is the
   CI smoke test). *)

let parallel_bench () =
  let module Hart_split = Moard_core.Hart_split in
  let harts = 3 in
  section
    (Printf.sprintf
       "Parallel resilience: serial vs SPMD port at %d harts (shared vs \
        hart-private aDVF)"
       harts);
  let ports =
    List.filter
      (fun (e : Registry.entry) -> e.Registry.parallel_at <> None)
      Registry.all
  in
  let ports = if !quick then [ Registry.find "MM" ] else ports in
  let rows =
    List.concat_map
      (fun (e : Registry.entry) ->
        let port = Option.get e.Registry.parallel_at in
        let size = e.Registry.default_size in
        let serial_ctx = Context.make (e.Registry.workload ()) in
        let par1_ctx = Context.make (port ~harts:1 size) in
        let parn_ctx = Context.make (port ~harts size) in
        List.map
          (fun obj ->
            let timed f =
              let t = Unix.gettimeofday () in
              let r = f () in
              (r, Unix.gettimeofday () -. t)
            in
            let serial, ss =
              timed (fun () ->
                  Model.analyze ~options serial_ctx ~object_name:obj)
            in
            let par1, s1 =
              timed (fun () ->
                  Model.analyze ~options par1_ctx ~object_name:obj)
            in
            let parn, sn =
              timed (fun () ->
                  Hart_split.analyze ~options parn_ctx ~object_name:obj)
            in
            let identical =
              serial.Advf.involvements = par1.Advf.involvements
              && Int64.bits_of_float serial.Advf.advf
                 = Int64.bits_of_float par1.Advf.advf
              && Int64.bits_of_float serial.Advf.masking_events
                 = Int64.bits_of_float par1.Advf.masking_events
            in
            note
              "%s/%s: serial %.4f (%.2fs) | port@1 %.4f (%.2fs) | port@%d \
               %.4f (%.2fs, %d/%d sites shared)"
              e.Registry.benchmark obj serial.Advf.advf ss par1.Advf.advf s1
              harts parn.Hart_split.total.Advf.advf sn
              parn.Hart_split.shared_sites parn.Hart_split.sites;
            if not identical then
              failwith
                (Printf.sprintf "parallel: %s/%s port@1 differs from serial"
                   e.Registry.benchmark obj);
            (e.Registry.benchmark, obj, serial, ss, par1, s1, parn, sn))
          e.Registry.objects)
      ports
  in
  let total_shared =
    List.fold_left
      (fun a (_, _, _, _, _, _, p, _) ->
        a + p.Hart_split.shared_sites)
      0 rows
  in
  Printf.printf
    "\n\
     port@1 bit-identical to serial for all %d objects: true\n\
     shared consumption sites across all ports at %d harts: %d\n"
    (List.length rows) harts total_shared;
  if !quick then note "quick mode: not writing BENCH_parallel.json"
  else begin
    let oc = open_out "BENCH_parallel.json" in
    Printf.fprintf oc "{\n  \"harts\": %d,\n  \"host_cores\": %d,\n" harts
      (host_cores ());
    Printf.fprintf oc "  \"objects\": [\n";
    let advf_json (r : Advf.report) s =
      Printf.sprintf
        "{ \"sites\": %d, \"advf\": \"%h\", \"advf_decimal\": %.17g, \
         \"seconds\": %.4f }"
        r.Advf.involvements r.Advf.advf r.Advf.advf s
    in
    List.iteri
      (fun i (bench, obj, serial, ss, par1, s1, parn, sn) ->
        let part = function
          | None -> "null"
          | Some (r : Advf.report) ->
            Printf.sprintf
              "{ \"sites\": %d, \"advf\": \"%h\", \"advf_decimal\": %.17g }"
              r.Advf.involvements r.Advf.advf r.Advf.advf
        in
        Printf.fprintf oc
          "    { \"benchmark\": %S, \"object\": %S,\n\
          \      \"serial\": %s,\n\
          \      \"parallel_1\": %s,\n\
          \      \"parallel_1_bit_identical\": true,\n\
          \      \"parallel_n\": { \"sites\": %d, \"shared_sites\": %d,\n\
          \        \"advf\": \"%h\", \"advf_decimal\": %.17g, \"seconds\": \
           %.4f,\n\
          \        \"advf_delta_vs_serial\": %.17g,\n\
          \        \"shared\": %s, \"private\": %s } }%s\n"
          bench obj (advf_json serial ss) (advf_json par1 s1)
          parn.Hart_split.sites parn.Hart_split.shared_sites
          parn.Hart_split.total.Advf.advf parn.Hart_split.total.Advf.advf sn
          (parn.Hart_split.total.Advf.advf -. serial.Advf.advf)
          (part parn.Hart_split.shared)
          (part parn.Hart_split.private_)
          (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    note "wrote BENCH_parallel.json"
  end

let experiments =
  [
    ("table1", table1);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("bound", bound);
    ("ablation", ablation);
    ("timing", timing);
    ("pipeline", pipeline);
    ("campaign", campaign);
    ("kernel", kernel_bench);
    ("parallel", parallel_bench);
    ("store", store_bench);
    ("chaos", chaos_bench);
    ("predict", predict_bench);
    ("advise", advise_bench);
  ]

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  let quick_flags, names = List.partition (fun a -> a = "--quick") argv in
  quick := quick_flags <> [];
  let args =
    match names with [] -> List.map fst experiments | rest -> rest
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" name
          (String.concat ", " (List.map fst experiments));
        exit 2)
    args;
  Printf.printf "\nAll requested experiments completed in %.1fs.\n" (elapsed ())
