(* Compatibility alias for {!Moard_analysis.Reexec}. *)
include Moard_analysis.Reexec
