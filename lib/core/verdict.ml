(* Compatibility alias: the verdict vocabulary moved to the bottom-layer
   {!Moard_analysis} library so that the injection and campaign layers can
   consume the operation-level analysis without depending on the model. *)
include Moard_analysis.Verdict
