module Context = Moard_inject.Context
module Tape = Moard_trace.Tape
module Consume = Moard_trace.Consume
module Sharing = Moard_trace.Sharing

type t = {
  object_name : string;
  harts : int;
  sites : int;
  shared_sites : int;
  total : Advf.report;
  shared : Advf.report option;
  private_ : Advf.report option;
}

(* One flag per consumption site, indexed by enumeration order — the same
   index [Model.analyze]'s site filter receives — marking sites whose
   consumed cell is touched by two or more harts on the golden tape. *)
let site_flags ctx ~object_name =
  let tape = Context.tape ctx in
  let sharing = Sharing.of_tape tape in
  let obj = Context.object_of ctx object_name in
  let buf = ref (Bytes.make 1024 '\000') and n = ref 0 in
  Consume.iter_sites ~segment:(Context.segment ctx)
    (Tape.Cursor.of_tape tape) obj
    (fun i site ->
      if i >= Bytes.length !buf then begin
        let b = Bytes.make (2 * Bytes.length !buf) '\000' in
        Bytes.blit !buf 0 b 0 (Bytes.length !buf);
        buf := b
      end;
      Bytes.set !buf i
        (if Sharing.shared sharing ~addr:site.Consume.addr then '\001'
         else '\000');
      n := i + 1);
  Bytes.sub !buf 0 !n

let analyze ?options ?cancel ctx ~object_name =
  let flags = site_flags ctx ~object_name in
  let sites = Bytes.length flags in
  let shared_sites = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr shared_sites) flags;
  let shared_sites = !shared_sites in
  let part want_shared =
    Model.analyze ?options ?cancel ctx
      ~site_filter:(fun i ->
        i < sites && Char.equal (Bytes.get flags i) '\001' = want_shared)
      ~object_name
  in
  let shared = if shared_sites = 0 then None else Some (part true) in
  let private_ =
    if shared_sites = sites then None else Some (part false)
  in
  let total =
    match (shared, private_) with
    | Some a, Some b -> Advf.merge [ a; b ]
    | Some a, None | None, Some a -> a
    | None, None ->
      (* No sites at all: an empty (zero-involvement) report. *)
      Model.analyze ?options ?cancel ctx ~site_filter:(fun _ -> false)
        ~object_name
  in
  {
    object_name;
    harts = (Context.workload ctx).Moard_inject.Workload.harts;
    sites;
    shared_sites;
    total;
    shared;
    private_;
  }

let analyze_targets ?options ?cancel ctx =
  List.map
    (fun object_name -> analyze ?options ?cancel ctx ~object_name)
    (Context.workload ctx).Moard_inject.Workload.targets
