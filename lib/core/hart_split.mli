(** aDVF split by shared vs hart-private state.

    On a multi-hart golden run, a consumption site is {e shared-state}
    when the cell it consumes is touched by two or more harts on the
    golden tape ({!Moard_trace.Sharing}) — an error there can cross a
    hart boundary before the k-window closes — and {e hart-private}
    otherwise. This driver partitions the target object's consumption
    sites by that classification, runs the standard three-stage model
    over each partition through {!Model.analyze}'s site filter, and
    merges the partition reports into the whole-object report with
    {!Advf.merge}. On a serial run every site is private, so [total]
    degenerates to the plain sequential analysis. *)

type t = {
  object_name : string;
  harts : int;          (** configured hart count of the workload *)
  sites : int;          (** consumption sites of the object *)
  shared_sites : int;   (** of which over shared-state cells *)
  total : Advf.report;  (** whole-object report (merged partitions) *)
  shared : Advf.report option;
      (** report over shared-state sites; [None] when there are none *)
  private_ : Advf.report option;
      (** report over hart-private sites; [None] when there are none *)
}

val analyze :
  ?options:Model.options ->
  ?cancel:Moard_chaos.Cancel.t ->
  Moard_inject.Context.t -> object_name:string -> t

val analyze_targets :
  ?options:Model.options ->
  ?cancel:Moard_chaos.Cancel.t ->
  Moard_inject.Context.t -> t list
(** One split per target data object declared by the workload. *)
