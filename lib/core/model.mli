(** The MOARD model driver (paper Fig. 3).

    For each consumption of the target data object in the golden trace and
    each error pattern, the driver runs the three-stage inference:

    + operation-level analysis ({!Masking}),
    + bounded error-propagation replay ({!Propagation}, k operations),
    + deterministic fault injection ({!Moard_inject.Context}) for whatever
      the first two stages leave unresolved,

    then folds the verdicts into the aDVF accumulator. Verdicts are
    memoized by error equivalence (static instruction, operand values,
    site, pattern), on top of the injector's own outcome cache. *)

type options = {
  k : int;              (** propagation window; paper uses 50 *)
  shadow_cap : int;     (** contamination-set size that aborts the replay *)
  fi_budget : int;      (** max fault-injection executions; -1 = unlimited *)
  use_cache : bool;     (** error-equivalence memoization *)
  multi : [ `Burst of int | `Pair of int ] list;
      (** extra multi-bit pattern families (§VII-B); default none *)
  batch : bool;
      (** classify each site's whole error-model pattern set through the
          lane-parallel kernel ({!Masking.analyze_all}) and absorb the
          masked/crash sets by popcount, walking only changed/divergent
          lanes through propagation and fault injection. Reports are
          byte-identical to the scalar walk (the differential suite checks
          this); only wall-clock changes. Ignored — the scalar walk is
          used — when [multi] is non-empty. *)
  model : Moard_bits.Errmodel.t;
      (** the error model whose pattern set is swept per involvement;
          default [Single_bit]. Any model other than [Single_bit] is
          incompatible with [multi] ({!analyze} rejects the combination). *)
}

val default_options : options
(** k = 50, shadow_cap = 256, unlimited fault injection, cache on,
    batched kernel on, single-bit error model. *)

val analyze :
  ?options:options -> ?site_filter:(int -> bool) ->
  ?cancel:Moard_chaos.Cancel.t ->
  Moard_inject.Context.t -> object_name:string -> Advf.report
(** [site_filter] keeps only the consumption sites whose index in the
    enumeration order passes — the partitioning hook of the parallel
    driver ({!Moard_parallel}); a report over a subset is merged with its
    peers via {!Advf.merge}. [cancel] is checked before each site:
    a tripped or expired token raises {!Moard_chaos.Cancel.Cancelled},
    so a timed-out daemon request frees its worker instead of sweeping
    the remaining sites (no partial report escapes — the exception is
    the only observable). *)

val analyze_targets :
  ?options:options -> Moard_inject.Context.t -> Advf.report list
(** One report per target data object declared by the workload. *)
