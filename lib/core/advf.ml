module Errmodel = Moard_bits.Errmodel

type report = {
  object_name : string;
  involvements : int;
  masking_events : float;
  advf : float;
  by_level : float array;
  by_kind : float array;
  patterns_analyzed : int;
  op_resolved : int;
  prop_resolved : int;
  fi_resolved : int;
  unresolved : int;
  fi_runs : int;
  fi_cache_hits : int;
  verdict_cache_hits : int;
}

type stage = Op | Prop | Fi | Cached | Gave_up

(* Masking weights are accumulated as exact rationals: integer numerators
   over the model's fixed denominator [Errmodel.weight_den] (every
   per-involvement weight is 1/lanes and lanes divides the denominator).
   Integer sums are order-independent, so the batched kernel's bulk
   absorption and the scalar per-pattern stream produce bit-identical
   accumulators for every error model — not just the dyadic single-bit
   case. The float fields serve only the legacy multi-pattern path
   ([Model.options.multi]), whose ad-hoc pattern counts have no common
   denominator; the two families never mix in one accumulator. *)
type t = {
  object_name : string;
  den : int;
  mutable involvements : int;
  mutable events_num : int;
  level_num : int array;    (* per level, numerators of fractional masking *)
  kind_num : int array;     (* per kind at operation+propagation levels *)
  mutable fevents : float;  (* legacy float-weight stream *)
  flevel : float array;
  fkind : float array;
  mutable patterns : int;
  mutable op_n : int;
  mutable prop_n : int;
  mutable fi_n : int;
  mutable cached_n : int;
  mutable gave_up : int;
}

let create ?(model = Errmodel.Single_bit) object_name =
  {
    object_name;
    den = Errmodel.weight_den model;
    involvements = 0;
    events_num = 0;
    level_num = Array.make 3 0;
    kind_num = Array.make 4 0;
    fevents = 0.0;
    flevel = Array.make 3 0.0;
    fkind = Array.make 4 0.0;
    patterns = 0;
    op_n = 0;
    prop_n = 0;
    fi_n = 0;
    cached_n = 0;
    gave_up = 0;
  }

let add_involvement t = t.involvements <- t.involvements + 1

let count_stage t ~stage count =
  t.patterns <- t.patterns + count;
  match stage with
  | Op -> t.op_n <- t.op_n + count
  | Prop -> t.prop_n <- t.prop_n + count
  | Fi -> t.fi_n <- t.fi_n + count
  | Cached -> t.cached_n <- t.cached_n + count
  | Gave_up -> t.gave_up <- t.gave_up + count

let add_num t ~num verdict =
  match (verdict : Verdict.t) with
  | Verdict.Not_masked -> ()
  | Verdict.Masked (level, kind) ->
    t.events_num <- t.events_num + num;
    let li = Verdict.level_index level in
    t.level_num.(li) <- t.level_num.(li) + num;
    if level <> Verdict.Algorithm then begin
      let ki = Verdict.kind_index kind in
      t.kind_num.(ki) <- t.kind_num.(ki) + num
    end

let add_pattern t ~lanes ~stage verdict =
  if lanes <= 0 || t.den mod lanes <> 0 then
    invalid_arg "Advf.add_pattern: lanes does not divide the model denominator";
  count_stage t ~stage 1;
  add_num t ~num:(t.den / lanes) verdict

let add_pattern_set t ~lanes ~stage ~count verdict =
  if count < 0 then invalid_arg "Advf.add_pattern_set: count";
  if lanes <= 0 || t.den mod lanes <> 0 then
    invalid_arg
      "Advf.add_pattern_set: lanes does not divide the model denominator";
  if count > 0 then begin
    count_stage t ~stage count;
    add_num t ~num:(t.den / lanes * count) verdict
  end

let add_pattern_weight t ~weight ~stage verdict =
  count_stage t ~stage 1;
  match (verdict : Verdict.t) with
  | Verdict.Not_masked -> ()
  | Verdict.Masked (level, kind) ->
    t.fevents <- t.fevents +. weight;
    let li = Verdict.level_index level in
    t.flevel.(li) <- t.flevel.(li) +. weight;
    if level <> Verdict.Algorithm then begin
      let ki = Verdict.kind_index kind in
      t.fkind.(ki) <- t.fkind.(ki) +. weight
    end

let absorb t other =
  if not (String.equal t.object_name other.object_name) then
    invalid_arg "Advf.absorb: object names differ";
  if t.den <> other.den then invalid_arg "Advf.absorb: denominators differ";
  t.involvements <- t.involvements + other.involvements;
  t.events_num <- t.events_num + other.events_num;
  Array.iteri (fun i s -> t.level_num.(i) <- t.level_num.(i) + s)
    other.level_num;
  Array.iteri (fun i s -> t.kind_num.(i) <- t.kind_num.(i) + s)
    other.kind_num;
  t.fevents <- t.fevents +. other.fevents;
  Array.iteri (fun i s -> t.flevel.(i) <- t.flevel.(i) +. s) other.flevel;
  Array.iteri (fun i s -> t.fkind.(i) <- t.fkind.(i) +. s) other.fkind;
  t.patterns <- t.patterns + other.patterns;
  t.op_n <- t.op_n + other.op_n;
  t.prop_n <- t.prop_n + other.prop_n;
  t.fi_n <- t.fi_n + other.fi_n;
  t.cached_n <- t.cached_n + other.cached_n;
  t.gave_up <- t.gave_up + other.gave_up

let report t ~fi_runs ~fi_cache_hits =
  let m = float_of_int (max t.involvements 1) in
  let den = float_of_int t.den in
  (* For single-bit accumulation [num /. den] is an exact dyadic division,
     so the totals are bit-identical to the historical float stream. *)
  let events num f = (float_of_int num /. den) +. f in
  let total = events t.events_num t.fevents in
  {
    object_name = t.object_name;
    involvements = t.involvements;
    masking_events = total;
    advf = total /. m;
    by_level =
      Array.init 3 (fun i -> events t.level_num.(i) t.flevel.(i) /. m);
    by_kind = Array.init 4 (fun i -> events t.kind_num.(i) t.fkind.(i) /. m);
    patterns_analyzed = t.patterns;
    op_resolved = t.op_n;
    prop_resolved = t.prop_n;
    fi_resolved = t.fi_n;
    unresolved = t.gave_up;
    fi_runs;
    fi_cache_hits;
    verdict_cache_hits = t.cached_n;
  }

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>%s: aDVF = %.4f (%d involvements, %.1f masking events)@,\
     levels: operation %.4f | propagation %.4f | algorithm %.4f@,\
     kinds (op+prop): overwrite %.4f | logic/cmp %.4f | overshadow %.4f | \
     other %.4f@,\
     resolution: op %d, propagation %d, fi %d, cached %d-hit, unresolved %d \
     (%d fi runs, %d fi cache hits)@]"
    r.object_name r.advf r.involvements r.masking_events r.by_level.(0)
    r.by_level.(1) r.by_level.(2) r.by_kind.(0) r.by_kind.(1) r.by_kind.(2)
    r.by_kind.(3) r.op_resolved r.prop_resolved r.fi_resolved
    r.verdict_cache_hits r.unresolved r.fi_runs r.fi_cache_hits

let merge (reports : report list) =
  match reports with
  | [] -> invalid_arg "Advf.merge: empty"
  | first :: _ ->
    List.iter
      (fun (r : report) ->
        if not (String.equal r.object_name first.object_name) then
          invalid_arg "Advf.merge: object names differ")
      reports;
    let sum (f : report -> int) =
      List.fold_left (fun acc r -> acc + f r) 0 reports
    in
    let sumf (f : report -> float) =
      List.fold_left (fun acc r -> acc +. f r) 0.0 reports
    in
    let m = sum (fun r -> r.involvements) in
    let fm = float_of_int (max m 1) in
    (* per-subset fractions are normalized by subset involvements; undo
       that weighting before renormalizing over the union *)
    let weighted proj =
      sumf (fun r -> proj r *. float_of_int r.involvements) /. fm
    in
    {
      object_name = first.object_name;
      involvements = m;
      masking_events = sumf (fun r -> r.masking_events);
      advf = weighted (fun r -> r.advf);
      by_level = Array.init 3 (fun t -> weighted (fun r -> r.by_level.(t)));
      by_kind = Array.init 4 (fun t -> weighted (fun r -> r.by_kind.(t)));
      patterns_analyzed = sum (fun r -> r.patterns_analyzed);
      op_resolved = sum (fun r -> r.op_resolved);
      prop_resolved = sum (fun r -> r.prop_resolved);
      fi_resolved = sum (fun r -> r.fi_resolved);
      unresolved = sum (fun r -> r.unresolved);
      fi_runs = sum (fun r -> r.fi_runs);
      fi_cache_hits = sum (fun r -> r.fi_cache_hits);
      verdict_cache_hits = sum (fun r -> r.verdict_cache_hits);
    }
