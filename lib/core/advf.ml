type report = {
  object_name : string;
  involvements : int;
  masking_events : float;
  advf : float;
  by_level : float array;
  by_kind : float array;
  patterns_analyzed : int;
  op_resolved : int;
  prop_resolved : int;
  fi_resolved : int;
  unresolved : int;
  fi_runs : int;
  fi_cache_hits : int;
  verdict_cache_hits : int;
}

type stage = Op | Prop | Fi | Cached | Gave_up

type t = {
  object_name : string;
  mutable involvements : int;
  mutable events : float;
  level_sum : float array;  (* per level, fractional masking *)
  kind_sum : float array;   (* per kind at operation+propagation levels *)
  mutable patterns : int;
  mutable op_n : int;
  mutable prop_n : int;
  mutable fi_n : int;
  mutable cached_n : int;
  mutable gave_up : int;
}

let create object_name =
  {
    object_name;
    involvements = 0;
    events = 0.0;
    level_sum = Array.make 3 0.0;
    kind_sum = Array.make 4 0.0;
    patterns = 0;
    op_n = 0;
    prop_n = 0;
    fi_n = 0;
    cached_n = 0;
    gave_up = 0;
  }

let add_involvement t = t.involvements <- t.involvements + 1

let add_pattern t ~weight ~stage verdict =
  t.patterns <- t.patterns + 1;
  (match stage with
  | Op -> t.op_n <- t.op_n + 1
  | Prop -> t.prop_n <- t.prop_n + 1
  | Fi -> t.fi_n <- t.fi_n + 1
  | Cached -> t.cached_n <- t.cached_n + 1
  | Gave_up -> t.gave_up <- t.gave_up + 1);
  match (verdict : Verdict.t) with
  | Verdict.Not_masked -> ()
  | Verdict.Masked (level, kind) ->
    t.events <- t.events +. weight;
    let li = Verdict.level_index level in
    t.level_sum.(li) <- t.level_sum.(li) +. weight;
    if level <> Verdict.Algorithm then begin
      let ki = Verdict.kind_index kind in
      t.kind_sum.(ki) <- t.kind_sum.(ki) +. weight
    end

let add_pattern_set t ~weight ~stage ~count verdict =
  if count < 0 then invalid_arg "Advf.add_pattern_set: count";
  if count > 0 then begin
    t.patterns <- t.patterns + count;
    (match stage with
    | Op -> t.op_n <- t.op_n + count
    | Prop -> t.prop_n <- t.prop_n + count
    | Fi -> t.fi_n <- t.fi_n + count
    | Cached -> t.cached_n <- t.cached_n + count
    | Gave_up -> t.gave_up <- t.gave_up + count);
    match (verdict : Verdict.t) with
    | Verdict.Not_masked -> ()
    | Verdict.Masked (level, kind) ->
      (* [weight] is an exact power of two (1/1, 1/32 or 1/64), so
         [count *. weight] equals [count] repeated additions of [weight]
         exactly: every partial sum is a dyadic rational well inside the
         53-bit mantissa. Bulk absorption is bit-identical to the scalar
         stream. *)
      let w = weight *. float_of_int count in
      t.events <- t.events +. w;
      let li = Verdict.level_index level in
      t.level_sum.(li) <- t.level_sum.(li) +. w;
      if level <> Verdict.Algorithm then begin
        let ki = Verdict.kind_index kind in
        t.kind_sum.(ki) <- t.kind_sum.(ki) +. w
      end
  end

let absorb t other =
  if not (String.equal t.object_name other.object_name) then
    invalid_arg "Advf.absorb: object names differ";
  t.involvements <- t.involvements + other.involvements;
  t.events <- t.events +. other.events;
  Array.iteri (fun i s -> t.level_sum.(i) <- t.level_sum.(i) +. s)
    other.level_sum;
  Array.iteri (fun i s -> t.kind_sum.(i) <- t.kind_sum.(i) +. s)
    other.kind_sum;
  t.patterns <- t.patterns + other.patterns;
  t.op_n <- t.op_n + other.op_n;
  t.prop_n <- t.prop_n + other.prop_n;
  t.fi_n <- t.fi_n + other.fi_n;
  t.cached_n <- t.cached_n + other.cached_n;
  t.gave_up <- t.gave_up + other.gave_up

let report t ~fi_runs ~fi_cache_hits =
  let m = float_of_int (max t.involvements 1) in
  {
    object_name = t.object_name;
    involvements = t.involvements;
    masking_events = t.events;
    advf = t.events /. m;
    by_level = Array.map (fun s -> s /. m) t.level_sum;
    by_kind = Array.map (fun s -> s /. m) t.kind_sum;
    patterns_analyzed = t.patterns;
    op_resolved = t.op_n;
    prop_resolved = t.prop_n;
    fi_resolved = t.fi_n;
    unresolved = t.gave_up;
    fi_runs;
    fi_cache_hits;
    verdict_cache_hits = t.cached_n;
  }

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>%s: aDVF = %.4f (%d involvements, %.1f masking events)@,\
     levels: operation %.4f | propagation %.4f | algorithm %.4f@,\
     kinds (op+prop): overwrite %.4f | logic/cmp %.4f | overshadow %.4f | \
     other %.4f@,\
     resolution: op %d, propagation %d, fi %d, cached %d-hit, unresolved %d \
     (%d fi runs, %d fi cache hits)@]"
    r.object_name r.advf r.involvements r.masking_events r.by_level.(0)
    r.by_level.(1) r.by_level.(2) r.by_kind.(0) r.by_kind.(1) r.by_kind.(2)
    r.by_kind.(3) r.op_resolved r.prop_resolved r.fi_resolved
    r.verdict_cache_hits r.unresolved r.fi_runs r.fi_cache_hits

let merge (reports : report list) =
  match reports with
  | [] -> invalid_arg "Advf.merge: empty"
  | first :: _ ->
    List.iter
      (fun (r : report) ->
        if not (String.equal r.object_name first.object_name) then
          invalid_arg "Advf.merge: object names differ")
      reports;
    let sum (f : report -> int) =
      List.fold_left (fun acc r -> acc + f r) 0 reports
    in
    let sumf (f : report -> float) =
      List.fold_left (fun acc r -> acc +. f r) 0.0 reports
    in
    let m = sum (fun r -> r.involvements) in
    let fm = float_of_int (max m 1) in
    (* per-subset fractions are normalized by subset involvements; undo
       that weighting before renormalizing over the union *)
    let weighted proj =
      sumf (fun r -> proj r *. float_of_int r.involvements) /. fm
    in
    {
      object_name = first.object_name;
      involvements = m;
      masking_events = sumf (fun r -> r.masking_events);
      advf = weighted (fun r -> r.advf);
      by_level = Array.init 3 (fun t -> weighted (fun r -> r.by_level.(t)));
      by_kind = Array.init 4 (fun t -> weighted (fun r -> r.by_kind.(t)));
      patterns_analyzed = sum (fun r -> r.patterns_analyzed);
      op_resolved = sum (fun r -> r.op_resolved);
      prop_resolved = sum (fun r -> r.prop_resolved);
      fi_resolved = sum (fun r -> r.fi_resolved);
      unresolved = sum (fun r -> r.unresolved);
      fi_runs = sum (fun r -> r.fi_runs);
      fi_cache_hits = sum (fun r -> r.fi_cache_hits);
      verdict_cache_hits = sum (fun r -> r.verdict_cache_hits);
    }
