(* Compatibility alias for {!Moard_analysis.Propagation}. *)
include Moard_analysis.Propagation
