(** The aDVF metric (paper §III-B).

    For every consumption (involvement) of an element of the target data
    object, f(x_i) = (number of masked error patterns) / (number of error
    patterns); aDVF = sum of f over all involvements / involvement count.
    The accumulator also keeps the level and kind decompositions behind
    Figures 4 and 5 and the absolute masking-event counts behind
    evaluation conclusion 2.

    Weights accumulate as exact rationals — integer numerators over the
    error model's common denominator ({!Moard_bits.Errmodel.weight_den}) —
    so scalar and batched accumulation orders are bit-identical for every
    error model, and the single-bit totals reproduce the historical dyadic
    float stream exactly. *)

type t
(** Mutable accumulator. *)

type report = {
  object_name : string;
  involvements : int;       (** m: element references in the code segment *)
  masking_events : float;   (** total (fractional) error-masking events *)
  advf : float;             (** in [0, 1] *)
  by_level : float array;
      (** contribution of each {!Verdict.level} to aDVF (sums to aDVF) *)
  by_kind : float array;
      (** contribution of each {!Verdict.kind} at the operation and error
          propagation levels (Figure 5's decomposition) *)
  patterns_analyzed : int;
  op_resolved : int;        (** patterns settled by operation-level analysis *)
  prop_resolved : int;      (** settled by propagation replay *)
  fi_resolved : int;        (** settled by deterministic fault injection *)
  unresolved : int;         (** abandoned (fault-injection budget exhausted) *)
  fi_runs : int;
  fi_cache_hits : int;
  verdict_cache_hits : int;
}

type stage = Op | Prop | Fi | Cached | Gave_up

val create : ?model:Moard_bits.Errmodel.t -> string -> t
(** [model] (default [Single_bit]) fixes the weight denominator. *)

val add_involvement : t -> unit

val add_pattern : t -> lanes:int -> stage:stage -> Verdict.t -> unit
(** One pattern of an involvement with [lanes] patterns: weight
    [1 / lanes], added exactly.
    @raise Invalid_argument if [lanes] does not divide the accumulator
    model's denominator. *)

val add_pattern_set : t -> lanes:int -> stage:stage -> count:int ->
  Verdict.t -> unit
(** Absorb [count] patterns sharing one verdict and stage in O(1) — the
    popcount fast path of the batched kernel. Bit-identical to [count]
    calls of {!add_pattern} by construction (integer numerators).
    @raise Invalid_argument on a negative count or non-dividing [lanes]. *)

val add_pattern_weight : t -> weight:float -> stage:stage -> Verdict.t -> unit
(** Legacy float-weight stream for the ad-hoc multi-pattern path
    ([Model.options.multi]), whose pattern counts have no common
    denominator. Must not be mixed with the exact stream in one
    accumulator (the model path and the multi path are mutually
    exclusive upstream). *)

val absorb : t -> t -> unit
(** [absorb t other] folds [other]'s accumulated state into [t] — the
    online counterpart of {!merge}: verdict streams accumulated separately
    (e.g. per consumption-site shard) combine into exactly the sums a
    single accumulator fed the concatenated stream would hold, because
    every field is a plain sum. [other] is unchanged.
    @raise Invalid_argument if the object names or denominators differ. *)

val report :
  t -> fi_runs:int -> fi_cache_hits:int -> report

val merge : report list -> report
(** Combine reports over disjoint consumption-site subsets of the same
    data object into the whole-object report (involvement-weighted).
    @raise Invalid_argument on an empty list or mismatched object names. *)

val pp_report : Format.formatter -> report -> unit
