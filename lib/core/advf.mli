(** The aDVF metric (paper §III-B).

    For every consumption (involvement) of an element of the target data
    object, f(x_i) = (number of masked error patterns) / (number of error
    patterns); aDVF = sum of f over all involvements / involvement count.
    The accumulator also keeps the level and kind decompositions behind
    Figures 4 and 5 and the absolute masking-event counts behind
    evaluation conclusion 2. *)

type t
(** Mutable accumulator. *)

type report = {
  object_name : string;
  involvements : int;       (** m: element references in the code segment *)
  masking_events : float;   (** total (fractional) error-masking events *)
  advf : float;             (** in [0, 1] *)
  by_level : float array;
      (** contribution of each {!Verdict.level} to aDVF (sums to aDVF) *)
  by_kind : float array;
      (** contribution of each {!Verdict.kind} at the operation and error
          propagation levels (Figure 5's decomposition) *)
  patterns_analyzed : int;
  op_resolved : int;        (** patterns settled by operation-level analysis *)
  prop_resolved : int;      (** settled by propagation replay *)
  fi_resolved : int;        (** settled by deterministic fault injection *)
  unresolved : int;         (** abandoned (fault-injection budget exhausted) *)
  fi_runs : int;
  fi_cache_hits : int;
  verdict_cache_hits : int;
}

type stage = Op | Prop | Fi | Cached | Gave_up

val create : string -> t
val add_involvement : t -> unit
val add_pattern : t -> weight:float -> stage:stage -> Verdict.t -> unit
(** [weight] is 1 / (patterns of this involvement). *)

val add_pattern_set : t -> weight:float -> stage:stage -> count:int ->
  Verdict.t -> unit
(** Absorb [count] patterns sharing one verdict and stage in O(1) — the
    popcount fast path of the batched kernel. Bit-identical to [count]
    calls of {!add_pattern} whenever [weight] is a power of two and the
    involvement has at most 64 patterns (single-bit pattern sets always
    satisfy both; see the comment in the implementation).
    @raise Invalid_argument on a negative count. *)

val absorb : t -> t -> unit
(** [absorb t other] folds [other]'s accumulated state into [t] — the
    online counterpart of {!merge}: verdict streams accumulated separately
    (e.g. per consumption-site shard) combine into exactly the sums a
    single accumulator fed the concatenated stream would hold, because
    every field is a plain sum. [other] is unchanged.
    @raise Invalid_argument if the object names differ. *)

val report :
  t -> fi_runs:int -> fi_cache_hits:int -> report

val merge : report list -> report
(** Combine reports over disjoint consumption-site subsets of the same
    data object into the whole-object report (involvement-weighted).
    @raise Invalid_argument on an empty list or mismatched object names. *)

val pp_report : Format.formatter -> report -> unit
