module Context = Moard_inject.Context
module Outcome = Moard_inject.Outcome
module Consume = Moard_trace.Consume
module Tape = Moard_trace.Tape
module Event = Moard_trace.Event
module Bitval = Moard_bits.Bitval
module Pattern = Moard_bits.Pattern
module Errmodel = Moard_bits.Errmodel
module Ps = Moard_bits.Patternset

type options = {
  k : int;
  shadow_cap : int;
  fi_budget : int;
  use_cache : bool;
  multi : [ `Burst of int | `Pair of int ] list;
  batch : bool;
  model : Errmodel.t;
}

let default_options =
  {
    k = 50;
    shadow_cap = 256;
    fi_budget = -1;
    use_cache = true;
    multi = [];
    batch = true;
    model = Errmodel.Single_bit;
  }

type vkey = {
  k_iid : Moard_ir.Iid.t;
  k_site : int;  (* slot, or -1 for store destination *)
  k_reads : int64 array;
  k_bits : int list;
}

let vkey_of tape (site : Consume.t) pattern =
  let e = Tape.get tape site.Consume.event_idx in
  {
    k_iid = e.Event.iid;
    k_site =
      (match site.Consume.kind with
      | Consume.Read { slot } -> slot
      | Consume.Store_dest -> -1);
    k_reads =
      Array.map (fun (r : Event.read) -> (r.value : Bitval.t).bits) e.Event.reads;
    k_bits = Pattern.bits_of pattern;
  }

let init_of_changed (out : Masking.changed_out) =
  match out with
  | Masking.To_reg { frame; reg; value } ->
    Propagation.From_reg { frame; reg; value }
  | Masking.To_mem { addr; value; ty } ->
    Propagation.From_mem { addr; value; ty }

let analyze ?(options = default_options) ?site_filter ?cancel ctx ~object_name =
  if options.multi <> [] && options.model <> Errmodel.Single_bit then
    invalid_arg
      "Model.analyze: legacy multi pattern families require the single-bit \
       error model";
  let model = options.model in
  let tape = Context.tape ctx in
  let w = Context.workload ctx in
  let obj = Context.object_of ctx object_name in
  let outputs =
    List.map (Context.object_of ctx) w.Moard_inject.Workload.outputs
  in
  let acc = Advf.create ~model object_name in
  let vcache : (vkey, Verdict.t * Advf.stage) Hashtbl.t =
    Hashtbl.create 4096
  in
  (* Batched path: one cache entry per site *class* (instruction identity,
     slot, clean operand words) holding the whole per-bit verdict vector.
     The scalar [vcache] only ever hits in full-site groups — two sites
     share one pattern's key iff they share every pattern's key — so
     class-level caching reproduces its hit pattern exactly. *)
  let scache : (vkey, Verdict.t array) Hashtbl.t = Hashtbl.create 1024 in
  let class_key_of (site : Consume.t) =
    let e = Tape.get tape site.Consume.event_idx in
    {
      k_iid = e.Event.iid;
      k_site =
        (match site.Consume.kind with
        | Consume.Read { slot } -> slot
        | Consume.Store_dest -> -1);
      k_reads =
        Array.map
          (fun (r : Event.read) -> (r.value : Bitval.t).bits)
          e.Event.reads;
      k_bits = [];
    }
  in
  let fi_runs0 = Context.runs ctx and fi_hits0 = Context.cache_hits ctx in
  let budget_left () =
    options.fi_budget < 0 || Context.runs ctx - fi_runs0 < options.fi_budget
  in
  (* Resolve by deterministic fault injection; attribution per §III-C/E:
     an overshadow candidate that ends up tolerated is operation-level
     value overshadowing; otherwise a numerically identical outcome is
     propagation-level masking (rare, per the bounding argument) and an
     acceptable one is algorithm-level masking. *)
  let fi ?(resume = false) site pattern ~overshadow =
    if not (budget_left ()) then (Verdict.Not_masked, Advf.Gave_up)
    else
      let verdict =
        match
          Context.inject_at ~use_cache:options.use_cache ~resume ctx site
            pattern
        with
        | Outcome.Same ->
          if overshadow then Verdict.Masked (Verdict.Operation, Verdict.Overshadow)
          else Verdict.Masked (Verdict.Propagation, Verdict.Other)
        | Outcome.Acceptable ->
          if overshadow then Verdict.Masked (Verdict.Operation, Verdict.Overshadow)
          else Verdict.Masked (Verdict.Algorithm, Verdict.Other)
        | Outcome.Incorrect | Outcome.Crashed _ -> Verdict.Not_masked
      in
      (verdict, Advf.Fi)
  in
  let rec resolve (site : Consume.t) pattern =
    let e = Tape.get tape site.Consume.event_idx in
    match site.Consume.kind with
    | Consume.Store_dest when Derive.store_rmw_source ~tape e <> None ->
      (* Read-modify-write: the fault scenario coincides with the fault at
         the statement's deriving read — one statement, one fault — so the
         store involvement shares that site's verdict. *)
      let idx, slot = Option.get (Derive.store_rmw_source ~tape e) in
      resolve
        { site with Consume.event_idx = idx; kind = Consume.Read { slot } }
        pattern
    | _ ->
    match Masking.analyze e site.Consume.kind pattern with
    | Masking.Masked kind -> (Verdict.Masked (Verdict.Operation, kind), Advf.Op)
    | Masking.Crash_certain _ -> (Verdict.Not_masked, Advf.Op)
    | Masking.Divergent -> fi site pattern ~overshadow:false
    | Masking.Changed { out; overshadow } -> (
      match
        Propagation.replay ~tape ~k:options.k ~shadow_cap:options.shadow_cap
          ~outputs ~start:site.Consume.event_idx ~init:(init_of_changed out)
      with
      | Propagation.Masked kind ->
        if overshadow then
          (Verdict.Masked (Verdict.Operation, Verdict.Overshadow), Advf.Prop)
        else (Verdict.Masked (Verdict.Propagation, kind), Advf.Prop)
      | Propagation.Crash_certain _ -> (Verdict.Not_masked, Advf.Prop)
      | Propagation.Unresolved _ -> fi site pattern ~overshadow)
  in
  (* Sites stream off a whole-tape cursor and their verdicts fold into the
     accumulator online — neither a site list nor a verdict list is ever
     materialized. [site_filter] sees each site's enumeration index. *)
  let scalar_patterns site =
    let patterns, add =
      match options.multi with
      | [] ->
        let patterns = Errmodel.patterns model site.Consume.width in
        let lanes = List.length patterns in
        (patterns, fun ~stage v -> Advf.add_pattern acc ~lanes ~stage v)
      | multi ->
        let patterns = Pattern.enumerate ~multi site.Consume.width in
        let weight = 1.0 /. float_of_int (List.length patterns) in
        (patterns, fun ~stage v -> Advf.add_pattern_weight acc ~weight ~stage v)
    in
    List.iter
      (fun pattern ->
        let verdict, stage =
          if not options.use_cache then resolve site pattern
          else
            let key = vkey_of tape site pattern in
            match Hashtbl.find_opt vcache key with
            | Some (v, _) -> (v, Advf.Cached)
            | None ->
              let v, s = resolve site pattern in
              Hashtbl.replace vcache key (v, s);
              (v, s)
        in
        add ~stage verdict)
      patterns
  in
  (* Mirror [resolve]'s read-modify-write delegation once per site — the
     redirection is pattern-independent. *)
  let rec redirect (site : Consume.t) =
    let e = Tape.get tape site.Consume.event_idx in
    match site.Consume.kind with
    | Consume.Store_dest when Derive.store_rmw_source ~tape e <> None ->
      let idx, slot = Option.get (Derive.store_rmw_source ~tape e) in
      redirect
        { site with Consume.event_idx = idx; kind = Consume.Read { slot } }
    | _ -> (site, e)
  in
  (* Lane-parallel per-site path: classify the whole error-model pattern
     set in one [Masking.analyze_all] call, absorb the masked and crash
     sets by popcount, and walk only the changed/divergent survivors
     through the unchanged propagation/fault-injection sequence — in
     ascending lane order, so cache and budget consumption (and hence the
     report) are byte-identical to the scalar stream. *)
  let batched_patterns site =
    let stream_cached verdicts =
      let lanes = Array.length verdicts in
      Array.iter
        (fun v -> Advf.add_pattern acc ~lanes ~stage:Advf.Cached v)
        verdicts
    in
    match
      if options.use_cache then Hashtbl.find_opt scache (class_key_of site)
      else None
    with
    | Some verdicts -> stream_cached verdicts
    | None ->
      let rsite, re = redirect site in
      let v = Masking.analyze_all ~model re rsite.Consume.kind in
      if v.Masking.width <> site.Consume.width then
        (* A width-changing delegation would desynchronize the pattern
           sets; fall back to the scalar per-pattern walk. *)
        scalar_patterns site
      else begin
        let n = v.Masking.lanes in
        let verdicts = Array.make n Verdict.Not_masked in
        let masked_v = Verdict.Masked (Verdict.Operation, v.Masking.mask_kind) in
        Ps.iter (fun b -> verdicts.(b) <- masked_v) v.Masking.masked;
        Advf.add_pattern_set acc ~lanes:n ~stage:Advf.Op
          ~count:(Ps.count v.Masking.masked) masked_v;
        Advf.add_pattern_set acc ~lanes:n ~stage:Advf.Op
          ~count:(Ps.count v.Masking.crash) Verdict.Not_masked;
        Ps.iter
          (fun b ->
            let verdict, stage =
              if Ps.mem v.Masking.divergent b then
                fi ~resume:true rsite
                  (Errmodel.pattern_at model v.Masking.width b)
                  ~overshadow:false
              else
                let out, overshadow =
                  Masking.changed_out_at ~model re rsite.Consume.kind ~lane:b
                in
                match
                  Propagation.replay ~tape ~k:options.k
                    ~shadow_cap:options.shadow_cap ~outputs
                    ~start:rsite.Consume.event_idx ~init:(init_of_changed out)
                with
                | Propagation.Masked kind ->
                  if overshadow then
                    ( Verdict.Masked (Verdict.Operation, Verdict.Overshadow),
                      Advf.Prop )
                  else (Verdict.Masked (Verdict.Propagation, kind), Advf.Prop)
                | Propagation.Crash_certain _ -> (Verdict.Not_masked, Advf.Prop)
                | Propagation.Unresolved _ ->
                  fi ~resume:true rsite
                    (Errmodel.pattern_at model v.Masking.width b)
                    ~overshadow
            in
            verdicts.(b) <- verdict;
            Advf.add_pattern acc ~lanes:n ~stage verdict)
          (Ps.union v.Masking.changed v.Masking.divergent);
        if options.use_cache then
          Hashtbl.replace scache (class_key_of site) verdicts
      end
  in
  let process site =
    (* the per-site cancellation point: a timed-out or abandoned request
       stops here instead of sweeping the remaining sites *)
    (match cancel with Some c -> Moard_chaos.Cancel.check c | None -> ());
    Advf.add_involvement acc;
    if options.batch && options.multi = [] then batched_patterns site
    else scalar_patterns site
  in
  Consume.iter_sites ~segment:(Context.segment ctx)
    (Tape.Cursor.of_tape tape) obj
    (fun i site ->
      match site_filter with
      | Some keep when not (keep i) -> ()
      | _ -> process site);
  Advf.report acc
    ~fi_runs:(Context.runs ctx - fi_runs0)
    ~fi_cache_hits:(Context.cache_hits ctx - fi_hits0)

let analyze_targets ?options ctx =
  let w = Context.workload ctx in
  List.map
    (fun object_name -> analyze ?options ctx ~object_name)
    w.Moard_inject.Workload.targets
