(* Compatibility alias for {!Moard_analysis.Masking}. *)
include Moard_analysis.Masking
