(* Compatibility alias for {!Moard_analysis.Derive}. *)
include Moard_analysis.Derive
