(** SplitMix64: a tiny seeded, splittable PRNG.

    Campaign sampling must be bit-reproducible from [(seed, plan)] alone —
    independent of domain count, interruption, or the order strata are
    drained in. [Random.State] offers no stable way to derive independent
    streams, so each (object, stratum) pair gets its own SplitMix64 stream
    derived from the campaign seed and its path; the stream then drives
    one Fisher-Yates shuffle that fixes the stratum's entire
    without-replacement sampling order up front. *)

type t

val make : int -> t
(** Stream seeded from an integer. *)

val of_int64 : int64 -> t

val of_path : seed:int -> int list -> t
(** Independent stream for a path under a seed (e.g.
    [of_path ~seed [object_index; stratum_index]]); different paths give
    decorrelated streams, the same path always the same stream. *)

val mix64 : int64 -> int64
(** The SplitMix64 finalizer (a bijective 64-bit hash). *)

val next : t -> int64
(** Next 64-bit output; advances the stream. *)

val next_int : t -> int -> int
(** [next_int t bound]: uniform draw in [[0, bound)], bias-free.
    @raise Invalid_argument if [bound <= 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates driven by the stream. *)
