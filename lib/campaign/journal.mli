(** The on-disk campaign journal: crash-safe, versioned, plan-bound.

    A line-oriented append-only log. The header carries the schema version
    and the {!Plan.hash} of the plan the journal belongs to; a journal
    whose version or plan hash does not match is rejected outright — a
    resumed campaign must never silently mix sampling orders. Sample
    records are buffered per batch and only count once the batch's commit
    line is fully written, so a campaign killed mid-write resumes at the
    previous batch boundary and replays to a state bit-identical to an
    uninterrupted run (batch boundaries are deterministic from the plan).

    Format (one record per line):
    {v
    moard-campaign-journal 1
    plan <16 hex digits>
    m <key> <value>            (campaign parameters, for plan rebuild)
    S <obj> <stratum> <sample> <code>
    C <obj> <count>            (commit of the preceding <count> S lines)
    v} *)

val schema_version : int

exception Rejected of string
(** Journal exists but cannot be used: wrong magic, wrong schema version,
    or wrong plan hash. *)

type record = { obj : int; stratum : int; sample : int; code : int }
(** One resolved sample: objective index, stratum index, sample index in
    the stratum's frozen order, and the outcome code
    ({!Engine.code_of_outcome}). *)

type writer

val create :
  path:string -> plan_hash:string -> meta:(string * string) list -> writer
(** Start a fresh journal (truncates). [meta] keys/values must be
    space-free; they let [campaign resume]/[report] rebuild the plan. *)

val reopen : path:string -> plan_hash:string -> writer
(** Open an existing journal for appending.
    @raise Rejected on version or plan-hash mismatch. *)

val commit_batch : writer -> obj:int -> (int * int * int) list -> unit
(** Append one batch of [(stratum, sample, code)] records for objective
    [obj], followed by its commit line, and flush. *)

val close : writer -> unit

val replay : path:string -> plan_hash:string -> record list
(** Committed records, in execution order. Uncommitted or corrupt tail
    lines are dropped (that is the crash being survived, not an error).
    @raise Rejected on version or plan-hash mismatch. *)

val read_meta : path:string -> (string * string) list
(** The meta key/value pairs, validating only the schema version — used to
    rebuild the plan before {!replay} can check its hash. *)
