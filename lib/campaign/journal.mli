(** The on-disk campaign journal: crash-safe, versioned, plan-bound,
    checksummed.

    A line-oriented append-only log. The header carries the schema version
    and the {!Plan.hash} of the plan the journal belongs to; a journal
    whose version or plan hash does not match is rejected outright — a
    resumed campaign must never silently mix sampling orders. Sample
    records are buffered per batch and only count once the batch's commit
    line — which carries an FNV-1a64 checksum of the batch's S lines — is
    fully written, so a campaign killed mid-write resumes at the previous
    batch boundary and replays to a state bit-identical to an
    uninterrupted run (batch boundaries are deterministic from the plan),
    and a bit flipped inside a committed batch is detected rather than
    replayed as a different valid sample.

    All I/O goes through an injectable {!Moard_chaos.Fx.t} (default: the
    real filesystem), which is how the chaos harness tears appends and
    flips read bytes.

    Format (one record per line):
    {v
    moard-campaign-journal 2
    plan <16 hex digits>
    m <key> <value>            (campaign parameters, for plan rebuild)
    S <obj> <stratum> <sample> <code>
    C <obj> <count> <16 hex>   (commit: count + checksum of the S block)
    v} *)

val schema_version : int

exception Rejected of string
(** Journal exists but cannot be used: wrong magic, wrong schema version,
    or wrong plan hash. *)

type record = { obj : int; stratum : int; sample : int; code : int }
(** One resolved sample: objective index, stratum index, sample index in
    the stratum's frozen order, and the outcome code
    ({!Engine.code_of_outcome}). *)

type writer

val create :
  ?fx:Moard_chaos.Fx.t ->
  path:string ->
  plan_hash:string ->
  meta:(string * string) list ->
  unit ->
  writer
(** Start a fresh journal (truncates). [meta] keys/values must be
    space-free; they let [campaign resume]/[report] rebuild the plan. *)

val reopen :
  ?fx:Moard_chaos.Fx.t -> path:string -> plan_hash:string -> unit -> writer
(** Open an existing journal for appending.
    @raise Rejected on version or plan-hash mismatch. *)

val commit_batch : writer -> obj:int -> (int * int * int) list -> unit
(** Append one batch of [(stratum, sample, code)] records for objective
    [obj], followed by its checksummed commit line, in a single open/
    append/close cycle. *)

val close : writer -> unit
(** No-op (the writer holds no open handle); kept so writer lifetimes
    stay explicit at call sites. *)

val replay :
  ?fx:Moard_chaos.Fx.t -> path:string -> plan_hash:string -> unit -> record list
(** Committed records, in execution order. Uncommitted, checksum-failing
    or otherwise corrupt tail lines are dropped (that is the crash being
    survived, not an error).
    @raise Rejected on version or plan-hash mismatch. *)

val read_meta : ?fx:Moard_chaos.Fx.t -> path:string -> unit -> (string * string) list
(** The meta key/value pairs, validating only the schema version — used to
    rebuild the plan before {!replay} can check its hash. *)

val checksum : string -> string
(** FNV-1a64 of a string as 16 lowercase hex digits — the commit-line
    checksum primitive, exposed for fsck tooling and tests. *)

type fsck_report = {
  path : string;
  header_ok : bool;  (** magic + schema version parsed *)
  plan_hash : string option;
  meta : (string * string) list;
  batches : int;  (** committed batches that verified *)
  records : int;  (** records inside them *)
  torn_tail : bool;  (** file does not end in a newline *)
  bad_line : int option;
      (** 1-based line where replay stops trusting the file, if before
          the end *)
}

val fsck : ?fx:Moard_chaos.Fx.t -> path:string -> unit -> fsck_report
(** Offline integrity pass over one journal: never raises on damage
    (only on an unreadable file), reports what a resume would see. *)
