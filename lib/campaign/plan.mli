(** A campaign plan: the frozen sampling design a campaign executes.

    Built once from a golden-run context, a plan fixes, per target object,
    the stratified fault-site population and — through one seeded
    Fisher-Yates shuffle per stratum ({!Splitmix}) — the complete
    without-replacement sampling order. Everything downstream (the engine,
    the journal, resume) is a deterministic function of [(seed, plan)],
    which is what makes campaigns bit-reproducible across domain counts
    and kill/resume boundaries. *)

type stratum = {
  label : string;
  population : int;
  members : int array;  (** encoded (site, bit), enumeration order *)
  order : int array;
      (** sampling order: sample [k] of the stratum is
          [members.(order.(k))] *)
}

type objective = {
  object_name : string;
  sites : Moard_trace.Consume.t array;
  population : int;
  strata : stratum array;
}

type t = {
  workload_name : string;
  variant : string;
      (** protection-plan tag of a transformed program variant (e.g.
          ["C:dwc"]); [""] = the unprotected program. Distinguishes
          journals and store keys of protected-variant campaigns. *)
  model : Moard_bits.Errmodel.t;  (** error model the members sample *)
  harts : int;  (** hart count of the workload's golden run *)
  seed : int;
  confidence : float;
  z : float;          (** z quantile matching [confidence] *)
  ci_width : float;   (** target half-width of the combined interval *)
  batch : int;        (** samples resolved between stopping checks *)
  max_samples : int;  (** per-object cap; -1 = none *)
  objectives : objective array;
}

val make :
  ?variant:string ->
  ?model:Moard_bits.Errmodel.t ->
  ?seed:int ->
  ?confidence:float ->
  ?ci_width:float ->
  ?batch:int ->
  ?max_samples:int ->
  Moard_inject.Context.t ->
  objects:string list ->
  t
(** Enumerate populations from the context's golden tape and freeze the
    sampling orders. Defaults: single-bit error model, seed 42,
    confidence 0.95, ci_width 0.02 (the paper's ±2% methodology),
    batch 64, no sample cap, empty variant tag.
    @raise Invalid_argument on an empty object list, an unknown object, an
    object with no fault sites, or an unsupported confidence level. *)

val sample_member : objective -> stratum:int -> index:int -> int * int
(** [(site_index, lane)] of the [index]-th sample of a stratum under the
    frozen order. *)

val allocate : budget:int -> int array -> int array
(** [allocate ~budget remaining]: split a sample budget over strata
    proportionally to their remaining (unsampled) populations, by largest
    remainder. The result sums to [min budget (sum remaining)] and never
    exceeds any stratum's remaining population. Deterministic. *)

val hash : t -> string
(** 64-bit FNV-1a over a canonical serialization of the plan (parameters,
    strata, members), as 16 hex digits. Stable across processes and OCaml
    versions; journals are bound to it. The error model contributes to
    the hash only when it is not [Single_bit], so journals written before
    error models existed still resolve; the hart count likewise
    contributes only when it is not 1 (a multi-hart program's text and
    site populations are hart-count independent, so the hash must carry
    the distinction explicitly). The variant tag contributes only when
    non-empty, for the same backward compatibility. *)
