(** The fault-site population of a data object, stratified.

    A member of the population is one candidate injection: (consumption
    site, error-model lane) — under the default single-bit model, lane i
    is the flip of bit i. The population is partitioned into strata by
    consumption-site kind (operand slot, capped at 2) × bit class
    (IEEE-754 field of the pattern's most significant flipped bit within
    the image width): faults in different strata behave
    very differently, so sampling each stratum separately and combining
    the per-stratum estimates population-weighted gives a tighter interval
    for the same budget than uniform sampling — and lets the engine stop a
    stratum independently once it is resolved or exhausted. *)

val nstrata : int
(** Number of strata (kind classes × bit classes); strata with zero
    population for a given object simply stay empty. *)

val label : int -> string
(** Human-readable stratum name, e.g. ["slot0/exponent"]. *)

val bit_class : Moard_bits.Bitval.width -> int -> int
val kind_class : Moard_trace.Consume.t -> int
val stratum_of : Moard_trace.Consume.t -> int -> int
(** Stratum index of a (site, bit) member under the single-bit model. *)

val stratum_of_lane :
  Moard_bits.Errmodel.t -> Moard_trace.Consume.t -> int -> int
(** Stratum index of a (site, lane) member: the bit class of the lane
    pattern's most significant flipped bit. Coincides with {!stratum_of}
    for the single-bit model. *)

val encode : site:int -> bit:int -> int
(** Pack a member as [(site lsl 6) lor bit] (lanes number < 64 in every
    model and width, so the packing is model-independent). *)

val decode : int -> int * int
(** Inverse of {!encode}: [(site_index, bit)]. *)

type t = {
  object_name : string;
  sites : Moard_trace.Consume.t array;
      (** read-kind consumption sites, in trace enumeration order *)
  total : int;  (** population size: sum of model lane counts over sites *)
  members : int array array;
      (** per stratum, the encoded members in enumeration order *)
}

val of_tape :
  ?model:Moard_bits.Errmodel.t ->
  ?segment:(string -> bool) ->
  Moard_trace.Tape.t ->
  Moard_trace.Data_object.t ->
  object_name:string ->
  t
(** Enumerate and stratify the population from the packed golden tape.
    Deterministic: the same tape and object always give the same arrays. *)
