module Context = Moard_inject.Context
module Errmodel = Moard_bits.Errmodel

type stratum = {
  label : string;
  population : int;
  members : int array;
  order : int array;
}

type objective = {
  object_name : string;
  sites : Moard_trace.Consume.t array;
  population : int;
  strata : stratum array;
}

type t = {
  workload_name : string;
  variant : string;
  model : Errmodel.t;
  harts : int;
  seed : int;
  confidence : float;
  z : float;
  ci_width : float;
  batch : int;
  max_samples : int;
  objectives : objective array;
}

let make ?(variant = "") ?(model = Errmodel.Single_bit) ?(seed = 42)
    ?(confidence = 0.95) ?(ci_width = 0.02) ?(batch = 64) ?(max_samples = -1)
    ctx ~objects =
  if objects = [] then invalid_arg "Plan.make: no objects";
  if ci_width <= 0.0 || ci_width >= 1.0 then invalid_arg "Plan.make: ci_width";
  if batch <= 0 then invalid_arg "Plan.make: batch";
  let z = Moard_stats.Confidence.z_of_confidence confidence in
  let tape = Context.tape ctx in
  let segment = Context.segment ctx in
  let objectives =
    List.mapi
      (fun oi object_name ->
        let obj = Context.object_of ctx object_name in
        let pop = Population.of_tape ~model ~segment tape obj ~object_name in
        if pop.Population.total = 0 then
          invalid_arg ("Plan.make: no fault sites for " ^ object_name);
        let strata =
          Array.mapi
            (fun si members ->
              let n = Array.length members in
              let order = Array.init n Fun.id in
              (* the whole without-replacement sampling order of the
                 stratum is fixed here, from the (seed, object, stratum)
                 stream alone — running, resuming or resharding the
                 campaign never draws randomness again *)
              Splitmix.shuffle (Splitmix.of_path ~seed [ oi; si ]) order;
              {
                label = Population.label si;
                population = n;
                members;
                order;
              })
            pop.Population.members
        in
        {
          object_name;
          sites = pop.Population.sites;
          population = pop.Population.total;
          strata;
        })
      objects
    |> Array.of_list
  in
  let w = Context.workload ctx in
  {
    workload_name = w.Moard_inject.Workload.name;
    variant;
    model;
    harts = w.Moard_inject.Workload.harts;
    seed;
    confidence;
    z;
    ci_width;
    batch;
    max_samples;
    objectives;
  }

let sample_member objective ~stratum ~index =
  let s = objective.strata.(stratum) in
  Population.decode s.members.(s.order.(index))

(* -------------------------------------------------------------------- *)

let allocate ~budget remaining =
  if budget < 0 then invalid_arg "Plan.allocate: budget";
  let n = Array.length remaining in
  Array.iter (fun r -> if r < 0 then invalid_arg "Plan.allocate: remaining")
    remaining;
  let total = Array.fold_left ( + ) 0 remaining in
  let b = min budget total in
  let alloc = Array.make n 0 in
  if b > 0 then begin
    (* proportional shares, integer floors, then largest-remainder
       distribution (ties broken by index) — deterministic and never over
       a stratum's remaining population *)
    let fracs = Array.make n 0.0 in
    let assigned = ref 0 in
    Array.iteri
      (fun i r ->
        let share = float_of_int b *. float_of_int r /. float_of_int total in
        let base = int_of_float (Float.floor share) in
        alloc.(i) <- base;
        assigned := !assigned + base;
        fracs.(i) <- share -. float_of_int base)
      remaining;
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j ->
        match compare fracs.(j) fracs.(i) with 0 -> compare i j | c -> c)
      order;
    let left = ref (b - !assigned) in
    let k = ref 0 in
    while !left > 0 do
      let i = order.(!k mod n) in
      if alloc.(i) < remaining.(i) then begin
        alloc.(i) <- alloc.(i) + 1;
        decr left
      end;
      incr k
    done
  end;
  alloc

(* -------------------------------------------------------------------- *)

(* FNV-1a over a canonical byte rendering of everything that determines
   the campaign: parameters, population sizes and the members themselves.
   Stable across runs and OCaml versions (unlike Hashtbl.hash it is
   specified here, byte by byte). *)
let fnv_prime = 0x100000001B3L
let fnv_offset = 0xCBF29CE484222325L

let hash t =
  let h = ref fnv_offset in
  let byte b = h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xFF))) fnv_prime in
  let int i =
    for shift = 0 to 7 do
      byte ((i lsr (shift * 8)) land 0xFF)
    done
  in
  let str s = String.iter (fun c -> byte (Char.code c)) s; byte 0 in
  str "moard-campaign-plan-v1";
  str t.workload_name;
  (* The single-bit rendering predates error models: folding the default
     model into the hash would orphan every existing journal, so only
     non-default models contribute. *)
  if t.model <> Errmodel.Single_bit then begin
    str "error-model";
    str (Errmodel.to_string t.model)
  end;
  (* Likewise: hart counts do not change a parallel program's text or its
     site populations, so without this the serial and every multi-hart
     configuration of one program would collide; folding the default in
     would orphan every pre-existing journal. *)
  if t.harts <> 1 then begin
    str "harts";
    int t.harts
  end;
  (* Protected-variant campaigns run a transformed program under the same
     workload name; the variant tag keeps their journals and store keys
     from colliding with the unprotected ones. Empty (the unprotected
     program) contributes nothing, so every pre-existing journal still
     resolves. *)
  if t.variant <> "" then begin
    str "variant";
    str t.variant
  end;
  int t.seed;
  str (Printf.sprintf "%h" t.confidence);
  str (Printf.sprintf "%h" t.ci_width);
  int t.batch;
  int t.max_samples;
  Array.iter
    (fun o ->
      str o.object_name;
      int (Array.length o.sites);
      int o.population;
      Array.iter
        (fun s ->
          str s.label;
          int s.population;
          Array.iter int s.members)
        o.strata)
    t.objectives;
  Printf.sprintf "%016Lx" !h
