module Context = Moard_inject.Context
module Outcome = Moard_inject.Outcome
module Resolve = Moard_inject.Resolve
module Confidence = Moard_stats.Confidence
module Pattern = Moard_bits.Pattern
module Errmodel = Moard_bits.Errmodel

let code_of_outcome = function
  | Outcome.Same -> 0
  | Outcome.Acceptable -> 1
  | Outcome.Incorrect -> 2
  | Outcome.Crashed _ -> 3

let code_names = [| "same"; "acceptable"; "incorrect"; "crashed" |]
let success_code c = c = 0 || c = 1

type stop_reason = Ci_target | Exhausted | Max_samples | Interrupted

let stop_reason_name = function
  | Ci_target -> "ci-target"
  | Exhausted -> "exhausted"
  | Max_samples -> "max-samples"
  | Interrupted -> "interrupted"

type stratum_result = {
  label : string;
  population : int;
  samples : int;
  successes : int;
  by_code : int array;
  lo : float;
  hi : float;
  exhausted : bool;
}

type object_result = {
  object_name : string;
  population : int;
  sites : int;
  samples : int;
  runs : int;
  cache_hits : int;
  by_code : int array;
  estimate : float;
  lo : float;
  hi : float;
  halfwidth : float;
  stopped : stop_reason;
  strata : stratum_result array;
}

type perf = {
  wall_seconds : float;
  inject_seconds : float;
  per_domain_runs : int array;
}

type result = {
  plan_hash : string;
  workload_name : string;
  model : Errmodel.t;
  seed : int;
  confidence : float;
  ci_width : float;
  domains : int;
  objects : object_result array;
  perf : perf;
}

(* ------------------------------------------------------------------ *)

type obj_state = {
  n : int array;
  ok : int array;
  by_code : int array;
  stratum_codes : int array array;  (** per stratum, counts per outcome code *)
  memo : (Context.ekey, int) Hashtbl.t;
  mutable samples : int;
  mutable runs : int;
  mutable hits : int;
}

let init_state (po : Plan.objective) =
  let ns = Array.length po.Plan.strata in
  {
    n = Array.make ns 0;
    ok = Array.make ns 0;
    by_code = Array.make 4 0;
    stratum_codes = Array.init ns (fun _ -> Array.make 4 0);
    memo = Hashtbl.create 1024;
    samples = 0;
    runs = 0;
    hits = 0;
  }

(* The combined interval: per-stratum Wilson intervals (exact point for an
   exhausted stratum — sampling is without replacement, so n = N means the
   stratum is fully resolved), combined population-weighted. The combined
   interval covers whenever every per-stratum interval covers, so it is
   conservative at the configured level. An unsampled stratum contributes
   its full-ignorance interval [0, 1]. *)
let combined (po : Plan.objective) st z =
  let totalf = float_of_int po.Plan.population in
  let est = ref 0.0 and lo = ref 0.0 and hi = ref 0.0 in
  Array.iteri
    (fun s (ps : Plan.stratum) ->
      if ps.Plan.population > 0 then begin
        let w = float_of_int ps.Plan.population /. totalf in
        let n = st.n.(s) and ok = st.ok.(s) in
        let p_hat =
          if n > 0 then float_of_int ok /. float_of_int n else 0.5
        in
        let l, h =
          if n = ps.Plan.population then (p_hat, p_hat)
          else
            let i = Confidence.wilson ~z ~n ~successes:ok () in
            (i.Confidence.lo, i.Confidence.hi)
        in
        est := !est +. (w *. p_hat);
        lo := !lo +. (w *. l);
        hi := !hi +. (w *. h)
      end)
    po.Plan.strata;
  (!est, !lo, !hi)

let stop_state (plan : Plan.t) (po : Plan.objective) st =
  let exhausted =
    Array.for_all Fun.id
      (Array.mapi (fun s (ps : Plan.stratum) -> st.n.(s) = ps.Plan.population)
         po.Plan.strata)
  in
  if exhausted then Some Exhausted
  else
    let _, lo, hi = combined po st plan.Plan.z in
    if (hi -. lo) /. 2.0 <= plan.Plan.ci_width then Some Ci_target
    else if plan.Plan.max_samples >= 0 && st.samples >= plan.Plan.max_samples
    then Some Max_samples
    else None

(* ------------------------------------------------------------------ *)

(* Resolve the distinct faults of a batch. Injection outcomes are a pure
   function of the fault (the machine, tape and golden outputs are frozen
   and shared; each worker owns a throwaway shard for its run counters),
   so the result is independent of how jobs are dealt to domains — the
   root of the domains=1 ≡ domains=N guarantee.

   With [batch] on, the jobs of a batch are grouped by consumption site and
   each group goes through one bit-parallel kernel sweep ({!Resolve.site}
   restricted to the sampled bits) on the owning worker, which executes the
   workload only for the bits the kernel cannot decide. Outcomes — and
   hence codes, journal records and every statistic — are identical to
   per-job injection; only wall-clock and the shard-local run counters
   (which nothing downstream reads) change. The work unit is the site
   (up to 64 patterns), so domains partition at site granularity and a
   worker is never spawned without at least one unit to chew. *)
let run_jobs ctx ~model ~domains ~batch
    (jobs : (Context.ekey * Moard_trace.Consume.t * int) array) =
  let nj = Array.length jobs in
  let out = Array.make nj 0 in
  let d = max 1 domains in
  let per = Array.make d 0 in
  if nj > 0 then
    if batch then begin
      (* Site-granular units, in first-appearance (= canonical job) order. *)
      let groups : (Moard_trace.Consume.t, (int * int) list ref) Hashtbl.t =
        Hashtbl.create 64
      in
      let order = ref [] in
      Array.iteri
        (fun i (_, site, bit) ->
          match Hashtbl.find_opt groups site with
          | Some l -> l := (i, bit) :: !l
          | None ->
            Hashtbl.replace groups site (ref [ (i, bit) ]);
            order := site :: !order)
        jobs;
      let units = Array.of_list (List.rev !order) in
      let nu = Array.length units in
      let d = min d nu in
      let resolve_unit sh site =
        let members = List.rev !(Hashtbl.find groups site) in
        let bits =
          List.fold_left
            (fun acc (_, b) -> Moard_bits.Patternset.add acc b)
            Moard_bits.Patternset.empty members
        in
        let outs = Resolve.site ~model ~lanes:bits sh site in
        List.map (fun (i, b) -> (i, code_of_outcome outs.(b))) members
      in
      if d = 1 then begin
        let sh = Context.shard ctx in
        Array.iter
          (fun site ->
            let rs = resolve_unit sh site in
            per.(0) <- per.(0) + List.length rs;
            List.iter (fun (i, c) -> out.(i) <- c) rs)
          units
      end
      else begin
        let worker w =
          Domain.spawn (fun () ->
              let sh = Context.shard ctx in
              let acc = ref [] in
              let u = ref w in
              while !u < nu do
                acc := List.rev_append (resolve_unit sh units.(!u)) !acc;
                u := !u + d
              done;
              !acc)
        in
        let handles = List.init d worker in
        List.iteri
          (fun w h ->
            let rs = Domain.join h in
            per.(w) <- per.(w) + List.length rs;
            List.iter (fun (i, c) -> out.(i) <- c) rs)
          handles
      end
    end
    else begin
      let resolve sh (_, site, bit) =
        code_of_outcome
          (Context.inject sh
             (Context.fault_of_site site
                (Errmodel.pattern_at model site.Moard_trace.Consume.width bit)))
      in
      let d = min d nj in
      if d = 1 then begin
        let sh = Context.shard ctx in
        Array.iteri (fun i j -> out.(i) <- resolve sh j) jobs;
        per.(0) <- nj
      end
      else begin
        let worker w =
          Domain.spawn (fun () ->
              let sh = Context.shard ctx in
              let acc = ref [] in
              let i = ref w in
              while !i < nj do
                acc := (!i, resolve sh jobs.(!i)) :: !acc;
                i := !i + d
              done;
              !acc)
        in
        let handles = List.init d worker in
        List.iteri
          (fun w h ->
            let rs = Domain.join h in
            per.(w) <- per.(w) + List.length rs;
            List.iter (fun (i, c) -> out.(i) <- c) rs)
          handles
      end
    end;
  (out, per)

let apply_sample st ~stratum ~code =
  st.n.(stratum) <- st.n.(stratum) + 1;
  if success_code code then st.ok.(stratum) <- st.ok.(stratum) + 1;
  st.by_code.(code) <- st.by_code.(code) + 1;
  st.stratum_codes.(stratum).(code) <- st.stratum_codes.(stratum).(code) + 1;
  st.samples <- st.samples + 1

let run_batch ctx (plan : Plan.t) oi st ~domains ~batch ~writer ~per_domain
    ~inject_seconds =
  let po = plan.Plan.objectives.(oi) in
  let ns = Array.length po.Plan.strata in
  let remaining =
    Array.init ns (fun s -> po.Plan.strata.(s).Plan.population - st.n.(s))
  in
  let budget =
    if plan.Plan.max_samples >= 0 then
      min plan.Plan.batch (plan.Plan.max_samples - st.samples)
    else plan.Plan.batch
  in
  (* give every never-sampled stratum its first sample before splitting
     the rest proportionally: the combined interval cannot tighten past a
     stratum still at full ignorance *)
  let alloc = Array.make ns 0 in
  let left = ref budget in
  for s = 0 to ns - 1 do
    if !left > 0 && st.n.(s) = 0 && remaining.(s) > 0 then begin
      alloc.(s) <- 1;
      remaining.(s) <- remaining.(s) - 1;
      decr left
    end
  done;
  let prop = Plan.allocate ~budget:!left remaining in
  Array.iteri (fun s a -> alloc.(s) <- alloc.(s) + a) prop;
  (* the batch's samples, stratum-major — the canonical order the journal
     records and every configuration reproduces *)
  let entries = ref [] in
  for s = ns - 1 downto 0 do
    for j = alloc.(s) - 1 downto 0 do
      let index = st.n.(s) + j in
      let site_i, bit = Plan.sample_member po ~stratum:s ~index in
      entries := (s, index, po.Plan.sites.(site_i), bit) :: !entries
    done
  done;
  let entries = !entries in
  (* dedupe by error-equivalence class: the first member of a class runs,
     the rest are cache hits counted as resolved samples *)
  let job_of = Hashtbl.create 64 in
  let jobs = ref [] and njobs = ref 0 in
  let described =
    List.map
      (fun (s, index, site, bit) ->
        let key =
          Context.ekey ctx site
            (Errmodel.pattern_at plan.Plan.model site.Moard_trace.Consume.width
               bit)
        in
        let fresh =
          (not (Hashtbl.mem st.memo key)) && not (Hashtbl.mem job_of key)
        in
        if fresh then begin
          Hashtbl.replace job_of key !njobs;
          jobs := (key, site, bit) :: !jobs;
          incr njobs
        end;
        (s, index, key, fresh))
      entries
  in
  let jobs = Array.of_list (List.rev !jobs) in
  let t = Unix.gettimeofday () in
  let codes, per = run_jobs ctx ~model:plan.Plan.model ~domains ~batch jobs in
  inject_seconds := !inject_seconds +. (Unix.gettimeofday () -. t);
  Array.iteri (fun w c -> per_domain.(w) <- per_domain.(w) + c) per;
  Array.iteri (fun i (key, _, _) -> Hashtbl.replace st.memo key codes.(i)) jobs;
  let records =
    List.map
      (fun (s, index, key, fresh) ->
        let code = Hashtbl.find st.memo key in
        apply_sample st ~stratum:s ~code;
        if fresh then st.runs <- st.runs + 1 else st.hits <- st.hits + 1;
        (s, index, code))
      described
  in
  match writer with
  | Some w -> Journal.commit_batch w ~obj:oi records
  | None -> ()

(* ------------------------------------------------------------------ *)

let replay_records ctx (plan : Plan.t) states records =
  List.iter
    (fun (r : Journal.record) ->
      if r.Journal.obj < 0 || r.Journal.obj >= Array.length plan.Plan.objectives
      then raise (Journal.Rejected "journal: objective index out of range");
      let po = plan.Plan.objectives.(r.Journal.obj) in
      let st = states.(r.Journal.obj) in
      if
        r.Journal.stratum < 0
        || r.Journal.stratum >= Array.length po.Plan.strata
        || r.Journal.sample <> st.n.(r.Journal.stratum)
      then raise (Journal.Rejected "journal: records out of order");
      (* recompute the equivalence class so the memo — and with it the
         run/hit split of the continuation — rebuilds exactly as the
         interrupted run left it *)
      let site_i, bit =
        Plan.sample_member po ~stratum:r.Journal.stratum ~index:r.Journal.sample
      in
      let site = po.Plan.sites.(site_i) in
      let key =
        Context.ekey ctx site
          (Errmodel.pattern_at plan.Plan.model site.Moard_trace.Consume.width
             bit)
      in
      if Hashtbl.mem st.memo key then st.hits <- st.hits + 1
      else begin
        Hashtbl.replace st.memo key r.Journal.code;
        st.runs <- st.runs + 1
      end;
      apply_sample st ~stratum:r.Journal.stratum ~code:r.Journal.code)
    records

let meta_of (plan : Plan.t) extra =
  (* the "model" key is written only for non-default models, keeping
     single-bit journal headers byte-identical to the pre-model format *)
  (if plan.Plan.model <> Errmodel.Single_bit then
     [ ("model", Errmodel.to_string plan.Plan.model) ]
   else [])
  @ [
    ("workload", plan.Plan.workload_name);
    ("seed", string_of_int plan.Plan.seed);
    ("confidence", Printf.sprintf "%h" plan.Plan.confidence);
    ("ci_width", Printf.sprintf "%h" plan.Plan.ci_width);
    ("batch", string_of_int plan.Plan.batch);
    ("max_samples", string_of_int plan.Plan.max_samples);
    ( "objects",
      String.concat ","
        (Array.to_list
           (Array.map
              (fun (o : Plan.objective) -> o.Plan.object_name)
              plan.Plan.objectives)) );
  ]
  @ extra

let run_internal ~domains ~batch ~max_batches ~should_stop ~cancel ~writer
    ~replayed ctx (plan : Plan.t) ~plan_hash =
  let t0 = Unix.gettimeofday () in
  (* a tripped cancel token is the same signal as should_stop: finish
     the committed batch, report Interrupted, leave the journal for
     resume — cancellation must never tear campaign state *)
  let should_stop () =
    should_stop ()
    || match cancel with
       | Some c -> Moard_chaos.Cancel.cancelled c
       | None -> false
  in
  (* More workers than cores only adds scheduling overhead (the workload
     is CPU-bound); silently cap rather than make domains=N a footgun. *)
  let domains = min (max 1 domains) (Domain.recommended_domain_count ()) in
  let states = Array.map init_state plan.Plan.objectives in
  replay_records ctx plan states replayed;
  let per_domain = Array.make (max 1 domains) 0 in
  let inject_seconds = ref 0.0 in
  let batches = ref 0 in
  let objects =
    Array.mapi
      (fun oi (po : Plan.objective) ->
        let st = states.(oi) in
        let stopped = ref None in
        while !stopped = None do
          match stop_state plan po st with
          | Some r -> stopped := Some r
          | None ->
            if
              (match max_batches with Some m -> !batches >= m | None -> false)
              || should_stop ()
            then stopped := Some Interrupted
            else begin
              run_batch ctx plan oi st ~domains ~batch ~writer ~per_domain
                ~inject_seconds;
              incr batches
            end
        done;
        let est, lo, hi = combined po st plan.Plan.z in
        {
          object_name = po.Plan.object_name;
          population = po.Plan.population;
          sites = Array.length po.Plan.sites;
          samples = st.samples;
          runs = st.runs;
          cache_hits = st.hits;
          by_code = Array.copy st.by_code;
          estimate = est;
          lo;
          hi;
          halfwidth = (hi -. lo) /. 2.0;
          stopped = Option.get !stopped;
          strata =
            Array.mapi
              (fun s (ps : Plan.stratum) ->
                {
                  label = ps.Plan.label;
                  population = ps.Plan.population;
                  samples = st.n.(s);
                  successes = st.ok.(s);
                  by_code = Array.copy st.stratum_codes.(s);
                  lo =
                    (if st.n.(s) = ps.Plan.population && st.n.(s) > 0 then
                       float_of_int st.ok.(s) /. float_of_int st.n.(s)
                     else
                       (Confidence.wilson ~z:plan.Plan.z ~n:st.n.(s)
                          ~successes:st.ok.(s) ())
                         .Confidence.lo);
                  hi =
                    (if st.n.(s) = ps.Plan.population && st.n.(s) > 0 then
                       float_of_int st.ok.(s) /. float_of_int st.n.(s)
                     else
                       (Confidence.wilson ~z:plan.Plan.z ~n:st.n.(s)
                          ~successes:st.ok.(s) ())
                         .Confidence.hi);
                  exhausted = st.n.(s) = ps.Plan.population;
                })
              po.Plan.strata;
        })
      plan.Plan.objectives
  in
  Option.iter Journal.close writer;
  {
    plan_hash;
    workload_name = plan.Plan.workload_name;
    model = plan.Plan.model;
    seed = plan.Plan.seed;
    confidence = plan.Plan.confidence;
    ci_width = plan.Plan.ci_width;
    domains = max 1 domains;
    objects;
    perf =
      {
        wall_seconds = Unix.gettimeofday () -. t0;
        inject_seconds = !inject_seconds;
        per_domain_runs = per_domain;
      };
  }

let never () = false

let run ?(domains = 1) ?(batch = true) ?journal ?(journal_meta = [])
    ?max_batches ?(should_stop = never) ?cancel ?fx ctx plan =
  let plan_hash = Plan.hash plan in
  let writer =
    Option.map
      (fun path ->
        Journal.create ?fx ~path ~plan_hash ~meta:(meta_of plan journal_meta)
          ())
      journal
  in
  run_internal ~domains ~batch ~max_batches ~should_stop ~cancel ~writer
    ~replayed:[] ctx plan ~plan_hash

let resume ?(domains = 1) ?(batch = true) ?max_batches ?(should_stop = never)
    ?cancel ?fx ~journal ctx plan =
  let plan_hash = Plan.hash plan in
  let replayed = Journal.replay ?fx ~path:journal ~plan_hash () in
  let writer = Some (Journal.reopen ?fx ~path:journal ~plan_hash ()) in
  run_internal ~domains ~batch ~max_batches ~should_stop ~cancel ~writer
    ~replayed ctx plan ~plan_hash
