(** The statistical fault-injection campaign engine (paper §V's validation
    methodology, industrialized).

    Executes a {!Plan}: samples each object's stratified fault-site
    population without replacement in the plan's frozen order, resolves
    batches of injections across OCaml 5 domains over one shared golden
    run ({!Moard_inject.Context.shard}), deduplicates by error-equivalence
    class (cache hits count as resolved samples), journals every batch,
    and stops per object as soon as the combined Wilson interval around
    the masking estimate is narrower than the plan's target.

    Reproducibility: for a fixed [(seed, plan)], the sequence of samples,
    the journal contents and every count and estimate in the result are
    bit-identical for any [domains] value and across any kill/resume
    chain. Injections are pure functions of the fault; equivalence-class
    deduplication happens in the coordinator (not in per-shard caches), so
    partitioning cannot change which class member defines an outcome.
    Only [perf] (wall-clock) varies between runs. *)

val code_of_outcome : Moard_inject.Outcome.t -> int
(** Stable outcome encoding: 0 same, 1 acceptable, 2 incorrect,
    3 crashed — what the journal records. *)

val code_names : string array
val success_code : int -> bool
(** Masked (tolerated): same or acceptable. *)

type stop_reason =
  | Ci_target    (** combined interval reached the target half-width *)
  | Exhausted    (** every stratum fully sampled: the estimate is exact *)
  | Max_samples  (** plan's per-object sample cap *)
  | Interrupted  (** [max_batches] harness bound hit (testing only) *)

val stop_reason_name : stop_reason -> string

type stratum_result = {
  label : string;
  population : int;
  samples : int;
  successes : int;
  by_code : int array;
      (** sample counts per outcome code within the stratum (sums to
          [samples]); what the cross-size predictor fits its per-stratum
          masked/SDC/crash rates from. Not part of the stable JSON. *)
  lo : float;
  hi : float;
  exhausted : bool;
}

type object_result = {
  object_name : string;
  population : int;   (** fault-site population (sites × bits) *)
  sites : int;
  samples : int;      (** resolved samples (runs + cache hits) *)
  runs : int;         (** actual program executions *)
  cache_hits : int;   (** samples resolved by error equivalence *)
  by_code : int array;  (** sample counts per outcome code *)
  estimate : float;   (** stratified masking-rate estimate *)
  lo : float;
  hi : float;
  halfwidth : float;
  stopped : stop_reason;
  strata : stratum_result array;
}

type perf = {
  wall_seconds : float;
  inject_seconds : float;   (** time inside injection batches *)
  per_domain_runs : int array;
}

type result = {
  plan_hash : string;
  workload_name : string;
  model : Moard_bits.Errmodel.t;  (** the plan's error model *)
  seed : int;
  confidence : float;
  ci_width : float;
  domains : int;
  objects : object_result array;
  perf : perf;  (** the only non-deterministic part of a result *)
}

val run :
  ?domains:int ->
  ?batch:bool ->
  ?journal:string ->
  ?journal_meta:(string * string) list ->
  ?max_batches:int ->
  ?should_stop:(unit -> bool) ->
  ?cancel:Moard_chaos.Cancel.t ->
  ?fx:Moard_chaos.Fx.t ->
  Moard_inject.Context.t ->
  Plan.t ->
  result
(** Execute a campaign. [domains] defaults to 1 and is silently capped at
    [Domain.recommended_domain_count ()] — oversubscribing a CPU-bound
    pool only adds overhead; within a batch, workers partition at site
    granularity and never spawn without a unit of work. [batch] (default
    [true]) resolves each site's sampled bits through the bit-parallel
    kernel ({!Moard_inject.Resolve.site}), executing the workload only for
    the bits it cannot decide; outcome codes, journal contents and every
    count/estimate in the result are identical either way (the [runs] /
    [cache_hits] split counts distinct equivalence classes, not machine
    executions, so it too is unchanged). [journal] starts a fresh
    journal at the path (truncating); [journal_meta] adds extra header
    pairs (e.g. the registry benchmark name, so the CLI can resume without
    being told it again). [max_batches] is the bounded-step testing
    harness: stop after that many batches, leaving the journal mid-flight.
    [should_stop] is polled between batches (the daemon's graceful-drain
    hook): when it returns [true] the engine stops at the batch boundary —
    every resolved batch already committed to the journal — and marks the
    remaining objectives [Interrupted]. [cancel] is polled at the same
    boundary and behaves exactly like [should_stop] returning [true]: the
    committed prefix survives, the result says [Interrupted], the journal
    (if any) can resume — cooperative cancellation never tears campaign
    state. [fx] routes journal I/O (chaos injection); computation itself
    is unaffected. *)

val resume :
  ?domains:int ->
  ?batch:bool ->
  ?max_batches:int ->
  ?should_stop:(unit -> bool) ->
  ?cancel:Moard_chaos.Cancel.t ->
  ?fx:Moard_chaos.Fx.t ->
  journal:string ->
  Moard_inject.Context.t ->
  Plan.t ->
  result
(** Replay a journal and continue to completion. The final result is
    bit-identical to an uninterrupted {!run} of the same plan.
    @raise Journal.Rejected if the journal's schema version or plan hash
    does not match, or its records contradict the plan. *)
