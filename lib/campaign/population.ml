module Consume = Moard_trace.Consume
module Bitval = Moard_bits.Bitval
module Errmodel = Moard_bits.Errmodel
module Pattern = Moard_bits.Pattern

let kind_names = [| "slot0"; "slot1"; "slot2+" |]
let bit_class_names = [| "sign"; "exponent"; "mantissa-hi"; "mantissa-lo" |]
let nkinds = Array.length kind_names
let nclasses = Array.length bit_class_names
let nstrata = nkinds * nclasses

let label id = kind_names.(id / nclasses) ^ "/" ^ bit_class_names.(id mod nclasses)

(* Bit classes follow the IEEE-754 field boundaries of the width: faults on
   the sign, the exponent and the two mantissa halves behave differently
   enough (an exponent flip rescales the value, a low mantissa flip
   perturbs it below most acceptance thresholds) that stratifying on them
   buys real variance reduction. Integer images reuse the same cut points
   as magnitude bands. A 1-bit image is all payload. *)
let bit_class (width : Bitval.width) bit =
  match width with
  | Bitval.W64 ->
    if bit = 63 then 0 else if bit >= 52 then 1 else if bit >= 26 then 2 else 3
  | Bitval.W32 ->
    if bit = 31 then 0 else if bit >= 23 then 1 else if bit >= 12 then 2 else 3
  | Bitval.W1 -> 3

let kind_class (s : Consume.t) =
  match s.Consume.kind with
  | Consume.Read { slot } -> min slot (nkinds - 1)
  | Consume.Store_dest ->
    invalid_arg "Population.kind_class: store destinations are not fault sites"

let stratum_of site bit = (kind_class site * nclasses) + bit_class site.Consume.width bit

(* A multi-bit pattern is classified by its most significant flipped bit:
   that bit dominates the numerical magnitude of the corruption, which is
   what the bit classes stratify on. For the single-bit model this is
   exactly [stratum_of site lane]. *)
let stratum_of_lane model (site : Consume.t) lane =
  let width = site.Consume.width in
  let hi =
    List.fold_left max 0 (Pattern.bits_of (Errmodel.pattern_at model width lane))
  in
  (kind_class site * nclasses) + bit_class width hi

let encode ~site ~bit = (site lsl 6) lor bit
let decode m = (m lsr 6, m land 63)

type t = {
  object_name : string;
  sites : Consume.t array;
  total : int;
  members : int array array;
}

let of_tape ?(model = Errmodel.Single_bit) ?segment tape obj ~object_name =
  let sites =
    (* Valid fault sites are bits of instruction operands holding values of
       the object (paper §V-B); store destinations are excluded for the
       same reason Exhaustive excludes them: the flipped element dies
       unconsumed at the very next instruction. *)
    Consume.of_tape ?segment tape obj
    |> List.filter (fun s ->
           match s.Consume.kind with
           | Consume.Read _ -> true
           | Consume.Store_dest -> false)
    |> Array.of_list
  in
  let acc = Array.make nstrata [] in
  Array.iteri
    (fun si (s : Consume.t) ->
      for lane = 0 to Errmodel.lanes model s.Consume.width - 1 do
        let st = stratum_of_lane model s lane in
        acc.(st) <- encode ~site:si ~bit:lane :: acc.(st)
      done)
    sites;
  let members =
    Array.map (fun l -> Array.of_list (List.rev l)) acc
  in
  let total = Array.fold_left (fun a m -> a + Array.length m) 0 members in
  { object_name; sites; total; members }
