let schema_version = 1

exception Rejected of string

let reject fmt = Printf.ksprintf (fun s -> raise (Rejected s)) fmt

type record = { obj : int; stratum : int; sample : int; code : int }

type writer = { oc : out_channel }

let magic = "moard-campaign-journal"

let header_lines ~plan_hash ~meta =
  Printf.sprintf "%s %d" magic schema_version
  :: Printf.sprintf "plan %s" plan_hash
  :: List.map
       (fun (k, v) ->
         if String.contains k ' ' || String.contains v ' ' then
           invalid_arg "Journal: meta keys/values must not contain spaces";
         Printf.sprintf "m %s %s" k v)
       meta

let create ~path ~plan_hash ~meta =
  let oc = open_out path in
  List.iter (fun l -> output_string oc l; output_char oc '\n')
    (header_lines ~plan_hash ~meta);
  flush oc;
  { oc }

(* Lines of the file; a trailing chunk not terminated by '\n' (a write cut
   short by the crash we are built to survive) is dropped. *)
let lines_of path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let parts = String.split_on_char '\n' s in
  match List.rev parts with
  | last :: rest when last <> "" -> List.rev rest (* unterminated tail *)
  | _ :: rest -> List.rev rest
  | [] -> []

let check_header path = function
  | version_line :: plan_line :: rest -> (
    (match String.split_on_char ' ' version_line with
    | [ m; v ] when m = magic ->
      let v = try int_of_string v with _ -> -1 in
      if v <> schema_version then
        reject "%s: schema version %d (this build reads %d)" path v
          schema_version
    | _ -> reject "%s: not a campaign journal" path);
    match String.split_on_char ' ' plan_line with
    | [ "plan"; h ] -> (h, rest)
    | _ -> reject "%s: missing plan hash" path)
  | _ -> reject "%s: truncated header" path

let read_meta ~path =
  let _, rest = check_header path (lines_of path) in
  List.filter_map
    (fun line ->
      match String.split_on_char ' ' line with
      | [ "m"; k; v ] -> Some (k, v)
      | _ -> None)
    rest

let validate ~path ~plan_hash =
  let h, rest = check_header path (lines_of path) in
  if h <> plan_hash then
    reject "%s: journal is for plan %s, current plan is %s" path h plan_hash;
  rest

let reopen ~path ~plan_hash =
  ignore (validate ~path ~plan_hash);
  { oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path }

let commit_batch w ~obj records =
  List.iter
    (fun (stratum, sample, code) ->
      Printf.fprintf w.oc "S %d %d %d %d\n" obj stratum sample code)
    records;
  (* records only count once this commit line is fully on disk: replay
     drops any uncommitted tail, so a mid-batch kill resumes exactly at
     the previous batch boundary *)
  Printf.fprintf w.oc "C %d %d\n" obj (List.length records);
  flush w.oc

let close w = close_out w.oc

let replay ~path ~plan_hash =
  let body = validate ~path ~plan_hash in
  let committed = ref [] in
  let pending = ref [] (* reversed *) in
  let npending = ref 0 in
  let ok = ref true in
  List.iter
    (fun line ->
      if !ok then
        match String.split_on_char ' ' line with
        | [ "m"; _; _ ] -> ()
        | [ "S"; o; s; i; c ] -> (
          match
            (int_of_string o, int_of_string s, int_of_string i, int_of_string c)
          with
          | obj, stratum, sample, code when code >= 0 && code <= 3 ->
            pending := { obj; stratum; sample; code } :: !pending;
            incr npending
          | _ -> ok := false
          | exception _ -> ok := false)
        | [ "C"; o; n ] -> (
          match (int_of_string o, int_of_string n) with
          | obj, n
            when n = !npending
                 && List.for_all (fun r -> r.obj = obj) !pending ->
            (* [pending] is newest-first; keep [committed] newest-first
               too, so one final reverse restores execution order *)
            committed := !pending @ !committed;
            pending := [];
            npending := 0
          | _ -> ok := false
          | exception _ -> ok := false)
        | _ -> ok := false)
    body;
  List.rev !committed
