module Fx = Moard_chaos.Fx

let schema_version = 2

exception Rejected of string

let reject fmt = Printf.ksprintf (fun s -> raise (Rejected s)) fmt

type record = { obj : int; stratum : int; sample : int; code : int }

(* The writer is a path + effects pair, not an open channel: every
   commit opens, appends, flushes, closes.  A crash can then only lose
   the batch being written, never buffered earlier batches, and the
   injectable effects let the chaos harness tear any individual
   append. *)
type writer = { path : string; fx : Fx.t }

let magic = "moard-campaign-journal"

(* FNV-1a64 of the S-line block protects each commit: a bit flipped in
   a committed record would otherwise parse as a different valid sample
   and silently poison the resume.  Same primitive as store records and
   plan hashes. *)
let checksum s =
  let offset = 0xCBF29CE484222325L and prime = 0x100000001B3L in
  let h = ref offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let header_lines ~plan_hash ~meta =
  Printf.sprintf "%s %d" magic schema_version
  :: Printf.sprintf "plan %s" plan_hash
  :: List.map
       (fun (k, v) ->
         if String.contains k ' ' || String.contains v ' ' then
           invalid_arg "Journal: meta keys/values must not contain spaces";
         Printf.sprintf "m %s %s" k v)
       meta

let create ?(fx = Fx.real) ~path ~plan_hash ~meta () =
  fx.Fx.write_file path
    (String.concat ""
       (List.map (fun l -> l ^ "\n") (header_lines ~plan_hash ~meta)));
  { path; fx }

(* Lines of the file plus whether a trailing chunk was not terminated by
   '\n' (a write cut short by the crash we are built to survive — the
   chunk is dropped). *)
let raw_lines ?(fx = Fx.real) path =
  let s = fx.Fx.read_file path in
  let parts = String.split_on_char '\n' s in
  match List.rev parts with
  | last :: rest when last <> "" -> (List.rev rest, true)
  | _ :: rest -> (List.rev rest, false)
  | [] -> ([], false)

let lines_of ?fx path = fst (raw_lines ?fx path)

let check_header path = function
  | version_line :: plan_line :: rest -> (
    (match String.split_on_char ' ' version_line with
    | [ m; v ] when m = magic ->
      let v = try int_of_string v with _ -> -1 in
      if v <> schema_version then
        reject "%s: schema version %d (this build reads %d)" path v
          schema_version
    | _ -> reject "%s: not a campaign journal" path);
    match String.split_on_char ' ' plan_line with
    | [ "plan"; h ] -> (h, rest)
    | _ -> reject "%s: missing plan hash" path)
  | _ -> reject "%s: truncated header" path

let read_meta ?fx ~path () =
  let _, rest = check_header path (lines_of ?fx path) in
  List.filter_map
    (fun line ->
      match String.split_on_char ' ' line with
      | [ "m"; k; v ] -> Some (k, v)
      | _ -> None)
    rest

let validate ?fx ~path ~plan_hash () =
  let h, rest = check_header path (lines_of ?fx path) in
  if h <> plan_hash then
    reject "%s: journal is for plan %s, current plan is %s" path h plan_hash;
  rest

let reopen ?(fx = Fx.real) ~path ~plan_hash () =
  ignore (validate ~fx ~path ~plan_hash ());
  { path; fx }

let s_line ~obj (stratum, sample, code) =
  Printf.sprintf "S %d %d %d %d\n" obj stratum sample code

let commit_batch w ~obj records =
  let body = String.concat "" (List.map (s_line ~obj) records) in
  (* records only count once this commit line is fully on disk: replay
     drops any uncommitted tail, so a mid-batch kill resumes exactly at
     the previous batch boundary *)
  let commit =
    Printf.sprintf "C %d %d %s\n" obj (List.length records) (checksum body)
  in
  w.fx.Fx.append w.path (body ^ commit)

let close (_ : writer) = ()

(* The shared replay walk.  Returns (committed records newest-first
   reversed at the end, batches, and the position where the walk latched
   off, if any).  Anything at or after a bad line is ignored: it is
   either the crash tail (fine) or damage (fsck reports it). *)
let walk body =
  let committed = ref [] in
  let pending = ref [] (* reversed *) in
  let pending_raw = ref [] (* reversed *) in
  let npending = ref 0 in
  let batches = ref 0 in
  let bad = ref None in
  List.iteri
    (fun i line ->
      if !bad = None then
        match String.split_on_char ' ' line with
        | [ "m"; _; _ ] -> ()
        | [ "S"; o; s; i'; c ] -> (
          match
            (int_of_string o, int_of_string s, int_of_string i',
             int_of_string c)
          with
          | obj, stratum, sample, code when code >= 0 && code <= 3 ->
            pending := { obj; stratum; sample; code } :: !pending;
            pending_raw := (line ^ "\n") :: !pending_raw;
            incr npending
          | _ -> bad := Some i
          | exception _ -> bad := Some i)
        | [ "C"; o; n; h ] -> (
          match (int_of_string o, int_of_string n) with
          | obj, n
            when n = !npending
                 && List.for_all (fun r -> r.obj = obj) !pending
                 && h = checksum (String.concat "" (List.rev !pending_raw)) ->
            (* [pending] is newest-first; keep [committed] newest-first
               too, so one final reverse restores execution order *)
            committed := !pending @ !committed;
            pending := [];
            pending_raw := [];
            npending := 0;
            incr batches
          | _ -> bad := Some i
          | exception _ -> bad := Some i)
        | _ -> bad := Some i)
    body;
  (List.rev !committed, !batches, !bad)

let replay ?fx ~path ~plan_hash () =
  let body = validate ?fx ~path ~plan_hash () in
  let records, _, _ = walk body in
  records

type fsck_report = {
  path : string;
  header_ok : bool;
  plan_hash : string option;
  meta : (string * string) list;
  batches : int;
  records : int;
  torn_tail : bool;
  bad_line : int option;
}

let fsck ?fx ~path () =
  let lines, torn_tail = raw_lines ?fx path in
  match check_header path lines with
  | exception Rejected _ ->
    {
      path;
      header_ok = false;
      plan_hash = None;
      meta = [];
      batches = 0;
      records = 0;
      torn_tail;
      bad_line = None;
    }
  | plan_hash, body ->
    let records, batches, bad = walk body in
    let meta =
      List.filter_map
        (fun line ->
          match String.split_on_char ' ' line with
          | [ "m"; k; v ] -> Some (k, v)
          | _ -> None)
        body
    in
    {
      path;
      header_ok = true;
      plan_hash = Some plan_hash;
      meta;
      batches;
      records = List.length records;
      torn_tail;
      (* body starts after the 2 header lines; report 1-based file line *)
      bad_line = Option.map (fun i -> i + 3) bad;
    }
