module Model = Moard_core.Model
module Advf = Moard_core.Advf
module Context = Moard_inject.Context

let default_domains () = min 8 (Domain.recommended_domain_count ())

let analyze_ctx ?options ?domains ctx ~object_name =
  (* Asking for more workers than cores makes the analysis *slower* (the
     domains time-slice one CPU and trash each other's caches), so an
     explicit request is capped at the hardware too — domains=4 on a
     single-core host degenerates to the sequential path instead of a
     4-way convoy. *)
  let n =
    match domains with
    | Some d -> min (max 1 d) (Domain.recommended_domain_count ())
    | None -> default_domains ()
  in
  if n = 1 then Model.analyze ?options ctx ~object_name
  else
    let worker w =
      Domain.spawn (fun () ->
          (* Workers share the machine and the frozen golden tape (both
             read-only after Context.make) and own a private cache shard;
             consumption sites are dealt round-robin by enumeration
             index. No worker re-executes the golden run. *)
          let shard = Context.shard ctx in
          Model.analyze ?options
            ~site_filter:(fun i -> i mod n = w)
            shard ~object_name)
    in
    let handles = List.init n worker in
    Advf.merge (List.map Domain.join handles)

let analyze ?options ?domains ~workload ~object_name () =
  analyze_ctx ?options ?domains (Context.make (workload ())) ~object_name

let analyze_targets ?options ?domains ~workload () =
  let ctx = Context.make (workload ()) in
  List.map
    (fun object_name -> analyze_ctx ?options ?domains ctx ~object_name)
    (Context.workload ctx).Moard_inject.Workload.targets
