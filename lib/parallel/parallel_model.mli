(** Multicore aDVF analysis.

    The paper leans on a 256-core cluster to make the analysis practical
    ("MOARD allows a user to easily leverage hardware resource to
    parallelize the analysis"); this is the shared-memory version on
    OCaml 5 domains. The golden run is executed and traced {e once}; its
    packed tape is frozen and shared read-only by every worker domain
    (together with the loaded machine and the golden outputs). Consumption
    sites of the target object are dealt round-robin to [domains] workers;
    each worker resolves its share through a private context shard
    ({!Moard_inject.Context.shard}: own error-equivalence cache and run
    counters, no synchronization) and the per-subset reports are merged
    with {!Moard_core.Advf.merge}.

    With the error-equivalence cache off, results are bit-identical to the
    sequential analysis: verdicts are deterministic and site subsets are
    disjoint. With the cache on they can differ marginally — equivalence
    is a heuristic (Relyzer-style), so which site's verdict gets reused
    for its equivalence class depends on the partition. *)

val analyze_ctx :
  ?options:Moard_core.Model.options ->
  ?domains:int ->
  Moard_inject.Context.t ->
  object_name:string ->
  Moard_core.Advf.report
(** Parallel analysis over an existing context (whose golden run has
    already happened, in {!Moard_inject.Context.make}). [domains] defaults
    to [Domain.recommended_domain_count ()], capped at 8; an explicit
    value is likewise capped at [recommended_domain_count] (a worker pool
    wider than the hardware is strictly slower); [domains = 1] — requested
    or after capping — degenerates to the sequential
    {!Moard_core.Model.analyze} with no domain spawned at all. *)

val analyze :
  ?options:Moard_core.Model.options ->
  ?domains:int ->
  workload:(unit -> Moard_inject.Workload.t) ->
  object_name:string ->
  unit ->
  Moard_core.Advf.report
(** [workload] is called {e once} in total — not once per worker — to
    build the shared context; the golden run therefore executes exactly
    once regardless of [domains]. *)

val analyze_targets :
  ?options:Moard_core.Model.options ->
  ?domains:int ->
  workload:(unit -> Moard_inject.Workload.t) ->
  unit ->
  Moard_core.Advf.report list
(** Parallel {!analyze} for every declared target object, one after the
    other (parallelism is within each object's site set), all sharing one
    golden run. *)
