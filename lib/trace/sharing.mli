(** Shared vs hart-private classification of memory cells.

    Built in one pass over a golden tape's hart-id lane: a cell's hart set
    collects every hart that loads it, stores it, or consumes a value
    whose provenance is the cell. A cell (and every consumption site over
    it) is {e shared} when at least two distinct harts touch it —
    corruption there can propagate across a hart boundary — and
    {e hart-private} otherwise. On a serial tape everything is private. *)

type t

val of_tape : Tape.t -> t

val harts : t -> int
(** [1 +] the highest hart id observed on the tape (so [1] for serial). *)

val mask : t -> int -> int
(** Bitmask of harts touching the cell at an address; [0] if untouched. *)

val shared : t -> addr:int -> bool
(** Whether at least two distinct harts touch the cell. *)

val cells : t -> int
(** Number of distinct cells touched at all. *)

val shared_cells : t -> int
(** Number of distinct cells touched by two or more harts. *)
