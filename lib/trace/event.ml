type read = {
  value : Moard_bits.Bitval.t;
  prov : int;
}

type write =
  | Wnone
  | Wreg of { frame : int; reg : Moard_ir.Instr.reg; value : Moard_bits.Bitval.t }
  | Wmem of { addr : int; value : Moard_bits.Bitval.t; ty : Moard_ir.Types.t }

type t = {
  idx : int;
  hart : int;
  frame : int;
  iid : Moard_ir.Iid.t;
  instr : Moard_ir.Instr.t;
  reads : read array;
  write : write;
  load_addr : int;
  callee_frame : int;
  ret_to_frame : int;
  ret_to_reg : int;
  taken : int;
}

let no_prov = -1

let pp ppf e =
  (* Serial traces stay rendered exactly as before the hart lane existed:
     the hart is shown only when a non-zero one executed the event. *)
  if e.hart > 0 then
    Format.fprintf ppf "@[<h>#%d h%d f%d %a | %a" e.idx e.hart e.frame
      Moard_ir.Iid.pp e.iid Moard_ir.Instr.pp e.instr
  else
    Format.fprintf ppf "@[<h>#%d f%d %a | %a" e.idx e.frame Moard_ir.Iid.pp
      e.iid Moard_ir.Instr.pp e.instr;
  Array.iteri
    (fun i r ->
      Format.fprintf ppf " s%d=%a" i Moard_bits.Bitval.pp r.value;
      if r.prov >= 0 then Format.fprintf ppf "@@%d" r.prov)
    e.reads;
  (match e.write with
  | Wnone -> ()
  | Wreg { frame; reg; value } ->
    Format.fprintf ppf " => f%d.r%d=%a" frame reg Moard_bits.Bitval.pp value
  | Wmem { addr; value; _ } ->
    Format.fprintf ppf " => [%d]=%a" addr Moard_bits.Bitval.pp value);
  Format.fprintf ppf "@]"
