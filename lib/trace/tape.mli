(** The dynamic-instruction trace, stored packed.

    Events are not kept as boxed {!Event.t} records: the tape is a chunked
    struct-of-arrays store — plain [int] arrays for the small per-event
    fields and [Bigarray] [int64] arrays for the raw operand and result
    images — plus an interning table for the static side of every event
    (instruction and identity), which is shared by all of its dynamic
    occurrences. A decoded {!Event.t} view is materialized on demand by
    {!get}, so analyses keep their event-level semantics while the storage
    stays compact and, once {!freeze}n, safely shareable across OCaml 5
    domains (no mutable boxed structure is reachable from a frozen tape).

    The tape also carries the index structures the propagation analysis
    needs (liveness: the last dynamic position at which each register or
    memory cell is still consumed). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is a hint only; the tape grows by chunks, never by
    copying. *)

val emit :
  t ->
  iid:Moard_ir.Iid.t ->
  instr:Moard_ir.Instr.t ->
  ?hart:int ->
  frame:int ->
  values:Moard_bits.Bitval.t array ->
  provs:int array ->
  write:Event.write ->
  ?load_addr:int ->
  ?callee_frame:int ->
  ?ret_to_frame:int ->
  ?ret_to_reg:int ->
  ?taken:int ->
  unit ->
  unit
(** Append one event from its parts, without building an {!Event.t}.
    [values] and [provs] must have one slot per operand of
    [Moard_ir.Instr.reads instr]. [hart] defaults to [0] (serial runs).
    This is the interpreter's fast path.
    @raise Invalid_argument on a frozen tape or a slot-count mismatch. *)

val append : t -> Event.t -> unit
(** Append a decoded event ({!emit} of its fields). The event's [idx] is
    ignored: an event's index is its position in the tape. *)

val length : t -> int

val get : t -> int -> Event.t
(** Decode the event at an index into a fresh boxed view.
    @raise Invalid_argument if out of range. *)

val freeze : t -> unit
(** Seal the tape: further {!emit}/{!append} raise [Invalid_argument], and
    the liveness indexes are built eagerly so that a frozen tape is
    read-only — and therefore safe to share across domains. Idempotent. *)

val is_frozen : t -> bool

(** {2 Field accessors}

    Decode single fields of the packed representation without
    materializing an event. *)

val iid_at : t -> int -> Moard_ir.Iid.t
val instr_at : t -> int -> Moard_ir.Instr.t
val frame_at : t -> int -> int

val hart_at : t -> int -> int
(** Hart that executed the event; [0] on serial runs. *)

val nreads_at : t -> int -> int
val read_value : t -> int -> int -> Moard_bits.Bitval.t
(** [read_value t i slot]: operand [slot]'s value image at event [i]. *)

val read_prov : t -> int -> int -> int
(** [read_prov t i slot]: operand [slot]'s provenance; [-1] if none. *)

val load_addr_at : t -> int -> int
(** Address read by a [Load] event; [-1] for any other opcode. *)

val write_addr_at : t -> int -> int
(** Address written by an event with a memory write; [-1] otherwise. *)

(** {2 Whole-tape iteration (decoded views)} *)

val iter : (Event.t -> unit) -> t -> unit
val iteri_from : int -> (int -> Event.t -> unit) -> t -> unit
(** [iteri_from i f t] applies [f] to events [i .. length-1] in order. *)

val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

(** {2 Cursors}

    A cursor is a window [\[lo, hi)] onto a tape with a mutable position:
    the streaming iteration primitive of the analyses. Navigation never
    allocates; events are decoded only where the consumer asks for one. *)

module Cursor : sig
  type tape := t
  type t

  val of_tape : tape -> t
  (** Whole-tape window, positioned at event 0. *)

  val window : tape -> lo:int -> hi:int -> t
  (** Window [\[lo, hi)], clamped to the tape, positioned at [lo]. *)

  val sub : t -> lo:int -> hi:int -> t
  (** Sub-cursor: the intersection of [\[lo, hi)] with the parent's
      window — how the propagation replay scopes its k-window. *)

  val tape : t -> tape
  val lo : t -> int
  val hi : t -> int
  val pos : t -> int
  val length : t -> int
  (** Window size, [hi - lo]. *)

  val seek : t -> int -> unit
  (** Move the position (clamped to the window). *)

  val has_next : t -> bool
  val next : t -> Event.t
  (** Decode the event at the position and advance.
      @raise Invalid_argument at the window's end. *)

  val peek : t -> Event.t
  (** {!next} without advancing. *)

  val iter_events : (int -> Event.t -> unit) -> t -> unit
  (** Apply to every event from the position to the window's end, with its
      tape index; leaves the cursor at the end. *)

  val fold_events : ('a -> int -> Event.t -> 'a) -> 'a -> t -> 'a
  (** Fold over every event from the position to the window's end. *)
end

(** {2 Memory accounting} *)

val packed_bytes : t -> int
(** Bytes held by the packed store (chunk arrays, read pool, interning
    table), i.e. the tape's resident footprint. *)

val boxed_bytes_estimate : t -> int
(** What the same trace would occupy as a list-of-boxed-records tape (one
    {!Event.t} per event, per-event [iid] and read/write records, boxed
    [int64] images) — the representation this store replaced. Used by the
    pipeline benchmark to report the packing gain. *)

(** {2 Liveness indexes}

    Built lazily on first query (eagerly by {!freeze}), in one forward
    pass over the tape. *)

val last_reg_read : t -> frame:int -> reg:int -> int
(** Largest event index at which register [reg] of invocation [frame] is
    consumed (read as an operand, directly or as a call argument);
    [-1] if never read. *)

val last_mem_read : t -> addr:int -> int
(** Largest event index at which the memory cell at [addr] is loaded;
    [-1] if never loaded. *)
