(* Which harts touch which memory cells, distilled from the golden tape.

   A cell's hart set collects every hart that loads it, stores it, or
   consumes a value whose provenance is the cell. Consumption sites over a
   cell touched by two or more harts are "shared-state" sites: a fault
   there can cross a hart boundary before the k-window closes. Sites over
   single-hart cells are "hart-private". On a serial tape every cell is
   private by construction. *)

type t = {
  masks : (int, int) Hashtbl.t; (* addr -> bitmask of touching harts *)
  harts : int;                  (* 1 + highest hart id seen *)
}

let of_tape tape =
  let masks = Hashtbl.create 4096 in
  let harts = ref 1 in
  let mark addr bit =
    if addr >= 0 then
      let prev = try Hashtbl.find masks addr with Not_found -> 0 in
      Hashtbl.replace masks addr (prev lor bit)
  in
  for i = 0 to Tape.length tape - 1 do
    let h = Tape.hart_at tape i in
    if h >= !harts then harts := h + 1;
    let bit = 1 lsl h in
    mark (Tape.load_addr_at tape i) bit;
    mark (Tape.write_addr_at tape i) bit;
    for slot = 0 to Tape.nreads_at tape i - 1 do
      mark (Tape.read_prov tape i slot) bit
    done
  done;
  { masks; harts = !harts }

let harts t = t.harts

let mask t addr = try Hashtbl.find t.masks addr with Not_found -> 0

let shared t ~addr =
  let m = mask t addr in
  m land (m - 1) <> 0

let cells t =
  Hashtbl.fold (fun _ _ n -> n + 1) t.masks 0

let shared_cells t =
  Hashtbl.fold (fun _ m n -> if m land (m - 1) <> 0 then n + 1 else n) t.masks 0
