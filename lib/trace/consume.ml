module I = Moard_ir.Instr

type kind =
  | Read of { slot : int }
  | Store_dest

type t = {
  event_idx : int;
  kind : kind;
  addr : int;
  elem : int;
  width : Moard_bits.Bitval.width;
}

let consuming_event (e : Event.t) =
  match e.instr with
  | I.Mov _ | I.Load _ | I.Br _ | I.Ret _ -> false
  | I.Call _ -> e.callee_frame < 0  (* intrinsics consume, user calls copy *)
  | I.Ibin _ | I.Fbin _ | I.Icmp _ | I.Fcmp _ | I.Cast _ | I.Store _
  | I.Gep _ | I.Select _ | I.Cbr _ -> true

let of_event obj (e : Event.t) =
  let reads =
    if not (consuming_event e) then []
    else
      Array.to_list
        (Array.mapi
           (fun slot (r : Event.read) ->
             match Data_object.elem_of_addr obj r.prov with
             | Some elem when r.prov >= 0 ->
               [
                 {
                   event_idx = e.idx;
                   kind = Read { slot };
                   addr = r.prov;
                   elem;
                   width = (r.value : Moard_bits.Bitval.t).width;
                 };
               ]
             | _ -> [])
           e.reads)
      |> List.concat
  in
  let dest =
    match e.instr with
    | I.Store (ty, _, _) -> (
      match e.write with
      | Event.Wmem { addr; _ } -> (
        match Data_object.elem_of_addr obj addr with
        | Some elem ->
          [
            {
              event_idx = e.idx;
              kind = Store_dest;
              addr;
              elem;
              width = Moard_ir.Types.width ty;
            };
          ]
        | None -> [])
      | _ -> [])
    | _ -> []
  in
  reads @ dest

(* Pre-screen on the packed fields: an event can only yield a site if some
   operand's provenance lies inside the object or it writes memory inside
   the object. Most events fail this and are never decoded. *)
let may_have_sites tape i obj =
  let n = Tape.nreads_at tape i in
  let hit = ref (Data_object.contains obj (Tape.write_addr_at tape i)) in
  let slot = ref 0 in
  while (not !hit) && !slot < n do
    let p = Tape.read_prov tape i !slot in
    if p >= 0 && Data_object.contains obj p then hit := true;
    incr slot
  done;
  !hit

let iter_sites ?(segment = fun _ -> true) cursor obj f =
  let tape = Tape.Cursor.tape cursor in
  let next = ref 0 in
  while Tape.Cursor.has_next cursor do
    let i = Tape.Cursor.pos cursor in
    Tape.Cursor.seek cursor (i + 1);
    if
      segment (Tape.iid_at tape i).Moard_ir.Iid.fn
      && may_have_sites tape i obj
    then
      List.iter
        (fun c ->
          let idx = !next in
          incr next;
          f idx c)
        (of_event obj (Tape.get tape i))
  done

let of_tape ?segment tape obj =
  let acc = ref [] in
  iter_sites ?segment (Tape.Cursor.of_tape tape) obj (fun _ c ->
      acc := c :: !acc);
  List.rev !acc

let patterns t = Moard_bits.Pattern.singles t.width
