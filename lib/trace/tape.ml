module I = Moard_ir.Instr
module T = Moard_ir.Types
module Iid = Moard_ir.Iid
module Bitval = Moard_bits.Bitval

(* Chunk geometry. Chunks are never copied once allocated: growth appends a
   chunk, so a frozen tape's storage is position-stable and shareable. *)
let eshift = 10
let esize = 1 lsl eshift
let emask = esize - 1
let rshift = 11
let rsize = 1 lsl rshift
let rmask = rsize - 1

type i64arr = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let i64arr n : i64arr = Bigarray.Array1.create Bigarray.Int64 Bigarray.c_layout n

(* The static side of an event, interned once per instruction site. *)
type static = { s_iid : Iid.t; s_instr : I.t; s_nreads : int }

(* Per-event packed fields. [wmeta] packs the write shape:
   bits 0-1 kind (0 none, 1 reg, 2 mem), bits 2-3 width code of the written
   image, bits 4-6 type code (mem), bits 7+ destination register (reg).
   [wa] is the written frame (reg) or address (mem). [aux]/[aux2] hold the
   opcode-dependent extras: Load's address, Call's callee frame, Br/Cbr's
   taken label, Ret's caller frame ([aux]) and destination register
   ([aux2]) — mutually exclusive by opcode, so one slot suffices. *)
type echunk = {
  c_static : int array;
  c_hart : int array;
  c_frame : int array;
  c_roff : int array;
  c_wmeta : int array;
  c_wa : int array;
  c_aux : int array;
  c_aux2 : int array;
  c_wbits : i64arr;
}

type live = {
  reg_last : (int * int, int) Hashtbl.t; (* (frame, reg) -> last read idx *)
  mem_last : (int, int) Hashtbl.t;       (* addr -> last load idx *)
}

type t = {
  mutable echunks : echunk array;
  mutable len : int;
  mutable rbits : i64arr array;  (* read pool: operand images *)
  mutable rmeta : int array array; (* read pool: (prov+1) lsl 2 | width *)
  mutable rlen : int;
  mutable statics : static array;
  mutable nstatics : int;
  sindex : int Iid.Tbl.t;
  mutable frozen : bool;
  mutable live : live option;
}

let wcode = function Bitval.W1 -> 0 | Bitval.W32 -> 1 | Bitval.W64 -> 2
let wdecode = function 0 -> Bitval.W1 | 1 -> Bitval.W32 | _ -> Bitval.W64

let tycode = function
  | T.I1 -> 0 | T.I32 -> 1 | T.I64 -> 2 | T.F64 -> 3 | T.Ptr -> 4

let tydecode = function
  | 0 -> T.I1 | 1 -> T.I32 | 2 -> T.I64 | 3 -> T.F64 | _ -> T.Ptr

let new_echunk () =
  {
    c_static = Array.make esize 0;
    c_hart = Array.make esize 0;
    c_frame = Array.make esize 0;
    c_roff = Array.make esize 0;
    c_wmeta = Array.make esize 0;
    c_wa = Array.make esize (-1);
    c_aux = Array.make esize (-1);
    c_aux2 = Array.make esize (-1);
    c_wbits = i64arr esize;
  }

let create ?(capacity = esize) () =
  let nchunks = max 1 ((capacity + esize - 1) / esize) in
  {
    echunks = Array.init nchunks (fun _ -> new_echunk ());
    len = 0;
    rbits = [| i64arr rsize |];
    rmeta = [| Array.make rsize 0 |];
    rlen = 0;
    statics = [||];
    nstatics = 0;
    sindex = Iid.Tbl.create 256;
    frozen = false;
    live = None;
  }

let length t = t.len
let is_frozen t = t.frozen

let intern t iid instr nslots =
  match Iid.Tbl.find_opt t.sindex iid with
  | Some s -> s
  | None ->
    let s = t.nstatics in
    let entry = { s_iid = iid; s_instr = instr; s_nreads = nslots } in
    if s = Array.length t.statics then
      t.statics <- Array.append t.statics (Array.make (max 64 (s + 1)) entry);
    t.statics.(s) <- entry;
    t.nstatics <- s + 1;
    Iid.Tbl.add t.sindex iid s;
    s

let push_read t (v : Bitval.t) prov =
  let i = t.rlen in
  if i lsr rshift >= Array.length t.rbits then begin
    t.rbits <- Array.append t.rbits [| i64arr rsize |];
    t.rmeta <- Array.append t.rmeta [| Array.make rsize 0 |]
  end;
  Bigarray.Array1.set t.rbits.(i lsr rshift) (i land rmask) v.Bitval.bits;
  t.rmeta.(i lsr rshift).(i land rmask) <- ((prov + 1) lsl 2) lor wcode v.Bitval.width;
  t.rlen <- i + 1

let emit t ~iid ~instr ?(hart = 0) ~frame ~values ~provs ~write
    ?(load_addr = -1) ?(callee_frame = -1) ?(ret_to_frame = -1)
    ?(ret_to_reg = -1) ?(taken = -1) () =
  if t.frozen then invalid_arg "Tape.emit: tape is frozen";
  let nslots = Array.length values in
  let s = intern t iid instr nslots in
  if t.statics.(s).s_nreads <> nslots || Array.length provs <> nslots then
    invalid_arg "Tape.emit: operand slot count mismatch";
  let i = t.len in
  if i lsr eshift >= Array.length t.echunks then
    t.echunks <- Array.append t.echunks [| new_echunk () |];
  let c = t.echunks.(i lsr eshift) and o = i land emask in
  c.c_static.(o) <- s;
  c.c_hart.(o) <- hart;
  c.c_frame.(o) <- frame;
  c.c_roff.(o) <- t.rlen;
  for slot = 0 to nslots - 1 do
    push_read t values.(slot) provs.(slot)
  done;
  (match write with
  | Event.Wnone ->
    c.c_wmeta.(o) <- 0;
    c.c_wa.(o) <- -1;
    Bigarray.Array1.set c.c_wbits o 0L
  | Event.Wreg { frame; reg; value } ->
    c.c_wmeta.(o) <- 1 lor (wcode value.Bitval.width lsl 2) lor (reg lsl 7);
    c.c_wa.(o) <- frame;
    Bigarray.Array1.set c.c_wbits o value.Bitval.bits
  | Event.Wmem { addr; value; ty } ->
    c.c_wmeta.(o) <-
      2 lor (wcode value.Bitval.width lsl 2) lor (tycode ty lsl 4);
    c.c_wa.(o) <- addr;
    Bigarray.Array1.set c.c_wbits o value.Bitval.bits);
  (* The extras are mutually exclusive by opcode (Ret uses both slots). *)
  let aux =
    if load_addr >= 0 then load_addr
    else if callee_frame >= 0 then callee_frame
    else if taken >= 0 then taken
    else ret_to_frame
  in
  c.c_aux.(o) <- aux;
  c.c_aux2.(o) <- ret_to_reg;
  t.len <- i + 1;
  t.live <- None

let append t (e : Event.t) =
  emit t ~iid:e.Event.iid ~instr:e.Event.instr ~hart:e.Event.hart
    ~frame:e.Event.frame
    ~values:(Array.map (fun (r : Event.read) -> r.value) e.Event.reads)
    ~provs:(Array.map (fun (r : Event.read) -> r.prov) e.Event.reads)
    ~write:e.Event.write ~load_addr:e.Event.load_addr
    ~callee_frame:e.Event.callee_frame ~ret_to_frame:e.Event.ret_to_frame
    ~ret_to_reg:e.Event.ret_to_reg ~taken:e.Event.taken ()

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

let check t i name = if i < 0 || i >= t.len then invalid_arg name

let static_at t i = t.statics.(t.echunks.(i lsr eshift).c_static.(i land emask))

let iid_at t i =
  check t i "Tape.iid_at";
  (static_at t i).s_iid

let instr_at t i =
  check t i "Tape.instr_at";
  (static_at t i).s_instr

let frame_at t i =
  check t i "Tape.frame_at";
  t.echunks.(i lsr eshift).c_frame.(i land emask)

let hart_at t i =
  check t i "Tape.hart_at";
  t.echunks.(i lsr eshift).c_hart.(i land emask)

let nreads_at t i =
  check t i "Tape.nreads_at";
  (static_at t i).s_nreads

let read_at t i slot name =
  check t i name;
  let s = static_at t i in
  if slot < 0 || slot >= s.s_nreads then invalid_arg name;
  t.echunks.(i lsr eshift).c_roff.(i land emask) + slot

let read_value t i slot =
  let r = read_at t i slot "Tape.read_value" in
  let m = t.rmeta.(r lsr rshift).(r land rmask) in
  Bitval.make (wdecode (m land 3))
    (Bigarray.Array1.get t.rbits.(r lsr rshift) (r land rmask))

let read_prov t i slot =
  let r = read_at t i slot "Tape.read_prov" in
  (t.rmeta.(r lsr rshift).(r land rmask) lsr 2) - 1

let is_load = function I.Load _ -> true | _ -> false

let load_addr_at t i =
  check t i "Tape.load_addr_at";
  let c = t.echunks.(i lsr eshift) and o = i land emask in
  if is_load t.statics.(c.c_static.(o)).s_instr then c.c_aux.(o) else -1

let write_addr_at t i =
  check t i "Tape.write_addr_at";
  let c = t.echunks.(i lsr eshift) and o = i land emask in
  if c.c_wmeta.(o) land 3 = 2 then c.c_wa.(o) else -1

let get t i =
  check t i "Tape.get";
  let c = t.echunks.(i lsr eshift) and o = i land emask in
  let s = t.statics.(c.c_static.(o)) in
  let roff = c.c_roff.(o) in
  let reads =
    Array.init s.s_nreads (fun slot ->
        let r = roff + slot in
        let m = t.rmeta.(r lsr rshift).(r land rmask) in
        {
          Event.value =
            Bitval.make (wdecode (m land 3))
              (Bigarray.Array1.get t.rbits.(r lsr rshift) (r land rmask));
          prov = (m lsr 2) - 1;
        })
  in
  let wmeta = c.c_wmeta.(o) in
  let write =
    match wmeta land 3 with
    | 0 -> Event.Wnone
    | 1 ->
      Event.Wreg
        {
          frame = c.c_wa.(o);
          reg = wmeta lsr 7;
          value =
            Bitval.make (wdecode ((wmeta lsr 2) land 3))
              (Bigarray.Array1.get c.c_wbits o);
        }
    | _ ->
      Event.Wmem
        {
          addr = c.c_wa.(o);
          value =
            Bitval.make (wdecode ((wmeta lsr 2) land 3))
              (Bigarray.Array1.get c.c_wbits o);
          ty = tydecode ((wmeta lsr 4) land 7);
        }
  in
  let aux = c.c_aux.(o) and aux2 = c.c_aux2.(o) in
  let load_addr, callee_frame, ret_to_frame, ret_to_reg, taken =
    match s.s_instr with
    | I.Load _ -> (aux, -1, -1, -1, -1)
    | I.Call _ -> (-1, aux, -1, -1, -1)
    | I.Br _ | I.Cbr _ -> (-1, -1, -1, -1, aux)
    | I.Ret _ -> (-1, -1, aux, aux2, -1)
    | _ -> (-1, -1, -1, -1, -1)
  in
  {
    Event.idx = i;
    hart = c.c_hart.(o);
    frame = c.c_frame.(o);
    iid = s.s_iid;
    instr = s.s_instr;
    reads;
    write;
    load_addr;
    callee_frame;
    ret_to_frame;
    ret_to_reg;
    taken;
  }

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let iteri_from start f t =
  for i = max 0 start to t.len - 1 do
    f i (get t i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (get t i)
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)

let build_live t =
  let reg_last = Hashtbl.create 1024 in
  let mem_last = Hashtbl.create 1024 in
  (* One forward pass suffices: later updates overwrite earlier ones. *)
  for i = 0 to t.len - 1 do
    let c = t.echunks.(i lsr eshift) and o = i land emask in
    let s = t.statics.(c.c_static.(o)) in
    let frame = c.c_frame.(o) in
    List.iter
      (fun op ->
        match (op : I.operand) with
        | I.Reg r -> Hashtbl.replace reg_last (frame, r) i
        | I.Imm _ | I.Glob _ -> ())
      (I.reads s.s_instr);
    if is_load s.s_instr && c.c_aux.(o) >= 0 then
      Hashtbl.replace mem_last c.c_aux.(o) i
  done;
  { reg_last; mem_last }

let live t =
  match t.live with
  | Some l -> l
  | None ->
    let l = build_live t in
    t.live <- Some l;
    l

let freeze t =
  if not t.frozen then begin
    t.frozen <- true;
    ignore (live t)
  end

let last_reg_read t ~frame ~reg =
  match Hashtbl.find_opt (live t).reg_last (frame, reg) with
  | Some i -> i
  | None -> -1

let last_mem_read t ~addr =
  match Hashtbl.find_opt (live t).mem_last addr with
  | Some i -> i
  | None -> -1

(* ------------------------------------------------------------------ *)
(* Cursors                                                             *)

module Cursor = struct
  type tape = t

  type nonrec t = { tape : tape; lo : int; hi : int; mutable pos : int }

  let window tape ~lo ~hi =
    let lo = max 0 (min lo tape.len) in
    let hi = max lo (min hi tape.len) in
    { tape; lo; hi; pos = lo }

  let of_tape tape = window tape ~lo:0 ~hi:tape.len
  let sub c ~lo ~hi = window c.tape ~lo:(max c.lo lo) ~hi:(min c.hi hi)
  let tape c = c.tape
  let lo c = c.lo
  let hi c = c.hi
  let pos c = c.pos
  let length c = c.hi - c.lo
  let seek c i = c.pos <- max c.lo (min i c.hi)
  let has_next c = c.pos < c.hi

  let next c =
    if c.pos >= c.hi then invalid_arg "Tape.Cursor.next";
    let e = get c.tape c.pos in
    c.pos <- c.pos + 1;
    e

  let peek c =
    if c.pos >= c.hi then invalid_arg "Tape.Cursor.peek";
    get c.tape c.pos

  let iter_events f c =
    while c.pos < c.hi do
      let i = c.pos in
      c.pos <- i + 1;
      f i (get c.tape i)
    done

  let fold_events f init c =
    let acc = ref init in
    while c.pos < c.hi do
      let i = c.pos in
      c.pos <- i + 1;
      acc := f !acc i (get c.tape i)
    done;
    !acc
end

(* ------------------------------------------------------------------ *)
(* Memory accounting                                                   *)

let word = 8

let packed_bytes t =
  let echunk_bytes = (8 * esize * word) + (esize * word) in
  let rchunk_bytes = 2 * rsize * word in
  (Array.length t.echunks * echunk_bytes)
  + (Array.length t.rbits * rchunk_bytes)
  + (Array.length t.statics * 5 * word)

(* The former representation: a growable [Event.t array]. Per event: the
   record (12 words incl. header), a fresh [Iid.t] (4), the reads array
   (1 + n slots) with one read record (3) and one boxed Bitval (record 3 +
   boxed int64 3) per slot, and the write constructor (4 words + a boxed
   Bitval) when present. *)
let boxed_bytes_estimate t =
  let total = ref 0 in
  for i = 0 to t.len - 1 do
    let c = t.echunks.(i lsr eshift) and o = i land emask in
    let n = t.statics.(c.c_static.(o)).s_nreads in
    let wwords = if c.c_wmeta.(o) land 3 = 0 then 0 else 4 + 6 in
    total := !total + 12 + 4 + (1 + n) + (n * (3 + 6)) + wwords
  done;
  (* the event-pointer array itself *)
  (!total + t.len + 1) * word
