(** Enumeration of consumption sites of a data object in a trace.

    A consumption site is where the model asks its question ("if this
    element held an error here, would the outcome stay correct?") and is
    also a valid fault-injection site of the paper's §V-B: a bit of an
    instruction operand holding a value of the target data object.

    Rules (matching how provenance flows in the VM):
    - an operation that reads a register operand whose provenance lies in
      the object consumes that element — except pure copies ([Mov], calls
      to user functions, [Ret]) and [Load]s, which only move the value and
      forward the provenance to the eventual consumer;
    - a [Store] whose destination address lies in the object consumes the
      element it overwrites (the paper's value-overwriting site);
    - events outside the workload's code segment are not consumption sites
      (the paper evaluates one routine per benchmark), although error
      propagation is still tracked through them. *)

type kind =
  | Read of { slot : int }  (** operand consumption *)
  | Store_dest              (** element overwritten by a store *)

type t = {
  event_idx : int;
  kind : kind;
  addr : int;   (** address of the consumed element *)
  elem : int;   (** element index within the object *)
  width : Moard_bits.Bitval.width;  (** width of the consumed image *)
}

val consuming_event : Event.t -> bool
(** Whether the event's opcode consumes (rather than merely moves) its
    register operands: false for [Mov], [Load], [Br], [Ret], and calls to
    user functions. *)

val of_event : Data_object.t -> Event.t -> t list
(** Consumption sites of one event, in slot order, store-destination last. *)

val iter_sites :
  ?segment:(string -> bool) ->
  Tape.Cursor.t -> Data_object.t -> (int -> t -> unit) -> unit
(** [iter_sites cursor obj f] streams the consumption sites of [obj] in
    the cursor's window, in trace order, calling [f i site] with [i] the
    site's index in enumeration order (the partitioning key of the
    parallel driver). Events are pre-screened on the packed tape fields,
    so only events that can contribute a site are decoded; no site list is
    materialized. [segment] filters by function name (default: accept
    all). *)

val of_tape :
  ?segment:(string -> bool) -> Tape.t -> Data_object.t -> t list
(** All consumption sites of the object in trace order, as a list
    ({!iter_sites} over a whole-tape cursor). [segment] filters by
    function name (default: accept all). *)

val patterns : t -> Moard_bits.Pattern.t list
(** The single-bit error patterns applicable at this site (one per bit of
    the consumed image — the paper's default error-pattern space). *)
