(** Dynamic trace events.

    One event per executed IR instruction — the "operation" of the paper.
    Events carry everything the model needs without re-executing:
    the consumed operand values, the provenance of register operands
    (which memory cell a pure register copy came from — the paper's
    "tracking register allocation" that associates register values with
    data objects), the produced value, and inter-frame dataflow for calls
    and returns so error propagation can be replayed across functions. *)

type read = {
  value : Moard_bits.Bitval.t;  (** operand value as consumed *)
  prov : int;
      (** provenance: memory address whose cell this value is a pure copy
          of (set by a Load, cleared when the register is redefined by a
          computation); [-1] when the value is not a direct element copy *)
}

type write =
  | Wnone
  | Wreg of { frame : int; reg : Moard_ir.Instr.reg; value : Moard_bits.Bitval.t }
  | Wmem of { addr : int; value : Moard_bits.Bitval.t; ty : Moard_ir.Types.t }

type t = {
  idx : int;            (** dynamic instruction index, 0-based *)
  hart : int;           (** hart that executed the event; 0 on serial runs *)
  frame : int;          (** function invocation id owning the registers *)
  iid : Moard_ir.Iid.t; (** static identity, for error equivalence *)
  instr : Moard_ir.Instr.t;
  reads : read array;   (** one per slot of [Instr.reads instr] *)
  write : write;
  load_addr : int;      (** address read by a Load; [-1] otherwise *)
  callee_frame : int;
      (** for a Call to a user function: frame id whose param registers
          received the arguments; [-1] otherwise *)
  ret_to_frame : int;   (** for Ret: caller frame id; [-1] otherwise *)
  ret_to_reg : int;     (** for Ret: caller destination register; [-1] if none *)
  taken : int;          (** for Cbr: label actually taken; [-1] otherwise *)
}

val no_prov : int
(** The [-1] sentinel. *)

val pp : Format.formatter -> t -> unit
