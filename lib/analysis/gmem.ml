(** The golden-memory timeline: what the golden run's memory holds at any
    address at any point of the tape, reconstructed without re-execution.

    Built in one pass over the frozen tape: the pristine initial image
    (globals laid out, nothing executed) plus, per store address, the
    ordered list of stores the golden run performed there. A query
    "what does a load of type [ty] at [addr] observe just before event
    [pos]?" then resolves to either the latest overlapping golden store
    before [pos] (exact-size match required — mixed-byte views are
    refused, the caller falls back to ground truth) or, when no store
    ever touched the range, the pristine image.

    This is what lets the vectorized replay keep tracking a lane whose
    *address* register is corrupted: the redirected load's value is a
    golden-memory question, and a wild address is an exact
    [Out_of_bounds] trap — both answerable here in O(log stores), where
    previously every such lane fell back to a real injection. *)

module Bitval = Moard_bits.Bitval
module Tape = Moard_trace.Tape
module Types = Moard_ir.Types
module Memory = Moard_vm.Memory
module I = Moard_ir.Instr

(* All golden stores to one exact address, in tape order. *)
type site = {
  s_addr : int;
  s_pos : int array;          (* ascending event indices *)
  s_ty : Types.t array;       (* per store *)
  s_val : Bitval.t array;
}

type t = {
  image : Memory.t;           (* pristine; read-only *)
  sites : (int, site) Hashtbl.t;
  chunks : (int, int list) Hashtbl.t;
      (* 8-byte chunk -> distinct store addresses touching it *)
}

let chunk a = a asr 3

let build ~tape ~image =
  let acc : (int, (int * Types.t * Bitval.t) list) Hashtbl.t =
    Hashtbl.create 1024
  in
  let len = Tape.length tape in
  for i = 0 to len - 1 do
    let wa = Tape.write_addr_at tape i in
    if wa >= 0 then
      match Tape.instr_at tape i with
      | I.Store (ty, _, _) ->
        let v = Tape.read_value tape i 0 in
        let prev = Option.value ~default:[] (Hashtbl.find_opt acc wa) in
        Hashtbl.replace acc wa ((i, ty, v) :: prev)
      | _ -> ()
  done;
  let sites = Hashtbl.create (Hashtbl.length acc) in
  let chunks = Hashtbl.create (Hashtbl.length acc) in
  Hashtbl.iter
    (fun addr entries ->
      let entries = Array.of_list (List.rev entries) in
      let site =
        {
          s_addr = addr;
          s_pos = Array.map (fun (p, _, _) -> p) entries;
          s_ty = Array.map (fun (_, ty, _) -> ty) entries;
          s_val = Array.map (fun (_, _, v) -> v) entries;
        }
      in
      Hashtbl.replace sites addr site;
      let max_size =
        Array.fold_left (fun m ty -> max m (Types.size ty)) 1 site.s_ty
      in
      for c = chunk addr to chunk (addr + max_size - 1) do
        let prev = Option.value ~default:[] (Hashtbl.find_opt chunks c) in
        if not (List.mem addr prev) then Hashtbl.replace chunks c (addr :: prev)
      done)
    acc;
  { image; sites; chunks }

let probe t ty addr =
  match Memory.load t.image ty addr with
  | Ok _ -> Ok ()
  | Error trap -> Error trap

(* Index of the latest entry of [site] strictly before [pos]; -1 if none. *)
let latest_before site pos =
  let lo = ref 0 and hi = ref (Array.length site.s_pos) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if site.s_pos.(mid) < pos then lo := mid + 1 else hi := mid
  done;
  !lo - 1

let overlaps a1 s1 a2 s2 = a1 < a2 + s2 && a2 < a1 + s1

let value_at t ~pos ty addr =
  let sz = Types.size ty in
  (* Candidate store sites: every distinct store address whose bytes can
     touch [addr, addr+sz). *)
  let best = ref None in
  for c = chunk addr to chunk (addr + sz - 1) do
    List.iter
      (fun saddr ->
        match Hashtbl.find_opt t.sites saddr with
        | None -> ()
        | Some site ->
          (* Walk back from the latest entry before [pos] to the newest
             one that actually overlaps the queried range (entries at one
             address may differ in size). *)
          let k = ref (latest_before site pos) in
          let found = ref false in
          while (not !found) && !k >= 0 do
            let ssz = Types.size site.s_ty.(!k) in
            if overlaps saddr ssz addr sz then found := true else decr k
          done;
          if !found then begin
            let p = site.s_pos.(!k) in
            match !best with
            | Some (bp, _, _, _) when bp >= p -> ()
            | _ -> best := Some (p, saddr, site.s_ty.(!k), site.s_val.(!k))
          end)
      (Option.value ~default:[] (Hashtbl.find_opt t.chunks c))
  done;
  match !best with
  | None -> (
    (* never stored: the pristine image is the golden content *)
    match Memory.load t.image ty addr with
    | Ok v -> Some v
    | Error _ -> None)
  | Some (_, saddr, sty, sval) ->
    if saddr = addr && Types.size sty = sz then
      (* exact-size latest store: its operand image, reinterpreted the way
         Memory.store-then-load at equal size would *)
      Some (Bitval.make (Types.width ty) sval.Bitval.bits)
    else None
