(** Error-propagation analysis (paper §III-D).

    Starting from the corrupted output of the consuming operation, replay
    the next [k] operations of the golden trace, substituting corrupted
    values wherever contaminated registers or memory cells are consumed,
    and tracking where contamination is created, masked or overwritten.

    The replay is exact as long as control flow does not diverge: the
    golden tape records the values every operation actually consumed, so
    recomputation only needs the contaminated subset. A corrupted branch
    condition, a load/store through a corrupted address, a contamination
    set larger than [shadow_cap], or contamination surviving the window are
    all handed to the deterministic fault injector (the paper's
    "unresolved analyses"). *)

type init =
  | From_reg of { frame : int; reg : int; value : Moard_bits.Bitval.t }
  | From_mem of { addr : int; value : Moard_bits.Bitval.t; ty : Moard_ir.Types.t }

type unresolved_reason =
  | Control_divergence   (** a contaminated branch condition flipped *)
  | Wild_access          (** contaminated address fed a load or store *)
  | Window_exhausted     (** live contamination survived the k-window *)
  | Explosion            (** contamination exceeded [shadow_cap] values *)
  | Output_contaminated  (** execution ended with a corrupted output cell *)

type outcome =
  | Masked of Verdict.kind
      (** every contaminated value was masked or cleanly overwritten within
          the window; the kind is that of the final masking event *)
  | Crash_certain of Moard_vm.Trap.t
  | Unresolved of unresolved_reason

val replay :
  tape:Moard_trace.Tape.t ->
  k:int ->
  shadow_cap:int ->
  outputs:Moard_trace.Data_object.t list ->
  start:int ->
  init:init ->
  outcome

val reason_name : unresolved_reason -> string
