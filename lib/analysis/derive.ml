module I = Moard_ir.Instr
module Event = Moard_trace.Event
module Tape = Moard_trace.Tape

let scan_window = 128

(* Most recent event before [from] defining register [reg] of [frame]. *)
let defining_event tape ~from ~frame ~reg =
  let rec go idx remaining =
    if idx < 0 || remaining = 0 then None
    else
      let e = Tape.get tape idx in
      match e.Event.write with
      | Event.Wreg w when w.frame = frame && w.reg = reg -> Some e
      | _ ->
        (* A call event "defines" the callee's parameter registers. *)
        if e.Event.callee_frame = frame && reg < Array.length e.Event.reads
        then Some e
        else go (idx - 1) (remaining - 1)
  in
  go (from - 1) scan_window

(* Slot through which [e] consumes the cell at [addr], if any. *)
let consuming_slot (e : Event.t) ~addr =
  let found = ref None in
  Array.iteri
    (fun slot (r : Event.read) ->
      if !found = None && r.prov = addr then found := Some slot)
    e.Event.reads;
  !found

let store_rmw_source ~tape (e : Event.t) =
  match (e.Event.instr, e.Event.write) with
  | I.Store _, Event.Wmem { addr; _ } -> (
    match List.hd (I.reads e.Event.instr) with
    | I.Imm _ | I.Glob _ -> None
    | I.Reg reg ->
      let rec through_copies frame reg depth =
        if depth = 0 then None
        else
          match defining_event tape ~from:e.Event.idx ~frame ~reg with
          | None -> None
          | Some def -> (
            match def.Event.instr with
            | I.Mov (_, I.Reg src) ->
              through_copies def.Event.frame src (depth - 1)
            | I.Call (_, _, _) when def.Event.callee_frame = frame -> (
              (* parameter copy: follow the caller's argument *)
              match List.nth_opt (I.reads def.Event.instr) reg with
              | Some (I.Reg src) ->
                through_copies def.Event.frame src (depth - 1)
              | _ -> None)
            | I.Ret (Some (I.Reg src)) ->
              through_copies def.Event.frame src (depth - 1)
            | I.Load _ ->
              (* A pure copy of the cell itself: the store re-writes what
                 it read. Attribute to the load's eventual consumer — the
                 store's own value slot. *)
              if def.Event.load_addr = addr then Some (e.Event.idx, 0)
              else None
            | _ ->
              (* the defining computation: does it directly consume the
                 destination element? *)
              Option.map
                (fun slot -> (def.Event.idx, slot))
                (consuming_slot def ~addr))
      in
      through_copies e.Event.frame reg 8)
  | _ -> None
