(** Operation-level error-masking analysis (paper §III-C).

    Given a consumption site of the target data object and an error
    pattern, decide — from operation semantics alone, without running the
    application — whether the error is masked by the consuming operation,
    and if not, what corrupted value it hands to error propagation.

    Two entry points answer the same question: {!analyze} for one pattern
    (the scalar oracle), and {!analyze_all} for the whole single-bit-flip
    pattern set of a site at once, using the closed-form mask algebra of
    {!Moard_bits.Patternset} where an opcode admits one and falling back
    to the scalar classifier bit by bit where it does not — so the batched
    answer is the scalar answer by construction on the fallback opcodes
    and by the algebra (checked by the differential test suite) on the
    rest. *)

type t =
  | Masked of Verdict.kind
      (** the operation's result is unchanged by the corruption *)
  | Changed of {
      out : changed_out;
      overshadow : bool;
          (** the corrupted operand of an add/sub stays smaller in magnitude
              than the other operand: any eventual masking is attributed to
              operation-level value overshadowing (paper §III-C) *)
    }
  | Crash_certain of Moard_vm.Trap.t
      (** the corrupted operand makes the operation itself trap *)
  | Divergent
      (** the corruption flips the consuming branch: needs fault injection *)

and changed_out =
  | To_reg of { frame : int; reg : int; value : Moard_bits.Bitval.t }
  | To_mem of { addr : int; value : Moard_bits.Bitval.t; ty : Moard_ir.Types.t }

val analyze :
  Moard_trace.Event.t -> Moard_trace.Consume.kind -> Moard_bits.Pattern.t -> t
(** Read-modify-write store destinations must be delegated by the caller
    to the statement's deriving read via {!Derive.store_rmw_source} before
    calling this (the model does).
    @raise Invalid_argument if the site is not a consumption of the event
    (e.g. a slot of a pure copy). *)

(** The verdict of every single-bit-flip pattern of one site, as disjoint
    pattern sets partitioning [Patternset.full ~width]. All masked bits of
    a site share one kind: the kind is a function of (opcode, slot) — see
    {!Reexec.exact_mask_kind} — and the only other masked source (an
    unchanged branch verdict) is [Logic_cmp] on exactly the opcode whose
    exact kind is [Logic_cmp]. *)
type verdicts = {
  width : Moard_bits.Bitval.width;
  masked : Moard_bits.Patternset.t;
  mask_kind : Verdict.kind;  (** kind shared by every masked bit *)
  crash : Moard_bits.Patternset.t;
  trap : Moard_vm.Trap.t option;
      (** the trap raised by the crash set (at most one distinct trap can
          arise from single-bit corruption of one operand) *)
  divergent : Moard_bits.Patternset.t;
  changed : Moard_bits.Patternset.t;
  overshadow : Moard_bits.Patternset.t;  (** subset of [changed] *)
}

val analyze_all : Moard_trace.Event.t -> Moard_trace.Consume.kind -> verdicts
(** Classify all [Bitval.bits_in width] single-bit patterns of the site in
    one call. Agrees with {!analyze} on {!Moard_bits.Pattern.Single}[ i]
    for every [i]. Same delegation and exception contract as {!analyze}. *)

val changed_out_at :
  Moard_trace.Event.t -> Moard_trace.Consume.kind -> bit:int ->
  changed_out * bool
(** The [Changed] payload (output and overshadow flag) of one bit of the
    changed set — what seeds the propagation replay.
    @raise Invalid_argument if the bit is not in the changed set. *)
