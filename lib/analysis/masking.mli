(** Operation-level error-masking analysis (paper §III-C).

    Given a consumption site of the target data object and an error
    pattern, decide — from operation semantics alone, without running the
    application — whether the error is masked by the consuming operation,
    and if not, what corrupted value it hands to error propagation.

    Two entry points answer the same question: {!analyze} for one pattern
    (the scalar oracle), and {!analyze_all} for a whole error-model
    pattern set of a site at once, using the closed-form mask algebra of
    {!Moard_bits.Patternset} where an opcode admits one and a per-lane
    direct kernel — the opcode's own {!Moard_vm.Semantics}, one call per
    lane, no generic re-execution — where it does not. Every consuming
    opcode has one of the two, so the per-pattern scalar walk survives
    solely as the differential oracle; {!scan_executions} counts the
    (never expected) last-resort falls into it. *)

type t =
  | Masked of Verdict.kind
      (** the operation's result is unchanged by the corruption *)
  | Changed of {
      out : changed_out;
      overshadow : bool;
          (** the corrupted operand of an add/sub stays smaller in magnitude
              than the other operand: any eventual masking is attributed to
              operation-level value overshadowing (paper §III-C) *)
    }
  | Crash_certain of Moard_vm.Trap.t
      (** the corrupted operand makes the operation itself trap *)
  | Divergent
      (** the corruption flips the consuming branch: needs fault injection *)

and changed_out =
  | To_reg of { frame : int; reg : int; value : Moard_bits.Bitval.t }
  | To_mem of { addr : int; value : Moard_bits.Bitval.t; ty : Moard_ir.Types.t }

val analyze :
  Moard_trace.Event.t -> Moard_trace.Consume.kind -> Moard_bits.Pattern.t -> t
(** Read-modify-write store destinations must be delegated by the caller
    to the statement's deriving read via {!Derive.store_rmw_source} before
    calling this (the model does).
    @raise Invalid_argument if the site is not a consumption of the event
    (e.g. a slot of a pure copy). *)

(** The verdict of every pattern of one site under an error model, as
    disjoint lane sets partitioning [Patternset.full_n ~n:lanes] — set
    bit [i] stands for lane [i], i.e. pattern
    [Errmodel.pattern_at model width i]; under the single-bit model that
    is exactly "flip bit [i]". All masked lanes of a site share one kind:
    the kind is a function of (opcode, slot) — see
    {!Reexec.exact_mask_kind} — and the only other masked source (an
    unchanged branch verdict) is [Logic_cmp] on exactly the opcode whose
    exact kind is [Logic_cmp]. *)
type verdicts = {
  width : Moard_bits.Bitval.width;
  model : Moard_bits.Errmodel.t;
  lanes : int;  (** [Errmodel.lanes model width] *)
  masked : Moard_bits.Patternset.t;
  mask_kind : Verdict.kind;  (** kind shared by every masked lane *)
  crash : Moard_bits.Patternset.t;
  trap : Moard_vm.Trap.t option;
      (** the trap of the lowest crashing lane, kept for compatibility;
          {!trap_of_lane} gives the exact per-lane trap *)
  traps : (int * Moard_vm.Trap.t) list;
      (** per-lane traps of the crash set, ascending lane order *)
  divergent : Moard_bits.Patternset.t;
  changed : Moard_bits.Patternset.t;
  overshadow : Moard_bits.Patternset.t;  (** subset of [changed] *)
}

val analyze_all :
  ?model:Moard_bits.Errmodel.t ->
  Moard_trace.Event.t -> Moard_trace.Consume.kind -> verdicts
(** Classify all [Errmodel.lanes model width] patterns of the site in one
    call ([model] defaults to [Single_bit]). Agrees with {!analyze} on
    [Errmodel.pattern_at model width i] for every lane [i]. Same
    delegation and exception contract as {!analyze}. *)

val trap_of_lane : verdicts -> int -> Moard_vm.Trap.t
(** The trap of one lane of the crash set.
    @raise Invalid_argument if the lane is not in the crash set. *)

val pattern_of_lane :
  ?model:Moard_bits.Errmodel.t ->
  Moard_trace.Event.t -> Moard_trace.Consume.kind -> int ->
  Moard_bits.Pattern.t
(** The pattern of one verdict lane at this site: the model instantiated
    at the site's operand width. *)

val changed_out_at :
  ?model:Moard_bits.Errmodel.t ->
  Moard_trace.Event.t -> Moard_trace.Consume.kind -> lane:int ->
  changed_out * bool
(** The [Changed] payload (output and overshadow flag) of one lane of the
    changed set — what seeds the propagation replay.
    @raise Invalid_argument if the lane is not in the changed set. *)

val scan_executions : unit -> int
(** Process-wide count of falls into the per-pattern scalar walk — the
    observable behind "every registry object sweeps on the batched path":
    a full-registry sweep must leave it unchanged. *)
