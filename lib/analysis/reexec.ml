(** Re-execution of a single traced operation with substituted operand
    values. Both the operation-level analysis and the propagation replay
    ask the same question — "what would this operation have produced had
    this input been corrupted?" — and answer it here, using the very same
    {!Moard_vm.Semantics} the interpreter runs on. *)

module I = Moard_ir.Instr
module Bitval = Moard_bits.Bitval
module Event = Moard_trace.Event
module Semantics = Moard_vm.Semantics

type out =
  | Rreg of Bitval.t                          (* value for the dest register *)
  | Rmem of int * Bitval.t * Moard_ir.Types.t (* store: addr, value, ty *)
  | Rload of int                              (* load from this address *)
  | Rctl of int                               (* branch to this label *)
  | Rcall                                     (* user call: args flow to params *)
  | Rret of Bitval.t option
  | Rnone
  | Rtrap of Moard_vm.Trap.t

(* The clean output, read back from the event record. *)
let clean_out (e : Event.t) =
  match e.instr with
  | I.Store _ -> (
    match e.write with
    | Event.Wmem { addr; value; ty } -> Rmem (addr, value, ty)
    | Event.Wreg _ | Event.Wnone -> Rnone)
  | I.Load _ -> Rload e.load_addr
  | I.Br _ | I.Cbr _ -> Rctl e.taken
  | I.Ret None -> Rret None
  | I.Ret (Some _) -> Rret (Some e.reads.(0).Event.value)
  | I.Call _ when e.callee_frame >= 0 -> Rcall
  | _ -> (
    match e.write with
    | Event.Wreg { value; _ } -> Rreg value
    | Event.Wmem _ | Event.Wnone -> Rnone)

let addr_of v = Int64.to_int (Bitval.to_int64 v)

(* Recompute the event's output from (possibly corrupted) operand values. *)
let recompute (e : Event.t) (values : Bitval.t array) =
  let v i = values.(i) in
  match e.instr with
  | I.Mov _ -> Rreg (v 0)
  | I.Ibin (_, op, ty, _, _) -> (
    match Semantics.ibin op ty (v 0) (v 1) with
    | Ok r -> Rreg r
    | Error trap -> Rtrap trap)
  | I.Fbin (_, op, _, _) -> Rreg (Semantics.fbin op (v 0) (v 1))
  | I.Icmp (_, op, _, _, _) -> Rreg (Semantics.icmp op (v 0) (v 1))
  | I.Fcmp (_, op, _, _) -> Rreg (Semantics.fcmp op (v 0) (v 1))
  | I.Cast (_, c, _) -> Rreg (Semantics.cast c (v 0))
  | I.Load _ -> Rload (addr_of (v 0))
  | I.Store (ty, _, _) -> Rmem (addr_of (v 1), v 0, ty)
  | I.Gep (_, _, _, scale) -> Rreg (Semantics.gep (v 0) (v 1) scale)
  | I.Select _ -> Rreg (Semantics.select (v 0) (v 1) (v 2))
  | I.Call (_, callee, _) ->
    if e.callee_frame >= 0 then Rcall
    else (
      match Semantics.intrinsic callee (Array.to_list values) with
      | Ok r -> Rreg r
      | Error trap -> Rtrap trap)
  | I.Br l -> Rctl l
  | I.Cbr (_, l1, l2) -> Rctl (if Bitval.to_bool (v 0) then l1 else l2)
  | I.Ret None -> Rret None
  | I.Ret (Some _) -> Rret (Some (v 0))

(* The masking kind an operation exhibits when a corrupted input leaves its
   result unchanged (paper §III-C):
   - shifts and truncating casts discard bits        -> value overwriting;
   - logical/comparison/selection results unchanged  -> logic & comparison;
   - additive absorption by a larger operand         -> value overshadowing;
   - anything else exact                             -> other. *)
let exact_mask_kind (instr : I.t) ~slot =
  match instr with
  | I.Ibin (_, (I.Shl | I.Lshr | I.Ashr), _, _, _) ->
    if slot = 0 then Verdict.Overwrite else Verdict.Other
  | I.Ibin (_, (I.And | I.Or | I.Xor), _, _, _) -> Verdict.Logic_cmp
  | I.Ibin (_, (I.Add | I.Sub), _, _, _) | I.Fbin (_, (I.Fadd | I.Fsub), _, _)
    -> Verdict.Overshadow
  | I.Icmp _ | I.Fcmp _ | I.Select _ | I.Cbr _ -> Verdict.Logic_cmp
  | I.Cast (_, (I.Trunc_to_i32 | I.Fp_to_si | I.Si_to_fp), _) ->
    Verdict.Overwrite
  | _ -> Verdict.Other

(* Whether a corrupted value [corrupt] in slot [slot] of an addition or
   subtraction is an overshadowing candidate: its magnitude stays below the
   other (correct) operand's (paper §IV). *)
let overshadow_candidate (e : Event.t) ~slot ~(corrupt : Bitval.t) =
  let other_slot = 1 - slot in
  match e.instr with
  | I.Fbin (_, (I.Fadd | I.Fsub), _, _) when slot <= 1 ->
    let c = Float.abs (Bitval.to_float corrupt) in
    let o = Float.abs (Bitval.to_float e.reads.(other_slot).Event.value) in
    Float.is_finite c && c < o
  | I.Ibin (_, (I.Add | I.Sub), _, _, _) when slot <= 1 ->
    let c = Int64.abs (Bitval.to_int64 corrupt) in
    let o = Int64.abs (Bitval.to_int64 e.reads.(other_slot).Event.value) in
    Int64.compare c o < 0
  | _ -> false
