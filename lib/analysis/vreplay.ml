module Bitval = Moard_bits.Bitval
module Ps = Moard_bits.Patternset
module Event = Moard_trace.Event
module Tape = Moard_trace.Tape
module Data_object = Moard_trace.Data_object
module Types = Moard_ir.Types
module I = Moard_ir.Instr

type fate =
  | Same
  | Trap of Moard_vm.Trap.t
  | Outputs of (int * Moard_bits.Bitval.t * Moard_ir.Types.t) list
  | Unknown

(* Combined contamination-cell budget across all bits; past it every
   still-undecided bit falls back to a real injection. Mirrors the spirit
   of the propagation shadow cap: a huge contaminated set means the cheap
   model has lost the plot. *)
let cell_cap = 256

(* One contaminated register: per-bit mask of which replayed bits hold a
   corrupted value in it, and that value per bit. *)
type rcell = {
  cframe : int;
  creg : int;
  mutable rmask : Ps.t;
  rvals : Bitval.t array;
}

(* One contaminated memory cell, keyed by (address, access size). The
   value is kept exactly as the store operand; loads reinterpret it the
   way [Memory.load] would. *)
type mcell = {
  maddr : int;
  msize : int;
  mutable mty : Types.t;
  mutable mmask : Ps.t;
  mvals : Bitval.t array;
}

(* Static per-instruction facts for the packed-tape prescreen, interned
   per distinct instruction (the tape shares one boxed instr across all
   its dynamic occurrences). *)
type iinfo = {
  op_regs : int array; (* operand slot -> register, -1 for imm/glob *)
  dest : int; (* static destination register, -1 *)
  icls : int; (* 0 = ordinary, 1 = ret, 2 = br *)
}

let info_of cache instr =
  match Hashtbl.find_opt cache instr with
  | Some i -> i
  | None ->
    let ops = I.reads instr in
    let op_regs =
      Array.of_list
        (List.map (function I.Reg r -> r | I.Imm _ | I.Glob _ -> -1) ops)
    in
    let dest = match I.writes instr with Some d -> d | None -> -1 in
    let icls =
      match instr with I.Ret _ -> 1 | I.Br _ -> 2 | _ -> 0
    in
    let i = { op_regs; dest; icls } in
    Hashtbl.replace cache instr i;
    i

let size_mask = function
  | 1 -> 0xFFL
  | 4 -> 0xFFFF_FFFFL
  | _ -> -1L

let addr_of v = Int64.to_int (Bitval.to_int64 v)

type st = {
  tape : Tape.t;
  outputs : Data_object.t list;
  gmem : Gmem.t option;
  fates : fate array;
  mutable live : Ps.t;
  mutable rcells : rcell list;
  mutable mcells : mcell list;
  mutable ncells : int;
}

let find_reg st ~frame ~reg =
  List.find_opt (fun c -> c.cframe = frame && c.creg = reg) st.rcells

let overlapping st ~addr ~size =
  List.filter
    (fun c -> c.maddr < addr + size && addr < c.maddr + c.msize)
    st.mcells

let compact st =
  st.rcells <- List.filter (fun c -> not (Ps.is_empty c.rmask)) st.rcells;
  st.mcells <- List.filter (fun c -> not (Ps.is_empty c.mmask)) st.mcells;
  st.ncells <- List.length st.rcells + List.length st.mcells

(* Bits whose last contaminated cell just died converge to the golden
   run: fate Same. *)
let settle st =
  compact st;
  let u =
    List.fold_left (fun acc c -> Ps.union acc c.mmask)
      (List.fold_left (fun acc c -> Ps.union acc c.rmask) Ps.empty st.rcells)
      st.mcells
  in
  let gone = Ps.diff st.live u in
  Ps.iter (fun b -> st.fates.(b) <- Same) gone;
  st.live <- u

let strip st mask =
  List.iter (fun c -> c.rmask <- Ps.diff c.rmask mask) st.rcells;
  List.iter (fun c -> c.mmask <- Ps.diff c.mmask mask) st.mcells

let finalize st mask fate =
  let mask = Ps.inter mask st.live in
  if not (Ps.is_empty mask) then begin
    Ps.iter (fun b -> st.fates.(b) <- fate) mask;
    st.live <- Ps.diff st.live mask;
    strip st mask
  end

let fresh_vals () = Array.make 64 (Bitval.zero Bitval.W64)

(* Set register (frame, reg) to [v] for bit [b] — unless the register is
   never read after [pos], in which case the contamination is stillborn. *)
let set_reg st ~pos ~frame ~reg b v =
  if Tape.last_reg_read st.tape ~frame ~reg > pos then begin
    let c =
      match find_reg st ~frame ~reg with
      | Some c -> c
      | None ->
        let c =
          { cframe = frame; creg = reg; rmask = Ps.empty; rvals = fresh_vals () }
        in
        st.rcells <- c :: st.rcells;
        st.ncells <- st.ncells + 1;
        c
    in
    c.rmask <- Ps.add c.rmask b;
    c.rvals.(b) <- v
  end

let kill_reg_mask st ~frame ~reg mask =
  match find_reg st ~frame ~reg with
  | Some c -> c.rmask <- Ps.diff c.rmask mask
  | None -> ()

let in_outputs st addr =
  List.exists (fun o -> Data_object.contains o addr) st.outputs

(* The value a load of type [ty] would observe from a cell's stored
   image: exactly [Memory.store] then [Memory.load] at equal size. *)
let reinterpret ty (v : Bitval.t) = Bitval.make (Types.width ty) v.Bitval.bits

let step st ~pos (e : Event.t) =
  let frame = e.frame in
  let nslots = Array.length e.reads in
  let slot_cell = Array.make nslots None in
  List.iteri
    (fun slot op ->
      match op with
      | I.Reg r -> slot_cell.(slot) <- find_reg st ~frame ~reg:r
      | I.Imm _ | I.Glob _ -> ())
    (I.reads e.instr);
  let dirty =
    Array.fold_left
      (fun acc c ->
        match c with Some c -> Ps.union acc c.rmask | None -> acc)
      Ps.empty slot_cell
  in
  let value_at slot b =
    match slot_cell.(slot) with
    | Some c when Ps.mem c.rmask b -> c.rvals.(b)
    | _ -> e.reads.(slot).Event.value
  in
  (match e.instr with
  | I.Br _ -> ()
  | I.Load (_, ty, _) -> (
    let sz = Types.size ty in
    (* Lanes whose address register is corrupted load from a redirected
       address: a wild address is an exact trap, an in-range one reads
       the injected run's memory there — this walk's own contaminated
       cells first, the golden-memory timeline otherwise. Without a
       timeline only ground truth can tell. *)
    let redirected = ref Ps.empty in
    let redir_vals = ref [||] in
    (match slot_cell.(0) with
    | None -> ()
    | Some c -> (
      let m = Ps.inter c.rmask st.live in
      match st.gmem with
      | None -> finalize st m Unknown
      | Some g ->
        Ps.iter
          (fun b ->
            let addr' = addr_of c.rvals.(b) in
            if addr' <> e.load_addr then
              match Gmem.probe g ty addr' with
              | Error trap -> finalize st (Ps.singleton b) (Trap trap)
              | Ok () ->
                let own = overlapping st ~addr:addr' ~size:sz in
                let mixed =
                  List.exists
                    (fun mc ->
                      (not (mc.maddr = addr' && mc.msize = sz))
                      && Ps.mem mc.mmask b)
                    own
                in
                let v =
                  if mixed then None
                  else
                    match
                      List.find_opt
                        (fun mc -> mc.maddr = addr' && mc.msize = sz)
                        own
                    with
                    | Some mc when Ps.mem mc.mmask b ->
                      Some (reinterpret ty mc.mvals.(b))
                    | _ -> Gmem.value_at g ~pos ty addr'
                in
                (match v with
                | None -> finalize st (Ps.singleton b) Unknown
                | Some v ->
                  if Array.length !redir_vals = 0 then
                    redir_vals := fresh_vals ();
                  !redir_vals.(b) <- v;
                  redirected := Ps.add !redirected b))
          m));
    let redirected = !redirected in
    let exact = ref None in
    List.iter
      (fun c ->
        if c.maddr = e.load_addr && c.msize = sz then exact := Some c
        else
          (* Partially overlapping view: the load mixes corrupted and
             clean bytes — ground truth only. A redirected lane does not
             perform this load, so it is unaffected. *)
          finalize st (Ps.diff c.mmask redirected) Unknown)
      (overlapping st ~addr:e.load_addr ~size:sz);
    match e.write with
    | Event.Wreg { frame = wf; reg = wr; value = clean } ->
      let loaded_mask =
        match !exact with
        | Some c -> Ps.diff (Ps.inter c.mmask st.live) redirected
        | None -> Ps.empty
      in
      let redirected = Ps.inter redirected st.live in
      kill_reg_mask st ~frame:wf ~reg:wr
        (Ps.diff st.live (Ps.union loaded_mask redirected));
      Ps.iter
        (fun b ->
          let c = Option.get !exact in
          let v = reinterpret ty c.mvals.(b) in
          if Bitval.equal v clean then kill_reg_mask st ~frame:wf ~reg:wr (Ps.singleton b)
          else set_reg st ~pos ~frame:wf ~reg:wr b v)
        loaded_mask;
      Ps.iter
        (fun b ->
          let v = !redir_vals.(b) in
          if Bitval.equal v clean then
            kill_reg_mask st ~frame:wf ~reg:wr (Ps.singleton b)
          else set_reg st ~pos ~frame:wf ~reg:wr b v)
        redirected
    | Event.Wmem _ | Event.Wnone -> ())
  | I.Store (ty, _, _) -> (
    match e.write with
    | Event.Wmem { addr; value = clean; ty = _ } ->
      let sz = Types.size ty in
      let smask = size_mask sz in
      (* Lanes whose address register is corrupted store somewhere else:
         a wild address is an exact trap; an in-range one leaves [addr]
         holding the injected run's prior content (the golden store never
         happens there) and clobbers [addr'] instead. Without a golden
         timeline only ground truth can tell. *)
      let redirected = ref Ps.empty in
      let redir_addr = Array.make 64 0 in
      (if nslots > 1 then
         match slot_cell.(1) with
         | None -> ()
         | Some c -> (
           let m = Ps.inter c.rmask st.live in
           match st.gmem with
           | None -> finalize st m Unknown
           | Some g ->
             Ps.iter
               (fun b ->
                 let addr' = addr_of c.rvals.(b) in
                 if addr' <> addr then
                   match Gmem.probe g ty addr' with
                   | Error trap -> finalize st (Ps.singleton b) (Trap trap)
                   | Ok () ->
                     redir_addr.(b) <- addr';
                     redirected := Ps.add !redirected b)
               m));
      let redirected = !redirected in
      let exact = ref None in
      List.iter
        (fun c ->
          if c.maddr = addr && c.msize = sz then exact := Some c
          else if c.maddr >= addr && c.maddr + c.msize <= addr + sz then begin
            (* Fully overwritten by this store: corruption at this view is
               gone (any corrupted bytes written here are tracked by the
               store's own cell below). A redirected lane instead leaves
               the cell intact while the golden run overwrites around it —
               mixed coverage this cell shape cannot express. *)
            finalize st (Ps.inter c.mmask redirected) Unknown;
            c.mmask <- Ps.empty
          end
          else
            (* Partial overlap: bytes mix — ground truth only. *)
            finalize st c.mmask Unknown)
        (overlapping st ~addr ~size:sz);
      let contaminated = ref Ps.empty in
      let vals = ref [||] in
      let put b v =
        if Array.length !vals = 0 then vals := fresh_vals ();
        !vals.(b) <- v;
        contaminated := Ps.add !contaminated b
      in
      Ps.iter
        (fun b ->
          let v = value_at 0 b in
          if
            not
              (Int64.equal
                 (Int64.logand v.Bitval.bits smask)
                 (Int64.logand clean.Bitval.bits smask))
          then put b v)
        (Ps.diff st.live redirected);
      (* Missing store: a redirected lane keeps the injected run's prior
         content at [addr] — contaminated against the golden [clean]
         unless the two coincide. *)
      (match st.gmem with
      | None -> ()
      | Some g ->
        Ps.iter
          (fun b ->
            if Ps.mem st.live b then
              let prior =
                match !exact with
                | Some c when Ps.mem c.mmask b -> Some c.mvals.(b)
                | _ -> Gmem.value_at g ~pos ty addr
              in
              match prior with
              | None -> finalize st (Ps.singleton b) Unknown
              | Some v ->
                if
                  not
                    (Int64.equal
                       (Int64.logand v.Bitval.bits smask)
                       (Int64.logand clean.Bitval.bits smask))
                then put b v)
          redirected);
      let keep =
        (not (Ps.is_empty !contaminated))
        && (Tape.last_mem_read st.tape ~addr > pos || in_outputs st addr)
      in
      (match !exact with
      | Some c ->
        if keep then begin
          c.mmask <- !contaminated;
          c.mty <- ty;
          Ps.iter (fun b -> c.mvals.(b) <- !vals.(b)) !contaminated
        end
        else c.mmask <- Ps.empty
      | None ->
        if keep then begin
          let c =
            {
              maddr = addr;
              msize = sz;
              mty = ty;
              mmask = !contaminated;
              mvals = !vals;
            }
          in
          st.mcells <- c :: st.mcells;
          st.ncells <- st.ncells + 1
        end);
      (* Misdirected store: the value a redirected lane writes at [addr']
         diverges the injected run's memory there from the golden run's,
         which never stores at [addr'] at this step. *)
      (match st.gmem with
      | None -> ()
      | Some g ->
        Ps.iter
          (fun b ->
            if Ps.mem st.live b then begin
              let addr' = redir_addr.(b) in
              let v = value_at 0 b in
              List.iter
                (fun c ->
                  if
                    (not (c.maddr = addr' && c.msize = sz))
                    && Ps.mem c.mmask b
                  then
                    if c.maddr >= addr' && c.maddr + c.msize <= addr' + sz
                    then
                      (* this lane's view fully overwritten by its store *)
                      c.mmask <- Ps.remove c.mmask b
                    else finalize st (Ps.singleton b) Unknown)
                (overlapping st ~addr:addr' ~size:sz);
              if Ps.mem st.live b then begin
                let differs =
                  match Gmem.value_at g ~pos ty addr' with
                  | Some gv ->
                    not
                      (Int64.equal
                         (Int64.logand v.Bitval.bits smask)
                         (Int64.logand gv.Bitval.bits smask))
                  | None -> true (* unknown golden content: assume it does *)
                in
                let cexact =
                  List.find_opt
                    (fun c -> c.maddr = addr' && c.msize = sz)
                    st.mcells
                in
                if
                  differs
                  && (Tape.last_mem_read st.tape ~addr:addr' > pos
                     || in_outputs st addr')
                then begin
                  let c =
                    match cexact with
                    | Some c -> c
                    | None ->
                      let c =
                        {
                          maddr = addr';
                          msize = sz;
                          mty = ty;
                          mmask = Ps.empty;
                          mvals = fresh_vals ();
                        }
                      in
                      st.mcells <- c :: st.mcells;
                      st.ncells <- st.ncells + 1;
                      c
                  in
                  c.mty <- ty;
                  c.mmask <- Ps.add c.mmask b;
                  c.mvals.(b) <- v
                end
                else
                  match cexact with
                  | Some c -> c.mmask <- Ps.remove c.mmask b
                  | None -> ()
              end
            end)
          redirected)
    | Event.Wreg _ | Event.Wnone -> ())
  | I.Call _ when e.callee_frame >= 0 ->
    (* Corrupted arguments contaminate the callee's parameter registers;
       the caller's registers stay contaminated and die by liveness. *)
    Array.iteri
      (fun slot _ ->
        match slot_cell.(slot) with
        | Some c ->
          Ps.iter
            (fun b ->
              set_reg st ~pos ~frame:e.callee_frame ~reg:slot b c.rvals.(b))
            (Ps.inter c.rmask st.live)
        | None -> ())
      e.reads
  | I.Ret _ -> (
    match e.write with
    | Event.Wreg { frame = wf; reg = wr; value = clean } ->
      kill_reg_mask st ~frame:wf ~reg:wr (Ps.diff st.live dirty);
      Ps.iter
        (fun b ->
          let v = value_at 0 b in
          if Bitval.equal v clean then
            kill_reg_mask st ~frame:wf ~reg:wr (Ps.singleton b)
          else set_reg st ~pos ~frame:wf ~reg:wr b v)
        (Ps.inter dirty st.live)
    | Event.Wmem _ | Event.Wnone -> ())
  | _ ->
    (* Value-computing operation (or a conditional branch): recompute per
       dirty bit with the bit's corrupted view of the operands. *)
    let clean_o = Reexec.clean_out e in
    let scratch = Array.map (fun (r : Event.read) -> r.Event.value) e.reads in
    (match e.write with
    | Event.Wreg { frame = wf; reg = wr; _ } ->
      kill_reg_mask st ~frame:wf ~reg:wr (Ps.diff st.live dirty)
    | Event.Wmem _ | Event.Wnone -> ());
    Ps.iter
      (fun b ->
        for slot = 0 to nslots - 1 do
          scratch.(slot) <- value_at slot b
        done;
        match (Reexec.recompute e scratch, clean_o) with
        | Reexec.Rtrap trap, _ -> finalize st (Ps.singleton b) (Trap trap)
        | Reexec.Rctl taken', Reexec.Rctl taken ->
          if taken' <> taken then finalize st (Ps.singleton b) Unknown
        | Reexec.Rreg v', Reexec.Rreg v -> (
          match e.write with
          | Event.Wreg { frame = wf; reg = wr; _ } ->
            if Bitval.equal v' v then
              kill_reg_mask st ~frame:wf ~reg:wr (Ps.singleton b)
            else set_reg st ~pos ~frame:wf ~reg:wr b v'
          | Event.Wmem _ | Event.Wnone -> ())
        | _, _ -> ())
      (Ps.inter dirty st.live));
  settle st

let run ?gmem ~tape ~outputs ~start ~seeds () =
  let st =
    {
      tape;
      outputs;
      gmem;
      fates = Array.make 64 Same;
      live = Ps.empty;
      rcells = [];
      mcells = [];
      ncells = 0;
    }
  in
  (* Seed: the site operation already executed with the corrupted operand
     (that is what makes these bits "changed"); its output is the initial
     contamination. *)
  List.iter
    (fun (b, (seed : Masking.changed_out)) ->
      st.live <- Ps.add st.live b;
      match seed with
      | Masking.To_reg { frame; reg; value } ->
        set_reg st ~pos:start ~frame ~reg b value
      | Masking.To_mem { addr; value; ty } ->
        let sz = Types.size ty in
        if Tape.last_mem_read tape ~addr > start || in_outputs st addr then begin
          let c =
            match
              List.find_opt
                (fun c -> c.maddr = addr && c.msize = sz)
                st.mcells
            with
            | Some c -> c
            | None ->
              let c =
                {
                  maddr = addr;
                  msize = sz;
                  mty = ty;
                  mmask = Ps.empty;
                  mvals = fresh_vals ();
                }
              in
              st.mcells <- c :: st.mcells;
              st.ncells <- st.ncells + 1;
              c
          in
          c.mmask <- Ps.add c.mmask b;
          c.mvals.(b) <- value
        end)
    seeds;
  settle st;
  let icache = Hashtbl.create 64 in
  let len = Tape.length tape in
  let pos = ref (start + 1) in
  while (not (Ps.is_empty st.live)) && !pos < len do
    let p = !pos in
    let instr = Tape.instr_at tape p in
    let info = info_of icache instr in
    let touch =
      match info.icls with
      | 2 -> false (* unconditional branch: reads nothing, writes nothing *)
      | 1 -> st.rcells <> [] (* ret: parent-frame write not derivable statically *)
      | _ ->
        let frame = Tape.frame_at tape p in
        let reg_hit r = r >= 0 && find_reg st ~frame ~reg:r <> None in
        let ops_hit = ref false in
        Array.iter (fun r -> if reg_hit r then ops_hit := true) info.op_regs;
        !ops_hit
        || reg_hit info.dest
        || (st.mcells <> []
           &&
           let la = Tape.load_addr_at tape p and wa = Tape.write_addr_at tape p in
           let hit a =
             a >= 0
             && List.exists
                  (fun c -> c.maddr < a + 8 && a < c.maddr + c.msize)
                  st.mcells
           in
           hit la || hit wa)
    in
    if touch then step st ~pos:p (Tape.get tape p);
    if st.ncells > cell_cap then finalize st st.live Unknown;
    incr pos
  done;
  (* Tape end: surviving contamination matters only where it is observed —
     the output objects. *)
  Ps.iter
    (fun b ->
      let patches =
        List.filter_map
          (fun c ->
            if Ps.mem c.mmask b && in_outputs st c.maddr then
              Some (c.maddr, c.mvals.(b), c.mty)
            else None)
          st.mcells
      in
      st.fates.(b) <- (match patches with [] -> Same | ps -> Outputs ps))
    st.live;
  st.fates
