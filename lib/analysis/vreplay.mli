(** Vectorized replay-to-end: predict the {e injection outcome} of every
    changed bit of a consumption site in one walk over the tape tail.

    A scalar exhaustive sweep re-executes the whole workload once per
    changed pattern. But an injected run is the golden run with one value
    substituted at the site — so as long as its control flow does not
    diverge, it replays the {e same} dynamic instruction stream, and its
    final state differs from the golden state only in a small contaminated
    set of cells. This module tracks those sets for all (up to 64) changed
    bits of a site simultaneously against the golden tape, and reports for
    each bit either the exact run fate or [Unknown] when only a real
    injection can tell (control divergence, wild accesses, overlapping
    memory views, contamination-set explosion).

    Soundness of the fates it does commit to:
    - [Same]: the bit's contamination died (overwritten, or never consumed
      again and outside the outputs), so the injected run's observable
      outputs equal the golden outputs.
    - [Trap]: an operation consuming contamination certainly traps — the
      injected run crashes with that trap at that step.
    - [Outputs]: the run reaches the end of the tape with contamination
      confined to known output cells; patching those cells over the golden
      output vector reproduces the injected run's observation exactly
      (see [Context.classify_patched]).

    The walk prescreens events on the packed tape (no event decoding) and
    only decodes the ones that interact with a contaminated cell. *)

type fate =
  | Same  (** injected run converges to the golden outputs *)
  | Trap of Moard_vm.Trap.t  (** injected run certainly crashes *)
  | Outputs of (int * Moard_bits.Bitval.t * Moard_ir.Types.t) list
      (** injected run finishes; outputs = golden patched with these
          [(addr, value-as-stored, store type)] cells *)
  | Unknown  (** needs a real injection *)

val run :
  ?gmem:Gmem.t ->
  tape:Moard_trace.Tape.t ->
  outputs:Moard_trace.Data_object.t list ->
  start:int ->
  seeds:(int * Masking.changed_out) list ->
  unit ->
  fate array
(** [run ~tape ~outputs ~start ~seeds] replays the tape tail
    [(start, length)] once. [seeds] gives, for each changed lane of the
    site at index [start], the corrupted output of the consuming
    operation ({!Masking.changed_out_at}). Returns a 64-slot array indexed
    by lane; slots not named in [seeds] are meaningless. The tape must be
    frozen (liveness indexes are consulted).

    [gmem] is the golden-memory timeline of the tape. With it, a lane
    whose contamination reaches a load or store {e address} register is
    resolved exactly — wild address = certain trap, redirected access =
    golden-memory question — instead of falling back to [Unknown] (a real
    injection), which is what kills the batched throughput of
    address-feeding objects like pivot-index arrays. *)
