module Bitval = Moard_bits.Bitval
module Event = Moard_trace.Event
module Tape = Moard_trace.Tape
module Data_object = Moard_trace.Data_object
module I = Moard_ir.Instr

type init =
  | From_reg of { frame : int; reg : int; value : Bitval.t }
  | From_mem of { addr : int; value : Bitval.t; ty : Moard_ir.Types.t }

type unresolved_reason =
  | Control_divergence
  | Wild_access
  | Window_exhausted
  | Explosion
  | Output_contaminated

type outcome =
  | Masked of Verdict.kind
  | Crash_certain of Moard_vm.Trap.t
  | Unresolved of unresolved_reason

let reason_name = function
  | Control_divergence -> "control-divergence"
  | Wild_access -> "wild-access"
  | Window_exhausted -> "window-exhausted"
  | Explosion -> "explosion"
  | Output_contaminated -> "output-contaminated"

exception Stop of outcome

type state = {
  tape : Tape.t;
  outputs : Data_object.t list;
  shadow_cap : int;
  regs : (int * int, Bitval.t) Hashtbl.t;
  mem : (int, Bitval.t * Moard_ir.Types.t) Hashtbl.t;
  mutable last_kind : Verdict.kind;
}

let in_outputs st addr =
  List.exists (fun o -> Data_object.contains o addr) st.outputs

let size st = Hashtbl.length st.regs + Hashtbl.length st.mem

(* Contamination that can never be consumed again is dropped on the spot:
   a latent error outside the outputs cannot affect the outcome. *)
let add_reg st ~pos ~frame ~reg value =
  if Tape.last_reg_read st.tape ~frame ~reg > pos then begin
    Hashtbl.replace st.regs (frame, reg) value;
    if size st > st.shadow_cap then raise (Stop (Unresolved Explosion))
  end
  else st.last_kind <- Verdict.Other

let add_mem st ~pos ~addr value ty =
  if Tape.last_mem_read st.tape ~addr > pos || in_outputs st addr then begin
    Hashtbl.replace st.mem addr (value, ty);
    if size st > st.shadow_cap then raise (Stop (Unresolved Explosion))
  end
  else st.last_kind <- Verdict.Other

let kill_reg st ~frame ~reg =
  if Hashtbl.mem st.regs (frame, reg) then begin
    Hashtbl.remove st.regs (frame, reg);
    st.last_kind <- Verdict.Overwrite
  end

let kill_mem st ~addr =
  if Hashtbl.mem st.mem addr then begin
    Hashtbl.remove st.mem addr;
    st.last_kind <- Verdict.Overwrite
  end

(* Corrupted view of the event's operand values; [None] if untouched. *)
let corrupted_inputs st (e : Event.t) =
  let ops = I.reads e.instr in
  let any = ref false in
  let values =
    Array.mapi
      (fun slot (r : Event.read) ->
        match List.nth ops slot with
        | I.Reg reg -> (
          match Hashtbl.find_opt st.regs (e.frame, reg) with
          | Some v ->
            any := true;
            v
          | None -> r.value)
        | I.Imm _ | I.Glob _ -> r.value)
      e.reads
  in
  (* A load from a contaminated cell consumes corruption even though its
     address operand is clean. *)
  let loaded =
    if e.load_addr >= 0 then Hashtbl.find_opt st.mem e.load_addr else None
  in
  (!any, values, loaded)

let step st pos (e : Event.t) =
  let dirty, values, loaded = corrupted_inputs st e in
  if not (dirty || Option.is_some loaded) then begin
    (* Clean event: it can only destroy contamination by overwriting. *)
    match e.write with
    | Event.Wreg { frame; reg; _ } -> kill_reg st ~frame ~reg
    | Event.Wmem { addr; _ } -> kill_mem st ~addr
    | Event.Wnone -> ()
  end
  else
    match e.instr with
    | I.Load (_, ty, _) -> (
      if dirty then
        (* Contaminated address: the load would read some other cell. *)
        raise (Stop (Unresolved Wild_access));
      match loaded with
      | Some (v, sty) -> (
        if not (Moard_ir.Types.equal ty sty) then
          raise (Stop (Unresolved Wild_access));
        match e.write with
        | Event.Wreg { frame; reg; _ } -> add_reg st ~pos ~frame ~reg v
        | Event.Wmem _ | Event.Wnone -> ())
      | None -> ())
    | I.Store (ty, _, _) -> (
      let addr_op_dirty =
        match I.reads e.instr with
        | [ _; I.Reg reg ] -> Hashtbl.mem st.regs (e.frame, reg)
        | _ -> false
      in
      if addr_op_dirty then raise (Stop (Unresolved Wild_access));
      match e.write with
      | Event.Wmem { addr; value; _ } ->
        if Bitval.equal values.(0) value then kill_mem st ~addr
        else add_mem st ~pos ~addr values.(0) ty
      | Event.Wreg _ | Event.Wnone -> ())
    | I.Call _ when e.callee_frame >= 0 ->
      (* Corrupted arguments contaminate the callee's parameter registers;
         the caller's registers stay contaminated and die by liveness. *)
      Array.iteri
        (fun slot (r : Event.read) ->
          if not (Bitval.equal values.(slot) r.value) then
            add_reg st ~pos ~frame:e.callee_frame ~reg:slot values.(slot))
        e.reads
    | I.Ret _ ->
      if
        e.ret_to_frame >= 0 && e.ret_to_reg >= 0
        && Array.length e.reads > 0
        && not (Bitval.equal values.(0) e.reads.(0).Event.value)
      then add_reg st ~pos ~frame:e.ret_to_frame ~reg:e.ret_to_reg values.(0)
    | I.Br _ -> ()
    | _ -> (
      match (Reexec.recompute e values, Reexec.clean_out e) with
      | Reexec.Rtrap trap, _ -> raise (Stop (Crash_certain trap))
      | Reexec.Rctl taken', Reexec.Rctl taken ->
        if taken' <> taken then raise (Stop (Unresolved Control_divergence))
        else st.last_kind <- Verdict.Logic_cmp
      | Reexec.Rreg v', Reexec.Rreg v -> (
        match e.write with
        | Event.Wreg { frame; reg; _ } ->
          if Bitval.equal v' v then begin
            (* The corruption was masked by this operation: the result is
               clean despite contaminated inputs, so a contaminated
               destination (if any) is cleansed as well. *)
            Hashtbl.remove st.regs (frame, reg);
            let slot = ref 0 in
            Array.iteri
              (fun s (r : Event.read) ->
                if not (Bitval.equal values.(s) r.value) then slot := s)
              e.reads;
            st.last_kind <- Reexec.exact_mask_kind e.instr ~slot:!slot
          end
          else add_reg st ~pos ~frame ~reg v'
        | Event.Wmem _ | Event.Wnone -> ())
      | _, _ -> ())

let final st ~end_pos ~at_tape_end =
  let live_reg = ref false and live_mem = ref false and in_out = ref false in
  Hashtbl.iter
    (fun (frame, reg) _ ->
      if Tape.last_reg_read st.tape ~frame ~reg > end_pos then live_reg := true)
    st.regs;
  Hashtbl.iter
    (fun addr _ ->
      if in_outputs st addr then in_out := true
      else if Tape.last_mem_read st.tape ~addr > end_pos then live_mem := true)
    st.mem;
  if !in_out then
    Unresolved (if at_tape_end then Output_contaminated else Window_exhausted)
  else if !live_reg || !live_mem then Unresolved Window_exhausted
  else Masked st.last_kind

let replay ~tape ~k ~shadow_cap ~outputs ~start ~init =
  let st =
    {
      tape;
      outputs;
      shadow_cap;
      regs = Hashtbl.create 16;
      mem = Hashtbl.create 16;
      last_kind = Verdict.Other;
    }
  in
  try
    (match init with
    | From_reg { frame; reg; value } -> add_reg st ~pos:start ~frame ~reg value
    | From_mem { addr; value; ty } -> add_mem st ~pos:start ~addr value ty);
    let len = Tape.length tape in
    let stop = min (start + k) (len - 1) in
    (* The k-window is a sub-cursor: the replay streams it and never
       touches the tape outside [start+1, stop]. *)
    let window = Tape.Cursor.window tape ~lo:(start + 1) ~hi:(stop + 1) in
    while
      Tape.Cursor.has_next window
      && (Hashtbl.length st.regs > 0 || Hashtbl.length st.mem > 0)
    do
      let pos = Tape.Cursor.pos window in
      step st pos (Tape.Cursor.next window)
    done;
    if Hashtbl.length st.regs = 0 && Hashtbl.length st.mem = 0 then
      Masked st.last_kind
    else
      final st
        ~end_pos:(min (Tape.Cursor.pos window) stop)
        ~at_tape_end:(stop = len - 1)
  with Stop outcome -> outcome
