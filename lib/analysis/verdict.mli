(** Masking verdicts: the three levels of the paper's classification
    (§III-A) and the operation-level masking kinds of §III-C. *)

type level =
  | Operation    (** masked by the consuming operation's semantics *)
  | Propagation  (** masked while propagating, within k operations *)
  | Algorithm    (** outcome numerically different but acceptable *)

type kind =
  | Overwrite   (** value overwriting, incl. trunc and bit shifts *)
  | Logic_cmp   (** logical and comparison operations *)
  | Overshadow  (** add/sub magnitude masking *)
  | Other       (** exact-result masking by other operations *)

type t =
  | Masked of level * kind
  | Not_masked

val levels : level list
val kinds : kind list
val level_index : level -> int
val kind_index : kind -> int
val level_name : level -> string
val kind_name : kind -> string
val pp : Format.formatter -> t -> unit
