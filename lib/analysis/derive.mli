(** Read-modify-write detection for store-destination masking.

    The paper's §III-B walkthrough distinguishes [sum\[m\] = 0.0] and
    [sum\[m\] = sqrt(sum\[m\]/n)] (assignments that mask by overwriting)
    from [sum\[m\] = sum\[m\] + x] (an assignment that does not mask,
    "because the new value is added to sum\[m\], not overwriting it").
    The rule that reproduces this accounting: the overwrite does not mask
    when the operation that produced the stored value itself directly
    consumed the destination element — a read-modify-write at statement
    granularity.

    For such a store, the fault scenario "the element is corrupted when
    the store consumes it" coincides with "the element is corrupted when
    the deriving operation reads it" — one statement, one fault — so the
    model gives the store involvement the verdict of that read site. This
    is also what makes the ABFT case study come out right: a corrupted
    product element consumed by the accumulating store is corrected later
    "in a specific verification phase during error propagation" (§VI). *)

val store_rmw_source :
  tape:Moard_trace.Tape.t -> Moard_trace.Event.t -> (int * int) option
(** [store_rmw_source ~tape e] for a [Store] event: when the stored value
    was produced (through pure copies) by an operation that directly read
    the destination cell, the dynamic index of that operation and the slot
    through which it consumed the cell. [None] for immediate or unrelated
    stored values (a genuine overwrite). *)
