type level = Operation | Propagation | Algorithm

type kind = Overwrite | Logic_cmp | Overshadow | Other

type t =
  | Masked of level * kind
  | Not_masked

let levels = [ Operation; Propagation; Algorithm ]
let kinds = [ Overwrite; Logic_cmp; Overshadow; Other ]

let level_index = function Operation -> 0 | Propagation -> 1 | Algorithm -> 2
let kind_index = function
  | Overwrite -> 0 | Logic_cmp -> 1 | Overshadow -> 2 | Other -> 3

let level_name = function
  | Operation -> "operation"
  | Propagation -> "propagation"
  | Algorithm -> "algorithm"

let kind_name = function
  | Overwrite -> "overwrite"
  | Logic_cmp -> "logic/cmp"
  | Overshadow -> "overshadow"
  | Other -> "other"

let pp ppf = function
  | Masked (l, k) ->
    Format.fprintf ppf "masked(%s, %s)" (level_name l) (kind_name k)
  | Not_masked -> Format.pp_print_string ppf "not-masked"
