module Bitval = Moard_bits.Bitval
module Pattern = Moard_bits.Pattern
module Ps = Moard_bits.Patternset
module Event = Moard_trace.Event
module Consume = Moard_trace.Consume
module I = Moard_ir.Instr
module Semantics = Moard_vm.Semantics

type t =
  | Masked of Verdict.kind
  | Changed of { out : changed_out; overshadow : bool }
  | Crash_certain of Moard_vm.Trap.t
  | Divergent

and changed_out =
  | To_reg of { frame : int; reg : int; value : Moard_bits.Bitval.t }
  | To_mem of { addr : int; value : Moard_bits.Bitval.t; ty : Moard_ir.Types.t }

(* The scalar classifier: [values] is the operand vector with
   [values.(slot)] already replaced by [corrupt]. Shared by the
   one-pattern entry point and the bit-by-bit fallback of the batched
   one, so the two agree by construction wherever the fallback runs. *)
let classify_read (e : Event.t) ~slot values ~(corrupt : Bitval.t) =
  let overshadow = Reexec.overshadow_candidate e ~slot ~corrupt in
  match (Reexec.recompute e values, Reexec.clean_out e) with
  | Reexec.Rtrap trap, _ -> Crash_certain trap
  | Reexec.Rctl taken', Reexec.Rctl taken ->
    if taken = taken' then Masked Verdict.Logic_cmp else Divergent
  | Reexec.Rreg v', Reexec.Rreg v ->
    if Bitval.equal v' v then Masked (Reexec.exact_mask_kind e.instr ~slot)
    else (
      match e.write with
      | Event.Wreg { frame; reg; _ } ->
        Changed { out = To_reg { frame; reg; value = v' }; overshadow }
      | Event.Wmem _ | Event.Wnone ->
        invalid_arg "Masking.analyze: register result without a register write")
  | Reexec.Rmem (addr', v', ty), Reexec.Rmem (addr, v, _) ->
    if addr' <> addr then
      (* Only possible when the address operand itself carried the
         element; treat as a wild store needing ground truth. *)
      Divergent
    else if Bitval.equal v' v then
      Masked (Reexec.exact_mask_kind e.instr ~slot)
    else Changed { out = To_mem { addr; value = v'; ty }; overshadow }
  | (Reexec.Rload _ | Reexec.Rcall | Reexec.Rret _ | Reexec.Rnone), _ ->
    invalid_arg "Masking.analyze: not a consuming operation"
  | _, _ -> invalid_arg "Masking.analyze: output shape mismatch"

let check_read_site (e : Event.t) ~slot =
  if not (Consume.consuming_event e) then
    invalid_arg "Masking.analyze: not a consuming operation";
  if slot < 0 || slot >= Array.length e.reads then
    invalid_arg "Masking.analyze: slot out of range"

let analyze (e : Event.t) kind pattern =
  match (kind : Consume.kind) with
  | Consume.Store_dest ->
    (* The store writes a new value over the corrupted element: value
       overwriting, whatever the corrupted bit (paper §III-C (1)).
       Read-modify-write stores never reach this case — the model
       delegates them to the statement's deriving read (see {!Derive}). *)
    Masked Verdict.Overwrite
  | Consume.Read { slot } ->
    check_read_site e ~slot;
    let values = Array.map (fun (r : Event.read) -> r.value) e.reads in
    let corrupt = Pattern.apply pattern values.(slot) in
    values.(slot) <- corrupt;
    classify_read e ~slot values ~corrupt

(* ------------------------------------------------------------------ *)
(* Batched evaluation of a whole error-model pattern set.              *)

module Errmodel = Moard_bits.Errmodel

type verdicts = {
  width : Moard_bits.Bitval.width;
  model : Errmodel.t;
  lanes : int;
  masked : Ps.t;
  mask_kind : Verdict.kind;
  crash : Ps.t;
  trap : Moard_vm.Trap.t option;
  traps : (int * Moard_vm.Trap.t) list;
  divergent : Ps.t;
  changed : Ps.t;
  overshadow : Ps.t;
}

let mk ~width ~model ~n ~mask_kind ?(masked = Ps.empty) ?(crash = Ps.empty)
    ?(traps = []) ?(divergent = Ps.empty) ?(overshadow = Ps.empty) () =
  let changed =
    Ps.diff (Ps.full_n ~n) (Ps.union masked (Ps.union crash divergent))
  in
  {
    width;
    model;
    lanes = n;
    masked;
    mask_kind;
    crash;
    trap = (match traps with [] -> None | (_, t) :: _ -> Some t);
    traps;
    divergent;
    changed;
    overshadow = Ps.inter overshadow changed;
  }

(* The proof-carrying scalar walk, kept solely as the differential
   oracle: classify every lane with the scalar classifier. The batched
   path must never take it — every consuming opcode has either a closed
   form or a direct per-lane kernel below — and the process-wide counter
   makes the claim observable. *)
let scan_calls = Atomic.make 0
let scan_executions () = Atomic.get scan_calls

let scan ~model (e : Event.t) ~slot ~width ~mask_kind =
  Atomic.incr scan_calls;
  let values = Array.map (fun (r : Event.read) -> r.value) e.reads in
  let clean = values.(slot) in
  let n = Errmodel.lanes model width in
  let masked = ref Ps.empty
  and crash = ref Ps.empty
  and divergent = ref Ps.empty
  and overshadow = ref Ps.empty
  and traps = ref [] in
  for i = 0 to n - 1 do
    let corrupt = Pattern.apply (Errmodel.pattern_at model width i) clean in
    values.(slot) <- corrupt;
    match classify_read e ~slot values ~corrupt with
    | Masked _ -> masked := Ps.add !masked i
    | Crash_certain t ->
      crash := Ps.add !crash i;
      traps := (i, t) :: !traps
    | Divergent -> divergent := Ps.add !divergent i
    | Changed { overshadow = o; _ } ->
      if o then overshadow := Ps.add !overshadow i
  done;
  mk ~width ~model ~n ~mask_kind ~masked:!masked ~crash:!crash
    ~traps:(List.rev !traps) ~divergent:!divergent ~overshadow:!overshadow ()

(* Per-lane direct kernels for the opcodes whose result depends on the
   operand's numeric value rather than its bit structure — float
   arithmetic (the Fbin classifier: IEEE rounding absorption has no
   bit-algebraic form, so each lane is one float operation), division and
   remainder (the certain-trap source), ordered comparisons, corrupted
   shift amounts, value casts, addresses. One closure per site evaluates
   the operation's own Semantics with the corrupted operand substituted
   in the slot; no event re-materialization, no generic re-execution
   dispatch. *)
let kernel_of (e : Event.t) ~slot =
  let v i = e.reads.(i).Event.value in
  let pick i c = if i = slot then c else v i in
  match e.instr with
  | I.Ibin (_, op, ty, _, _) when Array.length e.reads = 2 ->
    Some
      (fun c ->
        match Semantics.ibin op ty (pick 0 c) (pick 1 c) with
        | Ok r -> Reexec.Rreg r
        | Error trap -> Reexec.Rtrap trap)
  | I.Fbin (_, op, _, _) when Array.length e.reads = 2 ->
    Some (fun c -> Reexec.Rreg (Semantics.fbin op (pick 0 c) (pick 1 c)))
  | I.Icmp (_, op, _, _, _) when Array.length e.reads = 2 ->
    Some (fun c -> Reexec.Rreg (Semantics.icmp op (pick 0 c) (pick 1 c)))
  | I.Fcmp (_, op, _, _) when Array.length e.reads = 2 ->
    Some (fun c -> Reexec.Rreg (Semantics.fcmp op (pick 0 c) (pick 1 c)))
  | I.Cast (_, cst, _) when Array.length e.reads = 1 ->
    Some (fun c -> Reexec.Rreg (Semantics.cast cst c))
  | I.Gep (_, _, _, scale) when Array.length e.reads = 2 ->
    Some (fun c -> Reexec.Rreg (Semantics.gep (pick 0 c) (pick 1 c) scale))
  | I.Select _ when Array.length e.reads = 3 ->
    Some
      (fun c -> Reexec.Rreg (Semantics.select (pick 0 c) (pick 1 c) (pick 2 c)))
  | I.Store (ty, _, _) when Array.length e.reads = 2 ->
    Some
      (fun c ->
        Reexec.Rmem
          (Int64.to_int (Bitval.to_int64 (pick 1 c)), pick 0 c, ty))
  | I.Cbr (_, l1, l2) when Array.length e.reads = 1 ->
    Some (fun c -> Reexec.Rctl (if Bitval.to_bool c then l1 else l2))
  | I.Call (_, callee, _) when e.callee_frame < 0 ->
    Some
      (fun c ->
        let args =
          List.init (Array.length e.reads) (fun i -> pick i c)
        in
        match Semantics.intrinsic callee args with
        | Ok r -> Reexec.Rreg r
        | Error trap -> Reexec.Rtrap trap)
  | _ -> None

let analyze_all ?(model = Errmodel.Single_bit) (e : Event.t)
    (kind : Consume.kind) =
  match kind with
  | Consume.Store_dest ->
    let width =
      match e.instr with
      | I.Store (ty, _, _) -> Moard_ir.Types.width ty
      | _ ->
        invalid_arg "Masking.analyze_all: store destination of a non-store"
    in
    let n = Errmodel.lanes model width in
    mk ~width ~model ~n ~mask_kind:Verdict.Overwrite ~masked:(Ps.full_n ~n) ()
  | Consume.Read { slot } -> (
    check_read_site e ~slot;
    let a = (e.reads.(slot).Event.value : Bitval.t) in
    let width = a.Bitval.width in
    let n = Errmodel.lanes model width in
    let single = model = Errmodel.Single_bit in
    let flips () = Array.init n (fun i -> Errmodel.flip_mask model width i) in
    let mask_kind = Reexec.exact_mask_kind e.instr ~slot in
    let mk = mk ~width ~model ~n ~mask_kind in
    (* Closed forms, dispatched on the model: the O(1) single-bit forms
       on the historical path, the flip-mask generalizations otherwise. *)
    let band_masked ~other =
      if single then Ps.band_masked ~other ~width
      else Ps.band_masked_m ~flips:(flips ()) ~other ~width
    and bor_masked ~other =
      if single then Ps.bor_masked ~other ~width
      else Ps.bor_masked_m ~flips:(flips ()) ~other ~width
    and bxor_masked () =
      if single then Ps.bxor_masked ~width else Ps.empty
    and addsub_masked () =
      if single then Ps.addsub_masked ~width
      else Ps.addsub_masked_m ~flips:(flips ()) ~width
    and addsub_overshadow ~other =
      if single then Ps.addsub_overshadow ~a:a.Bitval.bits ~other ~width
      else
        Ps.addsub_overshadow_m ~flips:(flips ()) ~a:a.Bitval.bits ~other
          ~width
    and mul_masked ~other =
      if single then Ps.mul_masked ~other ~width
      else Ps.mul_masked_m ~flips:(flips ()) ~other ~width
    and shl_value_masked ~amount =
      if single then Ps.shl_value_masked ~amount ~width
      else Ps.shl_value_masked_m ~flips:(flips ()) ~amount ~width
    and lshr_value_masked ~amount =
      if single then Ps.lshr_value_masked ~amount ~width
      else Ps.lshr_value_masked_m ~flips:(flips ()) ~amount ~width
    and ashr_value_masked ~amount =
      if single then Ps.ashr_value_masked ~amount ~width
      else Ps.ashr_value_masked_m ~flips:(flips ()) ~amount ~width
    and eq_masked ~b =
      if single then Ps.eq_masked ~a:a.Bitval.bits ~b ~width
      else Ps.eq_masked_m ~flips:(flips ()) ~a:a.Bitval.bits ~b ~width
    and trunc_masked () =
      if single then Ps.trunc_masked ~width
      else Ps.trunc_masked_m ~flips:(flips ()) ~width
    in
    (* The direct per-lane kernel for everything without a closed form;
       the scalar walk is unreachable from here for consuming events and
       stays only as the counted last resort. *)
    let direct () =
      match kernel_of e ~slot with
      | None -> scan ~model e ~slot ~width ~mask_kind
      | Some k ->
        let clean_o = Reexec.clean_out e in
        let masked = ref Ps.empty
        and crash = ref Ps.empty
        and divergent = ref Ps.empty
        and overshadow = ref Ps.empty
        and traps = ref [] in
        for lane = 0 to n - 1 do
          let m = Errmodel.flip_mask model width lane in
          let corrupt = Bitval.make width (Int64.logxor a.Bitval.bits m) in
          match (k corrupt, clean_o) with
          | Reexec.Rtrap t, _ ->
            crash := Ps.add !crash lane;
            traps := (lane, t) :: !traps
          | Reexec.Rctl taken', Reexec.Rctl taken ->
            if taken = taken' then masked := Ps.add !masked lane
            else divergent := Ps.add !divergent lane
          | Reexec.Rreg v', Reexec.Rreg v ->
            if Bitval.equal v' v then masked := Ps.add !masked lane
            else if Reexec.overshadow_candidate e ~slot ~corrupt then
              overshadow := Ps.add !overshadow lane
          | Reexec.Rmem (addr', v', _), Reexec.Rmem (addr, v, _) ->
            if addr' <> addr then divergent := Ps.add !divergent lane
            else if Bitval.equal v' v then masked := Ps.add !masked lane
          | _, _ -> invalid_arg "Masking.analyze_all: output shape mismatch"
        done;
        mk ~masked:!masked ~crash:!crash ~traps:(List.rev !traps)
          ~divergent:!divergent ~overshadow:!overshadow ()
    in
    let wreg = match e.write with Event.Wreg _ -> true | _ -> false in
    let bits_of i = (e.reads.(i).Event.value : Bitval.t).Bitval.bits in
    let same_width i =
      (e.reads.(i).Event.value : Bitval.t).Bitval.width = width
    in
    match e.instr with
    | I.Ibin (_, op, ty, _, _)
      when wreg
           && Array.length e.reads = 2
           && Moard_ir.Types.width ty = width
           && same_width (1 - slot) -> (
      let other = bits_of (1 - slot) in
      match op with
      | I.And -> mk ~masked:(band_masked ~other) ()
      | I.Or -> mk ~masked:(bor_masked ~other) ()
      | I.Xor -> mk ~masked:(bxor_masked ()) ()
      | I.Add | I.Sub ->
        mk
          ~masked:(addsub_masked ())
          ~overshadow:(addsub_overshadow ~other)
          ()
      | I.Mul -> mk ~masked:(mul_masked ~other) ()
      | (I.Shl | I.Lshr | I.Ashr) when slot = 0 ->
        (* The clean shift amount, normalized exactly as Semantics.ibin
           and Semantics.shift_result do: any amount outside
           [0, bits_in width) yields the constant out-of-range result. *)
        let a64 = Bitval.to_int64 e.reads.(1).Event.value in
        let amount =
          if
            Int64.compare a64 0L < 0
            || Int64.compare a64 (Int64.of_int (Bitval.bits_in width)) >= 0
          then -1
          else Int64.to_int a64
        in
        (match op with
        | I.Shl -> mk ~masked:(shl_value_masked ~amount) ()
        | I.Lshr -> mk ~masked:(lshr_value_masked ~amount) ()
        | _ -> mk ~masked:(ashr_value_masked ~amount) ())
      | I.Shl | I.Lshr | I.Ashr | I.Sdiv | I.Srem ->
        (* Corrupted shift amounts and division (where the certain traps
           arise): per-lane direct kernel. *)
        direct ())
    | I.Icmp (_, (I.Ieq | I.Ine), _, _, _)
      when wreg && Array.length e.reads = 2 && same_width (1 - slot) ->
      mk ~masked:(eq_masked ~b:(bits_of (1 - slot))) ()
    | I.Cast (_, I.Trunc_to_i32, _) when wreg ->
      mk ~masked:(trunc_masked ()) ()
    | I.Cast
        (_, (I.Sext_to_i64 | I.Zext_to_i64 | I.Bitcast_f_to_i
            | I.Bitcast_i_to_f), _)
      when wreg ->
      (* extensions and bitcasts are injective in the operand bits *)
      mk ()
    | I.Gep (_, _, _, scale) when wreg && width = Bitval.W64 ->
      if slot = 1 then
        (* index: the product index*scale moves by ±2^tz(m)·odd·scale *)
        mk ~masked:(mul_masked ~other:(Int64.of_int scale)) ()
      else
        (* base: the address moves by a nonzero delta — never masked *)
        mk ~masked:(addsub_masked ()) ()
    | I.Select _ when wreg && Array.length e.reads = 3 ->
      if slot = 0 then
        if width = Bitval.W1 then
          if Bitval.equal e.reads.(1).Event.value e.reads.(2).Event.value then
            mk ~masked:(Ps.full_n ~n) ()
          else mk ()
        else direct ()
      else
        let chosen = Bitval.to_bool e.reads.(0).Event.value in
        if (slot = 1) = chosen then mk () else mk ~masked:(Ps.full_n ~n) ()
    | I.Store _
      when slot = 0
           && (match e.write with Event.Wmem _ -> true | _ -> false) ->
      (* The stored value always changes. The address operand (slot 1)
         takes the direct kernel for the address-truncation edge case. *)
      mk ()
    | I.Cbr (_, l1, l2) when width = Bitval.W1 ->
      if l1 = l2 then mk ~masked:(Ps.full_n ~n) ()
      else mk ~divergent:(Ps.full_n ~n) ()
    | _ -> direct ())

let pattern_of_lane ?(model = Errmodel.Single_bit) (e : Event.t)
    (kind : Consume.kind) lane =
  let width =
    match kind with
    | Consume.Store_dest -> (
      match e.instr with
      | I.Store (ty, _, _) -> Moard_ir.Types.width ty
      | _ ->
        invalid_arg "Masking.pattern_of_lane: store destination of a non-store")
    | Consume.Read { slot } -> (e.reads.(slot).Event.value : Bitval.t).width
  in
  Errmodel.pattern_at model width lane

let changed_out_at ?model (e : Event.t) kind ~lane =
  match analyze e kind (pattern_of_lane ?model e kind lane) with
  | Changed { out; overshadow } -> (out, overshadow)
  | Masked _ | Crash_certain _ | Divergent ->
    invalid_arg "Masking.changed_out_at: not a changed lane"

let trap_of_lane v lane =
  match List.assoc_opt lane v.traps with
  | Some t -> t
  | None -> (
    match v.trap with
    | Some t -> t
    | None -> invalid_arg "Masking.trap_of_lane: lane not in the crash set")
