module Bitval = Moard_bits.Bitval
module Pattern = Moard_bits.Pattern
module Ps = Moard_bits.Patternset
module Event = Moard_trace.Event
module Consume = Moard_trace.Consume
module I = Moard_ir.Instr

type t =
  | Masked of Verdict.kind
  | Changed of { out : changed_out; overshadow : bool }
  | Crash_certain of Moard_vm.Trap.t
  | Divergent

and changed_out =
  | To_reg of { frame : int; reg : int; value : Moard_bits.Bitval.t }
  | To_mem of { addr : int; value : Moard_bits.Bitval.t; ty : Moard_ir.Types.t }

(* The scalar classifier: [values] is the operand vector with
   [values.(slot)] already replaced by [corrupt]. Shared by the
   one-pattern entry point and the bit-by-bit fallback of the batched
   one, so the two agree by construction wherever the fallback runs. *)
let classify_read (e : Event.t) ~slot values ~(corrupt : Bitval.t) =
  let overshadow = Reexec.overshadow_candidate e ~slot ~corrupt in
  match (Reexec.recompute e values, Reexec.clean_out e) with
  | Reexec.Rtrap trap, _ -> Crash_certain trap
  | Reexec.Rctl taken', Reexec.Rctl taken ->
    if taken = taken' then Masked Verdict.Logic_cmp else Divergent
  | Reexec.Rreg v', Reexec.Rreg v ->
    if Bitval.equal v' v then Masked (Reexec.exact_mask_kind e.instr ~slot)
    else (
      match e.write with
      | Event.Wreg { frame; reg; _ } ->
        Changed { out = To_reg { frame; reg; value = v' }; overshadow }
      | Event.Wmem _ | Event.Wnone ->
        invalid_arg "Masking.analyze: register result without a register write")
  | Reexec.Rmem (addr', v', ty), Reexec.Rmem (addr, v, _) ->
    if addr' <> addr then
      (* Only possible when the address operand itself carried the
         element; treat as a wild store needing ground truth. *)
      Divergent
    else if Bitval.equal v' v then
      Masked (Reexec.exact_mask_kind e.instr ~slot)
    else Changed { out = To_mem { addr; value = v'; ty }; overshadow }
  | (Reexec.Rload _ | Reexec.Rcall | Reexec.Rret _ | Reexec.Rnone), _ ->
    invalid_arg "Masking.analyze: not a consuming operation"
  | _, _ -> invalid_arg "Masking.analyze: output shape mismatch"

let check_read_site (e : Event.t) ~slot =
  if not (Consume.consuming_event e) then
    invalid_arg "Masking.analyze: not a consuming operation";
  if slot < 0 || slot >= Array.length e.reads then
    invalid_arg "Masking.analyze: slot out of range"

let analyze (e : Event.t) kind pattern =
  match (kind : Consume.kind) with
  | Consume.Store_dest ->
    (* The store writes a new value over the corrupted element: value
       overwriting, whatever the corrupted bit (paper §III-C (1)).
       Read-modify-write stores never reach this case — the model
       delegates them to the statement's deriving read (see {!Derive}). *)
    Masked Verdict.Overwrite
  | Consume.Read { slot } ->
    check_read_site e ~slot;
    let values = Array.map (fun (r : Event.read) -> r.value) e.reads in
    let corrupt = Pattern.apply pattern values.(slot) in
    values.(slot) <- corrupt;
    classify_read e ~slot values ~corrupt

(* ------------------------------------------------------------------ *)
(* Batched evaluation of the whole single-bit pattern set.             *)

type verdicts = {
  width : Moard_bits.Bitval.width;
  masked : Ps.t;
  mask_kind : Verdict.kind;
  crash : Ps.t;
  trap : Moard_vm.Trap.t option;
  divergent : Ps.t;
  changed : Ps.t;
  overshadow : Ps.t;
}

let mk ~width ~mask_kind ?(masked = Ps.empty) ?(crash = Ps.empty) ?trap
    ?(divergent = Ps.empty) ?(overshadow = Ps.empty) () =
  let changed =
    Ps.diff (Ps.full ~width) (Ps.union masked (Ps.union crash divergent))
  in
  {
    width;
    masked;
    mask_kind;
    crash;
    trap;
    divergent;
    changed;
    overshadow = Ps.inter overshadow changed;
  }

(* The proof-carrying fallback: classify every bit with the scalar
   classifier. Opcodes without a closed form — float rounding, division
   traps, ordered comparisons, corrupted shift amounts and store
   addresses — land here, so for them the batched verdict is the scalar
   verdict by definition, not by derivation. *)
let scan (e : Event.t) ~slot ~width ~mask_kind =
  let values = Array.map (fun (r : Event.read) -> r.value) e.reads in
  let clean = values.(slot) in
  let masked = ref Ps.empty
  and crash = ref Ps.empty
  and divergent = ref Ps.empty
  and overshadow = ref Ps.empty
  and trap = ref None in
  for i = 0 to Bitval.bits_in width - 1 do
    let corrupt = Bitval.flip_bit clean i in
    values.(slot) <- corrupt;
    match classify_read e ~slot values ~corrupt with
    | Masked _ -> masked := Ps.add !masked i
    | Crash_certain t ->
      crash := Ps.add !crash i;
      if !trap = None then trap := Some t
    | Divergent -> divergent := Ps.add !divergent i
    | Changed { overshadow = o; _ } ->
      if o then overshadow := Ps.add !overshadow i
  done;
  mk ~width ~mask_kind ~masked:!masked ~crash:!crash ?trap:!trap
    ~divergent:!divergent ~overshadow:!overshadow ()

let analyze_all (e : Event.t) (kind : Consume.kind) =
  match kind with
  | Consume.Store_dest ->
    let width =
      match e.instr with
      | I.Store (ty, _, _) -> Moard_ir.Types.width ty
      | _ ->
        invalid_arg "Masking.analyze_all: store destination of a non-store"
    in
    {
      width;
      masked = Ps.full ~width;
      mask_kind = Verdict.Overwrite;
      crash = Ps.empty;
      trap = None;
      divergent = Ps.empty;
      changed = Ps.empty;
      overshadow = Ps.empty;
    }
  | Consume.Read { slot } -> (
    check_read_site e ~slot;
    let a = (e.reads.(slot).Event.value : Bitval.t) in
    let width = a.Bitval.width in
    let mask_kind = Reexec.exact_mask_kind e.instr ~slot in
    let mk = mk ~width ~mask_kind in
    let dflt () = scan e ~slot ~width ~mask_kind in
    let wreg = match e.write with Event.Wreg _ -> true | _ -> false in
    let bits_of i = (e.reads.(i).Event.value : Bitval.t).Bitval.bits in
    let same_width i =
      (e.reads.(i).Event.value : Bitval.t).Bitval.width = width
    in
    match e.instr with
    | I.Ibin (_, op, ty, _, _)
      when wreg
           && Array.length e.reads = 2
           && Moard_ir.Types.width ty = width
           && same_width (1 - slot) -> (
      let other = bits_of (1 - slot) in
      match op with
      | I.And -> mk ~masked:(Ps.band_masked ~other ~width) ()
      | I.Or -> mk ~masked:(Ps.bor_masked ~other ~width) ()
      | I.Xor -> mk ~masked:(Ps.bxor_masked ~width) ()
      | I.Add | I.Sub ->
        mk
          ~masked:(Ps.addsub_masked ~width)
          ~overshadow:(Ps.addsub_overshadow ~a:a.Bitval.bits ~other ~width)
          ()
      | I.Mul -> mk ~masked:(Ps.mul_masked ~other ~width) ()
      | (I.Shl | I.Lshr | I.Ashr) when slot = 0 ->
        (* The clean shift amount, normalized exactly as Semantics.ibin
           and Semantics.shift_result do: any amount outside
           [0, bits_in width) yields the constant out-of-range result. *)
        let a64 = Bitval.to_int64 e.reads.(1).Event.value in
        let amount =
          if
            Int64.compare a64 0L < 0
            || Int64.compare a64 (Int64.of_int (Bitval.bits_in width)) >= 0
          then -1
          else Int64.to_int a64
        in
        (match op with
        | I.Shl -> mk ~masked:(Ps.shl_value_masked ~amount ~width) ()
        | I.Lshr -> mk ~masked:(Ps.lshr_value_masked ~amount ~width) ()
        | _ -> mk ~masked:(Ps.ashr_value_masked ~amount ~width) ())
      | I.Shl | I.Lshr | I.Ashr | I.Sdiv | I.Srem ->
        (* Corrupted shift amounts and division (where the certain traps
           arise): scalar fallback. *)
        dflt ())
    | I.Icmp (_, (I.Ieq | I.Ine), _, _, _)
      when wreg && Array.length e.reads = 2 && same_width (1 - slot) ->
      mk
        ~masked:(Ps.eq_masked ~a:a.Bitval.bits ~b:(bits_of (1 - slot)) ~width)
        ()
    | I.Cast (_, I.Trunc_to_i32, _) when wreg ->
      mk ~masked:(Ps.trunc_masked ~width) ()
    | I.Cast
        (_, (I.Sext_to_i64 | I.Zext_to_i64 | I.Bitcast_f_to_i
            | I.Bitcast_i_to_f), _)
      when wreg ->
      (* extensions and bitcasts are injective in the operand bits *)
      mk ()
    | I.Gep (_, _, _, scale) when wreg && width = Bitval.W64 ->
      if slot = 1 then
        (* index: the product index*scale moves by ±2^i·scale mod 2^64 *)
        mk ~masked:(Ps.mul_masked ~other:(Int64.of_int scale) ~width) ()
      else
        (* base: the address moves by ±2^i mod 2^64 — never masked *)
        mk ~masked:(Ps.addsub_masked ~width) ()
    | I.Select _ when wreg && Array.length e.reads = 3 ->
      if slot = 0 then
        if width = Bitval.W1 then
          if Bitval.equal e.reads.(1).Event.value e.reads.(2).Event.value then
            mk ~masked:(Ps.full ~width) ()
          else mk ()
        else dflt ()
      else
        let chosen = Bitval.to_bool e.reads.(0).Event.value in
        if (slot = 1) = chosen then mk () else mk ~masked:(Ps.full ~width) ()
    | I.Store _
      when slot = 0
           && (match e.write with Event.Wmem _ -> true | _ -> false) ->
      (* The stored value always changes. The address operand (slot 1)
         takes the fallback for the address-truncation edge case. *)
      mk ()
    | I.Cbr (_, l1, l2) when width = Bitval.W1 ->
      if l1 = l2 then mk ~masked:(Ps.full ~width) ()
      else mk ~divergent:(Ps.full ~width) ()
    | _ -> dflt ())

let changed_out_at (e : Event.t) kind ~bit =
  match analyze e kind (Pattern.Single bit) with
  | Changed { out; overshadow } -> (out, overshadow)
  | Masked _ | Crash_certain _ | Divergent ->
    invalid_arg "Masking.changed_out_at: not a changed bit"
