(** MiniC: the small typed imperative language the benchmark kernels are
    written in.

    It plays the role of C in the paper's pipeline: kernels are written once
    at statement level and compiled to the IR, so the dynamic traces have
    the same shape (loads, arithmetic, compares, branches, stores) that an
    LLVM front end would produce for the original benchmarks.

    Scalars are [i64]/[f64]/[bool] locals living in virtual registers;
    arrays are always program globals, so every array is addressable as a
    data object. 32-bit integer arrays ([i32] elements) model the C [int]
    index arrays of the NPB benchmarks (colidx, grid_points, ...). *)

type ty = Tbool | Ti32 | Ti64 | Tf64

type bin =
  | Badd | Bsub | Bmul | Bdiv | Brem
  | Bland | Blor | Blxor
  | Bshl | Bshr | Bashr

type cmp = Clt | Cle | Cgt | Cge | Ceq | Cne

type expr =
  | Ebool of bool
  | Ei64 of int64
  | Ef64 of float
  | Evar of string
  | Eload of string * expr        (** [g\[e\]] *)
  | Ebin of bin * expr * expr
  | Ecmp of cmp * expr * expr
  | Eand of expr * expr           (** short-circuit *)
  | Eor of expr * expr            (** short-circuit *)
  | Enot of expr
  | Eneg of expr
  | Ecall of string * expr list
  | Ecast of ty * expr

type stmt =
  | Slocal of string * ty * expr  (** declare and initialize a local scalar *)
  | Sassign of string * expr
  | Sstore of string * expr * expr  (** [g\[e1\] = e2] *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of string * expr * expr * stmt list
      (** [for (v = lo; v < hi; v++) body]; [hi] re-evaluated each trip *)
  | Sbreak
  | Sexpr of expr                 (** call evaluated for its effects *)
  | Sreturn of expr option

type fundef = {
  name : string;
  params : (string * ty) list;
  ret : ty option;
  body : stmt list;
}

type program = {
  globals : Moard_ir.Program.global list;
  funs : fundef list;
}

(** Combinators for writing kernels concisely. Kernels [open Ast.Dsl]
    locally; the arithmetic operators intentionally shadow the stdlib ones
    inside that scope. *)
module Dsl = struct
  let i n = Ei64 (Int64.of_int n)
  let i64 n = Ei64 n
  let f x = Ef64 x
  let b x = Ebool x
  let v name = Evar name

  let ( .%() ) name e = Eload (name, e)

  let ( + ) a b = Ebin (Badd, a, b)
  let ( - ) a b = Ebin (Bsub, a, b)
  let ( * ) a b = Ebin (Bmul, a, b)
  let ( / ) a b = Ebin (Bdiv, a, b)
  let ( % ) a b = Ebin (Brem, a, b)
  let neg a = Eneg a

  let ( land ) a b = Ebin (Bland, a, b)
  let ( lor ) a b = Ebin (Blor, a, b)
  let ( lxor ) a b = Ebin (Blxor, a, b)
  let ( lsl ) a b = Ebin (Bshl, a, b)
  let ( lsr ) a b = Ebin (Bshr, a, b)
  let ( asr ) a b = Ebin (Bashr, a, b)

  let ( < ) a b = Ecmp (Clt, a, b)
  let ( <= ) a b = Ecmp (Cle, a, b)
  let ( > ) a b = Ecmp (Cgt, a, b)
  let ( >= ) a b = Ecmp (Cge, a, b)
  let ( == ) a b = Ecmp (Ceq, a, b)
  let ( != ) a b = Ecmp (Cne, a, b)

  let ( && ) a b = Eand (a, b)
  let ( || ) a b = Eor (a, b)
  let not_ a = Enot a

  let call name args = Ecall (name, args)

  (* SPMD primitives: lane identity as i64 expressions, and the
     whole-program barrier statement. Loops stride by [hart_count()] so
     one program text serves any hart count. *)
  let hart_id = Ecall ("hart_id", [])
  let hart_count = Ecall ("hart_count", [])
  let barrier_ = Sexpr (Ecall ("barrier", []))

  let sqrt_ a = Ecall ("sqrt", [ a ])
  let fabs_ a = Ecall ("fabs", [ a ])
  let sin_ a = Ecall ("sin", [ a ])
  let cos_ a = Ecall ("cos", [ a ])
  let exp_ a = Ecall ("exp", [ a ])
  let log_ a = Ecall ("log", [ a ])
  let pow_ a e = Ecall ("pow", [ a; e ])
  let fmin_ a c = Ecall ("fmin", [ a; c ])
  let fmax_ a c = Ecall ("fmax", [ a; c ])

  let to_f e = Ecast (Tf64, e)
  let to_i e = Ecast (Ti64, e)

  let local name ty e = Slocal (name, ty, e)
  let int_ name e = Slocal (name, Ti64, e)
  let flt_ name e = Slocal (name, Tf64, e)
  let ( <-- ) name e = Sassign (name, e)
  let ( .%()<- ) name idx e = Sstore (name, idx, e)
  let if_ c t e = Sif (c, t, e)
  let when_ c t = Sif (c, t, [])
  let while_ c body = Swhile (c, body)
  let for_ var lo hi body = Sfor (var, lo, hi, body)
  let break_ = Sbreak
  let do_ e = Sexpr e
  let ret e = Sreturn (Some e)
  let ret_void = Sreturn None

  let fn name ?(params = []) ?ret body = { name; params; ret; body }

  let garr_f64 name elems =
    { Moard_ir.Program.gname = name; gty = Moard_ir.Types.F64; gelems = elems;
      ginit = Moard_ir.Program.Zeros }

  let garr_f64_init name values =
    { Moard_ir.Program.gname = name; gty = Moard_ir.Types.F64;
      gelems = Array.length values; ginit = Moard_ir.Program.Floats values }

  let garr_i64 name elems =
    { Moard_ir.Program.gname = name; gty = Moard_ir.Types.I64; gelems = elems;
      ginit = Moard_ir.Program.Zeros }

  let garr_i64_init name values =
    { Moard_ir.Program.gname = name; gty = Moard_ir.Types.I64;
      gelems = Array.length values; ginit = Moard_ir.Program.I64s values }

  let garr_i32 name elems =
    { Moard_ir.Program.gname = name; gty = Moard_ir.Types.I32; gelems = elems;
      ginit = Moard_ir.Program.Zeros }

  let garr_i32_init name values =
    { Moard_ir.Program.gname = name; gty = Moard_ir.Types.I32;
      gelems = Array.length values; ginit = Moard_ir.Program.I32s values }
end
