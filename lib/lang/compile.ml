module I = Moard_ir.Instr
module T = Moard_ir.Types
module P = Moard_ir.Program
module B = Moard_ir.Builder
module Bitval = Moard_bits.Bitval
open Ast

exception Type_error of string

let err fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let string_of_ty = function
  | Tbool -> "bool"
  | Ti32 -> "i32"
  | Ti64 -> "i64"
  | Tf64 -> "f64"

type env = {
  b : B.t;
  vars : (string, I.reg * ty) Hashtbl.t;
  funs : (string, fundef) Hashtbl.t;
  globals : (string, P.global) Hashtbl.t;
  fname : string;
  fret : ty option;
  mutable loop_exits : int list;
}

let lookup_var env name =
  match Hashtbl.find_opt env.vars name with
  | Some x -> x
  | None -> err "%s: unknown variable %s" env.fname name

let lookup_global env name =
  match Hashtbl.find_opt env.globals name with
  | Some g -> g
  | None -> err "%s: unknown array %s" env.fname name

let imm_i64 n = I.Imm (Bitval.of_int64 n)
let imm_f64 x = I.Imm (Bitval.of_float x)
let imm_bool x = I.Imm (Bitval.of_bool x)

let ibin_of = function
  | Badd -> I.Add | Bsub -> I.Sub | Bmul -> I.Mul | Bdiv -> I.Sdiv
  | Brem -> I.Srem | Bland -> I.And | Blor -> I.Or | Blxor -> I.Xor
  | Bshl -> I.Shl | Bshr -> I.Lshr | Bashr -> I.Ashr

let fbin_of = function
  | Badd -> Some I.Fadd | Bsub -> Some I.Fsub
  | Bmul -> Some I.Fmul | Bdiv -> Some I.Fdiv
  | Brem | Bland | Blor | Blxor | Bshl | Bshr | Bashr -> None

let icmp_of = function
  | Clt -> I.Islt | Cle -> I.Isle | Cgt -> I.Isgt | Cge -> I.Isge
  | Ceq -> I.Ieq | Cne -> I.Ine

let fcmp_of = function
  | Clt -> I.Folt | Cle -> I.Fole | Cgt -> I.Fogt | Cge -> I.Foge
  | Ceq -> I.Foeq | Cne -> I.Fone

(* Address of g[idx]; returns the operand holding the address and the
   element type. *)
let rec addr_of env gname idx =
  let g = lookup_global env gname in
  let iop, ity = expr env idx in
  if ity <> Ti64 then err "%s: index into %s must be integer" env.fname gname;
  let scale = T.size g.P.gty in
  let a = B.gep env.b ~base:(I.Glob gname) ~index:iop ~scale in
  (I.Reg a, g.P.gty)

(* Compile an expression; returns its operand and MiniC type (Ti32 never
   escapes: i32 loads are widened immediately). *)
and expr env e : I.operand * ty =
  match e with
  | Ebool x -> (imm_bool x, Tbool)
  | Ei64 n -> (imm_i64 n, Ti64)
  | Ef64 x -> (imm_f64 x, Tf64)
  | Evar name ->
    let r, ty = lookup_var env name in
    (I.Reg r, ty)
  | Eload (gname, idx) -> (
    let a, ety = addr_of env gname idx in
    let r = B.load env.b ety a in
    match ety with
    | T.F64 -> (I.Reg r, Tf64)
    | T.I64 -> (I.Reg r, Ti64)
    | T.I32 ->
      let wide = B.cast env.b I.Sext_to_i64 (I.Reg r) in
      (I.Reg wide, Ti64)
    | T.I1 | T.Ptr -> err "%s: unsupported array element type" env.fname)
  | Eneg a -> (
    let op, ty = expr env a in
    match ty with
    | Ti64 -> (I.Reg (B.ibin env.b I.Sub T.I64 (imm_i64 0L) op), Ti64)
    | Tf64 -> (I.Reg (B.fbin env.b I.Fsub (imm_f64 (-0.0)) op), Tf64)
    | Tbool | Ti32 -> err "%s: cannot negate a %s" env.fname (string_of_ty ty))
  | Ebin (op, a, c) -> (
    let x, tx = expr env a in
    let y, ty_ = expr env c in
    match (tx, ty_) with
    | Ti64, Ti64 -> (I.Reg (B.ibin env.b (ibin_of op) T.I64 x y), Ti64)
    | Tf64, Tf64 -> (
      match fbin_of op with
      | Some fop -> (I.Reg (B.fbin env.b fop x y), Tf64)
      | None -> err "%s: operator not defined on floats" env.fname)
    | _ ->
      err "%s: operand type mismatch (%s vs %s); use to_f/to_i" env.fname
        (string_of_ty tx) (string_of_ty ty_))
  | Ecmp (op, a, c) -> (
    let x, tx = expr env a in
    let y, ty_ = expr env c in
    match (tx, ty_) with
    | Ti64, Ti64 -> (I.Reg (B.icmp env.b (icmp_of op) T.I64 x y), Tbool)
    | Tf64, Tf64 -> (I.Reg (B.fcmp env.b (fcmp_of op) x y), Tbool)
    | Tbool, Tbool when op = Ceq || op = Cne ->
      (I.Reg (B.icmp env.b (icmp_of op) T.I64 x y), Tbool)
    | _ ->
      err "%s: comparison type mismatch (%s vs %s)" env.fname
        (string_of_ty tx) (string_of_ty ty_))
  | Eand (a, c) -> short_circuit env ~first:a ~second:c ~on_false:true
  | Eor (a, c) -> short_circuit env ~first:a ~second:c ~on_false:false
  | Enot a ->
    let x, tx = expr env a in
    if tx <> Tbool then err "%s: not on non-bool" env.fname;
    (I.Reg (B.select env.b x (imm_bool false) (imm_bool true)), Tbool)
  | Ecall (name, args) -> (
    match call env name args with
    | Some (op, ty) -> (op, ty)
    | None -> err "%s: %s returns no value" env.fname name)
  | Ecast (target, a) -> (
    let x, tx = expr env a in
    match (tx, target) with
    | Ti64, Tf64 -> (I.Reg (B.cast env.b I.Si_to_fp x), Tf64)
    | Tf64, Ti64 -> (I.Reg (B.cast env.b I.Fp_to_si x), Ti64)
    | t, t' when t = t' -> (x, tx)
    | _ ->
      err "%s: unsupported cast %s -> %s" env.fname (string_of_ty tx)
        (string_of_ty target))

(* Short-circuit boolean connectives: evaluate [first]; if it already
   decides the result, skip [second]. [on_false] true = conjunction. *)
and short_circuit env ~first ~second ~on_false =
  let x, tx = expr env first in
  if tx <> Tbool then err "%s: boolean connective on non-bool" env.fname;
  let res = B.fresh env.b in
  let eval_second = B.new_block env.b in
  let done_ = B.new_block env.b in
  B.mov env.b res x;
  if on_false then B.cbr env.b x eval_second done_
  else B.cbr env.b x done_ eval_second;
  B.switch_to env.b eval_second;
  let y, ty_ = expr env second in
  if ty_ <> Tbool then err "%s: boolean connective on non-bool" env.fname;
  B.mov env.b res y;
  B.br env.b done_;
  B.switch_to env.b done_;
  (I.Reg res, Tbool)

(* Compile a call; returns None for procedures. *)
and call env name args : (I.operand * ty) option =
  match Hashtbl.find_opt env.funs name with
  | Some fd ->
    if List.length args <> List.length fd.params then
      err "%s: %s expects %d arguments" env.fname name (List.length fd.params);
    let ops =
      List.map2
        (fun (pname, pty) arg ->
          let op, t = expr env arg in
          if t <> pty then
            err "%s: argument %s of %s has type %s, expected %s" env.fname
              pname name (string_of_ty t) (string_of_ty pty);
          op)
        fd.params args
    in
    (match fd.ret with
    | Some rty -> Some (I.Reg (B.call env.b name ops), rty)
    | None ->
      B.call_void env.b name ops;
      None)
  | None when List.mem name Moard_vm.Semantics.hart_intrinsics ->
    (* Hart primitives are nullary machine-level calls: the scheduler, not
       pure semantics, supplies their results. [barrier] is a procedure;
       the lane identities are i64. *)
    if args <> [] then err "%s: %s takes no arguments" env.fname name;
    if String.equal name "barrier" then begin
      B.call_void env.b name [];
      None
    end
    else Some (I.Reg (B.call env.b name []), Ti64)
  | None -> (
    match Moard_vm.Semantics.intrinsic_arity name with
    | Some n ->
      if List.length args <> n then
        err "%s: intrinsic %s expects %d arguments" env.fname name n;
      let ops =
        List.map
          (fun arg ->
            let op, t = expr env arg in
            if t <> Tf64 then
              err "%s: intrinsic %s takes f64 arguments" env.fname name;
            op)
          args
      in
      Some (I.Reg (B.call env.b name ops), Tf64)
    | None -> err "%s: unknown function %s" env.fname name)

and stmt env s =
  match s with
  | Slocal (name, ty, init) ->
    if ty = Ti32 then err "%s: local scalars are i64/f64/bool" env.fname;
    let op, t = expr env init in
    if t <> ty then
      err "%s: initializer of %s has type %s, expected %s" env.fname name
        (string_of_ty t) (string_of_ty ty);
    (* C-style function-wide locals: re-declaring the same name at the
       same type reuses the slot (common for loop-body temporaries). *)
    let r =
      match Hashtbl.find_opt env.vars name with
      | Some (r, ty') ->
        if ty' <> ty then
          err "%s: variable %s redeclared at a different type" env.fname name;
        r
      | None -> B.fresh env.b
    in
    B.mov env.b r op;
    Hashtbl.replace env.vars name (r, ty)
  | Sassign (name, e) ->
    let r, ty = lookup_var env name in
    let op, t = expr env e in
    if t <> ty then
      err "%s: assigning %s to %s : %s" env.fname (string_of_ty t) name
        (string_of_ty ty);
    B.mov env.b r op
  | Sstore (gname, idx, e) -> (
    let a, ety = addr_of env gname idx in
    let op, t = expr env e in
    match (ety, t) with
    | T.F64, Tf64 -> B.store env.b T.F64 ~value:op ~addr:a
    | T.I64, Ti64 -> B.store env.b T.I64 ~value:op ~addr:a
    | T.I32, Ti64 ->
      let narrow = B.cast env.b I.Trunc_to_i32 op in
      B.store env.b T.I32 ~value:(I.Reg narrow) ~addr:a
    | _ ->
      err "%s: storing %s into %s array %s" env.fname (string_of_ty t)
        (T.to_string ety) gname)
  | Sif (c, then_, else_) ->
    let cop, ct = expr env c in
    if ct <> Tbool then err "%s: if condition must be bool" env.fname;
    let bt = B.new_block env.b in
    let be = B.new_block env.b in
    let join = B.new_block env.b in
    B.cbr env.b cop bt be;
    B.switch_to env.b bt;
    List.iter (stmt env) then_;
    B.br env.b join;
    B.switch_to env.b be;
    List.iter (stmt env) else_;
    B.br env.b join;
    B.switch_to env.b join
  | Swhile (c, body) ->
    let header = B.new_block env.b in
    let bbody = B.new_block env.b in
    let exit_ = B.new_block env.b in
    B.br env.b header;
    B.switch_to env.b header;
    let cop, ct = expr env c in
    if ct <> Tbool then err "%s: while condition must be bool" env.fname;
    B.cbr env.b cop bbody exit_;
    B.switch_to env.b bbody;
    env.loop_exits <- exit_ :: env.loop_exits;
    List.iter (stmt env) body;
    env.loop_exits <- List.tl env.loop_exits;
    B.br env.b header;
    B.switch_to env.b exit_
  | Sfor (var, lo, hi, body) ->
    if Hashtbl.mem env.vars var then
      err "%s: loop variable %s shadows an existing variable" env.fname var;
    let lop, lt = expr env lo in
    if lt <> Ti64 then err "%s: for bounds must be integers" env.fname;
    let r = B.fresh env.b in
    B.mov env.b r lop;
    Hashtbl.replace env.vars var (r, Ti64);
    let header = B.new_block env.b in
    let bbody = B.new_block env.b in
    let exit_ = B.new_block env.b in
    B.br env.b header;
    B.switch_to env.b header;
    let hop, ht = expr env hi in
    if ht <> Ti64 then err "%s: for bounds must be integers" env.fname;
    let c = B.icmp env.b I.Islt T.I64 (I.Reg r) hop in
    B.cbr env.b (I.Reg c) bbody exit_;
    B.switch_to env.b bbody;
    env.loop_exits <- exit_ :: env.loop_exits;
    List.iter (stmt env) body;
    env.loop_exits <- List.tl env.loop_exits;
    let next = B.ibin env.b I.Add T.I64 (I.Reg r) (imm_i64 1L) in
    B.mov env.b r (I.Reg next);
    B.br env.b header;
    B.switch_to env.b exit_;
    Hashtbl.remove env.vars var
  | Sbreak -> (
    match env.loop_exits with
    | exit_ :: _ ->
      B.br env.b exit_;
      B.switch_to env.b (B.new_block env.b)
    | [] -> err "%s: break outside a loop" env.fname)
  | Sexpr e ->
    (match e with
    | Ecall (name, args) -> ignore (call env name args)
    | _ -> ignore (expr env e))
  | Sreturn eopt ->
    (match (eopt, env.fret) with
    | None, None -> B.ret env.b None
    | Some e, Some rty ->
      let op, t = expr env e in
      if t <> rty then
        err "%s: returning %s, expected %s" env.fname (string_of_ty t)
          (string_of_ty rty);
      B.ret env.b (Some op)
    | None, Some _ -> err "%s: missing return value" env.fname
    | Some _, None -> err "%s: returning a value from a procedure" env.fname);
    B.switch_to env.b (B.new_block env.b)

let compile_fun ~funs ~globals (fd : fundef) =
  let b = B.create ~name:fd.name ~nparams:(List.length fd.params) in
  let vars = Hashtbl.create 16 in
  List.iteri
    (fun i (pname, pty) ->
      if pty = Ti32 then raise (Type_error "i32 parameters are unsupported");
      Hashtbl.replace vars pname (i, pty))
    fd.params;
  let env =
    { b; vars; funs; globals; fname = fd.name; fret = fd.ret; loop_exits = [] }
  in
  List.iter (stmt env) fd.body;
  (* Fallback terminator for the control path that falls off the end. *)
  (match fd.ret with
  | None -> B.ret b None
  | Some Tf64 -> B.ret b (Some (imm_f64 0.0))
  | Some Tbool -> B.ret b (Some (imm_bool false))
  | Some _ -> B.ret b (Some (imm_i64 0L)));
  B.finish b

let program (p : Ast.program) =
  let funs = Hashtbl.create 16 in
  List.iter
    (fun (fd : fundef) ->
      if Hashtbl.mem funs fd.name then
        raise (Type_error ("duplicate function " ^ fd.name));
      Hashtbl.replace funs fd.name fd)
    p.funs;
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (g : P.global) -> Hashtbl.replace globals g.P.gname g)
    p.globals;
  let compiled = List.map (compile_fun ~funs ~globals) p.funs in
  { P.globals = p.globals; funcs = compiled }

let check p =
  match program p with
  | (_ : P.t) -> Ok ()
  | exception Type_error msg -> Error msg
