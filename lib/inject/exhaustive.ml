module Consume = Moard_trace.Consume
module Errmodel = Moard_bits.Errmodel

type result = {
  object_name : string;
  sites : int;
  injections : int;
  same : int;
  acceptable : int;
  incorrect : int;
  crashed : int;
  success_rate : float;
  runs : int;
  cache_hits : int;
}

let stride_patterns model stride site =
  let all = Errmodel.patterns model site.Consume.width in
  List.filteri (fun i _ -> i mod stride = 0) all

let campaign ?(model = Errmodel.Single_bit) ?(pattern_stride = 1)
    ?(batch = true) ?cancel ctx ~object_name =
  if pattern_stride < 1 then invalid_arg "Exhaustive.campaign: stride";
  let obj = Context.object_of ctx object_name in
  let sites =
    (* Valid fault sites are bits of instruction *operands* holding values
       of the object (paper SV-B); a flip of a store destination dies
       unconsumed at the very next instruction, so it is not a valid
       injection site. *)
    Consume.of_tape ~segment:(Context.segment ctx) (Context.tape ctx) obj
    |> List.filter (fun s ->
           match s.Consume.kind with
           | Consume.Read _ -> true
           | Consume.Store_dest -> false)
  in
  let runs0 = Context.runs ctx and hits0 = Context.cache_hits ctx in
  let same = ref 0
  and acceptable = ref 0
  and incorrect = ref 0
  and crashed = ref 0 in
  let injections = ref 0 in
  let tally = function
    | Outcome.Same -> incr same
    | Outcome.Acceptable -> incr acceptable
    | Outcome.Incorrect -> incr incorrect
    | Outcome.Crashed _ -> incr crashed
  in
  List.iter
    (fun site ->
      (match cancel with
      | Some c -> Moard_chaos.Cancel.check c
      | None -> ());
      if batch && pattern_stride = 1 then
        (* Whole pattern-set per site through the lane-parallel kernel;
           only the lanes it cannot decide are actually injected. *)
        Array.iter
          (fun o ->
            incr injections;
            tally o)
          (Resolve.site ~model ctx site)
      else
        List.iter
          (fun pattern ->
            incr injections;
            tally (Context.inject_at ctx site pattern))
          (stride_patterns model pattern_stride site))
    sites;
  let n = max !injections 1 in
  {
    object_name;
    sites = List.length sites;
    injections = !injections;
    same = !same;
    acceptable = !acceptable;
    incorrect = !incorrect;
    crashed = !crashed;
    success_rate = float_of_int (!same + !acceptable) /. float_of_int n;
    runs = Context.runs ctx - runs0;
    cache_hits = Context.cache_hits ctx - hits0;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%s: %d sites, %d injections -> %.4f success (same %d, acceptable %d, \
     incorrect %d, crashed %d; %d runs, %d cache hits)"
    r.object_name r.sites r.injections r.success_rate r.same r.acceptable
    r.incorrect r.crashed r.runs r.cache_hits
