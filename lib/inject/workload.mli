(** A workload: a program plus everything needed to judge the correctness
    of its outcome — the paper's notion of an application with an
    acceptance criterion rooted in algorithm semantics (§II-A).

    [outputs] names the globals holding the application outcome. Two runs
    are "numerically the same" when those globals are bit-identical; a
    numerically different run is "acceptable" when [accept] says the
    faulty outcome still satisfies the benchmark's own fidelity criterion
    (solver converged, residual under threshold, ...). *)

type t = {
  name : string;
  program : Moard_ir.Program.t;
  entry : string;
  segment : string list;
      (** function names making up the evaluated code segment (Table I);
          empty means the whole program *)
  targets : string list;  (** target data objects (global names) *)
  outputs : string list;  (** globals observed as the application outcome *)
  accept : golden:float array -> faulty:float array -> bool;
  step_limit : int;
  harts : int;
      (** cooperating harts every execution of this workload launches
          (golden run, checkpoints and injections alike); 1 = serial *)
}

val make :
  name:string ->
  program:Moard_ir.Program.t ->
  ?entry:string ->
  ?segment:string list ->
  targets:string list ->
  outputs:string list ->
  ?accept:(golden:float array -> faulty:float array -> bool) ->
  ?step_limit:int ->
  ?harts:int ->
  unit -> t
(** [entry] defaults to ["main"], [step_limit] to 20 million dynamic
    instructions, [accept] to a max-relative-error criterion of 1e-6,
    [harts] to 1 (serial execution).
    @raise Invalid_argument if [harts < 1]. *)

val rel_err_accept : float -> golden:float array -> faulty:float array -> bool
(** Acceptance by maximum relative (absolute for near-zero golden values)
    elementwise error. Rejects NaN/infinite faulty values. *)

val in_segment : t -> string -> bool
