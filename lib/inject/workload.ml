type t = {
  name : string;
  program : Moard_ir.Program.t;
  entry : string;
  segment : string list;
  targets : string list;
  outputs : string list;
  accept : golden:float array -> faulty:float array -> bool;
  step_limit : int;
  harts : int;
}

let rel_err_accept tol ~golden ~faulty =
  Array.length golden = Array.length faulty
  && Array.for_all2
       (fun g f ->
         if Float.is_nan f || not (Float.is_finite f) then false
         else
           let scale = Float.max (Float.abs g) 1e-30 in
           Float.abs (f -. g) /. scale <= tol
           || Float.abs (f -. g) <= tol *. 1e-12)
       golden faulty

let make ~name ~program ?(entry = "main") ?(segment = []) ~targets ~outputs
    ?(accept = rel_err_accept 1e-6) ?(step_limit = 20_000_000) ?(harts = 1) ()
    =
  if harts < 1 then invalid_arg "Workload.make: harts must be positive";
  { name; program; entry; segment; targets; outputs; accept; step_limit; harts }

let in_segment t fn =
  match t.segment with [] -> true | fns -> List.mem fn fns
