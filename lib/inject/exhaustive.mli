(** Exhaustive fault injection (paper §V-B).

    Injects into every valid fault site of a data object — every bit of
    every instruction operand holding a value of the object within the
    evaluated code segment — and reports the success rate. Ground truth
    for validating aDVF, accelerated by the error-equivalence cache. *)

type result = {
  object_name : string;
  sites : int;        (** consumption sites *)
  injections : int;   (** faults injected (sites x patterns / stride) *)
  same : int;
  acceptable : int;
  incorrect : int;
  crashed : int;
  success_rate : float;
  runs : int;         (** actual program executions *)
  cache_hits : int;
}

val campaign :
  ?model:Moard_bits.Errmodel.t ->
  ?pattern_stride:int -> ?batch:bool -> ?cancel:Moard_chaos.Cancel.t ->
  Context.t -> object_name:string -> result
(** [model] (default [Single_bit]) selects the error-pattern family swept
    per site. [pattern_stride] > 1 samples every n-th pattern (documented
    speed knob; 1 = truly exhaustive). [batch] (default [true]) sweeps
    each site's whole pattern set through the lane-parallel kernel
    ({!Resolve.site}) and only executes the workload for the patterns the
    kernel cannot decide; outcomes (and therefore every count above
    except [runs]/[cache_hits], which report real executions) are
    identical either way. Batching applies only to full sweeps — a
    stride > 1 always takes the scalar path. [cancel] is checked before
    each site and raises {!Moard_chaos.Cancel.Cancelled} when tripped. *)

val pp_result : Format.formatter -> result -> unit
