(** Traditional random fault injection — the baseline aDVF is compared
    against (paper §V-C).

    Each test flips one uniformly chosen bit of one uniformly chosen valid
    fault site of the target object. The campaign size determines a margin
    of error at 95% confidence, as in the paper's statistical methodology
    [26]. *)

type result = {
  object_name : string;
  tests : int;
  successes : int;
  success_rate : float;
  margin_95 : float;
      (** half-width of the 95% Wilson score interval
          ({!Moard_stats.Confidence.margin}) *)
}

val campaign :
  ?use_cache:bool -> seed:int -> tests:int -> Context.t ->
  object_name:string -> result
(** [use_cache] defaults to false: the point of the baseline is to model
    what a practitioner running real injections sees. Deterministic for a
    given [seed]. *)

val pp_result : Format.formatter -> result -> unit
