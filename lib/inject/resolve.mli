(** Batched resolution of one consumption site: the injection outcome of
    every pattern of an error model, in one call.

    Composes the lane-parallel masking kernel
    ({!Moard_analysis.Masking.analyze_all}) with the vectorized
    replay-to-end ({!Moard_analysis.Vreplay}, fed the golden-memory
    timeline so corrupted addresses resolve without running) and falls
    back to real, cached injections ({!Context.inject_at}) for the lanes
    neither can decide (control divergence, unresolvable accesses). The
    result is outcome-identical to injecting every pattern individually —
    which the differential tests assert on the whole Table-I registry —
    while typically executing the workload for only a small fraction of
    the patterns. *)

val site :
  ?model:Moard_bits.Errmodel.t ->
  ?lanes:Moard_bits.Patternset.t ->
  Context.t -> Moard_trace.Consume.t ->
  Outcome.t array
(** Outcomes indexed by lane of [model] (default [Single_bit], where lane
    [i] is the single-bit pattern flipping bit [i]). Length is
    [Errmodel.lanes model width] of the site. [lanes] (default: the full
    set) restricts resolution to a subset — the campaign engine's sampled
    lanes — so no work (in particular no fallback injection) is spent on
    lanes outside it; entries outside [lanes] are meaningless. *)

val analytic_bits :
  ?model:Moard_bits.Errmodel.t ->
  Context.t -> Moard_trace.Consume.t -> int * int
(** [(analytic, total)] lane counts of the site: how many of its
    patterns the batched kernel decides without running the workload
    (instrumentation for benchmarks and logs; performs no injections). *)
