(** Batched resolution of one consumption site: the injection outcome of
    every single-bit error pattern, in one call.

    Composes the bit-parallel masking kernel
    ({!Moard_analysis.Masking.analyze_all}) with the vectorized
    replay-to-end ({!Moard_analysis.Vreplay}) and falls back to real,
    cached injections ({!Context.inject_at}) for the bits neither can
    decide (control divergence, wild accesses). The result is
    outcome-identical to injecting every pattern individually — which the
    differential tests assert on the whole Table-I registry — while
    typically executing the workload for only a small fraction of the
    patterns. *)

val site :
  ?bits:Moard_bits.Patternset.t -> Context.t -> Moard_trace.Consume.t ->
  Outcome.t array
(** Outcomes indexed by bit position, in the order of
    {!Moard_trace.Consume.patterns} (ascending single-bit patterns).
    Length is [Bitval.bits_in width] of the site. [bits] (default: the
    full set) restricts resolution to a subset of patterns — the campaign
    engine's sampled bits — so no work (in particular no fallback
    injection) is spent on bits outside it; entries outside [bits] are
    meaningless. *)

val analytic_bits : Context.t -> Moard_trace.Consume.t -> int * int
(** [(analytic, total)] pattern counts of the site: how many of its
    patterns the batched kernel decides without running the workload
    (instrumentation for benchmarks and logs; performs no injections). *)
