module Machine = Moard_vm.Machine
module Fault = Moard_vm.Fault
module Tape = Moard_trace.Tape
module Consume = Moard_trace.Consume
module Bitval = Moard_bits.Bitval
module Pattern = Moard_bits.Pattern

type key = {
  k_iid : Moard_ir.Iid.t;
  k_kind : int;          (* slot number, or -1 for store destination *)
  k_reads : int64 array; (* operand bit images of the dynamic instruction *)
  k_bits : int list;     (* bits flipped by the pattern *)
}

type t = {
  w : Workload.t;
  machine : Machine.t;
  tape : Tape.t;
  gmem : Moard_analysis.Gmem.t;
  golden_bits : int64 array;
  golden_floats : float array;
  golden_steps : int;
  out_objs : (Moard_trace.Data_object.t * int) list;
      (* output objects with their start index in the golden vectors *)
  cache : (key, Outcome.t) Hashtbl.t;
  mutable runs : int;
  mutable hits : int;
  mutable ckpt : (int * Machine.checkpoint) option;
      (* most recent golden-state checkpoint, keyed by event index *)
  mutable inject_work : int;
      (* dynamic instructions executed by injections and checkpoint builds *)
}

let observe_mem machine (w : Workload.t) mem =
  let bits = ref [] and floats = ref [] in
  List.iter
    (fun name ->
      let g = Moard_ir.Program.global w.program name in
      match g.Moard_ir.Program.gty with
      | Moard_ir.Types.F64 ->
        let a = Machine.read_f64s machine mem name in
        Array.iter
          (fun x ->
            bits := Int64.bits_of_float x :: !bits;
            floats := x :: !floats)
          a
      | Moard_ir.Types.I64 | Moard_ir.Types.Ptr ->
        let a = Machine.read_i64s machine mem name in
        Array.iter
          (fun x ->
            bits := x :: !bits;
            floats := Int64.to_float x :: !floats)
          a
      | Moard_ir.Types.I32 | Moard_ir.Types.I1 ->
        let a = Machine.read_i32s machine mem name in
        Array.iter
          (fun x ->
            bits := Int64.of_int32 x :: !bits;
            floats := Int32.to_float x :: !floats)
          a)
    w.outputs;
  (Array.of_list (List.rev !bits), Array.of_list (List.rev !floats))

(* Process-wide count of golden (traced) executions, across all domains:
   the observable the pipeline benchmark uses to prove the parallel driver
   runs the workload once, not once per domain. *)
let goldens = Atomic.make 0
let golden_executions () = Atomic.get goldens

let make (w : Workload.t) =
  let machine = Machine.load w.program in
  List.iter
    (fun name ->
      match Moard_ir.Program.global w.program name with
      | (_ : Moard_ir.Program.global) -> ()
      | exception Not_found ->
        invalid_arg ("Context.make: no global named " ^ name))
    (w.targets @ w.outputs);
  Atomic.incr goldens;
  let r, tape =
    Machine.trace ~step_limit:w.step_limit ~harts:w.harts machine
      ~entry:w.entry
  in
  (match r.Machine.outcome with
  | Machine.Finished _ -> ()
  | Machine.Trapped trap ->
    invalid_arg
      (Printf.sprintf "Context.make: golden run of %s trapped: %s" w.name
         (Moard_vm.Trap.to_string trap)));
  let golden_bits, golden_floats = observe_mem machine w r.Machine.mem in
  let out_objs =
    List.rev
      (fst
         (List.fold_left
            (fun (acc, start) name ->
              let o = Machine.object_of machine name in
              ((o, start) :: acc, start + o.Moard_trace.Data_object.elems))
            ([], 0) w.outputs))
  in
  {
    w;
    machine;
    tape;
    gmem = Moard_analysis.Gmem.build ~tape ~image:(Machine.image machine);
    golden_bits;
    golden_floats;
    golden_steps = r.Machine.steps;
    out_objs;
    cache = Hashtbl.create 4096;
    runs = 0;
    hits = 0;
    ckpt = None;
    inject_work = 0;
  }

let shard t =
  {
    t with
    cache = Hashtbl.create 4096;
    runs = 0;
    hits = 0;
    ckpt = None;
    inject_work = 0;
  }

let workload t = t.w
let machine t = t.machine
let tape t = t.tape
let gmem t = t.gmem
let golden_floats t = t.golden_floats
let golden_steps t = t.golden_steps
let object_of t name = Machine.object_of t.machine name
let segment t fn = Workload.in_segment t.w fn

let observe t mem = observe_mem t.machine t.w mem

let classify t (r : Machine.run) =
  match r.Machine.outcome with
  | Machine.Trapped trap -> Outcome.Crashed trap
  | Machine.Finished _ ->
    let bits, floats = observe t r.Machine.mem in
    if
      Array.length bits = Array.length t.golden_bits
      && Array.for_all2 Int64.equal bits t.golden_bits
    then Outcome.Same
    else if t.w.accept ~golden:t.golden_floats ~faulty:floats then
      Outcome.Acceptable
    else Outcome.Incorrect

exception Unpatchable

let classify_patched t patches =
  match patches with
  | [] -> Some Outcome.Same
  | _ -> (
    let bits = Array.copy t.golden_bits in
    let floats = Array.copy t.golden_floats in
    try
      List.iter
        (fun (addr, (v : Bitval.t), ty) ->
          let rec find = function
            | [] -> raise Unpatchable
            | (o, start) :: rest -> (
              match Moard_trace.Data_object.elem_of_addr o addr with
              | Some e -> (o, start + e)
              | None -> find rest)
          in
          let o, idx = find t.out_objs in
          let gty = o.Moard_trace.Data_object.ty in
          if Moard_ir.Types.size ty <> Moard_ir.Types.size gty then
            raise Unpatchable;
          (* Mirror [observe_mem] over a store/load round trip of [v] at
             the cell, per element type. *)
          match gty with
          | Moard_ir.Types.F64 ->
            let x = Int64.float_of_bits v.Bitval.bits in
            bits.(idx) <- Int64.bits_of_float x;
            floats.(idx) <- x
          | Moard_ir.Types.I64 | Moard_ir.Types.Ptr ->
            bits.(idx) <- v.Bitval.bits;
            floats.(idx) <- Int64.to_float v.Bitval.bits
          | Moard_ir.Types.I32 ->
            let x = Int64.to_int32 v.Bitval.bits in
            bits.(idx) <- Int64.of_int32 x;
            floats.(idx) <- Int32.to_float x
          | Moard_ir.Types.I1 ->
            let x = Int64.to_int32 (Int64.logand v.Bitval.bits 1L) in
            bits.(idx) <- Int64.of_int32 x;
            floats.(idx) <- Int32.to_float x)
        patches;
      Some
        (if Array.for_all2 Int64.equal bits t.golden_bits then Outcome.Same
         else if t.w.accept ~golden:t.golden_floats ~faulty:floats then
           Outcome.Acceptable
         else Outcome.Incorrect)
    with Unpatchable -> None)

(* A resumed injection skips the prefix both runs share: execution before
   the fault event is byte-identical to the golden run, so restarting from
   a golden-state checkpoint at that event is exact. The checkpoint slot
   caches the most recent fault event — lane sweeps of one site amortize
   one prefix execution across every lane they must ground-truth. *)
(* A slightly stale checkpoint is still exact — the resumed run replays
   the fault-free gap before the fault fires — and for clusters of nearby
   sites it saves rebuilding a near-identical prefix. The window bounds
   the per-run replay waste at a fraction of one prefix execution. *)
let ckpt_reuse_window = 256

let checkpoint_for t at =
  match t.ckpt with
  | Some (i, cp) when i <= at && at - i <= ckpt_reuse_window -> cp
  | _ ->
    let cp =
      Machine.checkpoint ~step_limit:t.w.step_limit ~harts:t.w.harts t.machine
        ~entry:t.w.entry ~at
    in
    t.inject_work <- t.inject_work + at;
    t.ckpt <- Some (at, cp);
    cp

let inject ?(resume = false) t fault =
  t.runs <- t.runs + 1;
  let r =
    if resume then begin
      let at = Fault.idx fault in
      let cp = checkpoint_for t at in
      let base = Machine.checkpoint_at cp in
      let r =
        Machine.run ~step_limit:t.w.step_limit ~fault ~from:cp t.machine
          ~entry:t.w.entry
      in
      t.inject_work <- t.inject_work + (r.Machine.steps - base);
      r
    end
    else begin
      let r =
        Machine.run ~step_limit:t.w.step_limit ~fault ~harts:t.w.harts
          t.machine ~entry:t.w.entry
      in
      t.inject_work <- t.inject_work + r.Machine.steps;
      r
    end
  in
  classify t r

let fault_of_site (site : Consume.t) pattern =
  match site.Consume.kind with
  | Consume.Read { slot } -> Fault.read ~idx:site.Consume.event_idx ~slot pattern
  | Consume.Store_dest -> Fault.store_dest ~idx:site.Consume.event_idx pattern

let key_of t (site : Consume.t) pattern =
  let e = Tape.get t.tape site.Consume.event_idx in
  {
    k_iid = e.Moard_trace.Event.iid;
    k_kind =
      (match site.Consume.kind with
      | Consume.Read { slot } -> slot
      | Consume.Store_dest -> -1);
    k_reads =
      Array.map
        (fun (r : Moard_trace.Event.read) -> (r.value : Bitval.t).bits)
        e.Moard_trace.Event.reads;
    k_bits = Pattern.bits_of pattern;
  }

type ekey = key

let ekey = key_of

let inject_at ?(use_cache = true) ?(resume = false) t site pattern =
  if not use_cache then inject ~resume t (fault_of_site site pattern)
  else
    let key = key_of t site pattern in
    match Hashtbl.find_opt t.cache key with
    | Some outcome ->
      t.hits <- t.hits + 1;
      outcome
    | None ->
      let outcome = inject ~resume t (fault_of_site site pattern) in
      Hashtbl.replace t.cache key outcome;
      outcome

let runs t = t.runs
let cache_hits t = t.hits
let inject_steps t = t.inject_work
