module Bitval = Moard_bits.Bitval
module Errmodel = Moard_bits.Errmodel
module Ps = Moard_bits.Patternset
module Tape = Moard_trace.Tape
module Consume = Moard_trace.Consume
module Masking = Moard_analysis.Masking
module Vreplay = Moard_analysis.Vreplay

let outputs_of ctx =
  List.map (Context.object_of ctx) (Context.workload ctx).Workload.outputs

let verdicts_of ?model ctx (s : Consume.t) =
  let e = Tape.get (Context.tape ctx) s.Consume.event_idx in
  (e, Masking.analyze_all ?model e s.Consume.kind)

let site ?(model = Errmodel.Single_bit) ?lanes ctx (s : Consume.t) =
  let e, v = verdicts_of ~model ctx s in
  let n = v.Masking.lanes in
  let wanted =
    match lanes with None -> Ps.full_n ~n | Some b -> b
  in
  let out = Array.make n Outcome.Same in
  (* Lanes no analysis can decide, in resolution order. Injected last:
     once it is known how many lanes of this site need ground truth, two
     or more amortize one golden-state checkpoint at the site across
     every resumed run ({!Context.inject_at} [~resume]). *)
  let pending = ref [] in
  let inject_later b = pending := b :: !pending in
  (* Operation-masked: the injected run is the golden run. *)
  (* Certain traps: the consuming operation itself crashes the run. *)
  Ps.iter
    (fun b -> out.(b) <- Outcome.Crashed (Masking.trap_of_lane v b))
    (Ps.inter v.Masking.crash wanted);
  (* Control divergence at the site: ground truth only. *)
  Ps.iter inject_later (Ps.inter v.Masking.divergent wanted);
  (* Changed: replay all wanted lanes to the end of the tape in one walk. *)
  let changed = Ps.inter v.Masking.changed wanted in
  if not (Ps.is_empty changed) then begin
    let seeds =
      Ps.fold
        (fun b acc ->
          (b, fst (Masking.changed_out_at ~model e s.Consume.kind ~lane:b)) :: acc)
        changed []
    in
    let fates =
      Vreplay.run ~gmem:(Context.gmem ctx) ~tape:(Context.tape ctx)
        ~outputs:(outputs_of ctx) ~start:s.Consume.event_idx ~seeds ()
    in
    Ps.iter
      (fun b ->
        match fates.(b) with
        | Vreplay.Same -> out.(b) <- Outcome.Same
        | Vreplay.Trap trap -> out.(b) <- Outcome.Crashed trap
        | Vreplay.Outputs patches -> (
          match Context.classify_patched ctx patches with
          | Some o -> out.(b) <- o
          | None -> inject_later b)
        | Vreplay.Unknown -> inject_later b)
      changed
  end;
  let pending = List.rev !pending in
  let resume = match pending with _ :: _ :: _ -> true | _ -> false in
  List.iter
    (fun b ->
      out.(b) <-
        Context.inject_at ~resume ctx s
          (Errmodel.pattern_at model v.Masking.width b))
    pending;
  out

let analytic_bits ?(model = Errmodel.Single_bit) ctx (s : Consume.t) =
  let e, v = verdicts_of ~model ctx s in
  let n = v.Masking.lanes in
  let analytic = ref (Ps.count v.Masking.masked + Ps.count v.Masking.crash) in
  if not (Ps.is_empty v.Masking.changed) then begin
    let seeds =
      Ps.fold
        (fun b acc ->
          (b, fst (Masking.changed_out_at ~model e s.Consume.kind ~lane:b)) :: acc)
        v.Masking.changed []
    in
    let fates =
      Vreplay.run ~gmem:(Context.gmem ctx) ~tape:(Context.tape ctx)
        ~outputs:(outputs_of ctx) ~start:s.Consume.event_idx ~seeds ()
    in
    Ps.iter
      (fun b ->
        match fates.(b) with
        | Vreplay.Same | Vreplay.Trap _ -> incr analytic
        | Vreplay.Outputs patches -> (
          match Context.classify_patched ctx patches with
          | Some _ -> incr analytic
          | None -> ())
        | Vreplay.Unknown -> ())
      v.Masking.changed
  end;
  (!analytic, n)
