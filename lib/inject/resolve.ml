module Bitval = Moard_bits.Bitval
module Pattern = Moard_bits.Pattern
module Ps = Moard_bits.Patternset
module Tape = Moard_trace.Tape
module Consume = Moard_trace.Consume
module Masking = Moard_analysis.Masking
module Vreplay = Moard_analysis.Vreplay

let outputs_of ctx =
  List.map (Context.object_of ctx) (Context.workload ctx).Workload.outputs

let verdicts_of ctx (s : Consume.t) =
  let e = Tape.get (Context.tape ctx) s.Consume.event_idx in
  (e, Masking.analyze_all e s.Consume.kind)

let site ?bits ctx (s : Consume.t) =
  let e, v = verdicts_of ctx s in
  let n = Bitval.bits_in v.Masking.width in
  let wanted =
    match bits with
    | None -> Ps.full ~width:v.Masking.width
    | Some b -> b
  in
  let out = Array.make n Outcome.Same in
  let inject_bit b = Context.inject_at ctx s (Pattern.Single b) in
  (* Operation-masked: the injected run is the golden run. *)
  (* Certain traps: the consuming operation itself crashes the run. *)
  Ps.iter
    (fun b -> out.(b) <- Outcome.Crashed (Option.get v.Masking.trap))
    (Ps.inter v.Masking.crash wanted);
  (* Control divergence at the site: ground truth only. *)
  Ps.iter (fun b -> out.(b) <- inject_bit b) (Ps.inter v.Masking.divergent wanted);
  (* Changed: replay all wanted bits to the end of the tape in one walk. *)
  let changed = Ps.inter v.Masking.changed wanted in
  if not (Ps.is_empty changed) then begin
    let seeds =
      Ps.fold
        (fun b acc ->
          (b, fst (Masking.changed_out_at e s.Consume.kind ~bit:b)) :: acc)
        changed []
    in
    let fates =
      Vreplay.run ~tape:(Context.tape ctx) ~outputs:(outputs_of ctx)
        ~start:s.Consume.event_idx ~seeds
    in
    Ps.iter
      (fun b ->
        out.(b) <-
          (match fates.(b) with
          | Vreplay.Same -> Outcome.Same
          | Vreplay.Trap trap -> Outcome.Crashed trap
          | Vreplay.Outputs patches -> (
            match Context.classify_patched ctx patches with
            | Some o -> o
            | None -> inject_bit b)
          | Vreplay.Unknown -> inject_bit b))
      changed
  end;
  out

let analytic_bits ctx (s : Consume.t) =
  let e, v = verdicts_of ctx s in
  let n = Bitval.bits_in v.Masking.width in
  let analytic = ref (Ps.count v.Masking.masked + Ps.count v.Masking.crash) in
  if not (Ps.is_empty v.Masking.changed) then begin
    let seeds =
      Ps.fold
        (fun b acc ->
          (b, fst (Masking.changed_out_at e s.Consume.kind ~bit:b)) :: acc)
        v.Masking.changed []
    in
    let fates =
      Vreplay.run ~tape:(Context.tape ctx) ~outputs:(outputs_of ctx)
        ~start:s.Consume.event_idx ~seeds
    in
    Ps.iter
      (fun b ->
        match fates.(b) with
        | Vreplay.Same | Vreplay.Trap _ -> incr analytic
        | Vreplay.Outputs patches -> (
          match Context.classify_patched ctx patches with
          | Some _ -> incr analytic
          | None -> ())
        | Vreplay.Unknown -> ())
      v.Masking.changed
  end;
  (!analytic, n)
