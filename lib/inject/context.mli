(** Deterministic fault injector (paper §IV).

    Holds the loaded machine, the golden run and its outputs, and the
    golden dynamic trace. Each injection re-runs the workload with one
    fault and classifies the outcome against the golden outputs.

    An error-equivalence cache (after Relyzer [7] / GangES [20], which the
    paper leverages for the same purpose) memoizes outcomes keyed on the
    static instruction, its operand values, the consumption site kind and
    the error pattern: two dynamic occurrences of one instruction with
    identical operand values and the same injected corruption are
    equivalent, so the second is resolved without a run. *)

type t

val make : Workload.t -> t
(** Loads the program, performs the golden run (traced; the tape comes
    back frozen and is therefore shareable across domains).
    @raise Invalid_argument if the golden run itself traps or any declared
    target/output global does not exist. *)

val shard : t -> t
(** A worker's view of the same analysis: shares the machine, the frozen
    golden tape and the golden outputs — all read-only — but owns a fresh
    error-equivalence cache and run counters, so shards can be used from
    different domains without synchronization and without re-executing the
    golden run. *)

val golden_executions : unit -> int
(** Process-wide count of golden (traced) workload executions performed by
    {!make}, across all domains. {!shard} performs none. *)

val workload : t -> Workload.t
val machine : t -> Moard_vm.Machine.t
val tape : t -> Moard_trace.Tape.t

val gmem : t -> Moard_analysis.Gmem.t
(** Golden-memory timeline of the golden tape (built once by {!make};
    immutable, shared by {!shard}). Feeds the vectorized replay's
    corrupted-address resolution. *)

val golden_floats : t -> float array
val golden_steps : t -> int
val object_of : t -> string -> Moard_trace.Data_object.t
val segment : t -> string -> bool

val observe : t -> Moard_vm.Memory.t -> int64 array * float array
(** Output vector of a finished run: raw bit images and float view. *)

val classify_patched :
  t ->
  (int * Moard_bits.Bitval.t * Moard_ir.Types.t) list ->
  Outcome.t option
(** Observation of a finished injected run whose final memory equals the
    golden memory except at the given [(addr, value-as-stored, store type)]
    cells — the terminal step of the batched kernel's replay-to-end
    ({!Moard_analysis.Vreplay}), equivalent to {!inject}'s classification
    of such a run but without executing anything. [None] when a patch
    falls outside the observed outputs, is not element-aligned, or was
    stored with a size other than the element's (the caller must fall
    back to a real injection). *)

val inject : ?resume:bool -> t -> Moard_vm.Fault.t -> Outcome.t
(** Uncached single injection. With [resume:true] the run restarts from a
    golden-state checkpoint at the fault event instead of from the
    pristine image — exact, because execution before the fault is
    byte-identical to the golden run — and only pays for the suffix. The
    context caches the most recent checkpoint, so sweeping many patterns
    of one site amortizes a single prefix execution. *)

val inject_at :
  ?use_cache:bool -> ?resume:bool -> t -> Moard_trace.Consume.t ->
  Moard_bits.Pattern.t -> Outcome.t
(** Injection at a consumption site of the golden trace, cached by error
    equivalence unless [use_cache:false]. [resume] as in {!inject}. *)

val fault_of_site : Moard_trace.Consume.t -> Moard_bits.Pattern.t -> Moard_vm.Fault.t

type ekey
(** An error-equivalence class: static instruction, operand bit images,
    consumption-site kind and flipped bits — the key of the internal
    outcome cache. Immutable; structural equality and [Hashtbl.hash] are
    meaningful, so it can key external tables. *)

val ekey : t -> Moard_trace.Consume.t -> Moard_bits.Pattern.t -> ekey
(** The equivalence class of an injection, exposed so campaign drivers can
    memoize outcomes {e partition-independently}: with the per-shard cache
    of {!inject_at}, which class member gets executed (and therefore which
    outcome the class memoizes) depends on how sites were dealt to shards;
    a driver that keys its own table with [ekey] and resolves each new
    class with the uncached {!inject} gets results that are bit-identical
    for any domain count. *)

val runs : t -> int
(** Fault-injection executions actually performed. *)

val cache_hits : t -> int

val inject_steps : t -> int
(** Total dynamic instructions executed on behalf of injections —
    full runs, checkpoint builds and resumed suffixes alike. The honest
    work metric when resumed runs make {!runs} alone misleading. *)
