module Consume = Moard_trace.Consume
module Bitval = Moard_bits.Bitval
module Pattern = Moard_bits.Pattern

type result = {
  object_name : string;
  tests : int;
  successes : int;
  success_rate : float;
  margin_95 : float;
}

let campaign ?(use_cache = false) ~seed ~tests ctx ~object_name =
  if tests <= 0 then invalid_arg "Random_fi.campaign: tests";
  let obj = Context.object_of ctx object_name in
  let sites =
    Consume.of_tape ~segment:(Context.segment ctx) (Context.tape ctx) obj
    |> List.filter (fun s ->
           match s.Consume.kind with
           | Consume.Read _ -> true
           | Consume.Store_dest -> false)
    |> Array.of_list
  in
  if Array.length sites = 0 then
    invalid_arg ("Random_fi.campaign: no fault sites for " ^ object_name);
  let rng = Random.State.make [| seed |] in
  let successes = ref 0 in
  for _ = 1 to tests do
    let site = sites.(Random.State.int rng (Array.length sites)) in
    let bit = Random.State.int rng (Bitval.bits_in site.Consume.width) in
    let outcome =
      Context.inject_at ~use_cache ctx site (Pattern.Single bit)
    in
    if Outcome.success outcome then incr successes
  done;
  let p = float_of_int !successes /. float_of_int tests in
  let margin = Moard_stats.Confidence.margin ~n:tests p in
  {
    object_name;
    tests;
    successes = !successes;
    success_rate = p;
    margin_95 = margin;
  }

let pp_result ppf r =
  Format.fprintf ppf "%s: %d tests -> %.4f +/- %.4f success" r.object_name
    r.tests r.success_rate r.margin_95
