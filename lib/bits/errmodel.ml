type t =
  | Single_bit
  | Double_adjacent
  | Byte_burst
  | Whole_word

let all = [ Single_bit; Double_adjacent; Byte_burst; Whole_word ]

let to_string = function
  | Single_bit -> "single-bit"
  | Double_adjacent -> "double-bit"
  | Byte_burst -> "byte-burst"
  | Whole_word -> "whole-word"

let of_string s =
  match
    List.find_opt (fun m -> String.equal (to_string m) s) all
  with
  | Some m -> Ok m
  | None ->
    Error
      (Printf.sprintf "unknown error model %S (expected one of: %s)" s
         (String.concat ", " (List.map to_string all)))

let lanes m width =
  let w = Bitval.bits_in width in
  match m with
  | Single_bit -> w
  | Double_adjacent -> max 1 (w - 1)
  | Byte_burst -> max 1 (w / 8)
  | Whole_word -> 1

let pattern_at m width i =
  let w = Bitval.bits_in width in
  if i < 0 || i >= lanes m width then
    invalid_arg "Errmodel.pattern_at: lane out of range";
  (* A W1 element degrades every model to the single possible flip, and
     we keep its canonical pattern [Single 0] across models so degenerate
     lanes share fault-cache keys with their single-bit counterparts. *)
  if w = 1 then Pattern.Single 0
  else
    match m with
    | Single_bit -> Pattern.Single i
    | Double_adjacent -> Pattern.Burst (i, 2)
    | Byte_burst -> Pattern.Burst (i * 8, 8)
    | Whole_word -> Pattern.Burst (0, w)

let patterns m width =
  List.init (lanes m width) (fun i -> pattern_at m width i)

let weight_den m =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let lcm a b = a / gcd a b * b in
  List.fold_left
    (fun acc width -> lcm acc (lanes m width))
    1
    [ Bitval.W1; Bitval.W32; Bitval.W64 ]

let flip_mask m width i =
  List.fold_left
    (fun acc b -> Int64.logor acc (Int64.shift_left 1L b))
    0L
    (Pattern.bits_of (pattern_at m width i))
