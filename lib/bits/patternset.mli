(** A set of error patterns over one operand word, stored as an [int64]
    bit mask: bit [i] of the set stands for lane [i] of the error model
    in force — pattern [Errmodel.pattern_at model width i]. Every model
    has at most 64 lanes at any width, so one word always suffices. Under
    the single-bit model lane [i] is exactly the pattern "flip bit [i] of
    the operand" ({!Pattern.Single}[ i]), the historical reading.

    The batched masking kernel ({!Moard_analysis.Masking.analyze_all})
    classifies all patterns of a consumption site in O(1) word operations
    where the paper's operation-level rules admit a closed form. Those
    closed forms live here as pure functions of the raw operand words, so
    they can be unit-tested against bit-by-bit enumeration without any IR
    or trace machinery. *)

type t = int64

val empty : t
val full : width:Bitval.width -> t
(** The low [bits_in width] bits set: every valid single-bit pattern. *)

val singleton : int -> t
val mem : t -> int -> bool
val add : t -> int -> t
val remove : t -> int -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val is_empty : t -> bool
val equal : t -> t -> bool
val count : t -> int
(** Population count. *)

val subset : t -> t -> bool
(** [subset a b]: every member of [a] is in [b]. *)

val iter : (int -> unit) -> t -> unit
(** Members in ascending bit order — the canonical pattern order
    ({!Pattern.singles}), which every consumer must preserve for
    bit-identical accounting. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold in ascending bit order. *)

val to_bits : t -> int list
(** Members, ascending. *)

val pp : Format.formatter -> t -> unit

(** {2 Closed-form masked-sets}

    Each function answers: for which flipped bit positions [i] does the
    operation's result not change at all?  Arguments are the *clean*
    operand words, already masked to the operation's width; the returned
    set is a subset of [full ~width].  Derivations are documented in
    DESIGN.md §11. *)

val band_masked : other:int64 -> width:Bitval.width -> t
(** [x land other]: a flip of bit [i] of [x] vanishes iff [other] has
    bit [i] clear — the masked set is [lnot other]. *)

val bor_masked : other:int64 -> width:Bitval.width -> t
(** [x lor other]: masked iff [other] has bit [i] set. *)

val bxor_masked : width:Bitval.width -> t
(** [x lxor other]: never masked — always {!empty}. *)

val addsub_masked : width:Bitval.width -> t
(** [x + y] and [x - y] mod 2^w: a flip of bit [i] moves the sum by
    [±2^i mod 2^w <> 0] — always {!empty}. *)

val mul_masked : other:int64 -> width:Bitval.width -> t
(** [x * y] mod 2^w: flipping bit [i] moves the product by
    [±2^i·y mod 2^w], zero iff [i >= w - trailing_zeros(y)] — the top
    [trailing_zeros(other)] bit positions (all of them when [other = 0]). *)

val shl_value_masked : amount:int -> width:Bitval.width -> t
(** [x << amount] with a valid in-range amount: the top [amount] bits of
    [x] are discarded. Out-of-range amounts yield a constant result, so
    every flip of [x] is masked. *)

val lshr_value_masked : amount:int -> width:Bitval.width -> t
(** [x >>> amount] (logical): the low [amount] bits are discarded; an
    out-of-range amount yields constant zero — all masked. *)

val ashr_value_masked : amount:int -> width:Bitval.width -> t
(** [x >> amount] (arithmetic): the low [amount] bits are discarded; an
    out-of-range amount replicates the sign bit, so everything except the
    sign bit is masked. *)

val eq_masked : a:int64 -> b:int64 -> width:Bitval.width -> t
(** [x == y] / [x != y]: let [d = a lxor b] within the width. If [d = 0]
    any flip breaks equality (empty); if [d] has exactly one set bit only
    that flip restores equality (all but that bit); otherwise no single
    flip can change the verdict (full). *)

val trunc_masked : width:Bitval.width -> t
(** Truncation of a [width]-bit word to 32 bits: bits 32..63 discarded. *)

val addsub_overshadow : a:int64 -> other:int64 -> width:Bitval.width -> t
(** Integer add/sub overshadow candidates (paper §IV): flips [i] of [a]
    for which [|sext(a lxor 2^i)| < |sext(other)|] — the corrupted
    operand's magnitude stays below the other operand's, so the error is
    a candidate for value overshadowing. Matches
    {!Moard_analysis.Reexec.overshadow_candidate} bit for bit (including
    its [Int64.abs min_int] behaviour). *)

(** {2 Lane-generalized closed forms}

    The same algebra restated on arbitrary flip masks: [flips.(lane)] is
    the XOR image of lane [lane]'s pattern ({!Errmodel.flip_mask}), and a
    set bit [lane] of the result means that lane's whole pattern is
    masked. With the single-bit model ([flips.(i) = 2^i]) each form
    degenerates bit-for-bit to its single-bit counterpart above, which the
    differential test suite checks by enumeration. Derivations are in
    DESIGN.md §13. *)

val full_n : n:int -> t
(** The low [n] lanes set: every pattern of an [n]-lane model. *)

val of_lanes : n:int -> (int -> bool) -> t
(** Build a set from a per-lane predicate, lanes [0..n-1]. *)

val band_masked_m : flips:int64 array -> other:int64 -> width:Bitval.width -> t
(** [x land other]: masked iff no flipped bit survives [other]. *)

val bor_masked_m : flips:int64 array -> other:int64 -> width:Bitval.width -> t
(** [x lor other]: masked iff every flipped bit is already set in
    [other]. *)

val mul_masked_m : flips:int64 array -> other:int64 -> width:Bitval.width -> t
(** [x * y] mod 2^w: the value moves by [±2^tz(m)·odd·y], zero mod 2^w
    iff [tz(m) + tz(y) >= w]. *)

val shl_value_masked_m :
  flips:int64 array -> amount:int -> width:Bitval.width -> t

val lshr_value_masked_m :
  flips:int64 array -> amount:int -> width:Bitval.width -> t

val ashr_value_masked_m :
  flips:int64 array -> amount:int -> width:Bitval.width -> t
(** Shifts by a clean in-range amount: masked iff every flipped bit is
    discarded by the shift; out-of-range amounts yield a constant result
    (all masked), except arithmetic shifts, where only the sign bit still
    matters. *)

val eq_masked_m :
  flips:int64 array -> a:int64 -> b:int64 -> width:Bitval.width -> t
(** [x == y] / [x != y] with [d = a lxor b]: if [d = 0] any pattern
    breaks equality; otherwise a pattern is masked iff [m <> d] (only the
    exact difference image can restore equality). *)

val trunc_masked_m : flips:int64 array -> width:Bitval.width -> t
(** Truncation to 32 bits: masked iff no flipped bit lies in the low
    32. *)

val addsub_masked_m : flips:int64 array -> width:Bitval.width -> t
(** Always {!empty}: a nonzero flip mask moves the sum. *)

val addsub_overshadow_m :
  flips:int64 array -> a:int64 -> other:int64 -> width:Bitval.width -> t
(** Per-lane overshadow candidacy, the lane generalization of
    {!addsub_overshadow}. *)
