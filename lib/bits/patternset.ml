type t = int64

let empty = 0L

let width_mask = function
  | Bitval.W1 -> 1L
  | Bitval.W32 -> 0xFFFF_FFFFL
  | Bitval.W64 -> -1L

let full ~width = width_mask width
let bit i = Int64.shift_left 1L i
let singleton i = bit i
let mem s i = not (Int64.equal (Int64.logand s (bit i)) 0L)
let add s i = Int64.logor s (bit i)
let remove s i = Int64.logand s (Int64.lognot (bit i))
let union = Int64.logor
let inter = Int64.logand
let diff a b = Int64.logand a (Int64.lognot b)
let is_empty s = Int64.equal s 0L
let equal = Int64.equal
let subset a b = Int64.equal (Int64.logand a (Int64.lognot b)) 0L

let count s =
  let rec go acc b =
    if Int64.equal b 0L then acc
    else go (acc + 1) (Int64.logand b (Int64.sub b 1L))
  in
  go 0 s

(* Index of the lowest set bit of a non-zero word. *)
let lowest b = count (Int64.sub (Int64.logand b (Int64.neg b)) 1L)

let iter f s =
  let rest = ref s in
  while not (Int64.equal !rest 0L) do
    let i = lowest !rest in
    f i;
    rest := Int64.logand !rest (Int64.sub !rest 1L)
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_bits s = List.rev (fold (fun i acc -> i :: acc) s [])

let pp ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (to_bits s)))

(* ------------------------------------------------------------------ *)
(* Closed-form masked-sets (derivations: DESIGN.md §11).               *)

let band_masked ~other ~width =
  Int64.logand (Int64.lognot other) (width_mask width)

let bor_masked ~other ~width = Int64.logand other (width_mask width)
let bxor_masked ~width:_ = empty
let addsub_masked ~width:_ = empty

let trailing_zeros ~width x =
  let w = Bitval.bits_in width in
  let m = Int64.logand x (width_mask width) in
  if Int64.equal m 0L then w else lowest m

let mul_masked ~other ~width =
  let w = Bitval.bits_in width in
  let tz = trailing_zeros ~width other in
  if tz = 0 then empty
  else if tz >= w then full ~width
  else
    (* bit positions w-tz .. w-1 *)
    Int64.logand
      (Int64.shift_left (full ~width) (w - tz))
      (width_mask width)

let top_bits ~width n =
  let w = Bitval.bits_in width in
  if n <= 0 then empty
  else if n >= w then full ~width
  else Int64.logand (Int64.shift_left (full ~width) (w - n)) (width_mask width)

let low_bits ~width n =
  let w = Bitval.bits_in width in
  if n <= 0 then empty
  else if n >= w then full ~width
  else Int64.sub (bit n) 1L

let shl_value_masked ~amount ~width =
  let w = Bitval.bits_in width in
  if amount < 0 || amount >= w then full ~width
  else top_bits ~width amount

let lshr_value_masked ~amount ~width =
  let w = Bitval.bits_in width in
  if amount < 0 || amount >= w then full ~width
  else low_bits ~width amount

let ashr_value_masked ~amount ~width =
  let w = Bitval.bits_in width in
  if amount < 0 || amount >= w then
    (* Constant sign replication: only the sign bit still matters. *)
    remove (full ~width) (w - 1)
  else low_bits ~width amount

let eq_masked ~a ~b ~width =
  let d = Int64.logand (Int64.logxor a b) (width_mask width) in
  if Int64.equal d 0L then empty
  else if Int64.equal (Int64.logand d (Int64.sub d 1L)) 0L then
    (* one differing bit: only flipping it changes the verdict *)
    diff (full ~width) d
  else full ~width

let trunc_masked ~width = top_bits ~width (Bitval.bits_in width - 32)

(* ------------------------------------------------------------------ *)
(* Lane-generalized closed forms (derivations: DESIGN.md §13).         *)
(* [flips.(lane)] is the XOR image of lane [lane]'s pattern; a set bit *)
(* [lane] of the result means "lane [lane]'s pattern is masked". With  *)
(* the single-bit model, [flips.(i) = bit i] and each form degenerates *)
(* to its single-bit counterpart above.                                *)

let full_n ~n =
  if n <= 0 then empty
  else if n >= 64 then -1L
  else Int64.sub (bit n) 1L

let of_lanes ~n f =
  let s = ref empty in
  for i = 0 to n - 1 do
    if f i then s := add !s i
  done;
  !s

let of_flips flips f = of_lanes ~n:(Array.length flips) (fun i -> f flips.(i))

let band_masked_m ~flips ~other ~width =
  let o = Int64.logand other (width_mask width) in
  of_flips flips (fun m -> Int64.equal (Int64.logand m o) 0L)

let bor_masked_m ~flips ~other ~width =
  (* masked iff every flipped bit is already set in [other] *)
  let o = Int64.logand other (width_mask width) in
  of_flips flips (fun m -> Int64.equal (Int64.logand m (Int64.lognot o)) 0L)

let mul_masked_m ~flips ~other ~width =
  (* delta = (a lxor m) - a = ±2^tz(m)·odd, so delta·other ≡ 0 mod 2^w
     iff tz(m) + tz(other) >= w *)
  let w = Bitval.bits_in width in
  let tzo = trailing_zeros ~width other in
  of_flips flips (fun m -> trailing_zeros ~width m + tzo >= w)

let shl_value_masked_m ~flips ~amount ~width =
  let w = Bitval.bits_in width in
  if amount < 0 || amount >= w then full_n ~n:(Array.length flips)
  else
    of_flips flips (fun m ->
        Int64.equal
          (Int64.logand (Int64.shift_left m amount) (width_mask width))
          0L)

let lshr_value_masked_m ~flips ~amount ~width =
  let w = Bitval.bits_in width in
  if amount < 0 || amount >= w then full_n ~n:(Array.length flips)
  else
    of_flips flips (fun m ->
        Int64.equal (Int64.shift_right_logical m amount) 0L)

let ashr_value_masked_m ~flips ~amount ~width =
  let w = Bitval.bits_in width in
  if amount < 0 || amount >= w then
    (* constant sign replication: masked iff the sign bit is untouched *)
    let sign = bit (w - 1) in
    of_flips flips (fun m -> Int64.equal (Int64.logand m sign) 0L)
  else
    of_flips flips (fun m ->
        Int64.equal (Int64.shift_right_logical m amount) 0L)

let eq_masked_m ~flips ~a ~b ~width =
  let d = Int64.logand (Int64.logxor a b) (width_mask width) in
  if Int64.equal d 0L then empty
  else of_flips flips (fun m -> not (Int64.equal m d))

let trunc_masked_m ~flips ~width:_ =
  of_flips flips (fun m -> Int64.equal (Int64.logand m 0xFFFF_FFFFL) 0L)

let addsub_masked_m ~flips ~width:_ =
  (* m <> 0 means (a lxor m) <> a, and the sum moves by that nonzero
     delta mod 2^w — never masked *)
  ignore flips;
  empty

let addsub_overshadow_m ~flips ~a ~other ~width =
  let o = Int64.abs (Bitval.to_int64 (Bitval.make width other)) in
  of_flips flips (fun m ->
      let c =
        Int64.abs (Bitval.to_int64 (Bitval.make width (Int64.logxor a m)))
      in
      Int64.compare c o < 0)

let addsub_overshadow ~a ~other ~width =
  (* Mirrors Reexec.overshadow_candidate: sign-extend through Bitval,
     compare magnitudes with Int64.abs (min_int stays negative, exactly
     as the scalar oracle behaves). *)
  let o = Int64.abs (Bitval.to_int64 (Bitval.make width other)) in
  let s = ref empty in
  let w = Bitval.bits_in width in
  for i = 0 to w - 1 do
    let c =
      Int64.abs
        (Bitval.to_int64 (Bitval.make width (Int64.logxor a (bit i))))
    in
    if Int64.compare c o < 0 then s := add !s i
  done;
  !s
