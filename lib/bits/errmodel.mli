(** First-class error models (paper §III-A).

    The aDVF definition is parameterized by the error model: the set of
    bit-flip patterns a transient fault may imprint on one data element.
    Historically the code base hard-wired the single-bit model — one flip
    per bit of the element, 64 patterns per W64 site. This module makes
    the model an explicit value so every layer (masking kernel, resolver,
    exhaustive sweep, campaign strata, store keys, daemon protocol) can be
    parameterized by it.

    A model instantiated at a width yields an ordered list of patterns,
    its {e lanes}. Lane order is canonical: lane [i] of [Single_bit] at
    any width is the flip of bit [i], so single-bit lanes coincide with
    bit indices — which is what keeps every single-bit result (reports,
    goldens, store keys, campaign plans) byte-identical to the historical
    behavior. Every model has at most 64 lanes at any width, so a
    {!Patternset.t} word indexed by lane keeps working as the verdict-set
    representation. *)

type t =
  | Single_bit  (** one flipped bit; [w] lanes *)
  | Double_adjacent  (** two adjacent flipped bits; [w-1] lanes *)
  | Byte_burst  (** one aligned 8-bit burst; [w/8] lanes *)
  | Whole_word  (** every bit flipped; 1 lane *)

val all : t list

val to_string : t -> string
(** Canonical form, bound into store keys and reports:
    ["single-bit"], ["double-bit"], ["byte-burst"], ["whole-word"]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [Error] carries a message listing the valid
    forms. *)

val lanes : t -> Bitval.width -> int
(** Number of patterns the model yields at a width. A W1 element degrades
    every model to the one possible flip, so [lanes] is always ≥ 1 and
    ≤ [Bitval.bits_in width]. *)

val pattern_at : t -> Bitval.width -> int -> Pattern.t
(** The pattern of one lane. [pattern_at Single_bit w i = Single i].
    @raise Invalid_argument if the lane is out of range. *)

val patterns : t -> Bitval.width -> Pattern.t list
(** All lanes in order. [patterns Single_bit w = Pattern.singles w]. *)

val weight_den : t -> int
(** Least common multiple of [lanes m width] over every operand width —
    the exact common denominator for per-involvement pattern weights
    ([1 / lanes]), so aDVF accumulation can run on integer numerators:
    64 for single-bit, 1953 for double-bit, 8 for byte-burst, 1 for
    whole-word. *)

val flip_mask : t -> Bitval.width -> int -> int64
(** The XOR image of one lane: bit [b] set iff the lane's pattern flips
    bit [b]. The closed-form masking algebra is stated on these masks
    (DESIGN.md §13). *)
