(** Where the interpreter sends the dynamic trace.

    The machine emits one trace record per executed instruction. A sink
    decides what happens to it:

    - [Null]: nothing — the zero-cost mode for executions that only need
      final outputs (every fault-injection run, golden re-executions);
    - [Tape]: packed directly into a {!Moard_trace.Tape.t} through
      {!Moard_trace.Tape.emit}, without materializing a boxed
      {!Moard_trace.Event.t} per instruction — the golden-run fast path;
    - [Fn]: a decoded {!Moard_trace.Event.t} per instruction, for ad-hoc
      observers (tests, debugging dumps). *)

type t =
  | Null
  | Tape of Moard_trace.Tape.t
  | Fn of (Moard_trace.Event.t -> unit)

val is_null : t -> bool
