open Moard_bits
module I = Moard_ir.Instr
module T = Moard_ir.Types

let width_bits ty = Bitval.bits_in (T.width ty)

let shift_result ty op a amount =
  let bits = width_bits ty in
  let x = Bitval.to_int64 a in
  if amount < 0 || amount >= bits then
    match op with
    | I.Ashr ->
      (* All sign bits. *)
      Bitval.make (T.width ty) (Int64.shift_right x 63)
    | _ -> Bitval.zero (T.width ty)
  else
    let r =
      match op with
      | I.Shl -> Int64.shift_left x amount
      | I.Lshr ->
        (* Logical shift within the type's width: mask first for I32. *)
        let masked =
          if bits = 32 then Int64.logand x 0xFFFF_FFFFL else x
        in
        Int64.shift_right_logical masked amount
      | I.Ashr -> Int64.shift_right x amount
      | _ -> assert false
    in
    Bitval.make (T.width ty) r

let ibin op ty a b =
  let w = T.width ty in
  let x = Bitval.to_int64 a and y = Bitval.to_int64 b in
  match op with
  | I.Add -> Ok (Bitval.make w (Int64.add x y))
  | I.Sub -> Ok (Bitval.make w (Int64.sub x y))
  | I.Mul -> Ok (Bitval.make w (Int64.mul x y))
  | I.Sdiv ->
    if Int64.equal y 0L then Error Trap.Div_by_zero
    else if Int64.equal x Int64.min_int && Int64.equal y (-1L) then
      Ok (Bitval.make w Int64.min_int)
    else Ok (Bitval.make w (Int64.div x y))
  | I.Srem ->
    if Int64.equal y 0L then Error Trap.Div_by_zero
    else if Int64.equal x Int64.min_int && Int64.equal y (-1L) then
      Ok (Bitval.make w 0L)
    else Ok (Bitval.make w (Int64.rem x y))
  | I.And -> Ok (Bitval.make w (Int64.logand x y))
  | I.Or -> Ok (Bitval.make w (Int64.logor x y))
  | I.Xor -> Ok (Bitval.make w (Int64.logxor x y))
  | I.Shl | I.Lshr | I.Ashr ->
    let amount =
      let a64 = Bitval.to_int64 b in
      if Int64.compare a64 0L < 0 || Int64.compare a64 64L >= 0 then -1
      else Int64.to_int a64
    in
    ignore y;
    Ok (shift_result ty op a amount)

let fbin op a b =
  let x = Bitval.to_float a and y = Bitval.to_float b in
  let r =
    match op with
    | I.Fadd -> x +. y
    | I.Fsub -> x -. y
    | I.Fmul -> x *. y
    | I.Fdiv -> x /. y
  in
  Bitval.of_float r

let icmp op a b =
  let x = Bitval.to_int64 a and y = Bitval.to_int64 b in
  let c = Int64.compare x y in
  let r =
    match op with
    | I.Ieq -> c = 0
    | I.Ine -> c <> 0
    | I.Islt -> c < 0
    | I.Isle -> c <= 0
    | I.Isgt -> c > 0
    | I.Isge -> c >= 0
  in
  Bitval.of_bool r

let fcmp op a b =
  let x = Bitval.to_float a and y = Bitval.to_float b in
  let ordered = not (Float.is_nan x || Float.is_nan y) in
  let r =
    match op with
    | I.Foeq -> ordered && Float.equal x y
    | I.Fone -> ordered && not (Float.equal x y)
    | I.Folt -> ordered && x < y
    | I.Fole -> ordered && x <= y
    | I.Fogt -> ordered && x > y
    | I.Foge -> ordered && x >= y
  in
  Bitval.of_bool r

let f64_to_i64 f =
  if Float.is_nan f then 0L
  else if f >= 9.2233720368547758e18 then Int64.max_int
  else if f <= -9.2233720368547758e18 then Int64.min_int
  else Int64.of_float f

let cast c a =
  match c with
  | I.Trunc_to_i32 -> Bitval.make Bitval.W32 (Bitval.to_int64 a)
  | I.Sext_to_i64 | I.Zext_to_i64 ->
    let bits =
      match c with
      | I.Sext_to_i64 -> Bitval.to_int64 a (* sign-extended accessor *)
      | _ -> (a : Bitval.t).bits           (* raw low bits: zero extension *)
    in
    Bitval.of_int64 bits
  | I.Fp_to_si -> Bitval.of_int64 (f64_to_i64 (Bitval.to_float a))
  | I.Si_to_fp -> Bitval.of_float (Int64.to_float (Bitval.to_int64 a))
  | I.Bitcast_f_to_i | I.Bitcast_i_to_f -> Bitval.of_int64 (a : Bitval.t).bits

let gep base index scale =
  let b = Bitval.to_int64 base and i = Bitval.to_int64 index in
  Bitval.of_int64 (Int64.add b (Int64.mul i (Int64.of_int scale)))

let select c x y = if Bitval.to_bool c then x else y

let table : (string * (int * (float array -> float))) list =
  [
    ("sqrt", (1, fun a -> sqrt a.(0)));
    ("sin", (1, fun a -> sin a.(0)));
    ("cos", (1, fun a -> cos a.(0)));
    ("exp", (1, fun a -> exp a.(0)));
    ("log", (1, fun a -> log a.(0)));
    ("fabs", (1, fun a -> Float.abs a.(0)));
    ("floor", (1, fun a -> Float.floor a.(0)));
    ("pow", (2, fun a -> Float.pow a.(0) a.(1)));
    ("fmin", (2, fun a -> Float.min_num a.(0) a.(1)));
    ("fmax", (2, fun a -> Float.max_num a.(0) a.(1)));
  ]

let intrinsics = List.map fst table

(* Hart-coordination primitives. They are call targets like the math
   intrinsics, but their meaning lives in the machine's scheduler (which
   hart is running, how many exist, barrier parking), not in pure
   instruction semantics — so they are listed here only so validation and
   the front end can resolve the names. All take no arguments. *)
let hart_intrinsics = [ "hart_id"; "hart_count"; "barrier" ]

let intrinsic_arity name =
  Option.map fst (List.assoc_opt name table)

let intrinsic name args =
  match List.assoc_opt name table with
  | None -> invalid_arg ("Semantics.intrinsic: " ^ name)
  | Some (arity, f) ->
    if List.length args <> arity then
      Error (Trap.Arity { callee = name; expected = arity; got = List.length args })
    else
      let floats = Array.of_list (List.map Bitval.to_float args) in
      Ok (Bitval.of_float (f floats))
