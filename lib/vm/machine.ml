module Bitval = Moard_bits.Bitval
module Pattern = Moard_bits.Pattern
module I = Moard_ir.Instr
module T = Moard_ir.Types
module P = Moard_ir.Program
module Event = Moard_trace.Event

type t = {
  prog : P.t;
  mem_bytes : int;
  bases : (string, int) Hashtbl.t;
  image : Memory.t;
}

type outcome =
  | Finished of Bitval.t option
  | Trapped of Trap.t

type run = {
  outcome : outcome;
  mem : Memory.t;
  steps : int;
}

let align8 n = (n + 7) land lnot 7

let init_global mem base (g : P.global) =
  let sz = T.size g.gty in
  let store i v = Memory.store_exn mem g.gty (base + (i * sz)) v in
  match g.ginit with
  | P.Zeros -> ()
  | P.Floats a ->
    if Array.length a <> g.gelems then
      invalid_arg ("Machine.load: init size mismatch for " ^ g.gname);
    Array.iteri (fun i f -> store i (Bitval.of_float f)) a
  | P.I64s a ->
    if Array.length a <> g.gelems then
      invalid_arg ("Machine.load: init size mismatch for " ^ g.gname);
    Array.iteri (fun i x -> store i (Bitval.of_int64 x)) a
  | P.I32s a ->
    if Array.length a <> g.gelems then
      invalid_arg ("Machine.load: init size mismatch for " ^ g.gname);
    Array.iteri (fun i x -> store i (Bitval.of_int32 x)) a

let load ?mem_bytes prog =
  Moard_ir.Validate.check_exn
    ~intrinsics:(Semantics.intrinsics @ Semantics.hart_intrinsics)
    prog;
  let bases = Hashtbl.create 32 in
  let next = ref (align8 Memory.null_guard) in
  List.iter
    (fun (g : P.global) ->
      Hashtbl.replace bases g.gname !next;
      next := align8 (!next + P.global_bytes g))
    prog.P.globals;
  let mem_bytes =
    match mem_bytes with
    | Some n ->
      if n < !next then invalid_arg "Machine.load: mem_bytes too small";
      n
    | None -> !next + 65536
  in
  let image = Memory.create ~bytes:mem_bytes in
  List.iter
    (fun (g : P.global) -> init_global image (Hashtbl.find bases g.gname) g)
    prog.P.globals;
  { prog; mem_bytes; bases; image }

let program t = t.prog
let image t = t.image

let base_of t name =
  match Hashtbl.find_opt t.bases name with
  | Some b -> b
  | None -> raise Not_found

let object_of t name =
  let g = P.global t.prog name in
  Moard_trace.Data_object.make ~name ~base:(base_of t name) ~elems:g.gelems
    ~ty:g.gty

let registry t =
  Moard_trace.Registry.of_objects
    (List.map (fun (g : P.global) -> object_of t g.gname) t.prog.P.globals)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

type frame = {
  id : int;
  fn : P.func;
  regs : Bitval.t array;
  prov : int array;                  (* -1 = no provenance *)
  mutable blk : int;
  mutable ip : int;
  ret_dest : int;                    (* caller's destination register, -1 if none *)
  caller : frame option;
}

exception Trap_exn of Trap.t

let default_step_limit = 20_000_000
let max_call_depth = 200

(* The shared/private classification packs hart sets into an int bitmask,
   and 62 cooperating harts is already far past any modelled scenario. *)
let max_harts = 62

(* One cooperating hart: an independent frame stack over the shared flat
   memory. [h_frame = None] once the hart returned from the entry
   function; [h_waiting] parks it at a barrier until every other live
   hart arrives. *)
type hart = {
  h_id : int;
  mutable h_frame : frame option;
  mutable h_depth : int;
  mutable h_waiting : bool;
  mutable h_ret : Bitval.t option;
}

(* A frozen frame: everything needed to rebuild a live [frame] except the
   caller link, which the chain position encodes. *)
type snapframe = {
  sf_id : int;
  sf_fname : string;
  sf_regs : Bitval.t array;
  sf_prov : int array;
  sf_blk : int;
  sf_ip : int;
  sf_ret_dest : int;
}

type snaphart = {
  sh_frames : snapframe list; (* outermost first; [] once finished *)
  sh_waiting : bool;
  sh_ret : Bitval.t option;
}

type checkpoint = {
  c_at : int;
  c_mem : Memory.t;
  c_harts : snaphart array;
  c_turn : int; (* round-robin position of the scheduler *)
  c_next_frame_id : int;
}

let checkpoint_at cp = cp.c_at

exception Captured of checkpoint

let run_gen ?(step_limit = default_step_limit) ?fault ?(sink = Trace_sink.Null)
    ?(args = []) ?(harts = 1) ?from ?capture_at t ~entry =
  if harts < 1 || harts > max_harts then
    invalid_arg "Machine.run: hart count out of range";
  let mem =
    match from with
    | None -> Memory.copy t.image
    | Some cp -> Memory.copy cp.c_mem
  in
  let steps = ref (match from with None -> 0 | Some cp -> cp.c_at) in
  let next_frame_id = ref 0 in
  let fresh_frame fn ~ret_dest ~caller =
    let id = !next_frame_id in
    incr next_frame_id;
    {
      id;
      fn;
      regs = Array.make (max fn.P.nregs 1) (Bitval.zero Bitval.W64);
      prov = Array.make (max fn.P.nregs 1) (-1);
      blk = 0;
      ip = 0;
      ret_dest;
      caller;
    }
  in
  let result =
    try
      let hs, start_turn =
        match from with
        | None ->
          let entry_fn =
            match P.func t.prog entry with
            | fn -> fn
            | exception Not_found -> raise (Trap_exn (Trap.No_function entry))
          in
          if List.length args <> entry_fn.P.nparams then
            raise
              (Trap_exn
                 (Trap.Arity
                    {
                      callee = entry;
                      expected = entry_fn.P.nparams;
                      got = List.length args;
                    }));
          (* SPMD launch: every hart starts the same entry function with
             the same arguments; hart h owns frame id h. *)
          let hs =
            Array.init harts (fun h ->
                let top = fresh_frame entry_fn ~ret_dest:(-1) ~caller:None in
                List.iteri (fun i v -> top.regs.(i) <- v) args;
                {
                  h_id = h;
                  h_frame = Some top;
                  h_depth = 1;
                  h_waiting = false;
                  h_ret = None;
                })
          in
          (hs, 0)
        | Some cp ->
          next_frame_id := cp.c_next_frame_id;
          let rebuild caller sf =
            {
              id = sf.sf_id;
              fn = P.func t.prog sf.sf_fname;
              regs = Array.copy sf.sf_regs;
              prov = Array.copy sf.sf_prov;
              blk = sf.sf_blk;
              ip = sf.sf_ip;
              ret_dest = sf.sf_ret_dest;
              caller;
            }
          in
          let rec chain caller = function
            | [] -> assert false
            | [ sf ] -> rebuild caller sf
            | sf :: rest -> chain (Some (rebuild caller sf)) rest
          in
          let hs =
            Array.mapi
              (fun h (sh : snaphart) ->
                {
                  h_id = h;
                  h_frame =
                    (match sh.sh_frames with
                    | [] -> None
                    | frames -> Some (chain None frames));
                  h_depth = List.length sh.sh_frames;
                  h_waiting = sh.sh_waiting;
                  h_ret = sh.sh_ret;
                })
              cp.c_harts
          in
          (hs, cp.c_turn)
      in
      let nharts = Array.length hs in
      let turn = ref start_turn in
      let running = ref true in
      (* Round-robin with a quantum of one instruction: the first runnable
         hart at or after [turn] executes exactly one event. With a single
         hart this degenerates to the serial interpreter loop, event for
         event. *)
      let rec pick k =
        if k = nharts then -1
        else
          let j = (!turn + k) mod nharts in
          let h = hs.(j) in
          if h.h_frame <> None && not h.h_waiting then j else pick (k + 1)
      in
      while !running do
        match pick 0 with
        | -1 ->
          if Array.exists (fun h -> h.h_frame <> None) hs then
            (* Every live hart is parked at the barrier: release the whole
               quorum. Finished harts left it, so no deadlock. *)
            Array.iter (fun h -> h.h_waiting <- false) hs
          else running := false
        | j ->
          let h = hs.(j) in
          let fr = match h.h_frame with Some fr -> fr | None -> assert false in
          (match capture_at with
          | Some at when !steps = at ->
            let rec snap fr acc =
              let sf =
                {
                  sf_id = fr.id;
                  sf_fname = fr.fn.P.fname;
                  sf_regs = Array.copy fr.regs;
                  sf_prov = Array.copy fr.prov;
                  sf_blk = fr.blk;
                  sf_ip = fr.ip;
                  sf_ret_dest = fr.ret_dest;
                }
              in
              match fr.caller with
              | None -> sf :: acc
              | Some p -> snap p (sf :: acc)
            in
            (* the capturing run is abandoned here, so [mem] can be taken
               over by the checkpoint without a copy *)
            raise
              (Captured
                 {
                   c_at = at;
                   c_mem = mem;
                   c_harts =
                     Array.map
                       (fun h ->
                         {
                           sh_frames =
                             (match h.h_frame with
                             | None -> []
                             | Some fr -> snap fr []);
                           sh_waiting = h.h_waiting;
                           sh_ret = h.h_ret;
                         })
                       hs;
                   c_turn = !turn;
                   c_next_frame_id = !next_frame_id;
                 })
          | _ -> ());
          turn := (j + 1) mod nharts;
          if !steps >= step_limit then
            raise (Trap_exn (Trap.Step_limit step_limit));
          let idx = !steps in
          incr steps;
          let instr = fr.fn.P.blocks.(fr.blk).(fr.ip) in
          let iid = Moard_ir.Iid.make ~fn:fr.fn.P.fname ~blk:fr.blk ~ip:fr.ip in
          (* Fetch operands, with provenance; apply a Read fault if due. *)
          let ops = I.reads instr in
          let nslots = List.length ops in
          let values = Array.make nslots (Bitval.zero Bitval.W64) in
          let provs = Array.make nslots (-1) in
          List.iteri
            (fun slot op ->
              let v, p =
                match (op : I.operand) with
                | I.Reg r -> (fr.regs.(r), fr.prov.(r))
                | I.Imm v -> (v, -1)
                | I.Glob g -> (Bitval.of_int64 (Int64.of_int (base_of t g)), -1)
              in
              values.(slot) <- v;
              provs.(slot) <- p)
            ops;
          (match fault with
          | Some { Fault.site = Fault.Read { idx = fidx; slot }; pattern }
            when fidx = idx ->
            if slot >= 0 && slot < nslots then
              values.(slot) <- Pattern.apply pattern values.(slot)
          | _ -> ());
          let v slot = values.(slot) in
          (* Advance ip by default; control flow overrides below. *)
          fr.ip <- fr.ip + 1;
          let emit ~write ?(load_addr = -1) ?(callee_frame = -1)
              ?(ret_to_frame = -1) ?(ret_to_reg = -1) ?(taken = -1) () =
            match sink with
            | Trace_sink.Null -> ()
            | Trace_sink.Tape tape ->
              Moard_trace.Tape.emit tape ~iid ~instr ~hart:h.h_id ~frame:fr.id
                ~values ~provs ~write ~load_addr ~callee_frame ~ret_to_frame
                ~ret_to_reg ~taken ()
            | Trace_sink.Fn push ->
              push
                {
                  Event.idx;
                  hart = h.h_id;
                  frame = fr.id;
                  iid;
                  instr;
                  reads =
                    Array.init nslots (fun i ->
                        { Event.value = values.(i); prov = provs.(i) });
                  write;
                  load_addr;
                  callee_frame;
                  ret_to_frame;
                  ret_to_reg;
                  taken;
                }
          in
          let set_reg ?(prov = -1) r value =
            fr.regs.(r) <- value;
            fr.prov.(r) <- prov;
            emit ~write:(Event.Wreg { frame = fr.id; reg = r; value }) ()
          in
          let trap_or x =
            match x with Ok v -> v | Error tr -> raise (Trap_exn tr)
          in
          (match instr with
          | I.Mov (d, _) -> set_reg ~prov:provs.(0) d (v 0)
          | I.Ibin (d, op, ty, _, _) ->
            set_reg d (trap_or (Semantics.ibin op ty (v 0) (v 1)))
          | I.Fbin (d, op, _, _) -> set_reg d (Semantics.fbin op (v 0) (v 1))
          | I.Icmp (d, op, _, _, _) -> set_reg d (Semantics.icmp op (v 0) (v 1))
          | I.Fcmp (d, op, _, _) -> set_reg d (Semantics.fcmp op (v 0) (v 1))
          | I.Cast (d, c, _) ->
            let prov =
              match c with
              | I.Bitcast_f_to_i | I.Bitcast_i_to_f -> provs.(0)
              | _ -> -1
            in
            set_reg ~prov d (Semantics.cast c (v 0))
          | I.Load (d, ty, _) ->
            let addr = Int64.to_int (Bitval.to_int64 (v 0)) in
            let value = trap_or (Memory.load mem ty addr) in
            fr.regs.(d) <- value;
            fr.prov.(d) <- addr;
            emit
              ~write:(Event.Wreg { frame = fr.id; reg = d; value })
              ~load_addr:addr ()
          | I.Store (ty, _, _) ->
            let addr = Int64.to_int (Bitval.to_int64 (v 1)) in
            (match fault with
            | Some { Fault.site = Fault.Store_dest { idx = fidx }; pattern }
              when fidx = idx -> (
              (* Corrupt the destination cell just before it is overwritten. *)
              match Memory.load mem ty addr with
              | Ok old ->
                ignore (Memory.store mem ty addr (Pattern.apply pattern old))
              | Error _ -> ())
            | _ -> ());
            trap_or (Memory.store mem ty addr (v 0));
            emit ~write:(Event.Wmem { addr; value = v 0; ty }) ()
          | I.Gep (d, _, _, scale) -> set_reg d (Semantics.gep (v 0) (v 1) scale)
          | I.Select (d, _, _, _) ->
            let prov = if Bitval.to_bool (v 0) then provs.(1) else provs.(2) in
            set_reg ~prov d (Semantics.select (v 0) (v 1) (v 2))
          | I.Call (dest, callee, _) -> (
            match P.func t.prog callee with
            | callee_fn ->
              if h.h_depth >= max_call_depth then
                raise (Trap_exn (Trap.Call_depth max_call_depth));
              if callee_fn.P.nparams <> nslots then
                raise
                  (Trap_exn
                     (Trap.Arity
                        { callee; expected = callee_fn.P.nparams; got = nslots }));
              let ret_dest = match dest with Some d -> d | None -> -1 in
              let callee_fr = fresh_frame callee_fn ~ret_dest ~caller:(Some fr) in
              for i = 0 to nslots - 1 do
                callee_fr.regs.(i) <- values.(i);
                callee_fr.prov.(i) <- provs.(i)
              done;
              emit ~write:Event.Wnone ~callee_frame:callee_fr.id ();
              h.h_depth <- h.h_depth + 1;
              h.h_frame <- Some callee_fr
            | exception Not_found ->
              if List.mem callee Semantics.hart_intrinsics then begin
                if nslots <> 0 then
                  raise
                    (Trap_exn (Trap.Arity { callee; expected = 0; got = nslots }));
                if String.equal callee "barrier" then begin
                  emit ~write:Event.Wnone ();
                  (* Park after the event: the hart resumes at the next
                     instruction once every live hart has arrived. *)
                  h.h_waiting <- true
                end
                else begin
                  let n =
                    if String.equal callee "hart_id" then h.h_id else nharts
                  in
                  let value = Bitval.of_int64 (Int64.of_int n) in
                  match dest with
                  | Some d ->
                    fr.regs.(d) <- value;
                    fr.prov.(d) <- -1;
                    emit ~write:(Event.Wreg { frame = fr.id; reg = d; value }) ()
                  | None -> emit ~write:Event.Wnone ()
                end
              end
              else begin
                if not (List.mem callee Semantics.intrinsics) then
                  raise (Trap_exn (Trap.No_function callee));
                let value =
                  trap_or (Semantics.intrinsic callee (Array.to_list values))
                in
                match dest with
                | Some d ->
                  fr.regs.(d) <- value;
                  fr.prov.(d) <- -1;
                  emit ~write:(Event.Wreg { frame = fr.id; reg = d; value }) ()
                | None -> emit ~write:Event.Wnone ()
              end)
          | I.Br l ->
            emit ~write:Event.Wnone ~taken:l ();
            fr.blk <- l;
            fr.ip <- 0
          | I.Cbr (_, l1, l2) ->
            let l = if Bitval.to_bool (v 0) then l1 else l2 in
            emit ~write:Event.Wnone ~taken:l ();
            fr.blk <- l;
            fr.ip <- 0
          | I.Ret vopt -> (
            let value = match vopt with Some _ -> Some (v 0) | None -> None in
            match fr.caller with
            | None ->
              emit ~write:Event.Wnone ();
              h.h_ret <- value;
              h.h_frame <- None;
              h.h_depth <- 0
            | Some parent ->
              let write =
                if fr.ret_dest >= 0 then begin
                  let rv =
                    match value with Some x -> x | None -> Bitval.zero Bitval.W64
                  in
                  parent.regs.(fr.ret_dest) <- rv;
                  parent.prov.(fr.ret_dest) <-
                    (if nslots > 0 then provs.(0) else -1);
                  Event.Wreg { frame = parent.id; reg = fr.ret_dest; value = rv }
                end
                else Event.Wnone
              in
              emit ~write ~ret_to_frame:parent.id ~ret_to_reg:fr.ret_dest ();
              h.h_depth <- h.h_depth - 1;
              h.h_frame <- Some parent))
      done;
      (* The application outcome of an SPMD run is hart 0's return value
         (every hart ran the same entry; outputs live in shared memory). *)
      Finished hs.(0).h_ret
    with Trap_exn tr -> Trapped tr
  in
  { outcome = result; mem; steps = !steps }

let run ?step_limit ?fault ?sink ?args ?harts ?from t ~entry =
  run_gen ?step_limit ?fault ?sink ?args ?harts ?from t ~entry

let checkpoint ?step_limit ?args ?harts t ~entry ~at =
  if at < 0 then invalid_arg "Machine.checkpoint: negative event index";
  match run_gen ?step_limit ?args ?harts ~capture_at:at t ~entry with
  | (_ : run) ->
    invalid_arg
      (Printf.sprintf
         "Machine.checkpoint: run of %s ended before event %d" entry at)
  | exception Captured cp -> cp

let trace ?step_limit ?args ?harts t ~entry =
  let tape = Moard_trace.Tape.create () in
  let r = run ?step_limit ?args ?harts ~sink:(Trace_sink.Tape tape) t ~entry in
  Moard_trace.Tape.freeze tape;
  (r, tape)

let read_gen t mem name conv =
  let g = P.global t.prog name in
  let base = base_of t name in
  let sz = T.size g.gty in
  Array.init g.gelems (fun i -> conv (Memory.load_exn mem g.gty (base + (i * sz))))

let read_f64s t mem name = read_gen t mem name Bitval.to_float
let read_i64s t mem name = read_gen t mem name Bitval.to_int64
let read_i32s t mem name =
  read_gen t mem name (fun v -> Int64.to_int32 (Bitval.to_int64 v))
