(** The MOARD virtual machine.

    Loads an IR program (laying out all globals at fixed addresses), then
    executes it any number of times. Each run starts from the pristine
    initial memory image, optionally emits the dynamic trace, and optionally
    applies one deterministic fault. Execution is fully deterministic, so a
    run with no fault is the golden run every fault-injection outcome is
    compared against. *)

type t

type outcome =
  | Finished of Moard_bits.Bitval.t option  (** entry function's return value *)
  | Trapped of Trap.t

type run = {
  outcome : outcome;
  mem : Memory.t;   (** final memory, for observing output data objects *)
  steps : int;      (** dynamic instructions executed *)
}

val load : ?mem_bytes:int -> Moard_ir.Program.t -> t
(** Validates the program and assigns every global an address.
    Default memory size fits all globals plus 64 KiB of slack.
    @raise Invalid_argument if validation fails. *)

val program : t -> Moard_ir.Program.t

val base_of : t -> string -> int
(** Load address of a global. @raise Not_found *)

val object_of : t -> string -> Moard_trace.Data_object.t
(** The data object a global defines. @raise Not_found *)

val registry : t -> Moard_trace.Registry.t
(** Every global as a data object. *)

val run :
  ?step_limit:int ->
  ?fault:Fault.t ->
  ?sink:Trace_sink.t ->
  ?args:Moard_bits.Bitval.t list ->
  t -> entry:string -> run
(** Execute [entry]. [step_limit] defaults to 20 million. [sink] defaults
    to {!Trace_sink.Null}: untraced executions (fault injections, golden
    re-executions) pay no tracing cost at all. *)

val trace :
  ?step_limit:int -> ?args:Moard_bits.Bitval.t list ->
  t -> entry:string -> run * Moard_trace.Tape.t
(** Golden traced run: executes with a {!Trace_sink.Tape} sink — events
    are packed straight into the tape, never boxed — and returns the tape
    already {!Moard_trace.Tape.freeze}d, ready to be shared across
    domains. *)

(** {2 Observation of final memory} *)

val read_f64s : t -> Memory.t -> string -> float array
val read_i64s : t -> Memory.t -> string -> int64 array
val read_i32s : t -> Memory.t -> string -> int32 array
