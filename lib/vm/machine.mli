(** The MOARD virtual machine.

    Loads an IR program (laying out all globals at fixed addresses), then
    executes it any number of times. Each run starts from the pristine
    initial memory image, optionally emits the dynamic trace, and optionally
    applies one deterministic fault. Execution is fully deterministic, so a
    run with no fault is the golden run every fault-injection outcome is
    compared against. *)

type t

type outcome =
  | Finished of Moard_bits.Bitval.t option  (** entry function's return value *)
  | Trapped of Trap.t

type run = {
  outcome : outcome;
  mem : Memory.t;   (** final memory, for observing output data objects *)
  steps : int;      (** dynamic instructions executed *)
}

val load : ?mem_bytes:int -> Moard_ir.Program.t -> t
(** Validates the program and assigns every global an address.
    Default memory size fits all globals plus 64 KiB of slack.
    @raise Invalid_argument if validation fails. *)

val program : t -> Moard_ir.Program.t

val image : t -> Memory.t
(** The pristine initial memory image every run starts from (globals laid
    out and initialized, nothing executed). Callers must treat it as
    read-only: it is the template {!run} copies, and writing through it
    would corrupt every subsequent run. The golden-memory timeline of the
    vectorized replay reads initial values from it. *)

val base_of : t -> string -> int
(** Load address of a global. @raise Not_found *)

val object_of : t -> string -> Moard_trace.Data_object.t
(** The data object a global defines. @raise Not_found *)

val registry : t -> Moard_trace.Registry.t
(** Every global as a data object. *)

val max_harts : int
(** Upper bound on [harts] (62: hart sets pack into an OCaml int as
    bitmasks, e.g. in {!Moard_trace.Sharing}). *)

type checkpoint
(** The complete machine state captured at one dynamic-instruction
    boundary of a fault-free run: memory, every hart's frame stack and
    barrier state, the scheduler position, and the event counter. Because
    execution (including the round-robin schedule) is deterministic and a
    fault at event [i] leaves everything before [i] byte-identical to the
    golden run, resuming an injected run from a checkpoint at the fault
    event is exact — it only skips re-executing a prefix both runs
    share. *)

val checkpoint :
  ?step_limit:int -> ?args:Moard_bits.Bitval.t list -> ?harts:int ->
  t -> entry:string -> at:int -> checkpoint
(** Execute [entry] without a fault up to (not including) dynamic event
    [at] and freeze the state there. [harts] as in {!run}; a checkpoint
    remembers its hart count, so resumes rebuild the same configuration.
    @raise Invalid_argument if the run ends (or traps) before [at]. *)

val checkpoint_at : checkpoint -> int
(** The event index a run resumed {!run}[ ~from] starts at. *)

val run :
  ?step_limit:int ->
  ?fault:Fault.t ->
  ?sink:Trace_sink.t ->
  ?args:Moard_bits.Bitval.t list ->
  ?harts:int ->
  ?from:checkpoint ->
  t -> entry:string -> run
(** Execute [entry]. [step_limit] defaults to 20 million. [sink] defaults
    to {!Trace_sink.Null}: untraced executions (fault injections, golden
    re-executions) pay no tracing cost at all.

    [harts] (default 1) launches that many cooperating harts SPMD-style:
    each runs [entry] with the same [args] over the shared flat memory,
    under a deterministic round-robin scheduler with a quantum of one
    dynamic instruction. The [hart_id]/[hart_count] intrinsics expose the
    lane identity; [barrier] parks a hart until every other live hart
    arrives (harts that already returned leave the quorum, so a barrier
    never deadlocks). The outcome is hart 0's return value; a trap on any
    hart traps the whole run. With one hart the scheduler degenerates to
    the serial interpreter loop, event for event.

    With [from], execution resumes from the checkpoint instead of the
    pristine image ([entry], [args] and [harts] are then ignored — the
    checkpoint carries the hart configuration — and [run.steps] stays the
    absolute dynamic event count, prefix included); a [fault] whose event
    index predates the checkpoint can never fire. *)

val trace :
  ?step_limit:int -> ?args:Moard_bits.Bitval.t list -> ?harts:int ->
  t -> entry:string -> run * Moard_trace.Tape.t
(** Golden traced run: executes with a {!Trace_sink.Tape} sink — events
    are packed straight into the tape, never boxed — and returns the tape
    already {!Moard_trace.Tape.freeze}d, ready to be shared across
    domains. *)

(** {2 Observation of final memory} *)

val read_f64s : t -> Memory.t -> string -> float array
val read_i64s : t -> Memory.t -> string -> int64 array
val read_i32s : t -> Memory.t -> string -> int32 array
