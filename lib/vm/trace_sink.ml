type t =
  | Null
  | Tape of Moard_trace.Tape.t
  | Fn of (Moard_trace.Event.t -> unit)

let is_null = function Null -> true | Tape _ | Fn _ -> false
