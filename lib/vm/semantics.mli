(** Pure instruction semantics.

    Shared between the interpreter and the resilience model: the model
    recomputes an operation's result with a corrupted operand to decide
    whether the corruption changes it, so both must agree exactly on what
    every operation computes. *)

open Moard_bits

val ibin :
  Moard_ir.Instr.ibin -> Moard_ir.Types.t -> Bitval.t -> Bitval.t ->
  (Bitval.t, Trap.t) result
(** Integer arithmetic at I32 or I64. Division/remainder by zero traps.
    Shift amounts outside [0, width) yield 0 (or all sign bits for ashr). *)

val fbin : Moard_ir.Instr.fbin -> Bitval.t -> Bitval.t -> Bitval.t
val icmp : Moard_ir.Instr.icmp -> Bitval.t -> Bitval.t -> Bitval.t
val fcmp : Moard_ir.Instr.fcmp -> Bitval.t -> Bitval.t -> Bitval.t
(** Ordered comparisons: any comparison with a NaN is false, except [Fone]
    which is ordered-and-unequal. *)

val cast : Moard_ir.Instr.cast -> Bitval.t -> Bitval.t
val gep : Bitval.t -> Bitval.t -> int -> Bitval.t
val select : Bitval.t -> Bitval.t -> Bitval.t -> Bitval.t

val intrinsics : string list
(** Names resolvable as math intrinsics. *)

val hart_intrinsics : string list
(** Names of the hart-coordination primitives ([hart_id], [hart_count],
    [barrier]), resolved by the machine's scheduler rather than here: their
    results depend on execution context (the running hart, the hart count),
    not on operand values. All are nullary. *)

val intrinsic_arity : string -> int option

val intrinsic : string -> Bitval.t list -> (Bitval.t, Trap.t) result
(** @raise Invalid_argument on unknown name (callers check first). *)
