(** A bounded in-memory LRU of string payloads, keyed by string.

    The store's memory layer: bounded both by entry count and by total
    payload bytes, whichever is hit first. {!find} promotes; {!add} evicts
    least-recently-used entries until the new entry fits. A payload larger
    than the byte bound is simply not admitted (the disk layer still
    serves it). Not thread-safe on its own — the store serializes access. *)

type t

val create : max_entries:int -> max_bytes:int -> t
(** @raise Invalid_argument if either bound is negative. *)

val find : t -> string -> string option
(** Lookup, promoting the entry to most-recently-used. *)

val add : t -> string -> string -> unit
(** Insert or replace, evicting from the LRU end as needed. *)

val remove : t -> string -> unit
val mem : t -> string -> bool
val length : t -> int
val bytes : t -> int
(** Sum of resident payload sizes. *)

val evictions : t -> int
(** Entries evicted by the bounds since {!create}. *)

val clear : t -> unit
