(** Cached MOARD queries: get-or-compute over the {!Store}.

    Every payload here is a canonical byte-stable string (see
    {!Moard_report.Advf_report} and
    {!Moard_report.Campaign_report.stable_json}), and every compute path
    analyzes on a {e fresh context shard} — a pure function of (program,
    object, options) — so a recompute after corruption, a daemon worker
    and the offline CLI all produce the identical bytes. *)

type status =
  | Memory_hit   (** served from the LRU *)
  | Disk_hit     (** served from a verified disk record *)
  | Computed     (** cold: computed and stored *)
  | Recomputed   (** a corrupt entry was detected, recomputed and healed *)

val status_name : status -> string
val is_hit : status -> bool

val advf_payload :
  ?options:Moard_core.Model.options ->
  ?cancel:Moard_chaos.Cancel.t ->
  Moard_inject.Context.t ->
  object_name:string ->
  string
(** The canonical aDVF payload, computed directly (no store): a
    single-domain analysis on a fresh shard of the context. *)

val advf :
  Store.t ->
  ?options:Moard_core.Model.options ->
  ?cancel:Moard_chaos.Cancel.t ->
  ctx:(unit -> Moard_inject.Context.t) ->
  program:Moard_ir.Program.t ->
  object_name:string ->
  unit ->
  string * status
(** Get-or-compute an aDVF summary. [ctx] is only forced on a miss, so a
    warm query never touches the golden run. A tripped [cancel] raises
    {!Moard_chaos.Cancel.Cancelled} out of the compute path before
    anything is stored. *)

val campaign_payload : Moard_campaign.Engine.result -> string
(** The canonical campaign payload ({!Moard_report.Campaign_report}'s
    stable JSON — the perf section is never stored). *)

val campaign :
  Store.t ->
  ?domains:int ->
  ?batch:bool ->
  ?should_stop:(unit -> bool) ->
  ?cancel:Moard_chaos.Cancel.t ->
  ?fx:Moard_chaos.Fx.t ->
  ?journal_meta:(string * string) list ->
  ctx:(unit -> Moard_inject.Context.t) ->
  program:Moard_ir.Program.t ->
  plan:Moard_campaign.Plan.t ->
  unit ->
  string * status * Moard_campaign.Engine.result option
(** Get-or-compute a campaign report. A miss runs the engine with a
    journal under {!Store.journal_dir}; if that journal already exists
    (an earlier run died or was drained mid-campaign) the engine resumes
    from it instead of starting over. A completed result is stored and
    its journal removed; an interrupted one (the [should_stop] drain
    hook or the [cancel] token fired) is returned un-stored with its
    journal left in place for the next attempt. The result is [None]
    exactly when the payload came from the store. [batch] is forwarded
    to the engine's bit-parallel kernel switch; the payload bytes are
    identical either way, which is why neither it nor [domains] is part
    of the store key. [fx] routes the engine's journal I/O. *)

val predict_payload : Moard_predict.Predict.t -> string
(** The canonical prediction payload
    ({!Moard_report.Predict_report.stable_json}). *)

val predict :
  Store.t ->
  ?model:Moard_bits.Errmodel.t ->
  ?seed:int ->
  ?confidence:float ->
  ?ci_width:float ->
  ?max_samples:int ->
  ?domains:int ->
  ?batch:bool ->
  ?cancel:Moard_chaos.Cancel.t ->
  workload_at:(int -> Moard_inject.Workload.t) ->
  object_name:string ->
  sizes:int list ->
  target:int ->
  unit ->
  string * status * Moard_predict.Predict.t option
(** Get-or-compute a cross-input-size prediction
    ({!Moard_predict.Predict.run}). [sizes] is canonicalized (sorted,
    deduplicated) before keying, and [workload_at] is forced once per
    canonical size to derive the training programs the key hashes — so a
    warm query builds workloads but never executes them. Neither
    [domains] nor [batch] joins the key (they change no payload byte).
    The result is [None] exactly when the payload came from the store.
    Refusals ({!Moard_predict.Predict.Refused}) and cancellation
    propagate before anything is stored.
    Defaults match {!Moard_predict.Predict.run}. *)

val advise_payload :
  ?model:Moard_bits.Errmodel.t ->
  ?seed:int ->
  ?confidence:float ->
  ?ci_width:float ->
  ?max_samples:int ->
  ?domains:int ->
  ?batch:bool ->
  ?cancel:Moard_chaos.Cancel.t ->
  ?objects:string list ->
  Moard_inject.Workload.t ->
  string
(** The canonical advisor payload
    ({!Moard_report.Advise_report.stable_json}): rank, protect, measure
    — computed directly, no store. Deterministic per (workload,
    parameters); neither [domains] nor [batch] changes a byte. *)

val advise :
  Store.t ->
  ?model:Moard_bits.Errmodel.t ->
  ?seed:int ->
  ?confidence:float ->
  ?ci_width:float ->
  ?max_samples:int ->
  ?domains:int ->
  ?batch:bool ->
  ?cancel:Moard_chaos.Cancel.t ->
  workload:Moard_inject.Workload.t ->
  objects:string list ->
  unit ->
  string * status
(** Get-or-compute a resilience-advisor report. [objects] = [[]] means
    the workload's target objects (resolved before keying, so the two
    spellings share one entry). The protected-variant campaigns run
    without journals — each is a fresh in-memory campaign; the advise
    payload as a whole is the cached unit. A tripped [cancel] raises
    out of the compute path before anything is stored. *)

val tape_payload : Moard_inject.Context.t -> string
(** The packed golden tape, marshalled. *)

val tape :
  Store.t ->
  ctx:(unit -> Moard_inject.Context.t) ->
  program:Moard_ir.Program.t ->
  entry:string ->
  unit ->
  Moard_trace.Tape.t * status
(** Get-or-compute a packed golden tape. A hit deserializes the stored
    tape without re-running the program. *)
