(** Content-addressed store keys.

    A key is a stable digest over everything a cached result is a pure
    function of: the program's textual IR (hashed), the target object
    name, the error-pattern family, the model configuration, and — for
    campaign results — the {!Moard_campaign.Plan.hash} (which already
    covers seed, confidence, batch, strata and sampling orders). Two
    queries collide iff a correct implementation must give them the same
    answer; any drift in program text, options or plan changes the key and
    the old entry simply goes cold (to be swept by [store gc]).

    The digest is MD5 over a canonical [k=v] listing prefixed with a
    scheme tag, so key derivation itself is versioned. *)

type t = private string

val to_hex : t -> string
(** 32 lowercase hex digits: the entry's file name stem. *)

val of_parts : (string * string) list -> t
(** Digest a canonical part listing. Part names and values must not
    contain newlines. Exposed for tests and exotic callers; the typed
    constructors below are the real API. *)

val program_hash : Moard_ir.Program.t -> string
(** FNV-1a (16 hex digits) of the program's textual IR — the program
    identity every key includes. *)

val advf :
  program:Moard_ir.Program.t ->
  object_name:string ->
  options:Moard_core.Model.options ->
  t
(** Key of an aDVF summary: program, object, error-pattern family
    ([options.multi]) and the model parameters that shape the result
    (k, shadow_cap, fi_budget, use_cache). *)

val campaign : program:Moard_ir.Program.t -> plan:Moard_campaign.Plan.t -> t
(** Key of a campaign report: program and plan hash (the plan hash binds
    workload name, seed, confidence, ci width, batch, caps and the frozen
    per-stratum sampling orders). *)

val predict :
  programs:(int * Moard_ir.Program.t) list ->
  object_name:string ->
  model:Moard_bits.Errmodel.t ->
  seed:int ->
  confidence:float ->
  ci_width:float ->
  max_samples:int ->
  target:int ->
  t
(** Key of a cross-input-size prediction: the [(size, program)] training
    set (sorted by size, so argument order cannot split the cache), the
    object, the error model's canonical name, the campaign parameters the
    training plans are built from, and the target size. Anything that
    could change a predicted byte changes the key. *)

val advise :
  program:Moard_ir.Program.t ->
  objects:string list ->
  model:Moard_bits.Errmodel.t ->
  seed:int ->
  confidence:float ->
  ci_width:float ->
  max_samples:int ->
  t
(** Key of a resilience-advisor report: the unprotected program (the
    protected variants are derived from it deterministically), the target
    objects in request order, the campaign parameters, and a transform
    generation tag — the advisor's plan generation and IR rewrites are
    part of the cached function, so changing them rolls the keys cold
    instead of serving stale advice. *)

val tape : program:Moard_ir.Program.t -> entry:string -> t
(** Key of a packed golden tape: program and entry point. *)
