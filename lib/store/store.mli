(** The content-addressed result store: a directory of checksummed
    {!Record}s with an in-memory {!Lru} layer in front.

    Layout under the root:
    {v
    <root>/objects/<hh>/<32 hex>.rec    entries (hh = first key byte)
    <root>/tmp/                         in-flight writes (swept by gc)
    <root>/journals/                    campaign journals (owned by Query)
    v}

    Writes are atomic (tmp file + rename), so a reader never observes a
    half-written entry under its final name; a torn or bit-flipped record
    fails checksum verification on read, is counted, deleted, and reported
    as a miss — the caller recomputes and the store heals. Every operation
    is serialized by an internal mutex: one handle is safe to share across
    domains and threads (the daemon's worker pool does). *)

type t

val open_store : ?lru_entries:int -> ?lru_bytes:int -> dir:string -> unit -> t
(** Create/open the directory tree. The LRU defaults to 256 entries /
    64 MiB. *)

val dir : t -> string
val journal_dir : t -> string
(** [<root>/journals], created on demand — where campaign queries keep
    their crash-recovery journals. *)

val put : t -> key:Key.t -> kind:Record.kind -> string -> unit
(** Write (or overwrite) an entry atomically and admit it to the LRU. *)

type found = Memory | Disk

type lookup = Found of string * found | Absent | Corrupted
(** [Corrupted]: the entry existed but failed record verification (wrong
    magic/version/kind, truncation, checksum mismatch); it has been
    deleted and counted — semantically a miss, but callers can surface
    that a recompute is healing damage rather than filling a cold cache. *)

val lookup : t -> key:Key.t -> kind:Record.kind -> lookup
(** LRU first, then disk (verifying the record; a valid disk read is
    promoted into the LRU). *)

val get : t -> key:Key.t -> kind:Record.kind -> (string * found) option
(** {!lookup} with [Absent] and [Corrupted] collapsed to [None]. *)

val delete : t -> key:Key.t -> unit

type stats = {
  entries : int;        (** live records on disk *)
  disk_bytes : int;     (** their total size, headers included *)
  lru_entries : int;
  lru_bytes : int;
  lru_evictions : int;
  mem_hits : int;
  disk_hits : int;
  misses : int;
  corrupt : int;        (** corrupt records detected (and deleted) *)
  puts : int;
}

val stat : t -> stats
(** Counters are per-handle; entry/byte totals are read from disk. *)

val pp_stats : Format.formatter -> stats -> unit

val gc : t -> ?max_age_s:float -> unit -> int
(** Maintenance sweep: always removes stray tmp files and undecodable
    entry names; with [max_age_s], also removes entries whose mtime is
    older — but never an entry touched (put or read) through this handle
    since it was opened, so a live working set survives any [max_age_s].
    Returns the number of files removed. *)
