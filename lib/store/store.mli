(** The content-addressed result store: a directory of checksummed
    {!Record}s with an in-memory {!Lru} layer in front.

    Layout under the root:
    {v
    <root>/objects/<hh>/<32 hex>.rec    entries (hh = first key byte)
    <root>/tmp/                         in-flight writes (swept by gc)
    <root>/journals/                    campaign journals (owned by Query)
    v}

    Writes are atomic (tmp file + rename), so a reader never observes a
    half-written entry under its final name; a torn or bit-flipped record
    fails checksum verification on read, is counted, deleted, and reported
    as a miss — the caller recomputes and the store heals. A key whose
    records keep failing verification ([quarantine_after] times) is
    quarantined: the damaged file moves to [<root>/quarantine/] and the
    key stops writing disk records, breaking the recompute storm while
    preserving the evidence. Every operation is serialized by an internal
    mutex: one handle is safe to share across domains and threads (the
    daemon's worker pool does).

    All durable I/O goes through an injectable {!Moard_chaos.Fx.t}, which
    is how the chaos harness tears writes and flips read bytes without a
    separate store implementation. *)

type t

val open_store :
  ?lru_entries:int ->
  ?lru_bytes:int ->
  ?fx:Moard_chaos.Fx.t ->
  ?quarantine_after:int ->
  dir:string ->
  unit ->
  t
(** Create/open the directory tree. The LRU defaults to 256 entries /
    64 MiB; [fx] defaults to the real filesystem; [quarantine_after]
    (default 3, must be ≥ 1) is the per-key checksum-failure count that
    trips quarantine. *)

val dir : t -> string
val journal_dir : t -> string
(** [<root>/journals], created on demand — where campaign queries keep
    their crash-recovery journals. *)

val put : t -> key:Key.t -> kind:Record.kind -> string -> unit
(** Write (or overwrite) an entry atomically and admit it to the LRU. *)

type found = Memory | Disk

type lookup = Found of string * found | Absent | Corrupted
(** [Corrupted]: the entry existed but failed record verification (wrong
    magic/version/kind, truncation, checksum mismatch); it has been
    deleted — or, past the quarantine threshold, moved to
    [<root>/quarantine/] — and counted. Semantically a miss, but callers
    can surface that a recompute is healing damage rather than filling a
    cold cache. *)

val lookup : t -> key:Key.t -> kind:Record.kind -> lookup
(** LRU first, then disk (verifying the record; a valid disk read is
    promoted into the LRU). *)

val get : t -> key:Key.t -> kind:Record.kind -> (string * found) option
(** {!lookup} with [Absent] and [Corrupted] collapsed to [None]. *)

val delete : t -> key:Key.t -> unit

type stats = {
  entries : int;        (** live records on disk *)
  disk_bytes : int;     (** their total size, headers included *)
  lru_entries : int;
  lru_bytes : int;
  lru_evictions : int;
  mem_hits : int;
  disk_hits : int;
  misses : int;
  corrupt : int;        (** corrupt records detected (and deleted) *)
  quarantined : int;    (** keys parked in [quarantine/] by the breaker *)
  put_failures : int;   (** durable writes that failed (served from memory) *)
  puts : int;
}

val stat : t -> stats
(** Counters are per-handle; entry/byte totals are read from disk. *)

val pp_stats : Format.formatter -> stats -> unit

val gc : t -> ?max_age_s:float -> unit -> int
(** Maintenance sweep: always removes stray tmp files and undecodable
    entry names; with [max_age_s], also removes entries whose mtime is
    older — but never an entry touched (put or read) through this handle
    since it was opened, so a live working set survives any [max_age_s].
    Returns the number of files removed. *)

type fsck_report = {
  scanned : int;
  valid : int;
  damaged : (string * string) list;  (** key hex, corruption reason *)
  moved : int;  (** files moved to quarantine by this pass *)
}

val fsck : ?quarantine:bool -> t -> fsck_report
(** Offline integrity pass: decode-verify every record on disk without
    recomputing anything. With [quarantine] (default false), damaged
    files move to [<root>/quarantine/] and their keys join the
    quarantine set. *)
