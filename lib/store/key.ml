module Model = Moard_core.Model
module Plan = Moard_campaign.Plan

type t = string

let to_hex k = k

let of_parts parts =
  let b = Buffer.create 256 in
  Buffer.add_string b "moard-store-key-v1\n";
  List.iter
    (fun (k, v) ->
      if String.contains k '\n' || String.contains v '\n' then
        invalid_arg "Key.of_parts: newline in part";
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v;
      Buffer.add_char b '\n')
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))

let program_hash p = Record.fnv1a64_hex (Moard_ir.Text.to_string p)

(* The pattern family must canonicalize: [`Burst 2; `Pair 8] and
   [`Pair 8; `Burst 2] describe the same analysis. *)
let multi_part multi =
  let tags =
    List.map
      (function
        | `Burst n -> Printf.sprintf "burst%d" n
        | `Pair n -> Printf.sprintf "pair%d" n)
      multi
  in
  String.concat "+" ("single" :: List.sort compare tags)

let advf ~program ~object_name ~(options : Model.options) =
  of_parts
    [
      ("query", "advf");
      ("program", program_hash program);
      ("object", object_name);
      (* The single-bit rendering ("single", possibly with legacy multi
         families) predates error models and must keep producing the same
         key, so existing store entries still resolve; non-default models
         use their canonical name (they reject [multi] upstream). *)
      ( "pattern",
        if options.Model.model <> Moard_bits.Errmodel.Single_bit then
          Moard_bits.Errmodel.to_string options.Model.model
        else multi_part options.Model.multi );
      ("k", string_of_int options.Model.k);
      ("shadow_cap", string_of_int options.Model.shadow_cap);
      ("fi_budget", string_of_int options.Model.fi_budget);
      ("use_cache", string_of_bool options.Model.use_cache);
    ]

let campaign ~program ~plan =
  of_parts
    [
      ("query", "campaign");
      ("program", program_hash program);
      ("plan", Plan.hash plan);
    ]

let predict ~programs ~object_name ~model ~seed ~confidence ~ci_width
    ~max_samples ~target =
  let programs = List.sort (fun (a, _) (b, _) -> compare a b) programs in
  of_parts
    [
      ("query", "predict");
      ( "programs",
        String.concat ","
          (List.map
             (fun (size, p) -> Printf.sprintf "%d:%s" size (program_hash p))
             programs) );
      ("object", object_name);
      ("pattern", Moard_bits.Errmodel.to_string model);
      ("seed", string_of_int seed);
      ("confidence", Printf.sprintf "%.17g" confidence);
      ("ci_width", Printf.sprintf "%.17g" ci_width);
      ("max_samples", string_of_int max_samples);
      ("target", string_of_int target);
    ]

let advise ~program ~objects ~model ~seed ~confidence ~ci_width
    ~max_samples =
  of_parts
    [
      ("query", "advise");
      ("program", program_hash program);
      ("objects", String.concat "," objects);
      ("pattern", Moard_bits.Errmodel.to_string model);
      ("seed", string_of_int seed);
      ("confidence", Printf.sprintf "%.17g" confidence);
      ("ci_width", Printf.sprintf "%.17g" ci_width);
      ("max_samples", string_of_int max_samples);
      (* the advisor's transform generation is part of the function being
         cached: changing what plans are generated or how a transform
         rewrites the IR must go cold, not serve stale advice *)
      ("transforms", "v1");
    ]

let tape ~program ~entry =
  of_parts
    [ ("query", "tape"); ("program", program_hash program); ("entry", entry) ]
