type kind = Advf | Campaign | Tape | Predict | Advise

let kind_name = function
  | Advf -> "advf"
  | Campaign -> "campaign"
  | Tape -> "tape"
  | Predict -> "predict"
  | Advise -> "advise"

let kind_code = function
  | Advf -> 0
  | Campaign -> 1
  | Tape -> 2
  | Predict -> 3
  | Advise -> 4

let kind_of_code = function
  | 0 -> Some Advf
  | 1 -> Some Campaign
  | 2 -> Some Tape
  | 3 -> Some Predict
  | 4 -> Some Advise
  | _ -> None

type corruption =
  | Bad_magic
  | Bad_version of int
  | Bad_kind of int
  | Truncated of { expected : int; got : int }
  | Checksum_mismatch
  | Kind_mismatch of { expected : kind; got : kind }

let corruption_name = function
  | Bad_magic -> "bad-magic"
  | Bad_version v -> Printf.sprintf "bad-version-%d" v
  | Bad_kind k -> Printf.sprintf "bad-kind-%d" k
  | Truncated { expected; got } ->
    Printf.sprintf "truncated-%d-of-%d" got expected
  | Checksum_mismatch -> "checksum-mismatch"
  | Kind_mismatch { expected; got } ->
    Printf.sprintf "kind-%s-where-%s-expected" (kind_name got)
      (kind_name expected)

let magic = "MOARDREC"
let version = 1
let header_bytes = 8 + 1 + 1 + 8 + 8

(* Same primitive as Plan.hash: platform-independent, no Hashtbl.hash. *)
let fnv_prime = 0x100000001B3L
let fnv_offset = 0xCBF29CE484222325L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let fnv1a64_hex s = Printf.sprintf "%016Lx" (fnv1a64 s)

let encode ~kind payload =
  let b = Bytes.create (header_bytes + String.length payload) in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_uint8 b 8 version;
  Bytes.set_uint8 b 9 (kind_code kind);
  Bytes.set_int64_be b 10 (Int64.of_int (String.length payload));
  Bytes.set_int64_be b 18 (fnv1a64 payload);
  Bytes.blit_string payload 0 b header_bytes (String.length payload);
  Bytes.unsafe_to_string b

let decode s =
  let n = String.length s in
  if n < header_bytes then Error (Truncated { expected = header_bytes; got = n })
  else if String.sub s 0 8 <> magic then Error Bad_magic
  else
    let b = Bytes.unsafe_of_string s in
    let v = Bytes.get_uint8 b 8 in
    if v <> version then Error (Bad_version v)
    else
      match kind_of_code (Bytes.get_uint8 b 9) with
      | None -> Error (Bad_kind (Bytes.get_uint8 b 9))
      | Some kind ->
        let len = Int64.to_int (Bytes.get_int64_be b 10) in
        if len < 0 || n <> header_bytes + len then
          Error (Truncated { expected = header_bytes + max 0 len; got = n })
        else
          let payload = String.sub s header_bytes len in
          if fnv1a64 payload <> Bytes.get_int64_be b 18 then
            Error Checksum_mismatch
          else Ok (kind, payload)

let decode_expect ~kind s =
  match decode s with
  | Error _ as e -> e
  | Ok (k, payload) ->
    if k = kind then Ok payload
    else Error (Kind_mismatch { expected = kind; got = k })
