module Fx = Moard_chaos.Fx

type t = {
  root : string;
  lru : Lru.t;
  fx : Fx.t;
  quarantine_after : int;
  m : Mutex.t;
  (* keys put or read through this handle: gc's liveness set *)
  live : (string, unit) Hashtbl.t;
  (* per-key checksum-failure counts feeding the quarantine breaker *)
  corrupt_counts : (string, int) Hashtbl.t;
  quarantined_keys : (string, unit) Hashtbl.t;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable quarantined : int;
  mutable put_failures : int;
  mutable puts : int;
  mutable tmp_seq : int;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let mkdir_p path =
  let rec go p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let objects_dir root = Filename.concat root "objects"
let tmp_dir root = Filename.concat root "tmp"
let quarantine_dir root = Filename.concat root "quarantine"

let open_store ?(lru_entries = 256) ?(lru_bytes = 64 * 1024 * 1024)
    ?(fx = Fx.real) ?(quarantine_after = 3) ~dir () =
  if quarantine_after < 1 then invalid_arg "Store.open_store: quarantine_after";
  mkdir_p (objects_dir dir);
  mkdir_p (tmp_dir dir);
  {
    root = dir;
    lru = Lru.create ~max_entries:lru_entries ~max_bytes:lru_bytes;
    fx;
    quarantine_after;
    m = Mutex.create ();
    live = Hashtbl.create 64;
    corrupt_counts = Hashtbl.create 16;
    quarantined_keys = Hashtbl.create 16;
    mem_hits = 0;
    disk_hits = 0;
    misses = 0;
    corrupt = 0;
    quarantined = 0;
    put_failures = 0;
    puts = 0;
    tmp_seq = 0;
  }

let dir t = t.root

let journal_dir t =
  let d = Filename.concat t.root "journals" in
  mkdir_p d;
  d

let entry_path t hex =
  Filename.concat
    (Filename.concat (objects_dir t.root) (String.sub hex 0 2))
    (hex ^ ".rec")

let put t ~key ~kind payload =
  let hex = Key.to_hex key in
  locked t (fun () ->
      (* a quarantined key gets no new disk record: writing one would
         restart the corruption/recompute storm the quarantine broke *)
      if not (Hashtbl.mem t.quarantined_keys hex) then begin
        let final = entry_path t hex in
        mkdir_p (Filename.dirname final);
        t.tmp_seq <- t.tmp_seq + 1;
        let tmp =
          Filename.concat (tmp_dir t.root)
            (Printf.sprintf "%s.%d.%d" hex (Unix.getpid ()) t.tmp_seq)
        in
        (* a failed durable write must not fail the request — the result
           still serves from memory and the next miss recomputes *)
        try
          t.fx.Fx.write_file tmp (Record.encode ~kind payload);
          t.fx.Fx.rename tmp final
        with Sys_error _ | Unix.Unix_error _ ->
          t.put_failures <- t.put_failures + 1
      end;
      Lru.add t.lru hex payload;
      Hashtbl.replace t.live hex ();
      t.puts <- t.puts + 1)

type found = Memory | Disk
type lookup = Found of string * found | Absent | Corrupted

let lookup t ~key ~kind =
  let hex = Key.to_hex key in
  locked t (fun () ->
      match Lru.find t.lru hex with
      | Some payload ->
        t.mem_hits <- t.mem_hits + 1;
        Hashtbl.replace t.live hex ();
        Found (payload, Memory)
      | None -> (
        let path = entry_path t hex in
        match t.fx.Fx.read_file path with
        | exception Sys_error _ ->
          t.misses <- t.misses + 1;
          Absent
        | image -> (
          match Record.decode_expect ~kind image with
          | Ok payload ->
            t.disk_hits <- t.disk_hits + 1;
            Lru.add t.lru hex payload;
            Hashtbl.replace t.live hex ();
            Found (payload, Disk)
          | Error _ ->
            t.corrupt <- t.corrupt + 1;
            Hashtbl.remove t.live hex;
            let fails =
              1 + (Option.value ~default:0
                     (Hashtbl.find_opt t.corrupt_counts hex))
            in
            Hashtbl.replace t.corrupt_counts hex fails;
            if fails >= t.quarantine_after then begin
              (* recompute-storm breaker: park the damaged record for
                 post-mortem instead of deleting + rewriting forever *)
              mkdir_p (quarantine_dir t.root);
              (try
                 t.fx.Fx.rename path
                   (Filename.concat (quarantine_dir t.root) (hex ^ ".rec"))
               with Sys_error _ | Unix.Unix_error _ -> (
                 try t.fx.Fx.remove path with Sys_error _ -> ()));
              if not (Hashtbl.mem t.quarantined_keys hex) then begin
                Hashtbl.replace t.quarantined_keys hex ();
                t.quarantined <- t.quarantined + 1
              end
            end
            else
              (* detected corruption: heal by deletion, report it so the
                 caller recomputes *)
              (try t.fx.Fx.remove path with Sys_error _ -> ());
            Corrupted)))

let get t ~key ~kind =
  match lookup t ~key ~kind with
  | Found (payload, where) -> Some (payload, where)
  | Absent | Corrupted -> None

let delete t ~key =
  let hex = Key.to_hex key in
  locked t (fun () ->
      Lru.remove t.lru hex;
      Hashtbl.remove t.live hex;
      try Sys.remove (entry_path t hex) with Sys_error _ -> ())

type stats = {
  entries : int;
  disk_bytes : int;
  lru_entries : int;
  lru_bytes : int;
  lru_evictions : int;
  mem_hits : int;
  disk_hits : int;
  misses : int;
  corrupt : int;
  quarantined : int;
  put_failures : int;
  puts : int;
}

let iter_entries t f =
  let odir = objects_dir t.root in
  Array.iter
    (fun sub ->
      let d = Filename.concat odir sub in
      if Sys.is_directory d then
        Array.iter
          (fun name -> f (Filename.concat d name) name)
          (Sys.readdir d))
    (try Sys.readdir odir with Sys_error _ -> [||])

let stat t =
  locked t (fun () ->
      let entries = ref 0 and bytes = ref 0 in
      iter_entries t (fun path _ ->
          entries := !entries + 1;
          bytes := !bytes + (Unix.stat path).Unix.st_size);
      {
        entries = !entries;
        disk_bytes = !bytes;
        lru_entries = Lru.length t.lru;
        lru_bytes = Lru.bytes t.lru;
        lru_evictions = Lru.evictions t.lru;
        mem_hits = t.mem_hits;
        disk_hits = t.disk_hits;
        misses = t.misses;
        corrupt = t.corrupt;
        quarantined = t.quarantined;
        put_failures = t.put_failures;
        puts = t.puts;
      })

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>entries %d (%d bytes on disk)@,\
     lru %d entries / %d bytes (%d evictions)@,\
     hits %d memory + %d disk, misses %d, corrupt healed %d, puts %d@,\
     quarantined %d, put failures %d@]"
    s.entries s.disk_bytes s.lru_entries s.lru_bytes s.lru_evictions s.mem_hits
    s.disk_hits s.misses s.corrupt s.puts s.quarantined s.put_failures

let gc t ?max_age_s () =
  locked t (fun () ->
      let removed = ref 0 in
      let rm path =
        try
          Sys.remove path;
          incr removed
        with Sys_error _ -> ()
      in
      (* stray tmp files are torn writes by definition *)
      Array.iter
        (fun name -> rm (Filename.concat (tmp_dir t.root) name))
        (try Sys.readdir (tmp_dir t.root) with Sys_error _ -> [||]);
      let now = Unix.gettimeofday () in
      iter_entries t (fun path name ->
          let hex = Filename.remove_extension name in
          let decodable =
            String.length hex = 32
            && String.for_all
                 (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
                 hex
          in
          if not decodable then rm path
          else
            match max_age_s with
            | Some age
              when (not (Hashtbl.mem t.live hex))
                   && now -. (Unix.stat path).Unix.st_mtime > age ->
              Lru.remove t.lru hex;
              rm path
            | _ -> ());
      !removed)

type fsck_report = {
  scanned : int;
  valid : int;
  damaged : (string * string) list;
  moved : int;
}

let fsck ?(quarantine = false) t =
  locked t (fun () ->
      let scanned = ref 0 and valid = ref 0 and moved = ref 0 in
      let damaged = ref [] in
      iter_entries t (fun path name ->
          incr scanned;
          let hex = Filename.remove_extension name in
          let verdict =
            match t.fx.Fx.read_file path with
            | exception Sys_error _ -> Some "unreadable"
            | image -> (
              match Record.decode image with
              | Ok _ -> None
              | Error c -> Some (Record.corruption_name c))
          in
          match verdict with
          | None -> incr valid
          | Some reason ->
            damaged := (hex, reason) :: !damaged;
            if quarantine then begin
              mkdir_p (quarantine_dir t.root);
              (try
                 t.fx.Fx.rename path
                   (Filename.concat (quarantine_dir t.root) (hex ^ ".rec"));
                 incr moved;
                 Lru.remove t.lru hex;
                 Hashtbl.remove t.live hex;
                 if not (Hashtbl.mem t.quarantined_keys hex) then begin
                   Hashtbl.replace t.quarantined_keys hex ();
                   t.quarantined <- t.quarantined + 1
                 end
               with Sys_error _ | Unix.Unix_error _ -> ())
            end);
      {
        scanned = !scanned;
        valid = !valid;
        damaged = List.rev !damaged;
        moved = !moved;
      })
