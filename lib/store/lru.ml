(* Classic intrusive doubly-linked list + hashtable. [head] is the
   most-recently-used end, [tail] the eviction end. *)

type node = {
  key : string;
  mutable value : string;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  max_entries : int;
  max_bytes : int;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable bytes : int;
  mutable evictions : int;
}

let create ~max_entries ~max_bytes =
  if max_entries < 0 || max_bytes < 0 then
    invalid_arg "Lru.create: negative bound";
  {
    max_entries;
    max_bytes;
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    bytes = 0;
    evictions = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let drop t n =
  unlink t n;
  Hashtbl.remove t.tbl n.key;
  t.bytes <- t.bytes - String.length n.value

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
    unlink t n;
    push_front t n;
    Some n.value

let mem t k = Hashtbl.mem t.tbl k
let length t = Hashtbl.length t.tbl
let bytes t = t.bytes
let evictions t = t.evictions

let remove t k =
  match Hashtbl.find_opt t.tbl k with None -> () | Some n -> drop t n

let evict_until_fits t =
  let over () =
    Hashtbl.length t.tbl > t.max_entries || t.bytes > t.max_bytes
  in
  while over () && t.tail <> None do
    (match t.tail with Some n -> drop t n | None -> ());
    t.evictions <- t.evictions + 1
  done

let add t k v =
  if String.length v <= t.max_bytes && t.max_entries > 0 then begin
    remove t k;
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.tbl k n;
    push_front t n;
    t.bytes <- t.bytes + String.length v;
    evict_until_fits t
  end

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.bytes <- 0
