module Model = Moard_core.Model
module Context = Moard_inject.Context
module Plan = Moard_campaign.Plan
module Engine = Moard_campaign.Engine

type status = Memory_hit | Disk_hit | Computed | Recomputed

let status_name = function
  | Memory_hit -> "memory-hit"
  | Disk_hit -> "disk-hit"
  | Computed -> "computed"
  | Recomputed -> "recomputed"

let is_hit = function
  | Memory_hit | Disk_hit -> true
  | Computed | Recomputed -> false

let get_or_compute store ~key ~kind compute =
  match Store.lookup store ~key ~kind with
  | Store.Found (payload, Store.Memory) -> (payload, Memory_hit)
  | Store.Found (payload, Store.Disk) -> (payload, Disk_hit)
  | (Store.Absent | Store.Corrupted) as miss ->
    let payload = compute () in
    Store.put store ~key ~kind payload;
    (payload, if miss = Store.Corrupted then Recomputed else Computed)

(* A fresh shard has an empty injection cache and zeroed counters, so the
   sequential analysis — and with it every count in the report — is a pure
   function of (program, object, options). That purity is what makes the
   byte-stable payload contract (and corrupt-entry recompute) sound. *)
let advf_payload ?(options = Model.default_options) ?cancel ctx ~object_name =
  let r = Model.analyze ~options ?cancel (Context.shard ctx) ~object_name in
  Moard_report.Advf_report.json ~model:options.Model.model r

let advf store ?(options = Model.default_options) ?cancel ~ctx ~program
    ~object_name () =
  let key = Key.advf ~program ~object_name ~options in
  get_or_compute store ~key ~kind:Record.Advf (fun () ->
      advf_payload ~options ?cancel (ctx ()) ~object_name)

let campaign_payload = Moard_report.Campaign_report.stable_json

let interrupted (r : Engine.result) =
  Array.exists
    (fun (o : Engine.object_result) -> o.Engine.stopped = Engine.Interrupted)
    r.Engine.objects

let campaign store ?(domains = 1) ?(batch = true) ?should_stop ?cancel ?fx
    ?(journal_meta = []) ~ctx ~program ~plan () =
  let key = Key.campaign ~program ~plan in
  let kind = Record.Campaign in
  match Store.lookup store ~key ~kind with
  | Store.Found (payload, Store.Memory) -> (payload, Memory_hit, None)
  | Store.Found (payload, Store.Disk) -> (payload, Disk_hit, None)
  | (Store.Absent | Store.Corrupted) as miss ->
    let journal =
      Filename.concat (Store.journal_dir store) (Key.to_hex key ^ ".journal")
    in
    let c = ctx () in
    let r =
      if Sys.file_exists journal then
        try Engine.resume ~domains ~batch ?should_stop ?cancel ?fx ~journal c
              plan
        with Moard_campaign.Journal.Rejected _ ->
          (* stale journal from an incompatible plan under a colliding
             name: impossible while keys embed the plan hash, but never
             let a bad file wedge the query *)
          Sys.remove journal;
          Engine.run ~domains ~batch ?should_stop ?cancel ?fx ~journal
            ~journal_meta c plan
      else
        Engine.run ~domains ~batch ?should_stop ?cancel ?fx ~journal
          ~journal_meta c plan
    in
    let payload = campaign_payload r in
    if interrupted r then (payload, Computed, Some r)
    else begin
      Store.put store ~key ~kind payload;
      (try Sys.remove journal with Sys_error _ -> ());
      (payload, (if miss = Store.Corrupted then Recomputed else Computed), Some r)
    end

let predict_payload = Moard_report.Predict_report.stable_json

let predict store ?model ?(seed = 42) ?(confidence = 0.95) ?(ci_width = 0.02)
    ?(max_samples = -1) ?(domains = 1) ?(batch = true) ?cancel ~workload_at
    ~object_name ~sizes ~target () =
  let sizes = Moard_predict.Predict.canonical_sizes sizes in
  let workloads = List.map (fun n -> (n, workload_at n)) sizes in
  let programs =
    List.map
      (fun (n, w) -> (n, w.Moard_inject.Workload.program))
      workloads
  in
  let model_v =
    match model with Some m -> m | None -> Moard_bits.Errmodel.Single_bit
  in
  let key =
    Key.predict ~programs ~object_name ~model:model_v ~seed ~confidence
      ~ci_width ~max_samples ~target
  in
  let kind = Record.Predict in
  match Store.lookup store ~key ~kind with
  | Store.Found (payload, Store.Memory) -> (payload, Memory_hit, None)
  | Store.Found (payload, Store.Disk) -> (payload, Disk_hit, None)
  | (Store.Absent | Store.Corrupted) as miss ->
    let p =
      Moard_predict.Predict.run ?model ~seed ~confidence ~ci_width
        ~max_samples ~domains ~batch ?cancel ~workloads ~object_name ~target
        ()
    in
    let payload = predict_payload p in
    Store.put store ~key ~kind payload;
    (payload, (if miss = Store.Corrupted then Recomputed else Computed), Some p)

let advise_payload ?model ?seed ?confidence ?ci_width ?max_samples ?domains
    ?batch ?cancel ?objects workload =
  Moard_report.Advise_report.stable_json
    (Moard_advise.Advise.run ?model ?seed ?confidence ?ci_width ?max_samples
       ?domains ?batch ?cancel ?objects workload)

let advise store ?(model = Moard_bits.Errmodel.Single_bit) ?(seed = 42)
    ?(confidence = 0.95) ?(ci_width = 0.02) ?(max_samples = -1) ?domains
    ?batch ?cancel ~workload ~objects () =
  let wl : Moard_inject.Workload.t = workload in
  let objects =
    match objects with
    | [] -> wl.Moard_inject.Workload.targets
    | l -> l
  in
  let key =
    Key.advise ~program:wl.Moard_inject.Workload.program ~objects ~model
      ~seed ~confidence ~ci_width ~max_samples
  in
  get_or_compute store ~key ~kind:Record.Advise (fun () ->
      advise_payload ~model ~seed ~confidence ~ci_width ~max_samples ?domains
        ?batch ?cancel ~objects wl)

let tape_payload ctx = Marshal.to_string (Context.tape ctx) []

let tape store ~ctx ~program ~entry () =
  let key = Key.tape ~program ~entry in
  let payload, status =
    get_or_compute store ~key ~kind:Record.Tape (fun () ->
        tape_payload (ctx ()))
  in
  ((Marshal.from_string payload 0 : Moard_trace.Tape.t), status)
