(** The on-disk record format of the result store: versioned, typed,
    integrity-checked.

    A record is a header followed by an opaque payload:

    {v
    offset  size  field
    0       8     magic "MOARDREC"
    8       1     format version (1)
    9       1     kind (0 advf, 1 campaign, 2 tape, 3 predict, 4 advise)
    10      8     payload length, big-endian
    18      8     FNV-1a 64 checksum of the payload, big-endian
    26      n     payload bytes
    v}

    Decoding verifies every field; a torn write, a flipped bit or a stale
    format comes back as a {!corruption} value, never as a payload — the
    store deletes such an entry and the caller recomputes. *)

type kind = Advf | Campaign | Tape | Predict | Advise

val kind_name : kind -> string

type corruption =
  | Bad_magic
  | Bad_version of int
  | Bad_kind of int
  | Truncated of { expected : int; got : int }
  | Checksum_mismatch
  | Kind_mismatch of { expected : kind; got : kind }

val corruption_name : corruption -> string

val header_bytes : int

val encode : kind:kind -> string -> string
(** Header + payload, ready to write. *)

val decode : string -> (kind * string, corruption) result
(** Parse and verify a whole record image. *)

val decode_expect : kind:kind -> string -> (string, corruption) result
(** {!decode}, additionally rejecting a record of the wrong kind. *)

val fnv1a64 : string -> int64
(** FNV-1a over the bytes — the checksum primitive, exposed for key
    derivation. Stable across processes and OCaml versions. *)

val fnv1a64_hex : string -> string
(** {!fnv1a64} as 16 lowercase hex digits. *)
