external now : unit -> float = "moard_monotime_now"
