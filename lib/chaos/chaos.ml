type scope =
  | Store_read
  | Store_write
  | Journal_read
  | Journal_write
  | Sock_recv
  | Sock_send
  | Job
  | Inter_send
  | Inter_recv
  | Shard_crash
  | Shard_partition

type fault =
  | Flip of int
  | Short of float
  | Io_error of string
  | Drop
  | Delay of float
  | Disconnect
  | Raise
  | Slow of float
  | Crash
  | Partition of int

(* New scopes append at the end: [scope_index] is positional, so the
   per-scope streams of the original seven scopes — and every schedule
   a pre-cluster seed produced — are unchanged. *)
let all_scopes =
  [ Store_read; Store_write; Journal_read; Journal_write; Sock_recv;
    Sock_send; Job; Inter_send; Inter_recv; Shard_crash; Shard_partition ]

let scope_name = function
  | Store_read -> "store-read"
  | Store_write -> "store-write"
  | Journal_read -> "journal-read"
  | Journal_write -> "journal-write"
  | Sock_recv -> "sock-recv"
  | Sock_send -> "sock-send"
  | Job -> "job"
  | Inter_send -> "inter-send"
  | Inter_recv -> "inter-recv"
  | Shard_crash -> "shard-crash"
  | Shard_partition -> "shard-partition"

let scope_index s =
  let rec go i = function
    | [] -> assert false
    | x :: tl -> if x = s then i else go (i + 1) tl
  in
  go 0 all_scopes

let fault_name = function
  | Flip k -> Printf.sprintf "flip@%d" k
  | Short f -> Printf.sprintf "short:%.3f" f
  | Io_error e -> Printf.sprintf "io:%s" e
  | Drop -> "drop"
  | Delay d -> Printf.sprintf "delay:%.3f" d
  | Disconnect -> "disconnect"
  | Raise -> "raise"
  | Slow d -> Printf.sprintf "slow:%.3f" d
  | Crash -> "crash"
  | Partition n -> Printf.sprintf "partition:%d" n

type per_scope = {
  rng : Rng.t;
  mutable ops : int;
  mutable injected : int;
  mutable log : fault list;  (* reversed *)
}

type t = {
  plan_seed : int;
  rate_of : scope -> float;
  m : Mutex.t;
  scopes : (scope * per_scope) list;
}

let make ?(rates = fun _ -> 0.05) ~seed () =
  {
    plan_seed = seed;
    rate_of = rates;
    m = Mutex.create ();
    scopes =
      List.map
        (fun s ->
          ( s,
            { rng = Rng.of_path ~seed [ scope_index s ]; ops = 0;
              injected = 0; log = [] } ))
        all_scopes;
  }

let seed t = t.plan_seed

(* The fault menu of a scope.  Parameter draws happen only when a fault
   fires, so quiet operations cost exactly one stream step: the
   schedule stays reproducible under workload prefixes. *)
let pick rng scope =
  let flip () = Flip (Rng.next_int rng 4096) in
  let short () = Short (0.1 +. (0.8 *. Rng.next_float rng)) in
  let delay () = Delay (0.001 +. (0.02 *. Rng.next_float rng)) in
  let slow () = Slow (0.01 +. (0.1 *. Rng.next_float rng)) in
  let menu =
    match scope with
    | Store_read -> [| flip; (fun () -> Io_error "EIO") |]
    | Store_write -> [| short; (fun () -> Io_error "ENOSPC"); (fun () -> Drop) |]
    | Journal_read -> [| flip; (fun () -> Io_error "EIO") |]
    | Journal_write -> [| short; (fun () -> Io_error "ENOSPC") |]
    | Sock_recv -> [| delay; (fun () -> Io_error "EIO"); (fun () -> Disconnect) |]
    | Sock_send -> [| delay; short; (fun () -> Drop) |]
    | Job -> [| (fun () -> Raise); slow |]
    (* Inter-node menus carry no timing faults (Delay/Slow): the cluster
       harness must produce wall-clock-independent reports per seed.
       Unlike client-facing sockets, they DO flip frame bytes — silent
       corruption between proxy and shard is exactly the fault the
       checksummed protocol headers exist to catch. *)
    | Inter_send ->
      [| flip; short; (fun () -> Disconnect) |]
    | Inter_recv ->
      [| flip; (fun () -> Io_error "EIO"); (fun () -> Disconnect) |]
    | Shard_crash -> [| (fun () -> Crash) |]
    | Shard_partition -> [| (fun () -> Partition (1 + Rng.next_int rng 3)) |]
  in
  menu.(Rng.next_int rng (Array.length menu)) ()

let draw t scope =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      let ps = List.assoc scope t.scopes in
      ps.ops <- ps.ops + 1;
      let rate = t.rate_of scope in
      if rate > 0. && Rng.next_float ps.rng < rate then begin
        let f = pick ps.rng scope in
        ps.injected <- ps.injected + 1;
        ps.log <- f :: ps.log;
        Some f
      end
      else None)

let stats t =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      List.map (fun (s, ps) -> (s, ps.ops, ps.injected)) t.scopes)

let schedule t =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () -> List.map (fun (s, ps) -> (s, List.rev ps.log)) t.scopes)

(* FNV-1a64, same function the store records and plan hashes use; local
   because those libraries sit above this one in the dependency order. *)
let fnv1a64_hex s =
  let offset = 0xCBF29CE484222325L and prime = 0x100000001B3L in
  let h = ref offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let schedule_hash t =
  let b = Buffer.create 256 in
  List.iter
    (fun (s, faults) ->
      Buffer.add_string b (scope_name s);
      Buffer.add_char b '=';
      List.iter
        (fun f ->
          Buffer.add_string b (fault_name f);
          Buffer.add_char b ',')
        faults;
      Buffer.add_char b ';')
    (schedule t);
  fnv1a64_hex (Buffer.contents b)

(* ---- shims ---- *)

type shims = {
  store_fx : Fx.t;
  journal_fx : Fx.t;
  sock : Sock.t;
  wrap_job : (unit -> unit) -> unit -> unit;
}

let passthrough =
  { store_fx = Fx.real; journal_fx = Fx.real; sock = Sock.real;
    wrap_job = (fun job -> job) }

let flip_bit s k =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let bit = k mod (8 * Bytes.length b) in
    let i = bit / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    Bytes.to_string b
  end

let truncated s f =
  let n = String.length s in
  String.sub s 0 (min n (max 0 (int_of_float (float_of_int n *. f))))

let chaos_fx t ~read_scope ~write_scope =
  let fail path e = raise (Sys_error (path ^ ": " ^ e ^ " (chaos)")) in
  let on_read path =
    match draw t read_scope with
    | None
    | Some (Short _ | Drop | Delay _ | Disconnect | Raise | Slow _ | Crash
           | Partition _) ->
      Fx.real.Fx.read_file path
    | Some (Flip k) -> flip_bit (Fx.real.Fx.read_file path) k
    | Some (Io_error e) -> fail path e
  in
  let on_write op path s =
    match draw t write_scope with
    | None
    | Some (Flip _ | Delay _ | Disconnect | Raise | Slow _ | Crash
           | Partition _) ->
      op path s
    | Some (Short f) -> op path (truncated s f)
    | Some Drop -> ()
    | Some (Io_error e) -> fail path e
  in
  let on_rename src dst =
    match draw t write_scope with
    | None
    | Some (Flip _ | Delay _ | Disconnect | Raise | Slow _ | Crash
           | Partition _) ->
      Fx.real.Fx.rename src dst
    (* a torn rename: the temp file stays, the target never appears *)
    | Some (Short _ | Drop) -> ()
    | Some (Io_error e) -> fail src e
  in
  {
    Fx.read_file = on_read;
    write_file = on_write Fx.real.Fx.write_file;
    append = on_write Fx.real.Fx.append;
    rename = on_rename;
    remove = Fx.real.Fx.remove;
  }

let shutdown_quiet fd = try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ()

let chaos_sock t =
  let read fd b off len =
    match draw t Sock_recv with
    | None | Some (Flip _ | Short _ | Drop | Raise | Slow _ | Crash
                  | Partition _) ->
      Unix.read fd b off len
    | Some (Delay d) ->
      Unix.sleepf d;
      Unix.read fd b off len
    | Some (Io_error _) -> raise (Unix.Unix_error (Unix.EIO, "read", "chaos"))
    | Some Disconnect ->
      shutdown_quiet fd;
      0
  in
  let write fd b off len =
    match draw t Sock_send with
    | None | Some (Flip _ | Io_error _ | Raise | Slow _ | Crash
                  | Partition _) ->
      Unix.write fd b off len
    | Some (Delay d) ->
      Unix.sleepf d;
      Unix.write fd b off len
    (* a torn frame: part of the bytes escape, then the stream dies *)
    | Some (Short f) ->
      let k = max 1 (int_of_float (float_of_int len *. f)) in
      (try ignore (Unix.write fd b off (min k len)) with _ -> ());
      shutdown_quiet fd;
      raise (Unix.Unix_error (Unix.EPIPE, "write", "chaos"))
    | Some Disconnect ->
      shutdown_quiet fd;
      raise (Unix.Unix_error (Unix.EPIPE, "write", "chaos"))
    | Some Drop -> len
  in
  { Sock.read; write }

(* The proxy<->shard wire.  Two differences from [chaos_sock]: Flip is
   applied to the bytes actually moved (silent frame corruption — the
   protocol's checksummed headers must catch it, or byte-identity is
   lost), and the menus carry no timing faults, so a harness report is
   a pure function of the seed. *)
let internode_sock t =
  let flip_read_bytes b off n k =
    if n > 0 then begin
      let bit = k mod (8 * n) in
      let i = off + (bit / 8) in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))))
    end
  in
  let read fd b off len =
    match draw t Inter_recv with
    | None | Some (Short _ | Drop | Delay _ | Raise | Slow _ | Crash
                  | Partition _) ->
      Unix.read fd b off len
    | Some (Flip k) ->
      let n = Unix.read fd b off len in
      flip_read_bytes b off n k;
      n
    | Some (Io_error _) -> raise (Unix.Unix_error (Unix.EIO, "read", "chaos"))
    | Some Disconnect ->
      shutdown_quiet fd;
      0
  in
  let write fd b off len =
    match draw t Inter_send with
    | None | Some (Drop | Io_error _ | Delay _ | Raise | Slow _ | Crash
                  | Partition _) ->
      Unix.write fd b off len
    | Some (Flip k) ->
      (* corrupt a copy: the caller may retry the same buffer and must
         not see its own bytes mutated under it *)
      let c = Bytes.sub b off len in
      flip_read_bytes c 0 len k;
      Unix.write fd c 0 len
    | Some (Short f) ->
      let k = max 1 (int_of_float (float_of_int len *. f)) in
      (try ignore (Unix.write fd b off (min k len)) with _ -> ());
      shutdown_quiet fd;
      raise (Unix.Unix_error (Unix.EPIPE, "write", "chaos"))
    | Some Disconnect ->
      shutdown_quiet fd;
      raise (Unix.Unix_error (Unix.EPIPE, "write", "chaos"))
  in
  { Sock.read; write }

let chaos_wrap t job () =
  match draw t Job with
  | None
  | Some (Flip _ | Short _ | Io_error _ | Drop | Delay _ | Disconnect | Crash
         | Partition _) ->
    job ()
  | Some Raise -> failwith "chaos: injected job failure"
  | Some (Slow d) ->
    Unix.sleepf d;
    job ()

let shims t =
  {
    store_fx = chaos_fx t ~read_scope:Store_read ~write_scope:Store_write;
    journal_fx = chaos_fx t ~read_scope:Journal_read ~write_scope:Journal_write;
    sock = chaos_sock t;
    wrap_job = chaos_wrap t;
  }
