(** SplitMix64 streams for chaos plans.

    A structural mirror of [Moard_campaign.Splitmix] — the campaign
    library gains a dependency on this library (effects interfaces,
    cancellation), so reusing its PRNG would create a cycle.  The
    algorithm, path derivation, and rejection sampling are kept
    identical so a chaos plan inherits the same reproducibility
    contract as a campaign plan: seed + scope path determine the whole
    stream, independent of draw interleaving in other scopes. *)

type t

val make : int -> t
val of_path : seed:int -> int list -> t

val next : t -> int64
val next_int : t -> int -> int
(** [next_int t bound] draws uniformly from [0, bound) by rejection
    sampling; no modulo bias. *)

val next_float : t -> float
(** Uniform in [0, 1), from the top 53 bits of one draw. *)
