type t = {
  read : Unix.file_descr -> bytes -> int -> int -> int;
  write : Unix.file_descr -> bytes -> int -> int -> int;
}

let real = { read = Unix.read; write = Unix.write }
