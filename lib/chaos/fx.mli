(** Injectable filesystem effects.

    The store and the campaign journal do all durable I/O through one of
    these records instead of calling the runtime directly.  [real] is
    the production implementation; a chaos plan substitutes a faulty one
    (short writes, torn renames, bit-flipped reads, ENOSPC/EIO) without
    the callers changing shape.

    Faulty implementations signal errors the same way the real one does:
    [Sys_error] (and [Unix.Unix_error] from [rename]), so caller error
    handling written against [real] is exercised unchanged under
    chaos. *)

type t = {
  read_file : string -> string;  (** whole file, binary *)
  write_file : string -> string -> unit;
      (** create/truncate, write all, flush, close *)
  append : string -> string -> unit;
      (** open append (create if missing), write all, flush, close *)
  rename : string -> string -> unit;
  remove : string -> unit;
}

val real : t
