/* Monotonic clock for request deadlines.  CLOCK_MONOTONIC is immune to
   wall-clock jumps (NTP steps, manual resets), so an in-flight request
   can neither expire early nor become immortal when the system time
   moves under it. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value moard_monotime_now(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
