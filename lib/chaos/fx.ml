type t = {
  read_file : string -> string;
  write_file : string -> string -> unit;
  append : string -> string -> unit;
  rename : string -> string -> unit;
  remove : string -> unit;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_gen flags path s =
  let oc = open_out_gen flags 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc s;
      flush oc)

let real =
  {
    read_file;
    write_file = write_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ];
    append = write_gen [ Open_wronly; Open_creat; Open_append; Open_binary ];
    rename = Sys.rename;
    remove = Sys.remove;
  }
