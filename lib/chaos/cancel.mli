(** Cooperative cancellation tokens.

    A token is either cancelled explicitly ([cancel]) or implicitly when
    its monotonic deadline passes.  Work loops poll [check] at natural
    boundaries (per fault site, per campaign batch); the token never
    preempts anything by itself, which keeps cancellation points
    explicit and the state at each one well defined. *)

type t

exception Cancelled of string
(** Raised by [check].  The message says whether the token was cancelled
    explicitly or expired. *)

val create : ?deadline_s:float -> unit -> t
(** [create ?deadline_s ()] makes a live token.  With [deadline_s] the
    token self-cancels [deadline_s] seconds from now on the monotonic
    clock; without it only an explicit [cancel] trips it. *)

val cancel : t -> unit
(** Trip the token.  Idempotent; safe from any thread or domain. *)

val cancelled : t -> bool
(** True once the token is tripped or its deadline has passed. *)

val check : t -> unit
(** Raise {!Cancelled} if [cancelled]; otherwise return unit. *)

val remaining_s : t -> float
(** Seconds until the deadline, [infinity] when there is none, [0.] once
    expired.  An explicitly cancelled token still reports its clock. *)
