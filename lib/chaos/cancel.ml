type t = { flag : bool Atomic.t; deadline : float (* monotonic; infinity = none *) }

exception Cancelled of string

let create ?deadline_s () =
  let deadline =
    match deadline_s with
    | None -> infinity
    | Some s -> Monotime.now () +. s
  in
  { flag = Atomic.make false; deadline }

let cancel t = Atomic.set t.flag true

let expired t = t.deadline < infinity && Monotime.now () > t.deadline
let cancelled t = Atomic.get t.flag || expired t

let check t =
  if Atomic.get t.flag then raise (Cancelled "cancelled")
  else if expired t then raise (Cancelled "deadline exceeded")

let remaining_s t =
  if t.deadline = infinity then infinity
  else Float.max 0. (t.deadline -. Monotime.now ())
