(** Injectable socket primitives.

    [Protocol.send]/[recv] loop over these instead of [Unix.write]/
    [Unix.read] directly, so a chaos plan can truncate, drop, delay, or
    disconnect frames mid-flight.  Semantics match the Unix calls:
    [read] returning 0 is end-of-stream, both may raise
    [Unix.Unix_error]. *)

type t = {
  read : Unix.file_descr -> bytes -> int -> int -> int;
  write : Unix.file_descr -> bytes -> int -> int -> int;
}

val real : t
