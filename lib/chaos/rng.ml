type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_int64 s = { state = s }
let make seed = of_int64 (mix64 (Int64.of_int seed))

let of_path ~seed path =
  let s =
    List.fold_left
      (fun acc c -> mix64 (Int64.add (Int64.mul acc gamma) (Int64.of_int (c + 1))))
      (mix64 (Int64.of_int seed))
      path
  in
  of_int64 s

let next t =
  t.state <- Int64.add t.state gamma;
  mix64 t.state

let next_int t bound =
  if bound <= 0 then invalid_arg "Rng.next_int: bound";
  if bound = 1 then 0
  else begin
    let mask =
      let rec up m = if m >= bound - 1 then m else up ((m lsl 1) lor 1) in
      up 1
    in
    let rec draw () =
      let v = Int64.to_int (Int64.logand (next t) (Int64.of_int mask)) in
      if v < bound then v else draw ()
    in
    draw ()
  end

let next_float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53
