(** Seeded, deterministic fault plans for the serving stack.

    The same methodology MOARD applies to application data objects,
    turned on moardd itself: a plan derives one SplitMix64 stream per
    injection scope from a single seed (mirroring campaign plan
    streams), so the fault schedule a component sees depends only on
    the seed and on that component's own operation sequence — never on
    how operations in other scopes interleave.  Replaying a workload
    against the same seed reproduces the same faults.

    Faults are injected only at explicit shim points: the filesystem
    effects records used by the store and the journal ({!Fx.t}), the
    socket primitives used by the wire protocol ({!Sock.t}), and a
    wrapper around pool jobs.  Production code runs with
    {!passthrough}, which is exactly the real implementations. *)

type scope =
  | Store_read
  | Store_write
  | Journal_read
  | Journal_write
  | Sock_recv
  | Sock_send
  | Job
  | Inter_send  (** proxy->shard frames on the cluster wire *)
  | Inter_recv  (** shard->proxy frames on the cluster wire *)
  | Shard_crash  (** crash-stop of a whole shard process *)
  | Shard_partition  (** proxy<->shard link goes dark for a while *)

type fault =
  | Flip of int  (** flip one bit of the payload, position selector *)
  | Short of float  (** keep only this fraction of the payload *)
  | Io_error of string  (** raise, e.g. ENOSPC / EIO *)
  | Drop  (** pretend the operation happened; do nothing *)
  | Delay of float  (** sleep this many seconds, then proceed *)
  | Disconnect  (** shut the peer down mid-frame *)
  | Raise  (** job raises instead of running *)
  | Slow of float  (** job sleeps before running *)
  | Crash  (** kill one shard, crash-stop *)
  | Partition of int  (** unreachable link for this many requests *)

val all_scopes : scope list
val scope_name : scope -> string
val fault_name : fault -> string

type t

val make : ?rates:(scope -> float) -> seed:int -> unit -> t
(** [make ~seed ()] builds a plan.  [rates] maps each scope to the
    per-operation fault probability (default 0.05 everywhere); return
    [0.] to disable a scope entirely. *)

val seed : t -> int

val draw : t -> scope -> fault option
(** One Bernoulli trial on the scope's stream; [Some f] with
    probability [rates scope].  Exposed for the shims and for
    determinism tests; thread-safe. *)

type shims = {
  store_fx : Fx.t;
  journal_fx : Fx.t;
  sock : Sock.t;
  wrap_job : (unit -> unit) -> unit -> unit;
}

val passthrough : shims
(** The real implementations; injects nothing. *)

val shims : t -> shims
(** Shims that consult the plan on every operation. *)

val internode_sock : t -> Sock.t
(** Socket primitives for the proxy<->shard wire, driven by the
    [Inter_recv]/[Inter_send] scopes.  Unlike the client-facing
    [shims].sock, [Flip] here silently corrupts the bytes on the wire
    (in a copy on the send side), which the protocol's frame checksums
    must catch; the menus carry no timing faults so cluster harness
    reports are deterministic per seed. *)

val stats : t -> (scope * int * int) list
(** Per scope: (operations seen, faults injected), in [all_scopes]
    order, including quiet scopes. *)

val schedule : t -> (scope * fault list) list
(** Faults injected so far, grouped by scope in [all_scopes] order,
    each list in injection order. *)

val schedule_hash : t -> string
(** FNV-1a64 hex digest of the rendered schedule.  Two runs survived
    the same faults iff their hashes match. *)
