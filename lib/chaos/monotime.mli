(** Monotonic clock.

    Seconds since an arbitrary fixed origin, strictly unaffected by
    wall-clock adjustments.  Only differences between two [now] readings
    are meaningful; the absolute value is not an epoch time. *)

val now : unit -> float
