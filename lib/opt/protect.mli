(** Automated protection transforms for registry data objects.

    Three behaviour-preserving IR transforms close the loop from aDVF
    measurement to protection (ROADMAP item 5; Tan et al. in PAPERS.md):

    - {b Dwc} — duplication-with-compare. Every consuming instruction
      (in the paper's sense: the instruction classes that yield fault
      sites) whose operands may carry the object's provenance is
      triplicated; a majority vote repairs the destination through a
      recovery block that never executes on the fault-free path, so the
      golden trace gains no unprotected scaffolding sites. Stores are
      verified by reload-and-compare with a re-store on mismatch;
      tainted branch conditions are voted through triplicated copies.

    - {b Abft} — row/column checksum protection for square f64 matrix
      objects, generalizing the hand-written [Abft_mm] case study.
      Synthesized [__abft_<obj>_enc]/[__abft_<obj>_fix] functions
      snapshot row/column sums into fresh globals; calls from outside
      the evaluated segment into it are bracketed by encode/fix; stores
      into the object inside the segment incrementally maintain the
      checksums so read-modify-write segments stay consistent. Fix
      locates a single corrupted element (bad row x bad column under a
      relative tolerance) and subtracts the checksum residue. This
      corrects faults consumed at store-value slots; faults on pure read
      consumption pollute the running checksums by the same delta as the
      data and are invisible to it — the honest limitation the residual
      campaign quantifies.

    - {b Clamp} — address-range clamping for index-array objects (the
      CG [colidx] class). Every [Gep] off a global base whose index may
      carry the object's provenance gets its {e computed address}
      clamped into the base global's extent. The clamp consumes only
      provenance-free values (the gep result), so it adds zero fault
      sites while converting out-of-bounds crashes into in-range reads.

    Taint is a whole-program may-analysis mirroring the machine's exact
    provenance forwarding rules (Mov, bitcasts, Load from an
    object-derived address, Select arms, call arguments and returned
    values); everything else produces provenance-free results. Only
    functions inside the evaluated segment are rewritten (plus
    encode/fix call bracketing just outside it), which is where fault
    sites are counted. *)

type transform = Abft | Clamp | Dwc

type plan = {
  object_name : string;
  transforms : transform list;  (** applied in canonical order Abft, Clamp, Dwc *)
}

val transform_name : transform -> string
(** ["abft"], ["clamp"], ["dwc"]. *)

val transform_of_name : string -> transform option

val plan_id : plan -> string
(** Stable identifier, e.g. ["C:clamp+dwc"] — object name, colon, the
    canonically ordered transform names joined with [+]. Used as the
    campaign plan variant so protected-variant journals and store keys
    stay exact. *)

val applicable :
  Moard_ir.Program.t -> segment:(string -> bool) -> obj:string ->
  transform -> bool
(** Whether the transform can do anything for [obj]: Dwc needs at least
    one tainted consuming instruction in the segment, Clamp at least one
    global-based gep with a tainted index, Abft a square f64 object of
    dimension >= 2 plus a non-segment call into the segment to bracket. *)

val candidates :
  Moard_ir.Program.t -> segment:(string -> bool) -> obj:string -> plan list
(** Deterministic candidate plans for an object: each applicable single
    transform, plus Clamp+Dwc when both apply. *)

val apply :
  Moard_ir.Program.t -> segment:(string -> bool) -> plan ->
  Moard_ir.Program.t
(** Apply a plan's transforms in canonical order. The result validates
    under {!Moard_ir.Validate.check_program} and is behaviour-preserving
    on fault-free runs (same outputs, same trap behaviour). *)

val protect_workload :
  Moard_inject.Workload.t -> plan -> Moard_inject.Workload.t
(** The same workload with the plan applied to its program (name, entry,
    segment, targets, outputs, acceptance all unchanged). *)
