(* Automated protection transforms. See protect.mli for the model; the
   invariant every rewrite maintains is that on a fault-free run the
   protected program computes the same outputs and traps identically —
   recovery code lives in blocks the golden trace never enters. *)

module P = Moard_ir.Program
module I = Moard_ir.Instr
module T = Moard_ir.Types
module B = Moard_bits.Bitval

type transform = Abft | Clamp | Dwc

type plan = { object_name : string; transforms : transform list }

let transform_name = function Abft -> "abft" | Clamp -> "clamp" | Dwc -> "dwc"

let transform_of_name = function
  | "abft" -> Some Abft
  | "clamp" -> Some Clamp
  | "dwc" -> Some Dwc
  | _ -> None

let rank = function Abft -> 0 | Clamp -> 1 | Dwc -> 2

let normalize ts =
  List.sort_uniq (fun a b -> Stdlib.compare (rank a) (rank b)) ts

let plan_id p =
  p.object_name ^ ":"
  ^ String.concat "+" (List.map transform_name (normalize p.transforms))

(* ------------------------------------------------------------------ *)
(* Provenance taint: which registers of which function may carry a value
   whose provenance lies inside the object ([tainted]) or a pointer into
   the object's address range ([addr]). Mirrors the machine: Mov,
   bitcasts, Select arms, call arguments and returned values forward
   provenance; Load stamps its destination with the address it read;
   every other result is provenance-free. Flow-insensitive (may), which
   over-approximates — sound for protection, at worst extra votes. *)

type taint = {
  tainted : (string, bool array) Hashtbl.t;
  addr : (string, bool array) Hashtbl.t;
  derived : (string, bool array) Hashtbl.t;
      (* value influenced by the object's data through any computation —
         wider than [tainted] because arithmetic and non-bitcast casts
         propagate a corrupted value even though they drop provenance.
         This is what address clamping keys on: a wild access reached
         through a sign-extended index is still a wild access. *)
}

let taint_of (program : P.t) ~obj =
  let tainted = Hashtbl.create 16 and addr = Hashtbl.create 16 in
  let derived = Hashtbl.create 16 in
  List.iter
    (fun (f : P.func) ->
      Hashtbl.replace tainted f.P.fname (Array.make (max 1 f.P.nregs) false);
      Hashtbl.replace addr f.P.fname (Array.make (max 1 f.P.nregs) false);
      Hashtbl.replace derived f.P.fname (Array.make (max 1 f.P.nregs) false))
    program.P.funcs;
  let changed = ref true in
  let set arr r =
    if r >= 0 && r < Array.length arr && not arr.(r) then begin
      arr.(r) <- true;
      changed := true
    end
  in
  let is_t tf = function
    | I.Reg r -> r >= 0 && r < Array.length tf && tf.(r)
    | _ -> false
  in
  let is_a af = function
    | I.Reg r -> r >= 0 && r < Array.length af && af.(r)
    | I.Glob g -> String.equal g obj
    | I.Imm _ -> false
  in
  while !changed do
    changed := false;
    List.iter
      (fun (f : P.func) ->
        let tf = Hashtbl.find tainted f.P.fname in
        let af = Hashtbl.find addr f.P.fname in
        let vf = Hashtbl.find derived f.P.fname in
        let is_v op = is_t vf op in
        Array.iter
          (Array.iter (fun ins ->
               (match ins with
               | I.Mov (d, op) ->
                 if is_t tf op then set tf d;
                 if is_a af op then set af d
               | I.Load (d, _, a) -> if is_a af a then set tf d
               | I.Gep (d, base, _, _) -> if is_a af base then set af d
               | I.Select (d, _, x, y) ->
                 if is_t tf x || is_t tf y then set tf d;
                 if is_a af x || is_a af y then set af d
               | I.Cast (d, (I.Bitcast_f_to_i | I.Bitcast_i_to_f), op) ->
                 if is_t tf op then set tf d
               | I.Call (dst, callee, args) when P.has_func program callee ->
                 let cf = Hashtbl.find tainted callee in
                 let ca = Hashtbl.find addr callee in
                 List.iteri
                   (fun j op ->
                     if is_t tf op then set cf j;
                     if is_a af op then set ca j)
                   args;
                 (match dst with
                 | None -> ()
                 | Some d ->
                   let g = P.func program callee in
                   Array.iter
                     (Array.iter (function
                       | I.Ret (Some op) ->
                         if is_t cf op then set tf d;
                         if is_a ca op then set af d
                       | _ -> ()))
                     g.P.blocks)
               | _ -> ());
               (* data derivation: provenance-tainted values seed it, and
                  every value-producing operation propagates it *)
               (match I.writes ins with
               | Some d ->
                 if
                   List.exists (is_t tf) (I.reads ins)
                   || (d < Array.length tf && tf.(d))
                 then set vf d
               | None -> ());
               match ins with
               | I.Mov (d, op) | I.Cast (d, _, op) ->
                 if is_v op then set vf d
               | I.Ibin (d, _, _, x, y)
               | I.Fbin (d, _, x, y)
               | I.Icmp (d, _, _, x, y)
               | I.Fcmp (d, _, x, y) ->
                 if is_v x || is_v y then set vf d
               | I.Gep (d, base, idx, _) ->
                 if is_v base || is_v idx then set vf d
               | I.Select (d, c, x, y) ->
                 if is_v c || is_v x || is_v y then set vf d
               | I.Load (d, _, a) -> if is_v a then set vf d
               | I.Call (dst, callee, args) when P.has_func program callee ->
                 let cv = Hashtbl.find derived callee in
                 List.iteri (fun j op -> if is_v op then set cv j) args;
                 (match dst with
                 | None -> ()
                 | Some d ->
                   let g = P.func program callee in
                   Array.iter
                     (Array.iter (function
                       | I.Ret (Some op) -> if is_t cv op then set vf d
                       | _ -> ()))
                     g.P.blocks)
               | _ -> ()))
          f.P.blocks)
      program.P.funcs
  done;
  { tainted; addr; derived }

let is_intrinsic (program : P.t) name = not (P.has_func program name)

(* The instruction classes that consume their operands — exactly the
   classes Consume.consuming_event admits as fault sites. *)
let consuming program = function
  | I.Mov _ | I.Load _ | I.Br _ | I.Ret _ -> false
  | I.Call (_, callee, _) -> is_intrinsic program callee
  | I.Ibin _ | I.Fbin _ | I.Icmp _ | I.Fcmp _ | I.Cast _ | I.Store _
  | I.Gep _ | I.Select _ | I.Cbr _ -> true

let tainted_op tf = function
  | I.Reg r -> r >= 0 && r < Array.length tf && tf.(r)
  | _ -> false

let has_tainted_read tf ins = List.exists (tainted_op tf) (I.reads ins)

(* ------------------------------------------------------------------ *)
(* Block-splitting rewriter. [decide] maps each original instruction to
   an action; [Guard] splits the block: the head ends with a conditional
   branch on [cond] (true = fault-free agreement, fall through), [fix]
   becomes a fresh recovery block branching back, and the continuation
   block starts with [post] followed by the rest of the original block.
   Generated instructions are never re-decided. *)

type action =
  | Keep
  | Inline of I.t list
  | Guard of { pre : I.t list; cond : I.reg; fix : I.t list; post : I.t list }

let rewrite_func ~decide (f : P.func) =
  let nregs = ref f.P.nregs in
  let fresh () =
    let r = !nregs in
    incr nregs;
    r
  in
  let base = Array.length f.P.blocks in
  let nblocks = ref base in
  let fresh_block () =
    let b = !nblocks in
    incr nblocks;
    b
  in
  let head = Array.make base [||] in
  let extra = ref [] in
  let store idx instrs =
    let a = Array.of_list instrs in
    if idx < base then head.(idx) <- a else extra := (idx, a) :: !extra
  in
  let rec emit idx acc = function
    | [] -> store idx (List.rev acc)
    | ins :: rest -> (
      match decide ~fresh ins with
      | Keep -> emit idx (ins :: acc) rest
      | Inline repl -> emit idx (List.rev_append repl acc) rest
      | Guard { pre; cond; fix; post } ->
        let fixb = fresh_block () in
        let contb = fresh_block () in
        store idx
          (List.rev_append acc (pre @ [ I.Cbr (I.Reg cond, contb, fixb) ]));
        store fixb (fix @ [ I.Br contb ]);
        emit contb [] (post @ rest))
  in
  Array.iteri (fun i b -> emit i [] (Array.to_list b)) f.P.blocks;
  let blocks = Array.make !nblocks [||] in
  Array.blit head 0 blocks 0 base;
  List.iter (fun (i, b) -> blocks.(i) <- b) !extra;
  { f with P.nregs = !nregs; P.blocks }

let with_dst ins r =
  match ins with
  | I.Ibin (_, op, ty, a, b) -> I.Ibin (r, op, ty, a, b)
  | I.Fbin (_, op, a, b) -> I.Fbin (r, op, a, b)
  | I.Icmp (_, c, ty, a, b) -> I.Icmp (r, c, ty, a, b)
  | I.Fcmp (_, c, a, b) -> I.Fcmp (r, c, a, b)
  | I.Cast (_, c, a) -> I.Cast (r, c, a)
  | I.Gep (_, b, ix, s) -> I.Gep (r, b, ix, s)
  | I.Select (_, c, x, y) -> I.Select (r, c, x, y)
  | I.Call (Some _, f, args) -> I.Call (Some r, f, args)
  | _ -> invalid_arg "Protect.with_dst"

(* ------------------------------------------------------------------ *)
(* Duplication-with-compare. The copies run before the original write so
   an instruction that reads its own destination (d = add d, x) feeds
   all three instances the clean value; the compare and the recovery Mov
   consume only provenance-free results, so the golden trace gains no
   unprotected sites. A corrupted consumption corrupts exactly one of
   the three instances (one dynamic instruction, one slot), and the vote
   repairs it from an agreeing copy. *)

let dwc_decide program tf ~fresh ins =
  if not (consuming program ins && has_tainted_read tf ins) then Keep
  else
    match ins with
    | I.Store (ty, v, a) ->
      (* Verify the written cell: reload and compare bit images; on
         mismatch the recovery block re-stores from the (clean)
         register. The compare's loaded operand may carry the stored
         cell's provenance and its value operand the object's — faults
         on either force the re-store, which masks them. *)
      let l = fresh () and c = fresh () in
      Guard
        {
          pre =
            [
              I.Store (ty, v, a);
              I.Load (l, ty, a);
              I.Icmp (c, I.Ieq, T.I64, I.Reg l, v);
            ];
          cond = c;
          fix = [ I.Store (ty, v, a) ];
          post = [];
        }
    | I.Cbr (cond, l1, l2) ->
      (* Triplicate the condition through Or-with-zero copies; the final
         branch consumes a provenance-free copy, so the site moves onto
         the three voted copies. *)
      let t1 = fresh () and t2 = fresh () and t3 = fresh () in
      let e = fresh () in
      let zero = I.Imm (B.of_int64 0L) in
      let dup d = I.Ibin (d, I.Or, T.I64, cond, zero) in
      Guard
        {
          pre =
            [ dup t1; dup t2; dup t3;
              I.Icmp (e, I.Ieq, T.I64, I.Reg t1, I.Reg t2) ];
          cond = e;
          fix = [ I.Mov (t1, I.Reg t3) ];
          post = [ I.Cbr (I.Reg t1, l1, l2) ];
        }
    | I.Call (Some d, name, _) when is_intrinsic program name ->
      if not (List.mem name Moard_vm.Semantics.intrinsics) then Keep
        (* hart intrinsics are scheduler state, not pure — never voted
           (they also take no operands, so they are never tainted) *)
      else
        let r2 = fresh () and r3 = fresh () and c = fresh () in
        Guard
          {
            pre =
              [ with_dst ins r2; with_dst ins r3; ins;
                I.Icmp (c, I.Ieq, T.I64, I.Reg d, I.Reg r2) ];
            cond = c;
            fix = [ I.Mov (d, I.Reg r3) ];
            post = [];
          }
    | I.Ibin _ | I.Fbin _ | I.Icmp _ | I.Fcmp _ | I.Cast _ | I.Gep _
    | I.Select _ ->
      let d = match I.writes ins with Some d -> d | None -> assert false in
      let r2 = fresh () and r3 = fresh () and c = fresh () in
      Guard
        {
          pre =
            [ with_dst ins r2; with_dst ins r3; ins;
              I.Icmp (c, I.Ieq, T.I64, I.Reg d, I.Reg r2) ];
          cond = c;
          fix = [ I.Mov (d, I.Reg r3) ];
          post = [];
        }
    | _ -> Keep

let apply_dwc program ~segment ~obj =
  let t = taint_of program ~obj in
  let funcs =
    List.map
      (fun (f : P.func) ->
        if not (segment f.P.fname) then f
        else
          let tf = Hashtbl.find t.tainted f.P.fname in
          rewrite_func ~decide:(dwc_decide program tf) f)
      program.P.funcs
  in
  { program with P.funcs }

(* ------------------------------------------------------------------ *)
(* Address-range clamp. Applied after every global-based gep whose index
   may carry the object's provenance: the computed address is clamped
   into the base global's extent. The clamp consumes only the gep result
   (provenance-free), so it adds zero sites, and it sits downstream of
   the gep's own consumption — a fault on the gep's index slot is caught
   too, which a pre-gep index clamp would miss. *)

let clamp_decide (program : P.t) vf ~fresh ins =
  match ins with
  | I.Gep (d, I.Glob g, idx, scale) when tainted_op vf idx ->
    let n = (P.global program g).P.gelems in
    let lo = fresh () and hi = fresh () in
    let c1 = fresh () and s1 = fresh () and c2 = fresh () in
    Inline
      [
        ins;
        I.Mov (lo, I.Glob g);
        I.Gep (hi, I.Glob g, I.Imm (B.of_int64 (Int64.of_int (n - 1))), scale);
        I.Icmp (c1, I.Islt, T.I64, I.Reg d, I.Reg lo);
        I.Select (s1, I.Reg c1, I.Reg lo, I.Reg d);
        I.Icmp (c2, I.Isgt, T.I64, I.Reg s1, I.Reg hi);
        I.Select (d, I.Reg c2, I.Reg hi, I.Reg s1);
      ]
  | _ -> Keep

let apply_clamp program ~segment ~obj =
  let t = taint_of program ~obj in
  let funcs =
    List.map
      (fun (f : P.func) ->
        if not (segment f.P.fname) then f
        else
          let vf = Hashtbl.find t.derived f.P.fname in
          rewrite_func ~decide:(clamp_decide program vf) f)
      program.P.funcs
  in
  { program with P.funcs }

(* ------------------------------------------------------------------ *)
(* ABFT row/column checksums for a square f64 object. *)

let abft_dim gelems =
  let n = int_of_float (Float.round (sqrt (float_of_int gelems))) in
  if n >= 2 && n * n = gelems then Some n else None

let abft_names obj =
  ( "__abft_" ^ obj ^ "_enc",
    "__abft_" ^ obj ^ "_fix",
    "__abft_" ^ obj ^ "_rs",
    "__abft_" ^ obj ^ "_cs" )

(* Encode/fix synthesized through the MiniC front end against a
   placeholder object global of the right shape; the compiled functions
   and checksum globals are merged into the target program (the
   placeholder is dropped — the real object is already there). The fix
   tolerance is relative: incremental float maintenance drifts by
   rounding, never by 1e-6 of the magnitude. *)
let abft_module ~obj ~n =
  let enc, fix, rs, cs = abft_names obj in
  let open Moard_lang.Ast.Dsl in
  let at er ec = obj.%((er * i n) + ec) in
  let enc_fn =
    fn enc
      [
        for_ "r" (i 0) (i n)
          [
            flt_ "s" (f 0.0);
            for_ "c" (i 0) (i n) [ "s" <-- v "s" + at (v "r") (v "c") ];
            (rs.%(v "r") <- v "s");
          ];
        for_ "c" (i 0) (i n)
          [
            flt_ "s" (f 0.0);
            for_ "r" (i 0) (i n) [ "s" <-- v "s" + at (v "r") (v "c") ];
            (cs.%(v "c") <- v "s");
          ];
        ret_void;
      ]
  in
  let bad sum ref_ = fabs_ (sum - ref_) > f 1e-6 * (f 1.0 + fabs_ ref_) in
  let fix_fn =
    fn fix
      [
        int_ "badr" (i (-1));
        flt_ "dr" (f 0.0);
        for_ "r" (i 0) (i n)
          [
            flt_ "s" (f 0.0);
            for_ "c" (i 0) (i n) [ "s" <-- v "s" + at (v "r") (v "c") ];
            when_
              (bad (v "s") (rs.%(v "r")))
              [ "badr" <-- v "r"; "dr" <-- v "s" - rs.%(v "r") ];
          ];
        int_ "badc" (i (-1));
        for_ "c" (i 0) (i n)
          [
            flt_ "s" (f 0.0);
            for_ "r" (i 0) (i n) [ "s" <-- v "s" + at (v "r") (v "c") ];
            when_ (bad (v "s") (cs.%(v "c"))) [ "badc" <-- v "c" ];
          ];
        when_
          ((v "badr" >= i 0) && (v "badc" >= i 0))
          [
            Moard_lang.Ast.Sstore
              ( obj,
                (v "badr" * i n) + v "badc",
                at (v "badr") (v "badc") - v "dr" );
          ];
        ret_void;
      ]
  in
  {
    Moard_lang.Ast.globals =
      [ garr_f64 obj (Stdlib.( * ) n n); garr_f64 rs n; garr_f64 cs n ];
    funs = [ enc_fn; fix_fn ];
  }

(* Incremental checksum maintenance: a store into the object inside the
   segment also adds (new - old) to the row and column sums. Only stores
   whose address register is defined, in the same block with no
   intervening redefinition of address or index, by a gep off the
   object's own base are rewritten — a may-approximation here would
   compute wild row/column indices and corrupt memory. *)

let reaching_gep ~obj block upto a =
  let redef r ins = I.writes ins = Some r in
  let rec scan i =
    if i < 0 then None
    else
      match block.(i) with
      | I.Gep (d, I.Glob g, idx, _) when d = a && String.equal g obj ->
        (* the index value must still be live at the store *)
        let idx_ok =
          match idx with
          | I.Reg r ->
            let clobbered = ref false in
            for j = i + 1 to upto - 1 do
              if redef r block.(j) then clobbered := true
            done;
            not !clobbered
          | _ -> true
        in
        if idx_ok then Some idx else None
      | ins when redef a ins -> None
      | _ -> if i = 0 then None else scan (i - 1)
  in
  scan (upto - 1)

let track_stores ~obj ~n (f : P.func) =
  let _, _, rs, cs = abft_names obj in
  let nregs = ref f.P.nregs in
  let fresh () =
    let r = !nregs in
    incr nregs;
    r
  in
  let fsize = T.size T.F64 in
  let blocks =
    Array.map
      (fun block ->
        let out = ref [] in
        Array.iteri
          (fun i ins ->
            (match ins with
            | I.Store (T.F64, value, I.Reg a) -> (
              match reaching_gep ~obj block i a with
              | Some idx ->
                let old = fresh () and dv = fresh () in
                let ir = fresh () and row = fresh () and col = fresh () in
                let bump g which =
                  let p = fresh () and cur = fresh () and nw = fresh () in
                  [
                    I.Gep (p, I.Glob g, I.Reg which, fsize);
                    I.Load (cur, T.F64, I.Reg p);
                    I.Fbin (nw, I.Fadd, I.Reg cur, I.Reg dv);
                    I.Store (T.F64, I.Reg nw, I.Reg p);
                  ]
                in
                let track =
                  [
                    I.Load (old, T.F64, I.Reg a);
                    I.Fbin (dv, I.Fsub, value, I.Reg old);
                    I.Mov (ir, idx);
                    I.Ibin
                      ( row, I.Sdiv, T.I64, I.Reg ir,
                        I.Imm (B.of_int64 (Int64.of_int n)) );
                    I.Ibin
                      ( col, I.Srem, T.I64, I.Reg ir,
                        I.Imm (B.of_int64 (Int64.of_int n)) );
                  ]
                  @ bump rs row @ bump cs col
                in
                out := List.rev_append track !out
              | None -> ())
            | _ -> ());
            out := ins :: !out)
          block;
        Array.of_list (List.rev !out))
      f.P.blocks
  in
  { f with P.nregs = !nregs; P.blocks = blocks }

let wrap_segment_calls ~segment ~enc ~fix (f : P.func) =
  let blocks =
    Array.map
      (fun block ->
        Array.of_list
          (List.concat_map
             (fun ins ->
               match ins with
               | I.Call (_, callee, _) when segment callee ->
                 [ I.Call (None, enc, []); ins; I.Call (None, fix, []) ]
               | _ -> [ ins ])
             (Array.to_list block)))
      f.P.blocks
  in
  { f with P.blocks }

let has_wrap_site (program : P.t) ~segment =
  List.exists
    (fun (f : P.func) ->
      (not (segment f.P.fname))
      && Array.exists
           (Array.exists (function
             | I.Call (_, callee, _) -> segment callee
             | _ -> false))
           f.P.blocks)
    program.P.funcs

let apply_abft (program : P.t) ~segment ~obj =
  let g = P.global program obj in
  let n =
    match abft_dim g.P.gelems with
    | Some n when g.P.gty = T.F64 -> n
    | _ -> invalid_arg "Protect.apply_abft: object is not a square f64 matrix"
  in
  let enc, fix, _, _ = abft_names obj in
  let compiled = Moard_lang.Compile.program (abft_module ~obj ~n) in
  let added_globals =
    List.filter
      (fun (gl : P.global) -> not (String.equal gl.P.gname obj))
      compiled.P.globals
  in
  let funcs =
    List.map
      (fun (f : P.func) ->
        if segment f.P.fname then track_stores ~obj ~n f
        else wrap_segment_calls ~segment ~enc ~fix f)
      program.P.funcs
  in
  {
    P.globals = program.P.globals @ added_globals;
    P.funcs = funcs @ compiled.P.funcs;
  }

(* ------------------------------------------------------------------ *)

let has_tainted_site (program : P.t) ~segment ~obj =
  let t = taint_of program ~obj in
  List.exists
    (fun (f : P.func) ->
      segment f.P.fname
      &&
      let tf = Hashtbl.find t.tainted f.P.fname in
      Array.exists
        (Array.exists (fun ins ->
             consuming program ins && has_tainted_read tf ins))
        f.P.blocks)
    program.P.funcs

let has_clampable_gep (program : P.t) ~segment ~obj =
  let t = taint_of program ~obj in
  List.exists
    (fun (f : P.func) ->
      segment f.P.fname
      &&
      let vf = Hashtbl.find t.derived f.P.fname in
      Array.exists
        (Array.exists (function
          | I.Gep (_, I.Glob _, idx, _) -> tainted_op vf idx
          | _ -> false))
        f.P.blocks)
    program.P.funcs

let applicable (program : P.t) ~segment ~obj = function
  | Dwc -> has_tainted_site program ~segment ~obj
  | Clamp -> has_clampable_gep program ~segment ~obj
  | Abft -> (
    match P.global program obj with
    | exception Not_found -> false
    | g ->
      g.P.gty = T.F64
      && abft_dim g.P.gelems <> None
      && has_wrap_site program ~segment
      &&
      let enc, _, _, _ = abft_names obj in
      not (P.has_func program enc))

let candidates program ~segment ~obj =
  let ts =
    List.filter (applicable program ~segment ~obj) [ Abft; Clamp; Dwc ]
  in
  let singles = List.map (fun t -> { object_name = obj; transforms = [ t ] }) ts in
  let combo =
    if List.mem Clamp ts && List.mem Dwc ts then
      [ { object_name = obj; transforms = [ Clamp; Dwc ] } ]
    else []
  in
  singles @ combo

let apply program ~segment plan =
  List.fold_left
    (fun p t ->
      match t with
      | Abft -> apply_abft p ~segment ~obj:plan.object_name
      | Clamp -> apply_clamp p ~segment ~obj:plan.object_name
      | Dwc -> apply_dwc p ~segment ~obj:plan.object_name)
    program (normalize plan.transforms)

let protect_workload (wl : Moard_inject.Workload.t) plan =
  let segment fn = Moard_inject.Workload.in_segment wl fn in
  { wl with Moard_inject.Workload.program = apply wl.program ~segment plan }
