(* FNV-1a alone is unusable as a circle position: a one-character suffix
   change barely stirs the high bits, so sequential vnode labels (and
   sequential keys) land adjacent and the ring collapses onto one arc.
   The splitmix64 finalizer avalanches every input bit across the word. *)
let mix h =
  let h = Int64.logxor h (Int64.shift_right_logical h 30) in
  let h = Int64.mul h 0xbf58476d1ce4e5b9L in
  let h = Int64.logxor h (Int64.shift_right_logical h 27) in
  let h = Int64.mul h 0x94d049bb133111ebL in
  Int64.logxor h (Int64.shift_right_logical h 31)

let hash s = mix (Moard_store.Record.fnv1a64 s)

type t = {
  points : (int64 * string) array;  (* sorted by unsigned point *)
  names : string list;
  vnodes : int;
}

let names t = t.names
let vnodes t = t.vnodes

let compare_points (h1, n1) (h2, n2) =
  match Int64.unsigned_compare h1 h2 with
  | 0 -> String.compare n1 n2
  | c -> c

let make ?(vnodes = 64) names =
  if names = [] then invalid_arg "Ring.make: no shards";
  if vnodes < 1 then invalid_arg "Ring.make: vnodes";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Ring.make: duplicate shard %S" n);
      Hashtbl.replace seen n ())
    names;
  let points =
    Array.init
      (vnodes * List.length names)
      (fun i ->
        let name = List.nth names (i / vnodes) in
        (hash (Printf.sprintf "moard-ring-v1\n%s#%d" name (i mod vnodes)), name))
  in
  Array.sort compare_points points;
  { points; names; vnodes }

(* First point clockwise of [h] (unsigned order), wrapping. *)
let successor t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1
    else hi := mid
  done;
  if !lo = n then 0 else !lo

let owners t ?(n = 2) key =
  let want = min (max 1 n) (List.length t.names) in
  let start = successor t (hash key) in
  let total = Array.length t.points in
  let out = ref [] in
  let k = ref 0 in
  while List.length !out < want && !k < total do
    let name = snd t.points.((start + !k) mod total) in
    if not (List.mem name !out) then out := !out @ [ name ];
    incr k
  done;
  !out

let owner t key = List.hd (owners t ~n:1 key)
