module Chaos = Moard_chaos.Chaos
module Sock = Moard_chaos.Sock
module Rng = Moard_chaos.Rng
module Monotime = Moard_chaos.Monotime
module Registry = Moard_kernels.Registry
module Protocol = Moard_server.Protocol
module Client = Moard_server.Client
module Jsonx = Moard_server.Jsonx
module Version = Moard_server.Version

type shard = { name : string; socket : string }

type config = {
  socket : string;
  shards : shard list;
  replication : int;
  vnodes : int;
  hedge_after_s : float option;
  hedge_floor_s : float;
  rpc_timeout_s : float;
  attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  warm_auto : bool;
  seed : int;
  sock : Sock.t;
  partitioned : string -> bool;
}

let default_config ~shards =
  {
    socket = "moard-cluster.sock";
    shards;
    replication = 2;
    vnodes = 64;
    hedge_after_s = None;
    hedge_floor_s = 0.05;
    rpc_timeout_s = 600.;
    attempts = 4;
    base_delay_s = 0.05;
    max_delay_s = 1.0;
    warm_auto = true;
    seed = 0;
    sock = Sock.real;
    partitioned = (fun _ -> false);
  }

(* Single-flight entry, same shape as the daemon's: leader forwards,
   followers share the response. *)
type flight = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable fresult : (Jsonx.t * string option) option;
}

type t = {
  cfg : config;
  ring : Ring.t;
  listen : Unix.file_descr;
  stop_flag : bool Atomic.t;
  m : Mutex.t;
  conns_done : Condition.t;
  flights : (string, flight) Hashtbl.t;
  rng : Rng.t;  (* retry backoff jitter; guarded by [m] *)
  lat : float array;  (* recent forward latencies, ring buffer *)
  mutable lat_n : int;
  mutable inflight : int;  (* client forwards in progress *)
  mutable conns : int;
  mutable served : int;
  mutable errors : int;
  mutable forwarded : int;
  mutable coalesced : int;
  mutable hedged : int;
  mutable hedge_wins : int;
  mutable failovers : int;
  mutable retries : int;
  mutable integrity_failures : int;
  warm_q : Jsonx.t Queue.t;
  warm_seen : (string, unit) Hashtbl.t;
  mutable warmed : int;
  mutable warm_errors : int;
  mutable accept_thread : Thread.t option;
  mutable warm_thread : Thread.t option;
  mutable stopped : bool;
  started_at : float;
}

let stopping t = Atomic.get t.stop_flag
let ring t = t.ring

let bump t f =
  Mutex.lock t.m;
  f t;
  Mutex.unlock t.m

(* ---------------- routing ---------------- *)

(* Where a request lives.  [warm] routes like the [advf] it precomputes
   and [report] like the [campaign] whose journal it reads, so related
   work always lands on the same shard.  Placement keys deliberately
   exclude tuning fields for advf-class ops (same object, different
   budget → same shard, sharing the golden-run context); campaign keys
   keep every plan parameter since the journal is plan-specific. *)
let routing_key req =
  let s name = Option.value ~default:"" (Jsonx.str (Jsonx.member name req)) in
  match s "op" with
  | "advf" | "warm" -> Printf.sprintf "advf|%s|%s" (s "benchmark") (s "object")
  | "predict" -> Printf.sprintf "predict|%s|%s" (s "benchmark") (s "object")
  | "advise" -> Printf.sprintf "advise|%s" (s "benchmark")
  | "campaign" | "report" ->
    "campaign|" ^ Jsonx.signature ~drop:[ "proto"; "req_fnv"; "op" ] req
  | _ -> Jsonx.signature ~drop:[ "proto"; "req_fnv" ] req

let shard_named t name = List.find (fun s -> s.name = name) t.cfg.shards

let owners_of t req =
  List.map (shard_named t)
    (Ring.owners t.ring ~n:t.cfg.replication (routing_key req))

(* ---------------- one forward, with retry ---------------- *)

(* The request as it goes on the inter-node wire: canonical transport
   fields up front and a checksum over the canonical signature, so a
   bit flipped in the header frame — even one that still parses — is
   refused by the shard instead of computing the wrong thing. *)
let seal req =
  match req with
  | Jsonx.Obj fields ->
    let fnv = Protocol.fnv_hex (Jsonx.signature ~drop:[ "proto"; "req_fnv" ] req) in
    let core =
      List.filter (fun (k, _) -> k <> "proto" && k <> "req_fnv") fields
    in
    Jsonx.Obj
      (("proto", Jsonx.Int Protocol.version)
      :: ("req_fnv", Jsonx.Str fnv)
      :: core)
  | v -> v

(* The response direction is covered by payload_fnv; what remains is an
   ok-header whose identifying echoes were corrupted in flight. *)
let verify_echo req header =
  List.iter
    (fun k ->
      match (Jsonx.str (Jsonx.member k req), Jsonx.str (Jsonx.member k header)) with
      | Some a, Some b when a <> b ->
        raise
          (Protocol.Protocol_error
             (Printf.sprintf "shard echoed %s=%S for a request with %S" k b a))
      | _ -> ())
    [ "op"; "benchmark"; "object" ]

let retryable_connect = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET
        | Unix.EHOSTUNREACH ),
        _,
        _ ) ->
    true
  | _ -> false

let retryable_code = function
  | "overloaded" | "draining" | "integrity" -> true
  | _ -> false

let connect_shard t (s : shard) =
  if t.cfg.partitioned s.name then
    raise
      (Unix.Unix_error (Unix.EHOSTUNREACH, "connect", s.name ^ " (partitioned)"));
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_UNIX s.socket);
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.rpc_timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.rpc_timeout_s
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

(* A hedged race between forwarding legs.  Losers are cancelled by
   shutting their shard connections down — the shard sees client EOF
   and trips the compute's cancel token (unless someone coalesced onto
   it there).  The fd registry is guarded by [rm] so a winner never
   shuts down a descriptor number the loser has already returned to
   the OS. *)
type race = {
  rm : Mutex.t;
  mutable winner : (int * string * (Jsonx.t * string option)) option;
  mutable finished : int;
  mutable errs : exn list;
  mutable race_cancelled : bool;
  mutable fds : (int * Unix.file_descr) list;
}

exception Cancelled_leg

let race_is_cancelled race =
  Mutex.lock race.rm;
  let c = race.race_cancelled in
  Mutex.unlock race.rm;
  c

let with_shard_conn t race leg s f =
  let fd = connect_shard t s in
  let registered =
    match race with
    | None -> true
    | Some r ->
      Mutex.lock r.rm;
      let ok = not r.race_cancelled in
      if ok then r.fds <- (leg, fd) :: r.fds;
      Mutex.unlock r.rm;
      ok
  in
  if not registered then begin
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise Cancelled_leg
  end;
  Fun.protect
    ~finally:(fun () ->
      (match race with
      | None -> ()
      | Some r ->
        Mutex.lock r.rm;
        r.fds <- List.filter (fun (l, d) -> not (l = leg && d = fd)) r.fds;
        Mutex.unlock r.rm);
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let backoff_delay t i =
  Mutex.lock t.m;
  let d =
    Client.backoff ~base_delay_s:t.cfg.base_delay_s
      ~max_delay_s:t.cfg.max_delay_s t.rng i
  in
  Mutex.unlock t.m;
  d

exception Retry_leg of exn

(* Forward [req] to one shard with the client's capped jittered backoff.
   Mirrors {!Client.rpc_retry} semantics: connect-level failures always
   retry (no request escaped); mid-flight transport failures retry only
   when [may_retry]; typed overloaded/draining/integrity responses
   retry with backoff. *)
let forward_retry t ?race ?(leg = 0) ?attempts ~may_retry (s : shard) req =
  let attempts = Option.value ~default:t.cfg.attempts attempts in
  let sealed = seal req in
  let rec go i =
    (match race with
    | Some r when race_is_cancelled r -> raise Cancelled_leg
    | _ -> ());
    let attempt () =
      match
        with_shard_conn t race leg s (fun fd ->
            Protocol.send ~sock:t.cfg.sock fd sealed;
            match Protocol.recv ~sock:t.cfg.sock fd with
            | None ->
              raise
                (Protocol.Protocol_error "shard closed the connection mid-request")
            | Some (h, p) ->
              verify_echo req h;
              (h, p))
      with
      | resp -> resp
      | exception Cancelled_leg -> raise Cancelled_leg
      | exception e when retryable_connect e -> raise (Retry_leg e)
      | exception ((Protocol.Protocol_error _ | Unix.Unix_error _) as e)
        when may_retry ->
        raise (Retry_leg e)
    in
    bump t (fun t -> t.forwarded <- t.forwarded + 1);
    match attempt () with
    | (h, _) as resp -> (
      match Client.error_of h with
      | Some (code, _) when retryable_code code && i + 1 < attempts ->
        if code = "integrity" then
          bump t (fun t -> t.integrity_failures <- t.integrity_failures + 1);
        bump t (fun t -> t.retries <- t.retries + 1);
        Unix.sleepf (backoff_delay t i);
        go (i + 1)
      | _ -> resp)
    | exception Retry_leg e ->
      if i + 1 < attempts then begin
        bump t (fun t -> t.retries <- t.retries + 1);
        Unix.sleepf (backoff_delay t i);
        go (i + 1)
      end
      else raise e
  in
  go 0

(* ---------------- hedged / failover forwarding ---------------- *)

let note_latency t d =
  Mutex.lock t.m;
  t.lat.(t.lat_n mod Array.length t.lat) <- d;
  t.lat_n <- t.lat_n + 1;
  Mutex.unlock t.m

(* When to launch the second leg: a fixed configured delay, or an
   adaptive one — twice the p95 of recent forward latencies, floored.
   With fewer than 8 observations there is no signal; wait the full
   timeout (i.e. effectively do not hedge). *)
let hedge_deadline t =
  match t.cfg.hedge_after_s with
  | Some d -> d
  | None ->
    Mutex.lock t.m;
    let n = min t.lat_n (Array.length t.lat) in
    let d =
      if n < 8 then t.cfg.rpc_timeout_s
      else begin
        let xs = Array.sub t.lat 0 n in
        Array.sort compare xs;
        let p95 = xs.(int_of_float (0.95 *. float_of_int (n - 1))) in
        Float.max t.cfg.hedge_floor_s (2. *. p95)
      end
    in
    Mutex.unlock t.m;
    d

(* Forward to the owner chain: primary first, a hedge leg on the first
   distinct replica once the hedge deadline passes (idempotent ops
   only), immediate failover down the chain when every launched leg has
   failed.  First response wins; losers are cancelled through their
   sockets.  All replicas down → a typed [unavailable] error, which
   keeps the cluster invariant: typed error or byte-identical payload,
   never silence, never wrong bytes. *)
let race_forward t shards req ~may_retry =
  match shards with
  | [] ->
    ( (Protocol.error ~code:"unavailable" ~message:"no shard owns this key", None),
      None )
  | shards ->
    let n_shards = List.length shards in
    let race =
      {
        rm = Mutex.create ();
        winner = None;
        finished = 0;
        errs = [];
        race_cancelled = false;
        fds = [];
      }
    in
    let spawn leg (s : shard) =
      ignore
        (Thread.create
           (fun () ->
             let outcome =
               match forward_retry t ~race ~leg ~may_retry s req with
               | resp -> Ok resp
               | exception e -> Error e
             in
             Mutex.lock race.rm;
             (match outcome with
             | Ok resp when race.winner = None ->
               race.winner <- Some (leg, s.name, resp)
             | Ok _ -> ()
             | Error Cancelled_leg -> ()
             | Error e -> race.errs <- e :: race.errs);
             race.finished <- race.finished + 1;
             Mutex.unlock race.rm)
           ())
    in
    let started = ref 1 in
    spawn 0 (List.hd shards);
    let hedge_after = hedge_deadline t in
    let t0 = Monotime.now () in
    let rec wait () =
      Mutex.lock race.rm;
      let w = race.winner and fin = race.finished in
      Mutex.unlock race.rm;
      match w with
      | Some (leg, name, resp) ->
        Mutex.lock race.rm;
        race.race_cancelled <- true;
        let losers = List.filter (fun (l, _) -> l <> leg) race.fds in
        List.iter
          (fun (_, fd) ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
          losers;
        Mutex.unlock race.rm;
        if leg > 0 then bump t (fun t -> t.hedge_wins <- t.hedge_wins + 1);
        (resp, Some name)
      | None ->
        if fin >= !started then begin
          (* every launched leg failed *)
          let last_err =
            Mutex.lock race.rm;
            let e = match race.errs with e :: _ -> Some e | [] -> None in
            Mutex.unlock race.rm;
            e
          in
          let connect_only =
            match last_err with Some e -> retryable_connect e | None -> true
          in
          if !started < n_shards && (may_retry || connect_only) then begin
            bump t (fun t -> t.failovers <- t.failovers + 1);
            incr started;
            spawn (!started - 1) (List.nth shards (!started - 1));
            wait ()
          end
          else
            ( ( Protocol.error ~code:"unavailable"
                  ~message:
                    (Printf.sprintf "all %d replica(s) failed: %s" !started
                       (match last_err with
                       | Some e -> Printexc.to_string e
                       | None -> "no diagnostic")),
                None ),
              None )
        end
        else if
          may_retry
          && !started < n_shards
          && Monotime.now () -. t0 >= hedge_after *. float_of_int !started
        then begin
          bump t (fun t -> t.hedged <- t.hedged + 1);
          incr started;
          spawn (!started - 1) (List.nth shards (!started - 1));
          wait ()
        end
        else begin
          Thread.delay 0.003;
          wait ()
        end
    in
    wait ()

(* ---------------- warming ---------------- *)

let enqueue_warm_req t wreq =
  let sgn = Jsonx.signature ~drop:[ "proto"; "req_fnv" ] wreq in
  Mutex.lock t.m;
  let fresh = not (Hashtbl.mem t.warm_seen sgn) in
  if fresh then begin
    Hashtbl.replace t.warm_seen sgn ();
    Queue.push wreq t.warm_q
  end;
  Mutex.unlock t.m;
  fresh

let warm_option_fields req =
  List.filter_map
    (fun k -> Option.map (fun v -> (k, v)) (Jsonx.member k req))
    [ "k"; "fi_budget"; "error_model" ]

(* A freshly computed object is a hotness signal: queue its registry
   siblings (same benchmark, same analysis options) for precompute. *)
let auto_warm t req =
  match Jsonx.str (Jsonx.member "benchmark" req) with
  | None -> ()
  | Some b -> (
    match Registry.find b with
    | exception Not_found -> ()
    | e ->
      let keep = warm_option_fields req in
      let just_computed = Jsonx.str (Jsonx.member "object" req) in
      List.iter
        (fun obj ->
          if Some obj <> just_computed then
            ignore
              (enqueue_warm_req t
                 (Jsonx.Obj
                    (("op", Jsonx.Str "warm")
                    :: ("benchmark", Jsonx.Str b)
                    :: ("object", Jsonx.Str obj)
                    :: keep))))
        e.Registry.objects)

let handle_warm t req =
  match
    let benchmark =
      match Jsonx.str (Jsonx.member "benchmark" req) with
      | Some b -> b
      | None -> failwith "missing string field \"benchmark\""
    in
    let e =
      match Registry.find benchmark with
      | e -> e
      | exception Not_found ->
        failwith (Printf.sprintf "unknown benchmark %S" benchmark)
    in
    let object_name =
      match Jsonx.str (Jsonx.member "object" req) with
      | Some o -> o
      | None -> failwith "missing string field \"object\""
    in
    (e, object_name)
  with
  | exception Failure msg ->
    (Protocol.error ~code:"bad-request" ~message:msg, None)
  | e, object_name ->
    let wreq =
      Jsonx.Obj
        (("op", Jsonx.Str "warm")
        :: ("benchmark", Jsonx.Str e.Registry.benchmark)
        :: ("object", Jsonx.Str object_name)
        :: warm_option_fields req)
    in
    let fresh = enqueue_warm_req t wreq in
    ( Protocol.ok
        [
          ("op", Jsonx.Str "warm");
          ("benchmark", Jsonx.Str e.Registry.benchmark);
          ("object", Jsonx.Str object_name);
          ("queued", Jsonx.Bool fresh);
        ],
      None )

(* Push queued warms to their owning shards (which queue the actual
   compute behind their own idle-only warm threads), strictly while no
   client forward is in flight here. *)
let warm_loop t () =
  while not (stopping t) do
    let item =
      Mutex.lock t.m;
      let it =
        if (not (Queue.is_empty t.warm_q)) && t.inflight = 0 then
          Some (Queue.pop t.warm_q)
        else None
      in
      Mutex.unlock t.m;
      it
    in
    match item with
    | None -> Thread.delay 0.02
    | Some wreq -> (
      let owners = owners_of t wreq in
      match owners with
      | [] -> bump t (fun t -> t.warm_errors <- t.warm_errors + 1)
      | primary :: _ -> (
        match forward_retry t ~may_retry:true primary wreq with
        | h, _ ->
          if Client.error_of h = None then
            bump t (fun t -> t.warmed <- t.warmed + 1)
          else bump t (fun t -> t.warm_errors <- t.warm_errors + 1)
        | exception _ ->
          bump t (fun t -> t.warm_errors <- t.warm_errors + 1)))
  done

(* ---------------- stat ---------------- *)

let proxy_counters t =
  Mutex.lock t.m;
  let o =
    Jsonx.Obj
      [
        ("served", Jsonx.Int t.served);
        ("errors", Jsonx.Int t.errors);
        ("forwarded", Jsonx.Int t.forwarded);
        ("coalesced", Jsonx.Int t.coalesced);
        ("hedged", Jsonx.Int t.hedged);
        ("hedge_wins", Jsonx.Int t.hedge_wins);
        ("failovers", Jsonx.Int t.failovers);
        ("retries", Jsonx.Int t.retries);
        ("integrity_failures", Jsonx.Int t.integrity_failures);
        ( "warming",
          Jsonx.Obj
            [
              ("queued", Jsonx.Int (Queue.length t.warm_q));
              ("warmed", Jsonx.Int t.warmed);
              ("errors", Jsonx.Int t.warm_errors);
            ] );
      ]
  in
  Mutex.unlock t.m;
  o

let cluster_stat t =
  let shard_stats =
    List.map
      (fun s ->
        match
          forward_retry t ~attempts:1 ~may_retry:true s
            (Jsonx.Obj [ ("op", Jsonx.Str "stat") ])
        with
        | h, _ -> (s, Some h)
        | exception _ -> (s, None))
      t.cfg.shards
  in
  Protocol.ok
    [
      ("op", Jsonx.Str "stat");
      ("role", Jsonx.Str "proxy");
      ("server", Jsonx.Str Version.version);
      ("proto", Jsonx.Int Protocol.version);
      ("uptime_s", Jsonx.Float (Monotime.now () -. t.started_at));
      ( "ring",
        Jsonx.Obj
          [
            ("shards", Jsonx.Int (List.length t.cfg.shards));
            ("vnodes", Jsonx.Int t.cfg.vnodes);
            ("replication", Jsonx.Int t.cfg.replication);
          ] );
      ("proxy", proxy_counters t);
      ( "shards",
        Jsonx.Arr
          (List.map
             (fun ((s : shard), h) ->
               Jsonx.Obj
                 ([
                    ("name", Jsonx.Str s.name);
                    ("socket", Jsonx.Str s.socket);
                    ("alive", Jsonx.Bool (h <> None));
                  ]
                 @ match h with Some h -> [ ("stat", h) ] | None -> []))
             shard_stats) );
    ]

(* ---------------- dispatch ---------------- *)

let coalesced_header = function
  | Jsonx.Obj fields
    when List.assoc_opt "status" fields = Some (Jsonx.Str "ok") ->
    Jsonx.Obj
      (List.map
         (fun (k, v) ->
           match k with
           | "served" -> (k, Jsonx.Str "coalesced")
           | "cached" -> (k, Jsonx.Bool true)
           | _ -> (k, v))
         fields)
  | h -> h

let with_shard_field name = function
  | Jsonx.Obj fields when not (List.mem_assoc "shard" fields) ->
    Jsonx.Obj (fields @ [ ("shard", Jsonx.Str name) ])
  | h -> h

let integrity_error req =
  match Jsonx.str (Jsonx.member "req_fnv" req) with
  | None -> None
  | Some announced ->
    let actual =
      Protocol.fnv_hex (Jsonx.signature ~drop:[ "proto"; "req_fnv" ] req)
    in
    if String.equal announced actual then None
    else
      Some
        (Protocol.error ~code:"integrity"
           ~message:
             (Printf.sprintf
                "request checksum mismatch (%s announced, %s received)"
                announced actual))

let serve_compute t req op =
  let may_retry = op <> "campaign" in
  Mutex.lock t.m;
  t.inflight <- t.inflight + 1;
  Mutex.unlock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.m;
      t.inflight <- t.inflight - 1;
      Mutex.unlock t.m)
    (fun () ->
      let t0 = Monotime.now () in
      let (header, payload), winner = race_forward t (owners_of t req) req ~may_retry in
      (match Client.error_of header with
      | None ->
        note_latency t (Monotime.now () -. t0);
        if
          t.cfg.warm_auto && op = "advf"
          && Jsonx.str (Jsonx.member "served" header) = Some "computed"
        then auto_warm t req
      | Some _ -> ());
      let header =
        match winner with Some n -> with_shard_field n header | None -> header
      in
      (header, payload))

let dispatch t req =
  match Jsonx.int (Jsonx.member "proto" req) with
  | Some p when p <> Protocol.version ->
    ( Protocol.error ~code:"proto-mismatch"
        ~message:
          (Printf.sprintf "server speaks protocol %d, client sent %d"
             Protocol.version p),
      None )
  | _ -> (
    match Jsonx.str (Jsonx.member "op" req) with
    | None -> (Protocol.error ~code:"bad-request" ~message:"missing op", None)
    | Some "version" ->
      ( Protocol.ok
          [
            ("op", Jsonx.Str "version");
            ("role", Jsonx.Str "proxy");
            ("server", Jsonx.Str Version.version);
            ("proto", Jsonx.Int Protocol.version);
          ],
        None )
    | Some "stat" -> (cluster_stat t, None)
    | Some "warm" -> handle_warm t req
    | Some (("advf" | "campaign" | "report" | "predict" | "advise") as op) -> (
      match integrity_error req with
      | Some e ->
        bump t (fun t -> t.integrity_failures <- t.integrity_failures + 1);
        (e, None)
      | None -> (
        let sgn = Jsonx.signature ~drop:[ "proto"; "req_fnv" ] req in
        let role =
          Mutex.lock t.m;
          let r =
            match Hashtbl.find_opt t.flights sgn with
            | Some fl -> `Follow fl
            | None ->
              let fl =
                { fm = Mutex.create (); fc = Condition.create (); fresult = None }
              in
              Hashtbl.replace t.flights sgn fl;
              `Lead fl
          in
          Mutex.unlock t.m;
          r
        in
        match role with
        | `Follow fl ->
          Mutex.lock fl.fm;
          while fl.fresult = None do
            Condition.wait fl.fc fl.fm
          done;
          let header, payload = Option.get fl.fresult in
          Mutex.unlock fl.fm;
          bump t (fun t -> t.coalesced <- t.coalesced + 1);
          (coalesced_header header, payload)
        | `Lead fl -> (
          let resolve r =
            Mutex.lock t.m;
            Hashtbl.remove t.flights sgn;
            Mutex.unlock t.m;
            Mutex.lock fl.fm;
            fl.fresult <- Some r;
            Condition.broadcast fl.fc;
            Mutex.unlock fl.fm;
            r
          in
          match serve_compute t req op with
          | r -> resolve r
          | exception e ->
            ignore
              (resolve
                 ( Protocol.error ~code:"internal"
                     ~message:(Printexc.to_string e),
                   None ));
            raise e)))
    | Some op ->
      (Protocol.error ~code:"bad-request" ~message:("unknown op " ^ op), None))

(* ---------------- connection & accept loops ---------------- *)

let is_ok = function
  | Jsonx.Obj fields -> List.assoc_opt "status" fields = Some (Jsonx.Str "ok")
  | _ -> false

let handle_conn t fd =
  let rec loop () =
    if not (stopping t) then begin
      match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _ -> (
        match Protocol.recv fd with
        | None -> ()
        | Some (req, _payload) ->
          let header, payload = dispatch t req in
          Mutex.lock t.m;
          if is_ok header then t.served <- t.served + 1
          else t.errors <- t.errors + 1;
          Mutex.unlock t.m;
          Protocol.send fd ?payload header;
          loop ())
    end
  in
  (try loop () with
  | Protocol.Protocol_error msg ->
    (try Protocol.send fd (Protocol.error ~code:"bad-request" ~message:msg)
     with _ -> ());
    bump t (fun t -> t.errors <- t.errors + 1)
  | Unix.Unix_error _ | Sys_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.lock t.m;
  t.conns <- t.conns - 1;
  Condition.broadcast t.conns_done;
  Mutex.unlock t.m

let accept_loop t () =
  while not (stopping t) do
    match Unix.select [ t.listen ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept t.listen with
      | fd, _ ->
        Mutex.lock t.m;
        t.conns <- t.conns + 1;
        Mutex.unlock t.m;
        ignore (Thread.create (fun () -> handle_conn t fd) ())
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ())
  done

let start cfg =
  if cfg.shards = [] then invalid_arg "Proxy.start: no shards";
  if cfg.replication < 1 then invalid_arg "Proxy.start: replication";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let ring =
    Ring.make ~vnodes:cfg.vnodes (List.map (fun s -> s.name) cfg.shards)
  in
  if Sys.file_exists cfg.socket then Unix.unlink cfg.socket;
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listen 64;
  let t =
    {
      cfg;
      ring;
      listen;
      stop_flag = Atomic.make false;
      m = Mutex.create ();
      conns_done = Condition.create ();
      flights = Hashtbl.create 16;
      rng = Rng.of_path ~seed:cfg.seed [ 7001 ];
      lat = Array.make 128 0.;
      lat_n = 0;
      inflight = 0;
      conns = 0;
      served = 0;
      errors = 0;
      forwarded = 0;
      coalesced = 0;
      hedged = 0;
      hedge_wins = 0;
      failovers = 0;
      retries = 0;
      integrity_failures = 0;
      warm_q = Queue.create ();
      warm_seen = Hashtbl.create 64;
      warmed = 0;
      warm_errors = 0;
      accept_thread = None;
      warm_thread = None;
      stopped = false;
      started_at = Monotime.now ();
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t.warm_thread <- Some (Thread.create (warm_loop t) ());
  t

let stop t =
  Atomic.set t.stop_flag true;
  Mutex.lock t.m;
  let first = not t.stopped in
  t.stopped <- true;
  Mutex.unlock t.m;
  if first then begin
    Option.iter Thread.join t.accept_thread;
    Mutex.lock t.m;
    while t.conns > 0 do
      Condition.wait t.conns_done t.m
    done;
    Mutex.unlock t.m;
    Option.iter Thread.join t.warm_thread;
    (try Unix.close t.listen with Unix.Unix_error _ -> ());
    if Sys.file_exists t.cfg.socket then (
      try Unix.unlink t.cfg.socket with Unix.Unix_error _ -> ())
  end

let run cfg =
  let t = start cfg in
  let quit _ = Atomic.set t.stop_flag true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  while not (stopping t) do
    Thread.delay 0.2
  done;
  stop t
