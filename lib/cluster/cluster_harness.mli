(** The chaos harness at cluster scale: an in-process {!Local} cluster
    (N shard daemons behind a {!Proxy}) driven through a seeded
    {!Moard_chaos.Chaos} plan of cluster-level faults — corrupted, torn
    and dropped inter-node frames ([Inter_send]/[Inter_recv], through
    {!Moard_chaos.Chaos.internode_sock}), shard crash-stops that heal a
    few requests later ([Shard_crash]), and proxy–shard partitions that
    last a drawn number of requests ([Shard_partition]).

    The invariant is the serving invariant, one level up: every
    response a client receives is a typed error or byte-identical to
    the fault-free offline baseline; nothing diverges, nothing hangs,
    shutdown drains cleanly.

    Reports are deterministic per (seed, parameters): requests run
    serially, hedging and warming are disabled for the run, the
    inter-node fault menus contain no timing faults, and crash and
    partition victims come from dedicated [Rng] streams — so two runs
    with the same seed produce byte-identical {!to_json} renderings,
    schedule hash included. *)

type report = {
  seed : int;
  rounds : int;
  rate : float;
  shards : int;
  requests : int;
  identical : int;  (** ok responses byte-equal to the offline baseline *)
  ok_dynamic : int;  (** ok responses with no static baseline (stat) *)
  partial : int;  (** honest partial campaign reports (complete=false) *)
  typed_errors : (string * int) list;  (** per error code *)
  transport_failures : int;  (** client-visible transport failures *)
  diverged : int;  (** MUST be 0: ok response, wrong bytes *)
  hung : int;  (** MUST be 0: response took > 60 s *)
  crash_events : int;
  restarts : int;
  partition_events : int;
  fault_stats : (string * int * int) list;  (** cluster scopes only *)
  schedule_hash : string;
  survived : bool;
}

val to_json : report -> Moard_server.Jsonx.t

val run :
  ?seed:int ->
  ?rounds:int ->
  ?rate:float ->
  ?shards:int ->
  ?benchmark:string ->
  ?ci_width:float ->
  ?crash_downtime:int ->
  unit ->
  report
(** Defaults: seed 11, 2 rounds, rate 0.08 per inter-node operation and
    per request for crash/partition trials, 2 shards, benchmark MM,
    campaign ci_width 0.2, crashed shards restart after 3 requests. *)
