(** The cluster coordinator: a thin proxy speaking {!Moard_server.Protocol}
    on both sides.

    Clients talk to it exactly as they would to a single [moardd]; it
    routes each request onto a consistent-hash {!Ring} of shard daemons
    (R-way replicated owner chains), coalesces identical concurrent
    requests into one forward, hedges slow forwards onto the replica,
    fails over when a shard is dead or partitioned, and coordinates
    store warming.  Served payload bytes pass through untouched in both
    directions, which is what keeps the serving invariant — every
    response is a typed error or byte-identical to the offline CLI —
    checkable at cluster scale.

    Fault posture per mechanism:
    - {e routing}: deterministic (pure function of shard names), see {!Ring};
    - {e coalescing}: single-flight on the canonical request signature
      ({!Moard_server.Jsonx.signature}); followers get the leader's
      response with [served = "coalesced"];
    - {e integrity}: forwarded requests carry a ["req_fnv"] checksum and
      response payloads a ["payload_fnv"]; a corrupted inter-node frame
      is refused/retried, never served;
    - {e hedging}: idempotent ops only; the second leg starts after an
      adaptive deadline (2× the p95 of recent forward latencies, floored
      at [hedge_floor_s]) or the fixed [hedge_after_s]; first response
      wins and the loser's connection is shut down, which trips the
      shard-side cooperative cancel;
    - {e failover}: when every launched leg has failed, the next replica
      in the owner chain is tried — for non-idempotent ops only if the
      failure was connect-level (no request escaped); all replicas down
      yields a typed [unavailable] error;
    - {e warming}: ["warm"] requests and the auto-warm hook queue
      precomputes, pushed to the owning shard only while no client
      forward is in flight; shards in turn compute them only while
      their pools are idle. *)

type shard = { name : string; socket : string }

type config = {
  socket : string;  (** the proxy's own listening socket *)
  shards : shard list;
  replication : int;  (** R: length of each key's owner chain (default 2) *)
  vnodes : int;  (** virtual nodes per shard on the ring *)
  hedge_after_s : float option;
      (** fixed hedge deadline; [None] = adaptive from observed latency *)
  hedge_floor_s : float;  (** adaptive deadline never drops below this *)
  rpc_timeout_s : float;  (** per-forward socket timeout *)
  attempts : int;  (** retry budget per forwarding leg *)
  base_delay_s : float;  (** backoff base, as in {!Moard_server.Client} *)
  max_delay_s : float;  (** backoff cap *)
  warm_auto : bool;
      (** on a freshly computed advf response, queue the benchmark's
          sibling registry objects for warming *)
  seed : int;  (** seeds the retry-jitter stream *)
  sock : Moard_chaos.Sock.t;
      (** inter-node socket shims; {!Moard_chaos.Chaos.internode_sock}
          under chaos, real syscalls in production *)
  partitioned : string -> bool;
      (** chaos hook: shard names currently unreachable from the proxy *)
}

val default_config : shards:shard list -> config
(** socket ["moard-cluster.sock"], R=2, 64 vnodes, adaptive hedging
    floored at 50 ms, 600 s forward timeout, 4 attempts with 50 ms→1 s
    backoff, auto-warm on, seed 0, real sockets, no partitions. *)

type t

val start : config -> t
(** Bind and serve; returns immediately.
    @raise Invalid_argument on an empty shard list or bad replication.
    @raise Unix.Unix_error if the socket cannot be bound. *)

val stop : t -> unit
(** Graceful drain, idempotent: stop accepting, finish in-flight
    connections, stop the warm pusher, unlink the socket. *)

val stopping : t -> bool
val ring : t -> Ring.t

val run : config -> unit
(** {!start}, install SIGTERM/SIGINT handlers, block until drained. *)

(**/**)

val routing_key : Moard_server.Jsonx.t -> string
(** Exposed for tests: the placement key of a request. *)

val dispatch : t -> Moard_server.Jsonx.t -> Moard_server.Jsonx.t * string option
(** Exposed for tests: serve one request in-process. *)
