module Chaos = Moard_chaos.Chaos
module Rng = Moard_chaos.Rng
module Monotime = Moard_chaos.Monotime
module Registry = Moard_kernels.Registry
module Context = Moard_inject.Context
module Model = Moard_core.Model
module Plan = Moard_campaign.Plan
module Engine = Moard_campaign.Engine
module Query = Moard_store.Query
module Jsonx = Moard_server.Jsonx
module Client = Moard_server.Client
module Protocol = Moard_server.Protocol

type report = {
  seed : int;
  rounds : int;
  rate : float;
  shards : int;
  requests : int;
  identical : int;
  ok_dynamic : int;
  partial : int;
  typed_errors : (string * int) list;
  transport_failures : int;
  diverged : int;
  hung : int;
  crash_events : int;
  restarts : int;
  partition_events : int;
  fault_stats : (string * int * int) list;
  schedule_hash : string;
  survived : bool;
}

let to_json r =
  Jsonx.Obj
    [
      ("seed", Jsonx.Int r.seed);
      ("rounds", Jsonx.Int r.rounds);
      ("rate", Jsonx.Float r.rate);
      ("shards", Jsonx.Int r.shards);
      ("requests", Jsonx.Int r.requests);
      ("identical", Jsonx.Int r.identical);
      ("ok_dynamic", Jsonx.Int r.ok_dynamic);
      ("partial", Jsonx.Int r.partial);
      ( "typed_errors",
        Jsonx.Obj (List.map (fun (c, n) -> (c, Jsonx.Int n)) r.typed_errors) );
      ("transport_failures", Jsonx.Int r.transport_failures);
      ("diverged", Jsonx.Int r.diverged);
      ("hung", Jsonx.Int r.hung);
      ("crash_events", Jsonx.Int r.crash_events);
      ("restarts", Jsonx.Int r.restarts);
      ("partition_events", Jsonx.Int r.partition_events);
      ( "faults",
        Jsonx.Arr
          (List.map
             (fun (s, ops, injected) ->
               Jsonx.Obj
                 [
                   ("scope", Jsonx.Str s);
                   ("ops", Jsonx.Int ops);
                   ("injected", Jsonx.Int injected);
                 ])
             r.fault_stats) );
      ("schedule_hash", Jsonx.Str r.schedule_hash);
      ("survived", Jsonx.Bool r.survived);
    ]

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let hang_bound_s = 60.0

let cluster_scopes =
  [ Chaos.Inter_send; Chaos.Inter_recv; Chaos.Shard_crash;
    Chaos.Shard_partition ]

(* The cluster invariant, asserted under cluster-level faults only: the
   inter-node wire corrupts/tears/drops frames, whole shards crash-stop
   (and restart a few requests later, cold in memory but warm on disk),
   and the proxy loses sight of shards for a while — yet every response
   a client sees is a typed error or byte-identical to the offline
   baseline.

   Determinism: requests are serial, hedging is disabled (a fixed
   deadline no forward outlives), warming is off, the inter-node fault
   menus carry no timing faults, and crash/partition victims come from
   dedicated streams — so the whole report, schedule hash included, is
   a pure function of the seed and the parameters. *)
let run ?(seed = 11) ?(rounds = 2) ?(rate = 0.08) ?(shards = 2)
    ?(benchmark = "MM") ?(ci_width = 0.2) ?(crash_downtime = 3) () =
  let e =
    match Registry.find benchmark with
    | e -> e
    | exception Not_found ->
      invalid_arg ("Cluster_harness.run: unknown benchmark " ^ benchmark)
  in
  (* fault-free baselines, computed offline before any fault can fire *)
  let ctx = Context.make (e.Registry.workload ()) in
  let options = { Model.default_options with Model.batch = true } in
  let advf_baselines =
    List.map
      (fun o -> (o, Query.advf_payload ~options ctx ~object_name:o))
      e.Registry.objects
  in
  let plan =
    Plan.make ~seed:42 ~confidence:0.95 ~ci_width ~batch:64 ~max_samples:(-1)
      ctx ~objects:e.Registry.objects
  in
  let campaign_baseline = Query.campaign_payload (Engine.run ctx plan) in
  let chaos =
    Chaos.make
      ~rates:(fun s -> if List.mem s cluster_scopes then rate else 0.)
      ~seed ()
  in
  (* victim selection streams, disjoint from every scope stream *)
  let crash_rng = Rng.of_path ~seed [ 9001 ] in
  let part_rng = Rng.of_path ~seed [ 9002 ] in
  let pm = Mutex.create () in
  let partitions : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let is_partitioned name =
    Mutex.lock pm;
    let r = Option.value ~default:0 (Hashtbl.find_opt partitions name) > 0 in
    Mutex.unlock pm;
    r
  in
  let root = fresh_dir "moard-cluster-chaos" in
  let cluster =
    Local.start ~root ~shards ~workers:1 ~queue:16 ~timeout_s:20.
      ~tune:(fun c ->
        {
          c with
          Proxy.hedge_after_s = Some 1e6;  (* hedging off: serial legs *)
          warm_auto = false;
          rpc_timeout_s = 10.;
          attempts = 3;
          base_delay_s = 0.02;
          max_delay_s = 0.3;
          seed;
          sock = Chaos.internode_sock chaos;
          partitioned = is_partitioned;
        })
      ()
  in
  let socket = Local.socket cluster in
  let requests = ref 0
  and identical = ref 0
  and ok_dynamic = ref 0
  and partial = ref 0
  and transport = ref 0
  and diverged = ref 0
  and hung = ref 0
  and crash_events = ref 0
  and restarts = ref 0
  and partition_events = ref 0 in
  let down_for = Array.make shards 0 in  (* requests until restart; 0 = alive *)
  let typed : (string, int) Hashtbl.t = Hashtbl.create 8 in
  (* one crash trial and one partition trial per request, before it *)
  let inject_topology () =
    (match Chaos.draw chaos Chaos.Shard_crash with
    | Some Chaos.Crash ->
      let v = Rng.next_int crash_rng shards in
      if Local.alive cluster v then begin
        Local.crash cluster v;
        down_for.(v) <- crash_downtime;
        incr crash_events
      end
    | _ -> ());
    match Chaos.draw chaos Chaos.Shard_partition with
    | Some (Chaos.Partition n) ->
      let v = Rng.next_int part_rng shards in
      let name = Printf.sprintf "shard%d" v in
      Mutex.lock pm;
      Hashtbl.replace partitions name
        (max n (Option.value ~default:0 (Hashtbl.find_opt partitions name)));
      Mutex.unlock pm;
      incr partition_events
    | _ -> ()
  in
  let heal_topology () =
    for v = 0 to shards - 1 do
      if down_for.(v) > 0 then begin
        down_for.(v) <- down_for.(v) - 1;
        if down_for.(v) = 0 then begin
          Local.restart cluster v;
          incr restarts
        end
      end
    done;
    Mutex.lock pm;
    Hashtbl.iter
      (fun name n -> Hashtbl.replace partitions name (max 0 (n - 1)))
      (Hashtbl.copy partitions);
    Mutex.unlock pm
  in
  let issue ?baseline req =
    inject_topology ();
    incr requests;
    let t0 = Monotime.now () in
    let outcome =
      try
        Some
          (Client.rpc_retry ~attempts:4 ~base_delay_s:0.02 ~max_delay_s:0.3
             ~timeout_s:15.0 ~seed:(seed + !requests) ~socket req)
      with Protocol.Protocol_error _ | Unix.Unix_error _ | Sys_error _ -> None
    in
    if Monotime.now () -. t0 > hang_bound_s then incr hung;
    (match outcome with
    | None -> incr transport
    | Some (header, payload) -> (
      match Client.error_of header with
      | Some (code, _) ->
        Hashtbl.replace typed code
          (1 + Option.value ~default:0 (Hashtbl.find_opt typed code))
      | None -> (
        match baseline with
        | None -> incr ok_dynamic
        | Some want ->
          if Jsonx.bool (Jsonx.member "complete" header) = Some false then
            incr partial
          else if Option.value ~default:"" payload = want then incr identical
          else incr diverged)));
    heal_topology ();
    (* keep the per-scope fault streams aligned run after run *)
    Unix.sleepf 0.01
  in
  for _round = 1 to rounds do
    List.iter
      (fun (o, base) ->
        issue ~baseline:base
          (Jsonx.Obj
             [
               ("op", Jsonx.Str "advf");
               ("benchmark", Jsonx.Str benchmark);
               ("object", Jsonx.Str o);
             ]))
      advf_baselines;
    let campaign_req op =
      Jsonx.Obj
        [
          ("op", Jsonx.Str op);
          ("benchmark", Jsonx.Str benchmark);
          ("ci_width", Jsonx.Float ci_width);
        ]
    in
    issue ~baseline:campaign_baseline (campaign_req "campaign");
    issue ~baseline:campaign_baseline (campaign_req "report");
    issue (Jsonx.Obj [ ("op", Jsonx.Str "stat") ])
  done;
  let stopped_cleanly =
    match Local.stop cluster with () -> true | exception _ -> false
  in
  let survived = !diverged = 0 && !hung = 0 && stopped_cleanly in
  if survived then (try rm_rf root with Unix.Unix_error _ | Sys_error _ -> ());
  {
    seed;
    rounds;
    rate;
    shards;
    requests = !requests;
    identical = !identical;
    ok_dynamic = !ok_dynamic;
    partial = !partial;
    typed_errors =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) typed []);
    transport_failures = !transport;
    diverged = !diverged;
    hung = !hung;
    crash_events = !crash_events;
    restarts = !restarts;
    partition_events = !partition_events;
    fault_stats =
      List.filter_map
        (fun (s, ops, injected) ->
          if List.mem s cluster_scopes then
            Some (Chaos.scope_name s, ops, injected)
          else None)
        (Chaos.stats chaos);
    schedule_hash = Chaos.schedule_hash chaos;
    survived;
  }
