(** An in-process cluster: N shard daemons plus a proxy, for tests, the
    bench suite, the chaos harness, and [moard cluster serve] without
    [--join].  Shard [i] is named ["shard<i>"], listens on
    [<root>/shard<i>.sock], stores under [<root>/shard<i>]; the proxy
    listens on [<root>/proxy.sock] unless [tune] overrides it. *)

type cluster

val start :
  ?workers:int ->
  ?queue:int ->
  ?timeout_s:float ->
  ?lru_entries:int ->
  ?shard_shims:(int -> Moard_chaos.Chaos.shims) ->
  ?tune:(Proxy.config -> Proxy.config) ->
  root:string ->
  shards:int ->
  unit ->
  cluster
(** Start the daemons, then the proxy ([tune] adjusts its config —
    hedging, warming, chaos socket, partition hook — before it binds).
    Per-shard daemon knobs default to 1 worker, queue 64, 600 s
    timeout, passthrough shims. *)

val socket : cluster -> string
(** The proxy socket clients should talk to. *)

val shards : cluster -> Proxy.shard list
val proxy : cluster -> Proxy.t

val crash : cluster -> int -> unit
(** Crash-stop shard [i] (graceful daemon drain, socket unlinked);
    no-op if already down. *)

val restart : cluster -> int -> unit
(** Bring a crashed shard back on its old socket and store; no-op if
    alive.  Its disk store survives the crash, its memory LRU does not. *)

val alive : cluster -> int -> bool

val stop : cluster -> unit
(** Proxy first, then every live shard. *)
