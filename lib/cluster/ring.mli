(** Consistent-hash ring over shard names.

    Each shard contributes [vnodes] virtual points — FNV-1a64 of
    ["moard-ring-v1\n<name>#<i>"] pushed through a splitmix64 finalizer
    (plain FNV leaves sequential labels adjacent on the circle) — on the
    unsigned 64-bit circle; a key hashes to a point and is owned by the
    next [n] {e distinct} shards clockwise.  Properties the cluster
    leans on:

    - deterministic: the ring is a pure function of the shard name list
      and [vnodes], so the proxy, tests, and any future second proxy
      agree on placement without coordination;
    - stable under membership change: adding a shard moves only the keys
      whose arc it takes over (≈ 1/N of the space), nothing else;
    - replication-ready: [owners ~n:2] is the primary plus the first
      distinct successor, so a crash-stop primary degrades to a
      recompute on its replica, never to unavailability. *)

type t

val make : ?vnodes:int -> string list -> t
(** [make names] builds the ring ([vnodes] defaults to 64 per shard).
    @raise Invalid_argument on an empty or duplicated name list. *)

val names : t -> string list
val vnodes : t -> int

val owners : t -> ?n:int -> string -> string list
(** The first [n] (default 2) distinct shards clockwise of the key's
    point, primary first; fewer iff the ring has fewer shards. *)

val owner : t -> string -> string
(** The primary alone. *)
