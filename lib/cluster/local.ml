module Chaos = Moard_chaos.Chaos
module Daemon = Moard_server.Daemon

type cluster = {
  root : string;
  psock : string;
  infos : Proxy.shard array;
  cfgs : Daemon.config array;
  daemons : Daemon.t option array;  (* None = crashed / stopped *)
  proxy : Proxy.t;
}

let socket c = c.psock
let shards c = Array.to_list c.infos
let proxy c = c.proxy

let start ?(workers = 1) ?(queue = 64) ?(timeout_s = 600.) ?(lru_entries = 256)
    ?(shard_shims = fun _ -> Chaos.passthrough) ?(tune = fun c -> c) ~root
    ~shards:n () =
  if n < 1 then invalid_arg "Local.start: shards";
  (try Unix.mkdir root 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let infos =
    Array.init n (fun i ->
        let name = Printf.sprintf "shard%d" i in
        { Proxy.name; socket = Filename.concat root (name ^ ".sock") })
  in
  let cfgs =
    Array.init n (fun i ->
        {
          Daemon.default_config with
          Daemon.socket = infos.(i).Proxy.socket;
          store_dir = Filename.concat root infos.(i).Proxy.name;
          workers;
          queue;
          timeout_s;
          lru_entries;
          shims = shard_shims i;
        })
  in
  let daemons = Array.map (fun cfg -> Some (Daemon.start cfg)) cfgs in
  let pcfg =
    tune
      {
        (Proxy.default_config ~shards:(Array.to_list infos)) with
        Proxy.socket = Filename.concat root "proxy.sock";
      }
  in
  let proxy =
    try Proxy.start pcfg
    with e ->
      Array.iter (Option.iter Daemon.stop) daemons;
      raise e
  in
  { root; psock = pcfg.Proxy.socket; infos; cfgs; daemons; proxy }

let crash c i =
  match c.daemons.(i) with
  | None -> ()
  | Some d ->
    Daemon.stop d;
    c.daemons.(i) <- None

let restart c i =
  match c.daemons.(i) with
  | Some _ -> ()
  | None -> c.daemons.(i) <- Some (Daemon.start c.cfgs.(i))

let alive c i = c.daemons.(i) <> None

let stop c =
  Proxy.stop c.proxy;
  Array.iter (Option.iter Daemon.stop) c.daemons
