type interval = { lo : float; hi : float }

let width i = i.hi -. i.lo

let z_table =
  [ (0.80, 1.282); (0.90, 1.645); (0.95, 1.96); (0.98, 2.326); (0.99, 2.576) ]

let z_of_confidence c =
  match
    List.find_opt (fun (level, _) -> Float.abs (level -. c) < 1e-9) z_table
  with
  | Some (_, z) -> z
  | None ->
    invalid_arg
      (Printf.sprintf
         "Confidence.z_of_confidence: %g (supported: %s)" c
         (String.concat ", "
            (List.map (fun (l, _) -> Printf.sprintf "%g" l) z_table)))

(* Wilson score half-width for a rate [p] over [n] trials. Unlike the Wald
   (normal-approximation) half-width z*sqrt(p(1-p)/n) it does not collapse
   to zero at p = 0 or 1 and stays honest at small n. *)
let wilson_halfwidth ~z ~n p =
  let nf = float_of_int n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. nf) in
  z /. denom *. sqrt ((p *. (1.0 -. p) /. nf) +. (z2 /. (4.0 *. nf *. nf)))

let margin ?(z = 1.96) ~n p =
  if n <= 0 then invalid_arg "Confidence.margin: n";
  wilson_halfwidth ~z ~n p

let wilson ?(z = 1.96) ~n ~successes () =
  if n < 0 then invalid_arg "Confidence.wilson: n";
  if successes < 0 || successes > n then
    invalid_arg "Confidence.wilson: successes";
  if n = 0 then { lo = 0.0; hi = 1.0 }
  else begin
    let nf = float_of_int n in
    let p = float_of_int successes /. nf in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. nf) in
    let center = (p +. (z2 /. (2.0 *. nf))) /. denom in
    let hw = wilson_halfwidth ~z ~n p in
    { lo = Float.max 0.0 (center -. hw); hi = Float.min 1.0 (center +. hw) }
  end

(* P(X <= k) for X ~ Binomial(n, p), summed in log space so it stays finite
   for any n we care about (the campaign engine uses Wilson; this backs the
   exact Clopper-Pearson interval and its tests). *)
let binom_cdf ~n ~k p =
  if p <= 0.0 then 1.0
  else if p >= 1.0 then if k >= n then 1.0 else 0.0
  else begin
    let lp = log p and lq = log1p (-.p) in
    let acc = ref 0.0 and logc = ref 0.0 in
    for i = 0 to k do
      let logterm =
        !logc +. (float_of_int i *. lp) +. (float_of_int (n - i) *. lq)
      in
      acc := !acc +. exp logterm;
      logc := !logc +. log (float_of_int (n - i)) -. log (float_of_int (i + 1))
    done;
    Float.min 1.0 !acc
  end

(* Solve f p = target for f monotonically decreasing in p, by bisection. *)
let solve_decreasing f target =
  let lo = ref 0.0 and hi = ref 1.0 in
  for _ = 1 to 60 do
    let mid = 0.5 *. (!lo +. !hi) in
    if f mid > target then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let clopper_pearson ?(confidence = 0.95) ~n ~successes () =
  if n < 0 then invalid_arg "Confidence.clopper_pearson: n";
  if successes < 0 || successes > n then
    invalid_arg "Confidence.clopper_pearson: successes";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Confidence.clopper_pearson: confidence";
  if n = 0 then { lo = 0.0; hi = 1.0 }
  else begin
    let alpha = (1.0 -. confidence) /. 2.0 in
    let k = successes in
    let lo =
      (* largest p with P(X >= k | p) = alpha, i.e. cdf (k-1) p = 1-alpha *)
      if k = 0 then 0.0
      else solve_decreasing (fun p -> binom_cdf ~n ~k:(k - 1) p) (1.0 -. alpha)
    in
    let hi =
      if k = n then 1.0
      else solve_decreasing (fun p -> binom_cdf ~n ~k p) alpha
    in
    { lo; hi }
  end

let tests_needed ?(z = 1.96) ?(e = 0.02) ?(p = 0.5) () =
  if e <= 0.0 then invalid_arg "Confidence.tests_needed: e";
  int_of_float (Float.ceil (z *. z *. p *. (1.0 -. p) /. (e *. e)))

let intervals_overlap ~p1 ~m1 ~p2 ~m2 =
  Float.abs (p1 -. p2) <= m1 +. m2

(* Interval bounds for a weighted sum of independent proportions: the sum
   of an interval-valued term is bracketed by the sums of its endpoints
   (exact, conservative — the same population-weighted combination the
   campaign engine's stopping rule uses, exposed for the cross-size
   predictor's propagated uncertainty). Summation is in array order, so
   the result is bit-deterministic for a fixed stratum enumeration. *)
let combine_weighted terms =
  let lo = ref 0.0 and hi = ref 0.0 in
  Array.iter
    (fun (w, i) ->
      if w < 0.0 || Float.is_nan w then
        invalid_arg "Confidence.combine_weighted: weight";
      lo := !lo +. (w *. i.lo);
      hi := !hi +. (w *. i.hi))
    terms;
  { lo = !lo; hi = !hi }
