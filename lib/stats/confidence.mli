(** Confidence machinery for fault-injection campaigns, after the
    statistical fault-injection methodology the paper cites [26].

    All binomial intervals here are Wilson score or Clopper-Pearson
    intervals: unlike the textbook normal (Wald) approximation they do not
    degenerate to a zero-width interval at observed rates of 0 or 1 and
    they behave at small n — both cases the campaign engine's stopping
    rule hits constantly (a stratum whose every sampled fault was masked
    has rate 1 with very real remaining uncertainty). *)

type interval = { lo : float; hi : float }

val width : interval -> float

val z_of_confidence : float -> float
(** Two-sided z quantile for a confidence level. Supported levels: 0.80,
    0.90, 0.95, 0.98, 0.99. @raise Invalid_argument otherwise. *)

val margin : ?z:float -> n:int -> float -> float
(** [margin ~n p]: half-width of the Wilson score interval for success
    rate [p] over [n] trials; [z] defaults to 1.96 (95%). Nonzero at
    p = 0 and p = 1 (the old normal approximation collapsed there).
    @raise Invalid_argument if [n <= 0]. *)

val wilson : ?z:float -> n:int -> successes:int -> unit -> interval
(** Wilson score interval for [successes] out of [n] Bernoulli trials,
    clamped to [0, 1]. [n = 0] gives the ignorance interval [{lo=0; hi=1}].
    Always contains the empirical mean successes/n. *)

val clopper_pearson :
  ?confidence:float -> n:int -> successes:int -> unit -> interval
(** Exact (conservative) Clopper-Pearson interval, by bisection on the
    binomial CDF. [confidence] defaults to 0.95. [n = 0] gives [{0, 1}]. *)

val tests_needed : ?z:float -> ?e:float -> ?p:float -> unit -> int
(** Number of fault-injection tests for margin [e] (default 0.02) at the
    given confidence, worst case [p] = 0.5 (the standard planning formula;
    the campaign engine stops on the achieved Wilson width instead). *)

val intervals_overlap : p1:float -> m1:float -> p2:float -> m2:float -> bool
(** Whether two estimates are statistically indistinguishable. *)

val combine_weighted : (float * interval) array -> interval
(** [combine_weighted [| (w1, i1); ... |]]: the interval of the weighted
    sum [sum w_k p_k] when each [p_k] lies in [i_k] — endpoint sums, the
    conservative population-weighted combination of per-stratum intervals.
    Covers whenever every component interval covers. Summation follows
    array order (bit-deterministic).
    @raise Invalid_argument on a negative or NaN weight. *)
