(** Level 1 of the two-level aDVF extrapolation: per-stratum outcome
    rates fitted from campaign results at a handful of small training
    sizes.

    The model assumption (after the two-level SDC-rate methodology) is
    that a stratum — one static-instruction slot class × bit class — has
    outcome probabilities that are stable across input sizes; what input
    size changes is how many dynamic fault sites land in each stratum.
    So level 1 pools each stratum's samples across the training sizes
    into one binomial estimate per outcome class, and {!Growth} (level 2)
    models how the stratum's population scales. *)

type cls = Masked | Sdc | Crashed

val cls_name : cls -> string

type stratum = {
  index : int;  (** position in {!Moard_campaign.Population.nstrata} *)
  label : string;
  counts : (int * int) list;
      (** (training size, stratum population), ascending in size *)
  population : int;  (** pooled across training sizes *)
  samples : int;     (** pooled resolved samples *)
  successes : int;   (** pooled masked samples *)
  by_code : int array;  (** pooled per-outcome-code sample counts *)
  growth : Growth.t;
}

type t = {
  object_name : string;
  sizes : int list;  (** training sizes, ascending *)
  populations : (int * int) list;
      (** (training size, whole-object fault-site population) *)
  strata : stratum array;  (** always full [Population.nstrata] length *)
  samples : int;
  runs : int;
  cache_hits : int;
}

val of_results : (int * Moard_campaign.Engine.object_result) list -> t
(** Fit from [(input size, campaign object result)] observations. Sorts
    by size internally, so the fit is invariant to the order the training
    campaigns ran in.
    @raise Invalid_argument on fewer than two observations, duplicate
    sizes, or results for different objects. *)

val rate : z:float -> stratum -> cls -> float * Moard_stats.Confidence.interval
(** Pooled point estimate and Wilson interval for one outcome class. A
    stratum with zero pooled samples is at full ignorance: (0.5, [0, 1]),
    the campaign engine's own convention for unsampled strata. *)

val predicted_counts : t -> int -> float array
(** Per-stratum predicted populations at a target size, via each
    stratum's fitted {!Growth} curve ({!Growth.predict}: exact at any
    training size). *)
