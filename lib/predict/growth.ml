type t =
  | Zero
  | Scaled of { size : int; count : int }
  | Power of { lna : float; b : float }

let kind_name = function
  | Zero -> "zero"
  | Scaled _ -> "proportional"
  | Power _ -> "power"

(* Counts are dynamic-site populations: non-negative, and in every kernel
   we model they grow polynomially in the input size (loop nests), so the
   fit runs in log-log space where a polynomial is a line. Strata that
   never appear stay Zero; a stratum observed at exactly one size cannot
   pin an exponent and falls back to proportional growth through its one
   point — the conservative default for trip counts. *)
let fit points =
  (* canonical ascending-size order before any float touches an
     accumulator: the fit is bit-identical however the observations
     arrived *)
  let points = List.sort (fun (a, _) (b, _) -> compare a b) points in
  let nonzero = List.filter (fun (_, c) -> c > 0) points in
  match nonzero with
  | [] -> Zero
  | [ (size, count) ] -> Scaled { size; count }
  | _ ->
    let n = float_of_int (List.length nonzero) in
    let lns =
      List.map
        (fun (s, c) -> (log (float_of_int s), log (float_of_int c)))
        nonzero
    in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 lns in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 lns in
    let mx = sx /. n and my = sy /. n in
    let sxx =
      List.fold_left (fun a (x, _) -> a +. ((x -. mx) *. (x -. mx))) 0.0 lns
    in
    let sxy =
      List.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0.0 lns
    in
    if sxx <= 0.0 then
      (* one distinct size observed nonzero more than once cannot happen
         (sizes are distinct); guard anyway: constant extrapolation *)
      Power { lna = my; b = 0.0 }
    else
      let b = sxy /. sxx in
      Power { lna = my -. (b *. mx); b }

let ceiling = 1e15

let clamp c =
  if Float.is_nan c then 0.0 else Float.max 0.0 (Float.min ceiling c)

let eval t n =
  if n <= 0 then 0.0
  else
    match t with
    | Zero -> 0.0
    | Scaled { size; count } ->
      clamp (float_of_int count *. float_of_int n /. float_of_int size)
    | Power { lna; b } -> clamp (exp (lna +. (b *. log (float_of_int n))))

let exponent = function
  | Zero -> 0.0
  | Scaled _ -> 1.0
  | Power { b; _ } -> b

let predict ~points n =
  match List.assoc_opt n points with
  | Some c -> float_of_int c
  | None -> eval (fit points) n
