module Engine = Moard_campaign.Engine
module Confidence = Moard_stats.Confidence

type cls = Masked | Sdc | Crashed

let cls_name = function
  | Masked -> "masked"
  | Sdc -> "sdc"
  | Crashed -> "crashed"

type stratum = {
  index : int;
  label : string;
  counts : (int * int) list;
  population : int;
  samples : int;
  successes : int;
  by_code : int array;
  growth : Growth.t;
}

type t = {
  object_name : string;
  sizes : int list;
  populations : (int * int) list;
  strata : stratum array;
  samples : int;
  runs : int;
  cache_hits : int;
}

let class_count s = function
  | Masked -> s.by_code.(0) + s.by_code.(1)
  | Sdc -> s.by_code.(2)
  | Crashed -> s.by_code.(3)

(* The pooled Wilson interval treats the stratum's masking probability as
   one latent binomial parameter shared across input sizes — the level-1
   assumption of the two-level model. Pooling is a sum, so the fit is
   invariant to the order observations arrive in; an unsampled stratum is
   at full ignorance (the engine's own convention: point 0.5, [0, 1]). *)
let rate ~z (s : stratum) cls =
  if s.samples = 0 then (0.5, { Confidence.lo = 0.0; hi = 1.0 })
  else
    let k = class_count s cls in
    ( float_of_int k /. float_of_int s.samples,
      Confidence.wilson ~z ~n:s.samples ~successes:k () )

let of_results observations =
  (match observations with
  | [] | [ _ ] -> invalid_arg "Fit.of_results: need >= 2 training sizes"
  | _ -> ());
  (* canonical ascending-size order, so fits (and payload bytes) do not
     depend on the order the campaigns ran in *)
  let observations =
    List.sort (fun (a, _) (b, _) -> compare a b) observations
  in
  let object_name =
    match observations with
    | (_, (o : Engine.object_result)) :: _ -> o.Engine.object_name
    | [] -> assert false
  in
  List.iter
    (fun (_, (o : Engine.object_result)) ->
      if o.Engine.object_name <> object_name then
        invalid_arg "Fit.of_results: mixed objects")
    observations;
  let sizes = List.map fst observations in
  let distinct = List.sort_uniq compare sizes in
  if List.length distinct <> List.length sizes then
    invalid_arg "Fit.of_results: duplicate training size";
  let nstrata =
    List.fold_left
      (fun a (_, (o : Engine.object_result)) ->
        max a (Array.length o.Engine.strata))
      0 observations
  in
  let stratum_at (o : Engine.object_result) s =
    if s < Array.length o.Engine.strata then Some o.Engine.strata.(s) else None
  in
  let strata =
    Array.init nstrata (fun s ->
        let counts =
          List.map
            (fun (size, o) ->
              ( size,
                match stratum_at o s with
                | Some sr -> sr.Engine.population
                | None -> 0 ))
            observations
        in
        let label =
          List.fold_left
            (fun acc (_, o) ->
              match stratum_at o s with
              | Some sr when sr.Engine.population > 0 -> sr.Engine.label
              | _ -> acc)
            (match stratum_at (snd (List.hd observations)) s with
            | Some sr -> sr.Engine.label
            | None -> Printf.sprintf "stratum%d" s)
            observations
        in
        let sum f =
          List.fold_left
            (fun a (_, o) ->
              match stratum_at o s with Some sr -> a + f sr | None -> a)
            0 observations
        in
        let by_code = Array.make 4 0 in
        List.iter
          (fun (_, o) ->
            match stratum_at o s with
            | Some sr ->
              Array.iteri
                (fun c k -> by_code.(c) <- by_code.(c) + k)
                sr.Engine.by_code
            | None -> ())
          observations;
        {
          index = s;
          label;
          counts;
          population = sum (fun sr -> sr.Engine.population);
          samples = sum (fun sr -> sr.Engine.samples);
          successes = sum (fun sr -> sr.Engine.successes);
          by_code;
          growth = Growth.fit counts;
        })
  in
  {
    object_name;
    sizes;
    populations =
      List.map
        (fun (size, (o : Engine.object_result)) -> (size, o.Engine.population))
        observations;
    strata;
    samples =
      List.fold_left
        (fun a (_, (o : Engine.object_result)) -> a + o.Engine.samples)
        0 observations;
    runs =
      List.fold_left
        (fun a (_, (o : Engine.object_result)) -> a + o.Engine.runs)
        0 observations;
    cache_hits =
      List.fold_left
        (fun a (_, (o : Engine.object_result)) -> a + o.Engine.cache_hits)
        0 observations;
  }

let predicted_counts t target =
  Array.map (fun s -> Growth.predict ~points:s.counts target) t.strata
