(** Two-level cross-input-size aDVF extrapolation.

    Running a fault-injection campaign at a production input size is
    exactly what resilience studies cannot afford; what they can afford
    is campaigns at a few small sizes plus golden runs anywhere. The
    predictor exploits the structure the campaign engine already
    stratifies by: a stratum (static-instruction slot class × bit class)
    has outcome rates that are stable across input sizes, while input
    size only moves how many dynamic fault sites each stratum holds.

    Level 1 ({!Fit}) pools each stratum's injection outcomes across the
    training sizes into one binomial rate per outcome class, with a
    Wilson interval. Level 2 ({!Growth}) fits each stratum's
    count-vs-size curve from the training populations (golden-run
    enumeration — no injection at the target). The prediction at the
    target size is the population-weighted combination of the fitted
    rates under the extrapolated weights, with the conservative
    weighted-endpoint interval
    ({!Moard_stats.Confidence.combine_weighted}).

    Determinism: for fixed inputs and parameters the result (and hence
    the report payload) is byte-stable — training campaigns are
    bit-reproducible, strata combine in enumeration order, and only
    [fit_seconds] varies between runs. *)

type refusal =
  | Too_few_sizes of int
  | Empty_population
      (** the object has no fault sites at any training size *)
  | No_predicted_population of int
      (** every stratum's growth curve predicts 0 at the target *)
  | Unobserved_weight of float
      (** more than {!unobserved_cap} of the predicted population falls
          in strata with zero training samples — the level-1 assumption
          has nothing to stand on *)

exception Refused of refusal
(** An extrapolation the model declines to make. Distinct from
    [Invalid_argument] (caller errors): a refusal depends on what the
    training campaigns observed. *)

val refusal_message : refusal -> string
val unobserved_cap : float

val canonical_sizes : int list -> int list
(** Sort and deduplicate training sizes — the canonical form used in
    store keys and reports.
    @raise Refused [Too_few_sizes] if fewer than 2 distinct sizes remain.
    @raise Invalid_argument on a size [<= 0]. *)

type class_prediction = {
  rate : float;
  interval : Moard_stats.Confidence.interval;
}

type stratum_prediction = {
  label : string;
  counts : (int * int) list;  (** (training size, population) ascending *)
  samples : int;
  successes : int;
  predicted_count : float;  (** extrapolated population at the target *)
  growth : string;          (** {!Growth.kind_name} of the fitted curve *)
  exponent : float;
  weight : float;           (** predicted_count / total predicted *)
  masked : class_prediction;
  sdc : class_prediction;
  crashed : class_prediction;
}

type t = {
  object_name : string;
  workload_name : string;
  model : Moard_bits.Errmodel.t;
  seed : int;
  confidence : float;
  ci_width : float;
  max_samples : int;
  sizes : int list;                 (** training sizes, ascending *)
  target : int;
  populations : (int * int) list;   (** (size, fault-site population) *)
  predicted_population : float;
  samples : int;                    (** pooled over training campaigns *)
  runs : int;
  cache_hits : int;
  unobserved_weight : float;
  advf : float;                     (** predicted masking rate at target *)
  advf_ci : Moard_stats.Confidence.interval;
  sdc : float;
  sdc_ci : Moard_stats.Confidence.interval;
  crashed : float;
  crashed_ci : Moard_stats.Confidence.interval;
  strata : stratum_prediction array;
  fit_seconds : float;  (** perf only — never part of the stable payload *)
}

val run :
  ?model:Moard_bits.Errmodel.t ->
  ?seed:int ->
  ?confidence:float ->
  ?ci_width:float ->
  ?max_samples:int ->
  ?domains:int ->
  ?batch:bool ->
  ?cancel:Moard_chaos.Cancel.t ->
  workloads:(int * Moard_inject.Workload.t) list ->
  object_name:string ->
  target:int ->
  unit ->
  t
(** Train one campaign per [(size, workload)] pair and extrapolate to
    [target]. Defaults match {!Moard_campaign.Plan.make}: single-bit
    model, seed 42, confidence 0.95, ci_width 0.02, no sample cap;
    [domains] defaults to 1, [batch] (bit-parallel resolution) to [true]
    — neither changes a single byte of the result. A training size where
    the object has no fault sites counts as a zero-population
    observation, not an error. If a target size happens to equal a
    training size, its observed populations are used verbatim
    ({!Growth.predict}), so predicting at a training size reproduces the
    fitted estimate exactly.
    @raise Refused when the model declines (see {!refusal}).
    @raise Moard_chaos.Cancel.Cancelled if [cancel] tripped — a partial
    fit is never returned.
    @raise Invalid_argument on [target <= 0], duplicate training sizes,
    or fewer than two workloads. *)
