(** Level 2 of the two-level aDVF extrapolation: per-stratum dynamic-site
    population growth as a function of input size.

    Stratum populations come from golden runs alone (site enumeration on
    the packed tape — no injection), so observing them is cheap at any
    size; what this module does is model the count-vs-size curve from the
    few training sizes where level 1 also fitted rates, so the predictor
    can weight its per-stratum rate estimates at a target size it has
    never run. Site counts in loop-nest kernels are polynomial in the
    input size, so the fit is linear least squares in log-log space. *)

type t =
  | Zero  (** the stratum was empty at every training size *)
  | Scaled of { size : int; count : int }
      (** one nonzero observation: proportional growth through it *)
  | Power of { lna : float; b : float }
      (** [count(n) = exp(lna) * n^b], least squares over the nonzero
          observations *)

val kind_name : t -> string

val fit : (int * int) list -> t
(** Fit a growth curve to [(size, count)] observations (distinct sizes,
    counts >= 0; zero counts are ignored by the fit — they select the
    degenerate constructors). Observations are sorted internally, so the
    fit is bit-identical under any input order. *)

val eval : t -> int -> float
(** Predicted count at a size: always finite, non-negative and bounded
    (clamped to [1e15]) — degenerate inputs can never produce NaN or
    infinity downstream. *)

val exponent : t -> float
(** The growth exponent the fit settled on (0 for [Zero], 1 for
    [Scaled]) — the report surfaces it per stratum. *)

val predict : points:(int * int) list -> int -> float
(** [eval (fit points)], except that a size present in [points] returns
    its observed count exactly: the model never extrapolates over ground
    truth it was handed, which is also what makes predicting at a
    training size reproduce the fitted value. *)
