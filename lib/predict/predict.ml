module Engine = Moard_campaign.Engine
module Plan = Moard_campaign.Plan
module Context = Moard_inject.Context
module Confidence = Moard_stats.Confidence
module Errmodel = Moard_bits.Errmodel

type refusal =
  | Too_few_sizes of int
  | Empty_population
  | No_predicted_population of int
  | Unobserved_weight of float

exception Refused of refusal

let refusal_message = function
  | Too_few_sizes n ->
    Printf.sprintf
      "extrapolation needs at least 2 distinct training sizes (got %d)" n
  | Empty_population ->
    "the object has no fault sites at any training size"
  | No_predicted_population target ->
    Printf.sprintf "predicted fault-site population at size %d is zero"
      target
  | Unobserved_weight w ->
    Printf.sprintf
      "%.0f%% of the predicted population falls in strata never sampled \
       at any training size (cap 50%%)"
      (100.0 *. w)

let unobserved_cap = 0.5

let canonical_sizes sizes =
  List.iter
    (fun n -> if n <= 0 then invalid_arg "Predict.canonical_sizes: size")
    sizes;
  let sizes = List.sort_uniq compare sizes in
  if List.length sizes < 2 then
    raise (Refused (Too_few_sizes (List.length sizes)));
  sizes

type class_prediction = { rate : float; interval : Confidence.interval }

type stratum_prediction = {
  label : string;
  counts : (int * int) list;
  samples : int;
  successes : int;
  predicted_count : float;
  growth : string;
  exponent : float;
  weight : float;
  masked : class_prediction;
  sdc : class_prediction;
  crashed : class_prediction;
}

type t = {
  object_name : string;
  workload_name : string;
  model : Errmodel.t;
  seed : int;
  confidence : float;
  ci_width : float;
  max_samples : int;
  sizes : int list;
  target : int;
  populations : (int * int) list;
  predicted_population : float;
  samples : int;
  runs : int;
  cache_hits : int;
  unobserved_weight : float;
  advf : float;
  advf_ci : Confidence.interval;
  sdc : float;
  sdc_ci : Confidence.interval;
  crashed : float;
  crashed_ci : Confidence.interval;
  strata : stratum_prediction array;
  fit_seconds : float;  (** perf only — never part of the stable payload *)
}

(* An object can legitimately have no fault sites at a small training size
   (a stratum of the workload that only materializes past some n);
   Plan.make treats that as a caller error, the predictor treats it as a
   zero-population observation. *)
let empty_object_result object_name : Engine.object_result =
  {
    Engine.object_name;
    population = 0;
    sites = 0;
    samples = 0;
    runs = 0;
    cache_hits = 0;
    by_code = Array.make 4 0;
    estimate = 0.0;
    lo = 0.0;
    hi = 0.0;
    halfwidth = 0.0;
    stopped = Engine.Exhausted;
    strata = [||];
  }

let train ?(model = Errmodel.Single_bit) ~seed ~confidence ~ci_width
    ~max_samples ~domains ~batch ?cancel ~object_name (size, workload) =
  let no_sites = "Plan.make: no fault sites for " ^ object_name in
  match Context.make workload with
  | exception Invalid_argument m when m = no_sites ->
    (size, workload.Moard_inject.Workload.name, empty_object_result object_name)
  | ctx -> (
    match
      Plan.make ~model ~seed ~confidence ~ci_width ~max_samples ctx
        ~objects:[ object_name ]
    with
    | exception Invalid_argument m when m = no_sites ->
      ( size,
        workload.Moard_inject.Workload.name,
        empty_object_result object_name )
    | plan ->
      let result = Engine.run ~domains ~batch ?cancel ctx plan in
      let o = result.Engine.objects.(0) in
      (match o.Engine.stopped with
      | Engine.Interrupted ->
        raise
          (Moard_chaos.Cancel.Cancelled
             (Printf.sprintf "predict: campaign at size %d interrupted" size))
      | _ -> ());
      (size, result.Engine.workload_name, o))

let run ?model ?(seed = 42) ?(confidence = 0.95) ?(ci_width = 0.02)
    ?(max_samples = -1) ?(domains = 1) ?(batch = true) ?cancel ~workloads
    ~object_name ~target () =
  if target <= 0 then invalid_arg "Predict.run: target";
  (match workloads with
  | [] | [ _ ] -> raise (Refused (Too_few_sizes (List.length workloads)))
  | _ -> ());
  let t0 = Unix.gettimeofday () in
  let z = Confidence.z_of_confidence confidence in
  let trained =
    List.map
      (train ?model ~seed ~confidence ~ci_width ~max_samples ~domains ~batch
         ?cancel ~object_name)
      workloads
  in
  let workload_name =
    match trained with (_, w, _) :: _ -> w | [] -> assert false
  in
  let observations = List.map (fun (size, _, o) -> (size, o)) trained in
  if List.for_all (fun (_, o) -> o.Engine.population = 0) observations then
    raise (Refused Empty_population);
  let fit = Fit.of_results observations in
  let predicted = Fit.predicted_counts fit target in
  let total = Array.fold_left ( +. ) 0.0 predicted in
  if total <= 0.0 then raise (Refused (No_predicted_population target));
  let weights = Array.map (fun c -> c /. total) predicted in
  let unobserved_weight =
    let acc = ref 0.0 in
    Array.iteri
      (fun i w -> if w > 0.0 && fit.Fit.strata.(i).Fit.samples = 0 then
          acc := !acc +. w)
      weights;
    !acc
  in
  if unobserved_weight > unobserved_cap then
    raise (Refused (Unobserved_weight unobserved_weight));
  let combine cls =
    let point = ref 0.0 in
    let terms =
      Array.mapi
        (fun i s ->
          let p, interval = Fit.rate ~z s cls in
          point := !point +. (weights.(i) *. p);
          (weights.(i), interval))
        fit.Fit.strata
    in
    (!point, Confidence.combine_weighted terms)
  in
  let advf, advf_ci = combine Fit.Masked in
  let sdc, sdc_ci = combine Fit.Sdc in
  let crashed, crashed_ci = combine Fit.Crashed in
  let strata =
    Array.mapi
      (fun i (s : Fit.stratum) ->
        let cls c =
          let rate, interval = Fit.rate ~z s c in
          { rate; interval }
        in
        {
          label = s.Fit.label;
          counts = s.Fit.counts;
          samples = s.Fit.samples;
          successes = s.Fit.successes;
          predicted_count = predicted.(i);
          growth = Growth.kind_name s.Fit.growth;
          exponent = Growth.exponent s.Fit.growth;
          weight = weights.(i);
          masked = cls Fit.Masked;
          sdc = cls Fit.Sdc;
          crashed = cls Fit.Crashed;
        })
      fit.Fit.strata
  in
  {
    object_name;
    workload_name;
    model = (match model with Some m -> m | None -> Errmodel.Single_bit);
    seed;
    confidence;
    ci_width;
    max_samples;
    sizes = fit.Fit.sizes;
    target;
    populations = fit.Fit.populations;
    predicted_population = total;
    samples = fit.Fit.samples;
    runs = fit.Fit.runs;
    cache_hits = fit.Fit.cache_hits;
    unobserved_weight;
    advf;
    advf_ci;
    sdc;
    sdc_ci;
    crashed;
    crashed_ci;
    strata;
    fit_seconds = Unix.gettimeofday () -. t0;
  }
