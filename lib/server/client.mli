(** Client side of the [moardd] protocol.

    Thin by design: build a request with {!Jsonx}, get back the response
    header and the raw payload bytes (untouched, so they can be diffed
    against offline CLI output). The [proto] field is stamped onto every
    request so the daemon can reject a version skew. *)

type t

val connect : socket:string -> t
(** @raise Unix.Unix_error if the daemon is not there. *)

val close : t -> unit

val request : t -> Jsonx.t -> Jsonx.t * string option
(** Send one request object, wait for its response. Adds ["proto"] if
    the request lacks it.
    @raise Protocol.Protocol_error on framing violations;
    @raise Unix.Unix_error if the connection drops. *)

val rpc : socket:string -> Jsonx.t -> Jsonx.t * string option
(** One-shot: connect, {!request}, close. *)

val error_of : Jsonx.t -> (string * string) option
(** [(code, message)] if the header is an error response. *)
