(** Client side of the [moardd] protocol.

    Thin by design: build a request with {!Jsonx}, get back the response
    header and the raw payload bytes (untouched, so they can be diffed
    against offline CLI output). The [proto] field is stamped onto every
    request so the daemon can reject a version skew. *)

type t

val connect : ?timeout_s:float -> socket:string -> unit -> t
(** [timeout_s] arms [SO_RCVTIMEO]/[SO_SNDTIMEO] on the connection: a
    stalled or mid-frame-dead daemon then fails the read with
    [Unix.Unix_error (EAGAIN, _, _)] instead of hanging the client
    forever. Default: no timeout (long campaign computations are
    legitimate).
    @raise Unix.Unix_error if the daemon is not there. *)

val close : t -> unit

val request : t -> Jsonx.t -> Jsonx.t * string option
(** Send one request object, wait for its response. Adds ["proto"] if
    the request lacks it.
    @raise Protocol.Protocol_error on framing violations;
    @raise Unix.Unix_error if the connection drops. *)

val rpc : ?timeout_s:float -> socket:string -> Jsonx.t -> Jsonx.t * string option
(** One-shot: connect, {!request}, close. *)

val backoff :
  base_delay_s:float -> max_delay_s:float -> Moard_chaos.Rng.t -> int -> float
(** [backoff ~base_delay_s ~max_delay_s rng i] is the delay before retry
    [i]: capped exponential ([base * 2^i], capped at [max]) jittered
    into [[cap/2, cap)] by the next draw of [rng].  Pure in the stream:
    the same [rng] state yields the same schedule. *)

val rpc_retry :
  ?attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?timeout_s:float ->
  ?seed:int ->
  ?rng:Moard_chaos.Rng.t ->
  socket:string ->
  Jsonx.t ->
  Jsonx.t * string option
(** {!rpc} with capped jittered exponential backoff (defaults: 5
    attempts, 50 ms base doubling to a 2 s cap, each delay drawn by
    {!backoff}).  Jitter comes from an explicit {!Moard_chaos.Rng}
    stream: pass [rng] to splice the schedule into a larger seeded plan
    (the chaos harnesses and the cluster proxy do), or just [seed]
    (default 0) for a self-contained reproducible stream.

    What retries, and why it is safe:
    - connect refusals ([ECONNREFUSED]/[ENOENT]/[ECONNRESET]) — no
      request escaped the client;
    - typed [overloaded]/[draining]/[integrity] responses — the daemon
      refused before doing any work (the last is a request checksum
      that did not survive the wire);
    - typed [unavailable] responses (a cluster proxy with no healthy
      shard for the key) — {e only} for idempotent requests, since the
      proxy may have already forwarded the request to a shard before
      giving up;
    - transport failures mid-request (torn frame, dropped response,
      receive timeout) — {e only} for idempotent requests. A campaign
      run ([op = "campaign"]) advances a server-side journal, so once
      sent with unknown fate it is never resent; every other op is a
      pure content-addressed read ({!Moard_store.Key}), for which a
      duplicate compute produces byte-identical results.

    Non-retryable typed errors (bad-request, internal, timeout, …)
    return immediately; exhausting [attempts] re-raises the last
    transport error. *)

val error_of : Jsonx.t -> (string * string) option
(** [(code, message)] if the header is an error response. *)
