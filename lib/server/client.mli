(** Client side of the [moardd] protocol.

    Thin by design: build a request with {!Jsonx}, get back the response
    header and the raw payload bytes (untouched, so they can be diffed
    against offline CLI output). The [proto] field is stamped onto every
    request so the daemon can reject a version skew. *)

type t

val connect : ?timeout_s:float -> socket:string -> unit -> t
(** [timeout_s] arms [SO_RCVTIMEO]/[SO_SNDTIMEO] on the connection: a
    stalled or mid-frame-dead daemon then fails the read with
    [Unix.Unix_error (EAGAIN, _, _)] instead of hanging the client
    forever. Default: no timeout (long campaign computations are
    legitimate).
    @raise Unix.Unix_error if the daemon is not there. *)

val close : t -> unit

val request : t -> Jsonx.t -> Jsonx.t * string option
(** Send one request object, wait for its response. Adds ["proto"] if
    the request lacks it.
    @raise Protocol.Protocol_error on framing violations;
    @raise Unix.Unix_error if the connection drops. *)

val rpc : ?timeout_s:float -> socket:string -> Jsonx.t -> Jsonx.t * string option
(** One-shot: connect, {!request}, close. *)

val rpc_retry :
  ?attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?timeout_s:float ->
  ?seed:int ->
  socket:string ->
  Jsonx.t ->
  Jsonx.t * string option
(** {!rpc} with capped jittered exponential backoff (defaults: 5
    attempts, 50 ms base doubling to a 2 s cap, each delay jittered into
    [[cap/2, cap)] by a SplitMix64 stream from [seed] — deterministic
    schedules for tests, decorrelated herds in production).

    What retries, and why it is safe:
    - connect refusals ([ECONNREFUSED]/[ENOENT]/[ECONNRESET]) — no
      request escaped the client;
    - typed [overloaded]/[draining] responses — the daemon refused
      before doing any work;
    - transport failures mid-request (torn frame, dropped response,
      receive timeout) — {e only} for idempotent requests. A campaign
      run ([op = "campaign"]) advances a server-side journal, so once
      sent with unknown fate it is never resent; every other op is a
      pure content-addressed read ({!Moard_store.Key}), for which a
      duplicate compute produces byte-identical results.

    Non-retryable typed errors (bad-request, internal, timeout, …)
    return immediately; exhausting [attempts] re-raises the last
    transport error. *)

val error_of : Jsonx.t -> (string * string) option
(** [(code, message)] if the header is an error response. *)
