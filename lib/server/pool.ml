type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  jobs : ((unit -> unit) * (exn -> unit) option) Queue.t;
  cap : int;
  nworkers : int;
  wrap : (unit -> unit) -> unit -> unit;
  mutable draining : bool;
  mutable running : int;
  mutable executed : int;
  mutable rejected : int;
  mutable failed : int;
  mutable last_error : string option;
  mutable domains : unit Domain.t list;
  mutable drained : bool;
}

let worker_loop t () =
  let rec next () =
    Mutex.lock t.m;
    while Queue.is_empty t.jobs && not t.draining do
      Condition.wait t.nonempty t.m
    done;
    if Queue.is_empty t.jobs then begin
      (* draining and nothing left *)
      Mutex.unlock t.m;
      ()
    end
    else begin
      let job, on_error = Queue.pop t.jobs in
      t.running <- t.running + 1;
      Mutex.unlock t.m;
      (try t.wrap job ()
       with e ->
         Mutex.lock t.m;
         t.failed <- t.failed + 1;
         t.last_error <- Some (Printexc.to_string e);
         Mutex.unlock t.m;
         (* the submitter's escape hatch: whoever waits on this job gets
            a response even though it died — and a failing handler must
            not kill the worker either *)
         (match on_error with
         | Some f -> ( try f e with _ -> ())
         | None -> ()));
      Mutex.lock t.m;
      t.running <- t.running - 1;
      t.executed <- t.executed + 1;
      Mutex.unlock t.m;
      next ()
    end
  in
  next ()

let create ?(wrap = fun job -> job) ~workers ~queue () =
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      cap = max 1 queue;
      nworkers = max 1 workers;
      wrap;
      draining = false;
      running = 0;
      executed = 0;
      rejected = 0;
      failed = 0;
      last_error = None;
      domains = [];
      drained = false;
    }
  in
  t.domains <- List.init t.nworkers (fun _ -> Domain.spawn (worker_loop t));
  t

let submit ?on_error t job =
  Mutex.lock t.m;
  let r =
    if t.draining then `Draining
    else if Queue.length t.jobs >= t.cap then begin
      t.rejected <- t.rejected + 1;
      `Overloaded
    end
    else begin
      Queue.push (job, on_error) t.jobs;
      Condition.signal t.nonempty;
      `Accepted
    end
  in
  Mutex.unlock t.m;
  r

let drain t =
  Mutex.lock t.m;
  t.draining <- true;
  Condition.broadcast t.nonempty;
  let mine = if t.drained then [] else t.domains in
  t.drained <- true;
  Mutex.unlock t.m;
  List.iter Domain.join mine

let locked t f =
  Mutex.lock t.m;
  let v = f () in
  Mutex.unlock t.m;
  v

let workers t = t.nworkers
let queued t = locked t (fun () -> Queue.length t.jobs)
let running t = locked t (fun () -> t.running)
let executed t = locked t (fun () -> t.executed)
let rejected t = locked t (fun () -> t.rejected)
let failed t = locked t (fun () -> t.failed)
let last_error t = locked t (fun () -> t.last_error)
